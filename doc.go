// Package camc reproduces "Contention-Aware Kernel-Assisted MPI
// Collectives for Multi-/Many-core Systems" (Chakraborty, Subramoni,
// Panda — IEEE CLUSTER 2017) as a self-contained Go library.
//
// The repository layout:
//
//   - internal/sim — deterministic discrete-event simulator (virtual
//     clock, process coroutines, channels/mutexes/barriers).
//   - internal/arch — the three evaluated architecture profiles (KNL,
//     Broadwell, Power8) with the paper's Table IV cost-model constants.
//   - internal/kernel — the simulated OS: address spaces and CMA
//     process_vm_readv/writev with the contended per-page mm lock.
//   - internal/shm — the two-copy shared-memory transport and the small
//     control collectives.
//   - internal/mpi — the mini-MPI runtime (ranks, pt2pt eager/rendezvous).
//   - internal/core — the paper's contribution: native, contention-aware
//     kernel-assisted collectives plus the classic baselines.
//   - internal/model — the analytical cost model, parameter estimation
//     and NLLS γ fitting.
//   - internal/libs — MVAPICH2/Intel MPI/Open MPI comparator stacks.
//   - internal/cluster — the multi-node network extension (Fig 17).
//   - internal/trace — structured tracing of simulated runs: spans,
//     counters and message edges in virtual time, critical-path and
//     contention analyses, Chrome trace-event export (cmd/camc-trace).
//   - internal/bench — one experiment per figure/table of the paper.
//
// The benchmarks in bench_test.go regenerate every evaluation figure and
// table; `go run ./cmd/camc-bench -list` enumerates them.
package camc
