#!/bin/sh
# Measures the two performance layers of the sweep engine and writes
# results/BENCH_sweep.json:
#
#   - wall-clock of the representative tab6 sweep (full size ladder,
#     all architectures) at -j 1 vs -j $(nproc)
#   - the simulator dispatch micro-benchmarks (ns/event, allocs/op)
#   - the x9 chaos recovery latencies (worst-case detection and shrink
#     across the quick kill matrix, in simulated us)
#
# The "seed_baseline" block in the JSON is the pre-optimisation
# measurement (central-scheduler dispatcher, sequential sweeps) captured
# once on the host it documents; rerunning this script refreshes only
# the "current" block. Run from anywhere:
#
#     sh scripts/bench.sh
set -eu
cd "$(dirname "$0")/.."

JOBS=${JOBS:-$(nproc)}
OUT=${OUT:-results/BENCH_sweep.json}
mkdir -p results
bin=$(mktemp -d)
trap 'rm -rf "$bin"' EXIT
go build -o "$bin/camc-bench" ./cmd/camc-bench

secs() {
    start=$(date +%s.%N)
    "$@" >/dev/null
    end=$(date +%s.%N)
    awk -v a="$start" -v b="$end" 'BEGIN{printf "%.2f", b-a}'
}

echo "== tab6 sweep, -j 1"
t1=$(secs "$bin/camc-bench" -run tab6 -j 1)
echo "   ${t1}s"
echo "== tab6 sweep, -j $JOBS"
tn=$(secs "$bin/camc-bench" -run tab6 -j "$JOBS")
echo "   ${tn}s"

echo "== x9 chaos sweep (recovery latencies)"
x9_csv=$("$bin/camc-bench" -run x9 -quick -format csv)
# Section-scoped column maxima from the CSV: worst-case detection
# (first death -> coherent agreement) and shrink (agreement -> rebuilt
# communicator) latency across the quick kill matrix, plus the
# worst-case whole detect-to-shrink path per collective.
x9_detect=$(echo "$x9_csv" | awk -F, '
    /^# Detection/ { s = 1; next } /^#/ { s = 0 }
    s && $1 != "collective" && NF > 1 { if ($2 > m) m = $2 }
    END { printf "%.2f", m }')
x9_shrink=$(echo "$x9_csv" | awk -F, '
    /^# Shrink/ { s = 1; next } /^#/ { s = 0 }
    s && $1 != "collective" && NF > 1 { if ($2 > m) m = $2 }
    END { printf "%.2f", m }')
x9_cycle=$(echo "$x9_csv" | awk -F, '
    /^# Detection/ { s = 1; next } /^# Shrink/ { s = 2; next } /^#/ { s = 0 }
    s == 1 && $1 != "collective" && NF > 1 { d[$1] = $2 }
    s == 2 && $1 != "collective" && NF > 1 { sh[$1] = $2 }
    END { for (k in d) { v = d[k] + sh[k]; if (v > m) m = v } printf "%.2f", m }')
echo "   detect ${x9_detect}us, shrink ${x9_shrink}us, detect-to-shrink ${x9_cycle}us (simulated, worst case)"

echo "== simulator dispatch benchmarks"
bench_out=$(go test -run '^$' -bench 'BenchmarkDispatch|BenchmarkSchedule' -benchmem ./internal/sim/)
echo "$bench_out"

# Pulls the value preceding a metric label from one benchmark's line,
# e.g. field BenchmarkDispatch ns/event.
field() {
    echo "$bench_out" | awk -v name="$1" -v metric="$2" \
        '$1 ~ "^"name"(-[0-9]+)?$" { for (i = 2; i < NF; i++) if ($(i+1) == metric) { printf "%s", $i; exit } }'
}

cat >"$OUT" <<EOF
{
  "host": {
    "cpus": $(nproc),
    "go": "$(go env GOVERSION)",
    "tab6_jobs": $JOBS
  },
  "seed_baseline": {
    "comment": "pre-optimisation: container/heap dispatcher with central scheduler goroutine, sequential sweeps; captured at the PR-1 tip on a 1-CPU Xeon 2.70GHz container. The parallel -j speedup only materialises on multi-core hosts; the dispatcher gains apply everywhere.",
    "tab6_seconds": 31.6,
    "dispatch_ns_per_event": 760.0,
    "dispatch_allocs_per_op": 2172,
    "selfwake_ns_per_event": 625.0,
    "selfwake_allocs_per_op": 2057,
    "schedule_ns_per_op": 100.4,
    "schedule_allocs_per_op": 2
  },
  "current": {
    "tab6_seconds_j1": $t1,
    "tab6_seconds_jN": $tn,
    "dispatch_ns_per_event": $(field BenchmarkDispatch ns/event),
    "dispatch_allocs_per_op": $(field BenchmarkDispatch allocs/op),
    "selfwake_ns_per_event": $(field BenchmarkDispatchSelfWake ns/event),
    "selfwake_allocs_per_op": $(field BenchmarkDispatchSelfWake allocs/op),
    "schedule_ns_per_op": $(field BenchmarkSchedule ns/op),
    "schedule_allocs_per_op": $(field BenchmarkSchedule allocs/op),
    "x9_detect_us_max": $x9_detect,
    "x9_shrink_us_max": $x9_shrink,
    "x9_detect_to_shrink_us_max": $x9_cycle
  }
}
EOF
echo "wrote $OUT"
