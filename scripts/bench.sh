#!/bin/sh
# Measures the two performance layers of the sweep engine, records every
# measurement durably in the results store (results/camc.store), and
# regenerates the results/BENCH_sweep.json snapshot from it:
#
#   - wall-clock of the representative tab6 sweep (full size ladder,
#     all architectures) at -j 1 vs -j $JOBS
#   - the simulator dispatch micro-benchmarks (ns/event, allocs/op)
#   - the x9 chaos recovery latencies (worst-case detection and shrink
#     across the quick kill matrix, in simulated us)
#
# The per-cell sweep latencies land in the store too (camc-bench -store),
# so "which cells regressed since run X?" is answerable afterwards with
#
#     camc-report regress -store results/camc.store
#
# The JSON file is now an export, not the source of truth; its
# "seed_baseline" block (the pre-optimisation measurement) is emitted as
# a constant by camc-report export. Run from anywhere:
#
#     sh scripts/bench.sh
set -eu
cd "$(dirname "$0")/.."

# nproc is Linux coreutils; fall back to the BSD/macOS sysctl spelling,
# then to 1, so the script stays POSIX-portable.
NCPU=$( (nproc || sysctl -n hw.ncpu || echo 1) 2>/dev/null | head -n1 )
JOBS=${JOBS:-$NCPU}
STORE=${STORE:-results/camc.store}
OUT=${OUT:-results/BENCH_sweep.json}
mkdir -p results
bin=$(mktemp -d)
trap 'rm -rf "$bin"' EXIT
go build -o "$bin/camc-bench" ./cmd/camc-bench
go build -o "$bin/camc-report" ./cmd/camc-report

RUN=$("$bin/camc-report" begin -store "$STORE" -source bench \
    -jobs "$JOBS" -note "scripts/bench.sh")
echo "== recording run $RUN in $STORE"

# Portable wall-clock timer: date +%s.%N is a GNU extension (BSD date
# prints a literal N), so take timestamps from camc-report instead and
# diff them in awk.
secs() {
    start=$("$bin/camc-report" now)
    "$@" >/dev/null
    end=$("$bin/camc-report" now)
    awk -v a="$start" -v b="$end" 'BEGIN{printf "%.2f", b-a}'
}

# cell SERIES VALUE UNIT — append one metric to the store under $RUN.
cell() {
    "$bin/camc-report" append -store "$STORE" -run "$RUN" \
        -experiment bench.sh -series "$1" -value "$2" -unit "$3"
}

echo "== tab6 sweep, -j 1"
t1=$(secs "$bin/camc-bench" -run tab6 -j 1)
echo "   ${t1}s"
echo "== tab6 sweep, -j $JOBS (per-cell latencies recorded)"
tn=$(secs "$bin/camc-bench" -run tab6 -j "$JOBS" -store "$STORE" -store-run "$RUN")
echo "   ${tn}s"
cell tab6_seconds_j1 "$t1" s
cell tab6_seconds_jN "$tn" s

echo "== x9 chaos sweep (recovery latencies)"
x9_csv=$("$bin/camc-bench" -run x9 -quick -format csv -store "$STORE" -store-run "$RUN")
# Section-scoped column maxima from the CSV: worst-case detection
# (first death -> coherent agreement) and shrink (agreement -> rebuilt
# communicator) latency across the quick kill matrix, plus the
# worst-case whole detect-to-shrink path per collective.
x9_detect=$(echo "$x9_csv" | awk -F, '
    /^# Detection/ { s = 1; next } /^#/ { s = 0 }
    s && $1 != "collective" && NF > 1 { if ($2 > m) m = $2 }
    END { printf "%.2f", m }')
x9_shrink=$(echo "$x9_csv" | awk -F, '
    /^# Shrink/ { s = 1; next } /^#/ { s = 0 }
    s && $1 != "collective" && NF > 1 { if ($2 > m) m = $2 }
    END { printf "%.2f", m }')
x9_cycle=$(echo "$x9_csv" | awk -F, '
    /^# Detection/ { s = 1; next } /^# Shrink/ { s = 2; next } /^#/ { s = 0 }
    s == 1 && $1 != "collective" && NF > 1 { d[$1] = $2 }
    s == 2 && $1 != "collective" && NF > 1 { sh[$1] = $2 }
    END { for (k in d) { v = d[k] + sh[k]; if (v > m) m = v } printf "%.2f", m }')
echo "   detect ${x9_detect}us, shrink ${x9_shrink}us, detect-to-shrink ${x9_cycle}us (simulated, worst case)"
cell x9_detect_us_max "$x9_detect" us
cell x9_shrink_us_max "$x9_shrink" us
cell x9_detect_to_shrink_us_max "$x9_cycle" us

echo "== simulator dispatch benchmarks"
bench_out=$(go test -run '^$' -bench 'BenchmarkDispatch|BenchmarkSchedule' -benchmem ./internal/sim/)
echo "$bench_out"

# Pulls the value preceding a metric label from one benchmark's line,
# e.g. field BenchmarkDispatch ns/event.
field() {
    echo "$bench_out" | awk -v name="$1" -v metric="$2" \
        '$1 ~ "^"name"(-[0-9]+)?$" { for (i = 2; i < NF; i++) if ($(i+1) == metric) { printf "%s", $i; exit } }'
}

cell dispatch_ns_per_event "$(field BenchmarkDispatch ns/event)" ns/event
cell dispatch_allocs_per_op "$(field BenchmarkDispatch allocs/op)" allocs/op
cell selfwake_ns_per_event "$(field BenchmarkDispatchSelfWake ns/event)" ns/event
cell selfwake_allocs_per_op "$(field BenchmarkDispatchSelfWake allocs/op)" allocs/op
cell schedule_ns_per_op "$(field BenchmarkSchedule ns/op)" ns/op
cell schedule_allocs_per_op "$(field BenchmarkSchedule allocs/op)" allocs/op

"$bin/camc-report" export -store "$STORE" -out "$OUT"
echo "run $RUN recorded; compare against the previous run with:"
echo "    go run ./cmd/camc-report regress -store $STORE"
