#!/bin/sh
# Tier-1 verification (see ROADMAP.md), plus static checks and a race
# pass over the concurrency-sensitive packages. Run from the repo root:
#
#     sh scripts/verify.sh
set -eu

echo '== go build ./...'
go build ./...

echo '== go vet ./...'
go vet ./...

echo '== gofmt -l'
fmt=$(gofmt -l .)
if [ -n "$fmt" ]; then
    echo "gofmt needed on:" >&2
    echo "$fmt" >&2
    exit 1
fi

echo '== go test ./...'
go test ./...

# The simulator hands the scheduler token between goroutines and the
# trace recorder piggybacks on that happens-before edge instead of
# locking; the sweep engine fans cells out across a worker pool. The
# race detector proves those happens-before edges are real.
echo '== go test -race ./internal/sim/... ./internal/trace/... ./internal/par/...'
go test -race ./internal/sim/... ./internal/trace/... ./internal/par/...

echo 'verify: OK'
