#!/bin/sh
# Tier-1 verification (see ROADMAP.md), plus static checks and a race
# pass over the concurrency-sensitive packages. Run from the repo root:
#
#     sh scripts/verify.sh
set -eu

echo '== go build ./...'
go build ./...

echo '== go vet ./...'
go vet ./...

echo '== gofmt -l'
fmt=$(gofmt -l .)
if [ -n "$fmt" ]; then
    echo "gofmt needed on:" >&2
    echo "$fmt" >&2
    exit 1
fi

echo '== go test ./...'
go test ./...

# The simulator hands the scheduler token between goroutines and the
# trace recorder piggybacks on that happens-before edge instead of
# locking; the sweep engine fans cells out across a worker pool, and the
# fault-injection plan is consulted from inside parallel experiment
# cells. The race detector proves those happens-before edges are real —
# everywhere, not just in the packages that looked concurrency-sensitive
# when the check was narrower.
# (The bench suite subsamples its most expensive experiment sweeps when
# built with -race — see internal/bench/race_off_test.go; the plain
# pass above keeps full coverage.)
echo '== go test -race ./...'
go test -race -timeout 30m ./...

echo 'verify: OK'
