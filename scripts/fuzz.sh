#!/bin/sh
# Runs the fixed-seed differential-fuzz smoke corpus (the CI gate),
# records the per-arch corpus verdicts durably in the results store
# (camc-fuzz -store), and regenerates the "fuzz" block of
# results/BENCH_sweep.json from the store with camc-report export —
# the JSON is an export now, not a hand-merged document.
#
#     sh scripts/fuzz.sh            # seed 1, 200 specs per arch profile
#     SEED=7 N=500 sh scripts/fuzz.sh
set -eu
cd "$(dirname "$0")/.."

SEED=${SEED:-1}
N=${N:-200}
STORE=${STORE:-results/camc.store}
OUT=${OUT:-results/BENCH_sweep.json}
mkdir -p results
bin=$(mktemp -d)
trap 'rm -rf "$bin"' EXIT
go build -o "$bin/camc-fuzz" ./cmd/camc-fuzz
go build -o "$bin/camc-report" ./cmd/camc-report

RUN=$("$bin/camc-report" begin -store "$STORE" -source fuzz \
    -seed "$SEED" -note "scripts/fuzz.sh")
echo "== recording run $RUN in $STORE"

failures=0
for a in knl broadwell power8; do
    echo "== camc-fuzz -seed $SEED -n $N -arch $a"
    if out=$("$bin/camc-fuzz" -seed "$SEED" -n "$N" -arch "$a" \
        -store "$STORE" -store-run "$RUN"); then
        :
    else
        failures=$((failures + 1))
        echo "$out" | grep -A2 'FAIL' >&2 || true
    fi
    echo "$out" | tail -6
done

"$bin/camc-report" export -store "$STORE" -out "$OUT"
echo "wrote $OUT from $STORE (seed $SEED, $N specs/arch, $failures failing arch runs)"
[ "$failures" -eq 0 ]
