#!/bin/sh
# Runs the fixed-seed differential-fuzz smoke corpus (the CI gate) and
# records the outcome into results/BENCH_sweep.json under a "fuzz"
# block: corpus size, failures, per-arch pass counts, and how many
# fault/kill plans the draw exercised. The rest of the JSON (the sweep
# and dispatcher measurements from scripts/bench.sh) is left untouched.
#
#     sh scripts/fuzz.sh            # seed 1, 200 specs per arch profile
#     SEED=7 N=500 sh scripts/fuzz.sh
set -eu
cd "$(dirname "$0")/.."

SEED=${SEED:-1}
N=${N:-200}
OUT=${OUT:-results/BENCH_sweep.json}
mkdir -p results
bin=$(mktemp -d)
trap 'rm -rf "$bin"' EXIT
go build -o "$bin/camc-fuzz" ./cmd/camc-fuzz

failures=0
archs="knl broadwell power8"
arch_json=""
for a in $archs; do
    echo "== camc-fuzz -seed $SEED -n $N -arch $a"
    if out=$("$bin/camc-fuzz" -seed "$SEED" -n "$N" -arch "$a"); then
        pass=$N
    else
        failures=$((failures + 1))
        pass=$(echo "$out" | grep -o 'FAIL at corpus index [0-9]*' | grep -o '[0-9]*' || echo 0)
        echo "$out" | grep -A2 'FAIL' >&2 || true
    fi
    echo "$out" | tail -6
    faultplans=$(echo "$out" | grep -o 'fault plans: [0-9]*' | grep -o '[0-9]*' || echo 0)
    killplans=$(echo "$out" | grep -o 'kill plans: [0-9]*' | grep -o '[0-9]*' || echo 0)
    arch_json="$arch_json{\"arch\": \"$a\", \"passed\": $pass, \"fault_plans\": ${faultplans:-0}, \"kill_plans\": ${killplans:-0}},"
done
arch_json="[${arch_json%,}]"

python3 - "$OUT" <<EOF
import json, sys
path = sys.argv[1]
try:
    with open(path) as f:
        doc = json.load(f)
except (FileNotFoundError, json.JSONDecodeError):
    doc = {}
doc["fuzz"] = {
    "seed": $SEED,
    "corpus_per_arch": $N,
    "failing_archs": $failures,
    "archs": $arch_json,
}
with open(path, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
EOF
echo "wrote fuzz block to $OUT (seed $SEED, $N specs/arch, $failures failing arch runs)"
[ "$failures" -eq 0 ]
