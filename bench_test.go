package camc

// One testing.B benchmark per figure and table of the paper's
// evaluation, plus ablation benches for the simulator design choices
// DESIGN.md calls out. Each benchmark regenerates its experiment (quick
// sweeps — the same shapes as the full camc-bench run) and reports the
// wall-clock cost of doing so; the interesting output is the experiment
// itself, which `go run ./cmd/camc-bench -run <id>` prints.

import (
	"fmt"
	"io"
	"testing"

	"camc/internal/arch"
	"camc/internal/bench"
	"camc/internal/core"
	"camc/internal/kernel"
	"camc/internal/measure"
	"camc/internal/mpi"
	"camc/internal/sim"
)

func benchExperiment(b *testing.B, id string, opts bench.Options) {
	e, ok := bench.ByID(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := e.Run(io.Discard, opts); err != nil {
			b.Fatal(err)
		}
	}
}

var quick = bench.Options{Quick: true}

// knlOnly trims multi-architecture experiments to the KNL panel so a
// single bench iteration stays in the hundreds of milliseconds.
var knlOnly = bench.Options{Quick: true, Arch: "knl"}

func BenchmarkFig01XsedeTrace(b *testing.B)         { benchExperiment(b, "fig1", quick) }
func BenchmarkFig02AccessPatterns(b *testing.B)     { benchExperiment(b, "fig2", quick) }
func BenchmarkFig03OneToAllArchs(b *testing.B)      { benchExperiment(b, "fig3", knlOnly) }
func BenchmarkFig04Breakdown(b *testing.B)          { benchExperiment(b, "fig4", quick) }
func BenchmarkFig05GammaFit(b *testing.B)           { benchExperiment(b, "fig5", knlOnly) }
func BenchmarkFig06RelativeThroughput(b *testing.B) { benchExperiment(b, "fig6", knlOnly) }
func BenchmarkFig07Scatter(b *testing.B)            { benchExperiment(b, "fig7", knlOnly) }
func BenchmarkFig08Gather(b *testing.B)             { benchExperiment(b, "fig8", knlOnly) }
func BenchmarkFig09AlltoallDesigns(b *testing.B)    { benchExperiment(b, "fig9", knlOnly) }
func BenchmarkFig10Allgather(b *testing.B)          { benchExperiment(b, "fig10", knlOnly) }
func BenchmarkFig11Bcast(b *testing.B)              { benchExperiment(b, "fig11", knlOnly) }
func BenchmarkFig12ModelValidation(b *testing.B)    { benchExperiment(b, "fig12", knlOnly) }
func BenchmarkFig13ScatterVsLibs(b *testing.B)      { benchExperiment(b, "fig13", knlOnly) }
func BenchmarkFig14GatherVsLibs(b *testing.B)       { benchExperiment(b, "fig14", knlOnly) }
func BenchmarkFig15AlltoallVsLibs(b *testing.B)     { benchExperiment(b, "fig15", knlOnly) }
func BenchmarkFig16AllgatherVsLibs(b *testing.B)    { benchExperiment(b, "fig16", knlOnly) }
func BenchmarkFig17MultiNodeGather(b *testing.B)    { benchExperiment(b, "fig17", quick) }
func BenchmarkFig18BcastVsLibs(b *testing.B) {
	benchExperiment(b, "fig18", bench.Options{Quick: true, Arch: "broadwell"})
}
func BenchmarkTab03StepIsolation(b *testing.B) { benchExperiment(b, "tab3", knlOnly) }
func BenchmarkX1Mechanisms(b *testing.B)       { benchExperiment(b, "x1", quick) }
func BenchmarkX2SkewDynamics(b *testing.B)     { benchExperiment(b, "x2", quick) }
func BenchmarkX3Reduce(b *testing.B)           { benchExperiment(b, "x3", quick) }
func BenchmarkX4PipelinedGather(b *testing.B)  { benchExperiment(b, "x4", quick) }
func BenchmarkX5Autotuner(b *testing.B) {
	benchExperiment(b, "x5", bench.Options{Quick: true, Arch: "knl"})
}
func BenchmarkX6ModelAudit(b *testing.B)        { benchExperiment(b, "x6", quick) }
func BenchmarkX7EmergentLock(b *testing.B)      { benchExperiment(b, "x7", quick) }
func BenchmarkTab04ModelParams(b *testing.B)    { benchExperiment(b, "tab4", knlOnly) }
func BenchmarkTab05Hardware(b *testing.B)       { benchExperiment(b, "tab5", quick) }
func BenchmarkTab06MaxSpeedup(b *testing.B)     { benchExperiment(b, "tab6", knlOnly) }
func BenchmarkTab07LargestSpeedup(b *testing.B) { benchExperiment(b, "tab7", knlOnly) }

// BenchmarkTab06MaxSpeedupSerial pins the sweep engine to one worker;
// the ratio against BenchmarkTab06MaxSpeedup (Jobs=0 = GOMAXPROCS) is
// the parallel engine's wall-clock win on the host.
func BenchmarkTab06MaxSpeedupSerial(b *testing.B) {
	benchExperiment(b, "tab6", bench.Options{Quick: true, Arch: "knl", Jobs: 1})
}

// Collective micro-benchmarks: simulated latency of the headline designs
// at full KNL subscription, reported as sim-us/op so tuning changes show
// up in benchstat diffs.
func benchCollective(b *testing.B, kind core.Kind, algo func(*mpi.Rank, core.Args), size int64) {
	var last float64
	for i := 0; i < b.N; i++ {
		last = measure.Collective(arch.KNL(), kind, algo, size, measure.Options{})
	}
	b.ReportMetric(last, "sim_us/op")
}

func BenchmarkScatterThrottled1M(b *testing.B) {
	benchCollective(b, core.KindScatter, core.ScatterThrottled(8), 1<<20)
}
func BenchmarkScatterParallelRead1M(b *testing.B) {
	benchCollective(b, core.KindScatter, core.ScatterParallelRead, 1<<20)
}
func BenchmarkGatherThrottled1M(b *testing.B) {
	benchCollective(b, core.KindGather, core.GatherThrottled(8), 1<<20)
}
func BenchmarkBcastKnomial1M(b *testing.B) {
	benchCollective(b, core.KindBcast, core.BcastKnomialRead(9), 1<<20)
}
func BenchmarkBcastScatterAllgather1M(b *testing.B) {
	benchCollective(b, core.KindBcast, core.BcastScatterAllgather, 1<<20)
}
func BenchmarkAlltoallPairwiseColl256K(b *testing.B) {
	benchCollective(b, core.KindAlltoall, core.AlltoallPairwiseColl, 256<<10)
}
func BenchmarkAllgatherRingSource256K(b *testing.B) {
	benchCollective(b, core.KindAllgather, core.AllgatherRingSourceRead, 256<<10)
}

// Ablations (DESIGN.md §6): quantify the simulator design choices.

// BenchmarkAblationChunkPages sweeps the contention-sampling granularity
// and reports how the one-to-all latency estimate moves: coarse sampling
// underestimates contention transients.
func BenchmarkAblationChunkPages(b *testing.B) {
	for _, chunk := range []int{1, 4, 16, 64, 256} {
		chunk := chunk
		b.Run(fmt.Sprintf("chunk=%d", chunk), func(b *testing.B) {
			var last float64
			for i := 0; i < b.N; i++ {
				s := sim.New()
				n := kernel.NewNode(s, arch.KNL())
				n.CopyData = false
				n.ChunkPages = chunk
				src := n.NewProcess(1 << 30)
				size := int64(1 << 20)
				sa := src.Alloc(size * 16)
				for r := 0; r < 16; r++ {
					r := r
					dst := n.NewProcess(1 << 22)
					da := dst.Alloc(size)
					s.Spawn(fmt.Sprintf("r%d", r), func(p *sim.Proc) {
						if err := dst.VMRead(p, da, src, sa+kernel.Addr(int64(r)*size), size); err != nil {
							panic(err)
						}
					})
				}
				if err := s.Run(); err != nil {
					b.Fatal(err)
				}
				last = s.Now()
			}
			b.ReportMetric(last, "sim_us/op")
		})
	}
}

// BenchmarkAblationNoSocketPenalty removes the inter-socket copy penalty
// and shows Ring-Neighbor-1 and the far-stride ring collapsing together
// on Broadwell — the reason the topology term is modeled.
func BenchmarkAblationNoSocketPenalty(b *testing.B) {
	for _, penalty := range []bool{true, false} {
		penalty := penalty
		b.Run(fmt.Sprintf("penalty=%v", penalty), func(b *testing.B) {
			a := arch.Broadwell()
			if !penalty {
				a.InterSocketBW = 1
			}
			var gap float64
			for i := 0; i < b.N; i++ {
				near := measure.Collective(a, core.KindAllgather, core.AllgatherRingNeighbor(1), 256<<10, measure.Options{})
				far := measure.Collective(a, core.KindAllgather, core.AllgatherRingNeighbor(15), 256<<10, measure.Options{})
				gap = far / near
			}
			b.ReportMetric(gap, "far/near")
		})
	}
}

// BenchmarkAblationNoAggregateBW removes the node bandwidth ceiling: the
// pairwise alltoall then scales as if every stream had the full
// single-stream rate, which no memory system provides.
func BenchmarkAblationNoAggregateBW(b *testing.B) {
	for _, ceiling := range []bool{true, false} {
		ceiling := ceiling
		b.Run(fmt.Sprintf("ceiling=%v", ceiling), func(b *testing.B) {
			a := arch.KNL()
			if !ceiling {
				a.AggBandwidthBps = 0
			}
			var last float64
			for i := 0; i < b.N; i++ {
				last = measure.Collective(a, core.KindAlltoall, core.AlltoallPairwiseColl, 256<<10, measure.Options{})
			}
			b.ReportMetric(last, "sim_us/op")
		})
	}
}

// BenchmarkAblationControlMessages contrasts the native CMA pairwise
// alltoall with the same schedule over point-to-point RTS/CTS transfers:
// the per-message control traffic the native design eliminates (Fig 9).
func BenchmarkAblationControlMessages(b *testing.B) {
	for _, native := range []bool{true, false} {
		native := native
		b.Run(fmt.Sprintf("native=%v", native), func(b *testing.B) {
			algo := core.AlltoallPairwisePt2pt
			if native {
				algo = core.AlltoallPairwiseColl
			}
			var last float64
			for i := 0; i < b.N; i++ {
				last = measure.Collective(arch.KNL(), core.KindAlltoall, algo, 16<<10, measure.Options{})
			}
			b.ReportMetric(last, "sim_us/op")
		})
	}
}
