package store

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Type discriminates record kinds within the single log.
type Type uint8

// Record kinds.
const (
	// TypeRun is one harness invocation: git revision, host, seed,
	// worker count. Every cell and verdict record points back at a run.
	TypeRun Type = iota + 1
	// TypeCell is one measured experiment cell: (experiment, table,
	// arch, collective, series, x) -> value.
	TypeCell
	// TypeVerdict is an invariant/oracle outcome from the checking
	// harness (camc-fuzz), pass or fail with detail.
	TypeVerdict
)

func (t Type) String() string {
	switch t {
	case TypeRun:
		return "run"
	case TypeCell:
		return "cell"
	case TypeVerdict:
		return "verdict"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// ParseType maps the CLI names back to a Type (0, false for unknown).
func ParseType(s string) (Type, bool) {
	switch s {
	case "run":
		return TypeRun, true
	case "cell":
		return TypeCell, true
	case "verdict":
		return TypeVerdict, true
	}
	return 0, false
}

// Record is the one fixed-format log entry. Fields not meaningful for a
// record's Type stay zero; the binary codec writes every field so the
// format never branches on type.
type Record struct {
	Seq  uint64 // store-assigned on Append; position in the total order
	Type Type
	// RunID ties cells and verdicts to their run record.
	RunID string
	// Unix is the wall-clock append time in seconds (runs record their
	// creation; cells inherit whatever the appender sets, usually 0).
	Unix int64

	// Run metadata (TypeRun).
	Source    string // "bench", "fuzz", "chaos", "manual", ...
	GitRev    string
	Host      string
	GoVersion string
	CPUs      int64
	Jobs      int64
	Seed      int64
	Note      string

	// Cell / verdict payload.
	Experiment string  // experiment id ("tab6") or metric family ("bench.sh")
	Table      string  // full table title the cell came from
	Arch       string  // "knl", "broadwell", "power8" when known
	Collective string  // "scatter", "gather", ... when known
	Series     string  // series (column) name or metric name
	X          string  // x label ("64K", "8 readers", ...)
	Size       int64   // bytes when X parses as a message size, else 0
	Value      float64 // the measurement
	Unit       string  // "us", "s", "ns/op", ...
	Verdict    string  // "pass" / "fail" (TypeVerdict)
	Detail     string  // free-form context (reproducer spec, counts)
}

// payloadVersion versions the record payload independently of the
// segment container, so fields can be added behind a version bump.
const payloadVersion = 1

func encodeRecord(r Record) ([]byte, error) {
	if r.Type == 0 {
		return nil, fmt.Errorf("store: record has no type")
	}
	buf := make([]byte, 0, 128)
	buf = append(buf, payloadVersion, byte(r.Type))
	buf = binary.AppendUvarint(buf, r.Seq)
	buf = binary.AppendVarint(buf, r.Unix)
	buf = binary.AppendVarint(buf, r.CPUs)
	buf = binary.AppendVarint(buf, r.Jobs)
	buf = binary.AppendVarint(buf, r.Seed)
	buf = binary.AppendVarint(buf, r.Size)
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(r.Value))
	for _, s := range r.strings() {
		buf = binary.AppendUvarint(buf, uint64(len(s)))
		buf = append(buf, s...)
	}
	return buf, nil
}

func decodeRecord(b []byte) (Record, error) {
	var r Record
	if len(b) < 2 {
		return r, fmt.Errorf("payload too short")
	}
	if b[0] != payloadVersion {
		return r, fmt.Errorf("record payload version %d, want %d", b[0], payloadVersion)
	}
	r.Type = Type(b[1])
	b = b[2:]
	uv := func() uint64 {
		v, n := binary.Uvarint(b)
		if n <= 0 {
			b = nil
			return 0
		}
		b = b[n:]
		return v
	}
	iv := func() int64 {
		v, n := binary.Varint(b)
		if n <= 0 {
			b = nil
			return 0
		}
		b = b[n:]
		return v
	}
	r.Seq = uv()
	r.Unix = iv()
	r.CPUs = iv()
	r.Jobs = iv()
	r.Seed = iv()
	r.Size = iv()
	if len(b) < 8 {
		return r, fmt.Errorf("truncated value field")
	}
	r.Value = math.Float64frombits(binary.LittleEndian.Uint64(b))
	b = b[8:]
	dst := r.stringPtrs()
	for i := range dst {
		n := uv()
		if b == nil || uint64(len(b)) < n {
			return r, fmt.Errorf("truncated string field %d", i)
		}
		*dst[i] = string(b[:n])
		b = b[n:]
	}
	if len(b) != 0 {
		return r, fmt.Errorf("%d trailing bytes", len(b))
	}
	return r, nil
}

// strings returns the string fields in codec order; stringPtrs must
// mirror it exactly.
func (r *Record) strings() []string {
	return []string{
		r.RunID, r.Source, r.GitRev, r.Host, r.GoVersion, r.Note,
		r.Experiment, r.Table, r.Arch, r.Collective, r.Series, r.X,
		r.Unit, r.Verdict, r.Detail,
	}
}

func (r *Record) stringPtrs() []*string {
	return []*string{
		&r.RunID, &r.Source, &r.GitRev, &r.Host, &r.GoVersion, &r.Note,
		&r.Experiment, &r.Table, &r.Arch, &r.Collective, &r.Series, &r.X,
		&r.Unit, &r.Verdict, &r.Detail,
	}
}

// NewRunID derives a fresh, sortable run id for a source.
func NewRunID(source string) string {
	return fmt.Sprintf("%s-%s", source, strconv.FormatInt(time.Now().UnixNano(), 36))
}

// RunRecord captures the environment of a new harness run: git
// revision (best effort), host name, Go version and CPU count, stamped
// with the current time and a fresh run id.
func RunRecord(source string, seed, jobs int64, note string) Record {
	host, _ := os.Hostname()
	return Record{
		Type:      TypeRun,
		RunID:     NewRunID(source),
		Unix:      time.Now().Unix(),
		Source:    source,
		GitRev:    gitRev(),
		Host:      host,
		GoVersion: runtime.Version(),
		CPUs:      int64(runtime.NumCPU()),
		Jobs:      jobs,
		Seed:      seed,
		Note:      note,
	}
}

func gitRev() string {
	out, err := exec.Command("git", "rev-parse", "--short=12", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

// ParseSizeLabel converts the harness's size labels ("4K", "1M",
// "1024") to bytes. Labels that are not pure sizes return 0, false.
func ParseSizeLabel(s string) (int64, bool) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, false
	}
	mult := int64(1)
	switch s[len(s)-1] {
	case 'K', 'k':
		mult, s = 1<<10, s[:len(s)-1]
	case 'M', 'm':
		mult, s = 1<<20, s[:len(s)-1]
	case 'G', 'g':
		mult, s = 1<<30, s[:len(s)-1]
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil || n < 0 {
		return 0, false
	}
	return n * mult, true
}
