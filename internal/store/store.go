// Package store is the embedded, append-only, crash-safe results store:
// the durable source of truth for every bench, fuzz and chaos run (run
// metadata, per-cell latencies, invariant/oracle verdicts), replacing
// the hand-merged results/BENCH_sweep.json snapshot.
//
// A store is a directory of page-aligned segment files. Each segment
// starts with a one-page header (magic, format version, page size) and
// then holds a sequence of CRC-framed records in append order. Opening
// a store replays every segment with checksums verified and rebuilds an
// in-memory index (run records, per-segment sequence ranges and run-id
// sets) that scans use for predicate pushdown; a torn or truncated tail
// in the last segment — the crash case — is detected by the framing and
// discarded, so every complete record survives a crash. A segment whose
// format version is newer than this code refuses to open with a clear
// error instead of a garbage replay.
//
// Writers are single-process: the harness appends from one CLI run at a
// time (scripts serialize bench/fuzz through one store). Readers can
// open the same directory concurrently; scans never read past the
// replay-validated tail.
package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
)

const (
	// FormatVersion is the on-disk segment format this code writes and
	// the newest it understands.
	FormatVersion = 1
	// PageSize aligns segment headers and segment roll boundaries.
	PageSize = 4096
	// recAlign keeps every record frame 8-byte aligned.
	recAlign = 8
	// DefaultMaxSegment is the segment roll threshold (whole pages).
	DefaultMaxSegment = 256 * PageSize

	recMagic = 0xCA3C5EED // little-endian frame marker
)

var segMagic = [8]byte{'C', 'A', 'M', 'C', 'S', 'T', 'O', 'R'}

// frameHeader is magic + payload length + payload CRC.
const frameHeader = 12

// segInfo is the in-memory index entry for one segment file: its
// replay-validated extent and the key ranges scans prune on.
type segInfo struct {
	path   string
	index  int   // 1-based segment number from the file name
	size   int64 // validated byte extent (replayed, checksummed)
	minSeq uint64
	maxSeq uint64
	runIDs map[string]bool
	nrec   int
}

// Store is an open results store. Methods are not safe for concurrent
// use by multiple goroutines.
type Store struct {
	dir     string
	segs    []*segInfo
	active  *os.File // last segment, positioned at the validated tail
	nextSeq uint64
	maxSeg  int64
	runs    []Record // TypeRun records in append order (the run index)
	nrec    int
}

// Options tunes Open.
type Options struct {
	// ReadOnly refuses appends and never creates the directory.
	ReadOnly bool
	// MaxSegment overrides the segment roll threshold (0 = default).
	// Rounded up to a whole number of pages.
	MaxSegment int64
}

// Open opens (creating if needed, unless read-only) the store directory
// at dir, replaying every segment with checksums verified and
// truncating a torn tail in the last segment.
func Open(dir string, opts Options) (*Store, error) {
	if opts.ReadOnly {
		if fi, err := os.Stat(dir); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		} else if !fi.IsDir() {
			return nil, fmt.Errorf("store: %s is not a directory", dir)
		}
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	maxSeg := opts.MaxSegment
	if maxSeg <= 0 {
		maxSeg = DefaultMaxSegment
	}
	if rem := maxSeg % PageSize; rem != 0 {
		maxSeg += PageSize - rem
	}
	s := &Store{dir: dir, nextSeq: 1, maxSeg: maxSeg}

	names, err := filepath.Glob(filepath.Join(dir, "*.seg"))
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	sort.Strings(names)
	for i, name := range names {
		// A torn tail is tolerated in the final segment whoever opens it;
		// read-only opens just leave the residue on disk (scans stop at
		// the validated extent) while writable opens truncate it below.
		last := i == len(names)-1
		seg, runs, err := s.replaySegment(name, last)
		if err != nil {
			return nil, err
		}
		s.segs = append(s.segs, seg)
		s.runs = append(s.runs, runs...)
		s.nrec += seg.nrec
		if seg.maxSeq >= s.nextSeq {
			s.nextSeq = seg.maxSeq + 1
		}
	}
	if !opts.ReadOnly && len(s.segs) > 0 {
		seg := s.segs[len(s.segs)-1]
		f, err := os.OpenFile(seg.path, os.O_RDWR, 0o644)
		if err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
		// Drop any torn tail on disk so the next append starts at the
		// validated extent.
		if err := f.Truncate(seg.size); err != nil {
			f.Close()
			return nil, fmt.Errorf("store: truncating torn tail of %s: %w", seg.path, err)
		}
		if _, err := f.Seek(seg.size, io.SeekStart); err != nil {
			f.Close()
			return nil, fmt.Errorf("store: %w", err)
		}
		s.active = f
	}
	return s, nil
}

// replaySegment validates one segment file: header magic and version,
// then every record frame and payload checksum. A bad frame is a hard
// error except at the tail of the last segment (allowTorn), where it is
// the expected crash residue and the segment's validated extent stops
// at the last good record.
func (s *Store) replaySegment(path string, allowTorn bool) (*segInfo, []Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, fmt.Errorf("store: %w", err)
	}
	defer f.Close()

	var hdr [PageSize]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return nil, nil, fmt.Errorf("store: %s: short segment header: %w", path, err)
	}
	if [8]byte(hdr[:8]) != segMagic {
		return nil, nil, fmt.Errorf("store: %s is not a camc store segment (bad magic)", path)
	}
	version := binary.LittleEndian.Uint32(hdr[8:12])
	if version > FormatVersion {
		return nil, nil, fmt.Errorf("store: %s has format version %d, newer than the %d this build understands — upgrade camc before reading this store", path, version, FormatVersion)
	}
	if ps := binary.LittleEndian.Uint32(hdr[12:16]); ps != PageSize {
		return nil, nil, fmt.Errorf("store: %s declares page size %d, want %d", path, ps, PageSize)
	}
	seg := &segInfo{
		path:   path,
		index:  int(binary.LittleEndian.Uint32(hdr[16:20])),
		size:   PageSize,
		runIDs: map[string]bool{},
	}

	br := bufio.NewReader(f)
	var runs []Record
	off := int64(PageSize)
	for {
		rec, next, err := readFrame(br, off)
		if err == io.EOF {
			break
		}
		if err != nil {
			if allowTorn {
				break // crash residue: keep the intact prefix
			}
			return nil, nil, fmt.Errorf("store: %s: %w (mid-log corruption; only the final segment may have a torn tail)", path, err)
		}
		if rec.Seq == 0 {
			return nil, nil, fmt.Errorf("store: %s: record at offset %d has sequence 0", path, off)
		}
		off = next
		seg.size = off
		seg.nrec++
		if seg.minSeq == 0 {
			seg.minSeq = rec.Seq
		}
		seg.maxSeq = rec.Seq
		if rec.RunID != "" {
			seg.runIDs[rec.RunID] = true
		}
		if rec.Type == TypeRun {
			runs = append(runs, rec)
		}
	}
	return seg, runs, nil
}

// readFrame decodes one record frame starting at offset off, returning
// the record and the aligned offset of the next frame. Any framing or
// checksum defect returns a non-EOF error; a clean end of file (or zero
// page padding through to EOF) returns io.EOF.
func readFrame(br *bufio.Reader, off int64) (Record, int64, error) {
	var h [frameHeader]byte
	if _, err := io.ReadFull(br, h[:]); err != nil {
		if err == io.EOF {
			return Record{}, 0, io.EOF
		}
		return Record{}, 0, fmt.Errorf("torn frame header at offset %d", off)
	}
	magic := binary.LittleEndian.Uint32(h[0:4])
	if magic == 0 {
		// Zero padding: valid only if zeros run to EOF.
		if rest, err := io.ReadAll(br); err == nil && allZero(h[4:]) && allZero(rest) {
			return Record{}, 0, io.EOF
		}
		return Record{}, 0, fmt.Errorf("zero frame marker at offset %d inside live data", off)
	}
	if magic != recMagic {
		return Record{}, 0, fmt.Errorf("bad frame marker %#x at offset %d", magic, off)
	}
	n := binary.LittleEndian.Uint32(h[4:8])
	if n == 0 || n > 1<<24 {
		return Record{}, 0, fmt.Errorf("implausible record length %d at offset %d", n, off)
	}
	payload := make([]byte, int(n))
	if _, err := io.ReadFull(br, payload); err != nil {
		return Record{}, 0, fmt.Errorf("torn record payload at offset %d", off)
	}
	if crc := crc32.ChecksumIEEE(payload); crc != binary.LittleEndian.Uint32(h[8:12]) {
		return Record{}, 0, fmt.Errorf("checksum mismatch at offset %d", off)
	}
	rec, err := decodeRecord(payload)
	if err != nil {
		return Record{}, 0, fmt.Errorf("undecodable record at offset %d: %w", off, err)
	}
	next := off + frameHeader + int64(n)
	if pad := padTo(next, recAlign); pad > 0 {
		if _, err := io.CopyN(io.Discard, br, pad); err != nil {
			return Record{}, 0, fmt.Errorf("torn frame padding at offset %d", next)
		}
		next += pad
	}
	return rec, next, nil
}

func allZero(b []byte) bool {
	for _, c := range b {
		if c != 0 {
			return false
		}
	}
	return true
}

func padTo(off int64, align int64) int64 {
	if rem := off % align; rem != 0 {
		return align - rem
	}
	return 0
}

// Append assigns the next sequence number, frames and writes the record
// to the active segment (rolling to a fresh page-aligned segment past
// the size threshold), and updates the in-memory index. The write is
// buffered by the OS; call Sync (or Close) for durability points.
func (s *Store) Append(r Record) (uint64, error) {
	if s.active == nil {
		if err := s.roll(); err != nil {
			return 0, err
		}
	}
	seg := s.segs[len(s.segs)-1]
	if seg.size >= s.maxSeg {
		if err := s.roll(); err != nil {
			return 0, err
		}
		seg = s.segs[len(s.segs)-1]
	}
	r.Seq = s.nextSeq
	payload, err := encodeRecord(r)
	if err != nil {
		return 0, err
	}
	frame := make([]byte, frameHeader+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], recMagic)
	binary.LittleEndian.PutUint32(frame[4:8], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[8:12], crc32.ChecksumIEEE(payload))
	copy(frame[frameHeader:], payload)
	if pad := padTo(seg.size+int64(len(frame)), recAlign); pad > 0 {
		frame = append(frame, make([]byte, pad)...)
	}
	if _, err := s.active.Write(frame); err != nil {
		return 0, fmt.Errorf("store: %w", err)
	}
	seg.size += int64(len(frame))
	seg.nrec++
	if seg.minSeq == 0 {
		seg.minSeq = r.Seq
	}
	seg.maxSeq = r.Seq
	if r.RunID != "" {
		seg.runIDs[r.RunID] = true
	}
	if r.Type == TypeRun {
		s.runs = append(s.runs, r)
	}
	s.nrec++
	s.nextSeq++
	return r.Seq, nil
}

// roll closes the active segment and starts the next one with a fresh
// page-aligned header.
func (s *Store) roll() error {
	if s.active != nil {
		if err := s.active.Sync(); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		if err := s.active.Close(); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		s.active = nil
	}
	index := 1
	if n := len(s.segs); n > 0 {
		index = s.segs[n-1].index + 1
	}
	path := filepath.Join(s.dir, fmt.Sprintf("%08d.seg", index))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	var hdr [PageSize]byte
	copy(hdr[:8], segMagic[:])
	binary.LittleEndian.PutUint32(hdr[8:12], FormatVersion)
	binary.LittleEndian.PutUint32(hdr[12:16], PageSize)
	binary.LittleEndian.PutUint32(hdr[16:20], uint32(index))
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return fmt.Errorf("store: %w", err)
	}
	s.active = f
	s.segs = append(s.segs, &segInfo{path: path, index: index, size: PageSize, runIDs: map[string]bool{}})
	return nil
}

// Sync flushes the active segment to stable storage.
func (s *Store) Sync() error {
	if s.active == nil {
		return nil
	}
	if err := s.active.Sync(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// Close syncs and closes the store.
func (s *Store) Close() error {
	if s.active == nil {
		return nil
	}
	err := s.active.Sync()
	if cerr := s.active.Close(); err == nil {
		err = cerr
	}
	s.active = nil
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// Len is the number of live records (all types).
func (s *Store) Len() int { return s.nrec }

// Dir is the store directory.
func (s *Store) Dir() string { return s.dir }

// Segments is the number of segment files.
func (s *Store) Segments() int { return len(s.segs) }

// Runs returns the TypeRun records in append order.
func (s *Store) Runs() []Record {
	out := make([]Record, len(s.runs))
	copy(out, s.runs)
	return out
}

// RunByID returns the run record with the given id.
func (s *Store) RunByID(id string) (Record, bool) {
	for _, r := range s.runs {
		if r.RunID == id {
			return r, true
		}
	}
	return Record{}, false
}

// Scan streams every record matching f, in sequence order, to fn.
// The filter is pushed down to the segment walk: segments whose
// sequence range or run-id set cannot match are skipped without being
// read. fn returning a non-nil error stops the scan and returns it.
func (s *Store) Scan(f Filter, fn func(Record) error) error {
	for _, seg := range s.segs {
		if f.SinceSeq > 0 && seg.maxSeq < f.SinceSeq {
			continue
		}
		if f.RunID != "" && !seg.runIDs[f.RunID] {
			continue
		}
		if err := s.scanSegment(seg, f, fn); err != nil {
			return err
		}
	}
	return nil
}

func (s *Store) scanSegment(seg *segInfo, f Filter, fn func(Record) error) error {
	fh, err := os.Open(seg.path)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer fh.Close()
	if _, err := fh.Seek(PageSize, io.SeekStart); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	// Never read past the replay-validated extent: the active segment
	// may carry a buffered, not-yet-indexed tail mid-Append, and a torn
	// tail is already excluded from seg.size.
	br := bufio.NewReader(io.LimitReader(fh, seg.size-PageSize))
	off := int64(PageSize)
	for {
		rec, next, err := readFrame(br, off)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("store: %s: %w", seg.path, err)
		}
		off = next
		if f.Match(rec) {
			if err := fn(rec); err != nil {
				return err
			}
		}
	}
}

// Select collects every record matching f, in sequence order.
func (s *Store) Select(f Filter) ([]Record, error) {
	var out []Record
	err := s.Scan(f, func(r Record) error {
		out = append(out, r)
		return nil
	})
	return out, err
}
