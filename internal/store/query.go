package store

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Filter is the predicate pushed down into Store.Scan. Zero fields
// match everything; string fields match exactly.
type Filter struct {
	Type       Type // 0 = any
	RunID      string
	Source     string
	Experiment string
	Arch       string
	Collective string
	Series     string
	Verdict    string
	// MinSize/MaxSize bound Record.Size when > 0.
	MinSize int64
	MaxSize int64
	// SinceSeq keeps records with Seq >= SinceSeq (segments wholly
	// before it are skipped without being read).
	SinceSeq uint64
}

// Match reports whether the record passes the filter.
func (f Filter) Match(r Record) bool {
	switch {
	case f.Type != 0 && r.Type != f.Type,
		f.RunID != "" && r.RunID != f.RunID,
		f.Source != "" && r.Source != f.Source,
		f.Experiment != "" && r.Experiment != f.Experiment,
		f.Arch != "" && r.Arch != f.Arch,
		f.Collective != "" && r.Collective != f.Collective,
		f.Series != "" && r.Series != f.Series,
		f.Verdict != "" && r.Verdict != f.Verdict,
		f.MinSize > 0 && r.Size < f.MinSize,
		f.MaxSize > 0 && r.Size > f.MaxSize,
		f.SinceSeq > 0 && r.Seq < f.SinceSeq:
		return false
	}
	return true
}

// Key identifies one experiment cell across runs: two records with the
// same Key measure the same thing, so their values are comparable.
type Key struct {
	Experiment string
	Table      string
	Arch       string
	Collective string
	Series     string
	X          string
}

// KeyOf extracts the cell identity of a record.
func KeyOf(r Record) Key {
	return Key{
		Experiment: r.Experiment,
		Table:      r.Table,
		Arch:       r.Arch,
		Collective: r.Collective,
		Series:     r.Series,
		X:          r.X,
	}
}

// String renders the key compactly for reports:
// "tab6 · knl/gather · seq-read @ 64K".
func (k Key) String() string {
	var b strings.Builder
	b.WriteString(k.Experiment)
	if k.Arch != "" || k.Collective != "" {
		fmt.Fprintf(&b, " · %s", strings.Trim(k.Arch+"/"+k.Collective, "/"))
	}
	if k.Series != "" {
		fmt.Fprintf(&b, " · %s", k.Series)
	}
	if k.X != "" {
		fmt.Fprintf(&b, " @ %s", k.X)
	}
	return b.String()
}

func (k Key) less(o Key) bool {
	if k.Experiment != o.Experiment {
		return k.Experiment < o.Experiment
	}
	if k.Table != o.Table {
		return k.Table < o.Table
	}
	if k.Arch != o.Arch {
		return k.Arch < o.Arch
	}
	if k.Collective != o.Collective {
		return k.Collective < o.Collective
	}
	if k.Series != o.Series {
		return k.Series < o.Series
	}
	return k.X < o.X
}

// Agg is the per-key aggregate produced by Group.
type Agg struct {
	Key   Key
	Count int
	Min   float64
	Max   float64
	Sum   float64
	Last  float64 // highest-Seq value
	Unit  string
}

// Mean is Sum/Count.
func (a Agg) Mean() float64 {
	if a.Count == 0 {
		return 0
	}
	return a.Sum / float64(a.Count)
}

// Group aggregates records by cell key, ordered by key. Run records
// (empty keys aside) participate like any other record, so callers
// normally group a Select with Type: TypeCell.
func Group(recs []Record) []Agg {
	byKey := map[Key]*Agg{}
	for _, r := range recs {
		k := KeyOf(r)
		a := byKey[k]
		if a == nil {
			a = &Agg{Key: k, Min: r.Value, Max: r.Value, Unit: r.Unit}
			byKey[k] = a
		}
		a.Count++
		a.Sum += r.Value
		a.Last = r.Value
		if r.Value < a.Min {
			a.Min = r.Value
		}
		if r.Value > a.Max {
			a.Max = r.Value
		}
		if a.Unit == "" {
			a.Unit = r.Unit
		}
	}
	out := make([]Agg, 0, len(byKey))
	for _, a := range byKey {
		out = append(out, *a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key.less(out[j].Key) })
	return out
}

// Delta is one cell compared between a baseline and a head run.
type Delta struct {
	Key  Key
	Base float64
	Head float64
	Unit string
}

// Ratio is Head/Base (Inf when the baseline is 0 and the head is not).
func (d Delta) Ratio() float64 {
	if d.Base == 0 {
		if d.Head == 0 {
			return 1
		}
		return math.Inf(1)
	}
	return d.Head / d.Base
}

// Deltas matches baseline and head cell records by key (last value
// wins within each set) and returns the joined deltas ordered by key,
// plus the keys present on only one side.
func Deltas(base, head []Record) (ds []Delta, onlyBase, onlyHead []Key) {
	bm := lastByKey(base)
	hm := lastByKey(head)
	for k, hv := range hm {
		if bv, ok := bm[k]; ok {
			ds = append(ds, Delta{Key: k, Base: bv.Value, Head: hv.Value, Unit: hv.Unit})
		} else {
			onlyHead = append(onlyHead, k)
		}
	}
	for k := range bm {
		if _, ok := hm[k]; !ok {
			onlyBase = append(onlyBase, k)
		}
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i].Key.less(ds[j].Key) })
	sort.Slice(onlyBase, func(i, j int) bool { return onlyBase[i].less(onlyBase[j]) })
	sort.Slice(onlyHead, func(i, j int) bool { return onlyHead[i].less(onlyHead[j]) })
	return ds, onlyBase, onlyHead
}

func lastByKey(recs []Record) map[Key]Record {
	m := make(map[Key]Record, len(recs))
	for _, r := range recs {
		m[KeyOf(r)] = r
	}
	return m
}

// RegressOpts tunes what counts as a regression.
type RegressOpts struct {
	// Threshold is the head/base ratio above which a cell regressed
	// (1.25 = 25% slower). Values <= 1 are rejected by Validate.
	Threshold float64
	// MinValue ignores cells where both sides are below this absolute
	// value — sub-noise latencies whose ratios are meaningless.
	MinValue float64
}

// Validate rejects unusable option values.
func (o RegressOpts) Validate() error {
	if o.Threshold <= 1 {
		return fmt.Errorf("store: regression threshold %g must be > 1 (a head/base ratio)", o.Threshold)
	}
	if o.MinValue < 0 {
		return fmt.Errorf("store: negative min-value %g", o.MinValue)
	}
	return nil
}

// Regressed reports whether the delta breaches the options.
func (d Delta) Regressed(o RegressOpts) bool {
	if d.Base < o.MinValue && d.Head < o.MinValue {
		return false
	}
	return d.Ratio() > o.Threshold
}

// Regressions filters deltas down to threshold breaches, worst ratio
// first.
func Regressions(ds []Delta, o RegressOpts) []Delta {
	var out []Delta
	for _, d := range ds {
		if d.Regressed(o) {
			out = append(out, d)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Ratio() > out[j].Ratio() })
	return out
}

// CellsOfRun selects the cell and verdict records of one run.
func (s *Store) CellsOfRun(runID string) ([]Record, error) {
	recs, err := s.Select(Filter{RunID: runID})
	if err != nil {
		return nil, err
	}
	out := recs[:0]
	for _, r := range recs {
		if r.Type == TypeCell || r.Type == TypeVerdict {
			out = append(out, r)
		}
	}
	return out, nil
}

// LatestRunWithCells returns the most recent run (by append order) of
// the given source ("" = any) that has at least one cell record, and
// that run's cell records.
func (s *Store) LatestRunWithCells(source string) (Record, []Record, error) {
	runs := s.Runs()
	for i := len(runs) - 1; i >= 0; i-- {
		if source != "" && runs[i].Source != source {
			continue
		}
		cells, err := s.CellsOfRun(runs[i].RunID)
		if err != nil {
			return Record{}, nil, err
		}
		if len(cells) > 0 {
			return runs[i], cells, nil
		}
	}
	return Record{}, nil, fmt.Errorf("store: no run with recorded cells%s in %s", sourceClause(source), s.dir)
}

// PreviousRunWithCells returns the latest run with cells that was
// appended before the given run.
func (s *Store) PreviousRunWithCells(before string, source string) (Record, []Record, error) {
	runs := s.Runs()
	idx := -1
	for i, r := range runs {
		if r.RunID == before {
			idx = i
			break
		}
	}
	if idx < 0 {
		return Record{}, nil, fmt.Errorf("store: unknown run id %q", before)
	}
	for i := idx - 1; i >= 0; i-- {
		if source != "" && runs[i].Source != source {
			continue
		}
		cells, err := s.CellsOfRun(runs[i].RunID)
		if err != nil {
			return Record{}, nil, err
		}
		if len(cells) > 0 {
			return runs[i], cells, nil
		}
	}
	return Record{}, nil, fmt.Errorf("store: no earlier run with recorded cells%s before %s", sourceClause(source), before)
}

func sourceClause(source string) string {
	if source == "" {
		return ""
	}
	return " from source " + source
}
