package store

import (
	"fmt"
	"math"
	"path/filepath"
	"testing"
)

// seedCorpus appends two bench runs of the same 3-arch × 2-series × 3-x
// cell grid; scale multiplies the second run's values (2.0 = uniform 2x
// regression) and slowKey, when non-empty, is the only series scaled.
func seedCorpus(t *testing.T, dir string, scale float64, slowSeries string) (*Store, string, string) {
	t.Helper()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendRun := func(id string, mul float64) {
		if _, err := st.Append(Record{Type: TypeRun, RunID: id, Source: "bench", GitRev: "rev-" + id}); err != nil {
			t.Fatal(err)
		}
		for _, a := range []string{"knl", "broadwell", "power8"} {
			for _, series := range []string{"throttled", "sequential"} {
				for xi, x := range []string{"4K", "64K", "1M"} {
					v := float64(10*(xi+1)) * archFactor(a) * seriesFactor(series)
					if slowSeries == "" || series == slowSeries {
						v *= mul
					}
					sz, _ := ParseSizeLabel(x)
					if _, err := st.Append(Record{
						Type: TypeCell, RunID: id, Experiment: "fig7",
						Table: "Fig 7: Scatter algorithms, " + a, Arch: a,
						Collective: "scatter", Series: series, X: x,
						Size: sz, Value: v, Unit: "us",
					}); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
	}
	appendRun("base", 1)
	appendRun("head", scale)
	return st, "base", "head"
}

func archFactor(a string) float64 {
	switch a {
	case "knl":
		return 3
	case "power8":
		return 2
	default:
		return 1
	}
}

func seriesFactor(s string) float64 {
	if s == "throttled" {
		return 0.5
	}
	return 1
}

func TestFilterPushdown(t *testing.T) {
	st, base, head := seedCorpus(t, filepath.Join(t.TempDir(), "q.store"), 1, "")
	defer st.Close()

	knl, err := st.Select(Filter{Type: TypeCell, Arch: "knl"})
	if err != nil {
		t.Fatal(err)
	}
	if len(knl) != 12 { // 2 runs × 2 series × 3 x
		t.Fatalf("arch filter: %d records, want 12", len(knl))
	}
	for _, r := range knl {
		if r.Arch != "knl" || r.Type != TypeCell {
			t.Fatalf("filter leak: %+v", r)
		}
	}
	big, err := st.Select(Filter{Type: TypeCell, MinSize: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(big) != 24 { // 64K and 1M rows only
		t.Fatalf("size filter: %d records, want 24", len(big))
	}
	headOnly, err := st.Select(Filter{RunID: head, Type: TypeCell})
	if err != nil {
		t.Fatal(err)
	}
	baseOnly, err := st.Select(Filter{RunID: base, Type: TypeCell})
	if err != nil {
		t.Fatal(err)
	}
	if len(headOnly) != 18 || len(baseOnly) != 18 {
		t.Fatalf("run filters: %d/%d, want 18/18", len(baseOnly), len(headOnly))
	}
}

func TestGroupAggregates(t *testing.T) {
	st, _, _ := seedCorpus(t, filepath.Join(t.TempDir(), "q.store"), 1, "")
	defer st.Close()
	cells, err := st.Select(Filter{Type: TypeCell})
	if err != nil {
		t.Fatal(err)
	}
	groups := Group(cells)
	if len(groups) != 18 { // identical runs collapse per key
		t.Fatalf("%d groups, want 18", len(groups))
	}
	for _, g := range groups {
		if g.Count != 2 {
			t.Fatalf("key %v: count %d, want 2 (one per run)", g.Key, g.Count)
		}
		if g.Min != g.Max || g.Mean() != g.Last {
			t.Fatalf("key %v: identical runs should aggregate flat: %+v", g.Key, g)
		}
		if g.Unit != "us" {
			t.Fatalf("key %v: unit %q", g.Key, g.Unit)
		}
	}
	// Ordered by key.
	for i := 1; i < len(groups); i++ {
		if !groups[i-1].Key.less(groups[i].Key) {
			t.Fatalf("groups unordered at %d", i)
		}
	}
}

func TestDeltaIdenticalRunsPass(t *testing.T) {
	st, base, head := seedCorpus(t, filepath.Join(t.TempDir(), "q.store"), 1, "")
	defer st.Close()
	b, _ := st.Select(Filter{RunID: base, Type: TypeCell})
	h, _ := st.Select(Filter{RunID: head, Type: TypeCell})
	ds, onlyB, onlyH := Deltas(b, h)
	if len(ds) != 18 || len(onlyB) != 0 || len(onlyH) != 0 {
		t.Fatalf("deltas %d onlyBase %d onlyHead %d", len(ds), len(onlyB), len(onlyH))
	}
	for _, d := range ds {
		if d.Ratio() != 1 {
			t.Fatalf("identical runs: ratio %v at %v", d.Ratio(), d.Key)
		}
	}
	regs := Regressions(ds, RegressOpts{Threshold: 1.25})
	if len(regs) != 0 {
		t.Fatalf("identical runs flagged %d regressions", len(regs))
	}
}

func TestDeltaFlagsInjectedRegression(t *testing.T) {
	st, base, head := seedCorpus(t, filepath.Join(t.TempDir(), "q.store"), 2.0, "sequential")
	defer st.Close()
	b, _ := st.Select(Filter{RunID: base, Type: TypeCell})
	h, _ := st.Select(Filter{RunID: head, Type: TypeCell})
	ds, _, _ := Deltas(b, h)
	regs := Regressions(ds, RegressOpts{Threshold: 1.25})
	if len(regs) != 9 { // 3 archs × 3 x of the slowed series
		t.Fatalf("flagged %d cells, want 9", len(regs))
	}
	for _, d := range regs {
		if d.Key.Series != "sequential" {
			t.Fatalf("flagged untouched series: %v", d.Key)
		}
		if math.Abs(d.Ratio()-2) > 1e-12 {
			t.Fatalf("ratio %v, want 2", d.Ratio())
		}
	}
	// Worst-first ordering is stable.
	for i := 1; i < len(regs); i++ {
		if regs[i].Ratio() > regs[i-1].Ratio() {
			t.Fatal("regressions not sorted worst-first")
		}
	}
	// A looser threshold tolerates the same 2x.
	if n := len(Regressions(ds, RegressOpts{Threshold: 2.5})); n != 0 {
		t.Fatalf("threshold 2.5 still flagged %d", n)
	}
}

func TestRegressOptsMinValue(t *testing.T) {
	ds := []Delta{
		{Key: Key{Series: "noise"}, Base: 0.001, Head: 0.004},
		{Key: Key{Series: "real"}, Base: 10, Head: 40},
	}
	regs := Regressions(ds, RegressOpts{Threshold: 1.5, MinValue: 0.05})
	if len(regs) != 1 || regs[0].Key.Series != "real" {
		t.Fatalf("min-value gating failed: %+v", regs)
	}
	if err := (RegressOpts{Threshold: 1.0}).Validate(); err == nil {
		t.Fatal("threshold 1.0 accepted")
	}
	if err := (RegressOpts{Threshold: 1.2, MinValue: -1}).Validate(); err == nil {
		t.Fatal("negative min-value accepted")
	}
}

func TestLatestAndPreviousRunWithCells(t *testing.T) {
	st, base, head := seedCorpus(t, filepath.Join(t.TempDir(), "q.store"), 1, "")
	defer st.Close()
	// An empty trailing run (no cells) must be skipped.
	if _, err := st.Append(Record{Type: TypeRun, RunID: "empty", Source: "bench"}); err != nil {
		t.Fatal(err)
	}
	run, cells, err := st.LatestRunWithCells("bench")
	if err != nil {
		t.Fatal(err)
	}
	if run.RunID != head || len(cells) != 18 {
		t.Fatalf("latest = %s with %d cells, want %s/18", run.RunID, len(cells), head)
	}
	prev, pcells, err := st.PreviousRunWithCells(head, "")
	if err != nil {
		t.Fatal(err)
	}
	if prev.RunID != base || len(pcells) != 18 {
		t.Fatalf("previous = %s with %d cells, want %s/18", prev.RunID, len(pcells), base)
	}
	if _, _, err := st.PreviousRunWithCells(base, ""); err == nil {
		t.Fatal("previous of the first run should fail")
	}
	if _, _, err := st.PreviousRunWithCells("nope", ""); err == nil {
		t.Fatal("unknown run id should fail")
	}
}

func TestDeltaDisjointKeys(t *testing.T) {
	b := []Record{{Type: TypeCell, Experiment: "a", Series: "s", X: "1", Value: 1}}
	h := []Record{{Type: TypeCell, Experiment: "b", Series: "s", X: "1", Value: 1}}
	ds, onlyB, onlyH := Deltas(b, h)
	if len(ds) != 0 || len(onlyB) != 1 || len(onlyH) != 1 {
		t.Fatalf("disjoint join: %d/%d/%d", len(ds), len(onlyB), len(onlyH))
	}
}

func TestParseSizeLabel(t *testing.T) {
	cases := []struct {
		in   string
		want int64
		ok   bool
	}{
		{"4K", 4096, true}, {"1M", 1 << 20, true}, {"1024", 1024, true},
		{"2G", 2 << 30, true}, {"", 0, false}, {"8 readers", 0, false},
		{"-4K", 0, false}, {"K", 0, false},
	}
	for _, c := range cases {
		got, ok := ParseSizeLabel(c.in)
		if got != c.want || ok != c.ok {
			t.Errorf("ParseSizeLabel(%q) = %d,%v want %d,%v", c.in, got, ok, c.want, c.ok)
		}
	}
}

func TestKeyString(t *testing.T) {
	k := Key{Experiment: "tab6", Arch: "knl", Collective: "gather", Series: "seq-read", X: "64K"}
	want := "tab6 · knl/gather · seq-read @ 64K"
	if got := k.String(); got != want {
		t.Fatalf("Key.String() = %q, want %q", got, want)
	}
	if got := (Key{Experiment: "bench.sh", Series: "tab6_seconds_j1"}).String(); got != "bench.sh · tab6_seconds_j1" {
		t.Fatalf("metric key renders %q", got)
	}
	_ = fmt.Sprintf("%v", k)
}
