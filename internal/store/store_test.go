package store

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"
)

// genRecord draws a deterministic pseudo-random record (cells mostly,
// with some runs and verdicts mixed in).
func genRecord(rng *rand.Rand, i int) Record {
	archs := []string{"knl", "broadwell", "power8"}
	kinds := []string{"scatter", "gather", "bcast", "allgather", "alltoall", "reduce"}
	switch rng.Intn(10) {
	case 0:
		return Record{
			Type: TypeRun, RunID: fmt.Sprintf("run-%d", i), Unix: int64(1000 + i),
			Source: "bench", GitRev: "abcdef123456", Host: "hostA",
			GoVersion: "go1.24.0", CPUs: 8, Jobs: int64(rng.Intn(16)), Seed: rng.Int63n(1 << 30),
			Note: "generated",
		}
	case 1:
		return Record{
			Type: TypeVerdict, RunID: fmt.Sprintf("run-%d", i%7),
			Experiment: "fuzz", Arch: archs[rng.Intn(3)], Series: "corpus",
			Value: float64(rng.Intn(500)), Verdict: []string{"pass", "fail"}[rng.Intn(2)],
			Detail: "corpus=200 fault_plans=57 kill_plans=11",
		}
	default:
		size := int64(1) << (10 + rng.Intn(12))
		return Record{
			Type: TypeCell, RunID: fmt.Sprintf("run-%d", i%7),
			Experiment: fmt.Sprintf("fig%d", 7+rng.Intn(5)), Table: "Fig: some table, Arch X",
			Arch: archs[rng.Intn(3)], Collective: kinds[rng.Intn(6)],
			Series: fmt.Sprintf("algo-%d", rng.Intn(4)), X: fmt.Sprintf("%dK", size>>10),
			Size: size, Value: rng.Float64() * 1e4, Unit: "us",
		}
	}
}

func TestRecordCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		want := genRecord(rng, i)
		want.Seq = uint64(i + 1)
		b, err := encodeRecord(want)
		if err != nil {
			t.Fatal(err)
		}
		got, err := decodeRecord(b)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("record %d round trip:\n got %+v\nwant %+v", i, got, want)
		}
	}
}

func TestAppendReopenScan(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "s.store")
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	var want []Record
	for i := 0; i < 300; i++ {
		r := genRecord(rng, i)
		seq, err := st.Append(r)
		if err != nil {
			t.Fatal(err)
		}
		r.Seq = seq
		want = append(want, r)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir, Options{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	got, err := st2.Select(Filter{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("reopen scan: got %d records, want %d (or contents differ)", len(got), len(want))
	}
	for i := 1; i < len(got); i++ {
		if got[i].Seq <= got[i-1].Seq {
			t.Fatalf("scan out of order at %d: %d then %d", i, got[i-1].Seq, got[i].Seq)
		}
	}
	// The run index matches the run records in the log.
	var wantRuns []Record
	for _, r := range want {
		if r.Type == TypeRun {
			wantRuns = append(wantRuns, r)
		}
	}
	if !reflect.DeepEqual(st2.Runs(), wantRuns) {
		t.Fatalf("run index diverges from log: %d vs %d runs", len(st2.Runs()), len(wantRuns))
	}
}

func TestSegmentRollAndAlignment(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "s.store")
	// Tiny segments force several rolls.
	st, err := Open(dir, Options{MaxSegment: 2 * PageSize})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	n := 400
	for i := 0; i < n; i++ {
		if _, err := st.Append(genRecord(rng, i)); err != nil {
			t.Fatal(err)
		}
	}
	if st.Segments() < 3 {
		t.Fatalf("expected multiple segments, got %d", st.Segments())
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "*.seg"))
	if len(segs) < 3 {
		t.Fatalf("expected >= 3 segment files, got %v", segs)
	}
	for _, p := range segs {
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if len(b) < PageSize {
			t.Fatalf("%s shorter than one header page", p)
		}
		if string(b[:8]) != "CAMCSTOR" {
			t.Fatalf("%s missing segment magic", p)
		}
		if v := binary.LittleEndian.Uint32(b[8:12]); v != FormatVersion {
			t.Fatalf("%s header version %d", p, v)
		}
	}
	// Reopen with the default threshold still replays everything.
	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.Len() != n {
		t.Fatalf("reopen after rolls: %d records, want %d", st2.Len(), n)
	}
}

// TestCrashTruncationRecovery is the durability property test of the
// issue: append N records, sync, then simulate a crash by truncating
// the log at a random byte inside the tail; reopening must recover
// exactly the records whose frames survived intact, in order, with
// checksums verified — and the store must accept further appends.
func TestCrashTruncationRecovery(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(100 + trial)))
			dir := filepath.Join(t.TempDir(), "s.store")
			st, err := Open(dir, Options{MaxSegment: 4 * PageSize})
			if err != nil {
				t.Fatal(err)
			}
			var want []Record
			n := 50 + rng.Intn(200)
			for i := 0; i < n; i++ {
				r := genRecord(rng, i)
				seq, err := st.Append(r)
				if err != nil {
					t.Fatal(err)
				}
				r.Seq = seq
				want = append(want, r)
			}
			if err := st.Close(); err != nil {
				t.Fatal(err)
			}

			segs, _ := filepath.Glob(filepath.Join(dir, "*.seg"))
			sort.Strings(segs)
			last := segs[len(segs)-1]
			fi, err := os.Stat(last)
			if err != nil {
				t.Fatal(err)
			}
			if fi.Size() <= PageSize {
				t.Skip("last segment holds no records")
			}
			// Crash: chop the last segment at a random byte after the
			// header (possibly mid-frame, possibly on a boundary).
			cut := PageSize + rng.Int63n(fi.Size()-PageSize)
			if err := os.Truncate(last, cut); err != nil {
				t.Fatal(err)
			}

			st2, err := Open(dir, Options{})
			if err != nil {
				t.Fatalf("reopen after truncation at %d/%d: %v", cut, fi.Size(), err)
			}
			got, err := st2.Select(Filter{})
			if err != nil {
				t.Fatal(err)
			}
			// The recovered log must be a prefix of what was written.
			if len(got) > len(want) {
				t.Fatalf("recovered %d records, wrote %d", len(got), len(want))
			}
			if !reflect.DeepEqual(got, want[:len(got)]) {
				t.Fatalf("recovered records are not the written prefix (len %d)", len(got))
			}
			// Appending after recovery continues the sequence.
			extra := genRecord(rng, n)
			seq, err := st2.Append(extra)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) > 0 && seq <= got[len(got)-1].Seq {
				t.Fatalf("post-recovery seq %d not beyond recovered tail %d", seq, got[len(got)-1].Seq)
			}
			if err := st2.Close(); err != nil {
				t.Fatal(err)
			}
			st3, err := Open(dir, Options{ReadOnly: true})
			if err != nil {
				t.Fatal(err)
			}
			if st3.Len() != len(got)+1 {
				t.Fatalf("after recovery+append: %d records, want %d", st3.Len(), len(got)+1)
			}
		})
	}
}

// TestCorruptTailBitFlip flips a byte in the last segment's final
// record frame: replay must drop that record (checksum) but keep the
// prefix.
func TestCorruptTailBitFlip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	dir := filepath.Join(t.TempDir(), "s.store")
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var want []Record
	for i := 0; i < 40; i++ {
		r := genRecord(rng, i)
		seq, _ := st.Append(r)
		r.Seq = seq
		want = append(want, r)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "*.seg"))
	last := segs[len(segs)-1]
	b, err := os.ReadFile(last)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte near the end (inside the final frame's payload).
	b[len(b)-5] ^= 0xFF
	if err := os.WriteFile(last, b, 0o644); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	got, err := st2.Select(Filter{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want)-1 {
		t.Fatalf("bit flip in final frame: recovered %d records, want %d", len(got), len(want)-1)
	}
	if !reflect.DeepEqual(got, want[:len(got)]) {
		t.Fatal("recovered records are not the written prefix")
	}
}

// Mid-log corruption (not the final segment) must refuse to open
// rather than silently dropping interior history.
func TestMidLogCorruptionRefused(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	dir := filepath.Join(t.TempDir(), "s.store")
	st, err := Open(dir, Options{MaxSegment: 2 * PageSize})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		if _, err := st.Append(genRecord(rng, i)); err != nil {
			t.Fatal(err)
		}
	}
	if st.Segments() < 2 {
		t.Fatal("need at least two segments")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "*.seg"))
	sort.Strings(segs)
	first := segs[0]
	b, _ := os.ReadFile(first)
	b[PageSize+20] ^= 0xFF
	if err := os.WriteFile(first, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("open succeeded despite mid-log corruption")
	}
}

func TestNewerFormatVersionRefused(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "s.store")
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Append(Record{Type: TypeRun, RunID: "r1", Source: "bench"}); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, "00000001.seg")
	b, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	binary.LittleEndian.PutUint32(b[8:12], FormatVersion+7)
	if err := os.WriteFile(seg, b, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Open(dir, Options{})
	if err == nil {
		t.Fatal("opened a store with a newer format version")
	}
	for _, wantSub := range []string{"format version", "newer"} {
		if !strings.Contains(err.Error(), wantSub) {
			t.Fatalf("version error %q does not mention %q", err, wantSub)
		}
	}
}

func TestOpenRejectsNonSegmentFile(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "s.store")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "00000001.seg"), []byte("not a store"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("opened a directory with a bogus segment")
	}
}

func TestReadOnlyOpenMissing(t *testing.T) {
	if _, err := Open(filepath.Join(t.TempDir(), "absent.store"), Options{ReadOnly: true}); err == nil {
		t.Fatal("read-only open of a missing store succeeded")
	}
}

// TestReadOnlyToleratesTornTail pins the crash-then-query path: a store
// whose writer died mid-append must still open read-only (camc-report
// has no business truncating), serving the intact prefix and leaving
// the residue bytes on disk untouched.
func TestReadOnlyToleratesTornTail(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	dir := filepath.Join(t.TempDir(), "s.store")
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var want []Record
	for i := 0; i < 30; i++ {
		r := genRecord(rng, i)
		seq, _ := st.Append(r)
		r.Seq = seq
		want = append(want, r)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "*.seg"))
	sort.Strings(segs)
	last := segs[len(segs)-1]
	fi, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	// Crash: chop mid-way through the final frame.
	if err := os.Truncate(last, fi.Size()-5); err != nil {
		t.Fatal(err)
	}
	cut, _ := os.Stat(last)

	ro, err := Open(dir, Options{ReadOnly: true})
	if err != nil {
		t.Fatalf("read-only open of a torn store: %v", err)
	}
	got, err := ro.Select(Filter{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 || len(got) >= len(want) {
		t.Fatalf("recovered %d records, want a proper prefix of %d", len(got), len(want))
	}
	if !reflect.DeepEqual(got, want[:len(got)]) {
		t.Fatal("recovered records are not the written prefix")
	}
	// The residue stays on disk: read-only means read-only.
	after, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() != cut.Size() {
		t.Fatalf("read-only open changed the segment size %d -> %d", cut.Size(), after.Size())
	}
}
