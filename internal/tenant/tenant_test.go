package tenant

import "testing"

func TestPressureSumsAcrossJobs(t *testing.T) {
	h := NewHost()
	a, b := h.Join("train"), h.Join("rpc")
	if h.Pressure() != 0 {
		t.Fatalf("idle pressure %d", h.Pressure())
	}
	a.EnterLock()
	a.EnterLock()
	b.EnterLock()
	if got := h.Pressure(); got != 3 {
		t.Fatalf("pressure %d, want 3", got)
	}
	// Each job sees only the *others'* holders as ambient.
	if got := a.Ambient(); got != 1 {
		t.Fatalf("a ambient %d, want 1", got)
	}
	if got := b.Ambient(); got != 2 {
		t.Fatalf("b ambient %d, want 2", got)
	}
	a.ExitLock()
	a.ExitLock()
	b.ExitLock()
	if h.Pressure() != 0 {
		t.Fatalf("drained pressure %d", h.Pressure())
	}
	if a.PeakAmbient() != 1 || b.PeakAmbient() != 2 {
		t.Fatalf("peaks %d/%d, want 1/2", a.PeakAmbient(), b.PeakAmbient())
	}
}

func TestStaticBackgroundPressure(t *testing.T) {
	h := NewHost()
	h.Static = 5
	j := h.Join("solo")
	j.EnterLock()
	if got := j.Ambient(); got != 5 {
		t.Fatalf("ambient %d, want static 5 (own holder excluded)", got)
	}
	j.ExitLock()
}

func TestCopierSharing(t *testing.T) {
	h := NewHost()
	a, b := h.Join("a"), h.Join("b")
	a.BeginCopy()
	b.BeginCopy()
	b.BeginCopy()
	if h.Copiers() != 3 {
		t.Fatalf("copiers %d, want 3", h.Copiers())
	}
	if a.OtherCopiers() != 2 || b.OtherCopiers() != 1 {
		t.Fatalf("others %d/%d, want 2/1", a.OtherCopiers(), b.OtherCopiers())
	}
	a.EndCopy()
	b.EndCopy()
	b.EndCopy()
	if h.Copiers() != 0 {
		t.Fatalf("drained copiers %d", h.Copiers())
	}
}

func TestNilJobIsInert(t *testing.T) {
	var j *Job
	j.EnterLock()
	j.ExitLock()
	j.BeginCopy()
	j.EndCopy()
	if j.Ambient() != 0 || j.OtherCopiers() != 0 || j.PeakAmbient() != 0 || j.Name() != "" {
		t.Fatal("nil job not inert")
	}
}

func TestUnbalancedExitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ExitLock without EnterLock did not panic")
		}
	}()
	NewHost().Join("x").ExitLock()
}
