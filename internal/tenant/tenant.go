// Package tenant models machine-level multi-tenancy: several jobs
// (communicators) sharing one physical node, interfering through the
// kernel resources the paper's contention model is built around.
//
// The mm-lock contention factor γ(c) the paper measures (Fig 5) is a
// shared-kernel-resource curve: its super-linear growth comes from
// lock cache-line bouncing that any co-located locker inflates, not
// just the lockers of one MPI job (Elphinstone et al.'s evaluation of
// coarse-grained kernel locking shows the same shape for unrelated
// workloads). A Host is the machine-wide registry those jobs meet in:
// each job tracks its live page-lock holders and active copy streams,
// and every kernel-assisted transfer evaluates γ over its own mm
// fan-in *plus* the ambient pressure the other jobs contribute at that
// instant — so a communicator tuned on an idle node measurably loses
// its crossover points when a training loop moves in next door.
//
// All counters are plain ints mutated from simulated processes: the
// discrete-event simulator runs exactly one process at a time, so no
// locking is needed and co-scheduled scenarios stay deterministic.
package tenant

import "fmt"

// Host is one physical machine's shared-kernel-resource registry. The
// zero value is unusable; use NewHost.
type Host struct {
	// Static is baseline background pressure: phantom page-lock
	// holders contributed by machine tenants outside the simulation
	// (the `ambient=` knob models the same thing per node; Static
	// applies host-wide, on top of every job's view).
	Static int

	jobs []*Job
}

// NewHost creates an empty machine registry.
func NewHost() *Host { return &Host{} }

// Join registers a new job (one communicator's worth of processes) on
// the machine and returns its handle.
func (h *Host) Join(name string) *Job {
	j := &Job{host: h, name: name}
	h.jobs = append(h.jobs, j)
	return j
}

// Jobs returns the registered jobs in join order.
func (h *Host) Jobs() []*Job { return h.jobs }

// Pressure returns the machine-wide live page-lock holder count: the
// sum over every job plus the static background.
func (h *Host) Pressure() int {
	p := h.Static
	for _, j := range h.jobs {
		p += j.holders
	}
	return p
}

// Copiers returns the machine-wide count of active copy streams.
func (h *Host) Copiers() int {
	c := 0
	for _, j := range h.jobs {
		c += j.copiers
	}
	return c
}

// Job is one tenant's handle on the shared machine. All methods are
// nil-safe: a nil Job reports zero ambient pressure and ignores
// enter/exit, so single-tenant runs cost nothing.
type Job struct {
	host    *Host
	name    string
	holders int // live page-lock holders of this job
	copiers int // active copy streams of this job

	peakAmbient int // highest cross-job pressure this job ever observed
}

// Name returns the job's registry name.
func (j *Job) Name() string {
	if j == nil {
		return ""
	}
	return j.name
}

// EnterLock counts one of the job's transfers into the machine-wide
// live lock-holder set (call when a transfer enters its locked page
// loop; pair with ExitLock).
func (j *Job) EnterLock() {
	if j == nil {
		return
	}
	j.holders++
}

// ExitLock removes one live lock holder.
func (j *Job) ExitLock() {
	if j == nil {
		return
	}
	j.holders--
	if j.holders < 0 {
		panic(fmt.Sprintf("tenant: job %q ExitLock without EnterLock", j.name))
	}
}

// Ambient returns the lock pressure this job's transfers see from the
// rest of the machine: every other job's live holders plus the host's
// static background. The job's own holders are excluded — those are
// already in its local mm fan-in.
func (j *Job) Ambient() int {
	if j == nil || j.host == nil {
		return 0
	}
	a := j.host.Pressure() - j.holders
	if a > j.peakAmbient {
		j.peakAmbient = a
	}
	return a
}

// PeakAmbient returns the highest cross-job pressure the job observed
// over its lifetime (diagnostics for interference experiments).
func (j *Job) PeakAmbient() int {
	if j == nil {
		return 0
	}
	return j.peakAmbient
}

// BeginCopy counts one of the job's active copy streams into the
// machine-wide memory-bandwidth sharing set; pair with EndCopy.
func (j *Job) BeginCopy() {
	if j == nil {
		return
	}
	j.copiers++
}

// EndCopy removes one active copy stream.
func (j *Job) EndCopy() {
	if j == nil {
		return
	}
	j.copiers--
	if j.copiers < 0 {
		panic(fmt.Sprintf("tenant: job %q EndCopy without BeginCopy", j.name))
	}
}

// OtherCopiers returns the copy streams the rest of the machine is
// running (the job's own streams excluded — its node already counts
// them).
func (j *Job) OtherCopiers() int {
	if j == nil || j.host == nil {
		return 0
	}
	return j.host.Copiers() - j.copiers
}
