package cluster

import (
	"testing"

	"camc/internal/arch"
	"camc/internal/core"
	"camc/internal/kernel"
)

func knlCluster(nodes, ppn int) *Cluster {
	return New(Config{Arch: arch.KNL(), NumNodes: nodes, PPN: ppn})
}

func TestNetworkTransfer(t *testing.T) {
	cl := knlCluster(2, 1)
	done, err := cl.Run(func(r *Rank) {
		const size = 1 << 20
		buf := r.Alloc(size)
		switch r.World {
		case 0:
			r.NetSend(1, buf, size)
		case 1:
			r.NetRecv(0, buf, size)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// 1 MiB at 12.5 GB/s ≈ 84us per side plus latency; receive side
	// serializes after the inject, so total is roughly 2x + latency.
	if done < 80 || done > 400 {
		t.Fatalf("1M network transfer = %.1fus, outside plausible range", done)
	}
}

func TestNetworkReceiverSerializes(t *testing.T) {
	// Two senders into one receiver must take about twice as long as one.
	lat := func(senders int) float64 {
		cl := knlCluster(senders+1, 1)
		done, err := cl.Run(func(r *Rank) {
			const size = 4 << 20
			buf := r.Alloc(size * int64(senders))
			if r.World == 0 {
				for s := 1; s <= senders; s++ {
					r.NetRecv(s, buf+kernel.Addr(int64(s-1)*size), size)
				}
			} else {
				r.NetSend(0, buf, size)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return done
	}
	one := lat(1)
	two := lat(2)
	// Injections overlap across sender nodes, but the receiver drains
	// serially: the second message adds one full drain time (4 MiB at
	// 12.5 GB/s ≈ 335us).
	drain := 4 * float64(1<<20) / 12.5e3
	if two-one < 0.9*drain {
		t.Fatalf("2 senders %.0fus vs 1 sender %.0fus: second drain (%.0fus) not serialized", two, one, drain)
	}
}

func TestWorldRankMapping(t *testing.T) {
	cl := knlCluster(3, 4)
	if cl.WorldSize() != 12 {
		t.Fatalf("world size = %d", cl.WorldSize())
	}
	seen := make(map[int]bool)
	_, err := cl.Run(func(r *Rank) {
		if r.World != r.Node*4+r.ID {
			t.Errorf("world rank %d != node %d * 4 + local %d", r.World, r.Node, r.ID)
		}
		seen[r.World] = true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 12 {
		t.Fatalf("only %d world ranks ran", len(seen))
	}
}

func TestTwoLevelGatherCompletes(t *testing.T) {
	for _, nodes := range []int{2, 4} {
		cl := knlCluster(nodes, 8)
		gather := GatherTwoLevel(core.TunedGather)
		done, err := cl.Run(func(r *Rank) { gather(r, 64<<10) })
		if err != nil {
			t.Fatalf("nodes=%d: %v", nodes, err)
		}
		if done <= 0 {
			t.Fatalf("nodes=%d: no time elapsed", nodes)
		}
	}
}

func TestFlatGatherCompletes(t *testing.T) {
	for _, tr := range []core.Transport{core.TransportPt2pt, core.TransportShm} {
		cl := knlCluster(2, 8)
		gather := GatherFlat(tr)
		if _, err := cl.Run(func(r *Rank) { gather(r, 64<<10) }); err != nil {
			t.Fatal(err)
		}
	}
}

func TestTwoLevelBeatsFlatAndGapGrows(t *testing.T) {
	// Fig 17's shape: the hierarchical gather with the contention-aware
	// intra-node design beats the flat gather, and the advantage grows
	// with node count.
	// Medium size: per-message network overheads at the root dominate
	// the flat design, which is where the paper's multi-node gains live.
	eta := int64(16 << 10)
	ppn := 16
	speedup := func(nodes int) float64 {
		cl := knlCluster(nodes, ppn)
		g := GatherTwoLevel(core.TunedGather)
		two, err := cl.Run(func(r *Rank) { g(r, eta) })
		if err != nil {
			t.Fatal(err)
		}
		cl2 := knlCluster(nodes, ppn)
		f := GatherFlat(core.TransportPt2pt)
		flat, err := cl2.Run(func(r *Rank) { f(r, eta) })
		if err != nil {
			t.Fatal(err)
		}
		return flat / two
	}
	s2 := speedup(2)
	s8 := speedup(8)
	if s2 <= 1 {
		t.Fatalf("two-level not faster at 2 nodes: speedup %.2f", s2)
	}
	if s8 <= s2 {
		t.Fatalf("speedup did not grow with node count: 2 nodes %.2f, 8 nodes %.2f", s2, s8)
	}
}

func TestPipelinedGatherOverlaps(t *testing.T) {
	// At large sizes, segmenting lets inter-node drains overlap the next
	// segment's intra-node gather, beating the unpipelined design; with
	// one segment the two designs coincide.
	eta := int64(1 << 20)
	run := func(g func(r *Rank, eta int64)) float64 {
		cl := knlCluster(4, 16)
		done, err := cl.Run(func(r *Rank) { g(r, eta) })
		if err != nil {
			t.Fatal(err)
		}
		return done
	}
	plain := run(GatherTwoLevel(core.GatherThrottled(8)))
	one := run(GatherTwoLevelPipelined(core.GatherThrottled(8), 1))
	four := run(GatherTwoLevelPipelined(core.GatherThrottled(8), 4))
	if relClose := one/plain > 1.05 || one/plain < 0.95; relClose {
		t.Fatalf("1-segment pipeline (%g) should match unpipelined (%g)", one, plain)
	}
	if four >= plain {
		t.Fatalf("4-segment pipeline (%g) not below unpipelined (%g)", four, plain)
	}
}

func TestPipelinedGatherRejectsBadSegments(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for segments=0")
		}
	}()
	GatherTwoLevelPipelined(core.TunedGather, 0)
}

func TestBcastTwoLevelBeatsFlat(t *testing.T) {
	eta := int64(256 << 10)
	run := func(nodes int, g func(r *Rank, eta int64)) float64 {
		cl := knlCluster(nodes, 32)
		done, err := cl.Run(func(r *Rank) { g(r, eta) })
		if err != nil {
			t.Fatal(err)
		}
		return done
	}
	for _, nodes := range []int{2, 4} {
		two := run(nodes, BcastTwoLevel(core.TunedBcast))
		flat := run(nodes, BcastFlat(core.TransportPt2pt))
		if two >= flat {
			t.Fatalf("%d nodes: two-level bcast %.0f not below flat %.0f", nodes, two, flat)
		}
	}
}

func TestBcastFlatCompletesShm(t *testing.T) {
	cl := knlCluster(3, 8)
	g := BcastFlat(core.TransportShm)
	if _, err := cl.Run(func(r *Rank) { g(r, 64<<10) }); err != nil {
		t.Fatal(err)
	}
}

func TestScatterTwoLevelCompletes(t *testing.T) {
	cl := knlCluster(4, 8)
	scatter := ScatterTwoLevel(core.TunedScatter)
	if _, err := cl.Run(func(r *Rank) { scatter(r, 32<<10) }); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicCluster(t *testing.T) {
	run := func() float64 {
		cl := knlCluster(3, 6)
		g := GatherTwoLevel(core.GatherThrottled(4))
		done, err := cl.Run(func(r *Rank) { g(r, 32<<10) })
		if err != nil {
			t.Fatal(err)
		}
		return done
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic cluster run: %g vs %g", a, b)
	}
}
