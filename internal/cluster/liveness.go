package cluster

import (
	"camc/internal/liveness"
	"camc/internal/sim"
	"camc/internal/trace"
)

// probeBytes is the size of one liveness gossip probe (a compact
// epoch/death summary — 8 bytes each way is enough for the simulated
// cost model; the boards themselves live in simulator memory).
const probeBytes = 8

// WorldLiveness extends the single-node liveness machinery across the
// fabric. Every node holds a world-sized view board (slots are world
// ranks): intra-node heartbeats and death marks stay cheap — they are
// plain board writes, exactly as on a single node — while remote-node
// state crosses the fabric only through explicit gossip probes that pay
// per-link contention-aware (γ_net) costs. Detection latency is
// therefore itself contention-aware: a probe crossing a congested
// switch takes longer, and the agreement instant moves with it.
//
// The node views are wired into both transports: the shm transport
// beats/marks through world-rank board IDs (mpi.Comm.SetBoardIDs), so a
// remote death merged into a node's view revokes that node's intra
// waits exactly like a local death; the fabric's guarded receives poll
// the receiver's view and gossip-probe the sender's node after a silent
// detector deadline. Deaths propagate along wait-for edges one probe
// epoch per hop, which is what ends every survivor's wait in bounded
// virtual time.
type WorldLiveness struct {
	cl    *Cluster
	cfg   liveness.Config
	world int

	// views[n] is node n's world-sized liveness board.
	views []*liveness.Board

	// roundOf numbers each world rank's agreement rounds (lockstep,
	// like mpi.Rank.agreeRound); rounds holds the shared round state,
	// modelled as residing on node 0 — remote ranks pay a gossip RTT to
	// post into it and to read the published verdict back.
	roundOf []int
	rounds  []*worldRound

	// barCount/barGen implement the survivor barrier used between
	// recovery phases (central counter, Poll-quantum polling).
	barCount, barGen int

	// refreshed marks nodes whose view was replaced by a fresh all-alive
	// board during WorldShrink (once per node, by its first survivor).
	refreshed []bool

	// shrunk caches the survivor table the first WorldShrink caller
	// builds; every survivor adopts the same table.
	shrunk *Shrunk

	// Recovery-phase instants for the x12 latency report: the shrink
	// window closes when the last survivor holds a rebuilt communicator;
	// the election window spans first entry to last exit. deathAt
	// preserves the earliest death instant across the view refresh.
	shrinkEnd            sim.Time
	electStart, electEnd sim.Time
	electSeen            bool
	deathAt              sim.Time
	deathSeen            bool
}

// worldRound is one world-level agreement epoch (the cluster analogue
// of liveness.roundState).
type worldRound struct {
	posted    []bool
	suspects  [][]int
	agreed    []int
	published bool
	agreedAt  sim.Time
}

// newWorldLiveness builds the per-node world views, installs them as
// the nodes' liveness boards (with world-rank board IDs on every node
// communicator), and arms the fabric's guarded receive path.
func newWorldLiveness(cl *Cluster, cfg liveness.Config) *WorldLiveness {
	world := cl.WorldSize()
	wl := &WorldLiveness{
		cl:        cl,
		world:     world,
		views:     make([]*liveness.Board, cl.NumNodes),
		roundOf:   make([]int, world),
		refreshed: make([]bool, cl.NumNodes),
	}
	for n := 0; n < cl.NumNodes; n++ {
		wl.views[n] = liveness.NewBoard(cl.Sim, world, cfg)
		cl.Nodes[n].Node.SetLiveness(wl.views[n])
		ids := make([]int, cl.PPN)
		for l := 0; l < cl.PPN; l++ {
			ids[l] = n*cl.PPN + l
		}
		cl.Nodes[n].SetBoardIDs(ids)
	}
	wl.cfg = wl.views[0].Config()
	cl.Fabric.live = wl
	return wl
}

// View returns node n's world-sized liveness board.
func (wl *WorldLiveness) View(n int) *liveness.Board { return wl.views[n] }

// Config returns the detector tuning.
func (wl *WorldLiveness) Config() liveness.Config { return wl.cfg }

// beatWorld publishes world rank w's heartbeat on its own node's view.
func (wl *WorldLiveness) beatWorld(w int) {
	wl.views[w/wl.cl.PPN].Beat(w)
}

// leaseWorld forward-dates world rank w's heartbeat on its own node's
// view over a known-length busy period (see liveness.Board.Lease).
func (wl *WorldLiveness) leaseWorld(w int, until sim.Time) {
	wl.views[w/wl.cl.PPN].Lease(w, until)
}

// FirstDeathAt returns the earliest death instant recorded on any view
// (merged deaths keep their original instants, so this is exact). Views
// replaced during WorldShrink fold their record into a cache first, so
// the instant survives recovery.
func (wl *WorldLiveness) FirstDeathAt() (sim.Time, bool) {
	first, any := wl.deathAt, wl.deathSeen
	for _, v := range wl.views {
		if t, ok := v.FirstDeathAt(); ok && (!any || t < first) {
			first, any = t, true
		}
	}
	return first, any
}

// noteDeaths folds a view's earliest death into the cache; called
// before the view is replaced.
func (wl *WorldLiveness) noteDeaths(v *liveness.Board) {
	if t, ok := v.FirstDeathAt(); ok && (!wl.deathSeen || t < wl.deathAt) {
		wl.deathAt, wl.deathSeen = t, true
	}
}

// AgreedAt returns the publish instant of world agreement round i.
func (wl *WorldLiveness) AgreedAt(i int) sim.Time { return wl.round(i).agreedAt }

// ShrinkEnd returns the instant the last survivor held a rebuilt
// node communicator (end of the world shrink window).
func (wl *WorldLiveness) ShrinkEnd() sim.Time { return wl.shrinkEnd }

// ElectWindow returns the re-election window: first survivor entering
// the election to last survivor leaving it.
func (wl *WorldLiveness) ElectWindow() (start, end sim.Time) {
	return wl.electStart, wl.electEnd
}

func (wl *WorldLiveness) round(i int) *worldRound {
	for len(wl.rounds) <= i {
		wl.rounds = append(wl.rounds, &worldRound{
			posted:   make([]bool, wl.world),
			suspects: make([][]int, wl.world),
		})
	}
	return wl.rounds[i]
}

// probe gossips with another node: one probe message each way over the
// fabric's routed links (paying per-link γ_net like any other flow),
// after which the two views merge bidirectionally — the prober adopts
// the target node's deaths and fresher heartbeats, and vice versa.
// proberW is the probing world rank (it beats per chunk in transit).
func (wl *WorldLiveness) probe(sp *sim.Proc, lane, proberW, targetNode int) {
	f := wl.cl.Fabric
	myNode := proberW / wl.cl.PPN
	if targetNode == myNode {
		return
	}
	if f.rec.Enabled() {
		f.rec.Instant(lane, trace.CatLiveness, "net_probe",
			trace.F("node", float64(targetNode)))
	}
	var buf [maxRouteHops]LinkID
	for _, l := range f.Topo.Route(myNode, targetNode, buf[:0]) {
		f.traverse(sp, lane, proberW, l, probeBytes)
	}
	sp.Sleep(f.PerMsg)
	for _, l := range f.Topo.Route(targetNode, myNode, buf[:0]) {
		f.traverse(sp, lane, proberW, l, probeBytes)
	}
	sp.Sleep(f.PerMsg)
	wl.views[targetNode].Merge(wl.views[myNode])
	wl.views[myNode].Merge(wl.views[targetNode])
}

// guardedRecv is the fabric's deadline-guarded receive: the receiver
// polls its node view in Poll quanta, revokes the wait the moment any
// death is visible (ULFM-style — the message may simply never come
// because its sender aborted the doomed collective), and after a silent
// full deadline gossip-probes the sender's node before judging it: a
// fresh heartbeat re-arms the deadline, a stale one is declared dead.
func (wl *WorldLiveness) guardedRecv(sp *sim.Proc, lane, srcW, dstW int) netMsg {
	f := wl.cl.Fabric
	q := f.queue(srcW, dstW)
	view := wl.views[dstW/wl.cl.PPN]
	deadline := sp.Now() + wl.cfg.Deadline
	for {
		view.Beat(dstW)
		wait := wl.cfg.Poll
		if r := deadline - sp.Now(); r > 0 && r < wait {
			wait = r
		}
		if m, ok := q.RecvTimeout(sp, wait); ok {
			return m
		}
		if view.AnyDead() {
			wl.netFail(lane, dstW, srcW, view)
		}
		if sp.Now() >= deadline {
			wl.probe(sp, lane, dstW, srcW/wl.cl.PPN)
			if view.AnyDead() {
				wl.netFail(lane, dstW, srcW, view)
			}
			if view.Stale(srcW, wl.cfg.Deadline) {
				view.MarkDead(srcW)
				wl.netFail(lane, dstW, srcW, view)
			}
			deadline = sp.Now() + wl.cfg.Deadline // fresh heartbeat: re-arm
		}
	}
}

// netFail aborts the calling rank's fabric wait with the view's current
// failed set (the cluster analogue of shm's liveFail).
func (wl *WorldLiveness) netFail(lane, self, peer int, view *liveness.Board) {
	if rec := wl.cl.Fabric.rec; rec.Enabled() {
		rec.Instant(lane, trace.CatLiveness, "peer_dead_net",
			trace.F("peer", float64(peer)))
	}
	panic(liveness.NewPeerDeadError(view.DeadSet()))
}

// Agree runs one world-level coherent-error agreement round. The round
// state lives on node 0: a remote-node rank pays one gossip RTT to
// carry its post there and one more to read the published verdict back,
// so agreement latency grows with fabric contention exactly like any
// other leader-phase exchange. The first rank that sees every world
// rank posted-or-dead (against its own view) publishes the union of all
// posted suspect sets and its view's death set; everyone else adopts
// it. A rank that stays silent for a full detector deadline has its
// node probed, and is declared dead only if its heartbeat is a full
// deadline stale after the merge.
func (wl *WorldLiveness) Agree(r *Rank, localErr error) error {
	var local []int
	if pd, ok := localErr.(*liveness.PeerDeadError); ok {
		local = pd.Ranks
	} else if localErr != nil {
		return localErr // not a liveness failure: nothing to agree about
	}
	roundNo := wl.roundOf[r.World]
	wl.roundOf[r.World]++
	rd := wl.round(roundNo)
	view := wl.views[r.Node]
	sp := r.SP
	lane := r.Lane()
	rec := r.Tracer()
	span := trace.NoSpan
	if rec != nil {
		span = rec.Begin(lane, trace.CatLiveness, "agree",
			trace.F("round", float64(roundNo)))
	}
	if r.Node != 0 {
		wl.probe(sp, lane, r.World, 0) // carry the post to the coordinator node
	}
	rd.posted[r.World] = true
	rd.suspects[r.World] = append([]int(nil), local...)
	start := sp.Now()
	for {
		view.Beat(r.World)
		if rd.published {
			break
		}
		if wl.allPostedOrDead(rd, view) {
			rd.agreed = wl.union(rd, view)
			rd.published = true
			rd.agreedAt = sp.Now()
			break
		}
		if sp.Now()-start >= wl.cfg.Deadline {
			for w := 0; w < wl.world; w++ {
				if rd.posted[w] || view.Dead(w) {
					continue
				}
				wl.probe(sp, lane, r.World, w/wl.cl.PPN)
				if !rd.posted[w] && !view.Dead(w) && view.Stale(w, wl.cfg.Deadline) {
					view.MarkDead(w)
				}
			}
			start = sp.Now()
			continue
		}
		sp.Sleep(wl.cfg.Poll)
	}
	if r.Node != 0 {
		wl.probe(sp, lane, r.World, 0) // read the published verdict back
	}
	set := append([]int(nil), rd.agreed...)
	if rec != nil {
		rec.End(span, trace.F("failed", float64(len(set))))
	}
	if len(set) == 0 {
		return nil
	}
	return liveness.NewPeerDeadError(set)
}

func (wl *WorldLiveness) allPostedOrDead(rd *worldRound, view *liveness.Board) bool {
	for w := 0; w < wl.world; w++ {
		if !rd.posted[w] && !view.Dead(w) {
			return false
		}
	}
	return true
}

// union folds every posted suspect set and the publisher view's deaths
// into one sorted failed-rank set (world numbering).
func (wl *WorldLiveness) union(rd *worldRound, view *liveness.Board) []int {
	in := make([]bool, wl.world)
	for _, w := range view.DeadSet() {
		in[w] = true
	}
	for w := 0; w < wl.world; w++ {
		for _, s := range rd.suspects[w] {
			in[s] = true
		}
	}
	set := []int{}
	for w, d := range in {
		if d {
			set = append(set, w)
		}
	}
	return set
}

// svBarrier is the survivor barrier between recovery phases: a central
// generation counter every survivor increments, with Poll-quantum
// polling (and heartbeats) while waiting for the last one.
func (wl *WorldLiveness) svBarrier(sp *sim.Proc, w, parties int) {
	gen := wl.barGen
	wl.barCount++
	if wl.barCount == parties {
		wl.barCount = 0
		wl.barGen++
		return
	}
	for wl.barGen == gen {
		wl.beatWorld(w)
		sp.Sleep(wl.cfg.Poll)
	}
}
