// Package cluster extends the single-node simulation to multi-node jobs
// (Fig 17 of the paper and the ROADMAP's network tier): several
// simulated nodes joined by a switched network fabric, with flat
// (single-level), leader-based two-level, and MPI+MPI-style
// shared-leader collectives for all six kinds built on top.
//
// The fabric models what the old flat latency+bandwidth Network could
// not: per-link α/β behind a pluggable topology (two-tier fat tree,
// dragonfly-lite), and a switch-contention term GammaNet(c) — the
// network analogue of the paper's mm-lock γ(c) — that inflates a flow's
// per-byte cost with the number of flows concurrently crossing the same
// link. The paper's point survives the richer model: fast
// contention-aware intra-node collectives make two-level designs win,
// and win more as the node count grows, because the leader phase moves
// O(nodes) network messages where a flat design moves O(world).
package cluster

import (
	"fmt"

	"camc/internal/arch"
	"camc/internal/fault"
	"camc/internal/kernel"
	"camc/internal/liveness"
	"camc/internal/mpi"
	"camc/internal/sim"
	"camc/internal/trace"
)

// Cluster is a multi-node job: NumNodes simulated nodes of the same
// architecture, PPN ranks each, sharing one virtual clock and one
// network fabric.
type Cluster struct {
	Sim    *sim.Simulation
	Arch   *arch.Profile
	Fabric *Fabric
	Nodes  []*mpi.Comm

	// Live is the world-level liveness layer; non-nil when the cluster
	// was built with faults, kills, or an explicit liveness config.
	Live *WorldLiveness

	NumNodes int
	PPN      int
	CopyData bool

	key     fabKey
	clean   bool // last Run finished without error; required for Release
	tainted bool // faults/kills were armed; never pooled (queues may hold residue)
}

// Config describes a multi-node job.
type Config struct {
	Arch        *arch.Profile
	NumNodes    int
	PPN         int     // ranks per node; 0 = architecture default
	Topo        string  // topology name (TopoNames); "" = fattree
	SwitchRadix int     // nodes per leaf/group switch; 0 = 16
	NetLatency  float64 // us one-way base latency; 0 = 1.5 (EDR/Omni-Path class)
	NetBWBps    float64 // link bandwidth; 0 = 12.5 GB/s (100 Gbit)
	NetPerMsg   float64 // us; 0 = 2·latency + 1 (rendezvous RTT + matching)
	GNet        float64 // switch-contention coefficient; 0 = 0.05 (set < 0 for fair sharing γ=c)
	ChunkBytes  int64   // per-chunk contention resample granularity; 0 = 256 KiB
	CopyData    bool    // move real payload bytes (the check oracle needs this)

	// Fault injects probabilistic faults per node (each node draws from
	// its own seed-salted stream). Kills arms explicit deaths. Either
	// one — or a non-nil Liveness — enables the world liveness layer.
	Fault    *fault.Config
	Liveness *liveness.Config
	Kills    []Kill
}

// Kill is one explicitly targeted death: world rank World dies at its
// Op-th checkpointed MPI operation.
type Kill struct {
	World int
	Op    int
}

func (cfg Config) withDefaults() Config {
	if cfg.PPN == 0 {
		cfg.PPN = cfg.Arch.DefaultProcs
	}
	if cfg.Topo == "" {
		cfg.Topo = "fattree"
	}
	if cfg.SwitchRadix == 0 {
		cfg.SwitchRadix = 16
	}
	if cfg.NetLatency == 0 {
		cfg.NetLatency = 1.5
	}
	if cfg.NetBWBps == 0 {
		cfg.NetBWBps = 12.5e9
	}
	if cfg.NetPerMsg == 0 {
		cfg.NetPerMsg = 2*cfg.NetLatency + 1
	}
	if cfg.GNet == 0 {
		cfg.GNet = 0.05
	} else if cfg.GNet < 0 {
		cfg.GNet = 0
	}
	if cfg.ChunkBytes == 0 {
		cfg.ChunkBytes = defaultChunkBytes
	}
	return cfg
}

// New builds the cluster. The simulation and fabric come from a pool
// keyed by the fabric shape (see Release), so repeated same-shape runs
// reuse queue storage instead of re-allocating it.
func New(cfg Config) *Cluster {
	cfg = cfg.withDefaults()
	key := fabKey{
		topo: cfg.Topo, nodes: cfg.NumNodes, radix: cfg.SwitchRadix,
		alpha: cfg.NetLatency / 2, beta: 1e6 / cfg.NetBWBps,
		perMsg: cfg.NetPerMsg, gnet: cfg.GNet, chunk: cfg.ChunkBytes,
		copyData: cfg.CopyData,
	}
	var s *sim.Simulation
	var fab *Fabric
	if e, ok := fabricPoolGet(key); ok {
		s, fab = e.sim, e.fab
	} else {
		s = sim.New()
		topo, err := TopoByName(cfg.Topo, cfg.NumNodes, cfg.SwitchRadix)
		if err != nil {
			panic(err)
		}
		fab = newFabric(s, topo, cfg.NumNodes, key.alpha, key.beta, key.perMsg, key.gnet, key.chunk, cfg.CopyData)
	}
	cl := &Cluster{
		Sim: s, Arch: cfg.Arch, Fabric: fab,
		NumNodes: cfg.NumNodes, PPN: cfg.PPN, CopyData: cfg.CopyData, key: key,
	}
	for i := 0; i < cfg.NumNodes; i++ {
		node := kernel.NewNode(s, cfg.Arch)
		node.CopyData = cfg.CopyData
		// Distinct pid ranges per node keep kernel trace events on
		// distinct lanes when all nodes share one recorder.
		node.PidBase = i << 20
		if cfg.Fault != nil && cfg.Fault.Active() {
			fc := *cfg.Fault
			// Salt the seed per node so nodes draw distinct fault
			// streams while the whole cluster stays a pure function of
			// the config.
			fc.Seed += int64(i+1) * 7_700_003
			node.SetFaultPlan(fault.New(fc))
		}
		cl.Nodes = append(cl.Nodes, mpi.NewOnNode(node, cfg.PPN, 1<<32))
	}
	for _, k := range cfg.Kills {
		cl.Nodes[cl.NodeOf(k.World)].ArmKill(cl.LocalOf(k.World), k.Op)
	}
	if cfg.Liveness != nil || len(cfg.Kills) > 0 || (cfg.Fault != nil && cfg.Fault.Active()) {
		lcfg := liveness.Defaults()
		if cfg.Liveness != nil {
			lcfg = *cfg.Liveness
		}
		cl.Live = newWorldLiveness(cl, lcfg)
		// Faulty runs can leave undrained flow queues and dead procs;
		// never pool them.
		cl.tainted = cfg.Fault != nil || len(cfg.Kills) > 0
	}
	return cl
}

// Release returns the cluster's simulation and fabric to the pool for
// reuse by a later same-shape New. Only a cluster whose Run completed
// cleanly is poolable (Simulation.Reset requires zero live procs);
// anything else is simply dropped.
func Release(cl *Cluster) {
	if cl == nil || !cl.clean || cl.tainted {
		return
	}
	cl.clean = false
	cl.Fabric.reset()
	cl.Fabric.rec = nil
	cl.Fabric.live = nil
	cl.Sim.Reset()
	fabricPoolPut(cl.key, pooled{sim: cl.Sim, fab: cl.Fabric})
}

// WorldSize returns the total rank count.
func (cl *Cluster) WorldSize() int { return cl.NumNodes * cl.PPN }

// NodeOf maps a world rank to its node id.
func (cl *Cluster) NodeOf(world int) int { return world / cl.PPN }

// LocalOf maps a world rank to its node-local rank id.
func (cl *Cluster) LocalOf(world int) int { return world % cl.PPN }

// WorldRank returns the world-rank handle for (node, local); valid
// inside and outside Run (the mpi.Rank's SP is only set inside).
func (cl *Cluster) WorldRank(w int) *Rank {
	n := cl.NodeOf(w)
	return &Rank{Rank: cl.Nodes[n].Rank(cl.LocalOf(w)), Node: n, World: w, cluster: cl}
}

// AttachTrace attaches one structured recorder to every node and
// registers one lane per world rank, keyed by the rank's (node-offset)
// pid, so intra-node kernel/shm/mpi events and network fabric events
// land on the same per-world-rank lanes. Attach before Run.
func (cl *Cluster) AttachTrace(rec *trace.Recorder) {
	if rec == nil {
		return
	}
	for n, comm := range cl.Nodes {
		comm.Node.SetRecorder(rec)
		lanes := make([]int, cl.PPN)
		for l := 0; l < cl.PPN; l++ {
			w := n*cl.PPN + l
			rec.RegisterLane(w, fmt.Sprintf("w%d (n%d.r%d)", w, n, l), comm.Rank(l).OS.PID())
			lanes[l] = w
		}
		comm.Shm.SetLanes(lanes)
	}
	cl.Fabric.rec = rec
}

// Rank is a world-rank handle: the node-local MPI rank plus its node id.
type Rank struct {
	*mpi.Rank
	Node    int
	World   int
	cluster *Cluster

	routeBuf [maxRouteHops]LinkID
}

// Cluster returns the cluster this rank belongs to.
func (r *Rank) Cluster() *Cluster { return r.cluster }

// NetSend transmits size bytes starting at addr to world rank dst on
// another node. On materialized runs the payload travels with the
// message; dataless runs move cost only.
func (r *Rank) NetSend(dstWorld int, addr kernel.Addr, size int64) {
	r.KillCheck()
	cl := r.cluster
	dstNode := cl.NodeOf(dstWorld)
	if dstNode == r.Node {
		panic(fmt.Sprintf("cluster: NetSend to same-node rank %d from %d", dstWorld, r.World))
	}
	var data []byte
	if cl.CopyData && size > 0 {
		data = append([]byte(nil), r.OS.Bytes(addr, size)...)
	}
	cl.Fabric.send(r.SP, r.Lane(), r.World, dstWorld, r.Node, dstNode, size, data, r.routeBuf[:])
}

// NetRecv receives size bytes from world rank src on another node into
// addr.
func (r *Rank) NetRecv(srcWorld int, addr kernel.Addr, size int64) {
	r.KillCheck()
	cl := r.cluster
	srcNode := cl.NodeOf(srcWorld)
	if srcNode == r.Node {
		panic(fmt.Sprintf("cluster: NetRecv from same-node rank %d at %d", srcWorld, r.World))
	}
	data := cl.Fabric.recv(r.SP, r.Lane(), srcWorld, srcWorld, r.World, r.Node, size)
	if cl.CopyData && data != nil {
		r.OS.WriteAt(addr, data)
	}
}

// Run spawns body on every world rank and runs the simulation to
// completion, returning the finish time.
func (cl *Cluster) Run(body func(r *Rank)) (float64, error) {
	for n := 0; n < cl.NumNodes; n++ {
		n := n
		comm := cl.Nodes[n]
		comm.Start(func(lr *mpi.Rank) {
			body(&Rank{Rank: lr, Node: n, World: n*cl.PPN + lr.ID, cluster: cl})
		})
	}
	if err := cl.Sim.Run(); err != nil {
		return 0, err
	}
	cl.clean = true
	return cl.Sim.Now(), nil
}
