// Package cluster extends the single-node simulation to multi-node jobs
// (Fig 17 of the paper): several simulated nodes joined by an
// InfiniBand/Omni-Path-class network model, with flat (single-level) and
// hierarchical (two-level) rooted collectives built on top.
//
// The network model is intentionally simple — per-message latency plus
// serialization at the receiving NIC — because the experiment it serves
// only needs the intra-/inter-node cost split: the paper's point is that
// fast contention-aware intra-node gathers make two-level designs win,
// and win *more* as the node count grows.
package cluster

import (
	"fmt"

	"camc/internal/arch"
	"camc/internal/core"
	"camc/internal/kernel"
	"camc/internal/mpi"
	"camc/internal/sim"
)

// Network models the interconnect: one full-duplex NIC per node.
type Network struct {
	Latency float64 // one-way latency, us
	BWBps   float64 // link bandwidth, bytes/second
	// PerMsg is the receiver-side cost to progress one inter-node
	// message: the rendezvous round trip plus matching/completion
	// processing. It is what makes a flat gather scale with the *total*
	// process count while the two-level design scales with the node
	// count — the Fig 17 effect.
	PerMsg float64

	sim    *sim.Simulation
	queues map[[2]int]*sim.Chan[netMsg] // (fromNode, toNode)
	// nicBusy serializes each node's send and receive sides.
	sendBusy []*sim.Mutex
	recvBusy []*sim.Mutex
}

type netMsg struct {
	size    int64
	readyAt float64
}

func (n *Network) beta() float64 { return 1e6 / n.BWBps }

func (n *Network) queue(from, to int) *sim.Chan[netMsg] {
	q, ok := n.queues[[2]int{from, to}]
	if !ok {
		q = sim.NewChan[netMsg](n.sim, 1<<20)
		n.queues[[2]int{from, to}] = q
	}
	return q
}

// send injects a message; the sender is busy for the injection time.
func (n *Network) send(sp *sim.Proc, from, to int, size int64) {
	n.sendBusy[from].Lock(sp)
	inject := float64(size) * n.beta()
	sp.Sleep(inject)
	n.sendBusy[from].Unlock()
	n.queue(from, to).Send(sp, netMsg{size: size, readyAt: sp.Now() + n.Latency})
}

// recv drains one message from the (from -> to) flow; the receiving NIC
// serializes concurrent arrivals.
func (n *Network) recv(sp *sim.Proc, from, to int, size int64) {
	m := n.queue(from, to).Recv(sp)
	if m.size != size {
		panic(fmt.Sprintf("cluster: size mismatch on %d->%d: got %d want %d", from, to, m.size, size))
	}
	if m.readyAt > sp.Now() {
		sp.Sleep(m.readyAt - sp.Now())
	}
	n.recvBusy[to].Lock(sp)
	sp.Sleep(n.PerMsg + float64(size)*n.beta())
	n.recvBusy[to].Unlock()
}

// Cluster is a multi-node job: NumNodes simulated nodes of the same
// architecture, PPN ranks each, sharing one virtual clock.
type Cluster struct {
	Sim   *sim.Simulation
	Arch  *arch.Profile
	Net   *Network
	Nodes []*mpi.Comm

	NumNodes int
	PPN      int
}

// Config describes a multi-node job.
type Config struct {
	Arch       *arch.Profile
	NumNodes   int
	PPN        int     // ranks per node; 0 = architecture default
	NetLatency float64 // us; 0 = 1.5 (EDR/Omni-Path class)
	NetBWBps   float64 // 0 = 12.5 GB/s (100 Gbit)
	NetPerMsg  float64 // us; 0 = 2·latency + 1 (rendezvous RTT + matching)
}

// New builds the cluster. Runs are cost-only (dataless).
func New(cfg Config) *Cluster {
	if cfg.PPN == 0 {
		cfg.PPN = cfg.Arch.DefaultProcs
	}
	if cfg.NetLatency == 0 {
		cfg.NetLatency = 1.5
	}
	if cfg.NetBWBps == 0 {
		cfg.NetBWBps = 12.5e9
	}
	if cfg.NetPerMsg == 0 {
		cfg.NetPerMsg = 2*cfg.NetLatency + 1
	}
	s := sim.New()
	cl := &Cluster{Sim: s, Arch: cfg.Arch, NumNodes: cfg.NumNodes, PPN: cfg.PPN}
	cl.Net = &Network{
		Latency: cfg.NetLatency,
		BWBps:   cfg.NetBWBps,
		PerMsg:  cfg.NetPerMsg,
		sim:     s,
		queues:  map[[2]int]*sim.Chan[netMsg]{},
	}
	for i := 0; i < cfg.NumNodes; i++ {
		cl.Net.sendBusy = append(cl.Net.sendBusy, sim.NewMutex(s))
		cl.Net.recvBusy = append(cl.Net.recvBusy, sim.NewMutex(s))
		node := kernel.NewNode(s, cfg.Arch)
		node.CopyData = false
		cl.Nodes = append(cl.Nodes, mpi.NewOnNode(node, cfg.PPN, 1<<32))
	}
	return cl
}

// WorldSize returns the total rank count.
func (cl *Cluster) WorldSize() int { return cl.NumNodes * cl.PPN }

// Rank is a world-rank handle: the node-local MPI rank plus its node id.
type Rank struct {
	*mpi.Rank
	Node    int
	World   int
	cluster *Cluster
}

// NetSend transmits size bytes to world rank dst over the network (dst
// must be on another node).
func (r *Rank) NetSend(dstWorld int, size int64) {
	dstNode := dstWorld / r.cluster.PPN
	r.cluster.Net.send(r.SP, r.Node, dstNode, size)
}

// NetRecv receives size bytes from world rank src on another node.
func (r *Rank) NetRecv(srcWorld int, size int64) {
	srcNode := srcWorld / r.cluster.PPN
	r.cluster.Net.recv(r.SP, srcNode, r.Node, size)
}

// Run spawns body on every world rank and runs the simulation to
// completion, returning the finish time.
func (cl *Cluster) Run(body func(r *Rank)) (float64, error) {
	for n := 0; n < cl.NumNodes; n++ {
		n := n
		comm := cl.Nodes[n]
		comm.Start(func(lr *mpi.Rank) {
			body(&Rank{Rank: lr, Node: n, World: n*cl.PPN + lr.ID, cluster: cl})
		})
	}
	if err := cl.Sim.Run(); err != nil {
		return 0, err
	}
	return cl.Sim.Now(), nil
}

// GatherTwoLevel is the paper's hierarchical gather (§VII-G): local rank
// 0 on each node gathers its node's blocks with the contention-aware
// intra-node design, then the node leaders feed the root over the
// network. eta is the per-rank message size; the root is world rank 0.
// intra selects the intra-node gather algorithm.
func GatherTwoLevel(intra func(*mpi.Rank, core.Args)) func(r *Rank, eta int64) {
	return func(r *Rank, eta int64) {
		cl := r.cluster
		ppn := int64(cl.PPN)
		send := r.Alloc(eta)
		stage := r.Alloc(ppn * eta) // leaders gather their node here
		// Level 1: intra-node gather to local rank 0.
		intra(r.Rank, core.Args{Send: send, Recv: stage, Count: eta, Root: 0})
		// Level 2: leaders send their node block to the global root.
		nodeBytes := ppn * eta
		if r.ID == 0 {
			if r.Node == 0 {
				for n := 1; n < cl.NumNodes; n++ {
					r.NetRecv(n*cl.PPN, nodeBytes)
				}
			} else {
				r.NetSend(0, nodeBytes)
			}
		}
	}
}

// GatherFlat is the single-level design modern libraries use for large
// messages: a direct (root-receives-everything) gather where every rank
// ships its block straight to the root — intra-node ranks through the
// library's point-to-point path, remote ranks over the network.
// transport selects the intra-node path.
func GatherFlat(tr core.Transport) func(r *Rank, eta int64) {
	return func(r *Rank, eta int64) {
		cl := r.cluster
		send := r.Alloc(eta)
		if r.World == 0 {
			recv := r.Alloc(int64(cl.WorldSize()) * eta)
			// Serve intra-node senders in rank order, then remote ranks
			// in world-rank order (the root is the serial bottleneck —
			// the behaviour Fig 17 shows growing with node count).
			for lr := 1; lr < cl.PPN; lr++ {
				if tr == core.TransportShm {
					r.RecvShm(lr, recv+kernel.Addr(int64(lr)*eta), eta)
				} else {
					r.Recv(lr, recv+kernel.Addr(int64(lr)*eta), eta)
				}
			}
			for w := cl.PPN; w < cl.WorldSize(); w++ {
				r.NetRecv(w, eta)
			}
			return
		}
		if r.Node == 0 {
			if tr == core.TransportShm {
				r.SendShm(0, send, eta)
			} else {
				r.Send(0, send, eta)
			}
			return
		}
		r.NetSend(0, eta)
	}
}

// GatherTwoLevelPipelined is the paper's §IX "more advanced design": the
// per-rank message is split into segments, and each node leader forwards
// segment s over the network while the node gathers segment s+1 — the
// inter- and intra-node transfers overlap. Segments must divide eta
// reasonably; the last segment takes the remainder.
func GatherTwoLevelPipelined(intra func(*mpi.Rank, core.Args), segments int) func(r *Rank, eta int64) {
	if segments < 1 {
		panic("cluster: segments must be >= 1")
	}
	return func(r *Rank, eta int64) {
		cl := r.cluster
		ppn := int64(cl.PPN)
		segSize := (eta + int64(segments) - 1) / int64(segments)
		send := r.Alloc(eta)
		stage := r.Alloc(ppn * eta)
		for s := 0; s < segments; s++ {
			off := int64(s) * segSize
			if off >= eta {
				break
			}
			n := segSize
			if eta-off < n {
				n = eta - off
			}
			// Intra-node gather of this segment (the stage layout is
			// segment-major; a real implementation would address rank-
			// major slots with a strided datatype at identical cost).
			intra(r.Rank, core.Args{
				Send:  send + kernel.Addr(off),
				Recv:  stage + kernel.Addr(off*ppn),
				Count: n,
				Root:  0,
			})
			// Ship this node segment while the next segment gathers.
			nodeBytes := ppn * n
			if r.ID == 0 {
				if r.Node == 0 {
					for nd := 1; nd < cl.NumNodes; nd++ {
						r.NetRecv(nd*cl.PPN, nodeBytes)
					}
				} else {
					r.NetSend(0, nodeBytes)
				}
			}
		}
	}
}

// ScatterFlat is the single-level scatter comparator: the root pushes
// each world rank's block directly — local ranks through the intra-node
// point-to-point path, remote ranks over the network (the root-bound
// design large-message scatters default to in stock libraries).
func ScatterFlat(tr core.Transport) func(r *Rank, eta int64) {
	return func(r *Rank, eta int64) {
		cl := r.cluster
		recv := r.Alloc(eta)
		if r.World == 0 {
			send := r.Alloc(int64(cl.WorldSize()) * eta)
			for lr := 1; lr < cl.PPN; lr++ {
				if tr == core.TransportShm {
					r.SendShm(lr, send+kernel.Addr(int64(lr)*eta), eta)
				} else {
					r.Send(lr, send+kernel.Addr(int64(lr)*eta), eta)
				}
			}
			for w := cl.PPN; w < cl.WorldSize(); w++ {
				r.NetSend(w, eta)
			}
			return
		}
		if r.Node == 0 {
			if tr == core.TransportShm {
				r.RecvShm(0, recv, eta)
			} else {
				r.Recv(0, recv, eta)
			}
			return
		}
		r.NetRecv(0, eta)
	}
}

// BcastTwoLevel is the hierarchical broadcast: the root ships the
// message to each node leader over the network, then every node runs the
// tuned intra-node broadcast in parallel.
func BcastTwoLevel(intra func(*mpi.Rank, core.Args)) func(r *Rank, eta int64) {
	return func(r *Rank, eta int64) {
		cl := r.cluster
		buf := r.Alloc(eta)
		if r.ID == 0 {
			if r.Node == 0 {
				for n := 1; n < cl.NumNodes; n++ {
					r.NetSend(n*cl.PPN, eta)
				}
			} else {
				r.NetRecv(0, eta)
			}
		}
		// Intra-node phase: local rank 0 is the node root. Send and Recv
		// are the same buffer here (leaders hold the payload; the roles
		// inside core's bcast algorithms pick the right one).
		intra(r.Rank, core.Args{Send: buf, Recv: buf, Count: eta, Root: 0})
	}
}

// BcastFlat is the single-level comparator: a binomial tree over world
// ranks where every edge is either an intra-node point-to-point transfer
// or a network message.
func BcastFlat(tr core.Transport) func(r *Rank, eta int64) {
	return func(r *Rank, eta int64) {
		cl := r.cluster
		buf := r.Alloc(eta)
		world := cl.WorldSize()
		me := r.World
		// Binomial over world ranks rooted at 0.
		if me != 0 {
			parent := me - me&-me
			if parent/cl.PPN == r.Node {
				if tr == core.TransportShm {
					r.RecvShm(parent%cl.PPN, buf, eta)
				} else {
					r.Recv(parent%cl.PPN, buf, eta)
				}
			} else {
				r.NetRecv(parent, eta)
			}
		}
		top := me & -me
		if me == 0 {
			top = 1
			for top < world {
				top <<= 1
			}
		}
		for mask := top >> 1; mask >= 1; mask >>= 1 {
			child := me + mask
			if child >= world {
				continue
			}
			if child/cl.PPN == r.Node {
				if tr == core.TransportShm {
					r.SendShm(child%cl.PPN, buf, eta)
				} else {
					r.Send(child%cl.PPN, buf, eta)
				}
			} else {
				r.NetSend(child, eta)
			}
		}
	}
}

// ScatterTwoLevel mirrors GatherTwoLevel for the root-to-all direction.
func ScatterTwoLevel(intra func(*mpi.Rank, core.Args)) func(r *Rank, eta int64) {
	return func(r *Rank, eta int64) {
		cl := r.cluster
		ppn := int64(cl.PPN)
		recv := r.Alloc(eta)
		stage := r.Alloc(ppn * eta)
		nodeBytes := ppn * eta
		if r.ID == 0 {
			if r.Node == 0 {
				// The root also owns the full world buffer.
				_ = r.Alloc(int64(cl.WorldSize()) * eta)
				for n := 1; n < cl.NumNodes; n++ {
					r.NetSend(n*cl.PPN, nodeBytes)
				}
			} else {
				r.NetRecv(0, nodeBytes)
			}
		}
		intra(r.Rank, core.Args{Send: stage, Recv: recv, Count: eta, Root: 0})
	}
}
