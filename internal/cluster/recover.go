package cluster

import (
	"encoding/binary"
	"fmt"

	"camc/internal/core"
	"camc/internal/kernel"
	"camc/internal/liveness"
	"camc/internal/trace"
)

// Shrunk is the world-level survivor table every survivor derives (and
// agrees on, because it is a pure function of the agreed failed set)
// after a world shrink. Original world ranks remain the liveness board
// slots and fabric addresses forever — the NEW node-major numbering
// exists only for payload layout and re-planning.
type Shrunk struct {
	// Failed is the agreed dead set, original world numbering, sorted.
	Failed []int
	// World is the original world size, NewSize the survivor count.
	World, NewSize int
	// NewRoot is the re-run root in new numbering: the original root's
	// new id if it survived, otherwise new id 0 (the lowest-world-rank
	// survivor — the same deterministic successor rule used for leader
	// re-election).
	NewRoot int
	// OldWorld maps new ids to original world ranks; NewWorld is the
	// inverse (-1 = dead). Both are node-major, so a node's survivors
	// are contiguous in the new numbering.
	OldWorld, NewWorld []int
	// AliveNodes lists original node ids with at least one survivor,
	// ascending; NodeIdx is the inverse (-1 = whole node lost).
	AliveNodes, NodeIdx []int
	// Prefix[n] is the first new id on original node n (len NumNodes+1;
	// Prefix[n+1]-Prefix[n] is node n's survivor count).
	Prefix []int
	// Leaders[n] is the original world rank of node n's re-elected
	// leader: the lowest-world-rank survivor on the node, i.e. its new
	// local rank 0 (-1 = whole node lost). This tie-break is the
	// documented deterministic successor rule.
	Leaders []int
	// Orphaned[n] reports that node n survived but the leader of the
	// aborted attempt on it died — such nodes re-run the leader-phase
	// address exchange before joining the world election.
	Orphaned []bool
}

// SurvivorsOn returns original node n's survivor count.
func (sh *Shrunk) SurvivorsOn(n int) int { return sh.Prefix[n+1] - sh.Prefix[n] }

// NodeOfNew maps a new world id to its original node.
func (sh *Shrunk) NodeOfNew(id int) int {
	for n := 0; n+1 < len(sh.Prefix); n++ {
		if id < sh.Prefix[n+1] {
			return n
		}
	}
	panic(fmt.Sprintf("cluster: new id %d out of range", id))
}

// rootedKind reports whether kind uses its Root argument (the
// non-rooted kinds lead every node from local rank 0).
func rootedKind(kind core.Kind) bool {
	switch kind {
	case core.KindBcast, core.KindGather, core.KindScatter, core.KindReduce:
		return true
	}
	return false
}

// buildShrunkTable derives the survivor table from the agreed failed
// set. kind and origRoot identify the aborted collective, which
// determines each node's original leader (and with it orphanhood).
func buildShrunkTable(cl *Cluster, failed []int, kind core.Kind, origRoot int) *Shrunk {
	world := cl.WorldSize()
	leaderRoot := 0
	if rootedKind(kind) {
		leaderRoot = origRoot
	}
	dead := make([]bool, world)
	for _, f := range failed {
		dead[f] = true
	}
	sh := &Shrunk{
		Failed:   append([]int(nil), failed...),
		World:    world,
		NewWorld: make([]int, world),
		Prefix:   make([]int, cl.NumNodes+1),
		NodeIdx:  make([]int, cl.NumNodes),
		Leaders:  make([]int, cl.NumNodes),
		Orphaned: make([]bool, cl.NumNodes),
	}
	id := 0
	for n := 0; n < cl.NumNodes; n++ {
		sh.Prefix[n] = id
		sh.NodeIdx[n], sh.Leaders[n] = -1, -1
		first := -1
		for l := 0; l < cl.PPN; l++ {
			w := n*cl.PPN + l
			if dead[w] {
				sh.NewWorld[w] = -1
				continue
			}
			if first < 0 {
				first = w
			}
			sh.NewWorld[w] = id
			sh.OldWorld = append(sh.OldWorld, w)
			id++
		}
		if first >= 0 {
			sh.NodeIdx[n] = len(sh.AliveNodes)
			sh.AliveNodes = append(sh.AliveNodes, n)
			sh.Leaders[n] = first
			origLeader := n * cl.PPN // local 0 unless the root led this node
			if cl.NodeOf(leaderRoot) == n {
				origLeader = leaderRoot
			}
			sh.Orphaned[n] = dead[origLeader]
		}
	}
	sh.Prefix[cl.NumNodes] = id
	sh.NewSize = id
	if id == 0 {
		panic("cluster: shrink with no survivors")
	}
	if nr := sh.NewWorld[origRoot]; nr >= 0 {
		sh.NewRoot = nr
	} else {
		sh.NewRoot = 0
	}
	return sh
}

// WorldBarrier synchronizes n participating world ranks (every
// participant must pass the same n). It is heartbeat-preserving but not
// death-aware — use it only where all n participants are known alive
// (harness entry, pre/post re-run); a liveness-enabled cluster is
// required.
func (r *Rank) WorldBarrier(n int) {
	r.cluster.Live.svBarrier(r.SP, r.World, n)
}

// WorldAgree runs the world-level agreement round (see
// WorldLiveness.Agree); it requires a liveness-enabled cluster.
func (r *Rank) WorldAgree(localErr error) error {
	wl := r.cluster.Live
	if wl == nil {
		return localErr
	}
	return wl.Agree(r, localErr)
}

// WorldShrink rebuilds the cluster's rank tables after an agreed
// failure. Every survivor calls it with the agreed failed set (world
// numbering) plus the aborted collective's kind and root, and gets back
// its handle in the shrunken world plus the shared survivor table. The
// sequence per survivor:
//
//  1. drain this rank's fabric flow queues (stale messages from the
//     aborted attempt must not match the re-run's),
//  2. survivor barrier — all drains complete before any new traffic,
//  3. first survivor per node installs a fresh all-alive world view as
//     the node's liveness board (the old views' deaths served their
//     purpose; keeping them would revoke the re-run),
//  4. node-local communicator shrink (mpi.Rank.Shrink) with the node's
//     share of the failed set — survivors keep their OS processes and
//     world-rank board slots,
//  5. leader re-election (see elect).
func (r *Rank) WorldShrink(failed []int, kind core.Kind, origRoot int) (*Rank, *Shrunk) {
	cl := r.cluster
	wl := cl.Live
	if wl == nil {
		panic("cluster: WorldShrink without liveness")
	}
	sp := r.SP
	cl.Fabric.drainTo(sp, r.World)
	wl.svBarrier(sp, r.World, cl.WorldSize()-len(failed))
	if wl.shrunk == nil {
		wl.shrunk = buildShrunkTable(cl, failed, kind, origRoot)
	}
	sh := wl.shrunk
	if !wl.refreshed[r.Node] {
		wl.refreshed[r.Node] = true
		wl.noteDeaths(wl.views[r.Node])
		v := liveness.NewBoard(cl.Sim, wl.world, wl.cfg)
		for _, w := range sh.OldWorld {
			v.Beat(w) // the new epoch starts with every survivor fresh
		}
		wl.views[r.Node] = v
		cl.Nodes[r.Node].Node.SetLiveness(v)
	}
	var localFailed []int
	for _, f := range failed {
		if cl.NodeOf(f) == r.Node {
			localFailed = append(localFailed, cl.LocalOf(f))
		}
	}
	nr := r.Rank.Shrink(localFailed)
	if t := sp.Now(); t > wl.shrinkEnd {
		wl.shrinkEnd = t
	}
	nrank := &Rank{Rank: nr, Node: r.Node, World: r.World, cluster: cl}
	cl.elect(nrank, sh)
	return nrank, sh
}

// elect runs the deterministic leader re-election. The successor on
// every surviving node is fixed in advance — the lowest-world-rank
// survivor, new local rank 0 — so no votes are needed; what the
// election pays for (and what x12 measures) is re-establishing the
// leader structure: orphaned nodes re-run the leader-phase address
// exchange intra-node, then every node's leader registers its
// credential with the coordinator (the survivor with new world id 0)
// over the fabric and receives the full leader table back. The
// coordinator's incast crosses contended links, so election latency is
// γ_net-aware exactly like the collectives it repairs.
func (cl *Cluster) elect(r *Rank, sh *Shrunk) {
	wl := cl.Live
	sp := r.SP
	if now := sp.Now(); !wl.electSeen || now < wl.electStart {
		wl.electStart, wl.electSeen = now, true
	}
	rec := r.Tracer()
	span := trace.NoSpan
	if rec != nil {
		span = rec.Begin(r.Lane(), trace.CatLiveness, "elect",
			trace.F("leader", float64(sh.Leaders[r.Node])))
	}
	// Orphaned nodes first re-publish leadership intra-node: the
	// successor broadcasts its credential (re-running the leader-phase
	// address exchange) and collects an ack from every member. This is
	// the extra work that makes a dead leader measurably costlier than a
	// dead member.
	if sh.Orphaned[r.Node] {
		cred := r.Bcast64(0, int64(sh.Leaders[r.Node]))
		if cred != int64(sh.Leaders[r.Node]) {
			panic(fmt.Sprintf("cluster: node %d republished leader %d, want %d",
				r.Node, cred, sh.Leaders[r.Node]))
		}
		if r.ID == 0 {
			if rec != nil {
				rec.Instant(r.Lane(), trace.CatLiveness, "leader_elect",
					trace.F("node", float64(r.Node)))
			}
			for m := 1; m < sh.SurvivorsOn(r.Node); m++ {
				r.WaitNotify(m)
			}
		} else {
			r.Notify(0)
		}
	}
	// World registration: every leader exchanges an 8-byte credential
	// with the coordinator and verifies its slot in the returned table.
	coordW := sh.OldWorld[0]
	if r.ID == 0 {
		a := len(sh.AliveNodes)
		tblBytes := int64(8 * a)
		tbl := r.Alloc(tblBytes)
		if r.World == coordW {
			cl.putCred(r, tbl+kernel.Addr(8*sh.NodeIdx[r.Node]), r.World)
			for _, n := range sh.AliveNodes {
				if n == r.Node {
					continue
				}
				slot := tbl + kernel.Addr(8*sh.NodeIdx[n])
				r.NetRecv(sh.Leaders[n], slot, 8)
				cl.checkCred(r, slot, sh.Leaders[n])
				if sh.Orphaned[n] {
					// A successor is a stranger: challenge it before
					// admitting it to the leader table. Incumbent leaders
					// skip this round trip — the extra fabric RTT per
					// orphaned node is what makes a dead leader measurably
					// costlier than a dead member in the elect latency.
					chal := r.Alloc(8)
					cl.putCred(r, chal, sh.Leaders[n])
					r.NetSend(sh.Leaders[n], chal, 8)
					conf := r.Alloc(8)
					r.NetRecv(sh.Leaders[n], conf, 8)
					cl.checkCred(r, conf, sh.Leaders[n])
				}
			}
			for _, n := range sh.AliveNodes {
				if n != r.Node {
					r.NetSend(sh.Leaders[n], tbl, tblBytes)
				}
			}
		} else {
			cred := r.Alloc(8)
			cl.putCred(r, cred, r.World)
			r.NetSend(coordW, cred, 8)
			if sh.Orphaned[r.Node] {
				chal := r.Alloc(8)
				r.NetRecv(coordW, chal, 8)
				cl.checkCred(r, chal, r.World)
				conf := r.Alloc(8)
				cl.putCred(r, conf, r.World)
				r.NetSend(coordW, conf, 8)
			}
			r.NetRecv(coordW, tbl, tblBytes)
			cl.checkCred(r, tbl+kernel.Addr(8*sh.NodeIdx[r.Node]), r.World)
		}
	}
	if rec != nil {
		rec.End(span)
	}
	if t := sp.Now(); t > wl.electEnd {
		wl.electEnd = t
	}
}

// putCred materializes a leader credential (its world rank) at addr.
func (cl *Cluster) putCred(r *Rank, addr kernel.Addr, world int) {
	if !cl.CopyData {
		return
	}
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(world))
	r.OS.WriteAt(addr, b[:])
}

// checkCred verifies a received leader credential byte-level.
func (cl *Cluster) checkCred(r *Rank, addr kernel.Addr, want int) {
	if !cl.CopyData {
		return
	}
	got := binary.LittleEndian.Uint64(r.OS.Bytes(addr, 8))
	if got != uint64(want) {
		panic(fmt.Sprintf("cluster: election credential %d, want %d", got, want))
	}
}

// ---------------------------------------------------------------------
// Survivor re-run: the collective replayed over the shrunken world.
// ---------------------------------------------------------------------

// Rerun executes kind over the survivor world. Whatever design the
// aborted attempt used, the re-run is always the two-level leader
// decomposition over the survivor table — the re-elected leaders are
// exactly what the recovery just paid to establish, and the leader
// design is the only one whose node phase re-plans cleanly for any
// survivor count (non-power-of-two counts at both granularities,
// including whole-node loss). Buffers follow the NEW node-major
// numbering: new rank j's block sits at offset j*Count, and a.Root is a
// new world id. Each node's intra phase is re-planned via core.Replan
// at its own survivor count; the node tier re-plans structurally over
// the alive-node list.
func Rerun(r *Rank, sh *Shrunk, kind core.Kind, intraSpec string, a Args) {
	if intraSpec == "" {
		intraSpec = "tuned"
	}
	x := &rerunner{cl: r.cluster, sh: sh, spec: intraSpec, kind: kind}
	rec := r.Tracer()
	span := trace.NoSpan
	if rec != nil {
		span = rec.Begin(r.Lane(), trace.CatColl, "hcoll:"+string(kind)+":rerun",
			trace.F("bytes", float64(a.Count)), trace.F("root", float64(a.Root)))
	}
	switch kind {
	case core.KindBcast:
		x.bcast(r, a)
	case core.KindGather:
		x.gather(r, a)
	case core.KindScatter:
		x.scatter(r, a)
	case core.KindAllgather:
		x.allgather(r, a)
	case core.KindAlltoall:
		x.alltoall(r, a)
	case core.KindReduce:
		x.reduce(r, a)
	default:
		panic(fmt.Sprintf("cluster: no re-run for kind %s", kind))
	}
	if rec != nil {
		rec.End(span)
	}
}

// rerunner carries the survivor table through one re-run.
type rerunner struct {
	cl   *Cluster
	sh   *Shrunk
	spec string
	kind core.Kind
}

// phase mirrors hier.phase: every stage (including the degenerate
// single-survivor fixups) gets its h_intra/h_net span so the stage
// ordering invariants see the re-run like any other collective.
func (x *rerunner) phase(r *Rank, name string, f func()) {
	rec := r.Tracer()
	if rec == nil {
		f()
		return
	}
	span := rec.Begin(r.Lane(), trace.CatColl, name)
	f()
	rec.End(span)
}

// intra re-plans the same-kind intra-node algorithm for kn survivors.
func (x *rerunner) intra(kn int) core.Algorithm {
	al, err := core.Replan(x.kind, x.spec, kn)
	if err != nil {
		panic(fmt.Sprintf("cluster: replan %s/%s for %d survivors: %v", x.kind, x.spec, kn, err))
	}
	return al
}

// leadLocal is the re-run leader's new-local rank on a node: the root
// leads its own node (rooted kinds), the re-elected successor (new
// local 0) everywhere else. rootNew < 0 means non-rooted.
func (x *rerunner) leadLocal(node, rootNew int) int {
	if rootNew >= 0 && x.sh.NodeOfNew(rootNew) == node {
		return rootNew - x.sh.Prefix[node]
	}
	return 0
}

// leaderW is the original world rank of a node's re-run leader.
func (x *rerunner) leaderW(node, rootNew int) int {
	return x.sh.OldWorld[x.sh.Prefix[node]+x.leadLocal(node, rootNew)]
}

// netBcast is the binomial broadcast over alive-node list positions.
func (x *rerunner) netBcast(r *Rank, rootNew int, buf kernel.Addr, size int64) {
	sh := x.sh
	a := len(sh.AliveNodes)
	if a == 1 {
		return
	}
	rootIdx := sh.NodeIdx[sh.NodeOfNew(rootNew)]
	rel := (sh.NodeIdx[r.Node] - rootIdx + a) % a
	abs := func(rel int) int { return sh.AliveNodes[(rel+rootIdx)%a] }
	if rel != 0 {
		r.NetRecv(x.leaderW(abs(rel-lowbit(rel)), rootNew), buf, size)
	}
	top := lowbit(rel)
	if rel == 0 {
		top = 1
		for top < a {
			top <<= 1
		}
	}
	for mask := top >> 1; mask >= 1; mask >>= 1 {
		if child := rel + mask; child < a {
			r.NetSend(x.leaderW(abs(child), rootNew), buf, size)
		}
	}
}

// netReduce is the binomial reverse over alive-node list positions.
func (x *rerunner) netReduce(r *Rank, rootNew int, acc kernel.Addr, size int64) {
	sh := x.sh
	a := len(sh.AliveNodes)
	if a == 1 {
		return
	}
	rootIdx := sh.NodeIdx[sh.NodeOfNew(rootNew)]
	rel := (sh.NodeIdx[r.Node] - rootIdx + a) % a
	abs := func(rel int) int { return sh.AliveNodes[(rel+rootIdx)%a] }
	var scratch kernel.Addr
	haveScratch := false
	for mask := 1; mask < a; mask <<= 1 {
		if rel&mask != 0 {
			r.NetSend(x.leaderW(abs(rel-mask), rootNew), acc, size)
			return
		}
		if peer := rel + mask; peer < a {
			if !haveScratch {
				scratch = r.Alloc(size)
				haveScratch = true
			}
			r.NetRecv(x.leaderW(abs(peer), rootNew), scratch, size)
			r.OS.Combine(r.SP, acc, scratch, size)
		}
	}
}

func (x *rerunner) bcast(r *Rank, a Args) {
	sh := x.sh
	kn := sh.SurvivorsOn(r.Node)
	lead := x.leadLocal(r.Node, a.Root)
	buf := a.Recv
	if sh.Prefix[r.Node]+r.ID == a.Root {
		buf = a.Send
	}
	if r.ID == lead {
		x.phase(r, "h_net", func() { x.netBcast(r, a.Root, buf, a.Count) })
	}
	x.phase(r, "h_intra", func() {
		if kn > 1 {
			x.intra(kn).Run(r.Rank, core.Args{Send: buf, Recv: a.Recv, Count: a.Count, Root: lead})
		}
	})
}

func (x *rerunner) gather(r *Rank, a Args) {
	sh := x.sh
	kn := sh.SurvivorsOn(r.Node)
	lead := x.leadLocal(r.Node, a.Root)
	rootNode := sh.NodeOfNew(a.Root)
	nodeBytes := int64(kn) * a.Count
	stage := a.Recv // non-leaders: unused by the intra root
	if r.ID == lead {
		if r.Node == rootNode {
			stage = a.Recv + kernel.Addr(int64(sh.Prefix[r.Node])*a.Count)
		} else {
			stage = r.Alloc(nodeBytes)
		}
	}
	x.phase(r, "h_intra", func() {
		if kn > 1 {
			x.intra(kn).Run(r.Rank, core.Args{Send: a.Send, Recv: stage, Count: a.Count, Root: lead})
		} else {
			r.LocalCopy(stage, a.Send, a.Count)
		}
	})
	if r.ID == lead {
		x.phase(r, "h_net", func() {
			if r.Node != rootNode {
				r.NetSend(sh.OldWorld[a.Root], stage, nodeBytes)
				return
			}
			for _, n := range sh.AliveNodes {
				if n == r.Node {
					continue
				}
				r.NetRecv(x.leaderW(n, a.Root),
					a.Recv+kernel.Addr(int64(sh.Prefix[n])*a.Count),
					int64(sh.SurvivorsOn(n))*a.Count)
			}
		})
	}
}

func (x *rerunner) scatter(r *Rank, a Args) {
	sh := x.sh
	kn := sh.SurvivorsOn(r.Node)
	lead := x.leadLocal(r.Node, a.Root)
	rootNode := sh.NodeOfNew(a.Root)
	nodeBytes := int64(kn) * a.Count
	stage := a.Send // non-leaders: unused by the intra root
	if r.ID == lead {
		if r.Node == rootNode {
			stage = a.Send + kernel.Addr(int64(sh.Prefix[r.Node])*a.Count)
		} else {
			stage = r.Alloc(nodeBytes)
		}
	}
	if r.ID == lead {
		x.phase(r, "h_net", func() {
			if r.Node != rootNode {
				r.NetRecv(sh.OldWorld[a.Root], stage, nodeBytes)
				return
			}
			for _, n := range sh.AliveNodes {
				if n == r.Node {
					continue
				}
				r.NetSend(x.leaderW(n, a.Root),
					a.Send+kernel.Addr(int64(sh.Prefix[n])*a.Count),
					int64(sh.SurvivorsOn(n))*a.Count)
			}
		})
	}
	x.phase(r, "h_intra", func() {
		if kn > 1 {
			x.intra(kn).Run(r.Rank, core.Args{Send: stage, Recv: a.Recv, Count: a.Count, Root: lead})
		} else {
			r.LocalCopy(a.Recv, stage, a.Count)
		}
	})
}

func (x *rerunner) allgather(r *Rank, a Args) {
	sh := x.sh
	kn := sh.SurvivorsOn(r.Node)
	base := sh.Prefix[r.Node]
	nodeBytes := int64(kn) * a.Count
	full := int64(sh.NewSize) * a.Count
	nodeBlock := a.Recv + kernel.Addr(int64(base)*a.Count)
	x.phase(r, "h_intra", func() {
		if kn > 1 {
			x.intra(kn).Run(r.Rank, core.Args{Send: a.Send, Recv: nodeBlock, Count: a.Count, Root: 0})
		} else {
			r.LocalCopy(nodeBlock, a.Send, a.Count)
		}
	})
	if r.ID == 0 {
		x.phase(r, "h_net", func() {
			// Direct leader exchange: all sends first (fabric sends are
			// buffered), then receives in ascending node order.
			for _, n := range sh.AliveNodes {
				if n != r.Node {
					r.NetSend(sh.Leaders[n], nodeBlock, nodeBytes)
				}
			}
			for _, n := range sh.AliveNodes {
				if n == r.Node {
					continue
				}
				r.NetRecv(sh.Leaders[n],
					a.Recv+kernel.Addr(int64(sh.Prefix[n])*a.Count),
					int64(sh.SurvivorsOn(n))*a.Count)
			}
		})
	}
	x.phase(r, "h_intra", func() {
		if kn > 1 {
			core.TunedBcast(r.Rank, core.Args{Send: a.Recv, Recv: a.Recv, Count: full, Root: 0})
		}
	})
}

func (x *rerunner) alltoall(r *Rank, a Args) {
	sh := x.sh
	cl := x.cl
	kn := sh.SurvivorsOn(r.Node)
	base := sh.Prefix[r.Node]
	vec := int64(sh.NewSize) * a.Count
	var stage, mstage kernel.Addr
	if r.ID == 0 {
		stage = r.Alloc(int64(kn) * vec)
		mstage = r.Alloc(int64(kn) * vec)
	}
	x.phase(r, "h_intra", func() {
		if kn > 1 {
			core.TunedGather(r.Rank, core.Args{Send: a.Send, Recv: stage, Count: vec, Root: 0})
		} else {
			r.LocalCopy(stage, a.Send, vec)
		}
	})
	if r.ID == 0 {
		x.phase(r, "h_net", func() {
			// Pack and post one bundle per remote node (source-member
			// major: member sl's blocks for all of n's members), then
			// receive and unpack in ascending node order.
			for _, n := range sh.AliveNodes {
				if n == r.Node {
					continue
				}
				km := sh.SurvivorsOn(n)
				slot := int64(km) * a.Count
				bundle := r.Alloc(int64(kn) * slot)
				r.packCost(int64(kn) * slot)
				if cl.CopyData {
					for sl := 0; sl < kn; sl++ {
						r.movePayload(bundle+kernel.Addr(int64(sl)*slot),
							stage+kernel.Addr(int64(sl)*vec+int64(sh.Prefix[n])*a.Count), slot)
					}
				}
				r.NetSend(sh.Leaders[n], bundle, int64(kn)*slot)
			}
			// Local transpose of this node's own blocks.
			r.packCost(int64(kn) * int64(kn) * a.Count)
			if cl.CopyData {
				for sl := 0; sl < kn; sl++ {
					for dl := 0; dl < kn; dl++ {
						r.movePayload(mstage+kernel.Addr(int64(dl)*vec+int64(base+sl)*a.Count),
							stage+kernel.Addr(int64(sl)*vec+int64(base+dl)*a.Count), a.Count)
					}
				}
			}
			for _, n := range sh.AliveNodes {
				if n == r.Node {
					continue
				}
				km := sh.SurvivorsOn(n)
				in := r.Alloc(int64(km) * int64(kn) * a.Count)
				r.NetRecv(sh.Leaders[n], in, int64(km)*int64(kn)*a.Count)
				r.packCost(int64(km) * int64(kn) * a.Count)
				if cl.CopyData {
					for slm := 0; slm < km; slm++ {
						for dl := 0; dl < kn; dl++ {
							r.movePayload(
								mstage+kernel.Addr(int64(dl)*vec+int64(sh.Prefix[n]+slm)*a.Count),
								in+kernel.Addr(int64(slm)*int64(kn)*a.Count+int64(dl)*a.Count), a.Count)
						}
					}
				}
			}
		})
	}
	x.phase(r, "h_intra", func() {
		if kn > 1 {
			core.TunedScatter(r.Rank, core.Args{Send: mstage, Recv: a.Recv, Count: vec, Root: 0})
		} else {
			r.LocalCopy(a.Recv, mstage, vec)
		}
	})
}

func (x *rerunner) reduce(r *Rank, a Args) {
	sh := x.sh
	kn := sh.SurvivorsOn(r.Node)
	lead := x.leadLocal(r.Node, a.Root)
	acc := a.Recv
	if r.ID == lead && sh.Prefix[r.Node]+r.ID != a.Root {
		acc = r.Alloc(a.Count)
	}
	x.phase(r, "h_intra", func() {
		if kn > 1 {
			x.intra(kn).Run(r.Rank, core.Args{Send: a.Send, Recv: acc, Count: a.Count, Root: lead})
		} else {
			r.LocalCopy(acc, a.Send, a.Count)
		}
	})
	if r.ID == lead {
		x.phase(r, "h_net", func() { x.netReduce(r, a.Root, acc, a.Count) })
	}
}
