package cluster

import (
	"bytes"
	"fmt"
	"testing"

	"camc/internal/arch"
	"camc/internal/core"
	"camc/internal/kernel"
)

// collBufSizes returns (send, recv) buffer sizes for one rank of a
// world-size-p cluster collective.
func collBufSizes(kind core.Kind, p int, count int64) (int64, int64) {
	switch kind {
	case core.KindScatter:
		return int64(p) * count, count
	case core.KindGather:
		return count, int64(p) * count
	case core.KindAlltoall:
		return int64(p) * count, int64(p) * count
	case core.KindAllgather:
		return count, int64(p) * count
	default: // bcast, reduce
		return count, count
	}
}

func sendPattern(w int, size int64) []byte {
	b := make([]byte, size)
	for i := range b {
		b[i] = byte(w*131 + i*7 + 1)
	}
	return b
}

// collExpect computes world rank w's expected receive bytes, nil where
// the collective leaves them unspecified (everything but the root's for
// rooted kinds; a bcast root's own receive buffer is untouched).
func collExpect(kind core.Kind, p int, count int64, root, w int, sends [][]byte) []byte {
	switch kind {
	case core.KindBcast:
		if w == root {
			return nil
		}
		return sends[root]
	case core.KindGather:
		if w != root {
			return nil
		}
		exp := make([]byte, 0, int64(p)*count)
		for s := 0; s < p; s++ {
			exp = append(exp, sends[s]...)
		}
		return exp
	case core.KindScatter:
		return sends[root][int64(w)*count : int64(w+1)*count]
	case core.KindAllgather:
		exp := make([]byte, 0, int64(p)*count)
		for s := 0; s < p; s++ {
			exp = append(exp, sends[s]...)
		}
		return exp
	case core.KindAlltoall:
		exp := make([]byte, 0, int64(p)*count)
		for s := 0; s < p; s++ {
			exp = append(exp, sends[s][int64(w)*count:int64(w+1)*count]...)
		}
		return exp
	case core.KindReduce:
		if w != root {
			return nil
		}
		exp := make([]byte, count)
		for s := 0; s < p; s++ {
			for i := range exp {
				exp[i] += sends[s][i]
			}
		}
		return exp
	}
	panic("unknown kind " + string(kind))
}

// TestClusterCollectivesMatchOracle runs every kind under every design
// on materialized payload and checks the delivered bytes against a
// sequential oracle — including non-power-of-two node counts, a
// non-zero root, and both topologies.
func TestClusterCollectivesMatchOracle(t *testing.T) {
	cases := []struct {
		nodes, ppn, root int
		topo             string
	}{
		{2, 3, 0, "fattree"},
		{3, 2, 4, "fattree"}, // non-pow2 nodes, mid-world root
		{4, 2, 7, "dragonfly"},
		{5, 3, 11, "dragonfly"}, // non-pow2, root on last node
	}
	count := int64(96)
	for _, tc := range cases {
		for _, kind := range core.SpecKinds() {
			for _, design := range Designs() {
				name := fmt.Sprintf("%s/%s/n%dp%dr%d-%s", kind, design, tc.nodes, tc.ppn, tc.root, tc.topo)
				t.Run(name, func(t *testing.T) {
					cl := New(Config{
						Arch: arch.KNL(), NumNodes: tc.nodes, PPN: tc.ppn,
						Topo: tc.topo, SwitchRadix: 2, CopyData: true,
					})
					coll, err := Lookup(cl, kind, design, "")
					if err != nil {
						t.Fatal(err)
					}
					world := cl.WorldSize()
					sendSize, recvSize := collBufSizes(kind, world, count)
					sends := make([][]byte, world)
					sendA := make([]kernel.Addr, world)
					recvA := make([]kernel.Addr, world)
					for w := 0; w < world; w++ {
						p := cl.WorldRank(w).OS
						sendA[w] = p.Alloc(sendSize)
						recvA[w] = p.Alloc(recvSize)
						sends[w] = sendPattern(w, sendSize)
						p.WriteAt(sendA[w], sends[w])
						p.FillAt(recvA[w], recvSize, 0xEE)
					}
					if _, err := cl.Run(func(r *Rank) {
						coll.Run(r, Args{Send: sendA[r.World], Recv: recvA[r.World], Count: count, Root: tc.root})
					}); err != nil {
						t.Fatal(err)
					}
					for w := 0; w < world; w++ {
						p := cl.WorldRank(w).OS
						if got := p.Bytes(sendA[w], sendSize); !bytes.Equal(got, sends[w]) {
							t.Errorf("rank %d: send buffer mutated", w)
						}
						exp := collExpect(kind, world, count, tc.root, w, sends)
						if exp == nil {
							continue
						}
						if got := p.Bytes(recvA[w], recvSize); !bytes.Equal(got, exp) {
							t.Errorf("rank %d: recv payload mismatch", w)
						}
					}
				})
			}
		}
	}
}

// TestClusterCollectivesDeterministic: same shape, same latency, for a
// representative design of each kind.
func TestClusterCollectivesDeterministic(t *testing.T) {
	for _, kind := range core.SpecKinds() {
		for _, design := range Designs() {
			lat := func() float64 {
				cl := New(Config{Arch: arch.Broadwell(), NumNodes: 3, PPN: 4})
				coll, err := Lookup(cl, kind, design, "")
				if err != nil {
					t.Fatal(err)
				}
				world := cl.WorldSize()
				count := int64(8 << 10)
				sendSize, recvSize := collBufSizes(kind, world, count)
				done, err := cl.Run(func(r *Rank) {
					send := r.Alloc(sendSize)
					recv := r.Alloc(recvSize)
					coll.Run(r, Args{Send: send, Recv: recv, Count: count, Root: 5})
				})
				if err != nil {
					t.Fatal(err)
				}
				return done
			}
			if a, b := lat(), lat(); a != b {
				t.Fatalf("%s/%s nondeterministic: %g vs %g", kind, design, a, b)
			}
		}
	}
}

// TestLeaderBeatsFlatAtScale: the headline claim extended to the fabric
// model — with enough nodes, the two-level design wins for the rooted
// kinds because it moves O(nodes) network flows instead of O(world).
// Reduce is excluded: under node-major rank placement a flat binomial
// reduce is already implicitly hierarchical (its low-stride rounds stay
// on-node over shm, and only the top log(nodes) rounds cross the
// fabric, one flow per node pair), so the leader design has nothing
// left to save there.
func TestLeaderBeatsFlatAtScale(t *testing.T) {
	for _, kind := range []core.Kind{core.KindBcast, core.KindGather, core.KindScatter} {
		lat := func(design Design) float64 {
			cl := New(Config{Arch: arch.KNL(), NumNodes: 8, PPN: 16})
			coll, err := Lookup(cl, kind, design, "")
			if err != nil {
				t.Fatal(err)
			}
			world := cl.WorldSize()
			count := int64(16 << 10)
			sendSize, recvSize := collBufSizes(kind, world, count)
			done, err := cl.Run(func(r *Rank) {
				send := r.Alloc(sendSize)
				recv := r.Alloc(recvSize)
				coll.Run(r, Args{Send: send, Recv: recv, Count: count})
			})
			if err != nil {
				t.Fatal(err)
			}
			return done
		}
		flat, leader := lat(DesignFlat), lat(DesignLeader)
		if leader >= flat {
			t.Errorf("%s: leader %.0fus not below flat %.0fus at 8x16", kind, leader, flat)
		}
	}
}

func TestLookupErrors(t *testing.T) {
	cl := New(Config{Arch: arch.KNL(), NumNodes: 2, PPN: 2})
	if _, err := Lookup(cl, core.KindBcast, Design("ring"), ""); err == nil {
		t.Fatal("unknown design accepted")
	}
	if _, err := Lookup(cl, core.KindBcast, DesignLeader, "nope"); err == nil {
		t.Fatal("unknown intra spec accepted")
	}
	if _, err := Lookup(cl, core.KindGather, DesignLeader, "throttled:64"); err != nil {
		t.Fatalf("replan should clamp the throttle to PPN: %v", err)
	}
}
