package cluster

import (
	"testing"

	"camc/internal/arch"
	"camc/internal/core"
	"camc/internal/kernel"
)

func TestGammaNetMonotone(t *testing.T) {
	f := &Fabric{GNet: 0.05}
	if g := f.GammaNet(1); g != 1 {
		t.Fatalf("GammaNet(1) = %g, want 1", g)
	}
	prev := 0.0
	for c := 1; c <= 64; c++ {
		g := f.GammaNet(c)
		if g <= prev {
			t.Fatalf("GammaNet not strictly increasing at c=%d: %g <= %g", c, g, prev)
		}
		if g < float64(c) {
			t.Fatalf("GammaNet(%d) = %g < c: aggregate link rate would exceed line rate", c, g)
		}
		prev = g
	}
	fair := &Fabric{GNet: 0}
	for c := 1; c <= 8; c++ {
		if g := fair.GammaNet(c); g != float64(c) {
			t.Fatalf("fair-sharing GammaNet(%d) = %g, want %d", c, g, c)
		}
	}
}

func TestGammaNetPanicsBelowOne(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for GammaNet(0)")
		}
	}()
	(&Fabric{}).GammaNet(0)
}

// TestFlowConservation checks that every link delivers exactly the bytes
// injected into it, with sane activity accounting, after a
// contention-heavy collective.
func TestFlowConservation(t *testing.T) {
	for _, topo := range TopoNames() {
		cl := New(Config{Arch: arch.KNL(), NumNodes: 5, PPN: 3, Topo: topo, SwitchRadix: 2})
		coll, err := Lookup(cl, core.KindAlltoall, DesignLeader, "")
		if err != nil {
			t.Fatal(err)
		}
		world := cl.WorldSize()
		count := int64(4 << 10)
		_, err = cl.Run(func(r *Rank) {
			send := r.Alloc(int64(world) * count)
			recv := r.Alloc(int64(world) * count)
			coll.Run(r, Args{Send: send, Recv: recv, Count: count})
		})
		if err != nil {
			t.Fatalf("%s: %v", topo, err)
		}
		stats := cl.Fabric.LinkStats()
		if len(stats) == 0 {
			t.Fatalf("%s: no links touched", topo)
		}
		for _, ls := range stats {
			if ls.Injected != ls.Delivered {
				t.Errorf("%s %s: injected %d != delivered %d", topo, ls.Name, ls.Injected, ls.Delivered)
			}
			if ls.MaxActive < 1 {
				t.Errorf("%s %s: max active %d < 1", topo, ls.Name, ls.MaxActive)
			}
			if ls.Busy <= 0 || ls.Last < ls.First {
				t.Errorf("%s %s: bad activity window busy=%g first=%g last=%g", topo, ls.Name, ls.Busy, ls.First, ls.Last)
			}
		}
	}
}

// TestLinkUtilization checks the γ_net >= c consequence: a link never
// delivers bytes faster than its line rate over its activity window
// (with slack for chunks in flight at the window edges).
func TestLinkUtilization(t *testing.T) {
	cl := New(Config{Arch: arch.KNL(), NumNodes: 6, PPN: 4, SwitchRadix: 2})
	coll, err := Lookup(cl, core.KindGather, DesignFlat, "")
	if err != nil {
		t.Fatal(err)
	}
	world := cl.WorldSize()
	count := int64(64 << 10)
	if _, err := cl.Run(func(r *Rank) {
		send := r.Alloc(count)
		recv := r.Alloc(int64(world) * count)
		coll.Run(r, Args{Send: send, Recv: recv, Count: count})
	}); err != nil {
		t.Fatal(err)
	}
	beta := cl.Fabric.Beta
	chunkTime := float64(cl.Fabric.ChunkBytes) * beta
	for _, ls := range cl.Fabric.LinkStats() {
		window := ls.Last - ls.First
		limit := window + float64(ls.MaxActive)*chunkTime + 1e-6
		if got := float64(ls.Delivered) * beta; got > limit {
			t.Errorf("link %s: delivered %d bytes needs %.1fus of line rate but window is %.1fus (max %d flows)",
				ls.Name, ls.Delivered, got, window, ls.MaxActive)
		}
	}
}

// TestLatencyMonotoneInNodes checks that at a fixed payload, adding
// nodes never makes the leader-based broadcast faster.
func TestLatencyMonotoneInNodes(t *testing.T) {
	prev := 0.0
	for _, nodes := range []int{2, 3, 4, 6, 8, 12} {
		cl := New(Config{Arch: arch.KNL(), NumNodes: nodes, PPN: 4})
		coll, err := Lookup(cl, core.KindBcast, DesignLeader, "")
		if err != nil {
			t.Fatal(err)
		}
		count := int64(256 << 10)
		done, err := cl.Run(func(r *Rank) {
			send := r.Alloc(count)
			recv := r.Alloc(count)
			coll.Run(r, Args{Send: send, Recv: recv, Count: count})
		})
		if err != nil {
			t.Fatal(err)
		}
		if done < prev {
			t.Fatalf("latency decreased with node count: %d nodes = %.1fus < %.1fus", nodes, done, prev)
		}
		prev = done
	}
}

func TestTopoRoutes(t *testing.T) {
	for _, name := range TopoNames() {
		topo, err := TopoByName(name, 9, 4)
		if err != nil {
			t.Fatal(err)
		}
		var buf [maxRouteHops]LinkID
		for src := 0; src < 9; src++ {
			for dst := 0; dst < 9; dst++ {
				route := topo.Route(src, dst, buf[:0])
				if src == dst {
					if len(route) != 0 {
						t.Fatalf("%s: self-route %d->%d not empty", name, src, dst)
					}
					continue
				}
				if len(route) == 0 || len(route) > maxRouteHops {
					t.Fatalf("%s: route %d->%d has %d hops", name, src, dst, len(route))
				}
				for _, l := range route {
					if int(l) < 0 || int(l) >= topo.NumLinks() {
						t.Fatalf("%s: route %d->%d uses link %d of %d", name, src, dst, l, topo.NumLinks())
					}
					if topo.LinkName(l) == "" {
						t.Fatalf("%s: link %d unnamed", name, l)
					}
				}
			}
		}
	}
	if _, err := TopoByName("torus", 4, 2); err == nil {
		t.Fatal("unknown topology accepted")
	}
	if _, err := TopoByName("fattree", 0, 2); err == nil {
		t.Fatal("zero nodes accepted")
	}
	if _, err := TopoByName("fattree", 4, 0); err == nil {
		t.Fatal("zero radix accepted")
	}
}

// TestFabricPoolReuse pins the queue-pooling regression: a released
// cluster's simulation and fabric are reused by the next same-shape New,
// and the rerun creates no new queue channels.
func TestFabricPoolReuse(t *testing.T) {
	// A distinctive GNet keys a private pool slot for this test.
	cfg := Config{Arch: arch.KNL(), NumNodes: 4, PPN: 2, GNet: 0.0503}
	run := func(cl *Cluster) {
		coll, err := Lookup(cl, core.KindGather, DesignLeader, "")
		if err != nil {
			t.Fatal(err)
		}
		world := cl.WorldSize()
		if _, err := cl.Run(func(r *Rank) {
			send := r.Alloc(1 << 10)
			recv := r.Alloc(int64(world) << 10)
			coll.Run(r, Args{Send: send, Recv: recv, Count: 1 << 10})
		}); err != nil {
			t.Fatal(err)
		}
	}
	cl := New(cfg)
	run(cl)
	fab, s := cl.Fabric, cl.Sim
	allocs := fab.ChanAllocs
	if allocs == 0 {
		t.Fatal("no queue channels allocated on first run")
	}
	Release(cl)
	cl2 := New(cfg)
	if cl2.Fabric != fab || cl2.Sim != s {
		t.Fatal("same-shape New did not reuse the released simulation/fabric pair")
	}
	run(cl2)
	if cl2.Fabric.ChanAllocs != allocs {
		t.Fatalf("rerun allocated %d new queue channels", cl2.Fabric.ChanAllocs-allocs)
	}
	Release(cl2)
}

// TestReleaseDetectsLeakedMessage: releasing a cluster whose run left a
// message undrained must panic loudly rather than recycle a dirty queue.
func TestReleaseDetectsLeakedMessage(t *testing.T) {
	cfg := Config{Arch: arch.KNL(), NumNodes: 2, PPN: 1, GNet: 0.0507}
	cl := New(cfg)
	if _, err := cl.Run(func(r *Rank) {
		if r.World == 0 {
			buf := r.Alloc(64)
			r.NetSend(1, buf, 64) // never received
		}
	}); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic releasing a fabric with an undrained queue")
		}
	}()
	Release(cl)
}

// TestNetSendRejectsSameNode: the fabric is for cross-node traffic only.
func TestNetSendRejectsSameNode(t *testing.T) {
	cl := New(Config{Arch: arch.KNL(), NumNodes: 2, PPN: 2})
	_, err := cl.Run(func(r *Rank) {
		if r.World == 0 {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for same-node NetSend")
				}
			}()
			r.NetSend(1, kernel.Addr(0), 64)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
