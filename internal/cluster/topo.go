package cluster

import (
	"fmt"
	"sort"
)

// LinkID indexes one directed link of a topology's fabric.
type LinkID int32

// Topology maps a (source node, destination node) pair to the ordered
// sequence of directed links a message traverses. Implementations must
// be pure: the same pair always yields the same route, and every route
// between distinct nodes is non-empty.
type Topology interface {
	Name() string
	NumLinks() int
	// LinkName labels a link for traces and diagnostics.
	LinkName(l LinkID) string
	// Route appends the links from src to dst onto buf and returns it.
	// src == dst yields an empty route. Implementations never allocate
	// when buf has capacity (routes are at most maxRouteHops long).
	Route(src, dst int, buf []LinkID) []LinkID
}

// maxRouteHops bounds the route length of every built-in topology, so
// callers can keep a fixed-size scratch buffer.
const maxRouteHops = 4

// FatTree is a two-tier fat tree: nodes hang off leaf (access) switches
// of Radix ports each, and every leaf owns an uplink/downlink trunk pair
// into a non-blocking spine. Same-leaf traffic crosses two access links;
// cross-leaf traffic additionally crosses the two trunk links — which is
// where inter-leaf flows contend.
type FatTree struct {
	Nodes int
	Radix int // nodes per leaf switch
}

// Link layout for a FatTree with N nodes and L leaves:
//
//	[0, N)        node uplinks   (node -> its leaf switch)
//	[N, 2N)       node downlinks (leaf switch -> node)
//	[2N, 2N+L)    trunk uplinks  (leaf -> spine)
//	[2N+L, 2N+2L) trunk downlinks (spine -> leaf)
func (t *FatTree) leaves() int { return (t.Nodes + t.Radix - 1) / t.Radix }

func (t *FatTree) Name() string  { return "fattree" }
func (t *FatTree) NumLinks() int { return 2*t.Nodes + 2*t.leaves() }

func (t *FatTree) LinkName(l LinkID) string {
	n, lv := t.Nodes, t.leaves()
	switch i := int(l); {
	case i < n:
		return fmt.Sprintf("up/n%d", i)
	case i < 2*n:
		return fmt.Sprintf("down/n%d", i-n)
	case i < 2*n+lv:
		return fmt.Sprintf("trunk-up/l%d", i-2*n)
	default:
		return fmt.Sprintf("trunk-down/l%d", i-2*n-lv)
	}
}

func (t *FatTree) Route(src, dst int, buf []LinkID) []LinkID {
	if src == dst {
		return buf
	}
	sl, dl := src/t.Radix, dst/t.Radix
	buf = append(buf, LinkID(src)) // uplink out of src
	if sl != dl {
		buf = append(buf, LinkID(2*t.Nodes+sl), LinkID(2*t.Nodes+t.leaves()+dl))
	}
	return append(buf, LinkID(t.Nodes+dst)) // downlink into dst
}

// DragonflyLite is a reduced dragonfly: nodes are grouped, each group's
// router pair is all-to-all connected to every other group by one
// directed global link per ordered group pair. Intra-group traffic
// crosses two access links; inter-group traffic additionally crosses the
// single global link between the two groups — the contention hotspot a
// dragonfly's adaptive routing exists to spread (this lite model routes
// minimally, so the hotspot is visible).
type DragonflyLite struct {
	Nodes int
	Group int // nodes per group
}

// Link layout for a DragonflyLite with N nodes and G groups:
//
//	[0, N)          node uplinks
//	[N, 2N)         node downlinks
//	[2N, 2N+G*G)    global links, (srcGroup, dstGroup) row-major
func (t *DragonflyLite) groups() int { return (t.Nodes + t.Group - 1) / t.Group }

func (t *DragonflyLite) Name() string  { return "dragonfly" }
func (t *DragonflyLite) NumLinks() int { g := t.groups(); return 2*t.Nodes + g*g }

func (t *DragonflyLite) LinkName(l LinkID) string {
	n, g := t.Nodes, t.groups()
	switch i := int(l); {
	case i < n:
		return fmt.Sprintf("up/n%d", i)
	case i < 2*n:
		return fmt.Sprintf("down/n%d", i-n)
	default:
		p := i - 2*n
		return fmt.Sprintf("global/g%d-g%d", p/g, p%g)
	}
}

func (t *DragonflyLite) Route(src, dst int, buf []LinkID) []LinkID {
	if src == dst {
		return buf
	}
	sg, dg := src/t.Group, dst/t.Group
	buf = append(buf, LinkID(src))
	if sg != dg {
		buf = append(buf, LinkID(2*t.Nodes+sg*t.groups()+dg))
	}
	return append(buf, LinkID(t.Nodes+dst))
}

// topoNames lists the registered topology constructors in display order.
var topoNames = map[string]func(nodes, radix int) Topology{
	"fattree":   func(nodes, radix int) Topology { return &FatTree{Nodes: nodes, Radix: radix} },
	"dragonfly": func(nodes, radix int) Topology { return &DragonflyLite{Nodes: nodes, Group: radix} },
}

// TopoNames returns the recognized topology names, sorted.
func TopoNames() []string {
	names := make([]string, 0, len(topoNames))
	for n := range topoNames {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// TopoByName builds a topology over nodes with the given switch radix
// (nodes per leaf/group). An empty name selects the fat tree.
func TopoByName(name string, nodes, radix int) (Topology, error) {
	if name == "" {
		name = "fattree"
	}
	mk, ok := topoNames[name]
	if !ok {
		return nil, fmt.Errorf("cluster: unknown topology %q (want one of %v)", name, TopoNames())
	}
	if nodes < 1 {
		return nil, fmt.Errorf("cluster: topology needs at least 1 node, got %d", nodes)
	}
	if radix < 1 {
		return nil, fmt.Errorf("cluster: switch radix %d < 1", radix)
	}
	return mk(nodes, radix), nil
}
