package cluster

import (
	"fmt"
	"sort"
	"sync"

	"camc/internal/sim"
	"camc/internal/trace"
)

// Fabric is the simulated interconnect: a topology of directed links,
// each with per-hop latency Alpha and per-byte time Beta, plus a
// switch-contention factor GammaNet(c) that inflates a flow's per-byte
// cost with the number of flows concurrently inside the same link —
// the network analogue of the paper's mm-lock γ(c). The sender pushes a
// message through its route link by link in ChunkBytes chunks,
// resampling the contention factor at every chunk boundary exactly like
// the kernel's per-chunk γ sampling; the receiver pays the matching and
// final-drain cost, serialized per node.
type Fabric struct {
	Topo   Topology
	Alpha  float64 // per-link propagation latency, us
	Beta   float64 // per-byte serialization time at full link rate, us
	PerMsg float64 // receiver-side matching/completion cost per message, us
	// GNet is the contention coefficient: GammaNet(c) = c·(1 + GNet·(c−1)).
	// GNet = 0 models perfectly fair bandwidth sharing (γ = c); any
	// positive value adds the super-linear arbitration overhead switches
	// exhibit under incast.
	GNet       float64
	ChunkBytes int64

	sim      *sim.Simulation
	copyData bool

	// queues holds the per-(src world rank, dst world rank) message
	// channels — flows match like MPI point-to-point, by ordered rank
	// pair, FIFO within a pair. They are created lazily (even a
	// 4096-node job touches a tiny fraction of the W² pairs) and
	// recycled through freeq across runs, so a pooled fabric re-runs
	// without re-allocating its queue storage.
	queues map[int64]*sim.Chan[netMsg]
	freeq  []*sim.Chan[netMsg]
	// ChanAllocs counts sim.Chan constructions over the fabric's
	// lifetime; the pooling regression test pins it across reuse.
	ChanAllocs int

	// sendBusy/recvBusy serialize each node's NIC inject and drain sides.
	sendBusy []*sim.Mutex
	recvBusy []*sim.Mutex

	links []linkState
	rec   *trace.Recorder

	// live, when non-nil, makes every fabric receive deadline-guarded
	// against the world liveness views: a receive that starves for a full
	// detector deadline gossip-probes the sender's node over the fabric
	// (paying contention-aware link costs) instead of blocking forever.
	live *WorldLiveness
}

// linkState is one directed link's live contention count and
// conservation/utilization accounting.
type linkState struct {
	active    int   // flows inside the link right now
	maxActive int   // high-water mark of active
	injected  int64 // bytes that entered the link
	delivered int64 // bytes that fully traversed it
	busy      float64
	first     float64 // start of the link's activity window
	last      float64 // end of the link's activity window
	touched   bool
}

type netMsg struct {
	src, dst int // world ranks
	size     int64
	sentAt   float64
	data     []byte // materialized payload, nil on dataless runs
}

// LinkStat is one link's end-of-run accounting, consumed by the flow
// conservation and utilization checks.
type LinkStat struct {
	Link      LinkID
	Name      string
	Injected  int64
	Delivered int64
	MaxActive int
	Busy      float64
	First     float64
	Last      float64
}

const defaultChunkBytes = 256 << 10

func newFabric(s *sim.Simulation, topo Topology, nodes int, alpha, beta, perMsg, gnet float64, chunk int64, copyData bool) *Fabric {
	f := &Fabric{
		Topo: topo, Alpha: alpha, Beta: beta, PerMsg: perMsg, GNet: gnet,
		ChunkBytes: chunk, sim: s, copyData: copyData,
		queues: make(map[int64]*sim.Chan[netMsg]),
		links:  make([]linkState, topo.NumLinks()),
	}
	for i := 0; i < nodes; i++ {
		f.sendBusy = append(f.sendBusy, sim.NewMutex(s))
		f.recvBusy = append(f.recvBusy, sim.NewMutex(s))
	}
	return f
}

// GammaNet returns the contention factor for c concurrent flows through
// one link. It is 1 at c = 1, strictly increasing, and always >= c, so
// a link's aggregate delivery rate never exceeds its line rate — the
// property the utilization invariant checks.
func (f *Fabric) GammaNet(c int) float64 {
	if c < 1 {
		panic(fmt.Sprintf("cluster: GammaNet(%d)", c))
	}
	return float64(c) * (1 + f.GNet*float64(c-1))
}

func (f *Fabric) queue(from, to int) *sim.Chan[netMsg] {
	key := int64(from)<<32 | int64(to)
	q, ok := f.queues[key]
	if !ok {
		if n := len(f.freeq); n > 0 {
			q = f.freeq[n-1]
			f.freeq[n-1] = nil
			f.freeq = f.freeq[:n-1]
		} else {
			q = sim.NewChan[netMsg](f.sim, 1<<20)
			f.ChanAllocs++
		}
		f.queues[key] = q
	}
	return q
}

// reset recycles the fabric for another run on the same (reset)
// simulation: queues return to the free list and link accounting
// clears. Only drained queues are reusable; an undrained one means the
// previous run leaked a message, which reset surfaces loudly.
func (f *Fabric) reset() {
	for key, q := range f.queues {
		if q.Len() != 0 {
			panic(fmt.Sprintf("cluster: fabric reset with %d undrained message(s) on queue %d->%d",
				q.Len(), key>>32, key&0xffffffff))
		}
		f.freeq = append(f.freeq, q)
		delete(f.queues, key)
	}
	for i := range f.links {
		f.links[i] = linkState{}
	}
}

// send pushes a message through the fabric: the sender's NIC serializes
// concurrent injections and pays the full-message serialization time,
// then the sender walks the route link by link (cut-through from the
// sender's perspective), paying per-chunk contention-inflated
// serialization on each. Concurrent flows into one node therefore
// genuinely overlap on its down-link, where GammaNet turns incast into
// the super-linear slowdown the paper measures on the mm-lock. The
// completed message lands in a buffered queue, so send never blocks on
// the receiver.
func (f *Fabric) send(sp *sim.Proc, lane, fromW, toW, fromNode, toNode int, size int64, data []byte, routeBuf []LinkID) {
	var span trace.SpanID
	if f.rec.Enabled() {
		span = f.rec.Begin(lane, trace.CatNet, "net_send",
			trace.F("dst", float64(toW)), trace.F("bytes", float64(size)))
	}
	f.beat(fromW)
	f.sendBusy[fromNode].Lock(sp)
	f.lease(fromW, sp.Now()+float64(size)*f.Beta)
	sp.Sleep(float64(size) * f.Beta)
	f.sendBusy[fromNode].Unlock()
	for _, l := range f.Topo.Route(fromNode, toNode, routeBuf[:0]) {
		f.traverse(sp, lane, fromW, l, size)
	}
	f.queue(fromW, toW).Send(sp, netMsg{src: fromW, dst: toW, size: size, sentAt: sp.Now(), data: data})
	if f.rec.Enabled() {
		f.rec.End(span)
	}
}

// recv drains one delivered message from the (fromW -> toW) flow: the
// receiving NIC's matching cost plus the final drain, serialized per
// receiving node. Returns the payload on materialized runs.
func (f *Fabric) recv(sp *sim.Proc, lane, fromLane, fromW, toW, toNode int, size int64) []byte {
	waitStart := sp.Now()
	var m netMsg
	if f.live != nil {
		m = f.live.guardedRecv(sp, lane, fromW, toW)
	} else {
		m = f.queue(fromW, toW).Recv(sp)
	}
	if m.size != size {
		panic(fmt.Sprintf("cluster: size mismatch on %d->%d: got %d want %d", fromW, toW, m.size, size))
	}
	var span trace.SpanID
	if f.rec.Enabled() {
		span = f.rec.Begin(lane, trace.CatNet, "net_recv",
			trace.F("src", float64(fromW)), trace.F("bytes", float64(size)))
	}
	f.recvBusy[toNode].Lock(sp)
	f.lease(toW, sp.Now()+f.PerMsg+float64(size)*f.Beta)
	sp.Sleep(f.PerMsg + float64(size)*f.Beta)
	f.recvBusy[toNode].Unlock()
	if f.rec.Enabled() {
		f.rec.End(span)
		f.rec.Edge(fromLane, lane, trace.CatNet, "net_msg", m.sentAt, m.sentAt, waitStart, sp.Now(),
			trace.F("bytes", float64(size)))
	}
	return m.data
}

// beat publishes world rank w's heartbeat on its node's liveness view
// (no-op without liveness). Senders beat per chunk so a rank busy
// pushing a large message through a contended link is never mistaken
// for a dead one by a deadline-expired waiter elsewhere.
func (f *Fabric) beat(w int) {
	if f.live != nil {
		f.live.beatWorld(w)
	}
}

// lease publishes a forward-dated heartbeat covering a known-length
// busy period (no-op without liveness). A single contention-inflated
// chunk can sleep longer than the detector deadline on a hot incast
// link; without the lease, a deadline-expired waiter elsewhere would
// judge the mid-transfer sender stale and poison the agreed failed set
// with a live rank.
func (f *Fabric) lease(w int, until sim.Time) {
	if f.live != nil {
		f.live.leaseWorld(w, until)
	}
}

// traverse moves size bytes across one link in chunks, resampling the
// concurrent-flow count — and with it GammaNet — at every chunk
// boundary, the same idiom the kernel uses for per-chunk mm-lock γ(c).
// srcW is the sending world rank (for heartbeats; the trace lane alone
// cannot identify it on untraced runs).
func (f *Fabric) traverse(sp *sim.Proc, lane, srcW int, l LinkID, size int64) {
	sp.Sleep(f.Alpha)
	ls := &f.links[l]
	now := sp.Now()
	if !ls.touched {
		ls.touched = true
		ls.first = now
	}
	first := true
	for off := int64(0); off < size; off += f.ChunkBytes {
		f.beat(srcW)
		n := f.ChunkBytes
		if size-off < n {
			n = size - off
		}
		ls.active++
		if ls.active > ls.maxActive {
			ls.maxActive = ls.active
		}
		g := f.GammaNet(ls.active)
		if first && f.rec.Enabled() {
			f.rec.Instant(lane, trace.CatNet, "net_link",
				trace.F("link", float64(l)), trace.F("c", float64(ls.active)), trace.F("gamma", g))
			first = false
		}
		ls.injected += n
		t := float64(n) * f.Beta * g
		f.lease(srcW, sp.Now()+t)
		sp.Sleep(t)
		ls.active--
		ls.delivered += n
		ls.busy += t
	}
	if end := sp.Now(); end > ls.last {
		ls.last = end
	}
}

// LinkStats returns the accounting of every link the run touched, in
// link order.
func (f *Fabric) LinkStats() []LinkStat {
	var out []LinkStat
	for i := range f.links {
		ls := &f.links[i]
		if !ls.touched {
			continue
		}
		out = append(out, LinkStat{
			Link: LinkID(i), Name: f.Topo.LinkName(LinkID(i)),
			Injected: ls.injected, Delivered: ls.delivered,
			MaxActive: ls.maxActive, Busy: ls.busy, First: ls.first, Last: ls.last,
		})
	}
	return out
}

// drainTo discards every already-delivered message addressed to world
// rank me, paying the per-message matching cost for each. Survivors run
// it after world agreement and before the re-run: the aborted attempt
// may have left messages from now-dead (or now-aborted) senders in the
// rank's flow queues, and the per-pair FIFOs must be empty before the
// re-run's traffic starts or stale payloads would match first. Queues
// are visited in sorted key order so the drain is deterministic.
func (f *Fabric) drainTo(sp *sim.Proc, me int) int {
	var keys []int64
	for key, q := range f.queues {
		if int(key&0xffffffff) == me && q.Len() > 0 {
			keys = append(keys, key)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	drained := 0
	for _, key := range keys {
		q := f.queues[key]
		for {
			if _, ok := q.TryRecv(); !ok {
				break
			}
			sp.Sleep(f.PerMsg)
			drained++
		}
	}
	return drained
}

// Residue is one flow's undrained leftover after a killed run: messages
// that were delivered into the (From, To) queue but never received.
// After a correct recovery every residue targets a dead rank — the
// shrink-residue invariant checks exactly that.
type Residue struct {
	From, To int
	Msgs     int
	Bytes    int64
}

// Residue destructively drains every remaining queue (in sorted key
// order) and reports what was left. A cluster that went through a kill
// is tainted and never pooled, so consuming the queues here is safe;
// callers use the report to verify that only dead ranks' flows leaked.
func (f *Fabric) Residue() []Residue {
	var keys []int64
	for key, q := range f.queues {
		if q.Len() > 0 {
			keys = append(keys, key)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	var out []Residue
	for _, key := range keys {
		q := f.queues[key]
		r := Residue{From: int(key >> 32), To: int(key & 0xffffffff)}
		for {
			m, ok := q.TryRecv()
			if !ok {
				break
			}
			r.Msgs++
			r.Bytes += m.size
		}
		out = append(out, r)
	}
	return out
}

// fabKey identifies a poolable (simulation, fabric) shape.
type fabKey struct {
	topo         string
	nodes, radix int
	alpha, beta  float64
	perMsg, gnet float64
	chunk        int64
	copyData     bool
}

// pooled is one recyclable simulation+fabric pair. The two travel
// together: the fabric's channels and mutexes are bound to their
// simulation, so neither can be re-homed.
type pooled struct {
	sim *sim.Simulation
	fab *Fabric
}

var (
	fabricPoolMu sync.Mutex
	fabricPool   = map[fabKey][]pooled{}
)

const fabricPoolCap = 4

func fabricPoolGet(k fabKey) (pooled, bool) {
	fabricPoolMu.Lock()
	defer fabricPoolMu.Unlock()
	entries := fabricPool[k]
	if len(entries) == 0 {
		return pooled{}, false
	}
	e := entries[len(entries)-1]
	fabricPool[k] = entries[:len(entries)-1]
	return e, true
}

func fabricPoolPut(k fabKey, e pooled) {
	fabricPoolMu.Lock()
	defer fabricPoolMu.Unlock()
	if len(fabricPool[k]) < fabricPoolCap {
		fabricPool[k] = append(fabricPool[k], e)
	}
}
