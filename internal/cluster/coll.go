package cluster

import (
	"fmt"

	"camc/internal/core"
	"camc/internal/kernel"
	"camc/internal/mpi"
	"camc/internal/trace"
)

// Design selects how a cluster collective decomposes across nodes.
type Design string

// The three designs the x11 experiment compares.
const (
	// DesignFlat runs one world-spanning algorithm: every edge is either
	// an intra-node point-to-point transfer or a network message. This is
	// what stock libraries degrade to when their hierarchical path is off.
	DesignFlat Design = "flat"
	// DesignLeader is the paper's two-level design: a contention-aware
	// intra-node phase to/from a node leader, and a node-level algorithm
	// among leaders over the fabric — O(nodes) network flows, not O(world).
	DesignLeader Design = "leader"
	// DesignShared is the MPI+MPI-style variant: the on-node phase is not
	// an algorithm but direct shared-address traffic — members CMA-write
	// into (or CMA-read out of) the leader's buffers, contending on the
	// leader's mm-lock exactly as the paper's γ(c) model predicts.
	DesignShared Design = "shared"
)

// Designs returns the registered designs in comparison order.
func Designs() []Design { return []Design{DesignFlat, DesignLeader, DesignShared} }

// Args names the world-level buffers of a cluster collective. Layout
// follows core.Args with p = world size: world rank w's block sits at
// offset w*Count of the rooted/gathered buffer, and world layout is
// node-major (rank w lives on node w/PPN), so a node's blocks are
// contiguous. Root is a world rank.
type Args struct {
	Send  kernel.Addr
	Recv  kernel.Addr
	Count int64
	Root  int
}

// Coll is a resolved cluster collective: one kind, one design, one
// intra-node algorithm choice.
type Coll struct {
	Kind   core.Kind
	Design Design
	// Name labels the resolved variant for tables and traces:
	// "flat" or "<design>/<intra algorithm>".
	Name string

	run func(r *Rank, a Args)
}

// Lookup resolves a cluster collective. intraSpec is the same-kind
// intra-node algorithm spec (core spec grammar, "" = tuned), re-planned
// for the cluster's PPN exactly like post-shrink Replan clamps tuning
// parameters to the communicator size. The flat design and the kinds
// whose hierarchical decomposition has no same-kind on-node phase
// (alltoall) validate the spec but do not run it.
func Lookup(cl *Cluster, kind core.Kind, design Design, intraSpec string) (Coll, error) {
	if intraSpec == "" {
		intraSpec = "tuned"
	}
	intra, err := core.Replan(kind, intraSpec, cl.PPN)
	if err != nil {
		return Coll{}, err
	}
	h := &hier{cl: cl, intra: intra}
	type key struct {
		k core.Kind
		d Design
	}
	impls := map[key]func(*Rank, Args){
		{core.KindBcast, DesignFlat}:       h.flatBcast,
		{core.KindBcast, DesignLeader}:     h.bcastLeader,
		{core.KindBcast, DesignShared}:     h.bcastShared,
		{core.KindGather, DesignFlat}:      h.flatGather,
		{core.KindGather, DesignLeader}:    h.gatherLeader,
		{core.KindGather, DesignShared}:    h.gatherShared,
		{core.KindScatter, DesignFlat}:     h.flatScatter,
		{core.KindScatter, DesignLeader}:   h.scatterLeader,
		{core.KindScatter, DesignShared}:   h.scatterShared,
		{core.KindAllgather, DesignFlat}:   h.flatAllgather,
		{core.KindAllgather, DesignLeader}: h.allgatherLeader,
		{core.KindAllgather, DesignShared}: h.allgatherShared,
		{core.KindAlltoall, DesignFlat}:    h.flatAlltoall,
		{core.KindAlltoall, DesignLeader}:  h.alltoallLeader,
		{core.KindAlltoall, DesignShared}:  h.alltoallShared,
		{core.KindReduce, DesignFlat}:      h.flatReduce,
		{core.KindReduce, DesignLeader}:    h.reduceLeader,
		{core.KindReduce, DesignShared}:    h.reduceShared,
	}
	run, ok := impls[key{kind, design}]
	if !ok {
		return Coll{}, fmt.Errorf("cluster: no %q implementation of %s (designs: %v)", design, kind, Designs())
	}
	name := string(design)
	if design != DesignFlat {
		name += "/" + intra.Name
	}
	return Coll{Kind: kind, Design: design, Name: name, run: run}, nil
}

// Run executes the collective on the calling world rank. Every rank of
// the cluster must call Run with consistent Count and Root.
func (c Coll) Run(r *Rank, a Args) {
	if a.Count < 0 {
		panic(fmt.Sprintf("cluster: negative count %d", a.Count))
	}
	if a.Root < 0 || a.Root >= r.cluster.WorldSize() {
		panic(fmt.Sprintf("cluster: root %d out of world range %d", a.Root, r.cluster.WorldSize()))
	}
	rec := r.Tracer()
	var span trace.SpanID
	if rec.Enabled() {
		span = rec.Begin(r.Lane(), trace.CatColl, "hcoll:"+string(c.Kind)+":"+string(c.Design),
			trace.F("bytes", float64(a.Count)), trace.F("root", float64(a.Root)))
	}
	c.run(r, a)
	if rec.Enabled() {
		rec.End(span)
	}
}

// hier carries the resolved pieces a collective family closes over.
type hier struct {
	cl    *Cluster
	intra core.Algorithm
	// tr selects the intra-node transport of the flat designs and the
	// legacy wrappers (pt2pt = kernel-assisted rendezvous, shm = two-copy).
	tr core.Transport
}

// phase wraps an on-node ("h_intra") or inter-node ("h_net") stage in a
// collective-category span, so the registry invariants can check stage
// ordering on traced runs.
func (h *hier) phase(r *Rank, name string, f func()) {
	rec := r.Tracer()
	if !rec.Enabled() {
		f()
		return
	}
	span := rec.Begin(r.Lane(), trace.CatColl, name)
	f()
	rec.End(span)
}

// leaderLocal returns the node-local leader rank on a node: the world
// root leads its own node (so the root's buffers are used in place),
// local rank 0 leads everywhere else. Non-rooted kinds pass root 0.
func (h *hier) leaderLocal(node, root int) int {
	if h.cl.NodeOf(root) == node {
		return h.cl.LocalOf(root)
	}
	return 0
}

// leaderWorld is the world rank of a node's leader.
func (h *hier) leaderWorld(node, root int) int {
	return node*h.cl.PPN + h.leaderLocal(node, root)
}

func lowbit(v int) int { return v & -v }

// packCost charges the user-space memcpy time of moving total bytes as
// one aggregate sleep. The bulk pack/unpack/rotation stages of the Bruck
// ports use it (plus cost-free movePayload calls for the actual bytes)
// so a 4096-node run does not expand into millions of per-block
// LocalCopy events.
func (r *Rank) packCost(total int64) {
	if total > 0 {
		r.SP.Sleep(float64(total) * r.cluster.Arch.MemCopyBeta())
	}
}

// movePayload moves payload bytes without simulated cost (the caller
// has charged an aggregate packCost); no-op on dataless runs.
func (r *Rank) movePayload(dst, src kernel.Addr, n int64) {
	if !r.cluster.CopyData || n <= 0 {
		return
	}
	tmp := append([]byte(nil), r.OS.Bytes(src, n)...)
	r.OS.WriteAt(dst, tmp)
}

// ---------------------------------------------------------------------
// Node-level (leader) algorithms over the fabric.
// ---------------------------------------------------------------------

// netBcast is a binomial broadcast among node leaders, rooted at the
// root's node, safe for any node count.
func (h *hier) netBcast(r *Rank, root int, buf kernel.Addr, size int64) {
	n := h.cl.NumNodes
	if n == 1 {
		return
	}
	rootNode := h.cl.NodeOf(root)
	rel := (r.Node - rootNode + n) % n
	abs := func(rel int) int { return (rel + rootNode) % n }
	if rel != 0 {
		parent := rel - lowbit(rel)
		r.NetRecv(h.leaderWorld(abs(parent), root), buf, size)
	}
	top := lowbit(rel)
	if rel == 0 {
		top = 1
		for top < n {
			top <<= 1
		}
	}
	for mask := top >> 1; mask >= 1; mask >>= 1 {
		if child := rel + mask; child < n {
			r.NetSend(h.leaderWorld(abs(child), root), buf, size)
		}
	}
}

// netReduce is the binomial reverse: leaders combine child accumulators
// up the tree; the root's node ends with the global result in acc.
func (h *hier) netReduce(r *Rank, root int, acc kernel.Addr, size int64) {
	n := h.cl.NumNodes
	if n == 1 {
		return
	}
	rootNode := h.cl.NodeOf(root)
	rel := (r.Node - rootNode + n) % n
	abs := func(rel int) int { return (rel + rootNode) % n }
	var scratch kernel.Addr
	haveScratch := false
	for mask := 1; mask < n; mask <<= 1 {
		if rel&mask != 0 {
			r.NetSend(h.leaderWorld(abs(rel-mask), root), acc, size)
			return
		}
		if peer := rel + mask; peer < n {
			if !haveScratch {
				scratch = r.Alloc(size)
				haveScratch = true
			}
			r.NetRecv(h.leaderWorld(abs(peer), root), scratch, size)
			r.OS.Combine(r.SP, acc, scratch, size)
		}
	}
}

// netGather ships each non-root leader's node block (stage) straight to
// the root, which lands block n at dst + n*nodeBytes. The root drains
// O(nodes) flows — the incast the fabric's γ_net makes expensive, but
// still a factor PPN fewer flows than a flat direct gather.
func (h *hier) netGather(r *Rank, root int, stage, dst kernel.Addr, nodeBytes int64) {
	rootNode := h.cl.NodeOf(root)
	if r.Node != rootNode {
		r.NetSend(root, stage, nodeBytes)
		return
	}
	for n := 0; n < h.cl.NumNodes; n++ {
		if n == rootNode {
			continue
		}
		r.NetRecv(h.leaderWorld(n, root), dst+kernel.Addr(int64(n)*nodeBytes), nodeBytes)
	}
}

// netScatter is the reverse: the root pushes node block n (at
// src + n*nodeBytes) to node n's leader.
func (h *hier) netScatter(r *Rank, root int, stage, src kernel.Addr, nodeBytes int64) {
	rootNode := h.cl.NodeOf(root)
	if r.Node != rootNode {
		r.NetRecv(root, stage, nodeBytes)
		return
	}
	for n := 0; n < h.cl.NumNodes; n++ {
		if n == rootNode {
			continue
		}
		r.NetSend(h.leaderWorld(n, root), src+kernel.Addr(int64(n)*nodeBytes), nodeBytes)
	}
}

// netAllgather runs Bruck's allgather among leaders at node-block
// granularity: recv must already hold the caller's node block at
// offset node*nodeBytes, and ends with every node block in place.
func (h *hier) netAllgather(r *Rank, recv kernel.Addr, nodeBytes int64) {
	n, me := h.cl.NumNodes, r.Node
	if n == 1 {
		return
	}
	work := r.Alloc(int64(n) * nodeBytes)
	r.LocalCopy(work, recv+kernel.Addr(int64(me)*nodeBytes), nodeBytes)
	for filled := 1; filled < n; {
		cnt := filled
		if n-filled < cnt {
			cnt = n - filled
		}
		sz := int64(cnt) * nodeBytes
		r.NetSend(h.leaderWorld((me-filled+n)%n, 0), work, sz)
		r.NetRecv(h.leaderWorld((me+filled)%n, 0), work+kernel.Addr(int64(filled)*nodeBytes), sz)
		filled += cnt
	}
	// Rotate back into world order: recv[(me+i) mod n] = work[i].
	r.packCost(int64(n) * nodeBytes)
	if h.cl.CopyData {
		for i := 0; i < n; i++ {
			r.movePayload(recv+kernel.Addr(int64((me+i)%n)*nodeBytes),
				work+kernel.Addr(int64(i)*nodeBytes), nodeBytes)
		}
	}
}

// selCount returns how many j in [0, n) have bit pow set — the Bruck
// alltoall selection size, computed arithmetically so dataless runs
// never loop over blocks.
func selCount(n, pow int) int64 {
	full := n / (pow * 2) * pow
	rem := n%(pow*2) - pow
	if rem < 0 {
		rem = 0
	}
	return int64(full + rem)
}

// netAlltoall runs Bruck's alltoall among leaders at bundle granularity.
// stage holds the PPN member send vectors member-major (each world*count
// bytes); the result is written to mstage as PPN member receive vectors,
// ready for an intra-node scatter.
func (h *hier) netAlltoall(r *Rank, stage, mstage kernel.Addr, count int64) {
	cl := h.cl
	n, ppn, me := cl.NumNodes, cl.PPN, r.Node
	vec := int64(cl.WorldSize()) * count // one member's full vector
	slot := int64(ppn) * count           // one (member, node) slice
	bundle := int64(ppn) * slot          // everything this node sends one node

	// Phase 1: pack rotated bundles: bwork[j] holds the bundle for node
	// (j+me) mod n; bundle for node d = concat over source members sl of
	// stage[sl].blocks[d*ppn : (d+1)*ppn] (contiguous in the vector).
	bwork := r.Alloc(int64(n) * bundle)
	r.packCost(int64(n) * bundle)
	if cl.CopyData {
		for j := 0; j < n; j++ {
			d := (j + me) % n
			for sl := 0; sl < ppn; sl++ {
				r.movePayload(bwork+kernel.Addr(int64(j)*bundle+int64(sl)*slot),
					stage+kernel.Addr(int64(sl)*vec+int64(d)*slot), slot)
			}
		}
	}
	// Phase 2: log2(n) exchange steps over the fabric.
	stageOut := r.Alloc(int64((n+1)/2) * bundle)
	stageIn := r.Alloc(int64((n+1)/2) * bundle)
	for pow := 1; pow < n; pow <<= 1 {
		nsel := selCount(n, pow)
		r.packCost(nsel * bundle)
		if cl.CopyData {
			u := int64(0)
			for j := 0; j < n; j++ {
				if j&pow != 0 {
					r.movePayload(stageOut+kernel.Addr(u*bundle), bwork+kernel.Addr(int64(j)*bundle), bundle)
					u++
				}
			}
		}
		r.NetSend(h.leaderWorld((me+pow)%n, 0), stageOut, nsel*bundle)
		r.NetRecv(h.leaderWorld((me-pow+n)%n, 0), stageIn, nsel*bundle)
		r.packCost(nsel * bundle)
		if cl.CopyData {
			u := int64(0)
			for j := 0; j < n; j++ {
				if j&pow != 0 {
					r.movePayload(bwork+kernel.Addr(int64(j)*bundle), stageIn+kernel.Addr(u*bundle), bundle)
					u++
				}
			}
		}
	}
	// Phase 3: inverse rotation + transpose. The bundle from source node
	// j sits at bwork[(me-j+n) mod n]; member dl's block from world rank
	// j*ppn+sl goes to mstage[dl] at offset (j*ppn+sl)*count.
	r.packCost(int64(n) * bundle)
	if cl.CopyData {
		for j := 0; j < n; j++ {
			b := bwork + kernel.Addr(int64((me-j+n)%n)*bundle)
			for sl := 0; sl < ppn; sl++ {
				for dl := 0; dl < ppn; dl++ {
					r.movePayload(mstage+kernel.Addr(int64(dl)*vec+int64(j*ppn+sl)*count),
						b+kernel.Addr(int64(sl)*slot+int64(dl)*count), count)
				}
			}
		}
	}
}

// ---------------------------------------------------------------------
// Leader designs: contention-aware intra-node algorithms on the node,
// node-level algorithms among leaders.
// ---------------------------------------------------------------------

func (h *hier) bcastLeader(r *Rank, a Args) {
	lead := h.leaderLocal(r.Node, a.Root)
	buf := a.Recv
	if r.World == a.Root {
		buf = a.Send
	}
	if r.ID == lead {
		h.phase(r, "h_net", func() { h.netBcast(r, a.Root, buf, a.Count) })
	}
	h.phase(r, "h_intra", func() {
		h.intra.Run(r.Rank, core.Args{Send: buf, Recv: a.Recv, Count: a.Count, Root: lead})
	})
}

func (h *hier) gatherLeader(r *Rank, a Args) {
	cl := h.cl
	lead := h.leaderLocal(r.Node, a.Root)
	nodeBytes := int64(cl.PPN) * a.Count
	stage := a.Recv // non-leaders: unused by the intra root
	if r.ID == lead {
		if r.Node == cl.NodeOf(a.Root) {
			stage = a.Recv + kernel.Addr(int64(r.Node)*nodeBytes)
		} else {
			stage = r.Alloc(nodeBytes)
		}
	}
	h.phase(r, "h_intra", func() {
		h.intra.Run(r.Rank, core.Args{Send: a.Send, Recv: stage, Count: a.Count, Root: lead})
	})
	if r.ID == lead {
		h.phase(r, "h_net", func() { h.netGather(r, a.Root, stage, a.Recv, nodeBytes) })
	}
}

func (h *hier) scatterLeader(r *Rank, a Args) {
	cl := h.cl
	lead := h.leaderLocal(r.Node, a.Root)
	nodeBytes := int64(cl.PPN) * a.Count
	stage := a.Send // non-leaders: unused by the intra root
	if r.ID == lead {
		if r.Node == cl.NodeOf(a.Root) {
			stage = a.Send + kernel.Addr(int64(r.Node)*nodeBytes)
		} else {
			stage = r.Alloc(nodeBytes)
		}
	}
	if r.ID == lead {
		h.phase(r, "h_net", func() { h.netScatter(r, a.Root, stage, a.Send, nodeBytes) })
	}
	h.phase(r, "h_intra", func() {
		h.intra.Run(r.Rank, core.Args{Send: stage, Recv: a.Recv, Count: a.Count, Root: lead})
	})
}

func (h *hier) allgatherLeader(r *Rank, a Args) {
	cl := h.cl
	lead := h.leaderLocal(r.Node, 0)
	nodeBytes := int64(cl.PPN) * a.Count
	full := int64(cl.WorldSize()) * a.Count
	// Same-kind intra phase: allgather the node block in place, so every
	// member (the leader included) holds it at its world offset.
	h.phase(r, "h_intra", func() {
		h.intra.Run(r.Rank, core.Args{
			Send: a.Send, Recv: a.Recv + kernel.Addr(int64(r.Node)*nodeBytes),
			Count: a.Count, Root: 0,
		})
	})
	if r.ID == lead {
		h.phase(r, "h_net", func() { h.netAllgather(r, a.Recv, nodeBytes) })
	}
	// Fan the completed world buffer out to the node.
	h.phase(r, "h_intra", func() {
		core.TunedBcast(r.Rank, core.Args{Send: a.Recv, Recv: a.Recv, Count: full, Root: lead})
	})
}

func (h *hier) alltoallLeader(r *Rank, a Args) {
	cl := h.cl
	lead := h.leaderLocal(r.Node, 0)
	vec := int64(cl.WorldSize()) * a.Count
	var stage, mstage kernel.Addr
	if r.ID == lead {
		stage = r.Alloc(int64(cl.PPN) * vec)
		mstage = r.Alloc(int64(cl.PPN) * vec)
	}
	h.phase(r, "h_intra", func() {
		core.TunedGather(r.Rank, core.Args{Send: a.Send, Recv: stage, Count: vec, Root: lead})
	})
	if r.ID == lead {
		h.phase(r, "h_net", func() { h.netAlltoall(r, stage, mstage, a.Count) })
	}
	h.phase(r, "h_intra", func() {
		core.TunedScatter(r.Rank, core.Args{Send: mstage, Recv: a.Recv, Count: vec, Root: lead})
	})
}

func (h *hier) reduceLeader(r *Rank, a Args) {
	lead := h.leaderLocal(r.Node, a.Root)
	acc := a.Recv
	if r.ID == lead && r.World != a.Root {
		acc = r.Alloc(a.Count)
	}
	h.phase(r, "h_intra", func() {
		h.intra.Run(r.Rank, core.Args{Send: a.Send, Recv: acc, Count: a.Count, Root: lead})
	})
	if r.ID == lead {
		h.phase(r, "h_net", func() { h.netReduce(r, a.Root, acc, a.Count) })
	}
}

// ---------------------------------------------------------------------
// Shared-leader (MPI+MPI-style) designs: the on-node phase is direct
// CMA traffic against the leader's buffers plus notify tokens — members
// contend on the leader's mm-lock, which is exactly the γ(c) regime the
// intra-node algorithms were designed around.
// ---------------------------------------------------------------------

func (h *hier) bcastShared(r *Rank, a Args) {
	lead := h.leaderLocal(r.Node, a.Root)
	buf := a.Recv
	if r.World == a.Root {
		buf = a.Send
	}
	addr := kernel.Addr(r.Bcast64(lead, int64(buf)))
	if r.ID == lead {
		h.phase(r, "h_net", func() { h.netBcast(r, a.Root, buf, a.Count) })
	}
	h.phase(r, "h_intra", func() {
		if r.ID == lead {
			for dl := 0; dl < h.cl.PPN; dl++ {
				if dl != lead {
					r.Notify(dl)
				}
			}
			return
		}
		r.WaitNotify(lead)
		r.VMRead(a.Recv, lead, addr, a.Count)
	})
}

func (h *hier) gatherShared(r *Rank, a Args) {
	cl := h.cl
	lead := h.leaderLocal(r.Node, a.Root)
	nodeBytes := int64(cl.PPN) * a.Count
	var stage kernel.Addr
	if r.ID == lead {
		if r.Node == cl.NodeOf(a.Root) {
			stage = a.Recv + kernel.Addr(int64(r.Node)*nodeBytes)
		} else {
			stage = r.Alloc(nodeBytes)
		}
	}
	addr := kernel.Addr(r.Bcast64(lead, int64(stage)))
	h.phase(r, "h_intra", func() {
		if r.ID == lead {
			r.LocalCopy(stage+kernel.Addr(int64(lead)*a.Count), a.Send, a.Count)
			for dl := 0; dl < cl.PPN; dl++ {
				if dl != lead {
					r.WaitNotify(dl)
				}
			}
			return
		}
		r.VMWrite(a.Send, lead, addr+kernel.Addr(int64(r.ID)*a.Count), a.Count)
		r.Notify(lead)
	})
	if r.ID == lead {
		h.phase(r, "h_net", func() { h.netGather(r, a.Root, stage, a.Recv, nodeBytes) })
	}
}

func (h *hier) scatterShared(r *Rank, a Args) {
	cl := h.cl
	lead := h.leaderLocal(r.Node, a.Root)
	nodeBytes := int64(cl.PPN) * a.Count
	var stage kernel.Addr
	if r.ID == lead {
		if r.Node == cl.NodeOf(a.Root) {
			stage = a.Send + kernel.Addr(int64(r.Node)*nodeBytes)
		} else {
			stage = r.Alloc(nodeBytes)
		}
	}
	addr := kernel.Addr(r.Bcast64(lead, int64(stage)))
	if r.ID == lead {
		h.phase(r, "h_net", func() { h.netScatter(r, a.Root, stage, a.Send, nodeBytes) })
	}
	h.phase(r, "h_intra", func() {
		if r.ID == lead {
			r.LocalCopy(a.Recv, stage+kernel.Addr(int64(lead)*a.Count), a.Count)
			for dl := 0; dl < cl.PPN; dl++ {
				if dl != lead {
					r.Notify(dl)
				}
			}
			return
		}
		r.WaitNotify(lead)
		r.VMRead(a.Recv, lead, addr+kernel.Addr(int64(r.ID)*a.Count), a.Count)
	})
}

func (h *hier) allgatherShared(r *Rank, a Args) {
	cl := h.cl
	lead := h.leaderLocal(r.Node, 0)
	nodeBytes := int64(cl.PPN) * a.Count
	full := int64(cl.WorldSize()) * a.Count
	addr := kernel.Addr(r.Bcast64(lead, int64(a.Recv))) // leader's world buffer
	h.phase(r, "h_intra", func() {
		if r.ID == lead {
			r.LocalCopy(a.Recv+kernel.Addr(int64(r.World)*a.Count), a.Send, a.Count)
			for dl := 0; dl < cl.PPN; dl++ {
				if dl != lead {
					r.WaitNotify(dl)
				}
			}
			return
		}
		r.VMWrite(a.Send, lead, addr+kernel.Addr(int64(r.World)*a.Count), a.Count)
		r.Notify(lead)
	})
	if r.ID == lead {
		h.phase(r, "h_net", func() { h.netAllgather(r, a.Recv, nodeBytes) })
	}
	h.phase(r, "h_intra", func() {
		if r.ID == lead {
			for dl := 0; dl < cl.PPN; dl++ {
				if dl != lead {
					r.Notify(dl)
				}
			}
			return
		}
		r.WaitNotify(lead)
		r.VMRead(a.Recv, lead, addr, full)
	})
}

func (h *hier) alltoallShared(r *Rank, a Args) {
	cl := h.cl
	lead := h.leaderLocal(r.Node, 0)
	vec := int64(cl.WorldSize()) * a.Count
	var stage, mstage kernel.Addr
	if r.ID == lead {
		stage = r.Alloc(int64(cl.PPN) * vec)
		mstage = r.Alloc(int64(cl.PPN) * vec)
	}
	stageAddr := kernel.Addr(r.Bcast64(lead, int64(stage)))
	mstageAddr := kernel.Addr(r.Bcast64(lead, int64(mstage)))
	h.phase(r, "h_intra", func() {
		if r.ID == lead {
			r.LocalCopy(stage+kernel.Addr(int64(lead)*vec), a.Send, vec)
			for dl := 0; dl < cl.PPN; dl++ {
				if dl != lead {
					r.WaitNotify(dl)
				}
			}
			return
		}
		r.VMWrite(a.Send, lead, stageAddr+kernel.Addr(int64(r.ID)*vec), vec)
		r.Notify(lead)
	})
	if r.ID == lead {
		h.phase(r, "h_net", func() { h.netAlltoall(r, stage, mstage, a.Count) })
	}
	h.phase(r, "h_intra", func() {
		if r.ID == lead {
			r.LocalCopy(a.Recv, mstage+kernel.Addr(int64(lead)*vec), vec)
			for dl := 0; dl < cl.PPN; dl++ {
				if dl != lead {
					r.Notify(dl)
				}
			}
			return
		}
		r.WaitNotify(lead)
		r.VMRead(a.Recv, lead, mstageAddr+kernel.Addr(int64(r.ID)*vec), vec)
	})
}

func (h *hier) reduceShared(r *Rank, a Args) {
	cl := h.cl
	lead := h.leaderLocal(r.Node, a.Root)
	var slots, acc kernel.Addr
	if r.ID == lead {
		slots = r.Alloc(int64(cl.PPN) * a.Count)
		acc = a.Recv
		if r.World != a.Root {
			acc = r.Alloc(a.Count)
		}
	}
	addr := kernel.Addr(r.Bcast64(lead, int64(slots)))
	h.phase(r, "h_intra", func() {
		if r.ID == lead {
			r.LocalCopy(acc, a.Send, a.Count)
			for dl := 0; dl < cl.PPN; dl++ {
				if dl == lead {
					continue
				}
				r.WaitNotify(dl)
				r.OS.Combine(r.SP, acc, slots+kernel.Addr(int64(dl)*a.Count), a.Count)
			}
			return
		}
		r.VMWrite(a.Send, lead, addr+kernel.Addr(int64(r.ID)*a.Count), a.Count)
		r.Notify(lead)
	})
	if r.ID == lead {
		h.phase(r, "h_net", func() { h.netReduce(r, a.Root, acc, a.Count) })
	}
}

// ---------------------------------------------------------------------
// Flat designs: one world-spanning algorithm with mixed edges — local
// peers through the intra-node transport, remote peers over the fabric.
// ---------------------------------------------------------------------

// xSend sends to a world rank over the right edge type.
func (h *hier) xSend(r *Rank, dst int, addr kernel.Addr, n int64) {
	if h.cl.NodeOf(dst) == r.Node {
		if h.tr == core.TransportShm {
			r.SendShm(h.cl.LocalOf(dst), addr, n)
		} else {
			r.Send(h.cl.LocalOf(dst), addr, n)
		}
		return
	}
	r.NetSend(dst, addr, n)
}

func (h *hier) xRecv(r *Rank, src int, addr kernel.Addr, n int64) {
	if h.cl.NodeOf(src) == r.Node {
		if h.tr == core.TransportShm {
			r.RecvShm(h.cl.LocalOf(src), addr, n)
		} else {
			r.Recv(h.cl.LocalOf(src), addr, n)
		}
		return
	}
	r.NetRecv(src, addr, n)
}

// xSendrecv pairs a send and a receive with independent peers. Network
// sends are buffered (they complete without the peer), so ordering net
// sends first keeps the cyclic exchange patterns of the Bruck ports
// deadlock-free: every exchange cycle that includes a local rendezvous
// edge also crosses a node boundary, where the chain of waiting breaks.
func (h *hier) xSendrecv(r *Rank, dst int, sa kernel.Addr, sn int64, src int, ra kernel.Addr, rn int64) {
	dstLocal := h.cl.NodeOf(dst) == r.Node
	srcLocal := h.cl.NodeOf(src) == r.Node
	switch {
	case dstLocal && srcLocal:
		if h.tr == core.TransportShm {
			r.SendrecvShm(h.cl.LocalOf(dst), sa, sn, h.cl.LocalOf(src), ra, rn)
		} else {
			r.Sendrecv(h.cl.LocalOf(dst), sa, sn, h.cl.LocalOf(src), ra, rn)
		}
	case !dstLocal && !srcLocal:
		r.NetSend(dst, sa, sn)
		r.NetRecv(src, ra, rn)
	case !dstLocal:
		r.NetSend(dst, sa, sn)
		h.xRecv(r, src, ra, rn)
	default:
		h.xSend(r, dst, sa, sn)
		r.NetRecv(src, ra, rn)
	}
}

func (h *hier) flatBcast(r *Rank, a Args) {
	w := h.cl.WorldSize()
	me := r.World
	rel := (me - a.Root + w) % w
	abs := func(rel int) int { return (rel + a.Root) % w }
	buf := a.Recv
	if rel == 0 {
		buf = a.Send
	}
	if rel != 0 {
		h.xRecv(r, abs(rel-lowbit(rel)), buf, a.Count)
	}
	top := lowbit(rel)
	if rel == 0 {
		top = 1
		for top < w {
			top <<= 1
		}
	}
	for mask := top >> 1; mask >= 1; mask >>= 1 {
		if child := rel + mask; child < w {
			h.xSend(r, abs(child), buf, a.Count)
		}
	}
}

func (h *hier) flatGather(r *Rank, a Args) {
	w := h.cl.WorldSize()
	if r.World != a.Root {
		h.xSend(r, a.Root, a.Send, a.Count)
		return
	}
	r.LocalCopy(a.Recv+kernel.Addr(int64(r.World)*a.Count), a.Send, a.Count)
	for i := 0; i < w; i++ {
		if i != a.Root {
			h.xRecv(r, i, a.Recv+kernel.Addr(int64(i)*a.Count), a.Count)
		}
	}
}

func (h *hier) flatScatter(r *Rank, a Args) {
	w := h.cl.WorldSize()
	if r.World != a.Root {
		h.xRecv(r, a.Root, a.Recv, a.Count)
		return
	}
	for i := 0; i < w; i++ {
		if i != a.Root {
			h.xSend(r, i, a.Send+kernel.Addr(int64(i)*a.Count), a.Count)
		}
	}
	r.LocalCopy(a.Recv, a.Send+kernel.Addr(int64(r.World)*a.Count), a.Count)
}

func (h *hier) flatAllgather(r *Rank, a Args) {
	w := h.cl.WorldSize()
	me := r.World
	if w == 1 {
		r.LocalCopy(a.Recv, a.Send, a.Count)
		return
	}
	work := r.Alloc(int64(w) * a.Count)
	r.LocalCopy(work, a.Send, a.Count)
	for filled := 1; filled < w; {
		cnt := filled
		if w-filled < cnt {
			cnt = w - filled
		}
		sz := int64(cnt) * a.Count
		h.xSendrecv(r, (me-filled+w)%w, work, sz,
			(me+filled)%w, work+kernel.Addr(int64(filled)*a.Count), sz)
		filled += cnt
	}
	r.packCost(int64(w) * a.Count)
	if h.cl.CopyData {
		for i := 0; i < w; i++ {
			r.movePayload(a.Recv+kernel.Addr(int64((me+i)%w)*a.Count),
				work+kernel.Addr(int64(i)*a.Count), a.Count)
		}
	}
}

func (h *hier) flatAlltoall(r *Rank, a Args) {
	w := h.cl.WorldSize()
	me := r.World
	if w == 1 {
		r.LocalCopy(a.Recv, a.Send, a.Count)
		return
	}
	work := r.Alloc(int64(w) * a.Count)
	stageOut := r.Alloc(int64((w+1)/2) * a.Count)
	stageIn := r.Alloc(int64((w+1)/2) * a.Count)
	// Rotation: work[j] = Send[(j+me) mod w].
	r.packCost(int64(w) * a.Count)
	if h.cl.CopyData {
		for j := 0; j < w; j++ {
			r.movePayload(work+kernel.Addr(int64(j)*a.Count),
				a.Send+kernel.Addr(int64((j+me)%w)*a.Count), a.Count)
		}
	}
	for pow := 1; pow < w; pow <<= 1 {
		nsel := selCount(w, pow)
		r.packCost(nsel * a.Count)
		if h.cl.CopyData {
			u := int64(0)
			for j := 0; j < w; j++ {
				if j&pow != 0 {
					r.movePayload(stageOut+kernel.Addr(u*a.Count), work+kernel.Addr(int64(j)*a.Count), a.Count)
					u++
				}
			}
		}
		h.xSendrecv(r, (me+pow)%w, stageOut, nsel*a.Count,
			(me-pow+w)%w, stageIn, nsel*a.Count)
		r.packCost(nsel * a.Count)
		if h.cl.CopyData {
			u := int64(0)
			for j := 0; j < w; j++ {
				if j&pow != 0 {
					r.movePayload(work+kernel.Addr(int64(j)*a.Count), stageIn+kernel.Addr(u*a.Count), a.Count)
					u++
				}
			}
		}
	}
	// Inverse rotation with reversal: Recv[j] = work[(me-j+w) mod w].
	r.packCost(int64(w) * a.Count)
	if h.cl.CopyData {
		for j := 0; j < w; j++ {
			r.movePayload(a.Recv+kernel.Addr(int64(j)*a.Count),
				work+kernel.Addr(int64((me-j+w)%w)*a.Count), a.Count)
		}
	}
}

func (h *hier) flatReduce(r *Rank, a Args) {
	w := h.cl.WorldSize()
	me := r.World
	rel := (me - a.Root + w) % w
	abs := func(rel int) int { return (rel + a.Root) % w }
	acc := a.Recv
	if me != a.Root {
		acc = r.Alloc(a.Count)
	}
	r.LocalCopy(acc, a.Send, a.Count)
	var scratch kernel.Addr
	haveScratch := false
	for mask := 1; mask < w; mask <<= 1 {
		if rel&mask != 0 {
			h.xSend(r, abs(rel-mask), acc, a.Count)
			return
		}
		if peer := rel + mask; peer < w {
			if !haveScratch {
				scratch = r.Alloc(a.Count)
				haveScratch = true
			}
			h.xRecv(r, abs(peer), scratch, a.Count)
			r.OS.Combine(r.SP, acc, scratch, a.Count)
		}
	}
}

// ---------------------------------------------------------------------
// Legacy self-allocating wrappers (fig17 and the multinode example).
// These predate the Args-based family above; they allocate their own
// buffers and keep the original fig17 shapes.
// ---------------------------------------------------------------------

// GatherTwoLevel is the paper's two-level gather: a contention-aware
// intra-node gather to each node leader, then each leader ships its node
// block to the global root (world rank 0).
func GatherTwoLevel(intra func(*mpi.Rank, core.Args)) func(r *Rank, eta int64) {
	return func(r *Rank, eta int64) {
		cl := r.cluster
		ppn := int64(cl.PPN)
		send := r.Alloc(eta)
		stage := r.Alloc(ppn * eta)
		intra(r.Rank, core.Args{Send: send, Recv: stage, Count: eta, Root: 0})
		nodeBytes := ppn * eta
		if r.ID != 0 {
			return
		}
		if r.Node != 0 {
			r.NetSend(0, stage, nodeBytes)
			return
		}
		recv := r.Alloc(int64(cl.NumNodes) * nodeBytes)
		for n := 1; n < cl.NumNodes; n++ {
			r.NetRecv(n*cl.PPN, recv+kernel.Addr(int64(n)*nodeBytes), nodeBytes)
		}
	}
}

// GatherFlat is the single-level comparator: every rank ships its block
// straight to the root — intra-node ranks through the selected
// transport, remote ranks over the fabric.
func GatherFlat(tr core.Transport) func(r *Rank, eta int64) {
	return func(r *Rank, eta int64) {
		h := &hier{cl: r.cluster, tr: tr}
		send := r.Alloc(eta)
		var recv kernel.Addr
		if r.World == 0 {
			recv = r.Alloc(int64(r.cluster.WorldSize()) * eta)
		}
		h.flatGather(r, Args{Send: send, Recv: recv, Count: eta, Root: 0})
	}
}

// GatherTwoLevelPipelined is the paper's §IX design: the message is
// split into segments, and each leader forwards segment s over the
// network while the node gathers segment s+1.
func GatherTwoLevelPipelined(intra func(*mpi.Rank, core.Args), segments int) func(r *Rank, eta int64) {
	if segments < 1 {
		panic("cluster: segments must be >= 1")
	}
	return func(r *Rank, eta int64) {
		cl := r.cluster
		ppn := int64(cl.PPN)
		segSize := (eta + int64(segments) - 1) / int64(segments)
		send := r.Alloc(eta)
		stage := r.Alloc(ppn * eta)
		var recv kernel.Addr
		if r.World == 0 {
			recv = r.Alloc(int64(cl.WorldSize()) * eta)
		}
		for s := 0; s < segments; s++ {
			off := int64(s) * segSize
			if off >= eta {
				break
			}
			n := segSize
			if eta-off < n {
				n = eta - off
			}
			// Intra-node gather of this segment (the stage layout is
			// segment-major; a real implementation would address rank-
			// major slots with a strided datatype at identical cost).
			intra(r.Rank, core.Args{
				Send:  send + kernel.Addr(off),
				Recv:  stage + kernel.Addr(off*ppn),
				Count: n,
				Root:  0,
			})
			// Ship this node segment while the next segment gathers.
			nodeBytes := ppn * n
			if r.ID != 0 {
				continue
			}
			if r.Node != 0 {
				r.NetSend(0, stage+kernel.Addr(off*ppn), nodeBytes)
				continue
			}
			for nd := 1; nd < cl.NumNodes; nd++ {
				r.NetRecv(nd*cl.PPN, recv+kernel.Addr(int64(nd)*ppn*eta+off*ppn), nodeBytes)
			}
		}
	}
}

// ScatterFlat is the single-level scatter comparator.
func ScatterFlat(tr core.Transport) func(r *Rank, eta int64) {
	return func(r *Rank, eta int64) {
		h := &hier{cl: r.cluster, tr: tr}
		recv := r.Alloc(eta)
		var send kernel.Addr
		if r.World == 0 {
			send = r.Alloc(int64(r.cluster.WorldSize()) * eta)
		}
		h.flatScatter(r, Args{Send: send, Recv: recv, Count: eta, Root: 0})
	}
}

// BcastTwoLevel is the hierarchical broadcast: the root ships the
// message to each node leader over the fabric, then every node runs the
// given intra-node broadcast in parallel.
func BcastTwoLevel(intra func(*mpi.Rank, core.Args)) func(r *Rank, eta int64) {
	return func(r *Rank, eta int64) {
		cl := r.cluster
		buf := r.Alloc(eta)
		if r.ID == 0 {
			if r.Node == 0 {
				for n := 1; n < cl.NumNodes; n++ {
					r.NetSend(n*cl.PPN, buf, eta)
				}
			} else {
				r.NetRecv(0, buf, eta)
			}
		}
		// Intra-node phase: local rank 0 is the node root. Send and Recv
		// are the same buffer here (leaders hold the payload; the roles
		// inside core's bcast algorithms pick the right one).
		intra(r.Rank, core.Args{Send: buf, Recv: buf, Count: eta, Root: 0})
	}
}

// BcastFlat is the single-level comparator: a binomial tree over world
// ranks with mixed intra-node/network edges.
func BcastFlat(tr core.Transport) func(r *Rank, eta int64) {
	return func(r *Rank, eta int64) {
		h := &hier{cl: r.cluster, tr: tr}
		buf := r.Alloc(eta)
		h.flatBcast(r, Args{Send: buf, Recv: buf, Count: eta, Root: 0})
	}
}

// ScatterTwoLevel mirrors GatherTwoLevel for the root-to-all direction.
func ScatterTwoLevel(intra func(*mpi.Rank, core.Args)) func(r *Rank, eta int64) {
	return func(r *Rank, eta int64) {
		cl := r.cluster
		ppn := int64(cl.PPN)
		recv := r.Alloc(eta)
		stage := r.Alloc(ppn * eta)
		nodeBytes := ppn * eta
		if r.ID == 0 {
			if r.Node == 0 {
				send := r.Alloc(int64(cl.NumNodes) * nodeBytes)
				for n := 1; n < cl.NumNodes; n++ {
					r.NetSend(n*cl.PPN, send+kernel.Addr(int64(n)*nodeBytes), nodeBytes)
				}
			} else {
				r.NetRecv(0, stage, nodeBytes)
			}
		}
		intra(r.Rank, core.Args{Send: stage, Recv: recv, Count: eta, Root: 0})
	}
}
