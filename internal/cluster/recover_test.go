package cluster

import (
	"reflect"
	"testing"

	"camc/internal/core"
)

// TestShrunkSuccessorTieBreak pins the documented deterministic
// re-election rule: a node's successor is the lowest-world-rank
// survivor on that node, which is also its new local rank 0. No votes,
// no timestamps — the rule is a pure function of the failed set, so
// every survivor derives the same leader table independently.
func TestShrunkSuccessorTieBreak(t *testing.T) {
	cl := knlCluster(3, 3) // world 0..8, node 1 = {3, 4, 5}
	cases := []struct {
		name    string
		failed  []int
		leader1 int  // Leaders[1]
		orphan1 bool // Orphaned[1]
	}{
		// Leader of node 1 (world 3, its local 0) dies: successor is 4,
		// the lowest surviving world rank, and the node is orphaned.
		{"leader", []int{3}, 4, true},
		// A member dies: the incumbent leader 3 stays, not orphaned.
		{"member", []int{4}, 3, false},
		// Leader and first successor both die: next-lowest survivor 5.
		{"leader+member", []int{3, 4}, 5, true},
	}
	for _, tc := range cases {
		sh := buildShrunkTable(cl, tc.failed, core.KindGather, 0)
		if sh.Leaders[1] != tc.leader1 {
			t.Errorf("%s: Leaders[1] = %d, want %d (lowest-world-rank survivor)", tc.name, sh.Leaders[1], tc.leader1)
		}
		if sh.Orphaned[1] != tc.orphan1 {
			t.Errorf("%s: Orphaned[1] = %v, want %v", tc.name, sh.Orphaned[1], tc.orphan1)
		}
		// The successor is always the node's new local rank 0.
		if got := sh.OldWorld[sh.Prefix[1]]; got != tc.leader1 {
			t.Errorf("%s: new local 0 on node 1 is world %d, leader is %d", tc.name, got, tc.leader1)
		}
	}
}

// TestShrunkWholeNodeLoss: losing every rank of a node removes it from
// the alive-node list without perturbing the numbering of the others.
func TestShrunkWholeNodeLoss(t *testing.T) {
	cl := knlCluster(3, 3)
	sh := buildShrunkTable(cl, []int{3, 4, 5}, core.KindAllgather, 0)
	if sh.NewSize != 6 {
		t.Fatalf("NewSize = %d, want 6", sh.NewSize)
	}
	if !reflect.DeepEqual(sh.AliveNodes, []int{0, 2}) {
		t.Fatalf("AliveNodes = %v, want [0 2]", sh.AliveNodes)
	}
	if sh.Leaders[1] != -1 || sh.NodeIdx[1] != -1 {
		t.Fatalf("lost node kept a leader (%d) or index (%d)", sh.Leaders[1], sh.NodeIdx[1])
	}
	if sh.SurvivorsOn(1) != 0 || sh.SurvivorsOn(0) != 3 || sh.SurvivorsOn(2) != 3 {
		t.Fatalf("survivor counts wrong: %v", sh.Prefix)
	}
	// Node-major: node 2's survivors renumber contiguously after node 0's.
	want := []int{0, 1, 2, 6, 7, 8}
	if !reflect.DeepEqual(sh.OldWorld, want) {
		t.Fatalf("OldWorld = %v, want %v", sh.OldWorld, want)
	}
	for id := range sh.OldWorld {
		if sh.NewWorld[sh.OldWorld[id]] != id {
			t.Fatalf("NewWorld is not the inverse of OldWorld at %d", id)
		}
	}
	if sh.NodeOfNew(3) != 2 {
		t.Fatalf("NodeOfNew(3) = %d, want 2", sh.NodeOfNew(3))
	}
}

// TestShrunkRootHandling: a rooted kind's dead root re-roots to new id
// 0 (the same successor rule), a surviving root keeps its new id, and
// the root leading a node makes that node's orphanhood follow the
// root's fate rather than local rank 0's.
func TestShrunkRootHandling(t *testing.T) {
	cl := knlCluster(3, 3)
	// Root 4 leads node 1 in the original attempt (rooted kind). If a
	// MEMBER of the root's node — its local rank 0, world 3 — dies, the
	// node is NOT orphaned: its attempt leader was the root, world 4.
	sh := buildShrunkTable(cl, []int{3}, core.KindScatter, 4)
	if sh.Orphaned[1] {
		t.Fatal("root-led node marked orphaned by a member death")
	}
	if sh.NewRoot != sh.NewWorld[4] {
		t.Fatalf("NewRoot = %d, want surviving root's new id %d", sh.NewRoot, sh.NewWorld[4])
	}
	// The root itself dies: the node is orphaned and the re-run re-roots
	// to new id 0.
	sh = buildShrunkTable(cl, []int{4}, core.KindScatter, 4)
	if !sh.Orphaned[1] {
		t.Fatal("dead root did not orphan its node")
	}
	if sh.NewRoot != 0 {
		t.Fatalf("NewRoot = %d, want 0 after root death", sh.NewRoot)
	}
	// Non-rooted kinds ignore the root argument: every node's attempt
	// leader is its local rank 0, so world 4's death orphans nothing.
	sh = buildShrunkTable(cl, []int{4}, core.KindAllgather, 4)
	if sh.Orphaned[1] {
		t.Fatal("non-rooted kind treated the root argument as a leader")
	}
}

// TestShrunkDeterministic: the table is a pure function of its inputs —
// the agreement protocol relies on every survivor deriving it
// independently and identically.
func TestShrunkDeterministic(t *testing.T) {
	cl := knlCluster(4, 2)
	a := buildShrunkTable(cl, []int{1, 4, 5}, core.KindReduce, 6)
	b := buildShrunkTable(cl, []int{1, 4, 5}, core.KindReduce, 6)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same inputs, different tables:\n%+v\n%+v", a, b)
	}
}
