package trace

import "testing"

// fakeClock is a settable virtual clock for driving the recorder in
// tests without a simulator.
type fakeClock struct{ t float64 }

func (c *fakeClock) Now() float64 { return c.t }

func TestNilRecorderIsSafe(t *testing.T) {
	var rec *Recorder
	if rec.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	rec.RegisterLane(0, "rank 0", 1000)
	id := rec.Begin(0, CatColl, "bcast")
	if id != NoSpan {
		t.Fatalf("nil Begin = %d, want NoSpan", id)
	}
	rec.End(id)
	rec.Instant(0, CatLock, "acquire")
	rec.Counter(0, CatLock, "mm_inflight", 1)
	rec.Edge(0, 1, CatShm, "eager", 0, 1, 0.5, 1.5)
	if rec.Len() != 0 || rec.Events() != nil || rec.Lanes() != nil {
		t.Fatal("nil recorder retained state")
	}
	if got := rec.LaneForPid(1003); got != NoLane {
		t.Fatalf("nil LaneForPid = %d, want NoLane", got)
	}
}

func TestBeginEndSpan(t *testing.T) {
	clk := &fakeClock{}
	rec := New(clk)
	if !rec.Enabled() {
		t.Fatal("recorder not enabled")
	}
	clk.t = 2.5
	id := rec.Begin(3, CatCMA, "vm_read", F("bytes", 4096))
	clk.t = 7.25
	rec.End(id, F("copy", 4))
	evs := rec.Events()
	if len(evs) != 1 {
		t.Fatalf("got %d events, want 1", len(evs))
	}
	e := evs[0]
	if e.Kind != KindSpan || e.Cat != CatCMA || e.Name != "vm_read" || e.Lane != 3 {
		t.Fatalf("bad span event %+v", e)
	}
	if e.Start != 2.5 || e.End != 7.25 || e.Dur() != 4.75 {
		t.Fatalf("span interval [%v,%v]", e.Start, e.End)
	}
	if v, ok := e.Arg("bytes"); !ok || v != 4096 {
		t.Fatalf("bytes arg = %v,%v", v, ok)
	}
	if v, ok := e.Arg("copy"); !ok || v != 4 {
		t.Fatalf("end args not merged: copy = %v,%v", v, ok)
	}
}

func TestEndOfOpenSpanOnly(t *testing.T) {
	rec := New(&fakeClock{})
	id := rec.Begin(0, CatColl, "x")
	rec.End(id)
	defer func() {
		if recover() == nil {
			t.Fatal("double End did not panic")
		}
	}()
	rec.End(id)
}

func TestEdgeSemantics(t *testing.T) {
	clk := &fakeClock{t: 10}
	rec := New(clk)
	// Receiver waited: message became ready after the wait started.
	rec.Edge(1, 2, CatShm, "notify", 9.0, 10.5, 10.0, 10.6)
	// Receiver did not wait: ready before the wait started.
	rec.Edge(2, 3, CatShm, "notify", 9.0, 9.5, 10.0, 10.1)
	evs := rec.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events", len(evs))
	}
	w, nw := evs[0], evs[1]
	if !w.Waited || w.From != 1 || w.Lane != 2 || w.SendTs != 9.0 || w.ReadyTs != 10.5 {
		t.Fatalf("waited edge %+v", w)
	}
	if nw.Waited {
		t.Fatalf("edge ready before waitStart marked waited: %+v", nw)
	}
}

func TestLaneRegistration(t *testing.T) {
	rec := New(&fakeClock{})
	rec.RegisterLane(0, "rank 0", 1000)
	rec.RegisterLane(5, "rank 5", 1005)
	if got := rec.LaneForPid(1005); got != 5 {
		t.Fatalf("LaneForPid(1005) = %d, want 5", got)
	}
	// Unregistered pids map to a negative pseudo-lane so kernel-side
	// events from un-traced processes stay distinguishable.
	if got := rec.LaneForPid(1234); got != -1234 {
		t.Fatalf("LaneForPid(1234) = %d, want -1234", got)
	}
	lanes := rec.Lanes()
	if len(lanes) != 2 || lanes[0].ID != 0 || lanes[1].Pid != 1005 || lanes[1].Name != "rank 5" {
		t.Fatalf("lanes %+v", lanes)
	}
}

func TestBindRules(t *testing.T) {
	rec := NewUnbound()
	clk := &fakeClock{}
	rec.Bind(clk)
	if !rec.Enabled() {
		t.Fatal("bound recorder not enabled")
	}
	rec.Instant(0, CatColl, "x")
	// Rebinding to the same clock is a no-op; to a different clock with
	// recorded events it must panic (the timeline would be meaningless).
	rec.Bind(clk)
	defer func() {
		if recover() == nil {
			t.Fatal("rebind with events did not panic")
		}
	}()
	rec.Bind(&fakeClock{})
}

func TestCounterEvent(t *testing.T) {
	clk := &fakeClock{t: 3}
	rec := New(clk)
	rec.Counter(2, CatLock, "mm_inflight", 4)
	e := rec.Events()[0]
	if e.Kind != KindCounter || e.Value != 4 || e.Start != 3 || e.Lane != 2 {
		t.Fatalf("counter event %+v", e)
	}
}
