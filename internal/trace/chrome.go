package trace

import (
	"encoding/json"
	"io"
	"sort"
)

// Chrome trace-event exporter: the recorded timeline as JSON loadable
// by chrome://tracing and Perfetto (ui.perfetto.dev). One pid per rank
// lane, timestamps in microseconds (the simulator's native unit).
//
// Mapping:
//   - span        -> "X" complete event (ts, dur) on the lane's pid
//   - instant     -> "i" thread-scoped instant
//   - counter     -> "C" counter event (e.g. mm_inflight per target)
//   - edge        -> an "X" wait span on the receiver (when it blocked)
//     plus an "s"/"f" flow arrow from the sender's post to
//     the receiver's consumption

type chromeEvent struct {
	Name  string             `json:"name"`
	Cat   string             `json:"cat,omitempty"`
	Ph    string             `json:"ph"`
	Ts    float64            `json:"ts"`
	Dur   float64            `json:"dur,omitempty"`
	Pid   int                `json:"pid"`
	Tid   int                `json:"tid"`
	ID    int                `json:"id,omitempty"`
	Scope string             `json:"s,omitempty"`
	BP    string             `json:"bp,omitempty"`
	Args  map[string]float64 `json:"args,omitempty"`
}

type chromeMeta struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args"`
}

type chromeTrace struct {
	TraceEvents     []json.RawMessage `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
}

// chromePid maps a lane to a non-negative Chrome pid: registered rank
// lanes map to themselves; negative pseudo-lanes (unregistered OS pids)
// map back to the pid value.
func chromePid(lane int) int {
	if lane >= 0 {
		return lane
	}
	return -lane
}

func argMap(args []Arg) map[string]float64 {
	if len(args) == 0 {
		return nil
	}
	m := make(map[string]float64, len(args))
	for _, a := range args {
		m[a.Key] = a.Val
	}
	return m
}

// WriteChrome exports the recorded trace as Chrome trace-event JSON.
// Events are sorted by timestamp (metadata first), so the stream is
// monotonic.
func WriteChrome(w io.Writer, rec *Recorder) error {
	var evs []chromeEvent
	flowID := 0
	for i := range rec.Events() {
		e := &rec.Events()[i]
		switch e.Kind {
		case KindSpan:
			if e.End < e.Start {
				continue // still open: nothing well-formed to emit
			}
			evs = append(evs, chromeEvent{
				Name: e.Name, Cat: string(e.Cat), Ph: "X",
				Ts: e.Start, Dur: e.End - e.Start,
				Pid: chromePid(e.Lane), Tid: 0, Args: argMap(e.Args),
			})
		case KindInstant:
			evs = append(evs, chromeEvent{
				Name: e.Name, Cat: string(e.Cat), Ph: "i",
				Ts: e.Start, Pid: chromePid(e.Lane), Tid: 0,
				Scope: "t", Args: argMap(e.Args),
			})
		case KindCounter:
			evs = append(evs, chromeEvent{
				Name: e.Name, Cat: string(e.Cat), Ph: "C",
				Ts: e.Start, Pid: chromePid(e.Lane), Tid: 0,
				Args: map[string]float64{"value": e.Value},
			})
		case KindEdge:
			flowID++
			if e.Waited {
				evs = append(evs, chromeEvent{
					Name: "wait:" + e.Name, Cat: string(e.Cat), Ph: "X",
					Ts: e.Start, Dur: e.End - e.Start,
					Pid: chromePid(e.Lane), Tid: 0,
					Args: map[string]float64{"from": float64(e.From), "ready": e.ReadyTs},
				})
			}
			evs = append(evs, chromeEvent{
				Name: e.Name, Cat: string(e.Cat), Ph: "s",
				Ts: e.SendTs, Pid: chromePid(e.From), Tid: 0, ID: flowID,
			}, chromeEvent{
				Name: e.Name, Cat: string(e.Cat), Ph: "f", BP: "e",
				Ts: e.End, Pid: chromePid(e.Lane), Tid: 0, ID: flowID,
			})
		}
	}
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].Ts < evs[j].Ts })

	var raw []json.RawMessage
	for _, l := range rec.Lanes() {
		name := l.Name
		if name == "" {
			name = "lane " + itoa(l.ID)
		}
		for _, m := range []chromeMeta{
			{Name: "process_name", Ph: "M", Pid: chromePid(l.ID), Args: map[string]string{"name": name}},
			{Name: "thread_name", Ph: "M", Pid: chromePid(l.ID), Args: map[string]string{"name": "main"}},
		} {
			b, err := json.Marshal(m)
			if err != nil {
				return err
			}
			raw = append(raw, b)
		}
	}
	for _, e := range evs {
		b, err := json.Marshal(e)
		if err != nil {
			return err
		}
		raw = append(raw, b)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: raw, DisplayTimeUnit: "ms"})
}
