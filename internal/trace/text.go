package trace

import (
	"fmt"
	"io"
	"sort"
)

// Aligned text reports over a recorded trace: the inspection companion
// to the Chrome export, usable straight from a terminal.

// WriteSummary prints event counts, the per-rank utilisation
// decomposition and the mm-lock contention timelines.
func WriteSummary(w io.Writer, rec *Recorder) {
	if rec == nil {
		fmt.Fprintln(w, "trace: disabled (no recorder)")
		return
	}
	counts := map[Cat]int{}
	kinds := map[Kind]int{}
	for i := range rec.Events() {
		e := &rec.Events()[i]
		counts[e.Cat]++
		kinds[e.Kind]++
	}
	fmt.Fprintf(w, "trace: %d events (%d spans, %d instants, %d counters, %d edges)\n",
		rec.Len(), kinds[KindSpan], kinds[KindInstant], kinds[KindCounter], kinds[KindEdge])
	var cats []string
	for c := range counts {
		cats = append(cats, string(c))
	}
	sort.Strings(cats)
	for _, c := range cats {
		fmt.Fprintf(w, "  %-9s %6d\n", c, counts[Cat(c)])
	}

	utils := Utilizations(rec)
	if len(utils) > 0 {
		fmt.Fprintf(w, "\nper-rank utilisation (us):\n")
		fmt.Fprintf(w, "%5s  %10s  %9s  %9s  %9s  %9s  %9s  %9s  %9s\n",
			"rank", "window", "syscall", "lock", "pin", "copy", "shmcopy", "wait", "other")
		for _, u := range utils {
			fmt.Fprintf(w, "%5d  %10.2f  %9.2f  %9.2f  %9.2f  %9.2f  %9.2f  %9.2f  %9.2f\n",
				u.Lane, u.Window, u.Syscall, u.Lock, u.Pin, u.Copy, u.ShmCopy, u.Wait, u.Other)
		}
	}

	locks := LockTimelines(rec)
	if len(locks) > 0 {
		fmt.Fprintf(w, "\nmm-lock contention (per target process):\n")
		for _, st := range locks {
			fmt.Fprintf(w, "  lane %d: held %.2fus, max concurrency %d", st.Lane, st.HeldTime, st.MaxConc)
			if st.MaxQueue > 0 {
				fmt.Fprintf(w, ", max queue depth %d", st.MaxQueue)
			}
			fmt.Fprintln(w)
			var levels []int
			for c := range st.TimeAtConc {
				levels = append(levels, c)
			}
			sort.Ints(levels)
			for _, c := range levels {
				fmt.Fprintf(w, "    c=%-3d %10.2fus\n", c, st.TimeAtConc[c])
			}
		}
	}

	if sum := SummarizeCMA(rec); sum.Ops > 0 {
		fmt.Fprintf(w, "\nCMA phase totals over %d ops (us): syscall %.2f, perm %.2f, lock %.2f, pin %.2f, copy %.2f (max concurrency %d)\n",
			sum.Ops, sum.Syscall, sum.Perm, sum.Lock, sum.Pin, sum.Copy, sum.MaxC)
	}
}

// WriteCriticalPath prints one critical path, segment by segment.
func WriteCriticalPath(w io.Writer, cp *CriticalPath) {
	fmt.Fprintf(w, "critical path, invocation %d (%s): total %.2fus over [%.2f, %.2f], measured latency %.2fus\n",
		cp.Invocation, cp.Name, cp.Total(), cp.Start, cp.End, cp.Latency)
	work := cp.WorkByLane()
	var lanes []int
	for l := range work {
		lanes = append(lanes, l)
	}
	sort.Ints(lanes)
	fmt.Fprintf(w, "  wait on path: %.2fus; work by rank:", cp.WaitTime())
	for _, l := range lanes {
		fmt.Fprintf(w, " %d:%.2f", l, work[l])
	}
	fmt.Fprintln(w)
	for _, s := range cp.Segments {
		kind := "work"
		if s.Wait {
			kind = "wait"
		}
		fmt.Fprintf(w, "  rank %-3d %s [%10.2f, %10.2f] %8.2fus  %s\n", s.Lane, kind, s.Start, s.End, s.Dur(), s.Label)
	}
}
