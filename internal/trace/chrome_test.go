package trace

import (
	"bytes"
	"encoding/json"
	"testing"
)

// decoded mirrors the trace-event fields the tests inspect.
type decoded struct {
	Name string  `json:"name"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
	ID   int     `json:"id"`
	Args map[string]interface{}
}

func exportKnomial(t *testing.T) []decoded {
	t.Helper()
	rec := buildKnomialBcast(t)
	var buf bytes.Buffer
	if err := WriteChrome(&buf, rec); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	var top struct {
		TraceEvents     []json.RawMessage `json:"traceEvents"`
		DisplayTimeUnit string            `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &top); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if top.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", top.DisplayTimeUnit)
	}
	var evs []decoded
	for i, raw := range top.TraceEvents {
		var d decoded
		if err := json.Unmarshal(raw, &d); err != nil {
			t.Fatalf("event %d is not valid JSON: %v", i, err)
		}
		evs = append(evs, d)
	}
	return evs
}

func TestChromeExport(t *testing.T) {
	evs := exportKnomial(t)

	// Metadata first: process_name/thread_name for each of the 4
	// registered lanes, pids matching the lane ids.
	pids := map[int]bool{}
	meta := 0
	for _, e := range evs {
		if e.Ph == "M" {
			meta++
			pids[e.Pid] = true
			continue
		}
		break // metadata is a prefix
	}
	if meta != 8 {
		t.Fatalf("got %d metadata events, want 8 (2 per lane)", meta)
	}
	for r := 0; r < 4; r++ {
		if !pids[r] {
			t.Errorf("no metadata for pid %d", r)
		}
	}

	// Timestamps monotonic after the metadata prefix.
	last := -1.0
	for i, e := range evs[meta:] {
		if e.Ts < last {
			t.Fatalf("ts not monotonic at event %d: %v after %v", i, e.Ts, last)
		}
		last = e.Ts
	}

	// Events land on the pid of their lane, and every flow start has a
	// matching finish with the same id.
	var spans, flowS, flowF int
	flows := map[int][2]int{}
	for _, e := range evs[meta:] {
		switch e.Ph {
		case "X":
			spans++
			if e.Dur < 0 {
				t.Errorf("negative dur on %q", e.Name)
			}
		case "s":
			flowS++
			f := flows[e.ID]
			f[0]++
			flows[e.ID] = f
		case "f":
			flowF++
			f := flows[e.ID]
			f[1]++
			flows[e.ID] = f
		}
	}
	// 5 closed spans (4 collectives + nested serve_level) + 3 wait
	// spans from the waited edges.
	if spans != 8 {
		t.Errorf("got %d X events, want 8", spans)
	}
	if flowS != 3 || flowF != 3 {
		t.Errorf("flow events s=%d f=%d, want 3 each", flowS, flowF)
	}
	for id, f := range flows {
		if f[0] != 1 || f[1] != 1 {
			t.Errorf("flow id %d has %d starts, %d finishes", id, f[0], f[1])
		}
	}
}

func TestChromeSkipsOpenSpans(t *testing.T) {
	clk := &fakeClock{}
	rec := New(clk)
	rec.RegisterLane(0, "rank 0", 1000)
	clk.t = 1
	rec.Begin(0, CatColl, "left-open")
	var buf bytes.Buffer
	if err := WriteChrome(&buf, rec); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	if bytes.Contains(buf.Bytes(), []byte("left-open")) {
		t.Error("open span was exported")
	}
}

func TestChromePseudoLanePid(t *testing.T) {
	clk := &fakeClock{}
	rec := New(clk)
	// An event on an unregistered pseudo-lane (negative) must export
	// with a non-negative pid.
	rec.Instant(-1007, CatLock, "mm_lock_acquire")
	var buf bytes.Buffer
	if err := WriteChrome(&buf, rec); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	var top struct {
		TraceEvents []decoded `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &top); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(top.TraceEvents) != 1 || top.TraceEvents[0].Pid != 1007 {
		t.Fatalf("events %+v, want one event with pid 1007", top.TraceEvents)
	}
}
