package trace

import "sort"

// Analysis passes over a recorded trace. All passes are read-only and
// deterministic: they depend only on the recorded events.

// Segment is one hop of a critical path: an interval on one lane,
// either work (the rank was executing) or wait (the path crossed a
// message edge: the interval spans the sender's post to the receiver's
// consumption).
type Segment struct {
	Lane  int
	Start float64
	End   float64
	Wait  bool
	Label string
}

// Dur returns the segment duration.
func (s Segment) Dur() float64 { return s.End - s.Start }

// CriticalPath is the rank chain that bounds one collective
// invocation's latency: a contiguous tiling of [Start, End] by work and
// wait segments, obtained by walking back from the last rank to finish
// and jumping to the sender whenever the current rank was blocked on a
// message.
type CriticalPath struct {
	Invocation int
	Name       string // algorithm name from the collective span
	Start      float64
	End        float64
	// Latency is the measured collective latency: last rank's exit
	// minus last rank's entry (the harness definition). Total() differs
	// from it only by entry skew of the first rank on the path.
	Latency  float64
	Segments []Segment
}

// Total returns End - Start: the wall-clock the path accounts for.
func (cp *CriticalPath) Total() float64 { return cp.End - cp.Start }

// WorkByLane sums the work (non-wait) time each lane contributes.
func (cp *CriticalPath) WorkByLane() map[int]float64 {
	out := map[int]float64{}
	for _, s := range cp.Segments {
		if !s.Wait {
			out[s.Lane] += s.Dur()
		}
	}
	return out
}

// WaitTime sums the wait segments (message latency and blocked time on
// the path).
func (cp *CriticalPath) WaitTime() float64 {
	var w float64
	for _, s := range cp.Segments {
		if s.Wait {
			w += s.Dur()
		}
	}
	return w
}

// collSpan is one top-level collective span on a lane.
type collSpan struct {
	lane       int
	start, end float64
	name       string
}

// topLevelColl extracts, per lane, the top-level (non-nested)
// collective spans in time order. Tuned dispatchers open no span of
// their own, but composed algorithms (e.g. scatter-allgather) produce
// nested CatColl spans; only the outermost one delimits an invocation.
func topLevelColl(rec *Recorder) map[int][]collSpan {
	out := map[int][]collSpan{}
	topEnd := map[int]float64{}
	for i := range rec.Events() {
		e := &rec.Events()[i]
		if e.Kind != KindSpan || e.Cat != CatColl || e.End < e.Start {
			continue
		}
		// Events appear in Begin order, so an outer span precedes the
		// spans it contains: anything starting before the current
		// top-level span's end is nested.
		if end, ok := topEnd[e.Lane]; ok && e.Start < end {
			continue
		}
		topEnd[e.Lane] = e.End
		out[e.Lane] = append(out[e.Lane], collSpan{lane: e.Lane, start: e.Start, end: e.End, name: e.Name})
	}
	return out
}

// CriticalPaths extracts one critical path per collective invocation.
// Invocation i is the i-th top-level collective span on every lane
// (lanes must agree on the invocation count; extra spans on some lanes
// are ignored).
func CriticalPaths(rec *Recorder) []CriticalPath {
	if rec == nil {
		return nil
	}
	colls := topLevelColl(rec)
	if len(colls) == 0 {
		return nil
	}
	invocations := -1
	for _, spans := range colls {
		if invocations < 0 || len(spans) < invocations {
			invocations = len(spans)
		}
	}
	// Per-lane waited edges sorted by consumption time.
	edges := map[int][]*Event{}
	evs := rec.Events()
	for i := range evs {
		if e := &evs[i]; e.Kind == KindEdge && e.Waited {
			edges[e.Lane] = append(edges[e.Lane], e)
		}
	}
	for _, l := range edges {
		sort.SliceStable(l, func(i, j int) bool { return l[i].End < l[j].End })
	}
	var out []CriticalPath
	for inv := 0; inv < invocations; inv++ {
		out = append(out, extractPath(colls, edges, inv))
	}
	return out
}

func extractPath(colls map[int][]collSpan, edges map[int][]*Event, inv int) CriticalPath {
	// The invocation window per lane, plus the measured latency:
	// last exit minus last entry.
	win := map[int]collSpan{}
	var lastEnd, lastStart float64
	endLane := -1
	for lane, spans := range colls {
		s := spans[inv]
		win[lane] = s
		if s.start > lastStart {
			lastStart = s.start
		}
		if endLane < 0 || s.end > lastEnd || (s.end == lastEnd && lane < endLane) {
			lastEnd = s.end
			endLane = lane
		}
	}
	cp := CriticalPath{Invocation: inv, Name: win[endLane].name, End: lastEnd, Latency: lastEnd - lastStart}

	var segs []Segment
	cur, t := endLane, lastEnd
	for steps := 0; ; steps++ {
		w, inWindow := win[cur]
		if !inWindow || steps > 1<<20 {
			cp.Start = t
			break
		}
		e := latestGatingEdge(edges[cur], t, w.start)
		if e == nil {
			if w.start < t {
				segs = append(segs, Segment{Lane: cur, Start: w.start, End: t, Label: "work"})
				cp.Start = w.start
			} else {
				cp.Start = t
			}
			break
		}
		if e.End < t {
			segs = append(segs, Segment{Lane: cur, Start: e.End, End: t, Label: "work"})
		}
		segs = append(segs, Segment{
			Lane: cur, Start: e.SendTs, End: e.End, Wait: true,
			Label: "wait " + e.Name + " <- " + itoa(e.From),
		})
		if e.SendTs >= t {
			// Degenerate (should not happen: SendTs < ReadyTs <= End <= t);
			// stop rather than loop.
			cp.Start = e.SendTs
			break
		}
		cur, t = e.From, e.SendTs
	}
	// Walked backwards; present in time order.
	for i, j := 0, len(segs)-1; i < j; i, j = i+1, j-1 {
		segs[i], segs[j] = segs[j], segs[i]
	}
	cp.Segments = segs
	return cp
}

// latestGatingEdge returns the latest edge consumed on the lane at or
// before t and inside the invocation window, or nil. An edge must end
// strictly after the window start: the separating barrier's final
// hand-off lands exactly at the collective entry and must not pull the
// walk into the previous phase.
func latestGatingEdge(edges []*Event, t, winStart float64) *Event {
	i := sort.Search(len(edges), func(i int) bool { return edges[i].End > t })
	for i--; i >= 0; i-- {
		if e := edges[i]; e.End > winStart && e.SendTs < t {
			return e
		}
	}
	return nil
}

// LockStats summarizes mm-lock contention on one target process's lane:
// how long the lock-holding page loop ran at each concurrency level,
// the peak concurrency, and (in emergent-lock mode) the peak FIFO queue
// depth.
type LockStats struct {
	Lane       int
	TimeAtConc map[int]float64 // concurrency level -> virtual time spent there
	MaxConc    int
	MaxQueue   int
	HeldTime   float64 // total time with >= 1 concurrent op in the locked loop
}

// CounterInFlight is the counter name kernel emits when a CMA op enters
// or leaves a target mm's locked page loop.
const CounterInFlight = "mm_inflight"

// CounterQueue is the counter name kernel emits for the emergent-lock
// FIFO queue depth.
const CounterQueue = "mm_queue"

// LockTimelines integrates the mm-lock concurrency counters into a
// per-target-process contention histogram, sorted by lane.
func LockTimelines(rec *Recorder) []LockStats {
	if rec == nil {
		return nil
	}
	byLane := map[int]*LockStats{}
	lastTs := map[int]float64{}
	lastVal := map[int]int{}
	evs := rec.Events()
	for i := range evs {
		e := &evs[i]
		if e.Kind != KindCounter || e.Cat != CatLock {
			continue
		}
		st := byLane[e.Lane]
		if st == nil {
			st = &LockStats{Lane: e.Lane, TimeAtConc: map[int]float64{}}
			byLane[e.Lane] = st
		}
		switch e.Name {
		case CounterInFlight:
			v := int(e.Value)
			if prev, ok := lastVal[e.Lane]; ok {
				dt := e.Start - lastTs[e.Lane]
				if prev > 0 && dt > 0 {
					st.TimeAtConc[prev] += dt
					st.HeldTime += dt
				}
			}
			lastTs[e.Lane], lastVal[e.Lane] = e.Start, v
			if v > st.MaxConc {
				st.MaxConc = v
			}
		case CounterQueue:
			if q := int(e.Value); q > st.MaxQueue {
				st.MaxQueue = q
			}
		}
	}
	out := make([]LockStats, 0, len(byLane))
	for _, st := range byLane {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Lane < out[j].Lane })
	return out
}

// RankUtil decomposes one rank's traced window into what the rank was
// doing: CMA kernel phases, shared-memory copying, blocked on messages,
// and the remainder (matching, control costs, local compute).
type RankUtil struct {
	Lane    int
	Window  float64 // total time inside top-level collective spans
	Syscall float64 // CMA syscall entry + permission check
	Lock    float64 // CMA per-page lock phase (incl. γ inflation / queueing)
	Pin     float64 // CMA per-page pin phase
	Copy    float64 // CMA data copy
	ShmCopy float64 // shared-memory cell staging/draining copies
	Wait    float64 // blocked on a message edge (readyTs - waitStart)
	Other   float64 // Window minus all of the above (control, compute)
}

// Utilizations computes the per-rank decomposition, sorted by lane.
// Only events inside a lane's top-level collective spans are counted
// (the barriers separating timed invocations are excluded); lanes with
// no top-level collective span use their first-to-last event interval
// as the window and count everything.
func Utilizations(rec *Recorder) []RankUtil {
	if rec == nil {
		return nil
	}
	colls := topLevelColl(rec)
	byLane := map[int]*RankUtil{}
	get := func(lane int) *RankUtil {
		u := byLane[lane]
		if u == nil {
			u = &RankUtil{Lane: lane}
			byLane[lane] = u
		}
		return u
	}
	inWindow := func(lane int, t float64) bool {
		spans, ok := colls[lane]
		if !ok {
			return true // no windows: count everything
		}
		i := sort.Search(len(spans), func(i int) bool { return spans[i].end >= t })
		return i < len(spans) && spans[i].start <= t
	}
	first := map[int]float64{}
	last := map[int]float64{}
	evs := rec.Events()
	for i := range evs {
		e := &evs[i]
		if _, ok := first[e.Lane]; !ok {
			first[e.Lane] = e.Start
		}
		if e.End > last[e.Lane] {
			last[e.Lane] = e.End
		} else if e.Start > last[e.Lane] {
			last[e.Lane] = e.Start
		}
		if (e.Kind == KindSpan || e.Kind == KindEdge) && !inWindow(e.Lane, e.End) {
			continue
		}
		switch {
		case e.Kind == KindSpan && e.Cat == CatCMA && e.End >= e.Start:
			u := get(e.Lane)
			sys, _ := e.Arg("syscall")
			perm, _ := e.Arg("perm")
			lock, _ := e.Arg("lock")
			pin, _ := e.Arg("pin")
			cp, _ := e.Arg("copy")
			u.Syscall += sys + perm
			u.Lock += lock
			u.Pin += pin
			u.Copy += cp
		case e.Kind == KindSpan && e.Cat == CatShm && e.End >= e.Start:
			if cp, ok := e.Arg("copy"); ok {
				get(e.Lane).ShmCopy += cp
			}
		case e.Kind == KindEdge && e.Waited:
			get(e.Lane).Wait += e.ReadyTs - e.Start
		}
	}
	for lane, spans := range colls {
		u := get(lane)
		for _, s := range spans {
			u.Window += s.end - s.start
		}
	}
	out := make([]RankUtil, 0, len(byLane))
	for lane, u := range byLane {
		if u.Window == 0 {
			u.Window = last[lane] - first[lane]
		}
		u.Other = u.Window - u.Syscall - u.Lock - u.Pin - u.Copy - u.ShmCopy - u.Wait
		if u.Other < 0 {
			u.Other = 0
		}
		out = append(out, *u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Lane < out[j].Lane })
	return out
}

// CMASummary aggregates the per-op kernel phase breakdowns recorded on
// CMA spans — the same totals kernel.Trace accumulates, derived from
// the timeline so the two cannot drift (they are emitted by the same
// record call in the kernel).
type CMASummary struct {
	Ops     int
	Syscall float64
	Perm    float64
	Lock    float64
	Pin     float64
	Copy    float64
	MaxC    int
}

// Total returns the summed phase time.
func (s CMASummary) Total() float64 {
	return s.Syscall + s.Perm + s.Lock + s.Pin + s.Copy
}

// SummarizeCMA folds every closed CMA span into phase totals.
func SummarizeCMA(rec *Recorder) CMASummary {
	var out CMASummary
	if rec == nil {
		return out
	}
	evs := rec.Events()
	for i := range evs {
		e := &evs[i]
		if e.Kind != KindSpan || e.Cat != CatCMA || e.End < e.Start {
			continue
		}
		if _, aborted := e.Arg("aborted"); aborted {
			continue // address-range violation: the aggregate never counts these
		}
		out.Ops++
		add := func(key string, dst *float64) {
			if v, ok := e.Arg(key); ok {
				*dst += v
			}
		}
		add("syscall", &out.Syscall)
		add("perm", &out.Perm)
		add("lock", &out.Lock)
		add("pin", &out.Pin)
		add("copy", &out.Copy)
		if c, ok := e.Arg("maxc"); ok && int(c) > out.MaxC {
			out.MaxC = int(c)
		}
	}
	return out
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		b[i] = '-'
	}
	return string(b[i:])
}
