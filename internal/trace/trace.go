// Package trace is the structured event-tracing subsystem for the
// simulated MPI stack: a Recorder attached to a simulation collects
// timestamped spans, instant events, counter samples and matched
// message edges in virtual time, turning every deterministic run into
// an inspectable timeline.
//
// Everything the paper's ftrace methodology observes on real hardware
// has a counterpart here: per-CMA-op spans broken into the five kernel
// phases (syscall / permission / lock / pin / copy), the sampled
// contention factor γ(c) per page chunk, mm-lock hold concurrency over
// time, shared-memory channel traffic, throttle-token hand-offs and
// per-rank collective steps.
//
// The Recorder is nil-safe: every method no-ops on a nil receiver, so
// instrumentation sites in kernel/shm/mpi/core cost nothing when
// tracing is disabled — no allocation, and no virtual-time perturbation
// ever (recording never sleeps, so an enabled run's simulated latencies
// are bit-identical to a disabled run's).
//
// Analysis passes (critical-path extraction, mm-lock contention
// timelines, per-rank utilisation) live in analysis.go; exporters
// (Chrome trace-event JSON for chrome://tracing / Perfetto, aligned
// text summaries) in chrome.go and text.go.
package trace

import "fmt"

// Clock supplies virtual time; *sim.Simulation satisfies it.
type Clock interface {
	Now() float64
}

// Cat classifies an event by the subsystem that emitted it.
type Cat string

// The event categories emitted by the instrumented stack.
const (
	CatColl     Cat = "coll"     // collective algorithm phases (internal/core)
	CatCMA      Cat = "cma"      // kernel-assisted copy ops (internal/kernel)
	CatLock     Cat = "lock"     // mm-lock acquire/release and concurrency
	CatShm      Cat = "shm"      // shared-memory transport (internal/shm)
	CatMPI      Cat = "mpi"      // pt2pt protocol and barrier (internal/mpi)
	CatThrottle Cat = "throttle" // throttle-token hand-offs (internal/core)
	CatFault    Cat = "fault"    // injected faults and degraded-mode reactions (internal/fault)
	CatLiveness Cat = "liveness" // failure detection, agreement and shrink (internal/liveness)
	CatNet      Cat = "net"      // network-fabric transfers and link contention (internal/cluster)
)

// Kind distinguishes the event shapes a Recorder stores.
type Kind uint8

// The event kinds.
const (
	// KindSpan is a duration [Start, End] on one lane.
	KindSpan Kind = iota
	// KindInstant is a point event at Start.
	KindInstant
	// KindCounter samples Value at Start (e.g. mm-lock holders).
	KindCounter
	// KindEdge is a matched cross-lane message: posted by lane From at
	// SendTs, consumable at ReadyTs, consumed by lane Lane over
	// [Start, End] (Start = when the receiver began waiting). Waited
	// reports whether the receiver actually blocked on the sender —
	// the property critical-path extraction follows.
	KindEdge
)

// Arg is one key/value annotation on an event.
type Arg struct {
	Key string
	Val float64
}

// F builds an Arg (shorthand for instrumentation sites).
func F(key string, val float64) Arg { return Arg{Key: key, Val: val} }

// Event is one recorded trace entry. Which fields are meaningful
// depends on Kind; see the Kind constants.
type Event struct {
	Kind  Kind
	Cat   Cat
	Name  string
	Lane  int // owning lane (rank); negative lanes are unregistered pids
	Start float64
	End   float64

	// Edge fields.
	From    int
	SendTs  float64
	ReadyTs float64
	Waited  bool

	// Counter value.
	Value float64

	Args []Arg
}

// Dur returns the span duration (0 for non-spans).
func (e *Event) Dur() float64 {
	if e.Kind != KindSpan && e.Kind != KindEdge {
		return 0
	}
	return e.End - e.Start
}

// Arg returns the named annotation and whether it is present.
func (e *Event) Arg(key string) (float64, bool) {
	for _, a := range e.Args {
		if a.Key == key {
			return a.Val, true
		}
	}
	return 0, false
}

// SpanID identifies an open span returned by Begin. The zero value is
// not a valid open span; a nil Recorder returns NoSpan.
type SpanID int

// NoSpan is the SpanID a nil Recorder returns; End(NoSpan) no-ops.
const NoSpan SpanID = -1

// Lane metadata registered via RegisterLane.
type Lane struct {
	ID   int
	Name string
	Pid  int // simulated OS pid behind the lane, 0 if none
}

// Recorder collects events for one simulation. Create with New (bound
// to a clock) or NewUnbound (bound later by the node it is attached
// to). A Recorder must not be shared between simulations.
//
// All methods are safe on a nil *Recorder, which is the disabled state.
// The simulator runs exactly one process goroutine at a time with
// channel hand-off between them, so the Recorder needs no internal
// locking: the hand-off establishes happens-before between all
// recording sites.
type Recorder struct {
	clock  Clock
	events []Event
	lanes  []Lane
	byPid  map[int]int // pid -> lane id
}

// New returns a Recorder reading virtual time from clock.
func New(clock Clock) *Recorder {
	return &Recorder{clock: clock, byPid: map[int]int{}}
}

// NewUnbound returns a Recorder with no clock; it must be bound (by
// attaching it to a kernel node) before anything is recorded.
func NewUnbound() *Recorder { return &Recorder{byPid: map[int]int{}} }

// Bind sets the recorder's clock. Attaching a recorder to a node binds
// it to the node's simulation; binding an already-bound recorder to a
// different clock panics (a recorder holds one simulation's timeline).
func (r *Recorder) Bind(clock Clock) {
	if r == nil {
		return
	}
	if r.clock != nil && r.clock != clock && len(r.events) > 0 {
		panic("trace: recorder already bound to a different simulation")
	}
	r.clock = clock
}

// Enabled reports whether the recorder records (false for nil).
func (r *Recorder) Enabled() bool { return r != nil }

func (r *Recorder) now() float64 {
	if r.clock == nil {
		panic("trace: recorder not bound to a simulation")
	}
	return r.clock.Now()
}

// RegisterLane names a lane (rank) and associates it with a simulated
// pid so kernel-level events land on the same timeline row as the
// rank's MPI-level events.
func (r *Recorder) RegisterLane(id int, name string, pid int) {
	if r == nil {
		return
	}
	r.lanes = append(r.lanes, Lane{ID: id, Name: name, Pid: pid})
	if pid != 0 {
		r.byPid[pid] = id
	}
}

// Lanes returns the registered lanes in registration order.
func (r *Recorder) Lanes() []Lane {
	if r == nil {
		return nil
	}
	return r.lanes
}

// LaneForPid maps a simulated pid to its registered lane; unregistered
// pids get a stable negative pseudo-lane so their events are kept
// rather than dropped.
func (r *Recorder) LaneForPid(pid int) int {
	if r == nil {
		return NoLane
	}
	if l, ok := r.byPid[pid]; ok {
		return l
	}
	return -pid
}

// NoLane is the lane a nil recorder reports.
const NoLane = -1 << 30

// Begin opens a span on lane and returns its id; close it with End.
// Spans on one lane must nest (the instrumented stack guarantees this:
// collective step > MPI op > shm/CMA op > chunk).
func (r *Recorder) Begin(lane int, cat Cat, name string, args ...Arg) SpanID {
	if r == nil {
		return NoSpan
	}
	r.events = append(r.events, Event{
		Kind: KindSpan, Cat: cat, Name: name, Lane: lane,
		Start: r.now(), End: -1, Args: args,
	})
	return SpanID(len(r.events) - 1)
}

// End closes a span opened with Begin, appending any extra args.
func (r *Recorder) End(id SpanID, args ...Arg) {
	if r == nil || id == NoSpan {
		return
	}
	e := &r.events[id]
	if e.Kind != KindSpan || e.End >= 0 {
		panic(fmt.Sprintf("trace: End(%d) on a non-open span", id))
	}
	e.End = r.now()
	e.Args = append(e.Args, args...)
}

// Instant records a point event.
func (r *Recorder) Instant(lane int, cat Cat, name string, args ...Arg) {
	if r == nil {
		return
	}
	r.events = append(r.events, Event{
		Kind: KindInstant, Cat: cat, Name: name, Lane: lane,
		Start: r.now(), End: -1, Args: args,
	})
}

// Counter samples a named counter (e.g. mm-lock holders on a target
// process's lane).
func (r *Recorder) Counter(lane int, cat Cat, name string, value float64) {
	if r == nil {
		return
	}
	now := r.now()
	r.events = append(r.events, Event{
		Kind: KindCounter, Cat: cat, Name: name, Lane: lane,
		Start: now, End: -1, Value: value,
	})
}

// Edge records a matched cross-lane message on the receiver's side.
// from/to are lanes; sendTs is when the sender finished posting,
// readyTs when the message became consumable (arrival plus transport
// latency), waitStart when the receiver began waiting, recvEnd when the
// receiver finished consuming. The receiver blocked on the sender iff
// readyTs > waitStart; that flag drives critical-path extraction.
func (r *Recorder) Edge(from, to int, cat Cat, name string, sendTs, readyTs, waitStart, recvEnd float64, args ...Arg) {
	if r == nil {
		return
	}
	r.events = append(r.events, Event{
		Kind: KindEdge, Cat: cat, Name: name, Lane: to, From: from,
		SendTs: sendTs, ReadyTs: readyTs, Start: waitStart, End: recvEnd,
		Waited: readyTs > waitStart, Args: args,
	})
}

// Events returns the recorded events in recording order. Span events
// appear at their Begin position; a span still open has End < Start.
// The returned slice is the recorder's own storage — callers must not
// mutate it.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	return r.events
}

// Len returns the number of recorded events.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return len(r.events)
}
