package trace

import (
	"math"
	"testing"
)

const eps = 1e-9

func near(a, b float64) bool { return math.Abs(a-b) < eps }

// buildKnomialBcast hand-builds the trace of one 4-rank k-nomial (k=2)
// broadcast: root 0 serves rank 2 then rank 1; rank 2 relays to rank 3.
// The longest dependency chain is 0 -> 2 -> 3.
func buildKnomialBcast(t *testing.T) *Recorder {
	t.Helper()
	clk := &fakeClock{}
	rec := New(clk)
	for r := 0; r < 4; r++ {
		rec.RegisterLane(r, "rank", 1000+r)
	}
	at := func(ts float64) { clk.t = ts }

	at(0)
	s0 := rec.Begin(0, CatColl, "bcast:knomial-write-2")
	at(0.05)
	s1 := rec.Begin(1, CatColl, "bcast:knomial-write-2")
	at(0.1)
	s2 := rec.Begin(2, CatColl, "bcast:knomial-write-2")
	at(0.15)
	s3 := rec.Begin(3, CatColl, "bcast:knomial-write-2")

	// A nested collective-phase span on the root: must not count as a
	// separate top-level invocation.
	at(1)
	lv := rec.Begin(0, CatColl, "serve_level")
	at(5)
	rec.End(lv)

	// Hand-offs, recorded receiver-side. All three receivers started
	// waiting right after entering, so every edge gates.
	rec.Edge(0, 2, CatShm, "notify", 10, 10.5, 0.2, 10.5)
	rec.Edge(2, 3, CatShm, "notify", 20, 20.5, 0.3, 20.5)
	rec.Edge(0, 1, CatShm, "notify", 24, 24.5, 0.25, 24.5)

	at(25)
	rec.End(s0)
	rec.End(s1)
	at(30)
	rec.End(s2)
	at(30.5)
	rec.End(s3)
	return rec
}

func TestCriticalPathKnomialBcast(t *testing.T) {
	rec := buildKnomialBcast(t)
	cps := CriticalPaths(rec)
	if len(cps) != 1 {
		t.Fatalf("got %d invocations, want 1 (nested span miscounted?)", len(cps))
	}
	cp := cps[0]
	if cp.Name != "bcast:knomial-write-2" || cp.Invocation != 0 {
		t.Fatalf("path header %+v", cp)
	}
	// The chain 0 -> 2 -> 3: root works [0,10], rank 2 waits then works
	// until its send at 20, rank 3 waits then works to the last finish.
	want := []Segment{
		{Lane: 0, Start: 0, End: 10},
		{Lane: 2, Start: 10, End: 10.5, Wait: true},
		{Lane: 2, Start: 10.5, End: 20},
		{Lane: 3, Start: 20, End: 20.5, Wait: true},
		{Lane: 3, Start: 20.5, End: 30.5},
	}
	if len(cp.Segments) != len(want) {
		t.Fatalf("got %d segments %+v, want %d", len(cp.Segments), cp.Segments, len(want))
	}
	for i, w := range want {
		g := cp.Segments[i]
		if g.Lane != w.Lane || !near(g.Start, w.Start) || !near(g.End, w.End) || g.Wait != w.Wait {
			t.Errorf("segment %d = %+v, want %+v", i, g, w)
		}
	}
	if !near(cp.Total(), 30.5) {
		t.Errorf("Total = %v, want 30.5", cp.Total())
	}
	// Measured latency: last exit (30.5) minus last entry (0.15).
	if !near(cp.Latency, 30.35) {
		t.Errorf("Latency = %v, want 30.35", cp.Latency)
	}
	if !near(cp.WaitTime(), 1.0) {
		t.Errorf("WaitTime = %v, want 1.0", cp.WaitTime())
	}
	work := cp.WorkByLane()
	if !near(work[0], 10) || !near(work[2], 9.5) || !near(work[3], 10) {
		t.Errorf("WorkByLane = %v", work)
	}
	// The path is continuous: each segment starts where the previous
	// ended, covering [Start, End] with no gaps.
	prev := cp.Start
	for i, s := range cp.Segments {
		if !near(s.Start, prev) {
			t.Errorf("gap before segment %d: %v -> %v", i, prev, s.Start)
		}
		prev = s.End
	}
	if !near(prev, cp.End) {
		t.Errorf("path ends at %v, want %v", prev, cp.End)
	}
}

func TestCriticalPathMultipleInvocations(t *testing.T) {
	clk := &fakeClock{}
	rec := New(clk)
	// Two back-to-back invocations on two lanes; the second gated by an
	// edge 0 -> 1.
	for inv := 0; inv < 2; inv++ {
		base := float64(inv) * 100
		clk.t = base
		a := rec.Begin(0, CatColl, "scatter:throttle-2")
		b := rec.Begin(1, CatColl, "scatter:throttle-2")
		rec.Edge(0, 1, CatShm, "notify", base+10, base+10.5, base, base+10.5)
		clk.t = base + 11
		rec.End(a)
		clk.t = base + 20
		rec.End(b)
	}
	cps := CriticalPaths(rec)
	if len(cps) != 2 {
		t.Fatalf("got %d invocations, want 2", len(cps))
	}
	for i, cp := range cps {
		base := float64(i) * 100
		if cp.Invocation != i || !near(cp.End, base+20) {
			t.Errorf("invocation %d: %+v", i, cp)
		}
		// The walk must not cross into the previous invocation's edges.
		if !near(cp.Start, base) {
			t.Errorf("invocation %d starts at %v, want %v", i, cp.Start, base)
		}
	}
}

func TestLockTimelines(t *testing.T) {
	clk := &fakeClock{}
	rec := New(clk)
	emit := func(ts float64, name string, v int) {
		clk.t = ts
		rec.Counter(0, CatLock, name, float64(v))
	}
	emit(0, CounterInFlight, 1)
	emit(1, CounterInFlight, 2)
	emit(2, CounterQueue, 2)
	emit(3, CounterInFlight, 1)
	emit(6, CounterInFlight, 0)
	stats := LockTimelines(rec)
	if len(stats) != 1 {
		t.Fatalf("got %d lanes", len(stats))
	}
	st := stats[0]
	if st.Lane != 0 || st.MaxConc != 2 || st.MaxQueue != 2 {
		t.Fatalf("stats %+v", st)
	}
	if !near(st.TimeAtConc[1], 4) || !near(st.TimeAtConc[2], 2) {
		t.Errorf("TimeAtConc = %v, want {1:4, 2:2}", st.TimeAtConc)
	}
	if !near(st.HeldTime, 6) {
		t.Errorf("HeldTime = %v, want 6", st.HeldTime)
	}
}

func TestUtilizations(t *testing.T) {
	clk := &fakeClock{}
	rec := New(clk)
	at := func(ts float64) { clk.t = ts }

	at(0)
	coll := rec.Begin(0, CatColl, "gather:throttle-2")
	at(1)
	cma := rec.Begin(0, CatCMA, "vm_read")
	at(4)
	rec.End(cma, F("syscall", 0.5), F("perm", 0.25), F("lock", 1), F("pin", 0.5), F("copy", 1.5))
	at(5)
	shm := rec.Begin(0, CatShm, "shm_send")
	at(6)
	rec.End(shm, F("copy", 0.75))
	rec.Edge(1, 0, CatShm, "notify", 6.5, 8, 7, 8.2)
	at(10)
	rec.End(coll)
	// Outside the collective window (a barrier-phase op): not counted.
	at(11)
	out := rec.Begin(0, CatCMA, "vm_read")
	at(12)
	rec.End(out, F("copy", 5))
	rec.Edge(1, 0, CatShm, "barrier", 11, 12, 11, 12)

	us := Utilizations(rec)
	if len(us) != 1 {
		t.Fatalf("got %d lanes", len(us))
	}
	u := us[0]
	if !near(u.Window, 10) {
		t.Errorf("Window = %v, want 10", u.Window)
	}
	if !near(u.Syscall, 0.75) || !near(u.Lock, 1) || !near(u.Pin, 0.5) || !near(u.Copy, 1.5) {
		t.Errorf("CMA phases = %+v", u)
	}
	if !near(u.ShmCopy, 0.75) {
		t.Errorf("ShmCopy = %v, want 0.75", u.ShmCopy)
	}
	if !near(u.Wait, 1) {
		t.Errorf("Wait = %v, want 1 (readyTs - waitStart)", u.Wait)
	}
	if !near(u.Other, 10-0.75-1-0.5-1.5-0.75-1) {
		t.Errorf("Other = %v", u.Other)
	}
}

func TestSummarizeCMA(t *testing.T) {
	clk := &fakeClock{}
	rec := New(clk)
	for i := 0; i < 3; i++ {
		clk.t = float64(i)
		s := rec.Begin(0, CatCMA, "vm_write")
		clk.t = float64(i) + 0.5
		rec.End(s, F("syscall", 0.1), F("perm", 0.05), F("lock", 0.2), F("pin", 0.1), F("copy", 0.3), F("maxc", float64(i)))
	}
	s := SummarizeCMA(rec)
	if s.Ops != 3 || s.MaxC != 2 {
		t.Fatalf("summary %+v", s)
	}
	if !near(s.Syscall, 0.3) || !near(s.Perm, 0.15) || !near(s.Lock, 0.6) || !near(s.Pin, 0.3) || !near(s.Copy, 0.9) {
		t.Errorf("phase sums %+v", s)
	}
	if !near(s.Total(), 0.3+0.15+0.6+0.3+0.9) {
		t.Errorf("Total = %v", s.Total())
	}
}
