package sim

import (
	"fmt"
	"testing"
)

// The hot-path allocation budget. The seed dispatcher boxed every event
// through container/heap (~2 allocs per dispatch); the typed heap, the
// Sleep fast path, and the Proc/timer free lists bring the steady state
// to zero. These tests pin exact bounds: the dispatch loop allocates
// nothing at all, and a full Reset+Spawn+Run cycle pays only the
// goroutine-start closure per spawn.

func TestScheduleZeroAllocSteadyState(t *testing.T) {
	s := New()
	p := &Proc{sim: s, name: "x"}
	// Warm the heap's backing array, then assert the push/pop cycle
	// allocates nothing at all.
	for i := 0; i < 64; i++ {
		s.schedule(p, float64(i))
	}
	for len(s.events) > 0 {
		s.popEvent()
	}
	allocs := testing.AllocsPerRun(1000, func() {
		s.schedule(p, 1)
		s.popEvent()
	})
	if allocs != 0 {
		t.Errorf("schedule+pop allocates %v per cycle, want exactly 0", allocs)
	}
}

func TestSleepSelfWakeAllocs(t *testing.T) {
	// One process running 1024 self-wake sleeps, re-run on a warmed
	// simulation via Reset: the Proc shell and resume channel come off
	// the free list, so the only allocation left in the whole cycle is
	// the goroutine-start closure — the dispatch loop itself is
	// allocation-free.
	const sleeps = 1024
	s := New()
	body := func(sp *Proc) {
		for k := 0; k < sleeps; k++ {
			sp.Sleep(0.5)
		}
	}
	cycle := func() {
		s.Reset()
		s.Spawn("solo", body)
		if err := s.Run(); err != nil {
			panic(err)
		}
	}
	cycle() // warm: first goroutine stack, heap backing, free lists
	allocs := testing.AllocsPerRun(10, cycle)
	if allocs > 4 {
		t.Errorf("self-wake cycle of %d sleeps allocates %v, want <= 4 (spawn closure plus constant goroutine bookkeeping)", sleeps, allocs)
	}
}

func TestContendedDispatchAllocBound(t *testing.T) {
	// 16 processes ping-ponging sleeps: >3000 dispatches through the
	// heap per cycle. With pooled Procs the cycle's allocations are the
	// 16 goroutine-start closures — nothing scales with the event count.
	const procs, sleeps = 16, 64
	s := New()
	names := make([]string, procs)
	bodies := make([]func(*Proc), procs)
	for p := 0; p < procs; p++ {
		p := p
		names[p] = fmt.Sprintf("p%d", p)
		bodies[p] = func(sp *Proc) {
			for k := 0; k < sleeps; k++ {
				sp.Sleep(float64(1 + (p+k)%3))
			}
		}
	}
	var events uint64
	cycle := func() {
		s.Reset()
		for p := 0; p < procs; p++ {
			s.Spawn(names[p], bodies[p])
		}
		if err := s.Run(); err != nil {
			panic(err)
		}
		events = s.EventsProcessed()
	}
	cycle()
	allocs := testing.AllocsPerRun(10, cycle)
	if allocs > procs+4 {
		t.Errorf("contended cycle allocates %v, want <= %d (one spawn closure per proc)", allocs, procs+4)
	}
	if perEvent := allocs / float64(events); perEvent > 0.025 {
		t.Errorf("contended cycle: %v allocs over %d events = %.4f/event, want <= 0.025", allocs, events, perEvent)
	}
}

func TestTimedWaitTimerReuse(t *testing.T) {
	// Timed waits in steady state must recycle their timer objects: a
	// long sequence of RecvTimeout expiries may allocate waiter structs
	// but not grow the timer population. The assertion is structural —
	// after warmup the free list stops growing beyond one entry.
	s := New()
	ch := NewChan[int](s, 0)
	const waits = 64
	s.Spawn("waiter", func(sp *Proc) {
		for k := 0; k < waits; k++ {
			if _, ok := ch.RecvTimeout(sp, 1); ok {
				panic("unexpected value")
			}
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(s.timerFree) > 1 {
		t.Errorf("timer free list grew to %d after %d timed waits, want at most 1 recycled timer", len(s.timerFree), waits)
	}
}
