package sim

import (
	"fmt"
	"testing"
)

// The hot-path allocation budget. The seed dispatcher boxed every event
// through container/heap (~2 allocs per dispatch); the typed heap and
// the Sleep fast path bring the steady state to zero.

func TestScheduleZeroAllocSteadyState(t *testing.T) {
	s := New()
	p := &Proc{sim: s, name: "x"}
	// Warm the heap's backing array, then assert the push/pop cycle
	// allocates nothing at all.
	for i := 0; i < 64; i++ {
		s.schedule(p, float64(i))
	}
	for len(s.events) > 0 {
		s.popEvent()
	}
	allocs := testing.AllocsPerRun(1000, func() {
		s.schedule(p, 1)
		s.popEvent()
	})
	if allocs != 0 {
		t.Errorf("schedule+pop allocates %v per cycle, want 0", allocs)
	}
}

func TestSleepSelfWakeAllocs(t *testing.T) {
	// One process running 1024 self-wake sleeps: the whole simulation
	// (spawn included) must stay within a small constant budget — the
	// fast path itself must not allocate per event.
	const sleeps = 1024
	allocs := testing.AllocsPerRun(10, func() {
		s := New()
		s.Spawn("solo", func(sp *Proc) {
			for k := 0; k < sleeps; k++ {
				sp.Sleep(0.5)
			}
		})
		if err := s.Run(); err != nil {
			panic(err)
		}
	})
	if allocs > 32 {
		t.Errorf("self-wake run of %d sleeps allocates %v, want <= 32 (constant spawn overhead only)", sleeps, allocs)
	}
}

func TestContendedDispatchAllocBound(t *testing.T) {
	// 16 processes ping-ponging sleeps: >1000 dispatches through the
	// heap. Per-event allocations must stay well below one — the seed
	// dispatcher's boxing alone cost ~2 per event.
	const procs, sleeps = 16, 64
	var events uint64
	allocs := testing.AllocsPerRun(10, func() {
		s := New()
		for p := 0; p < procs; p++ {
			p := p
			s.Spawn(fmt.Sprintf("p%d", p), func(sp *Proc) {
				for k := 0; k < sleeps; k++ {
					sp.Sleep(float64(1 + (p+k)%3))
				}
			})
		}
		if err := s.Run(); err != nil {
			panic(err)
		}
		events = s.EventsProcessed()
	})
	if perEvent := allocs / float64(events); perEvent > 0.25 {
		t.Errorf("contended run: %v allocs over %d events = %.3f/event, want <= 0.25", allocs, events, perEvent)
	}
}
