package sim

// Chan is a typed message channel operating in virtual time. A Chan with
// capacity zero is a rendezvous channel: Send blocks until a receiver
// takes the value. With capacity > 0, Send blocks only when the buffer is
// full. Message order and waiter wake-up order are FIFO, so channel
// behaviour is deterministic.
//
// Chan transfers are instantaneous in virtual time: any transfer cost is
// the caller's responsibility (the transports layer costs separately).
type Chan[T any] struct {
	sim *Simulation
	cap int
	buf []T

	sendq []*sendWaiter[T]
	recvq []*recvWaiter[T]
}

type sendWaiter[T any] struct {
	p   *Proc
	val T
	ok  bool   // value taken by a receiver (vs. timed out)
	tm  *timer // deadline, nil for untimed sends
}

type recvWaiter[T any] struct {
	p   *Proc
	val T
	ok  bool
	tm  *timer // deadline, nil for untimed receives
}

// disarm cancels a timed waiter's deadline. Every wake path must call it
// before wake: a timed waiter has two possible resume sources (its timer
// and its peer), and the simulator's token protocol permits exactly one.
func (w *sendWaiter[T]) disarm() {
	if w.tm != nil {
		w.tm.cancel()
		w.tm = nil
	}
}

func (w *recvWaiter[T]) disarm() {
	if w.tm != nil {
		w.tm.cancel()
		w.tm = nil
	}
}

// NewChan creates a channel with the given buffer capacity (0 for
// rendezvous semantics).
func NewChan[T any](s *Simulation, capacity int) *Chan[T] {
	if capacity < 0 {
		panic("sim: negative channel capacity")
	}
	return &Chan[T]{sim: s, cap: capacity}
}

// Len returns the number of buffered messages.
func (c *Chan[T]) Len() int { return len(c.buf) }

// Send delivers v, blocking in virtual time until the channel can accept
// it.
func (c *Chan[T]) Send(p *Proc, v T) {
	// Direct hand-off to a waiting receiver preserves FIFO order only
	// when no messages are buffered ahead of v.
	if len(c.recvq) > 0 && len(c.buf) == 0 {
		w := c.recvq[0]
		c.recvq = c.recvq[1:]
		w.val, w.ok = v, true
		w.disarm()
		w.p.wake(c.sim.now)
		return
	}
	if len(c.buf) < c.cap {
		c.buf = append(c.buf, v)
		return
	}
	sw := &sendWaiter[T]{p: p, val: v}
	c.sendq = append(c.sendq, sw)
	p.block(blockedChanSend)
}

// TrySend delivers v without blocking; it reports whether the value was
// accepted.
func (c *Chan[T]) TrySend(v T) bool {
	if len(c.recvq) > 0 && len(c.buf) == 0 {
		w := c.recvq[0]
		c.recvq = c.recvq[1:]
		w.val, w.ok = v, true
		w.disarm()
		w.p.wake(c.sim.now)
		return true
	}
	if len(c.buf) < c.cap {
		c.buf = append(c.buf, v)
		return true
	}
	return false
}

// Recv blocks in virtual time until a message is available and returns it.
func (c *Chan[T]) Recv(p *Proc) T {
	if len(c.buf) > 0 {
		v := c.buf[0]
		c.buf = c.buf[1:]
		// A parked sender can now occupy the freed slot.
		if len(c.sendq) > 0 {
			sw := c.sendq[0]
			c.sendq = c.sendq[1:]
			c.buf = append(c.buf, sw.val)
			sw.ok = true
			sw.disarm()
			sw.p.wake(c.sim.now)
		}
		return v
	}
	if len(c.sendq) > 0 { // rendezvous: take directly from a parked sender
		sw := c.sendq[0]
		c.sendq = c.sendq[1:]
		sw.ok = true
		sw.disarm()
		sw.p.wake(c.sim.now)
		return sw.val
	}
	rw := &recvWaiter[T]{p: p}
	c.recvq = append(c.recvq, rw)
	p.block(blockedChanRecv)
	if !rw.ok {
		panic("sim: chan recv woke without a value")
	}
	return rw.val
}

// TryRecv returns a message if one is immediately available.
func (c *Chan[T]) TryRecv() (T, bool) {
	var zero T
	if len(c.buf) > 0 {
		v := c.buf[0]
		c.buf = c.buf[1:]
		if len(c.sendq) > 0 {
			sw := c.sendq[0]
			c.sendq = c.sendq[1:]
			c.buf = append(c.buf, sw.val)
			sw.ok = true
			sw.disarm()
			sw.p.wake(c.sim.now)
		}
		return v, true
	}
	if len(c.sendq) > 0 {
		sw := c.sendq[0]
		c.sendq = c.sendq[1:]
		sw.ok = true
		sw.disarm()
		sw.p.wake(c.sim.now)
		return sw.val, true
	}
	return zero, false
}

// RecvTimeout is Recv with a virtual-time deadline: it returns (v, true)
// if a message arrives within d microseconds of now, and (zero, false)
// otherwise. A message available immediately never times out, and a
// receive that completes in time is indistinguishable from a plain Recv —
// same wake instant, same dispatch count (the cancelled deadline event is
// discarded unprocessed). When a message lands exactly at the deadline
// the timeout wins: its event was scheduled first, so it has the earlier
// sequence number at the tied instant.
func (c *Chan[T]) RecvTimeout(p *Proc, d Time) (T, bool) {
	var zero T
	if d < 0 {
		panic("sim: negative recv timeout")
	}
	if v, ok := c.TryRecv(); ok {
		return v, true
	}
	rw := &recvWaiter[T]{p: p, tm: c.sim.scheduleTimer(p, c.sim.now+d)}
	c.recvq = append(c.recvq, rw)
	p.block(blockedChanRecvTimed)
	if rw.ok {
		return rw.val, true
	}
	// The deadline fired: withdraw from the waiter queue so a later
	// sender cannot hand a value (and a wake) to a process that left.
	for i, w := range c.recvq {
		if w == rw {
			c.recvq = append(c.recvq[:i], c.recvq[i+1:]...)
			break
		}
	}
	return zero, false
}

// SendTimeout is Send with a virtual-time deadline: it reports whether
// the channel accepted v within d microseconds of now. Like RecvTimeout,
// a send that completes in time is indistinguishable from a plain Send.
func (c *Chan[T]) SendTimeout(p *Proc, v T, d Time) bool {
	if d < 0 {
		panic("sim: negative send timeout")
	}
	if c.TrySend(v) {
		return true
	}
	sw := &sendWaiter[T]{p: p, val: v, tm: c.sim.scheduleTimer(p, c.sim.now+d)}
	c.sendq = append(c.sendq, sw)
	p.block(blockedChanSendTimed)
	if sw.ok {
		return true
	}
	for i, w := range c.sendq {
		if w == sw {
			c.sendq = append(c.sendq[:i], c.sendq[i+1:]...)
			break
		}
	}
	return false
}
