package sim

// Chan is a typed message channel operating in virtual time. A Chan with
// capacity zero is a rendezvous channel: Send blocks until a receiver
// takes the value. With capacity > 0, Send blocks only when the buffer is
// full. Message order and waiter wake-up order are FIFO, so channel
// behaviour is deterministic.
//
// Chan transfers are instantaneous in virtual time: any transfer cost is
// the caller's responsibility (the transports layer costs separately).
type Chan[T any] struct {
	sim *Simulation
	cap int
	buf []T

	sendq []*sendWaiter[T]
	recvq []*recvWaiter[T]
}

type sendWaiter[T any] struct {
	p   *Proc
	val T
}

type recvWaiter[T any] struct {
	p   *Proc
	val T
	ok  bool
}

// NewChan creates a channel with the given buffer capacity (0 for
// rendezvous semantics).
func NewChan[T any](s *Simulation, capacity int) *Chan[T] {
	if capacity < 0 {
		panic("sim: negative channel capacity")
	}
	return &Chan[T]{sim: s, cap: capacity}
}

// Len returns the number of buffered messages.
func (c *Chan[T]) Len() int { return len(c.buf) }

// Send delivers v, blocking in virtual time until the channel can accept
// it.
func (c *Chan[T]) Send(p *Proc, v T) {
	// Direct hand-off to a waiting receiver preserves FIFO order only
	// when no messages are buffered ahead of v.
	if len(c.recvq) > 0 && len(c.buf) == 0 {
		w := c.recvq[0]
		c.recvq = c.recvq[1:]
		w.val, w.ok = v, true
		w.p.wake(c.sim.now)
		return
	}
	if len(c.buf) < c.cap {
		c.buf = append(c.buf, v)
		return
	}
	sw := &sendWaiter[T]{p: p, val: v}
	c.sendq = append(c.sendq, sw)
	p.block("chan send")
}

// TrySend delivers v without blocking; it reports whether the value was
// accepted.
func (c *Chan[T]) TrySend(v T) bool {
	if len(c.recvq) > 0 && len(c.buf) == 0 {
		w := c.recvq[0]
		c.recvq = c.recvq[1:]
		w.val, w.ok = v, true
		w.p.wake(c.sim.now)
		return true
	}
	if len(c.buf) < c.cap {
		c.buf = append(c.buf, v)
		return true
	}
	return false
}

// Recv blocks in virtual time until a message is available and returns it.
func (c *Chan[T]) Recv(p *Proc) T {
	if len(c.buf) > 0 {
		v := c.buf[0]
		c.buf = c.buf[1:]
		// A parked sender can now occupy the freed slot.
		if len(c.sendq) > 0 {
			sw := c.sendq[0]
			c.sendq = c.sendq[1:]
			c.buf = append(c.buf, sw.val)
			sw.p.wake(c.sim.now)
		}
		return v
	}
	if len(c.sendq) > 0 { // rendezvous: take directly from a parked sender
		sw := c.sendq[0]
		c.sendq = c.sendq[1:]
		sw.p.wake(c.sim.now)
		return sw.val
	}
	rw := &recvWaiter[T]{p: p}
	c.recvq = append(c.recvq, rw)
	p.block("chan recv")
	if !rw.ok {
		panic("sim: chan recv woke without a value")
	}
	return rw.val
}

// TryRecv returns a message if one is immediately available.
func (c *Chan[T]) TryRecv() (T, bool) {
	var zero T
	if len(c.buf) > 0 {
		v := c.buf[0]
		c.buf = c.buf[1:]
		if len(c.sendq) > 0 {
			sw := c.sendq[0]
			c.sendq = c.sendq[1:]
			c.buf = append(c.buf, sw.val)
			sw.p.wake(c.sim.now)
		}
		return v, true
	}
	if len(c.sendq) > 0 {
		sw := c.sendq[0]
		c.sendq = c.sendq[1:]
		sw.p.wake(c.sim.now)
		return sw.val, true
	}
	return zero, false
}
