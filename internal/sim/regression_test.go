// Dispatcher regression goldens: the optimised scheduler (typed event
// heap, direct token hand-off, self-wake Sleep fast path) must be
// behaviourally indistinguishable from the original
// central-scheduler implementation. The constants below were captured
// by running these exact workloads on the pre-optimisation dispatcher;
// both virtual-time results and dispatch counts must match bit-for-bit.
package sim_test

import (
	"fmt"
	"testing"

	"camc/internal/arch"
	"camc/internal/core"
	"camc/internal/kernel"
	"camc/internal/measure"
	"camc/internal/sim"
)

// TestDispatcherRegression pins end-to-end collective latencies across
// architectures, algorithms and skew against the seed scheduler.
func TestDispatcherRegression(t *testing.T) {
	cases := []struct {
		name string
		got  func() float64
		want float64
	}{
		{"scatter-throttled8/knl/256K", func() float64 {
			return measure.Collective(arch.KNL(), core.KindScatter, core.ScatterThrottled(8), 256<<10, measure.Options{})
		}, 1784.8322188449858},
		{"gather-parallelwrite/bdw/64K", func() float64 {
			return measure.Collective(arch.Broadwell(), core.KindGather, core.GatherParallelWrite, 64<<10, measure.Options{})
		}, 882.9159999999997},
		{"bcast-scatterallgather/p8/1M", func() float64 {
			return measure.Collective(arch.Power8(), core.KindBcast, core.BcastScatterAllgather, 1<<20, measure.Options{})
		}, 1677.4148438738455},
		{"allgather-ring/knl/64K", func() float64 {
			return measure.Collective(arch.KNL(), core.KindAllgather, core.AllgatherRingSourceRead, 64<<10, measure.Options{})
		}, 4493.300609523824},
		{"alltoall-coll/knl/16K", func() float64 {
			return measure.Collective(arch.KNL(), core.KindAlltoall, core.AlltoallPairwiseColl, 16<<10, measure.Options{})
		}, 1144.9241523809517},
		{"bcast-knomial9-skew/knl/256K", func() float64 {
			return measure.Collective(arch.KNL(), core.KindBcast, core.BcastKnomialRead(9), 256<<10,
				measure.Options{SkewSeed: 42, MaxSkew: 1000})
		}, 473.43209402227103},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			if got := c.got(); got != c.want {
				t.Errorf("latency drifted from seed dispatcher: got %v, want %v", got, c.want)
			}
		})
	}
}

// TestDispatcherRegressionEventCounts pins EventsProcessed: the Sleep
// fast path must count its in-place clock advances exactly like the
// dispatches they replace.
func TestDispatcherRegressionEventCounts(t *testing.T) {
	oneToAll := func(c int) (float64, uint64) {
		a := arch.KNL()
		s := sim.New()
		node := kernel.NewNode(s, a)
		node.CopyData = false
		size := int64(64) * int64(a.PageSize)
		src := node.NewProcess(size*int64(c) + 1<<20)
		sa := src.Alloc(size * int64(c))
		for i := 0; i < c; i++ {
			i := i
			dst := node.NewProcess(size + 1<<20)
			da := dst.Alloc(size)
			s.Spawn(fmt.Sprintf("r%d", i), func(p *sim.Proc) {
				if err := dst.VMRead(p, da, src, sa+kernel.Addr(int64(i)*size), size); err != nil {
					panic(err)
				}
			})
		}
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return s.Now(), s.EventsProcessed()
	}
	for _, c := range []struct {
		readers    int
		wantNow    float64
		wantEvents uint64
	}{
		{1, 97.10902735562311, 12},
		{4, 133.58902735562313, 48},
		{16, 548.309027355623, 192},
	} {
		now, events := oneToAll(c.readers)
		if now != c.wantNow || events != c.wantEvents {
			t.Errorf("one-to-all c=%d: got (now=%v, events=%d), want (now=%v, events=%d)",
				c.readers, now, events, c.wantNow, c.wantEvents)
		}
	}

	// Rendezvous-channel ping-pong: exercises block/wake token hand-off.
	s := sim.New()
	ch := sim.NewChan[int](s, 0)
	s.Spawn("ping", func(p *sim.Proc) {
		for i := 0; i < 100; i++ {
			ch.Send(p, i)
			p.Sleep(0.5)
		}
	})
	s.Spawn("pong", func(p *sim.Proc) {
		for i := 0; i < 100; i++ {
			ch.Recv(p)
			p.Sleep(0.25)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if s.Now() != 50 || s.EventsProcessed() != 302 {
		t.Errorf("ping-pong: got (now=%v, events=%d), want (now=50, events=302)", s.Now(), s.EventsProcessed())
	}
}
