package sim

import (
	"fmt"
	"testing"
)

// BenchmarkDispatch measures the scheduler's per-event cost in the
// contended regime: 16 processes ping-ponging short sleeps so nearly
// every dispatch hands the token to a different process. The bodies
// loop b.N rounds inside one simulation, so the reported allocs/op are
// the steady-state dispatch loop alone — pinned at 0 by
// internal/sim/alloc_test.go.
func BenchmarkDispatch(b *testing.B) {
	const procs, sleeps = 16, 64
	b.ReportAllocs()
	s := New()
	for p := 0; p < procs; p++ {
		p := p
		s.Spawn(fmt.Sprintf("p%d", p), func(sp *Proc) {
			for i := 0; i < b.N; i++ {
				for k := 0; k < sleeps; k++ {
					sp.Sleep(float64(1 + (p+k)%3))
				}
			}
		})
	}
	b.ResetTimer()
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(s.EventsProcessed()), "ns/event")
}

// BenchmarkDispatchSelfWake measures the dominant pattern of the kernel
// hot path: one process advancing through a long run of sleeps with no
// competing event, the case the optimised scheduler short-circuits.
func BenchmarkDispatchSelfWake(b *testing.B) {
	b.ReportAllocs()
	const sleeps = 1024
	s := New()
	s.Spawn("solo", func(sp *Proc) {
		for i := 0; i < b.N; i++ {
			for k := 0; k < sleeps; k++ {
				sp.Sleep(0.5)
			}
		}
	})
	b.ResetTimer()
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(uint64(b.N)*sleeps), "ns/event")
}

// BenchmarkSchedule measures the raw event-heap push/pop cycle.
func BenchmarkSchedule(b *testing.B) {
	b.ReportAllocs()
	s := New()
	p := &Proc{sim: s, name: "x"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.schedule(p, float64(i%64))
		s.popEvent()
	}
}

// BenchmarkRespawn measures a full Reset+Spawn+Run cycle on a warmed
// simulation — the measure.Collective sweep pattern the Proc and timer
// free lists exist for. The only steady-state allocation left is the
// one bound-method closure per goroutine start.
func BenchmarkRespawn(b *testing.B) {
	const procs, sleeps = 16, 64
	names := make([]string, procs)
	bodies := make([]func(*Proc), procs)
	for p := 0; p < procs; p++ {
		p := p
		names[p] = fmt.Sprintf("p%d", p)
		bodies[p] = func(sp *Proc) {
			for k := 0; k < sleeps; k++ {
				sp.Sleep(float64(1 + (p+k)%3))
			}
		}
	}
	s := New()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Reset()
		for p := 0; p < procs; p++ {
			s.Spawn(names[p], bodies[p])
		}
		if err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
