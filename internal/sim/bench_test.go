package sim

import (
	"fmt"
	"testing"
)

// BenchmarkDispatch measures the scheduler's per-event cost in the
// contended regime: 16 processes ping-ponging short sleeps so nearly
// every dispatch hands the token to a different process.
func BenchmarkDispatch(b *testing.B) {
	const procs = 16
	b.ReportAllocs()
	events := 0
	for i := 0; i < b.N; i++ {
		s := New()
		for p := 0; p < procs; p++ {
			p := p
			s.Spawn(fmt.Sprintf("p%d", p), func(sp *Proc) {
				for k := 0; k < 64; k++ {
					sp.Sleep(float64(1 + (p+k)%3))
				}
			})
		}
		if err := s.Run(); err != nil {
			b.Fatal(err)
		}
		events = int(s.EventsProcessed())
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*events), "ns/event")
}

// BenchmarkDispatchSelfWake measures the dominant pattern of the kernel
// hot path: one process advancing through a long run of sleeps with no
// competing event, the case the optimised scheduler short-circuits.
func BenchmarkDispatchSelfWake(b *testing.B) {
	b.ReportAllocs()
	const sleeps = 1024
	for i := 0; i < b.N; i++ {
		s := New()
		s.Spawn("solo", func(sp *Proc) {
			for k := 0; k < sleeps; k++ {
				sp.Sleep(0.5)
			}
		})
		if err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*sleeps), "ns/event")
}

// BenchmarkSchedule measures the raw event-heap push/pop cycle.
func BenchmarkSchedule(b *testing.B) {
	b.ReportAllocs()
	s := New()
	p := &Proc{sim: s, name: "x"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.schedule(p, float64(i%64))
		s.popEvent()
	}
}
