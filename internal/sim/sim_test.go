package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSleepAdvancesClock(t *testing.T) {
	s := New()
	var end Time
	s.Spawn("a", func(p *Proc) {
		p.Sleep(5)
		p.Sleep(2.5)
		end = p.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if end != 7.5 {
		t.Fatalf("end time = %g, want 7.5", end)
	}
	if s.Now() != 7.5 {
		t.Fatalf("sim clock = %g, want 7.5", s.Now())
	}
}

func TestNegativeSleepPanics(t *testing.T) {
	s := New()
	s.Spawn("a", func(p *Proc) { p.Sleep(-1) })
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic from negative sleep")
		}
	}()
	_ = s.Run()
}

func TestSpawnOrderBreaksTies(t *testing.T) {
	s := New()
	var order []string
	for _, name := range []string{"a", "b", "c"} {
		name := name
		s.Spawn(name, func(p *Proc) {
			p.Sleep(1)
			order = append(order, name)
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got := fmt.Sprint(order); got != "[a b c]" {
		t.Fatalf("order = %v, want [a b c]", order)
	}
}

func TestProcPanicsPropagate(t *testing.T) {
	s := New()
	s.Spawn("boom", func(p *Proc) { panic("kapow") })
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic to propagate from Run")
		}
	}()
	_ = s.Run()
}

func TestSpawnDuringRun(t *testing.T) {
	s := New()
	var childEnd Time
	s.Spawn("parent", func(p *Proc) {
		p.Sleep(3)
		s.Spawn("child", func(q *Proc) {
			q.Sleep(4)
			childEnd = q.Now()
		})
		p.Sleep(1)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if childEnd != 7 {
		t.Fatalf("child end = %g, want 7", childEnd)
	}
}

func TestRendezvousChan(t *testing.T) {
	s := New()
	c := NewChan[int](s, 0)
	var got int
	var sendDone, recvDone Time
	s.Spawn("sender", func(p *Proc) {
		p.Sleep(10)
		c.Send(p, 42)
		sendDone = p.Now()
	})
	s.Spawn("receiver", func(p *Proc) {
		got = c.Recv(p)
		recvDone = p.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Fatalf("got %d, want 42", got)
	}
	if sendDone != 10 || recvDone != 10 {
		t.Fatalf("send/recv done at %g/%g, want 10/10", sendDone, recvDone)
	}
}

func TestBufferedChanFIFO(t *testing.T) {
	s := New()
	c := NewChan[int](s, 4)
	var got []int
	s.Spawn("sender", func(p *Proc) {
		for i := 0; i < 8; i++ {
			c.Send(p, i)
		}
	})
	s.Spawn("receiver", func(p *Proc) {
		for i := 0; i < 8; i++ {
			p.Sleep(1)
			got = append(got, c.Recv(p))
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("got[%d] = %d, want %d (FIFO violated)", i, v, i)
		}
	}
}

func TestChanBlockedSenderResumes(t *testing.T) {
	s := New()
	c := NewChan[string](s, 1)
	var resumeAt Time
	s.Spawn("sender", func(p *Proc) {
		c.Send(p, "one") // buffered
		c.Send(p, "two") // blocks until receiver drains
		resumeAt = p.Now()
	})
	s.Spawn("receiver", func(p *Proc) {
		p.Sleep(5)
		if v := c.Recv(p); v != "one" {
			t.Errorf("first recv = %q, want one", v)
		}
		if v := c.Recv(p); v != "two" {
			t.Errorf("second recv = %q, want two", v)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if resumeAt != 5 {
		t.Fatalf("sender resumed at %g, want 5", resumeAt)
	}
}

func TestTrySendTryRecv(t *testing.T) {
	s := New()
	c := NewChan[int](s, 1)
	s.Spawn("a", func(p *Proc) {
		if _, ok := c.TryRecv(); ok {
			t.Error("TryRecv on empty chan succeeded")
		}
		if !c.TrySend(1) {
			t.Error("TrySend on empty chan failed")
		}
		if c.TrySend(2) {
			t.Error("TrySend on full chan succeeded")
		}
		v, ok := c.TryRecv()
		if !ok || v != 1 {
			t.Errorf("TryRecv = %d,%v, want 1,true", v, ok)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDeadlockDetection(t *testing.T) {
	s := New()
	c := NewChan[int](s, 0)
	s.Spawn("stuck", func(p *Proc) { c.Recv(p) })
	err := s.Run()
	de, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("err = %v, want DeadlockError", err)
	}
	if len(de.Blocked) != 1 || de.Blocked[0] != "stuck: chan recv" {
		t.Fatalf("blocked = %v", de.Blocked)
	}
}

func TestMutexExclusionAndFIFO(t *testing.T) {
	s := New()
	m := NewMutex(s)
	var order []int
	for i := 0; i < 4; i++ {
		i := i
		s.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			p.Sleep(Time(i)) // stagger arrivals: 0,1,2,3
			m.Lock(p)
			order = append(order, i)
			p.Sleep(10) // hold long enough that all others queue
			m.Unlock()
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got := fmt.Sprint(order); got != "[0 1 2 3]" {
		t.Fatalf("lock order = %v, want FIFO [0 1 2 3]", order)
	}
	if s.Now() != 40 {
		t.Fatalf("end = %g, want 40 (serialized critical sections)", s.Now())
	}
}

func TestUnlockOfUnlockedMutexPanics(t *testing.T) {
	s := New()
	m := NewMutex(s)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Unlock()
}

func TestSemaphoreLimitsConcurrency(t *testing.T) {
	s := New()
	sem := NewSemaphore(s, 2)
	active, maxActive := 0, 0
	for i := 0; i < 6; i++ {
		s.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
			sem.Acquire(p, 1)
			active++
			if active > maxActive {
				maxActive = active
			}
			p.Sleep(1)
			active--
			sem.Release(1)
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if maxActive != 2 {
		t.Fatalf("max concurrency = %d, want 2", maxActive)
	}
	if s.Now() != 3 {
		t.Fatalf("end = %g, want 3 (6 jobs / 2 slots * 1us)", s.Now())
	}
}

func TestSemaphoreMultiPermitFIFO(t *testing.T) {
	s := New()
	sem := NewSemaphore(s, 3)
	var order []string
	s.Spawn("big", func(p *Proc) {
		p.Sleep(1)
		sem.Acquire(p, 3)
		order = append(order, "big")
		sem.Release(3)
	})
	s.Spawn("small", func(p *Proc) {
		p.Sleep(2)
		sem.Acquire(p, 1)
		order = append(order, "small")
		sem.Release(1)
	})
	s.Spawn("holder", func(p *Proc) {
		sem.Acquire(p, 1)
		p.Sleep(5)
		sem.Release(1)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// big queued first; small must not overtake it even though a permit
	// was free (strict FIFO prevents starvation).
	if got := fmt.Sprint(order); got != "[big small]" {
		t.Fatalf("order = %v, want [big small]", order)
	}
}

func TestBarrierReleasesTogetherAndIsReusable(t *testing.T) {
	s := New()
	b := NewBarrier(s, 3)
	var times []Time
	for i := 0; i < 3; i++ {
		i := i
		s.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			for round := 0; round < 2; round++ {
				p.Sleep(Time(i + 1)) // arrive staggered
				b.Wait(p)
				times = append(times, p.Now())
			}
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(times) != 6 {
		t.Fatalf("got %d releases, want 6", len(times))
	}
	for _, tm := range times[:3] {
		if tm != 3 {
			t.Fatalf("round 1 release at %g, want 3", tm)
		}
	}
	for _, tm := range times[3:] {
		if tm != 6 {
			t.Fatalf("round 2 release at %g, want 6", tm)
		}
	}
}

func TestWaitGroup(t *testing.T) {
	s := New()
	wg := NewWaitGroup(s)
	wg.Add(3)
	var doneAt Time
	for i := 0; i < 3; i++ {
		i := i
		s.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
			p.Sleep(Time(i * 2))
			wg.Done()
		})
	}
	s.Spawn("waiter", func(p *Proc) {
		wg.Wait(p)
		doneAt = p.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if doneAt != 4 {
		t.Fatalf("waiter released at %g, want 4", doneAt)
	}
}

func TestWaitGroupZeroDoesNotBlock(t *testing.T) {
	s := New()
	wg := NewWaitGroup(s)
	ran := false
	s.Spawn("waiter", func(p *Proc) {
		wg.Wait(p)
		ran = true
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("waiter blocked on zero waitgroup")
	}
}

// runPingPong builds a deterministic but nontrivial workload and returns
// a trace fingerprint, used to check reproducibility.
func runPingPong(seed int64, procs, msgs int) (Time, uint64, []int) {
	s := New()
	rng := rand.New(rand.NewSource(seed))
	chans := make([]*Chan[int], procs)
	for i := range chans {
		chans[i] = NewChan[int](s, rng.Intn(3))
	}
	delays := make([]Time, procs*msgs)
	for i := range delays {
		delays[i] = Time(rng.Intn(100)) / 10
	}
	var trace []int
	for i := 0; i < procs; i++ {
		i := i
		s.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			for m := 0; m < msgs; m++ {
				p.Sleep(delays[i*msgs+m])
				chans[(i+1)%procs].Send(p, i*1000+m)
				v := chans[i].Recv(p)
				trace = append(trace, v)
			}
		})
	}
	if err := s.Run(); err != nil {
		// A deadlock is a legitimate outcome for unlucky ring configs
		// (all-rendezvous channels); what matters is that it reproduces
		// identically, so fold it into the fingerprint.
		var dl *DeadlockError
		if !errors.As(err, &dl) {
			panic(err)
		}
		trace = append(trace, -len(dl.Blocked))
	}
	return s.Now(), s.EventsProcessed(), trace
}

func TestDeterminism(t *testing.T) {
	// Fixed generator source: a few percent of random ring configurations
	// legitimately deadlock (all-rendezvous channels with unlucky
	// timing), so time-seeded generation made this test flaky.
	cfg := &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(7))}
	f := func(seed int64) bool {
		t1, e1, tr1 := runPingPong(seed, 4, 5)
		t2, e2, tr2 := runPingPong(seed, 4, 5)
		if t1 != t2 || e1 != e2 || len(tr1) != len(tr2) {
			return false
		}
		for i := range tr1 {
			if tr1[i] != tr2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestClockMonotonic(t *testing.T) {
	f := func(seed int64) bool {
		s := New()
		rng := rand.New(rand.NewSource(seed))
		last := Time(-1)
		ok := true
		for i := 0; i < 5; i++ {
			s.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
				for j := 0; j < 10; j++ {
					p.Sleep(Time(rng.Intn(50)) / 7)
					if p.Now() < last {
						ok = false
					}
					last = p.Now()
				}
			})
		}
		if err := s.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestManyProcsStress(t *testing.T) {
	s := New()
	n := 500
	b := NewBarrier(s, n)
	for i := 0; i < n; i++ {
		i := i
		s.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			p.Sleep(Time(i % 17))
			b.Wait(p)
			p.Sleep(1)
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if s.Now() != 17 {
		t.Fatalf("end = %g, want 17", s.Now())
	}
}
