package sim_test

import (
	"fmt"

	"camc/internal/sim"
)

// Two processes exchange a value over a rendezvous channel in virtual
// time; the receiver blocks until the sender arrives at t=5µs.
func Example() {
	s := sim.New()
	c := sim.NewChan[string](s, 0)
	s.Spawn("producer", func(p *sim.Proc) {
		p.Sleep(5)
		c.Send(p, "payload")
	})
	s.Spawn("consumer", func(p *sim.Proc) {
		v := c.Recv(p)
		fmt.Printf("got %q at t=%.0fus\n", v, p.Now())
	})
	if err := s.Run(); err != nil {
		panic(err)
	}
	// Output: got "payload" at t=5us
}

// A semaphore bounds concurrency the way the paper's throttled
// collectives do: six 10µs jobs through two slots take three waves.
func ExampleSemaphore() {
	s := sim.New()
	sem := sim.NewSemaphore(s, 2)
	for i := 0; i < 6; i++ {
		s.Spawn(fmt.Sprintf("job%d", i), func(p *sim.Proc) {
			sem.Acquire(p, 1)
			p.Sleep(10)
			sem.Release(1)
		})
	}
	if err := s.Run(); err != nil {
		panic(err)
	}
	fmt.Printf("all jobs done at t=%.0fus\n", s.Now())
	// Output: all jobs done at t=30us
}

// A barrier releases every participant at the time the last one arrives.
func ExampleBarrier() {
	s := sim.New()
	b := sim.NewBarrier(s, 3)
	for i := 1; i <= 3; i++ {
		i := i
		s.Spawn(fmt.Sprintf("p%d", i), func(p *sim.Proc) {
			p.Sleep(float64(i * 10)) // arrive at 10, 20, 30
			b.Wait(p)
			if i == 1 {
				fmt.Printf("released at t=%.0fus\n", p.Now())
			}
		})
	}
	if err := s.Run(); err != nil {
		panic(err)
	}
	// Output: released at t=30us
}
