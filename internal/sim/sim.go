// Package sim implements a deterministic process-oriented discrete-event
// simulator used as the execution substrate for the simulated multi-core
// node, kernel, and MPI runtime.
//
// Simulated processes are goroutines, but exactly one of them runs at any
// instant: a single scheduling token circulates between the processes and
// the scheduler. All synchronization primitives (Chan, Mutex, Semaphore,
// Barrier, WaitGroup) operate in virtual time with FIFO waiter queues and
// a (time, sequence) ordered event heap, so a simulation run is
// bit-for-bit reproducible.
//
// The dispatcher is built for throughput: the event heap is a concrete
// typed heap (no interface boxing per event), a process that yields hands
// the token directly to the next runnable process (one channel hand-off
// per dispatch instead of a round-trip through a scheduler goroutine),
// and the dominant self-wake Sleep pattern — no pending event before the
// sleeper's own wake-up — advances the clock in place with no heap or
// channel traffic at all. None of this changes virtual-time results or
// dispatch counts; TestDispatcherRegression pins that equivalence.
//
// Virtual time is a float64 measured in microseconds, matching the unit
// the reproduced paper reports.
package sim

import (
	"fmt"
	"sort"
)

// Time is a point in virtual time, in microseconds.
type Time = float64

// Simulation owns the virtual clock, the event heap and all processes.
// The zero value is not usable; call New.
type Simulation struct {
	now       Time
	seq       uint64
	events    eventHeap
	sched     chan schedMsg
	procs     []*Proc
	live      int // procs spawned and not yet finished
	running   bool
	processed uint64 // events dispatched, for stats/tests

	// Free lists: finished Proc shells (resume channel included) and
	// consumed timer objects are recycled instead of re-allocated, so a
	// harness that runs many simulations back to back (Reset between
	// runs) and the timed-wait hot path stay allocation-free in steady
	// state.
	procFree  []*Proc
	timerFree []*timer
}

// blockedOn labels for deadlock diagnostics, interned as package
// constants so blocking sites share one string value instead of
// repeating literals at every call site.
const (
	blockedSleep         = "sleep"
	blockedChanSend      = "chan send"
	blockedChanRecv      = "chan recv"
	blockedChanSendTimed = "chan send (timed)"
	blockedChanRecvTimed = "chan recv (timed)"
	blockedMutex         = "mutex lock"
	blockedSemaphore     = "semaphore acquire"
	blockedBarrier       = "barrier wait"
	blockedWaitGroup     = "waitgroup wait"
)

// schedMsg returns the scheduling token to Run: either the heap drained
// with the sender holding the token, or the sender's body panicked.
type schedMsg struct {
	proc     *Proc
	panicVal any
}

// New returns an empty simulation at time zero.
func New() *Simulation {
	return &Simulation{sched: make(chan schedMsg)}
}

// Now returns the current virtual time in microseconds.
func (s *Simulation) Now() Time { return s.now }

// EventsProcessed returns the number of scheduler dispatches so far.
func (s *Simulation) EventsProcessed() uint64 { return s.processed }

// Proc is a simulated process. All methods must be called from the
// goroutine running the process body.
type Proc struct {
	sim       *Simulation
	id        int
	name      string
	resume    chan struct{}
	fn        func(p *Proc) // body, handed to the goroutine via the struct
	blockedOn string        // diagnostic: what primitive the proc is blocked on
	started   bool
	finished  bool
}

// ID returns the process's spawn index.
func (p *Proc) ID() int { return p.id }

// Name returns the process's diagnostic name.
func (p *Proc) Name() string { return p.name }

// Sim returns the simulation this process belongs to.
func (p *Proc) Sim() *Simulation { return p.sim }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.sim.now }

type event struct {
	t   Time
	seq uint64
	p   *Proc
	tm  *timer // non-nil for cancellable timer events
}

// timer is a cancellable scheduled wake-up backing the timed channel
// waits. Cancelling does not remove the heap event; the dispatcher
// discards cancelled events unprocessed, so a cancelled timer costs one
// heap pop and nothing else. A fired timer is inert: cancelling it
// afterwards is a no-op.
type timer struct {
	stopped bool
}

func (tm *timer) cancel() { tm.stopped = true }

// scheduleTimer schedules a cancellable wake-up for p at time at. Unlike
// schedule, the resulting event can be disarmed before it fires, which is
// what lets a timed waiter be woken by either a peer or its deadline
// without ever receiving two resumes. Timer objects come off a free
// list: each timer backs exactly one heap event, and no waiter touches
// its timer after the event is popped (a disarm always happens before
// the peer's wake, and the timeout path never disarms), so the
// dispatcher can recycle it at pop time.
func (s *Simulation) scheduleTimer(p *Proc, at Time) *timer {
	var tm *timer
	if n := len(s.timerFree); n > 0 {
		tm = s.timerFree[n-1]
		s.timerFree[n-1] = nil
		s.timerFree = s.timerFree[:n-1]
	} else {
		tm = &timer{}
	}
	s.seq++
	s.events.push(event{t: at, seq: s.seq, p: p, tm: tm})
	return tm
}

// freeTimer returns a timer whose heap event has been consumed to the
// free list.
func (s *Simulation) freeTimer(tm *timer) {
	tm.stopped = false
	s.timerFree = append(s.timerFree, tm)
}

// eventHeap is a concrete binary min-heap ordered by (time, sequence).
// Hand-rolled rather than container/heap so that push and pop move event
// values directly instead of boxing them through interface{} — the heap
// is touched on every dispatch, and the boxing allocation dominated the
// simulator's allocation profile.
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(e event) {
	*h = append(*h, e)
	q := *h
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
}

// minShrinkCap is the backing-array size below which pop never shrinks:
// steady-state heaps (tens of events) keep one stable allocation.
const minShrinkCap = 1024

func (h *eventHeap) pop() event {
	q := *h
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n] = event{} // drop the *Proc reference
	q = q[:n]
	// Shrink a once-large backing array when occupancy falls to an
	// eighth of it, so a transient burst (a wide barrier fan-in, a
	// many-rank spawn wave) doesn't pin its high-water memory for the
	// rest of the process. Halving the capacity keeps the shrink
	// geometric — push doubles, pop halves, so no push/pop sequence can
	// oscillate across the boundary.
	if c := cap(q); c >= minShrinkCap && n <= c/8 {
		nq := make(eventHeap, n, c/2)
		copy(nq, q)
		q = nq
	}
	*h = q
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && q.less(l, smallest) {
			smallest = l
		}
		if r < n && q.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		q[i], q[smallest] = q[smallest], q[i]
		i = smallest
	}
	return top
}

func (s *Simulation) schedule(p *Proc, at Time) {
	s.seq++
	s.events.push(event{t: at, seq: s.seq, p: p})
}

func (s *Simulation) popEvent() event { return s.events.pop() }

// dispatch outcomes for dispatchNext.
const (
	dispatchedNone  = iota // heap drained; caller still holds the token
	dispatchedOther        // token handed to another process
	dispatchedSelf         // earliest event was the caller's own: clock
	// advanced in place, token kept (timed waits whose own deadline is
	// the only pending event — handing the token through the resume
	// channel to oneself would deadlock the goroutine)
)

// dispatchNext pops the earliest event and hands the scheduling token to
// its process. self is the current token holder (nil when called from
// Run or a finishing process). Only the current token holder may call
// it.
func (s *Simulation) dispatchNext(self *Proc) int {
	for {
		if len(s.events) == 0 {
			return dispatchedNone
		}
		e := s.events.pop()
		if e.tm != nil {
			stopped := e.tm.stopped
			// A timer's single heap event is now consumed either way, and
			// no waiter dereferences its timer after this point, so the
			// object goes straight back on the free list.
			s.freeTimer(e.tm)
			if stopped {
				// Cancelled timer: discard without advancing the clock or
				// counting a dispatch, so timed waits that complete in time
				// leave no trace in either the timeline or the stats.
				continue
			}
		}
		if e.t < s.now {
			panic(fmt.Sprintf("sim: time went backwards: %g < %g", e.t, s.now))
		}
		s.now = e.t
		s.processed++
		e.p.blockedOn = ""
		if e.p == self {
			return dispatchedSelf
		}
		e.p.resume <- struct{}{}
		return dispatchedOther
	}
}

// yieldToken hands the token to the next runnable process (or back to
// the scheduler when the heap is empty) and parks until resumed. When
// the next event is the caller's own wake-up it returns immediately
// without parking.
func (p *Proc) yieldToken() {
	s := p.sim
	switch s.dispatchNext(p) {
	case dispatchedSelf:
		return
	case dispatchedNone:
		s.sched <- schedMsg{proc: p}
	}
	<-p.resume
}

// Spawn registers a new process whose body is fn. If called before Run,
// the process starts at time zero; if called from a running process, it
// starts at the current virtual time. Spawn order breaks scheduling ties.
//
// Proc shells (struct plus resume channel) come off the free list that
// Reset fills, so a harness running many simulations back to back only
// pays one goroutine start per spawn; the body travels through the Proc
// struct rather than a captured closure.
func (s *Simulation) Spawn(name string, fn func(p *Proc)) *Proc {
	var p *Proc
	if n := len(s.procFree); n > 0 {
		p = s.procFree[n-1]
		s.procFree[n-1] = nil
		s.procFree = s.procFree[:n-1]
		p.id = len(s.procs)
		p.name = name
		p.blockedOn = ""
		p.started, p.finished = false, false
	} else {
		p = &Proc{sim: s, id: len(s.procs), name: name, resume: make(chan struct{})}
	}
	p.fn = fn
	s.procs = append(s.procs, p)
	s.live++
	go p.main()
	s.schedule(p, s.now)
	return p
}

// main is the goroutine body of a spawned process: wait for the first
// token delivery, run fn, then pass the token on and exit.
func (p *Proc) main() {
	<-p.resume
	p.started = true
	fn := p.fn
	p.fn = nil
	panicked := p.runBody(fn)
	p.finished = true
	s := p.sim
	s.live--
	if panicked != nil {
		s.sched <- schedMsg{proc: p, panicVal: panicked}
		return
	}
	if s.dispatchNext(nil) == dispatchedNone {
		s.sched <- schedMsg{proc: p}
	}
}

// runBody runs fn, converting a body panic into a value for Run to
// re-raise.
func (p *Proc) runBody(fn func(*Proc)) (panicked any) {
	defer func() {
		if r := recover(); r != nil {
			panicked = r
		}
	}()
	fn(p)
	return nil
}

// Reset returns the simulation to an empty time-zero state while
// keeping allocated capacity: the event-heap backing array stays, and
// finished Proc shells (resume channels included) plus any timers still
// parked in dropped events go to the free lists for the next run.
// Reset panics if any spawned process has not finished — a live
// process's goroutine still references the state being recycled, so
// only a cleanly drained simulation (Run returned nil) may be reused.
func (s *Simulation) Reset() {
	if s.running {
		panic("sim: Reset during Run")
	}
	if s.live != 0 {
		panic(fmt.Sprintf("sim: Reset with %d unfinished processes", s.live))
	}
	for i := range s.events {
		if tm := s.events[i].tm; tm != nil {
			s.freeTimer(tm)
		}
		s.events[i] = event{}
	}
	s.events = s.events[:0]
	for i, p := range s.procs {
		s.procFree = append(s.procFree, p)
		s.procs[i] = nil
	}
	s.procs = s.procs[:0]
	s.now, s.seq, s.processed = 0, 0, 0
}

// DeadlockError reports that the event heap drained while processes were
// still blocked on synchronization primitives.
type DeadlockError struct {
	Time    Time
	Blocked []string // "name: blockedOn" for each stuck process
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at t=%.3fus, %d blocked: %v", e.Time, len(e.Blocked), e.Blocked)
}

// Run dispatches events until every process has finished. It returns a
// *DeadlockError if processes remain blocked with no pending events, and
// re-panics any panic raised inside a process body.
//
// Run seeds the token by dispatching the first event; after that the
// token passes directly from process to process and only returns here
// when the heap drains or a process panics.
func (s *Simulation) Run() error {
	if s.running {
		panic("sim: Run called reentrantly")
	}
	s.running = true
	defer func() { s.running = false }()
	for s.dispatchNext(nil) != dispatchedNone {
		msg := <-s.sched
		if msg.panicVal != nil {
			panic(fmt.Sprintf("sim: process %q panicked: %v", msg.proc.name, msg.panicVal))
		}
	}
	if s.live > 0 {
		var stuck []string
		for _, p := range s.procs {
			if p.started && !p.finished {
				stuck = append(stuck, p.name+": "+p.blockedOn)
			}
		}
		sort.Strings(stuck)
		return &DeadlockError{Time: s.now, Blocked: stuck}
	}
	return nil
}

// block parks the calling process with no scheduled wake-up. Some other
// process must call wake. why is recorded for deadlock diagnostics.
func (p *Proc) block(why string) {
	p.blockedOn = why
	p.yieldToken()
}

// wake schedules a blocked process to resume at time at.
func (p *Proc) wake(at Time) { p.sim.schedule(p, at) }

// Sleep advances the process's virtual time by d microseconds. d must be
// non-negative; Sleep(0) yields to other processes scheduled at the same
// instant.
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative sleep %g", d))
	}
	s := p.sim
	t := s.now + d
	// Fast path: no pending event precedes our wake-up (ties go to the
	// earlier-scheduled event, which any pending event is), so the token
	// would come straight back — advance the clock in place. This is the
	// dominant dispatch pattern in the kernel's chunked copy loops.
	if len(s.events) == 0 || t < s.events[0].t {
		s.now = t
		s.processed++
		return
	}
	s.schedule(p, t)
	p.blockedOn = blockedSleep
	p.yieldToken()
}

// Yield lets other processes scheduled at the current instant run.
func (p *Proc) Yield() { p.Sleep(0) }
