// Package sim implements a deterministic process-oriented discrete-event
// simulator used as the execution substrate for the simulated multi-core
// node, kernel, and MPI runtime.
//
// Simulated processes are goroutines, but exactly one of them runs at any
// instant: a single scheduling token is handed from the scheduler to the
// runnable process and back. All synchronization primitives (Chan, Mutex,
// Semaphore, Barrier, WaitGroup) operate in virtual time with FIFO waiter
// queues and a (time, sequence) ordered event heap, so a simulation run is
// bit-for-bit reproducible.
//
// Virtual time is a float64 measured in microseconds, matching the unit
// the reproduced paper reports.
package sim

import (
	"container/heap"
	"fmt"
	"sort"
)

// Time is a point in virtual time, in microseconds.
type Time = float64

// Simulation owns the virtual clock, the event heap and all processes.
// The zero value is not usable; call New.
type Simulation struct {
	now       Time
	seq       uint64
	events    eventHeap
	yield     chan yieldMsg
	procs     []*Proc
	live      int // procs spawned and not yet finished
	blocked   int // procs blocked on a primitive with no pending event
	running   bool
	processed uint64 // events dispatched, for stats/tests
}

type yieldMsg struct {
	done     bool
	panicVal any
}

// New returns an empty simulation at time zero.
func New() *Simulation {
	return &Simulation{yield: make(chan yieldMsg)}
}

// Now returns the current virtual time in microseconds.
func (s *Simulation) Now() Time { return s.now }

// EventsProcessed returns the number of scheduler dispatches so far.
func (s *Simulation) EventsProcessed() uint64 { return s.processed }

// Proc is a simulated process. All methods must be called from the
// goroutine running the process body.
type Proc struct {
	sim       *Simulation
	id        int
	name      string
	resume    chan struct{}
	blockedOn string // diagnostic: what primitive the proc is blocked on
	started   bool
	finished  bool
}

// ID returns the process's spawn index.
func (p *Proc) ID() int { return p.id }

// Name returns the process's diagnostic name.
func (p *Proc) Name() string { return p.name }

// Sim returns the simulation this process belongs to.
func (p *Proc) Sim() *Simulation { return p.sim }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.sim.now }

type event struct {
	t   Time
	seq uint64
	p   *Proc
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (s *Simulation) schedule(p *Proc, at Time) {
	s.seq++
	heap.Push(&s.events, event{t: at, seq: s.seq, p: p})
}

// Spawn registers a new process whose body is fn. If called before Run,
// the process starts at time zero; if called from a running process, it
// starts at the current virtual time. Spawn order breaks scheduling ties.
func (s *Simulation) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{sim: s, id: len(s.procs), name: name, resume: make(chan struct{})}
	s.procs = append(s.procs, p)
	s.live++
	go func() {
		<-p.resume
		p.started = true
		var panicked any
		func() {
			defer func() {
				if r := recover(); r != nil {
					panicked = r
				}
			}()
			fn(p)
		}()
		p.finished = true
		s.yield <- yieldMsg{done: true, panicVal: panicked}
	}()
	s.schedule(p, s.now)
	return p
}

// DeadlockError reports that the event heap drained while processes were
// still blocked on synchronization primitives.
type DeadlockError struct {
	Time    Time
	Blocked []string // "name: blockedOn" for each stuck process
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at t=%.3fus, %d blocked: %v", e.Time, len(e.Blocked), e.Blocked)
}

// Run dispatches events until every process has finished. It returns a
// *DeadlockError if processes remain blocked with no pending events, and
// re-panics any panic raised inside a process body.
func (s *Simulation) Run() error {
	if s.running {
		panic("sim: Run called reentrantly")
	}
	s.running = true
	defer func() { s.running = false }()
	for len(s.events) > 0 {
		e := heap.Pop(&s.events).(event)
		if e.t < s.now {
			panic(fmt.Sprintf("sim: time went backwards: %g < %g", e.t, s.now))
		}
		s.now = e.t
		s.processed++
		e.p.blockedOn = ""
		e.p.resume <- struct{}{}
		msg := <-s.yield
		if msg.panicVal != nil {
			panic(fmt.Sprintf("sim: process %q panicked: %v", e.p.name, msg.panicVal))
		}
		if msg.done {
			s.live--
		}
	}
	if s.live > 0 {
		var stuck []string
		for _, p := range s.procs {
			if p.started && !p.finished {
				stuck = append(stuck, p.name+": "+p.blockedOn)
			}
		}
		sort.Strings(stuck)
		return &DeadlockError{Time: s.now, Blocked: stuck}
	}
	return nil
}

// block parks the calling process with no scheduled wake-up. Some other
// process must call wake. why is recorded for deadlock diagnostics.
func (p *Proc) block(why string) {
	p.blockedOn = why
	p.sim.yield <- yieldMsg{}
	<-p.resume
}

// wake schedules a blocked process to resume at time at.
func (p *Proc) wake(at Time) { p.sim.schedule(p, at) }

// Sleep advances the process's virtual time by d microseconds. d must be
// non-negative; Sleep(0) yields to other processes scheduled at the same
// instant.
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative sleep %g", d))
	}
	p.sim.schedule(p, p.sim.now+d)
	p.blockedOn = "sleep"
	p.sim.yield <- yieldMsg{}
	<-p.resume
}

// Yield lets other processes scheduled at the current instant run.
func (p *Proc) Yield() { p.Sleep(0) }
