package sim

import "testing"

// TestRecvTimeoutExpires pins the basic deadline semantics: nothing
// arrives, the receiver resumes exactly at now+d with ok=false.
func TestRecvTimeoutExpires(t *testing.T) {
	s := New()
	c := NewChan[int](s, 0)
	s.Spawn("rx", func(p *Proc) {
		v, ok := c.RecvTimeout(p, 25)
		if ok {
			t.Errorf("got value %d, want timeout", v)
		}
		if p.Now() != 25 {
			t.Errorf("woke at %g, want 25", p.Now())
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestRecvTimeoutDelivery: a message inside the window is delivered at
// its true arrival instant, and the cancelled deadline never fires.
func TestRecvTimeoutDelivery(t *testing.T) {
	s := New()
	c := NewChan[int](s, 0)
	s.Spawn("rx", func(p *Proc) {
		v, ok := c.RecvTimeout(p, 100)
		if !ok || v != 7 {
			t.Errorf("got (%d,%v), want (7,true)", v, ok)
		}
		if p.Now() != 10 {
			t.Errorf("woke at %g, want 10", p.Now())
		}
		// The cancelled deadline must not resurface later.
		p.Sleep(200)
	})
	s.Spawn("tx", func(p *Proc) {
		p.Sleep(10)
		c.Send(p, 7)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if s.Now() != 210 {
		t.Errorf("end time %g, want 210", s.Now())
	}
}

// TestRecvTimeoutImmediate: a buffered message never times out, even
// with a zero deadline.
func TestRecvTimeoutImmediate(t *testing.T) {
	s := New()
	c := NewChan[int](s, 1)
	s.Spawn("a", func(p *Proc) {
		c.Send(p, 3)
		if v, ok := c.RecvTimeout(p, 0); !ok || v != 3 {
			t.Errorf("got (%d,%v), want (3,true)", v, ok)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestRecvTimeoutWithdraws: after a timeout the waiter must be gone from
// the queue, so a later send pairs with the *next* receiver (or buffers)
// rather than waking a process that left.
func TestRecvTimeoutWithdraws(t *testing.T) {
	s := New()
	c := NewChan[int](s, 1)
	got := -1
	s.Spawn("rx1", func(p *Proc) {
		if _, ok := c.RecvTimeout(p, 5); ok {
			t.Error("rx1 expected timeout")
		}
		p.Sleep(100) // stay alive past the send; must not be woken by it
	})
	s.Spawn("tx", func(p *Proc) {
		p.Sleep(20)
		c.Send(p, 9)
	})
	s.Spawn("rx2", func(p *Proc) {
		p.Sleep(30)
		got = c.Recv(p)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 9 {
		t.Errorf("rx2 got %d, want 9", got)
	}
}

// TestSendTimeoutExpires: a full channel with no receiver times the
// sender out at the deadline, and the value is not left behind.
func TestSendTimeoutExpires(t *testing.T) {
	s := New()
	c := NewChan[int](s, 1)
	s.Spawn("tx", func(p *Proc) {
		c.Send(p, 1) // fills the buffer
		if c.SendTimeout(p, 2, 15) {
			t.Error("send into full chan with no receiver succeeded")
		}
		if p.Now() != 15 {
			t.Errorf("woke at %g, want 15", p.Now())
		}
	})
	s.Spawn("late-rx", func(p *Proc) {
		p.Sleep(50)
		if v := c.Recv(p); v != 1 {
			t.Errorf("got %d, want 1 (timed-out value must be withdrawn)", v)
		}
		if v, ok := c.TryRecv(); ok {
			t.Errorf("unexpected second value %d", v)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestSendTimeoutCompletes: a receiver inside the window unblocks the
// timed sender at the true hand-off instant.
func TestSendTimeoutCompletes(t *testing.T) {
	s := New()
	c := NewChan[int](s, 0)
	s.Spawn("tx", func(p *Proc) {
		if !c.SendTimeout(p, 4, 100) {
			t.Error("send timed out despite receiver at t=10")
		}
		if p.Now() != 10 {
			t.Errorf("woke at %g, want 10", p.Now())
		}
	})
	s.Spawn("rx", func(p *Proc) {
		p.Sleep(10)
		if v := c.Recv(p); v != 4 {
			t.Errorf("got %d, want 4", v)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestTimeoutTieGoesToDeadline documents the deterministic tie rule: a
// message landing exactly at the deadline instant loses to the timeout,
// because the deadline event carries the earlier sequence number.
func TestTimeoutTieGoesToDeadline(t *testing.T) {
	s := New()
	c := NewChan[int](s, 0)
	s.Spawn("rx", func(p *Proc) {
		if _, ok := c.RecvTimeout(p, 10); ok {
			t.Error("tie at the deadline should time out")
		}
	})
	s.Spawn("tx", func(p *Proc) {
		p.Sleep(10)
		if c.TrySend(5) {
			t.Error("TrySend found a waiter that should have withdrawn")
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestTimedRecvDispatchTransparent: a timed receive that completes in
// time must not change the dispatch count relative to a plain receive —
// the cancelled deadline is discarded unprocessed. This is what makes a
// liveness-enabled healthy run latency- and schedule-identical to a
// disabled one.
func TestTimedRecvDispatchTransparent(t *testing.T) {
	run := func(timed bool) (Time, uint64) {
		s := New()
		c := NewChan[int](s, 0)
		s.Spawn("rx", func(p *Proc) {
			if timed {
				if _, ok := c.RecvTimeout(p, 1000); !ok {
					t.Error("unexpected timeout")
				}
			} else {
				c.Recv(p)
			}
			p.Sleep(5)
		})
		s.Spawn("tx", func(p *Proc) {
			p.Sleep(3)
			c.Send(p, 1)
			p.Sleep(7)
		})
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return s.Now(), s.EventsProcessed()
	}
	plainT, plainN := run(false)
	timedT, timedN := run(true)
	if plainT != timedT || plainN != timedN {
		t.Errorf("timed run (t=%g, n=%d) differs from plain (t=%g, n=%d)",
			timedT, timedN, plainT, plainN)
	}
}
