package sim

import "testing"

func TestMutexTryLockAndState(t *testing.T) {
	s := New()
	m := NewMutex(s)
	s.Spawn("a", func(p *Proc) {
		if m.Locked() {
			t.Error("fresh mutex locked")
		}
		if !m.TryLock() {
			t.Error("TryLock on free mutex failed")
		}
		if m.TryLock() {
			t.Error("TryLock on held mutex succeeded")
		}
		if !m.Locked() {
			t.Error("held mutex reports unlocked")
		}
		if m.Waiters() != 0 {
			t.Errorf("waiters = %d", m.Waiters())
		}
		m.Unlock()
		if m.Locked() {
			t.Error("released mutex reports locked")
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMutexWaitersCount(t *testing.T) {
	s := New()
	m := NewMutex(s)
	s.Spawn("holder", func(p *Proc) {
		m.Lock(p)
		p.Sleep(10)
		if m.Waiters() != 2 {
			t.Errorf("waiters = %d, want 2", m.Waiters())
		}
		m.Unlock()
	})
	for i := 0; i < 2; i++ {
		s.Spawn("waiter", func(p *Proc) {
			p.Sleep(1)
			m.Lock(p)
			m.Unlock()
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSemaphorePanics(t *testing.T) {
	s := New()
	for _, f := range []func(){
		func() { NewSemaphore(s, -1) },
		func() { NewSemaphore(s, 1).Release(0) },
		func() { NewBarrier(s, 0) },
		func() { NewChan[int](s, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestSemaphoreAcquireZeroPanics(t *testing.T) {
	s := New()
	sem := NewSemaphore(s, 1)
	s.Spawn("a", func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for Acquire(0)")
			}
		}()
		sem.Acquire(p, 0)
	})
	defer func() { recover() }() // the proc panic propagates through Run
	_ = s.Run()
}

func TestWaitGroupNegativePanics(t *testing.T) {
	s := New()
	wg := NewWaitGroup(s)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	wg.Add(-1)
}

func TestSemaphoreAvailable(t *testing.T) {
	s := New()
	sem := NewSemaphore(s, 3)
	s.Spawn("a", func(p *Proc) {
		sem.Acquire(p, 2)
		if sem.Available() != 1 {
			t.Errorf("available = %d, want 1", sem.Available())
		}
		sem.Release(2)
		if sem.Available() != 3 {
			t.Errorf("available = %d, want 3", sem.Available())
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestChanLen(t *testing.T) {
	s := New()
	c := NewChan[int](s, 4)
	s.Spawn("a", func(p *Proc) {
		c.Send(p, 1)
		c.Send(p, 2)
		if c.Len() != 2 {
			t.Errorf("len = %d, want 2", c.Len())
		}
		c.Recv(p)
		if c.Len() != 1 {
			t.Errorf("len = %d, want 1", c.Len())
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestProcAccessors(t *testing.T) {
	s := New()
	var id int
	var name string
	p := s.Spawn("myproc", func(p *Proc) {
		id = p.ID()
		name = p.Name()
		if p.Sim() != s {
			t.Error("Sim() mismatch")
		}
		p.Yield()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if id != p.ID() || name != "myproc" {
		t.Fatalf("accessors: id=%d name=%q", id, name)
	}
}

func TestRunReentrantPanics(t *testing.T) {
	s := New()
	s.Spawn("a", func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("expected reentrant Run panic")
			}
		}()
		_ = s.Run()
	})
	defer func() { recover() }()
	_ = s.Run()
}
