package sim

// Mutex is a mutual-exclusion lock in virtual time with FIFO hand-off.
type Mutex struct {
	sim     *Simulation
	held    bool
	waiters []*Proc
}

// NewMutex returns an unlocked mutex.
func NewMutex(s *Simulation) *Mutex { return &Mutex{sim: s} }

// Lock acquires the mutex, blocking in virtual time while it is held.
func (m *Mutex) Lock(p *Proc) {
	if !m.held {
		m.held = true
		return
	}
	m.waiters = append(m.waiters, p)
	p.block(blockedMutex)
	// Ownership was transferred to us by Unlock; m.held stays true.
}

// TryLock acquires the mutex if it is free.
func (m *Mutex) TryLock() bool {
	if m.held {
		return false
	}
	m.held = true
	return true
}

// Locked reports whether the mutex is currently held.
func (m *Mutex) Locked() bool { return m.held }

// Waiters returns the number of processes queued on the mutex.
func (m *Mutex) Waiters() int { return len(m.waiters) }

// Unlock releases the mutex, handing it to the longest-waiting process if
// any.
func (m *Mutex) Unlock() {
	if !m.held {
		panic("sim: unlock of unlocked mutex")
	}
	if len(m.waiters) == 0 {
		m.held = false
		return
	}
	next := m.waiters[0]
	m.waiters = m.waiters[1:]
	next.wake(m.sim.now) // ownership transfers; held remains true
}

// Semaphore is a counting semaphore in virtual time with FIFO hand-off.
type Semaphore struct {
	sim     *Simulation
	avail   int
	waiters []semWaiter
}

type semWaiter struct {
	p *Proc
	n int
}

// NewSemaphore returns a semaphore with n initial permits.
func NewSemaphore(s *Simulation, n int) *Semaphore {
	if n < 0 {
		panic("sim: negative semaphore count")
	}
	return &Semaphore{sim: s, avail: n}
}

// Available returns the number of free permits.
func (sm *Semaphore) Available() int { return sm.avail }

// Acquire takes n permits, blocking in virtual time until available.
// FIFO ordering is strict: a small request queued behind a large one
// waits, preventing starvation.
func (sm *Semaphore) Acquire(p *Proc, n int) {
	if n <= 0 {
		panic("sim: non-positive semaphore acquire")
	}
	if len(sm.waiters) == 0 && sm.avail >= n {
		sm.avail -= n
		return
	}
	sm.waiters = append(sm.waiters, semWaiter{p: p, n: n})
	p.block(blockedSemaphore)
}

// Release returns n permits and wakes as many queued waiters as can now
// be satisfied, in FIFO order.
func (sm *Semaphore) Release(n int) {
	if n <= 0 {
		panic("sim: non-positive semaphore release")
	}
	sm.avail += n
	for len(sm.waiters) > 0 && sm.avail >= sm.waiters[0].n {
		w := sm.waiters[0]
		sm.waiters = sm.waiters[1:]
		sm.avail -= w.n
		w.p.wake(sm.sim.now)
	}
}

// Barrier blocks processes until a fixed number have arrived, then
// releases the whole generation at once. It is reusable.
type Barrier struct {
	sim     *Simulation
	n       int
	arrived []*Proc
}

// NewBarrier returns a barrier for n participants.
func NewBarrier(s *Simulation, n int) *Barrier {
	if n <= 0 {
		panic("sim: barrier size must be positive")
	}
	return &Barrier{sim: s, n: n}
}

// Wait blocks until n processes (including the caller) have called Wait.
func (b *Barrier) Wait(p *Proc) {
	if len(b.arrived) == b.n-1 {
		for _, q := range b.arrived {
			q.wake(b.sim.now)
		}
		b.arrived = b.arrived[:0]
		return
	}
	b.arrived = append(b.arrived, p)
	p.block(blockedBarrier)
}

// WaitGroup waits for a counter to reach zero, in virtual time.
type WaitGroup struct {
	sim     *Simulation
	count   int
	waiters []*Proc
}

// NewWaitGroup returns a wait group with counter zero.
func NewWaitGroup(s *Simulation) *WaitGroup { return &WaitGroup{sim: s} }

// Add adds delta to the counter. If the counter reaches zero, waiters are
// released; it must never go negative.
func (wg *WaitGroup) Add(delta int) {
	wg.count += delta
	if wg.count < 0 {
		panic("sim: negative waitgroup counter")
	}
	if wg.count == 0 {
		for _, q := range wg.waiters {
			q.wake(wg.sim.now)
		}
		wg.waiters = wg.waiters[:0]
	}
}

// Done decrements the counter by one.
func (wg *WaitGroup) Done() { wg.Add(-1) }

// Wait blocks until the counter is zero.
func (wg *WaitGroup) Wait(p *Proc) {
	if wg.count == 0 {
		return
	}
	wg.waiters = append(wg.waiters, p)
	p.block(blockedWaitGroup)
}
