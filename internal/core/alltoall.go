package core

import (
	"camc/internal/kernel"
	"camc/internal/mpi"
)

// Alltoall semantics: every rank holds p blocks of Count bytes at Send
// (block j destined for rank j) and ends with p blocks at Recv (block j
// received from rank j).

// alltoallPeer returns the step-i peer of the pairwise exchange: an XOR
// schedule when p is a power of two (perfect pairing), the shifted
// schedule otherwise (§IV-C.1).
func alltoallPeer(rank, i, p int) int {
	if isPow2(p) {
		return rank ^ i
	}
	return (rank - i + p) % p
}

// AlltoallPairwiseColl (§IV-C.1, "CMA-coll"): the native CMA pairwise
// exchange. Send-buffer addresses are allgathered once; in step i each
// rank reads its block straight from the step peer's send buffer. Every
// step pairs distinct processes, so there is no lock contention. A final
// barrier guarantees every peer has finished reading this rank's send
// buffer.
//
//	T = T^sm_allgather + (p−1)(α + ηβ + l·⌈η/s⌉) + T_barrier
func AlltoallPairwiseColl(r *mpi.Rank, a Args) {
	a.validate(r)
	rec, span := beginColl(r, "alltoall:pairwise-cma-coll", a)
	defer rec.End(span)
	p := r.Size()
	if !a.InPlace {
		r.LocalCopy(a.Recv+kernel.Addr(int64(r.ID)*a.Count), a.Send+kernel.Addr(int64(r.ID)*a.Count), a.Count)
	}
	addrs := r.Allgather64(int64(a.Send))
	for i := 1; i < p; i++ {
		peer := alltoallPeer(r.ID, i, p)
		collStep(r, i, peer)
		// Read the block peer addressed to us.
		r.VMRead(a.Recv+kernel.Addr(int64(peer)*a.Count), peer,
			kernel.Addr(addrs[peer])+kernel.Addr(int64(r.ID)*a.Count), a.Count)
	}
	r.Barrier()
}

// AlltoallPairwisePt2pt ("CMA-pt2pt"): the same pairwise schedule built
// from point-to-point transfers, so every step above the rendezvous
// threshold pays an RTS/CTS handshake — the control-message overhead the
// native collective eliminates.
func AlltoallPairwisePt2pt(r *mpi.Rank, a Args) {
	a.validate(r)
	rec, span := beginColl(r, "alltoall:pairwise-cma-pt2pt", a)
	defer rec.End(span)
	p := r.Size()
	if !a.InPlace {
		r.LocalCopy(a.Recv+kernel.Addr(int64(r.ID)*a.Count), a.Send+kernel.Addr(int64(r.ID)*a.Count), a.Count)
	}
	for i := 1; i < p; i++ {
		var sendTo, recvFrom int
		if isPow2(p) {
			sendTo = r.ID ^ i
			recvFrom = sendTo
		} else {
			sendTo = (r.ID + i) % p
			recvFrom = (r.ID - i + p) % p
		}
		r.Sendrecv(sendTo, a.Send+kernel.Addr(int64(sendTo)*a.Count), a.Count,
			recvFrom, a.Recv+kernel.Addr(int64(recvFrom)*a.Count), a.Count)
	}
}

// AlltoallPairwiseShm ("SHMEM"): the pairwise schedule through the
// two-copy shared-memory transport at every size.
func AlltoallPairwiseShm(r *mpi.Rank, a Args) {
	a.validate(r)
	rec, span := beginColl(r, "alltoall:pairwise-shmem", a)
	defer rec.End(span)
	p := r.Size()
	if !a.InPlace {
		r.LocalCopy(a.Recv+kernel.Addr(int64(r.ID)*a.Count), a.Send+kernel.Addr(int64(r.ID)*a.Count), a.Count)
	}
	for i := 1; i < p; i++ {
		var peerS, peerR int
		if isPow2(p) {
			peerS = r.ID ^ i
			peerR = peerS
		} else {
			peerS = (r.ID + i) % p
			peerR = (r.ID - i + p) % p
		}
		r.SendrecvShm(peerS, a.Send+kernel.Addr(int64(peerS)*a.Count), a.Count,
			peerR, a.Recv+kernel.Addr(int64(peerR)*a.Count), a.Count)
	}
}

// AlltoallBruck (§IV-C.2): Bruck's log-step algorithm. Blocks are first
// rotated locally, then in step 2^k every rank packs the blocks whose
// index has bit k set, ships them to rank+2^k, and unpacks what arrives
// from rank−2^k; a final rotation restores rank order. The extra packing
// copies make it lose above small sizes — exactly the paper's point.
func AlltoallBruck(r *mpi.Rank, a Args) {
	a.validate(r)
	rec, span := beginColl(r, "alltoall:bruck", a)
	defer rec.End(span)
	p := r.Size()
	me := r.ID
	if p == 1 {
		if !a.InPlace {
			r.LocalCopy(a.Recv, a.Send, a.Count)
		}
		return
	}
	// Working buffer holds the rotated blocks; staging buffers hold the
	// packed selections.
	work := r.Alloc(int64(p) * a.Count)
	stageOut := r.Alloc(int64((p+1)/2) * a.Count)
	stageIn := r.Alloc(int64((p+1)/2) * a.Count)

	// Phase 1: local rotation: work[j] = Send[(j+me) mod p].
	for j := 0; j < p; j++ {
		r.LocalCopy(work+kernel.Addr(int64(j)*a.Count), a.Send+kernel.Addr(int64((j+me)%p)*a.Count), a.Count)
	}
	// Phase 2: log steps.
	for pow := 1; pow < p; pow <<= 1 {
		sendTo := (me + pow) % p
		recvFrom := (me - pow + p) % p
		// Pack blocks with bit `pow` set.
		var nsel int
		for j := 0; j < p; j++ {
			if j&pow != 0 {
				r.LocalCopy(stageOut+kernel.Addr(int64(nsel)*a.Count), work+kernel.Addr(int64(j)*a.Count), a.Count)
				nsel++
			}
		}
		nrecv := 0
		for j := 0; j < p; j++ {
			if j&pow != 0 {
				nrecv++
			}
		}
		r.Sendrecv(sendTo, stageOut, int64(nsel)*a.Count, recvFrom, stageIn, int64(nrecv)*a.Count)
		// Unpack into the same block positions.
		var u int
		for j := 0; j < p; j++ {
			if j&pow != 0 {
				r.LocalCopy(work+kernel.Addr(int64(j)*a.Count), stageIn+kernel.Addr(int64(u)*a.Count), a.Count)
				u++
			}
		}
	}
	// Phase 3: inverse rotation with reversal: Recv[j] = work[(me-j+p) mod p].
	for j := 0; j < p; j++ {
		r.LocalCopy(a.Recv+kernel.Addr(int64(j)*a.Count), work+kernel.Addr(int64((me-j+p)%p)*a.Count), a.Count)
	}
}

// AlltoallAlgorithms returns the registered Alltoall implementations.
func AlltoallAlgorithms() []Algorithm {
	return []Algorithm{
		{Name: "pairwise-cma-coll", Kind: KindAlltoall, Run: AlltoallPairwiseColl},
		{Name: "pairwise-cma-pt2pt", Kind: KindAlltoall, Run: AlltoallPairwisePt2pt},
		{Name: "pairwise-shmem", Kind: KindAlltoall, Run: AlltoallPairwiseShm},
		{Name: "bruck", Kind: KindAlltoall, Run: AlltoallBruck},
	}
}
