package core

// Scatterv / Gatherv: the variable-count personalized collectives, with
// the same contention-aware designs as their uniform counterparts. The
// paper's analysis is count-agnostic — the mm lock is per page of
// whatever each rank moves — so throttling transfers the same way;
// irregular counts simply make the naive designs' contention windows
// ragged.

import (
	"fmt"

	"camc/internal/kernel"
	"camc/internal/mpi"
)

// VArgs describes one variable-count collective invocation. Counts and
// Displs are indexed by absolute rank; Displs gives each rank's byte
// offset in the root's buffer (PackedDispls builds the dense layout).
type VArgs struct {
	Send   kernel.Addr
	Recv   kernel.Addr
	Counts []int64
	Displs []int64
	Root   int
}

func (a VArgs) validate(r *mpi.Rank) {
	p := r.Size()
	if len(a.Counts) != p || len(a.Displs) != p {
		panic(fmt.Sprintf("core: counts/displs length %d/%d != %d ranks", len(a.Counts), len(a.Displs), p))
	}
	if a.Root < 0 || a.Root >= p {
		panic(fmt.Sprintf("core: root %d out of range", a.Root))
	}
	for i, c := range a.Counts {
		if c < 0 {
			panic(fmt.Sprintf("core: negative count %d for rank %d", c, i))
		}
	}
}

// PackedDispls returns the dense displacement vector for counts (each
// block immediately after the previous).
func PackedDispls(counts []int64) []int64 {
	out := make([]int64, len(counts))
	var off int64
	for i, c := range counts {
		out[i] = off
		off += c
	}
	return out
}

// TotalCount sums the per-rank counts.
func TotalCount(counts []int64) int64 {
	var s int64
	for _, c := range counts {
		s += c
	}
	return s
}

// ScattervThrottled is the contention-aware Scatterv: the root
// broadcasts its buffer address, and at most k non-roots read their
// (count, displacement) slices concurrently, chained by the same
// point-to-point release protocol as ScatterThrottled. Zero-count ranks
// still participate in the chain so the release order stays intact.
func ScattervThrottled(k int) func(r *mpi.Rank, a VArgs) {
	if k < 1 {
		panic("core: throttle factor must be >= 1")
	}
	return func(r *mpi.Rank, a VArgs) {
		a.validate(r)
		p := r.Size()
		sendAddr := kernel.Addr(r.Bcast64(a.Root, int64(a.Send)))
		if r.ID == a.Root {
			if n := a.Counts[a.Root]; n > 0 {
				r.LocalCopy(a.Recv, a.Send+kernel.Addr(a.Displs[a.Root]), n)
			}
			first := p - 1 - k
			if first < 0 {
				first = 0
			}
			for idx := first; idx < p-1; idx++ {
				r.WaitNotify(nonRootByIndex(idx, a.Root, p))
			}
			return
		}
		idx := nonRootIndex(r.ID, a.Root, p)
		if idx-k >= 0 {
			r.WaitNotify(nonRootByIndex(idx-k, a.Root, p))
		}
		if n := a.Counts[r.ID]; n > 0 {
			r.VMRead(a.Recv, a.Root, sendAddr+kernel.Addr(a.Displs[r.ID]), n)
		}
		if idx+k <= p-2 {
			r.Notify(nonRootByIndex(idx+k, a.Root, p))
		} else {
			r.Notify(a.Root)
		}
	}
}

// ScattervSeqWrite is the contention-free baseline: the root writes each
// rank's slice in turn.
func ScattervSeqWrite(r *mpi.Rank, a VArgs) {
	a.validate(r)
	p := r.Size()
	addrs := r.Gather64(a.Root, int64(a.Recv))
	if r.ID == a.Root {
		if n := a.Counts[a.Root]; n > 0 {
			r.LocalCopy(a.Recv, a.Send+kernel.Addr(a.Displs[a.Root]), n)
		}
		for idx := 0; idx < p-1; idx++ {
			dst := nonRootByIndex(idx, a.Root, p)
			if n := a.Counts[dst]; n > 0 {
				r.VMWrite(a.Send+kernel.Addr(a.Displs[dst]), dst, kernel.Addr(addrs[dst]), n)
			}
		}
	}
	r.Bcast64(a.Root, 0)
}

// GathervThrottled mirrors ScattervThrottled with writes into the root's
// displacement slots.
func GathervThrottled(k int) func(r *mpi.Rank, a VArgs) {
	if k < 1 {
		panic("core: throttle factor must be >= 1")
	}
	return func(r *mpi.Rank, a VArgs) {
		a.validate(r)
		p := r.Size()
		recvAddr := kernel.Addr(r.Bcast64(a.Root, int64(a.Recv)))
		if r.ID == a.Root {
			if n := a.Counts[a.Root]; n > 0 {
				r.LocalCopy(a.Recv+kernel.Addr(a.Displs[a.Root]), a.Send, n)
			}
			first := p - 1 - k
			if first < 0 {
				first = 0
			}
			for idx := first; idx < p-1; idx++ {
				r.WaitNotify(nonRootByIndex(idx, a.Root, p))
			}
			return
		}
		idx := nonRootIndex(r.ID, a.Root, p)
		if idx-k >= 0 {
			r.WaitNotify(nonRootByIndex(idx-k, a.Root, p))
		}
		if n := a.Counts[r.ID]; n > 0 {
			r.VMWrite(a.Send, a.Root, recvAddr+kernel.Addr(a.Displs[r.ID]), n)
		}
		if idx+k <= p-2 {
			r.Notify(nonRootByIndex(idx+k, a.Root, p))
		} else {
			r.Notify(a.Root)
		}
	}
}

// GathervSeqRead is the contention-free baseline: the root reads each
// rank's vector in turn into its displacement slot.
func GathervSeqRead(r *mpi.Rank, a VArgs) {
	a.validate(r)
	p := r.Size()
	addrs := r.Gather64(a.Root, int64(a.Send))
	if r.ID == a.Root {
		if n := a.Counts[a.Root]; n > 0 {
			r.LocalCopy(a.Recv+kernel.Addr(a.Displs[a.Root]), a.Send, n)
		}
		for idx := 0; idx < p-1; idx++ {
			src := nonRootByIndex(idx, a.Root, p)
			if n := a.Counts[src]; n > 0 {
				r.VMRead(a.Recv+kernel.Addr(a.Displs[src]), src, kernel.Addr(addrs[src]), n)
			}
		}
	}
	r.Bcast64(a.Root, 0)
}

// GathervParallelWrite is the contention-prone baseline: every non-root
// writes its slice concurrently.
func GathervParallelWrite(r *mpi.Rank, a VArgs) {
	a.validate(r)
	p := r.Size()
	recvAddr := kernel.Addr(r.Bcast64(a.Root, int64(a.Recv)))
	if r.ID == a.Root {
		if n := a.Counts[a.Root]; n > 0 {
			r.LocalCopy(a.Recv+kernel.Addr(a.Displs[a.Root]), a.Send, n)
		}
		for i := 0; i < p-1; i++ {
			r.WaitNotify(nonRootByIndex(i, a.Root, p))
		}
		return
	}
	if n := a.Counts[r.ID]; n > 0 {
		r.VMWrite(a.Send, a.Root, recvAddr+kernel.Addr(a.Displs[r.ID]), n)
	}
	r.Notify(a.Root)
}
