package core

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"camc/internal/arch"
	"camc/internal/kernel"
	"camc/internal/mpi"
)

// Cross-algorithm equivalence: every algorithm of a collective must
// produce bit-identical output buffers for identical inputs — the
// algorithms differ only in cost. These property tests drive random
// (p, root, count) triples through every registered implementation and
// diff the results.

// runAndSnapshot executes one algorithm and returns each rank's receive
// buffer contents.
func runAndSnapshot(t *testing.T, a *arch.Profile, kind Kind, algo func(*mpi.Rank, Args), p int, count int64, root int, seed int64) [][]byte {
	t.Helper()
	mem := (8*int64(p) + 16) * (count + 4096)
	if mem < 1<<20 {
		mem = 1 << 20
	}
	c := mpi.New(mpi.Config{Arch: a, Procs: p, CopyData: true, MemPerProc: mem})
	rng := rand.New(rand.NewSource(seed))
	send := make([]kernel.Addr, p)
	recv := make([]kernel.Addr, p)
	blocks := int64(p)
	var sendLen, recvLen int64
	switch kind {
	case KindScatter:
		sendLen, recvLen = blocks*count, count
	case KindGather:
		sendLen, recvLen = count, blocks*count
	case KindAlltoall, KindAllgather:
		sendLen, recvLen = blocks*count, blocks*count
	case KindBcast:
		sendLen, recvLen = count, count
	}
	for i := 0; i < p; i++ {
		send[i] = c.Rank(i).Alloc(sendLen)
		recv[i] = c.Rank(i).Alloc(recvLen)
		buf := c.Rank(i).OS.Bytes(send[i], sendLen)
		rng.Read(buf)
		rb := c.Rank(i).OS.Bytes(recv[i], recvLen)
		for j := range rb {
			rb[j] = 0xAB
		}
	}
	c.Start(func(r *mpi.Rank) {
		algo(r, Args{Send: send[r.ID], Recv: recv[r.ID], Count: count, Root: root})
	})
	if err := c.Sim.Run(); err != nil {
		t.Fatalf("kind=%s p=%d count=%d root=%d: %v", kind, p, count, root, err)
	}
	out := make([][]byte, p)
	for i := 0; i < p; i++ {
		out[i] = append([]byte(nil), c.Rank(i).OS.Bytes(recv[i], recvLen)...)
	}
	// Bcast: the root's receive buffer is unused (its data stays in
	// Send); blank it so algorithms that scribble differently there
	// still compare equal.
	if kind == KindBcast {
		out[root] = nil
	}
	return out
}

func equalSnapshots(a, b [][]byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			return false
		}
	}
	return true
}

func checkEquivalence(t *testing.T, kind Kind, algos []Algorithm) {
	t.Helper()
	f := func(pRaw, rootRaw uint8, countRaw uint16, seed int64) bool {
		p := int(pRaw%12) + 2
		root := int(rootRaw) % p
		count := int64(countRaw%6000) + 1
		ref := runAndSnapshot(t, arch.KNL(), kind, algos[0].Run, p, count, root, seed)
		for _, al := range algos[1:] {
			got := runAndSnapshot(t, arch.KNL(), kind, al.Run, p, count, root, seed)
			if !equalSnapshots(ref, got) {
				t.Logf("mismatch: %s vs %s at p=%d count=%d root=%d", algos[0].Name, al.Name, p, count, root)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

func TestScatterAlgorithmsEquivalent(t *testing.T) {
	algos := ScatterAlgorithms(1, 3, 5)
	algos = append(algos,
		Algorithm{Name: "binomial-shm", Run: ScatterBinomial(TransportShm)},
		Algorithm{Name: "binomial-p2p", Run: ScatterBinomial(TransportPt2pt)},
	)
	checkEquivalence(t, KindScatter, algos)
}

func TestGatherAlgorithmsEquivalent(t *testing.T) {
	algos := GatherAlgorithms(1, 2, 4)
	algos = append(algos,
		Algorithm{Name: "binomial-shm", Run: GatherBinomial(TransportShm)},
		Algorithm{Name: "binomial-p2p", Run: GatherBinomial(TransportPt2pt)},
		Algorithm{Name: "socket-aware", Run: GatherSocketAware(3)},
	)
	checkEquivalence(t, KindGather, algos)
}

func TestBcastAlgorithmsEquivalent(t *testing.T) {
	algos := BcastAlgorithms(2, 5)
	algos = append(algos,
		Algorithm{Name: "binomial-shm", Run: BcastBinomial(TransportShm)},
		Algorithm{Name: "vdg-p2p", Run: BcastVanDeGeijn(TransportPt2pt)},
		Algorithm{Name: "socket-aware", Run: BcastSocketAware(3)},
	)
	checkEquivalence(t, KindBcast, algos)
}

func TestAllgatherAlgorithmsEquivalent(t *testing.T) {
	algos := AllgatherAlgorithms(1)
	algos = append(algos,
		Algorithm{Name: "ring-shm", Run: AllgatherRing(TransportShm)},
		Algorithm{Name: "ring-p2p", Run: AllgatherRing(TransportPt2pt)},
	)
	checkEquivalence(t, KindAllgather, algos)
}

func TestAlltoallAlgorithmsEquivalent(t *testing.T) {
	checkEquivalence(t, KindAlltoall, AlltoallAlgorithms())
}

func TestTunedMatchesReferenceEverywhere(t *testing.T) {
	// The tuned dispatcher must agree with a reference algorithm at
	// sizes straddling every threshold.
	for _, kind := range []Kind{KindScatter, KindGather, KindBcast, KindAllgather, KindAlltoall} {
		kind := kind
		var ref func(*mpi.Rank, Args)
		switch kind {
		case KindScatter:
			ref = ScatterSeqWrite
		case KindGather:
			ref = GatherSeqRead
		case KindBcast:
			ref = BcastDirectWrite
		case KindAllgather:
			ref = AllgatherRingSourceRead
		case KindAlltoall:
			ref = AlltoallPairwiseColl
		}
		for _, count := range []int64{900, 5000, 20000, 70000} {
			a := runAndSnapshot(t, arch.KNL(), kind, Tuned(kind), 9, count, 0, int64(count))
			b := runAndSnapshot(t, arch.KNL(), kind, ref, 9, count, 0, int64(count))
			if !equalSnapshots(a, b) {
				t.Fatalf("%s tuned != reference at count %d", kind, count)
			}
		}
	}
}
