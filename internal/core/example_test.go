package core_test

import (
	"fmt"

	"camc/internal/arch"
	"camc/internal/core"
	"camc/internal/kernel"
	"camc/internal/mpi"
)

// The throttled-read Scatter at work: eight ranks, the root's buffer is
// sliced into one block per rank, and at most three ranks read from the
// root concurrently.
func ExampleScatterThrottled() {
	const (
		ranks = 8
		count = 4096
	)
	c := mpi.New(mpi.Config{Arch: arch.KNL(), Procs: ranks, CopyData: true, MemPerProc: 1 << 20})
	send := make([]kernel.Addr, ranks)
	recv := make([]kernel.Addr, ranks)
	for i := 0; i < ranks; i++ {
		send[i] = c.Rank(i).Alloc(ranks * count)
		recv[i] = c.Rank(i).Alloc(count)
	}
	root := c.Rank(0).OS.Bytes(send[0], ranks*count)
	for i := range root {
		root[i] = byte(i / count) // block d holds byte(d)
	}
	c.Start(func(r *mpi.Rank) {
		core.ScatterThrottled(3)(r, core.Args{Send: send[r.ID], Recv: recv[r.ID], Count: count, Root: 0})
	})
	if err := c.Sim.Run(); err != nil {
		panic(err)
	}
	fmt.Printf("rank 5 received block value %d\n", c.Rank(5).OS.Bytes(recv[5], 1)[0])
	// Output: rank 5 received block value 5
}

// The tuned selector routes by architecture and size: on KNL a 1 MiB
// broadcast goes to scatter-allgather, a 2 KiB one to the shared-memory
// binomial — both deliver the same bytes.
func ExampleTuned() {
	for _, count := range []int64{2048, 1 << 20} {
		c := mpi.New(mpi.Config{Arch: arch.KNL(), Procs: 4, CopyData: true, MemPerProc: 8 << 20})
		send := make([]kernel.Addr, 4)
		recv := make([]kernel.Addr, 4)
		for i := 0; i < 4; i++ {
			send[i] = c.Rank(i).Alloc(count)
			recv[i] = c.Rank(i).Alloc(count)
		}
		buf := c.Rank(0).OS.Bytes(send[0], count)
		for i := range buf {
			buf[i] = 0x5A
		}
		c.Start(func(r *mpi.Rank) {
			core.Tuned(core.KindBcast)(r, core.Args{Send: send[r.ID], Recv: recv[r.ID], Count: count, Root: 0})
		})
		if err := c.Sim.Run(); err != nil {
			panic(err)
		}
		fmt.Printf("%7d bytes broadcast, rank 3 sees %#x\n", count, c.Rank(3).OS.Bytes(recv[3], 1)[0])
	}
	// Output:
	//    2048 bytes broadcast, rank 3 sees 0x5a
	// 1048576 bytes broadcast, rank 3 sees 0x5a
}
