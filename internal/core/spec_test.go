package core

import (
	"strconv"
	"strings"
	"testing"
)

// TestLookupEverySpec walks the whole registered grammar: every family
// resolves by canonical name and by every alias, parameterized families
// accept an explicit parameter, and parameter-free families reject one
// instead of silently ignoring it.
func TestLookupEverySpec(t *testing.T) {
	kinds := SpecKinds()
	if len(kinds) != 6 {
		t.Fatalf("SpecKinds() = %v, want 6 kinds", kinds)
	}
	for _, kind := range kinds {
		infos := Specs(kind)
		if len(infos) == 0 {
			t.Fatalf("no specs registered for %s", kind)
		}
		for _, info := range infos {
			names := append([]string{info.Name}, info.Aliases...)
			for _, name := range names {
				al, err := LookupAlgorithm(kind, name)
				if err != nil {
					t.Fatalf("%s/%s: %v", kind, name, err)
				}
				if al.Name != name || al.Kind != kind || al.Run == nil {
					t.Fatalf("%s/%s: bad algorithm %+v", kind, name, al)
				}
				if info.Default > 0 {
					if _, err := LookupAlgorithm(kind, name+":3"); err != nil {
						t.Fatalf("%s/%s:3: %v", kind, name, err)
					}
					if _, err := LookupAlgorithm(kind, name+":0"); err == nil {
						t.Fatalf("%s/%s:0 accepted", kind, name)
					}
				} else {
					if _, err := LookupAlgorithm(kind, name+":3"); err == nil {
						t.Fatalf("%s/%s:3 accepted on a parameter-free family", kind, name)
					}
				}
				if _, err := LookupAlgorithm(kind, name+":x"); err == nil {
					t.Fatalf("%s/%s:x accepted", kind, name)
				}
			}
		}
	}
}

// TestReplanRoundTrip: for every registered family, every Replan output
// spec must itself resolve through LookupAlgorithm — a replanned name
// that the parser rejects would strand recovery after a shrink.
func TestReplanRoundTrip(t *testing.T) {
	for _, kind := range SpecKinds() {
		for _, info := range Specs(kind) {
			specs := []string{info.Name}
			if info.Default > 0 {
				specs = append(specs, info.Name+":2", info.Name+":7", info.Name+":64")
			}
			for _, a := range info.Aliases {
				specs = append(specs, a)
				if info.Default > 0 {
					specs = append(specs, a+":9")
				}
			}
			for _, spec := range specs {
				for _, p := range []int{2, 3, 5, 7, 8, 12, 16} {
					al, err := Replan(kind, spec, p)
					if err != nil {
						t.Fatalf("Replan(%s, %q, %d): %v", kind, spec, p, err)
					}
					rt, err := LookupAlgorithm(kind, al.Name)
					if err != nil {
						t.Fatalf("Replan(%s, %q, %d) = %q does not round-trip: %v",
							kind, spec, p, al.Name, err)
					}
					if rt.Kind != kind {
						t.Fatalf("round-trip of %q changed kind to %s", al.Name, rt.Kind)
					}
					// The replanned name must keep the family spelling the
					// caller used, so tables and traces stay greppable.
					base := spec
					if i := strings.IndexByte(spec, ':'); i >= 0 {
						base = spec[:i]
					}
					if got := al.Name; got != base && !strings.HasPrefix(got, base+":") {
						t.Fatalf("Replan(%s, %q, %d) renamed family: %q", kind, spec, p, got)
					}
				}
			}
		}
	}
}

// TestClampStrideSingleCycle is the property behind the ring-neighbor
// replan rule: for any composite p and any stride, the clamped stride
// generates a single p-cycle (gcd(p, j mod p) == 1), so every rank's
// block visits every rank.
func TestClampStrideSingleCycle(t *testing.T) {
	for _, p := range []int{4, 6, 8, 9, 10, 12, 14, 15, 16, 20, 21, 24, 36, 60, 64} {
		for j := 1; j <= 3*p+1; j++ {
			g := clampStride(j, p)
			if g < 1 || g >= p {
				t.Fatalf("clampStride(%d, %d) = %d out of [1, p)", j, p, g)
			}
			if gcd(p, g%p) != 1 {
				t.Fatalf("clampStride(%d, %d) = %d: gcd(%d, %d) != 1", j, p, g, p, g%p)
			}
			// Walk the ring and prove it is one cycle.
			seen := 0
			for r, steps := g%p, 0; steps < p; steps++ {
				seen++
				r = (r + g) % p
			}
			if seen != p {
				t.Fatalf("clampStride(%d, %d) = %d: cycle covers %d of %d", j, p, g, seen, p)
			}
		}
	}
}

// TestClampBounds pins the clamp helpers' ranges directly.
func TestClampBounds(t *testing.T) {
	for p := 1; p <= 40; p++ {
		for k := 1; k <= 3*p; k++ {
			if got := clampThrottle(k, p); got < 1 || (p > 1 && got > p-1) {
				t.Fatalf("clampThrottle(%d, %d) = %d", k, p, got)
			}
			if got := clampRadix(k, p); got < 2 || (p >= 2 && got > p) {
				t.Fatalf("clampRadix(%d, %d) = %d", k, p, got)
			}
		}
	}
}

// TestLookupRejectsParamOnParameterFree pins the error text the CLIs
// surface for the most likely user mistake.
func TestLookupRejectsParamOnParameterFree(t *testing.T) {
	_, err := LookupAlgorithm(KindScatter, "parallel-read:7")
	if err == nil || !strings.Contains(err.Error(), "takes no parameter") {
		t.Fatalf("err = %v, want 'takes no parameter'", err)
	}
	if _, err := Replan(KindScatter, "parallel-read:7", 4); err == nil {
		t.Fatal("Replan accepted a parameter on a parameter-free family")
	}
}

// TestReduceSpecsResolve pins that the reduce grammar reaches every
// registered reduce implementation (reduce joined the shared table
// later than the five paper collectives).
func TestReduceSpecsResolve(t *testing.T) {
	for _, spec := range []string{
		"flat-sequential", "parallel-write", "knomial", "knomial:3",
		"binomial-shm", "binomial-pt2pt", "tuned",
	} {
		if _, err := LookupAlgorithm(KindReduce, spec); err != nil {
			t.Fatalf("reduce/%s: %v", spec, err)
		}
	}
	al, err := Replan(KindReduce, "knomial:16", 5)
	if err != nil {
		t.Fatal(err)
	}
	if al.Name != "knomial:5" {
		t.Fatalf("reduce knomial:16 replanned for p=5 as %q, want knomial:5", al.Name)
	}
}

// FuzzLookupSpec feeds arbitrary spec strings through the shared
// grammar: the parser must never panic, and anything LookupAlgorithm
// accepts must Replan at every communicator size and round-trip.
func FuzzLookupSpec(f *testing.F) {
	for _, kind := range SpecKinds() {
		for _, info := range Specs(kind) {
			f.Add(string(kind), info.Name)
			if info.Default > 0 {
				f.Add(string(kind), info.Name+":"+strconv.Itoa(info.Default))
			}
		}
	}
	f.Add("scatter", "throttle:99")
	f.Add("allgather", "ring-neighbor:6")
	f.Add("bogus", "tuned")
	f.Fuzz(func(t *testing.T, kindStr, spec string) {
		kind := Kind(kindStr)
		al, err := LookupAlgorithm(kind, spec)
		if err != nil {
			return
		}
		for _, p := range []int{1, 2, 3, 6, 9, 16} {
			rp, err := Replan(kind, spec, p)
			if err != nil {
				t.Fatalf("lookup accepted %s/%q but Replan(p=%d) rejected it: %v", kind, spec, p, err)
			}
			if _, err := LookupAlgorithm(kind, rp.Name); err != nil {
				t.Fatalf("Replan(%s, %q, %d) = %q does not round-trip: %v", kind, spec, p, rp.Name, err)
			}
		}
		if al.Run == nil {
			t.Fatalf("%s/%q: nil Run", kind, spec)
		}
	})
}
