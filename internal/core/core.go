// Package core implements the paper's contribution: native,
// contention-aware, kernel-assisted MPI collectives.
//
// "Native" means the collectives never exchange per-message RTS/CTS
// control packets the way point-to-point CMA transfers must: PIDs are
// known from initialization, buffer addresses are exchanged once per
// operation through tiny shared-memory control collectives, and the data
// then moves with direct CMA reads/writes (§III of the paper).
//
// "Contention-aware" means the algorithms bound the number of processes
// concurrently accessing any one source process, because the per-page
// mm-lock cost inflates by the contention factor γ(c):
//
//   - Scatter: Parallel Reads, Sequential Writes, and Throttled Reads(k),
//     where k readers at a time copy from the root (§IV-A).
//   - Gather: Parallel Writes, Sequential Reads, Throttled Writes(k) (§IV-B).
//   - Alltoall: Pairwise exchange (contention-free) as a native CMA
//     collective, plus Bruck's algorithm (§IV-C).
//   - Allgather: Ring-Neighbor-j, Ring-Source-Read/Write, Recursive
//     Doubling, and Bruck (§V-A).
//   - Broadcast: Direct Read/Write, k-nomial trees (read and write
//     based), and Scatter-Allgather (§V-B).
//
// Tuned selects the paper's "Proposed" configuration: the best algorithm
// and throttle/fan-out for a given architecture and message size.
package core

import (
	"fmt"

	"camc/internal/kernel"
	"camc/internal/mpi"
)

// Args describes one collective invocation. All sizes are in bytes.
type Args struct {
	// Send is the send buffer base. Scatter and Alltoall expect p
	// contiguous blocks of Count bytes at the root/caller; Allgather,
	// Gather and Bcast expect one block.
	Send kernel.Addr
	// Recv is the receive buffer base. Gather and Allgather and Alltoall
	// fill p blocks; Scatter fills one; Bcast uses Send at the root and
	// Recv elsewhere.
	Recv kernel.Addr
	// Count is the per-rank message size η.
	Count int64
	// Root is the root rank for rooted collectives.
	Root int
	// InPlace marks MPI_IN_PLACE semantics: the root's (or caller's) own
	// block is already in its output location, so the local copy is
	// skipped.
	InPlace bool
}

func (a Args) validate(r *mpi.Rank) {
	if a.Count < 0 {
		panic(fmt.Sprintf("core: negative count %d", a.Count))
	}
	if a.Root < 0 || a.Root >= r.Size() {
		panic(fmt.Sprintf("core: root %d out of range (p=%d)", a.Root, r.Size()))
	}
}

// relRank maps rank to its index in the root-rotated space where the root
// is 0.
func relRank(rank, root, p int) int { return (rank - root + p) % p }

// absRank inverts relRank.
func absRank(rel, root, p int) int { return (rel + root) % p }

// nonRootIndex returns the index of rank among the p-1 non-root ranks in
// relative order, or -1 for the root itself.
func nonRootIndex(rank, root, p int) int {
	rel := relRank(rank, root, p)
	if rel == 0 {
		return -1
	}
	return rel - 1
}

// nonRootByIndex returns the absolute rank of the idx-th non-root.
func nonRootByIndex(idx, root, p int) int { return absRank(idx+1, root, p) }

// Kind names a collective operation.
type Kind string

// The collectives the paper designs.
const (
	KindScatter   Kind = "scatter"
	KindGather    Kind = "gather"
	KindAlltoall  Kind = "alltoall"
	KindAllgather Kind = "allgather"
	KindBcast     Kind = "bcast"
)

// Algorithm is a named collective implementation, registered for the
// benchmark harness.
type Algorithm struct {
	Name string
	Kind Kind
	Run  func(r *mpi.Rank, a Args)
}

// gcd returns the greatest common divisor of two positive ints.
func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// isPow2 reports whether p is a power of two.
func isPow2(p int) bool { return p > 0 && p&(p-1) == 0 }

// ceilLog reports ⌈log_base p⌉ for base >= 2.
func ceilLog(base, p int) int {
	n, v := 0, 1
	for v < p {
		v *= base
		n++
	}
	return n
}
