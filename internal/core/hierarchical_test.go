package core

import (
	"testing"

	"camc/internal/arch"
	"camc/internal/kernel"
	"camc/internal/mpi"
)

func TestGatherSocketAwareCorrect(t *testing.T) {
	for _, a := range arch.All() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			for _, p := range []int{2, 6, 10, 16} {
				for _, root := range rootsFor(p) {
					f := newFixture(t, a, p, KindGather, 4096)
					f.run(t, GatherSocketAware(3), root)
					f.verifyGather(t, root)
				}
			}
		})
	}
}

func TestBcastSocketAwareCorrect(t *testing.T) {
	for _, a := range arch.All() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			for _, p := range []int{2, 5, 9, 16} {
				for _, root := range rootsFor(p) {
					f := newFixture(t, a, p, KindBcast, 6000)
					f.run(t, BcastSocketAware(3), root)
					f.verifyBcast(t, root)
				}
			}
		})
	}
}

func TestSocketAwareFallsBackOnSingleSocket(t *testing.T) {
	// On KNL (1 socket) the socket-aware designs reduce to their flat
	// counterparts: same latency to the digit.
	lat := func(algo func(*mpi.Rank, Args)) float64 {
		c := mpi.New(mpi.Config{Arch: arch.KNL(), Procs: 16, CopyData: false})
		sa := make([]int64, 16)
		ra := make([]int64, 16)
		for i := 0; i < 16; i++ {
			sa[i] = int64(c.Rank(i).Alloc(16 * 8192))
			ra[i] = int64(c.Rank(i).Alloc(16 * 8192))
		}
		c.Start(func(r *mpi.Rank) {
			algo(r, Args{Send: kernel.Addr(sa[r.ID]), Recv: kernel.Addr(ra[r.ID]), Count: 8192, Root: 0})
		})
		if err := c.Sim.Run(); err != nil {
			panic(err)
		}
		return c.Sim.Now()
	}
	if a, b := lat(GatherSocketAware(4)), lat(GatherThrottled(4)); a != b {
		t.Fatalf("single-socket gather fallback mismatch: %g vs %g", a, b)
	}
	if a, b := lat(BcastSocketAware(4)), lat(BcastKnomialRead(4)); a != b {
		t.Fatalf("single-socket bcast fallback mismatch: %g vs %g", a, b)
	}
}

// latP8 measures one dataless rooted collective at full Power8
// subscription.
func latP8(count int64, algo func(*mpi.Rank, Args)) float64 {
	a := arch.Power8()
	c := mpi.New(mpi.Config{Arch: a, CopyData: false})
	p := c.Size()
	sa := make([]int64, p)
	ra := make([]int64, p)
	for i := 0; i < p; i++ {
		sa[i] = int64(c.Rank(i).Alloc(count))
		ra[i] = int64(c.Rank(i).Alloc(int64(p) * count))
	}
	c.Start(func(r *mpi.Rank) {
		algo(r, Args{Send: kernel.Addr(sa[r.ID]), Recv: kernel.Addr(ra[r.ID]), Count: count, Root: 0})
	})
	if err := c.Sim.Run(); err != nil {
		panic(err)
	}
	return c.Sim.Now()
}

func TestSocketAwareGatherPaysLeaderSerialization(t *testing.T) {
	// The documented negative result: *inside* a node, two-level gather
	// moves every byte twice and funnels half of them through one leader
	// stream, so it loses to the flat throttled gather — unlike the
	// multi-node case (Fig 17), where the per-message network costs the
	// hierarchy eliminates dominate.
	flat := latP8(32<<10, GatherThrottled(10))
	hier := latP8(32<<10, GatherSocketAware(10))
	if hier <= flat {
		t.Fatalf("expected the intra-node hierarchy to lose: hier %.0f vs flat %.0f", hier, flat)
	}
}

func TestSocketAwareBcastCompetitiveOnPower8(t *testing.T) {
	// Broadcast reuses the payload, so the socket hierarchy has no
	// doubled data movement: one cross-socket transfer, then per-socket
	// k-nomial trees in parallel. It must stay close to (or beat) the
	// flat k-nomial at medium sizes.
	flat := latP8(256<<10, BcastKnomialRead(11))
	hier := latP8(256<<10, BcastSocketAware(11))
	if hier > 1.3*flat {
		t.Fatalf("socket-aware bcast %.0f far above flat k-nomial %.0f", hier, flat)
	}
}
