package core

import (
	"camc/internal/kernel"
	"camc/internal/mpi"
)

// Baseline algorithms: the classic point-to-point-based collectives that
// state-of-the-art MPI libraries run intra-node. They move data through
// Rank.Send/Recv (eager shared memory below the rendezvous threshold,
// RTS/CTS + CMA above — "CMA-pt2pt") or, in the *Shm variants, through
// the two-copy path at every size. The comparator library models in
// internal/libs are assembled from these, and the tuned selector uses the
// shared-memory ones where kernel assistance does not pay off.

// Transport selects how baseline collectives move bytes.
type Transport int

// Transport values.
const (
	// TransportPt2pt uses the library point-to-point path: eager shared
	// memory for small messages, RTS/CTS + CMA rendezvous for large.
	TransportPt2pt Transport = iota
	// TransportShm forces the two-copy shared-memory path at all sizes.
	TransportShm
)

func (tr Transport) send(r *mpi.Rank, dst int, addr kernel.Addr, n int64) {
	if tr == TransportShm {
		r.SendShm(dst, addr, n)
	} else {
		r.Send(dst, addr, n)
	}
}

func (tr Transport) recv(r *mpi.Rank, src int, addr kernel.Addr, n int64) {
	if tr == TransportShm {
		r.RecvShm(src, addr, n)
	} else {
		r.Recv(src, addr, n)
	}
}

func (tr Transport) sendrecv(r *mpi.Rank, dst int, sa kernel.Addr, sn int64, src int, ra kernel.Addr, rn int64) {
	if tr == TransportShm {
		r.SendrecvShm(dst, sa, sn, src, ra, rn)
	} else {
		r.Sendrecv(dst, sa, sn, src, ra, rn)
	}
}

// name returns the transport's trace label.
func (tr Transport) name() string {
	if tr == TransportShm {
		return "shm"
	}
	return "pt2pt"
}

// lowbit returns the lowest set bit of v (v > 0).
func lowbit(v int) int { return v & -v }

// ScatterBinomial is the classic binomial-tree scatter over point-to-
// point transfers: interior nodes stage their whole subtree's data, so
// messages shrink as they descend the tree. This is what MVAPICH2-style
// libraries run for large scatter.
func ScatterBinomial(tr Transport) func(r *mpi.Rank, a Args) {
	return func(r *mpi.Rank, a Args) {
		a.validate(r)
		rec, span := beginColl(r, "scatter:binomial-"+tr.name(), a)
		defer rec.End(span)
		p := r.Size()
		rel := relRank(r.ID, a.Root, p)
		if p == 1 {
			if !a.InPlace {
				r.LocalCopy(a.Recv, a.Send, a.Count)
			}
			return
		}
		// Subtree size: lowbit(rel) for non-roots, the whole comm for root.
		var cnt int // blocks this node is responsible for (relative blocks rel..rel+cnt-1)
		if rel == 0 {
			cnt = p
		} else {
			cnt = lowbit(rel)
			if p-rel < cnt {
				cnt = p - rel
			}
		}
		// Staging buffer in relative block order. The root rotates its
		// send buffer into it (free if root == 0: the buffer is already
		// in relative order then, but we keep the general path simple
		// and skip the copy only in that case).
		var tmp kernel.Addr
		if rel == 0 {
			if a.Root == 0 {
				tmp = a.Send
			} else {
				tmp = r.Alloc(int64(p) * a.Count)
				for j := 0; j < p; j++ {
					r.LocalCopy(tmp+kernel.Addr(int64(j)*a.Count),
						a.Send+kernel.Addr(int64(absRank(j, a.Root, p))*a.Count), a.Count)
				}
			}
		} else {
			if cnt == 1 {
				tmp = a.Recv // leaf: receive straight into place
			} else {
				tmp = r.Alloc(int64(cnt) * a.Count)
			}
			parent := rel - lowbit(rel)
			tr.recv(r, absRank(parent, a.Root, p), tmp, int64(cnt)*a.Count)
		}
		// Send subtree halves to children: masks below my lowbit (root:
		// below the top power of two).
		top := lowbit(rel)
		if rel == 0 {
			top = 1
			for top < p {
				top <<= 1
			}
		}
		for mask := top >> 1; mask >= 1; mask >>= 1 {
			child := rel + mask
			if child >= p || mask >= cnt {
				continue
			}
			ccnt := cnt - mask
			if ccnt > mask {
				ccnt = mask
			}
			tr.send(r, absRank(child, a.Root, p), tmp+kernel.Addr(int64(mask)*a.Count), int64(ccnt)*a.Count)
		}
		// My own block is relative block rel = tmp[0].
		if tmp != a.Recv && !(rel == 0 && a.InPlace) {
			r.LocalCopy(a.Recv, tmp, a.Count)
		}
	}
}

// GatherBinomial is the classic binomial-tree gather: leaves send their
// block up; interior nodes accumulate their subtree before forwarding.
func GatherBinomial(tr Transport) func(r *mpi.Rank, a Args) {
	return func(r *mpi.Rank, a Args) {
		a.validate(r)
		rec, span := beginColl(r, "gather:binomial-"+tr.name(), a)
		defer rec.End(span)
		p := r.Size()
		rel := relRank(r.ID, a.Root, p)
		if p == 1 {
			if !a.InPlace {
				r.LocalCopy(a.Recv, a.Send, a.Count)
			}
			return
		}
		var cnt int
		if rel == 0 {
			cnt = p
		} else {
			cnt = lowbit(rel)
			if p-rel < cnt {
				cnt = p - rel
			}
		}
		var tmp kernel.Addr
		if rel == 0 && a.Root == 0 {
			tmp = a.Recv
		} else if cnt == 1 {
			tmp = a.Send
		} else {
			tmp = r.Alloc(int64(cnt) * a.Count)
		}
		// Stage our own block at relative position 0. With InPlace at the
		// root, the block is already at Recv[root].
		own := a.Send
		if r.ID == a.Root && a.InPlace {
			own = a.Recv + kernel.Addr(int64(a.Root)*a.Count)
		}
		if cnt > 1 && tmp != a.Recv {
			r.LocalCopy(tmp, own, a.Count)
		} else if rel == 0 && a.Root == 0 && !a.InPlace {
			r.LocalCopy(a.Recv, a.Send, a.Count)
		}
		// Receive children's subtrees, smallest mask first (mirrors the
		// scatter send order reversed).
		top := lowbit(rel)
		if rel == 0 {
			top = 1
			for top < p {
				top <<= 1
			}
		}
		for mask := 1; mask < top; mask <<= 1 {
			child := rel + mask
			if child >= p || mask >= cnt {
				continue
			}
			ccnt := cnt - mask
			if ccnt > mask {
				ccnt = mask
			}
			tr.recv(r, absRank(child, a.Root, p), tmp+kernel.Addr(int64(mask)*a.Count), int64(ccnt)*a.Count)
		}
		if rel != 0 {
			parent := rel - lowbit(rel)
			tr.send(r, absRank(parent, a.Root, p), tmp, int64(cnt)*a.Count)
			return
		}
		// Root: unrotate into absolute rank order unless already there.
		if a.Root != 0 {
			for j := 0; j < p; j++ {
				r.LocalCopy(a.Recv+kernel.Addr(int64(absRank(j, a.Root, p))*a.Count),
					tmp+kernel.Addr(int64(j)*a.Count), a.Count)
			}
		}
	}
}

// BcastBinomial is the classic binomial-tree broadcast over point-to-
// point transfers (the small/medium-message choice in every library).
func BcastBinomial(tr Transport) func(r *mpi.Rank, a Args) {
	return func(r *mpi.Rank, a Args) {
		a.validate(r)
		rec, span := beginColl(r, "bcast:binomial-"+tr.name(), a)
		defer rec.End(span)
		p := r.Size()
		rel := relRank(r.ID, a.Root, p)
		buf := bcastBuf(r, a)
		if rel != 0 {
			parent := rel - lowbit(rel)
			tr.recv(r, absRank(parent, a.Root, p), buf, a.Count)
		}
		top := lowbit(rel)
		if rel == 0 {
			top = 1
			for top < p {
				top <<= 1
			}
		}
		for mask := top >> 1; mask >= 1; mask >>= 1 {
			child := rel + mask
			if child < p {
				tr.send(r, absRank(child, a.Root, p), buf, a.Count)
			}
		}
	}
}

// AllgatherRing is the classic ring allgather over point-to-point
// transfers: in step i every rank passes the block it received in step
// i−1 to its successor.
func AllgatherRing(tr Transport) func(r *mpi.Rank, a Args) {
	return func(r *mpi.Rank, a Args) {
		a.validate(r)
		rec, span := beginColl(r, "allgather:ring-"+tr.name(), a)
		defer rec.End(span)
		p := r.Size()
		me := r.ID
		if !a.InPlace {
			r.LocalCopy(a.Recv+kernel.Addr(int64(me)*a.Count), a.Send, a.Count)
		}
		next := (me + 1) % p
		prev := (me - 1 + p) % p
		for i := 0; i < p-1; i++ {
			sblk := (me - i + p) % p
			rblk := (me - i - 1 + 2*p) % p
			tr.sendrecv(r, next, a.Recv+kernel.Addr(int64(sblk)*a.Count), a.Count,
				prev, a.Recv+kernel.Addr(int64(rblk)*a.Count), a.Count)
		}
	}
}

// BcastVanDeGeijn is the large-message broadcast used by the comparator
// libraries: a binomial scatter of chunks followed by a ring allgather,
// all over point-to-point transfers (two-copy or pt2pt-CMA), i.e. the
// same Van de Geijn structure as BcastScatterAllgather but without the
// native CMA data path.
func BcastVanDeGeijn(tr Transport) func(r *mpi.Rank, a Args) {
	return func(r *mpi.Rank, a Args) {
		a.validate(r)
		rec, span := beginColl(r, "bcast:vandegeijn-"+tr.name(), a)
		defer rec.End(span)
		p := r.Size()
		buf := bcastBuf(r, a)
		if p == 1 {
			return
		}
		chunk := (a.Count + int64(p) - 1) / int64(p)
		// Scatter chunks with a binomial tree in relative space. Chunk i
		// (relative) lives at offset i·chunk of buf everywhere.
		rel := relRank(r.ID, a.Root, p)
		chunkRange := func(lo, n int) (kernel.Addr, int64) {
			off := int64(lo) * chunk
			if off >= a.Count {
				return 0, 0
			}
			end := int64(lo+n) * chunk
			if end > a.Count {
				end = a.Count
			}
			return kernel.Addr(off), end - off
		}
		cnt := p
		if rel != 0 {
			cnt = lowbit(rel)
			if p-rel < cnt {
				cnt = p - rel
			}
			parent := rel - lowbit(rel)
			off, n := chunkRange(rel, cnt)
			if n > 0 {
				tr.recv(r, absRank(parent, a.Root, p), buf+off, n)
			}
		}
		top := lowbit(rel)
		if rel == 0 {
			top = 1
			for top < p {
				top <<= 1
			}
		}
		for mask := top >> 1; mask >= 1; mask >>= 1 {
			child := rel + mask
			if child >= p || mask >= cnt {
				continue
			}
			ccnt := cnt - mask
			if ccnt > mask {
				ccnt = mask
			}
			off, n := chunkRange(child, ccnt)
			if n > 0 {
				tr.send(r, absRank(child, a.Root, p), buf+off, n)
			}
		}
		// Ring allgather of the chunks in relative space.
		nextRel := (rel + 1) % p
		prevRel := (rel - 1 + p) % p
		next := absRank(nextRel, a.Root, p)
		prev := absRank(prevRel, a.Root, p)
		for i := 0; i < p-1; i++ {
			sblk := (rel - i + p) % p
			rblk := (rel - i - 1 + 2*p) % p
			// Zero-length chunks (Count < p) still exchange an empty
			// message so both sides of every pair stay aligned.
			soff, sn := chunkRange(sblk, 1)
			roff, rn := chunkRange(rblk, 1)
			tr.sendrecv(r, next, buf+soff, sn, prev, buf+roff, rn)
		}
	}
}

// AlltoallPairwise returns the pairwise exchange over the chosen
// transport (the pt2pt version is AlltoallPairwisePt2pt; this generalizes
// it for the comparator libraries).
func AlltoallPairwise(tr Transport) func(r *mpi.Rank, a Args) {
	if tr == TransportShm {
		return AlltoallPairwiseShm
	}
	return AlltoallPairwisePt2pt
}
