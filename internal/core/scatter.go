package core

import (
	"camc/internal/kernel"
	"camc/internal/mpi"
)

// Scatter semantics: the root holds p blocks of Count bytes at Send
// (block i for rank i, in absolute rank order); every rank ends with its
// block at Recv. With InPlace, the root's own block stays in Send.

// ScatterParallelRead (§IV-A.1): the root broadcasts its send-buffer
// address through shared memory; every non-root then reads its block
// concurrently (concurrency p−1 on the root's mm) and notifies the root.
//
//	T = T^sm_bcast + α + ηβ + l·γ_{p−1}·⌈η/s⌉ + T^sm_gather
func ScatterParallelRead(r *mpi.Rank, a Args) {
	a.validate(r)
	rec, span := beginColl(r, "scatter:parallel-read", a)
	defer rec.End(span)
	p := r.Size()
	sendAddr := kernel.Addr(r.Bcast64(a.Root, int64(a.Send)))
	if r.ID == a.Root {
		if !a.InPlace {
			r.LocalCopy(a.Recv, a.Send+kernel.Addr(int64(a.Root)*a.Count), a.Count)
		}
		for i := 0; i < p-1; i++ {
			r.WaitNotify(nonRootByIndex(i, a.Root, p))
		}
		return
	}
	r.VMRead(a.Recv, a.Root, sendAddr+kernel.Addr(int64(r.ID)*a.Count), a.Count)
	r.Notify(a.Root)
}

// ScatterSeqWrite (§IV-A.2): the root gathers every receive-buffer
// address and writes each block with a contention-free CMA write, one
// rank at a time, then broadcasts completion.
//
//	T = T_memcpy + T^sm_gather + (p−1)(α + ηβ + l·⌈η/s⌉) + T^sm_bcast
func ScatterSeqWrite(r *mpi.Rank, a Args) {
	a.validate(r)
	rec, span := beginColl(r, "scatter:sequential-write", a)
	defer rec.End(span)
	p := r.Size()
	addrs := r.Gather64(a.Root, int64(a.Recv))
	if r.ID == a.Root {
		if !a.InPlace {
			r.LocalCopy(a.Recv, a.Send+kernel.Addr(int64(a.Root)*a.Count), a.Count)
		}
		for idx := 0; idx < p-1; idx++ {
			dst := nonRootByIndex(idx, a.Root, p)
			r.VMWrite(a.Send+kernel.Addr(int64(dst)*a.Count), dst, kernel.Addr(addrs[dst]), a.Count)
		}
	}
	r.Bcast64(a.Root, 0) // completion notification
}

// ScatterThrottled (§IV-A.3): at most k non-roots read from the root
// concurrently. Synchronization is pipelined point-to-point: non-root
// index i first waits for a 0-byte message from index i−k (if any),
// reads its block, then releases index i+k. The root waits only for the
// final wave.
//
//	T ≈ T^sm_bcast + ⌈(p−1)/k⌉(α + ηβ + l·γ_k·⌈η/s⌉)
func ScatterThrottled(k int) func(r *mpi.Rank, a Args) {
	if k < 1 {
		panic("core: throttle factor must be >= 1")
	}
	return func(r *mpi.Rank, a Args) {
		a.validate(r)
		rec, span := beginColl(r, "scatter:"+throttleName(k), a)
		defer rec.End(span)
		p := r.Size()
		sendAddr := kernel.Addr(r.Bcast64(a.Root, int64(a.Send)))
		if r.ID == a.Root {
			if !a.InPlace {
				r.LocalCopy(a.Recv, a.Send+kernel.Addr(int64(a.Root)*a.Count), a.Count)
			}
			// The final wave is the last min(k, p-1) non-roots.
			first := p - 1 - k
			if first < 0 {
				first = 0
			}
			for idx := first; idx < p-1; idx++ {
				r.WaitNotify(nonRootByIndex(idx, a.Root, p))
			}
			return
		}
		idx := nonRootIndex(r.ID, a.Root, p)
		if idx-k >= 0 {
			r.WaitNotify(nonRootByIndex(idx-k, a.Root, p))
		}
		tokenAcquire(r, k)
		r.VMRead(a.Recv, a.Root, sendAddr+kernel.Addr(int64(r.ID)*a.Count), a.Count)
		if idx+k <= p-2 {
			to := nonRootByIndex(idx+k, a.Root, p)
			tokenRelease(r, to, k)
			r.Notify(to)
		} else {
			tokenRelease(r, a.Root, k)
			r.Notify(a.Root)
		}
	}
}

// ScatterAlgorithms returns the registered Scatter implementations, with
// throttle factors appropriate for up to maxProcs ranks.
func ScatterAlgorithms(throttles ...int) []Algorithm {
	algos := []Algorithm{
		{Name: "parallel-read", Kind: KindScatter, Run: ScatterParallelRead},
		{Name: "sequential-write", Kind: KindScatter, Run: ScatterSeqWrite},
	}
	for _, k := range throttles {
		algos = append(algos, Algorithm{
			Name: throttleName(k),
			Kind: KindScatter,
			Run:  ScatterThrottled(k),
		})
	}
	return algos
}

func throttleName(k int) string { return "throttle-" + itoa(k) }

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}
