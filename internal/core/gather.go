package core

import (
	"camc/internal/kernel"
	"camc/internal/mpi"
)

// Gather semantics: every rank contributes Count bytes at Send; the root
// ends with p blocks at Recv in absolute rank order. With InPlace, the
// root's own block is already at Recv[root].

// GatherParallelWrite (§IV-B.1): the root broadcasts its receive-buffer
// address; every non-root writes its block concurrently (concurrency p−1
// on the root's mm) and notifies the root.
//
//	T = T^sm_bcast + α + ηβ + l·γ_{p−1}·⌈η/s⌉ + T^sm_gather
func GatherParallelWrite(r *mpi.Rank, a Args) {
	a.validate(r)
	rec, span := beginColl(r, "gather:parallel-write", a)
	defer rec.End(span)
	p := r.Size()
	recvAddr := kernel.Addr(r.Bcast64(a.Root, int64(a.Recv)))
	if r.ID == a.Root {
		if !a.InPlace {
			r.LocalCopy(a.Recv+kernel.Addr(int64(a.Root)*a.Count), a.Send, a.Count)
		}
		for i := 0; i < p-1; i++ {
			r.WaitNotify(nonRootByIndex(i, a.Root, p))
		}
		return
	}
	r.VMWrite(a.Send, a.Root, recvAddr+kernel.Addr(int64(r.ID)*a.Count), a.Count)
	r.Notify(a.Root)
}

// GatherSeqRead (§IV-B.2): the root gathers every send-buffer address and
// reads each block with a contention-free CMA read, one rank at a time,
// then broadcasts completion.
//
//	T = T_memcpy + T^sm_gather + (p−1)(α + ηβ + l·⌈η/s⌉) + T^sm_bcast
func GatherSeqRead(r *mpi.Rank, a Args) {
	a.validate(r)
	rec, span := beginColl(r, "gather:sequential-read", a)
	defer rec.End(span)
	p := r.Size()
	addrs := r.Gather64(a.Root, int64(a.Send))
	if r.ID == a.Root {
		if !a.InPlace {
			r.LocalCopy(a.Recv+kernel.Addr(int64(a.Root)*a.Count), a.Send, a.Count)
		}
		for idx := 0; idx < p-1; idx++ {
			src := nonRootByIndex(idx, a.Root, p)
			r.VMRead(a.Recv+kernel.Addr(int64(src)*a.Count), src, kernel.Addr(addrs[src]), a.Count)
		}
	}
	r.Bcast64(a.Root, 0) // completion notification
}

// GatherThrottled (§IV-B.3): at most k non-roots write into the root's
// receive buffer concurrently, with the same pipelined point-to-point
// release chain as ScatterThrottled.
//
//	T ≈ T^sm_bcast + ⌈(p−1)/k⌉(α + ηβ + l·γ_k·⌈η/s⌉)
func GatherThrottled(k int) func(r *mpi.Rank, a Args) {
	if k < 1 {
		panic("core: throttle factor must be >= 1")
	}
	return func(r *mpi.Rank, a Args) {
		a.validate(r)
		rec, span := beginColl(r, "gather:"+throttleName(k), a)
		defer rec.End(span)
		p := r.Size()
		recvAddr := kernel.Addr(r.Bcast64(a.Root, int64(a.Recv)))
		if r.ID == a.Root {
			if !a.InPlace {
				r.LocalCopy(a.Recv+kernel.Addr(int64(a.Root)*a.Count), a.Send, a.Count)
			}
			first := p - 1 - k
			if first < 0 {
				first = 0
			}
			for idx := first; idx < p-1; idx++ {
				r.WaitNotify(nonRootByIndex(idx, a.Root, p))
			}
			return
		}
		idx := nonRootIndex(r.ID, a.Root, p)
		if idx-k >= 0 {
			r.WaitNotify(nonRootByIndex(idx-k, a.Root, p))
		}
		tokenAcquire(r, k)
		r.VMWrite(a.Send, a.Root, recvAddr+kernel.Addr(int64(r.ID)*a.Count), a.Count)
		if idx+k <= p-2 {
			to := nonRootByIndex(idx+k, a.Root, p)
			tokenRelease(r, to, k)
			r.Notify(to)
		} else {
			tokenRelease(r, a.Root, k)
			r.Notify(a.Root)
		}
	}
}

// GatherAlgorithms returns the registered Gather implementations.
func GatherAlgorithms(throttles ...int) []Algorithm {
	algos := []Algorithm{
		{Name: "parallel-write", Kind: KindGather, Run: GatherParallelWrite},
		{Name: "sequential-read", Kind: KindGather, Run: GatherSeqRead},
	}
	for _, k := range throttles {
		algos = append(algos, Algorithm{
			Name: throttleName(k),
			Kind: KindGather,
			Run:  GatherThrottled(k),
		})
	}
	return algos
}
