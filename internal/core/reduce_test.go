package core

import (
	"testing"

	"camc/internal/arch"
	"camc/internal/kernel"
	"camc/internal/mpi"
)

// reduceFixture builds a communicator where rank r's send vector is
// filled with f(r, i); the expected reduction at offset i is the mod-256
// sum over ranks.
func runReduce(t *testing.T, p int, count int64, root int, algo func(*mpi.Rank, Args)) {
	t.Helper()
	mem := (8 + 8*int64(p)) * (count + 4096)
	c := mpi.New(mpi.Config{Arch: arch.KNL(), Procs: p, CopyData: true, MemPerProc: mem})
	send := make([]kernel.Addr, p)
	recv := make([]kernel.Addr, p)
	for i := 0; i < p; i++ {
		send[i] = c.Rank(i).Alloc(count)
		recv[i] = c.Rank(i).Alloc(count)
		buf := c.Rank(i).OS.Bytes(send[i], count)
		for j := range buf {
			buf[j] = byte(i*13 + j%31)
		}
	}
	c.Start(func(r *mpi.Rank) {
		algo(r, Args{Send: send[r.ID], Recv: recv[r.ID], Count: count, Root: root})
	})
	if err := c.Sim.Run(); err != nil {
		t.Fatalf("p=%d root=%d: %v", p, root, err)
	}
	got := c.Rank(root).OS.Bytes(recv[root], count)
	for _, j := range sampleOffsets(count) {
		var want byte
		for i := 0; i < p; i++ {
			want += byte(i*13 + int(j)%31)
		}
		if got[j] != want {
			t.Fatalf("p=%d root=%d offset %d: got %d want %d", p, root, j, got[j], want)
		}
	}
}

func TestReduceAlgorithmsCorrect(t *testing.T) {
	for _, algo := range ReduceAlgorithms(2, 3, 4, 9) {
		algo := algo
		t.Run(algo.Name, func(t *testing.T) {
			for _, p := range testProcCounts {
				for _, root := range rootsFor(p) {
					runReduce(t, p, 4500, root, algo.Run)
				}
			}
		})
	}
}

func TestTunedReduceCorrectAcrossThreshold(t *testing.T) {
	for _, count := range []int64{512, 5000, 40000} {
		runReduce(t, 9, count, 2, TunedReduce)
	}
}

func TestAllreduceEveryRankGetsResult(t *testing.T) {
	p := 8
	const count = 6000
	c := mpi.New(mpi.Config{Arch: arch.KNL(), Procs: p, CopyData: true, MemPerProc: 64 << 20})
	send := make([]kernel.Addr, p)
	recv := make([]kernel.Addr, p)
	for i := 0; i < p; i++ {
		send[i] = c.Rank(i).Alloc(count)
		recv[i] = c.Rank(i).Alloc(count)
		buf := c.Rank(i).OS.Bytes(send[i], count)
		for j := range buf {
			buf[j] = byte(i + j%17)
		}
	}
	c.Start(func(r *mpi.Rank) {
		AllreduceReduceBcast(r, Args{Send: send[r.ID], Recv: recv[r.ID], Count: count, Root: 0})
	})
	if err := c.Sim.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < p; i++ {
		got := c.Rank(i).OS.Bytes(recv[i], count)
		for _, j := range sampleOffsets(count) {
			var want byte
			for s := 0; s < p; s++ {
				want += byte(s + int(j)%17)
			}
			if got[j] != want {
				t.Fatalf("rank %d offset %d: got %d want %d", i, j, got[j], want)
			}
		}
	}
}

// reduceLatency measures one dataless Reduce invocation at full KNL
// subscription (the measure package cannot be used here: it imports
// core).
func reduceLatency(algo func(*mpi.Rank, Args), eta int64) float64 {
	a := arch.KNL()
	c := mpi.New(mpi.Config{Arch: a, CopyData: false})
	p := c.Size()
	send := make([]kernel.Addr, p)
	recv := make([]kernel.Addr, p)
	for i := 0; i < p; i++ {
		send[i] = c.Rank(i).Alloc(eta)
		recv[i] = c.Rank(i).Alloc(eta)
	}
	c.Start(func(r *mpi.Rank) {
		algo(r, Args{Send: send[r.ID], Recv: recv[r.ID], Count: eta, Root: 0})
	})
	if err := c.Sim.Run(); err != nil {
		panic(err)
	}
	return c.Sim.Now()
}

func TestReduceKnomialBeatsParallelWrite(t *testing.T) {
	// The contention-aware tree must clearly beat the γ_{p−1} design at
	// full KNL subscription and large vectors.
	eta := int64(1 << 20)
	tree := reduceLatency(ReduceKnomial(9), eta)
	naive := reduceLatency(ReduceParallelWrite, eta)
	if naive < 2*tree {
		t.Fatalf("parallel-write reduce %.0fus not clearly above knomial %.0fus", naive, tree)
	}
}

func TestReduceCombineIsExact(t *testing.T) {
	// Byte-wise addition wraps mod 256; verify a case that overflows.
	runReduce(t, 16, 1024, 0, ReduceKnomial(4))
}
