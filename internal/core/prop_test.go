package core

// Property-based correctness suite: every registered algorithm of every
// collective kind is driven through randomized (rank count, message
// size, root, fault plan) cells and must land exactly the bytes MPI
// semantics demand. Sizes deliberately include the awkward cases the
// fixed-size tests never hit — 1 byte, odd non-power-of-two lengths,
// and sizes straddling a page boundary — and a third of the cells run
// under an injected-fault plan, asserting the graceful-degradation
// machinery (retries, resumed partial completions, two-copy fallback)
// changes when bytes arrive but never which bytes. Everything is
// seeded: a failure reproduces from the cell number alone.

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"testing"

	"camc/internal/arch"
	"camc/internal/fault"
)

// propCells is the number of randomized cells per registered algorithm.
const propCells = 50

// propProcPool is the rank-count pool cells draw from: odd counts,
// non-powers-of-two and a two-socket-spanning count, alongside the
// friendly powers of two.
var propProcPool = []int{1, 2, 3, 4, 5, 6, 7, 8, 12}

// propAlgorithms enumerates every registered algorithm per kind — the
// kind registries with the parameter ladders the rest of the suite
// uses, the point-to-point/shared-memory baselines, and the tuned
// selectors.
func propAlgorithms() map[Kind][]Algorithm {
	m := map[Kind][]Algorithm{}
	m[KindScatter] = append(ScatterAlgorithms(1, 2, 3, 4, 8),
		Algorithm{Name: "binomial-pt2pt", Kind: KindScatter, Run: ScatterBinomial(TransportPt2pt)},
		Algorithm{Name: "binomial-shm", Kind: KindScatter, Run: ScatterBinomial(TransportShm)},
		Algorithm{Name: "tuned", Kind: KindScatter, Run: Tuned(KindScatter)})
	m[KindGather] = append(GatherAlgorithms(1, 2, 3, 4, 8),
		Algorithm{Name: "binomial-pt2pt", Kind: KindGather, Run: GatherBinomial(TransportPt2pt)},
		Algorithm{Name: "binomial-shm", Kind: KindGather, Run: GatherBinomial(TransportShm)},
		Algorithm{Name: "tuned", Kind: KindGather, Run: Tuned(KindGather)})
	m[KindAlltoall] = append(AlltoallAlgorithms(),
		Algorithm{Name: "pairwise-pt2pt-baseline", Kind: KindAlltoall, Run: AlltoallPairwise(TransportPt2pt)},
		Algorithm{Name: "pairwise-shm-baseline", Kind: KindAlltoall, Run: AlltoallPairwise(TransportShm)},
		Algorithm{Name: "tuned", Kind: KindAlltoall, Run: Tuned(KindAlltoall)})
	m[KindAllgather] = append(AllgatherAlgorithms(1, 3),
		Algorithm{Name: "ring-pt2pt", Kind: KindAllgather, Run: AllgatherRing(TransportPt2pt)},
		Algorithm{Name: "ring-shm", Kind: KindAllgather, Run: AllgatherRing(TransportShm)},
		Algorithm{Name: "tuned", Kind: KindAllgather, Run: Tuned(KindAllgather)})
	m[KindBcast] = append(BcastAlgorithms(2, 3, 4, 8),
		Algorithm{Name: "binomial-pt2pt", Kind: KindBcast, Run: BcastBinomial(TransportPt2pt)},
		Algorithm{Name: "binomial-shm", Kind: KindBcast, Run: BcastBinomial(TransportShm)},
		Algorithm{Name: "vandegeijn-pt2pt", Kind: KindBcast, Run: BcastVanDeGeijn(TransportPt2pt)},
		Algorithm{Name: "tuned", Kind: KindBcast, Run: Tuned(KindBcast)})
	m[KindReduce] = append(ReduceAlgorithms(2, 3, 4),
		Algorithm{Name: "tuned", Kind: KindReduce, Run: TunedReduce})
	return m
}

// propSkip reports whether an algorithm cannot legally run at p ranks
// (mirrors the algorithm's own validation, which panics).
func propSkip(name string, p int) bool {
	var j int
	if _, err := fmt.Sscanf(name, "ring-neighbor-%d", &j); err == nil {
		return gcd(j, p) != 1
	}
	return false
}

// propRooted reports whether the kind takes a root argument.
func propRooted(kind Kind) bool {
	switch kind {
	case KindScatter, KindGather, KindBcast, KindReduce:
		return true
	}
	return false
}

// verifyReduce checks the root's receive buffer holds the elementwise
// byte sum (mod 256) of every rank's send vector.
func (f *fixture) verifyReduce(t *testing.T, root int) {
	t.Helper()
	for _, i := range sampleOffsets(f.count) {
		var want byte
		for src := 0; src < f.p; src++ {
			want += pattern(src, 0, int(i))
		}
		f.checkByte(t, root, f.recv[root], i, want, "reduce")
	}
}

// verify dispatches to the kind's payload check.
func (f *fixture) verify(t *testing.T, kind Kind, root int) {
	t.Helper()
	switch kind {
	case KindScatter:
		f.verifyScatter(t, root)
	case KindGather:
		f.verifyGather(t, root)
	case KindAlltoall:
		f.verifyAlltoall(t)
	case KindAllgather:
		f.verifyAllgather(t)
	case KindBcast:
		f.verifyBcast(t, root)
	case KindReduce:
		f.verifyReduce(t, root)
	default:
		t.Fatalf("verify: unknown kind %s", kind)
	}
}

// propSeed derives a stable per-algorithm seed from its identity, so a
// failing cell reproduces without rerunning the whole suite.
func propSeed(kind Kind, name string) int64 {
	h := fnv.New64a()
	h.Write([]byte(string(kind) + "/" + name))
	return int64(h.Sum64() & (1<<62 - 1))
}

// propCount draws the per-rank byte count for cell ci: the first cells
// force the adversarial sizes (1 byte, 2 bytes, page-1/page/page+1
// around the architecture page, an odd page-straddler), the rest are
// uniform odd-friendly random sizes up to ~2.5 pages.
func propCount(rng *rand.Rand, ci int, page int64) int64 {
	specials := []int64{1, 2, page - 1, page, page + 1, 2*page + 3}
	if ci < len(specials) {
		return specials[ci]
	}
	return 1 + rng.Int63n(5*page/2)
}

// propFault builds the cell's fault plan: every third cell runs under
// moderate-to-heavy injection with a tight retry budget, so the suite
// exercises retries, resumed short completions AND the exhaustion →
// two-copy fallback path — all of which must be payload-invisible.
func propFault(rng *rand.Rand, ci int) *fault.Config {
	if ci%3 != 0 {
		return nil
	}
	return &fault.Config{
		Seed:          rng.Int63(),
		PartialProb:   0.20,
		TransientProb: 0.35,
		LockSpikeProb: 0.05,
		ShmStallProb:  0.05,
		MaxRetries:    2 + rng.Intn(3), // tight: force some peers into fallback
	}
}

// TestPropertyAllAlgorithms is the randomized sweep itself. Cells are
// generated per-algorithm from a seed derived from the algorithm's
// identity; nothing depends on wall clock, iteration order of maps, or
// scheduling, so every run checks the identical cell set.
func TestPropertyAllAlgorithms(t *testing.T) {
	a := arch.Broadwell()
	page := int64(a.PageSize)
	for kind, algos := range propAlgorithms() {
		kind := kind
		for _, algo := range algos {
			algo := algo
			t.Run(string(kind)+"/"+algo.Name, func(t *testing.T) {
				t.Parallel()
				rng := rand.New(rand.NewSource(propSeed(kind, algo.Name)))
				for ci := 0; ci < propCells; ci++ {
					p := propProcPool[rng.Intn(len(propProcPool))]
					count := propCount(rng, ci, page)
					root := 0
					if propRooted(kind) {
						root = rng.Intn(p)
					}
					fcfg := propFault(rng, ci)
					if propSkip(algo.Name, p) {
						continue
					}
					f := newFaultFixture(t, a, p, kind, count, fcfg)
					f.run(t, algo.Run, root)
					f.verify(t, kind, root)
					if t.Failed() {
						t.Fatalf("cell %d: kind=%s algo=%s p=%d count=%d root=%d faults=%v",
							ci, kind, algo.Name, p, count, root, fcfg != nil)
					}
				}
			})
		}
	}
}

// TestPropertyFaultCellsDoInject guards the suite against silently
// testing nothing: rerunning a sampling of the fault cells must show
// the plans actually fired (otherwise probabilities or thresholds
// drifted and the "with faults" half of the sweep became vacuous).
func TestPropertyFaultCellsDoInject(t *testing.T) {
	a := arch.Broadwell()
	rng := rand.New(rand.NewSource(propSeed(KindScatter, "inject-guard")))
	var injected int64
	for ci := 0; ci < 12; ci += 3 {
		fcfg := propFault(rng, ci)
		if fcfg == nil {
			t.Fatalf("cell %d: expected a fault config", ci)
		}
		f := newFaultFixture(t, a, 8, KindAlltoall, 3*int64(a.PageSize), fcfg)
		f.run(t, AlltoallPairwiseColl, 0)
		f.verifyAlltoall(t)
		st := f.comm.FaultPlan().Stats()
		injected += st.Transients + st.Partials + st.LockSpikes + st.ShmStalls
	}
	if injected == 0 {
		t.Fatal("fault cells injected nothing; the faulty half of the property suite is vacuous")
	}
}

// TestPropertySuiteCoversEveryLookupSpec cross-checks the enumeration
// above against the user-facing spec registry: every algorithm
// LookupAlgorithm can name must appear in the property pool (same Kind,
// same registered name), so adding a collective algorithm without
// extending the suite fails here rather than going silently untested.
func TestPropertySuiteCoversEveryLookupSpec(t *testing.T) {
	pool := propAlgorithms()
	check := func(kind Kind, algos []Algorithm) {
		for _, want := range algos {
			found := false
			for _, have := range pool[kind] {
				if have.Name == want.Name {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("%s/%s is registered but absent from the property pool", kind, want.Name)
			}
		}
	}
	check(KindScatter, ScatterAlgorithms(1, 2, 3, 4, 8))
	check(KindGather, GatherAlgorithms(1, 2, 3, 4, 8))
	check(KindAlltoall, AlltoallAlgorithms())
	check(KindAllgather, AllgatherAlgorithms(1, 3))
	check(KindBcast, BcastAlgorithms(2, 3, 4, 8))
	check(KindReduce, ReduceAlgorithms(2, 3, 4))
}
