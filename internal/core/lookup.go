package core

// LookupAlgorithm resolves an algorithm spec string for a collective
// kind, as accepted by the camc-trace command line. Specs are the
// registered algorithm names, with an optional ":k" parameter for the
// parameterized families:
//
//	scatter:   parallel-read | sequential-write | throttled[:k] | binomial-shm | binomial-pt2pt | tuned
//	gather:    parallel-write | sequential-read | throttled[:k] | binomial-shm | binomial-pt2pt | tuned
//	bcast:     direct-read | direct-write | scatter-allgather | knomial-read[:k] |
//	           knomial-write[:k] | binomial-shm | vandegeijn-pt2pt | tuned
//	allgather: ring-source-read | ring-source-write | ring-neighbor[:j] |
//	           recursive-doubling | bruck | ring-pt2pt | ring-shm | tuned
//	alltoall:  pairwise-cma-coll | pairwise-cma-pt2pt | pairwise-shmem | bruck | tuned
//	reduce:    flat-sequential | parallel-write | knomial[:k] | binomial-shm | binomial-pt2pt | tuned
//
// "throttle:k" and "throttled:k" are synonyms, as are "pairwise" and
// "pairwise-cma-coll". Defaults when the parameter is omitted: k=4 for
// throttled and the bcast k-nomial trees, k=2 for the reduce k-nomial
// tree, j=1 for the neighbor ring. A ":k" suffix on a parameter-free
// family is rejected rather than silently ignored.
//
// The grammar is shared with Replan (see spec.go), so every spec this
// function accepts also replans after a communicator shrink.
func LookupAlgorithm(kind Kind, spec string) (Algorithm, error) {
	e, k, err := resolveSpec(kind, spec)
	if err != nil {
		return Algorithm{}, err
	}
	return Algorithm{Name: spec, Kind: kind, Run: e.build(k)}, nil
}
