package core

import (
	"fmt"
	"strconv"
	"strings"
)

// LookupAlgorithm resolves an algorithm spec string for a collective
// kind, as accepted by the camc-trace command line. Specs are the
// registered algorithm names, with an optional ":k" parameter for the
// parameterized families:
//
//	scatter:   parallel-read | sequential-write | throttled[:k] | binomial-shm | binomial-pt2pt | tuned
//	gather:    parallel-write | sequential-read | throttled[:k] | binomial-shm | binomial-pt2pt | tuned
//	bcast:     direct-read | direct-write | scatter-allgather | knomial-read[:k] |
//	           knomial-write[:k] | binomial-shm | vandegeijn-pt2pt | tuned
//	allgather: ring-source-read | ring-source-write | ring-neighbor[:j] |
//	           recursive-doubling | bruck | ring-pt2pt | ring-shm | tuned
//	alltoall:  pairwise-cma-coll | pairwise-cma-pt2pt | pairwise-shmem | bruck | tuned
//
// "throttle:k" and "throttled:k" are synonyms. Defaults when the
// parameter is omitted: k=4 for throttled, k=4 for k-nomial trees,
// j=1 for the neighbor ring.
func LookupAlgorithm(kind Kind, spec string) (Algorithm, error) {
	name, param := spec, 0
	if i := strings.IndexByte(spec, ':'); i >= 0 {
		name = spec[:i]
		v, err := strconv.Atoi(spec[i+1:])
		if err != nil || v < 1 {
			return Algorithm{}, fmt.Errorf("core: bad parameter in algorithm spec %q", spec)
		}
		param = v
	}
	withDefault := func(def int) int {
		if param == 0 {
			return def
		}
		return param
	}
	if name == "tuned" {
		return Algorithm{Name: spec, Kind: kind, Run: Tuned(kind)}, nil
	}
	switch kind {
	case KindScatter:
		switch name {
		case "parallel-read":
			return Algorithm{Name: spec, Kind: kind, Run: ScatterParallelRead}, nil
		case "sequential-write":
			return Algorithm{Name: spec, Kind: kind, Run: ScatterSeqWrite}, nil
		case "throttle", "throttled":
			return Algorithm{Name: spec, Kind: kind, Run: ScatterThrottled(withDefault(4))}, nil
		case "binomial-shm":
			return Algorithm{Name: spec, Kind: kind, Run: ScatterBinomial(TransportShm)}, nil
		case "binomial-pt2pt":
			return Algorithm{Name: spec, Kind: kind, Run: ScatterBinomial(TransportPt2pt)}, nil
		}
	case KindGather:
		switch name {
		case "parallel-write":
			return Algorithm{Name: spec, Kind: kind, Run: GatherParallelWrite}, nil
		case "sequential-read":
			return Algorithm{Name: spec, Kind: kind, Run: GatherSeqRead}, nil
		case "throttle", "throttled":
			return Algorithm{Name: spec, Kind: kind, Run: GatherThrottled(withDefault(4))}, nil
		case "binomial-shm":
			return Algorithm{Name: spec, Kind: kind, Run: GatherBinomial(TransportShm)}, nil
		case "binomial-pt2pt":
			return Algorithm{Name: spec, Kind: kind, Run: GatherBinomial(TransportPt2pt)}, nil
		}
	case KindBcast:
		switch name {
		case "direct-read":
			return Algorithm{Name: spec, Kind: kind, Run: BcastDirectRead}, nil
		case "direct-write":
			return Algorithm{Name: spec, Kind: kind, Run: BcastDirectWrite}, nil
		case "scatter-allgather":
			return Algorithm{Name: spec, Kind: kind, Run: BcastScatterAllgather}, nil
		case "knomial-read":
			return Algorithm{Name: spec, Kind: kind, Run: BcastKnomialRead(withDefault(4))}, nil
		case "knomial-write":
			return Algorithm{Name: spec, Kind: kind, Run: BcastKnomialWrite(withDefault(4))}, nil
		case "binomial-shm":
			return Algorithm{Name: spec, Kind: kind, Run: BcastBinomial(TransportShm)}, nil
		case "vandegeijn-pt2pt":
			return Algorithm{Name: spec, Kind: kind, Run: BcastVanDeGeijn(TransportPt2pt)}, nil
		}
	case KindAllgather:
		switch name {
		case "ring-source-read":
			return Algorithm{Name: spec, Kind: kind, Run: AllgatherRingSourceRead}, nil
		case "ring-source-write":
			return Algorithm{Name: spec, Kind: kind, Run: AllgatherRingSourceWrite}, nil
		case "ring-neighbor":
			return Algorithm{Name: spec, Kind: kind, Run: AllgatherRingNeighbor(withDefault(1))}, nil
		case "recursive-doubling":
			return Algorithm{Name: spec, Kind: kind, Run: AllgatherRecursiveDoubling}, nil
		case "bruck":
			return Algorithm{Name: spec, Kind: kind, Run: AllgatherBruck}, nil
		case "ring-pt2pt":
			return Algorithm{Name: spec, Kind: kind, Run: AllgatherRing(TransportPt2pt)}, nil
		case "ring-shm":
			return Algorithm{Name: spec, Kind: kind, Run: AllgatherRing(TransportShm)}, nil
		}
	case KindAlltoall:
		switch name {
		case "pairwise-cma-coll", "pairwise":
			return Algorithm{Name: spec, Kind: kind, Run: AlltoallPairwiseColl}, nil
		case "pairwise-cma-pt2pt":
			return Algorithm{Name: spec, Kind: kind, Run: AlltoallPairwisePt2pt}, nil
		case "pairwise-shmem":
			return Algorithm{Name: spec, Kind: kind, Run: AlltoallPairwiseShm}, nil
		case "bruck":
			return Algorithm{Name: spec, Kind: kind, Run: AlltoallBruck}, nil
		}
	}
	return Algorithm{}, fmt.Errorf("core: unknown %s algorithm %q", kind, name)
}
