package core

import (
	"fmt"
	"testing"

	"camc/internal/arch"
	"camc/internal/fault"
	"camc/internal/kernel"
	"camc/internal/mpi"
)

// pattern generates the test byte at offset i of the block rank src
// addresses to rank dst.
func pattern(src, dst, i int) byte { return byte(src*37 + dst*11 + i*7 + 5) }

// fixture holds one prepared collective run.
type fixture struct {
	comm  *mpi.Comm
	send  []kernel.Addr // per-rank send buffer
	recv  []kernel.Addr // per-rank recv buffer
	p     int
	count int64
}

// newFixture builds a communicator with send/recv buffers sized per the
// collective kind and fills send buffers with the pattern.
func newFixture(t *testing.T, a *arch.Profile, p int, kind Kind, count int64) *fixture {
	t.Helper()
	return newFaultFixture(t, a, p, kind, count, nil)
}

// newFaultFixture is newFixture with an optional fault-injection plan
// attached (nil = fault-free): the property and metamorphic suites use
// it to assert faults never change which bytes land.
func newFaultFixture(t *testing.T, a *arch.Profile, p int, kind Kind, count int64, fcfg *fault.Config) *fixture {
	t.Helper()
	mem := (8*int64(p) + 16) * (count + 4096)
	if mem < 1<<20 {
		mem = 1 << 20
	}
	c := mpi.New(mpi.Config{Arch: a, Procs: p, CopyData: true, MemPerProc: mem, Fault: fcfg})
	f := &fixture{comm: c, p: p, count: count}
	for r := 0; r < p; r++ {
		rank := c.Rank(r)
		var sendLen, recvLen int64
		switch kind {
		case KindScatter:
			sendLen, recvLen = int64(p)*count, count // send used at root only
		case KindGather:
			sendLen, recvLen = count, int64(p)*count
		case KindAlltoall, KindAllgather:
			sendLen, recvLen = int64(p)*count, int64(p)*count
		case KindBcast, KindReduce:
			sendLen, recvLen = count, count
		}
		sa := rank.Alloc(sendLen)
		ra := rank.Alloc(recvLen)
		f.send = append(f.send, sa)
		f.recv = append(f.recv, ra)
		// Fill send patterns.
		switch kind {
		case KindScatter: // root sends block d to rank d
			buf := rank.OS.Bytes(sa, sendLen)
			for d := 0; d < p; d++ {
				for i := int64(0); i < count; i++ {
					buf[int64(d)*count+i] = pattern(r, d, int(i))
				}
			}
		case KindAlltoall:
			buf := rank.OS.Bytes(sa, sendLen)
			for d := 0; d < p; d++ {
				for i := int64(0); i < count; i++ {
					buf[int64(d)*count+i] = pattern(r, d, int(i))
				}
			}
		case KindGather, KindAllgather, KindBcast, KindReduce:
			buf := rank.OS.Bytes(sa, sendLen)
			for i := int64(0); i < count; i++ {
				buf[i] = pattern(r, 0, int(i))
			}
		}
		// Poison recv buffers.
		rb := rank.OS.Bytes(ra, recvLen)
		for i := range rb {
			rb[i] = 0xEE
		}
	}
	return f
}

// run executes the algorithm on every rank and fails the test on any
// simulation error.
func (f *fixture) run(t *testing.T, algo func(r *mpi.Rank, a Args), root int) {
	t.Helper()
	f.comm.Start(func(r *mpi.Rank) {
		algo(r, Args{Send: f.send[r.ID], Recv: f.recv[r.ID], Count: f.count, Root: root})
	})
	if err := f.comm.Sim.Run(); err != nil {
		t.Fatal(err)
	}
}

func (f *fixture) checkByte(t *testing.T, rank int, addr kernel.Addr, off int64, want byte, what string) {
	t.Helper()
	got := f.comm.Rank(rank).OS.Bytes(addr+kernel.Addr(off), 1)[0]
	if got != want {
		t.Fatalf("%s: rank %d offset %d: got %#x, want %#x", what, rank, off, got, want)
	}
}

// verifyScatter checks every rank received its block from root.
func (f *fixture) verifyScatter(t *testing.T, root int) {
	t.Helper()
	for r := 0; r < f.p; r++ {
		for _, i := range sampleOffsets(f.count) {
			f.checkByte(t, r, f.recv[r], i, pattern(root, r, int(i)), "scatter")
		}
	}
}

func (f *fixture) verifyGather(t *testing.T, root int) {
	t.Helper()
	for src := 0; src < f.p; src++ {
		base := int64(src) * f.count
		for _, i := range sampleOffsets(f.count) {
			f.checkByte(t, root, f.recv[root], base+i, pattern(src, 0, int(i)), "gather")
		}
	}
}

func (f *fixture) verifyAlltoall(t *testing.T) {
	t.Helper()
	for r := 0; r < f.p; r++ {
		for src := 0; src < f.p; src++ {
			base := int64(src) * f.count
			for _, i := range sampleOffsets(f.count) {
				f.checkByte(t, r, f.recv[r], base+i, pattern(src, r, int(i)), "alltoall")
			}
		}
	}
}

func (f *fixture) verifyAllgather(t *testing.T) {
	t.Helper()
	for r := 0; r < f.p; r++ {
		for src := 0; src < f.p; src++ {
			base := int64(src) * f.count
			for _, i := range sampleOffsets(f.count) {
				f.checkByte(t, r, f.recv[r], base+i, pattern(src, 0, int(i)), "allgather")
			}
		}
	}
}

func (f *fixture) verifyBcast(t *testing.T, root int) {
	t.Helper()
	for r := 0; r < f.p; r++ {
		if r == root {
			continue
		}
		for _, i := range sampleOffsets(f.count) {
			f.checkByte(t, r, f.recv[r], i, pattern(root, 0, int(i)), "bcast")
		}
	}
}

// sampleOffsets picks representative byte offsets: edges plus strided
// interior samples (full verification would be O(p²·count) comparisons).
func sampleOffsets(count int64) []int64 {
	if count == 0 {
		return nil
	}
	offs := []int64{0, count - 1, count / 2}
	for i := int64(0); i < count; i += 977 {
		offs = append(offs, i)
	}
	return offs
}

var testProcCounts = []int{1, 2, 3, 4, 5, 7, 8, 12, 16}

func TestScatterAlgorithmsCorrect(t *testing.T) {
	algos := ScatterAlgorithms(1, 2, 3, 4, 8)
	for _, algo := range algos {
		algo := algo
		t.Run(algo.Name, func(t *testing.T) {
			for _, p := range testProcCounts {
				for _, root := range rootsFor(p) {
					f := newFixture(t, arch.KNL(), p, KindScatter, 4500)
					f.run(t, algo.Run, root)
					f.verifyScatter(t, root)
				}
			}
		})
	}
}

func TestGatherAlgorithmsCorrect(t *testing.T) {
	algos := GatherAlgorithms(1, 2, 3, 4, 8)
	for _, algo := range algos {
		algo := algo
		t.Run(algo.Name, func(t *testing.T) {
			for _, p := range testProcCounts {
				for _, root := range rootsFor(p) {
					f := newFixture(t, arch.KNL(), p, KindGather, 4500)
					f.run(t, algo.Run, root)
					f.verifyGather(t, root)
				}
			}
		})
	}
}

func TestAlltoallAlgorithmsCorrect(t *testing.T) {
	for _, algo := range AlltoallAlgorithms() {
		algo := algo
		t.Run(algo.Name, func(t *testing.T) {
			for _, p := range testProcCounts {
				f := newFixture(t, arch.KNL(), p, KindAlltoall, 3000)
				f.run(t, algo.Run, 0)
				f.verifyAlltoall(t)
			}
		})
	}
}

func TestAllgatherAlgorithmsCorrect(t *testing.T) {
	for _, algo := range AllgatherAlgorithms(1, 3, 5) {
		algo := algo
		t.Run(algo.Name, func(t *testing.T) {
			for _, p := range testProcCounts {
				if algo.Name == "ring-neighbor-3" && p%3 == 0 {
					continue // stride must be coprime with p
				}
				if algo.Name == "ring-neighbor-5" && p%5 == 0 {
					continue
				}
				f := newFixture(t, arch.KNL(), p, KindAllgather, 3000)
				f.run(t, algo.Run, 0)
				f.verifyAllgather(t)
			}
		})
	}
}

func TestBcastAlgorithmsCorrect(t *testing.T) {
	for _, algo := range BcastAlgorithms(2, 3, 4, 8) {
		algo := algo
		t.Run(algo.Name, func(t *testing.T) {
			for _, p := range testProcCounts {
				for _, root := range rootsFor(p) {
					f := newFixture(t, arch.KNL(), p, KindBcast, 9000)
					f.run(t, algo.Run, root)
					f.verifyBcast(t, root)
				}
			}
		})
	}
}

func rootsFor(p int) []int {
	if p == 1 {
		return []int{0}
	}
	if p == 2 {
		return []int{0, 1}
	}
	return []int{0, p / 2, p - 1}
}

func TestRingNeighborRejectsBadStride(t *testing.T) {
	f := newFixture(t, arch.KNL(), 6, KindAllgather, 256)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for gcd(6,3) != 1")
		}
	}()
	f.run(t, AllgatherRingNeighbor(3), 0)
}

func TestThrottleFactorValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for k=0")
		}
	}()
	ScatterThrottled(0)
}

func TestKnomialTreeShape(t *testing.T) {
	// Every non-root must appear exactly once as some node's child, and
	// the parent/child relations must be mutually consistent.
	for _, p := range []int{1, 2, 3, 4, 5, 7, 8, 9, 16, 27, 28, 64, 160} {
		for _, k := range []int{2, 3, 4, 8, 11} {
			seen := make([]int, p)
			for v := 0; v < p; v++ {
				parent, levels := knomialChildren(v, p, k)
				if v == 0 && parent != -1 {
					t.Fatalf("p=%d k=%d: root has parent %d", p, k, parent)
				}
				for _, lvl := range levels {
					if len(lvl) > k-1 {
						t.Fatalf("p=%d k=%d: node %d level has %d children (> k-1)", p, k, v, len(lvl))
					}
					for _, c := range lvl {
						if c <= v || c >= p {
							t.Fatalf("p=%d k=%d: node %d has invalid child %d", p, k, v, c)
						}
						seen[c]++
						cp, _ := knomialChildren(c, p, k)
						if cp != v {
							t.Fatalf("p=%d k=%d: child %d's parent = %d, want %d", p, k, c, cp, v)
						}
					}
				}
			}
			for v := 1; v < p; v++ {
				if seen[v] != 1 {
					t.Fatalf("p=%d k=%d: node %d appears as child %d times", p, k, v, seen[v])
				}
			}
		}
	}
}

func TestKnomialBinomialDepth(t *testing.T) {
	// k=2 must be the binomial tree: depth ⌈log2 p⌉.
	depth := func(p int) int {
		var d [4096]int
		max := 0
		for v := 1; v < p; v++ {
			parent, _ := knomialChildren(v, p, 2)
			d[v] = d[parent] + 1
			if d[v] > max {
				max = d[v]
			}
		}
		return max
	}
	for _, p := range []int{2, 4, 8, 16, 64} {
		want := ceilLog(2, p)
		if got := depth(p); got != want {
			t.Fatalf("p=%d: binomial depth %d, want %d", p, got, want)
		}
	}
}

func TestRDHaveCoversAll(t *testing.T) {
	for _, p := range []int{1, 2, 3, 5, 8, 12, 28, 31, 32} {
		have := rdHave(p)
		final := have[len(have)-1]
		for r := 0; r < p; r++ {
			missing := diffSorted(final[r], allBlocks(p))
			if isPow2(p) && len(missing) != 0 {
				t.Fatalf("p=%d (pow2): rank %d missing %v", p, r, missing)
			}
			// Non-power-of-two ranks may miss blocks (patched later),
			// but each rank must at least hold its own block.
			found := false
			for _, b := range final[r] {
				if b == r {
					found = true
				}
			}
			if !found {
				t.Fatalf("p=%d: rank %d lost its own block", p, r)
			}
		}
	}
}

func TestContiguousRuns(t *testing.T) {
	tests := []struct {
		in   []int
		want string
	}{
		{nil, "[]"},
		{[]int{3}, "[[3 1]]"},
		{[]int{1, 2, 3}, "[[1 3]]"},
		{[]int{1, 3, 4, 7}, "[[1 1] [3 2] [7 1]]"},
	}
	for _, tt := range tests {
		if got := fmt.Sprint(contiguousRuns(tt.in)); got != tt.want {
			t.Errorf("contiguousRuns(%v) = %s, want %s", tt.in, got, tt.want)
		}
	}
}

func TestInPlaceScatterSkipsRootCopy(t *testing.T) {
	// With InPlace the root's recv buffer is untouched (0xEE poison
	// remains) but non-roots still receive.
	p := 4
	f := newFixture(t, arch.KNL(), p, KindScatter, 2048)
	f.comm.Start(func(r *mpi.Rank) {
		ScatterThrottled(2)(r, Args{Send: f.send[r.ID], Recv: f.recv[r.ID], Count: 2048, Root: 0, InPlace: true})
	})
	if err := f.comm.Sim.Run(); err != nil {
		t.Fatal(err)
	}
	if b := f.comm.Rank(0).OS.Bytes(f.recv[0], 1)[0]; b != 0xEE {
		t.Fatalf("root recv buffer was written in-place mode: %#x", b)
	}
	for r := 1; r < p; r++ {
		for _, i := range sampleOffsets(2048) {
			f.checkByte(t, r, f.recv[r], i, pattern(0, r, int(i)), "inplace scatter")
		}
	}
}

func TestAlgorithmsOnAllArchitectures(t *testing.T) {
	// Page size differences (Power8 64K) and socket placement must not
	// break correctness.
	for _, a := range arch.All() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			p := 10
			f := newFixture(t, a, p, KindAllgather, 5000)
			f.run(t, AllgatherRingSourceRead, 0)
			f.verifyAllgather(t)

			f2 := newFixture(t, a, p, KindScatter, 5000)
			f2.run(t, ScatterThrottled(3), 0)
			f2.verifyScatter(t, 0)

			f3 := newFixture(t, a, p, KindBcast, 5000)
			f3.run(t, BcastScatterAllgather, 2)
			f3.verifyBcast(t, 2)
		})
	}
}

func TestCollectiveDeterministicLatency(t *testing.T) {
	run := func() float64 {
		c := mpi.New(mpi.Config{Arch: arch.Broadwell(), Procs: 12, CopyData: false})
		send := make([]kernel.Addr, 12)
		recv := make([]kernel.Addr, 12)
		for i := 0; i < 12; i++ {
			send[i] = c.Rank(i).Alloc(12 * 8192)
			recv[i] = c.Rank(i).Alloc(12 * 8192)
		}
		c.Start(func(r *mpi.Rank) {
			AlltoallPairwiseColl(r, Args{Send: send[r.ID], Recv: recv[r.ID], Count: 8192})
		})
		if err := c.Sim.Run(); err != nil {
			panic(err)
		}
		return c.Sim.Now()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic: %g vs %g", a, b)
	}
}
