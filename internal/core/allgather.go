package core

import (
	"fmt"

	"camc/internal/kernel"
	"camc/internal/mpi"
)

// Allgather semantics: every rank contributes Count bytes at Send and
// ends with p blocks at Recv, block j from rank j. With InPlace the
// caller's block is already at Recv[rank].

// AllgatherRingNeighbor (§V-A.1): the generalized ring. In step i each
// rank reads block (rank − i·j) mod p from neighbor (rank − j) mod p's
// *receive* buffer, which requires a notification chain: a block may be
// read only after the neighbor has finished its previous step. Requires
// gcd(p, j) == 1. j = 1 is the classic ring (mostly intra-socket under
// block placement); larger j forces inter-socket traffic — the paper's
// Neighbor-1 vs Neighbor-5 experiment.
//
//	T = T_memcpy + T^sm_allgather + (p−1)(α + ηβ + l·⌈η/s⌉) + sync
func AllgatherRingNeighbor(j int) func(r *mpi.Rank, a Args) {
	if j < 1 {
		panic("core: ring neighbor stride must be >= 1")
	}
	return func(r *mpi.Rank, a Args) {
		a.validate(r)
		rec, span := beginColl(r, "allgather:ring-neighbor-"+itoa(j), a)
		defer rec.End(span)
		p := r.Size()
		if gcd(p, j%p) != 1 && p > 1 {
			panic(fmt.Sprintf("core: ring-neighbor-%d invalid for p=%d (gcd != 1)", j, p))
		}
		if !a.InPlace {
			r.LocalCopy(a.Recv+kernel.Addr(int64(r.ID)*a.Count), a.Send, a.Count)
		}
		if p == 1 {
			return
		}
		addrs := r.Allgather64(int64(a.Recv))
		from := (r.ID - j%p + p) % p
		to := (r.ID + j) % p
		r.Notify(to) // own block staged (step 0 complete)
		for i := 1; i < p; i++ {
			r.WaitNotify(from) // neighbor finished step i-1
			collStep(r, i, from)
			blk := (r.ID - i*j%p + p) % p
			r.VMRead(a.Recv+kernel.Addr(int64(blk)*a.Count), from,
				kernel.Addr(addrs[from])+kernel.Addr(int64(blk)*a.Count), a.Count)
			if i < p-1 {
				r.Notify(to)
			}
		}
	}
}

// AllgatherRingSourceRead (§V-A.2): in step i each rank reads rank
// (rank−i)'s block directly from its *send* buffer, which is always
// valid: no per-step synchronization, and contention-free unless skew
// piles readers onto one source. A final barrier marks completion.
//
//	T = T_memcpy + T^sm_allgather + (p−1)(α + ηβ + l·⌈η/s⌉) + T_barrier
func AllgatherRingSourceRead(r *mpi.Rank, a Args) {
	a.validate(r)
	rec, span := beginColl(r, "allgather:ring-source-read", a)
	defer rec.End(span)
	p := r.Size()
	srcAddr := a.Send
	if a.InPlace {
		srcAddr = a.Recv + kernel.Addr(int64(r.ID)*a.Count)
	} else {
		r.LocalCopy(a.Recv+kernel.Addr(int64(r.ID)*a.Count), a.Send, a.Count)
	}
	addrs := r.Allgather64(int64(srcAddr))
	for i := 1; i < p; i++ {
		src := (r.ID - i + p) % p
		r.VMRead(a.Recv+kernel.Addr(int64(src)*a.Count), src, kernel.Addr(addrs[src]), a.Count)
	}
	r.Barrier()
}

// AllgatherRingSourceWrite (§V-A.2): the write-based dual — in step i
// each rank writes its own block into rank (rank+i)'s receive buffer.
//
//	T = T_memcpy + T^sm_allgather + (p−1)(α + ηβ + l·⌈η/s⌉) + T_barrier
func AllgatherRingSourceWrite(r *mpi.Rank, a Args) {
	a.validate(r)
	rec, span := beginColl(r, "allgather:ring-source-write", a)
	defer rec.End(span)
	p := r.Size()
	srcAddr := a.Send
	if a.InPlace {
		srcAddr = a.Recv + kernel.Addr(int64(r.ID)*a.Count)
	} else {
		r.LocalCopy(a.Recv+kernel.Addr(int64(r.ID)*a.Count), a.Send, a.Count)
	}
	addrs := r.Allgather64(int64(a.Recv))
	for i := 1; i < p; i++ {
		dst := (r.ID + i) % p
		r.VMWrite(srcAddr, dst, kernel.Addr(addrs[dst])+kernel.Addr(int64(r.ID)*a.Count), a.Count)
	}
	r.Barrier()
}

// rdHave computes, offline, the set of blocks every rank holds after
// each recursive-doubling step (used to drive the reads and to size
// them). steps[k][rank] is the sorted block list rank holds after step
// k; steps[0] is the initial single-own-block state.
func rdHave(p int) [][][]int {
	nsteps := ceilLog(2, p)
	cur := make([][]int, p)
	for r := range cur {
		cur[r] = []int{r}
	}
	out := [][][]int{clone2(cur)}
	for k := 0; k < nsteps; k++ {
		next := make([][]int, p)
		for r := 0; r < p; r++ {
			partner := r ^ (1 << k)
			if partner < p {
				next[r] = mergeSorted(cur[r], cur[partner])
			} else {
				next[r] = cur[r]
			}
		}
		cur = next
		out = append(out, clone2(cur))
	}
	return out
}

func clone2(v [][]int) [][]int {
	o := make([][]int, len(v))
	for i := range v {
		o[i] = append([]int(nil), v[i]...)
	}
	return o
}

func mergeSorted(a, b []int) []int {
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// diffSorted returns the elements of b not present in a (both sorted).
func diffSorted(a, b []int) []int {
	var out []int
	i := 0
	for _, v := range b {
		for i < len(a) && a[i] < v {
			i++
		}
		if i < len(a) && a[i] == v {
			continue
		}
		out = append(out, v)
	}
	return out
}

// contiguousRuns splits a sorted block list into maximal contiguous runs
// (start, length); each run becomes one CMA transfer.
func contiguousRuns(blocks []int) [][2]int {
	var runs [][2]int
	for i := 0; i < len(blocks); {
		j := i + 1
		for j < len(blocks) && blocks[j] == blocks[j-1]+1 {
			j++
		}
		runs = append(runs, [2]int{blocks[i], j - i})
		i = j
	}
	return runs
}

// AllgatherRecursiveDoubling (§V-A.3): in step k, ranks at distance 2^k
// exchange everything they have accumulated so far, doubling their block
// sets. For non-power-of-two p the pairing is incomplete: skipped ranks
// leave holes that are patched afterwards by direct reads from the block
// owners' send buffers — the extra steps (and the non-contiguous
// transfers) that cost recursive doubling its advantage on Broadwell.
func AllgatherRecursiveDoubling(r *mpi.Rank, a Args) {
	a.validate(r)
	rec, span := beginColl(r, "allgather:recursive-doubling", a)
	defer rec.End(span)
	p := r.Size()
	me := r.ID
	srcOwn := a.Send
	if a.InPlace {
		srcOwn = a.Recv + kernel.Addr(int64(me)*a.Count)
	} else {
		r.LocalCopy(a.Recv+kernel.Addr(int64(me)*a.Count), a.Send, a.Count)
	}
	if p == 1 {
		return
	}
	// The source-buffer addresses double as the patch-phase source and
	// the recv addresses serve the exchange phase.
	recvAddrs := r.Allgather64(int64(a.Recv))
	ownAddrs := r.Allgather64(int64(srcOwn))

	have := rdHave(p)
	nsteps := ceilLog(2, p)
	for k := 0; k < nsteps; k++ {
		partner := me ^ (1 << k)
		if partner >= p {
			continue
		}
		// Handshake: both sides must have completed step k-1.
		r.Notify(partner)
		r.WaitNotify(partner)
		collStep(r, k, partner)
		// Read the blocks the partner has (after step k) that we lack.
		want := diffSorted(have[k][me], have[k][partner])
		for _, run := range contiguousRuns(want) {
			r.VMRead(a.Recv+kernel.Addr(int64(run[0])*a.Count), partner,
				kernel.Addr(recvAddrs[partner])+kernel.Addr(int64(run[0])*a.Count),
				int64(run[1])*a.Count)
		}
	}
	// Patch any holes by reading directly from each owner's send buffer.
	missing := diffSorted(have[nsteps][me], allBlocks(p))
	for _, blk := range missing {
		r.VMRead(a.Recv+kernel.Addr(int64(blk)*a.Count), blk, kernel.Addr(ownAddrs[blk]), a.Count)
	}
	r.Barrier()
}

func allBlocks(p int) []int {
	out := make([]int, p)
	for i := range out {
		out[i] = i
	}
	return out
}

// AllgatherBruck (§V-A.4): step k reads 2^k (or the remaining) leading
// blocks of (rank+2^k)'s output buffer and appends them; a final local
// rotation restores rank order, costing up to (p−1)ηβ extra — why Bruck
// wins small messages and loses large ones.
func AllgatherBruck(r *mpi.Rank, a Args) {
	a.validate(r)
	rec, span := beginColl(r, "allgather:bruck", a)
	defer rec.End(span)
	p := r.Size()
	me := r.ID
	if p == 1 {
		if !a.InPlace {
			r.LocalCopy(a.Recv, a.Send, a.Count)
		}
		return
	}
	work := r.Alloc(int64(p) * a.Count)
	if a.InPlace {
		r.LocalCopy(work, a.Recv+kernel.Addr(int64(me)*a.Count), a.Count)
	} else {
		r.LocalCopy(work, a.Send, a.Count)
	}
	addrs := r.Allgather64(int64(work))
	filled := 1
	step := 0
	for filled < p {
		peer := (me + filled) % p
		n := filled
		if p-filled < n {
			n = p - filled
		}
		// Handshake: tell the rank that reads from us that our buffer
		// holds the previous step's blocks, and wait for the same from
		// the peer we read from.
		r.Notify((me - filled + p) % p)
		r.WaitNotify(peer)
		collStep(r, step, peer)
		r.VMRead(work+kernel.Addr(int64(filled)*a.Count), peer, kernel.Addr(addrs[peer]), int64(n)*a.Count)
		filled += n
		step++
	}
	// Final rotation: Recv[(me+i) mod p] = work[i].
	for i := 0; i < p; i++ {
		r.LocalCopy(a.Recv+kernel.Addr(int64((me+i)%p)*a.Count), work+kernel.Addr(int64(i)*a.Count), a.Count)
	}
	r.Barrier()
}

// AllgatherAlgorithms returns the registered Allgather implementations.
// Neighbor strides beyond 1 are added by callers that study socket
// effects.
func AllgatherAlgorithms(neighborStrides ...int) []Algorithm {
	algos := []Algorithm{
		{Name: "ring-source-read", Kind: KindAllgather, Run: AllgatherRingSourceRead},
		{Name: "ring-source-write", Kind: KindAllgather, Run: AllgatherRingSourceWrite},
		{Name: "recursive-doubling", Kind: KindAllgather, Run: AllgatherRecursiveDoubling},
		{Name: "bruck", Kind: KindAllgather, Run: AllgatherBruck},
	}
	for _, j := range neighborStrides {
		algos = append(algos, Algorithm{
			Name: "ring-neighbor-" + itoa(j),
			Kind: KindAllgather,
			Run:  AllgatherRingNeighbor(j),
		})
	}
	return algos
}
