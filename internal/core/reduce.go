package core

// Reduce and Allreduce: the paper's §IX future work ("we plan to extend
// these designs to other collectives"), built here with the same
// contention-aware machinery. Reduce combines one Count-byte vector per
// rank elementwise at the root (the simulation's operator is byte-wise
// addition, associative and commutative, so tree reductions are exact).
//
// The contention analysis carries over directly: a reduction is an
// all-to-one pattern, so unthrottled designs pile p−1 concurrent
// accesses onto one mm, while the k-ary tree bounds the concurrency on
// any buffer to its fan-in.

import (
	"camc/internal/kernel"
	"camc/internal/mpi"
)

// reduceCopyCombine pulls src rank's buffer into a scratch area and
// combines it into acc.
func reduceCopyCombine(r *mpi.Rank, scratch, acc kernel.Addr, src int, srcAddr kernel.Addr, n int64) {
	r.VMRead(scratch, src, srcAddr, n)
	r.OS.Combine(r.SP, acc, scratch, n)
}

// ReduceFlat (baseline): the root sequentially reads every rank's vector
// and combines — contention-free but p−1 serial read+combine steps, the
// all-to-one analogue of Sequential Reads.
func ReduceFlat(r *mpi.Rank, a Args) {
	a.validate(r)
	p := r.Size()
	addrs := r.Gather64(a.Root, int64(a.Send))
	if r.ID == a.Root {
		if !a.InPlace {
			r.LocalCopy(a.Recv, a.Send, a.Count)
		}
		scratch := r.Alloc(a.Count)
		for idx := 0; idx < p-1; idx++ {
			src := nonRootByIndex(idx, a.Root, p)
			reduceCopyCombine(r, scratch, a.Recv, src, kernel.Addr(addrs[src]), a.Count)
		}
	}
	r.Bcast64(a.Root, 0) // completion
}

// ReduceParallelWrite (the contention-unaware design): every non-root
// writes its vector into a per-rank slot of the root's staging area
// concurrently (γ_{p−1} on the root's mm), then the root combines all
// slots. This is the prior-art shape the k-ary tree beats.
func ReduceParallelWrite(r *mpi.Rank, a Args) {
	a.validate(r)
	p := r.Size()
	var stage kernel.Addr
	if r.ID == a.Root {
		stage = r.Alloc(int64(p) * a.Count)
	}
	stage = kernel.Addr(r.Bcast64(a.Root, int64(stage)))
	if r.ID != a.Root {
		r.VMWrite(a.Send, a.Root, stage+kernel.Addr(int64(r.ID)*a.Count), a.Count)
		r.Notify(a.Root)
		return
	}
	if !a.InPlace {
		r.LocalCopy(a.Recv, a.Send, a.Count)
	}
	for i := 0; i < p-1; i++ {
		r.WaitNotify(nonRootByIndex(i, a.Root, p))
	}
	for src := 0; src < p; src++ {
		if src == a.Root {
			continue
		}
		r.OS.Combine(r.SP, a.Recv, stage+kernel.Addr(int64(src)*a.Count), a.Count)
	}
}

// ReduceKnomial is the contention-aware design: a base-k reduction tree.
// Each node accumulates its own vector, then — level by level, mirroring
// the k-nomial broadcast upside down — reads each child's accumulated
// subtree vector (contention-free: one reader per buffer) and combines.
// Depth is ⌈log_k p⌉ with k−1 sequential read+combine steps per level,
// the reduction dual of the throttled/k-nomial sweet spot.
func ReduceKnomial(k int) func(r *mpi.Rank, a Args) {
	if k < 2 {
		panic("core: k-nomial base must be >= 2")
	}
	return func(r *mpi.Rank, a Args) {
		a.validate(r)
		p := r.Size()
		// Every rank accumulates into a private buffer (leaves could
		// expose Send directly, but a uniform layout keeps the address
		// exchange to one allgather).
		acc := r.Alloc(a.Count)
		r.LocalCopy(acc, a.Send, a.Count)
		addrs := r.Allgather64(int64(acc))
		rel := relRank(r.ID, a.Root, p)
		parent, levels := knomialChildren(rel, p, k)
		scratch := r.Alloc(a.Count)
		// Collect children lowest level first: their subtrees are
		// smaller and complete sooner, mirroring the broadcast order
		// reversed.
		for li := len(levels) - 1; li >= 0; li-- {
			for _, c := range levels[li] {
				ca := absRank(c, a.Root, p)
				r.WaitNotify(ca) // child's subtree is fully accumulated
				reduceCopyCombine(r, scratch, acc, ca, kernel.Addr(addrs[ca]), a.Count)
			}
		}
		if parent >= 0 {
			r.Notify(absRank(parent, a.Root, p))
			// The parent reads acc; wait for the global completion
			// broadcast before returning (acc must stay valid).
			r.Bcast64(a.Root, 0)
			return
		}
		// Root: deposit the result.
		r.LocalCopy(a.Recv, acc, a.Count)
		r.Bcast64(a.Root, 0)
	}
}

// ReduceBinomialPt2pt is the classic library baseline: a binomial
// reduction over point-to-point transfers (each message is a full
// vector; interior nodes combine as they receive).
func ReduceBinomialPt2pt(tr Transport) func(r *mpi.Rank, a Args) {
	return func(r *mpi.Rank, a Args) {
		a.validate(r)
		p := r.Size()
		rel := relRank(r.ID, a.Root, p)
		acc := r.Alloc(a.Count)
		scratch := r.Alloc(a.Count)
		r.LocalCopy(acc, a.Send, a.Count)
		// Receive from children (mask ascending), combine, then send to
		// the parent.
		top := lowbit(rel)
		if rel == 0 {
			top = 1
			for top < p {
				top <<= 1
			}
		}
		for mask := 1; mask < top; mask <<= 1 {
			child := rel + mask
			if child >= p {
				continue
			}
			tr.recv(r, absRank(child, a.Root, p), scratch, a.Count)
			r.OS.Combine(r.SP, acc, scratch, a.Count)
		}
		if rel != 0 {
			parent := rel - lowbit(rel)
			tr.send(r, absRank(parent, a.Root, p), acc, a.Count)
			return
		}
		r.LocalCopy(a.Recv, acc, a.Count)
	}
}

// TunedReduce extends the paper's tuning framework to Reduce: the
// shared-memory binomial below the kernel-assist threshold, the binary
// CMA tree above. Unlike Scatter/Bcast, a *deep* tree wins here: a
// reduce parent serializes its children's read+combine steps, so wide
// fan-ins add serial work without adding useful concurrency — the
// autotuner (internal/tuner) discovers the same thing.
func TunedReduce(r *mpi.Rank, a Args) {
	if a.Count < cmaThreshold(KindGather) {
		ReduceBinomialPt2pt(TransportShm)(r, a)
		return
	}
	ReduceKnomial(2)(r, a)
}

// AllreduceReduceBcast composes the tuned Reduce with the tuned Bcast —
// the straightforward contention-aware Allreduce. The root's reduced
// vector lands in Recv everywhere.
func AllreduceReduceBcast(r *mpi.Rank, a Args) {
	a.validate(r)
	TunedReduce(r, a)
	// Broadcast the result from the root's Recv buffer.
	b := a
	b.Send = a.Recv
	TunedBcast(r, b)
}

// KindReduce and KindAllreduce extend the collective registry for the
// future-work designs.
const (
	KindReduce    Kind = "reduce"
	KindAllreduce Kind = "allreduce"
)

// ReduceAlgorithms returns the registered Reduce implementations.
func ReduceAlgorithms(ks ...int) []Algorithm {
	algos := []Algorithm{
		{Name: "flat-sequential", Kind: KindReduce, Run: ReduceFlat},
		{Name: "parallel-write", Kind: KindReduce, Run: ReduceParallelWrite},
		{Name: "binomial-pt2pt", Kind: KindReduce, Run: ReduceBinomialPt2pt(TransportPt2pt)},
		{Name: "binomial-shm", Kind: KindReduce, Run: ReduceBinomialPt2pt(TransportShm)},
	}
	for _, k := range ks {
		algos = append(algos, Algorithm{Name: "knomial-" + itoa(k), Kind: KindReduce, Run: ReduceKnomial(k)})
	}
	return algos
}
