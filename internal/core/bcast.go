package core

import (
	"camc/internal/kernel"
	"camc/internal/mpi"
	"camc/internal/trace"
)

// Bcast semantics: the root's Count bytes at Send end up at Recv on every
// other rank (the root's own data stays in Send).

// bcastBuf returns the buffer a rank exposes/fills for a broadcast.
func bcastBuf(r *mpi.Rank, a Args) kernel.Addr {
	if r.ID == a.Root {
		return a.Send
	}
	return a.Recv
}

// BcastDirectRead (§V-B.1): every non-root reads the whole message from
// the root concurrently — maximal contention, the baseline the k-nomial
// designs beat.
//
//	T = T^sm_bcast + α + ηβ + l·γ_{p−1}·⌈η/s⌉ + T^sm_gather
func BcastDirectRead(r *mpi.Rank, a Args) {
	a.validate(r)
	rec, span := beginColl(r, "bcast:direct-read", a)
	defer rec.End(span)
	p := r.Size()
	srcAddr := kernel.Addr(r.Bcast64(a.Root, int64(a.Send)))
	if r.ID == a.Root {
		for i := 0; i < p-1; i++ {
			r.WaitNotify(nonRootByIndex(i, a.Root, p))
		}
		return
	}
	r.VMRead(a.Recv, a.Root, srcAddr, a.Count)
	r.Notify(a.Root)
}

// BcastDirectWrite (§V-B.1): the root writes the message to every
// non-root sequentially — contention-free but p−1 serial transfers.
//
//	T = T^sm_gather + (p−1)(α + ηβ + l·⌈η/s⌉) + T^sm_bcast
func BcastDirectWrite(r *mpi.Rank, a Args) {
	a.validate(r)
	rec, span := beginColl(r, "bcast:direct-write", a)
	defer rec.End(span)
	p := r.Size()
	addrs := r.Gather64(a.Root, int64(a.Recv))
	if r.ID == a.Root {
		for idx := 0; idx < p-1; idx++ {
			dst := nonRootByIndex(idx, a.Root, p)
			r.VMWrite(a.Send, dst, kernel.Addr(addrs[dst]), a.Count)
		}
	}
	r.Bcast64(a.Root, 0) // completion
}

// knomialChildren returns the children of relative rank rel in a base-k
// tree over p ranks, grouped by level in descending subtree-size order,
// plus rel's parent (or -1 for the root). In a base-k tree a node serves
// at most k−1 children per level, so at most k−1 processes read a buffer
// concurrently.
func knomialChildren(rel, p, k int) (parent int, levels [][]int) {
	// mask = the k-power of rel's lowest non-zero base-k digit (or the
	// smallest k-power >= p for the root, whose children span all
	// levels).
	mask := 1
	if rel == 0 {
		for mask < p {
			mask *= k
		}
		parent = -1
	} else {
		for rel/mask%k == 0 {
			mask *= k
		}
		parent = rel - rel/mask%k*mask
	}
	// Children live at levels strictly below mask.
	for m := mask / k; m >= 1; m /= k {
		var lvl []int
		for d := 1; d < k; d++ {
			child := rel + d*m
			if child < p {
				lvl = append(lvl, child)
			}
		}
		if len(lvl) > 0 {
			levels = append(levels, lvl)
		}
	}
	return parent, levels
}

// BcastKnomialRead (§V-B.2): a base-k tree broadcast where, level by
// level, up to k−1 children concurrently read the message from their
// parent. The parent releases one level at a time and waits for its
// completion, bounding the concurrency on any buffer to k−1.
//
//	T = T^sm_bcast + ⌈log_k p⌉(α + ηβ + l·γ_{k−1}·⌈η/s⌉)
func BcastKnomialRead(k int) func(r *mpi.Rank, a Args) {
	if k < 2 {
		panic("core: k-nomial base must be >= 2")
	}
	return func(r *mpi.Rank, a Args) {
		a.validate(r)
		rec, span := beginColl(r, "bcast:knomial-read-"+itoa(k), a)
		defer rec.End(span)
		p := r.Size()
		buf := bcastBuf(r, a)
		addrs := r.Allgather64(int64(buf))
		rel := relRank(r.ID, a.Root, p)
		parent, levels := knomialChildren(rel, p, k)
		if parent >= 0 {
			pr := absRank(parent, a.Root, p)
			r.WaitNotify(pr) // parent's buffer is valid
			r.VMRead(a.Recv, pr, kernel.Addr(addrs[pr]), a.Count)
			r.Notify(pr) // read complete
		}
		for li, lvl := range levels {
			ls := beginPhase(r, "serve_level",
				trace.F("level", float64(li)), trace.F("fanout", float64(len(lvl))))
			for _, c := range lvl {
				r.Notify(absRank(c, a.Root, p))
			}
			for _, c := range lvl {
				r.WaitNotify(absRank(c, a.Root, p))
			}
			endPhase(r, ls)
		}
	}
}

// BcastKnomialWrite (§V-B.2): the write-based dual — each parent writes
// the message to its k−1 children of a level sequentially, then moves to
// the next level while the children serve their own subtrees.
//
//	T = T^sm_gather + ⌈log_k p⌉(k−1)(α + ηβ + l·⌈η/s⌉)
func BcastKnomialWrite(k int) func(r *mpi.Rank, a Args) {
	if k < 2 {
		panic("core: k-nomial base must be >= 2")
	}
	return func(r *mpi.Rank, a Args) {
		a.validate(r)
		rec, span := beginColl(r, "bcast:knomial-write-"+itoa(k), a)
		defer rec.End(span)
		p := r.Size()
		buf := bcastBuf(r, a)
		addrs := r.Allgather64(int64(buf))
		rel := relRank(r.ID, a.Root, p)
		parent, levels := knomialChildren(rel, p, k)
		srcAddr := buf
		if parent >= 0 {
			pr := absRank(parent, a.Root, p)
			r.WaitNotify(pr) // parent finished writing to us
		}
		for li, lvl := range levels {
			ls := beginPhase(r, "serve_level",
				trace.F("level", float64(li)), trace.F("fanout", float64(len(lvl))))
			for _, c := range lvl {
				ca := absRank(c, a.Root, p)
				r.VMWrite(srcAddr, ca, kernel.Addr(addrs[ca]), a.Count)
				r.Notify(ca)
			}
			endPhase(r, ls)
		}
	}
}

// BcastScatterAllgather (§V-B.3, Van de Geijn): the root scatters η/p
// chunks (sequential writes — contention-free), then a ring-source-read
// allgather reassembles the full message everywhere. The scatter step is
// the only contended one; the allgather reads hit p distinct sources.
//
//	T = T^sm_allgather + T_scatter(η/p) + T_allgather(η/p)
func BcastScatterAllgather(r *mpi.Rank, a Args) {
	a.validate(r)
	rec, span := beginColl(r, "bcast:scatter-allgather", a)
	defer rec.End(span)
	p := r.Size()
	buf := bcastBuf(r, a)
	if p == 1 {
		return
	}
	chunk := (a.Count + int64(p) - 1) / int64(p)
	addrs := r.Allgather64(int64(buf))
	me := r.ID

	chunkOf := func(i int) (kernel.Addr, int64) {
		off := int64(i) * chunk
		if off >= a.Count {
			return 0, 0
		}
		n := chunk
		if a.Count-off < n {
			n = a.Count - off
		}
		return kernel.Addr(off), n
	}

	// Phase 1: sequential-write scatter — chunk rel goes to the rank at
	// relative position rel, so the root keeps chunk 0. Contention-free
	// (one writer), and each delivery is signalled so the ring can start
	// pipelined behind the scatter.
	rel := relRank(me, a.Root, p)
	sc := beginPhase(r, "scatter_phase", trace.F("chunk", float64(chunk)))
	if me == a.Root {
		for relDst := 1; relDst < p; relDst++ {
			dst := absRank(relDst, a.Root, p)
			off, n := chunkOf(relDst)
			if n > 0 {
				r.VMWrite(buf+off, dst, kernel.Addr(addrs[dst])+off, n)
			}
			r.Notify(dst) // chunk delivered
		}
	} else {
		r.WaitNotify(a.Root)
	}
	endPhase(r, sc)

	// Phase 2: ring-neighbor allgather of the chunks in relative space:
	// in step i, read chunk (rel−i) mod p from the previous ring member,
	// gated by its per-step notifications. Every rank reads from exactly
	// one neighbor, so the phase is contention-free. The root already
	// holds the full message and only feeds the chain.
	// Relative rank p−1 feeds nobody (its ring successor is the root,
	// which already holds everything), so it posts no notifications;
	// every posted notification is consumed, keeping the shared-memory
	// queues clean across invocations.
	rg := beginPhase(r, "ring_phase")
	next := absRank((rel+1)%p, a.Root, p)
	prev := absRank((rel-1+p)%p, a.Root, p)
	feeds := rel != p-1
	if rel == 0 {
		for i := 0; i < p-1; i++ {
			r.Notify(next)
		}
	} else {
		if feeds {
			r.Notify(next) // own chunk staged
		}
		for i := 1; i < p; i++ {
			r.WaitNotify(prev)
			srcRel := (rel - i + p) % p
			off, n := chunkOf(srcRel)
			if n > 0 {
				r.VMRead(buf+off, prev, kernel.Addr(addrs[prev])+off, n)
			}
			if feeds && i < p-1 {
				r.Notify(next)
			}
		}
	}
	endPhase(r, rg)
	r.Barrier()
}

// BcastAlgorithms returns the registered Bcast implementations.
func BcastAlgorithms(knomialKs ...int) []Algorithm {
	algos := []Algorithm{
		{Name: "direct-read", Kind: KindBcast, Run: BcastDirectRead},
		{Name: "direct-write", Kind: KindBcast, Run: BcastDirectWrite},
		{Name: "scatter-allgather", Kind: KindBcast, Run: BcastScatterAllgather},
	}
	for _, k := range knomialKs {
		algos = append(algos,
			Algorithm{Name: "knomial-read-" + itoa(k), Kind: KindBcast, Run: BcastKnomialRead(k)},
			Algorithm{Name: "knomial-write-" + itoa(k), Kind: KindBcast, Run: BcastKnomialWrite(k)},
		)
	}
	return algos
}
