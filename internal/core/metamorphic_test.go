package core

// Metamorphic relations over the fault-injection layer:
//
//  1. Payload invariance — a faulty run must land byte-for-byte the
//     same receive buffers as the fault-free run of the same cell.
//     Faults change when bytes move, never which bytes.
//  2. Fault determinism — the same fault configuration replays the
//     same virtual-time trajectory, the same injection counts and the
//     same payloads (the whole plan is a pure function of its seed).
//  3. Trace transparency — attaching a recorder to a faulty run
//     changes nothing observable: same finish time, same payloads.
//     This extends the suite's determinism guarantees (previously
//     asserted only for fault-free runs) to the degraded paths.

import (
	"bytes"
	"testing"

	"camc/internal/arch"
	"camc/internal/fault"
	"camc/internal/mpi"
	"camc/internal/trace"
)

// metamorphicFault is deliberately hostile: high transient and partial
// rates with a minimal retry budget, so runs cross the exhaustion
// threshold and finish some peers over the two-copy fallback path.
func metamorphicFault(seed int64) *fault.Config {
	return &fault.Config{
		Seed:          seed,
		PartialProb:   0.30,
		TransientProb: 0.55,
		LockSpikeProb: 0.10,
		ShmStallProb:  0.10,
		MaxRetries:    2,
	}
}

// recvLen mirrors the fixture's receive-buffer sizing.
func recvLen(kind Kind, p int, count int64) int64 {
	switch kind {
	case KindGather, KindAlltoall, KindAllgather:
		return int64(p) * count
	default: // scatter, bcast, reduce
		return count
	}
}

// recvSnapshot copies every rank's full receive buffer.
func recvSnapshot(f *fixture, kind Kind) [][]byte {
	out := make([][]byte, f.p)
	n := recvLen(kind, f.p, f.count)
	for r := 0; r < f.p; r++ {
		out[r] = append([]byte(nil), f.comm.Rank(r).OS.Bytes(f.recv[r], n)...)
	}
	return out
}

// metamorphicCases spans every kind and both transfer directions; the
// page-straddling odd count keeps partial completions in play.
var metamorphicCases = []struct {
	name string
	kind Kind
	algo string
	p    int
}{
	{"scatter/throttle-3", KindScatter, "throttled:3", 7},
	{"gather/throttle-3", KindGather, "throttled:3", 7},
	{"bcast/knomial-read-3", KindBcast, "knomial-read:3", 8},
	{"allgather/ring-source-read", KindAllgather, "ring-source-read", 6},
	{"alltoall/pairwise", KindAlltoall, "pairwise", 6},
}

func metamorphicAlgo(t *testing.T, kind Kind, spec string) func(r *mpi.Rank, a Args) {
	t.Helper()
	al, err := LookupAlgorithm(kind, spec)
	if err != nil {
		t.Fatal(err)
	}
	return al.Run
}

func TestFaultyPayloadsEqualFaultFreePayloads(t *testing.T) {
	a := arch.Broadwell()
	count := 3*int64(a.PageSize) + 41
	for _, tc := range metamorphicCases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			algo := metamorphicAlgo(t, tc.kind, tc.algo)
			clean := newFixture(t, a, tc.p, tc.kind, count)
			clean.run(t, algo, 0)
			clean.verify(t, tc.kind, 0)
			want := recvSnapshot(clean, tc.kind)

			faulty := newFaultFixture(t, a, tc.p, tc.kind, count, metamorphicFault(99))
			faulty.run(t, algo, 0)
			faulty.verify(t, tc.kind, 0)
			got := recvSnapshot(faulty, tc.kind)

			st := faulty.comm.FaultPlan().Stats()
			if st.Transients+st.Partials == 0 {
				t.Fatal("fault plan injected nothing; relation is vacuous")
			}
			for r := range want {
				if !bytes.Equal(want[r], got[r]) {
					t.Fatalf("rank %d: faulty payload differs from fault-free payload", r)
				}
			}
		})
	}
}

func TestFaultyRunsReplayBitIdentically(t *testing.T) {
	a := arch.Broadwell()
	count := 2*int64(a.PageSize) + 13
	for _, tc := range metamorphicCases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			algo := metamorphicAlgo(t, tc.kind, tc.algo)
			run := func() (float64, fault.Stats, [][]byte) {
				f := newFaultFixture(t, a, tc.p, tc.kind, count, metamorphicFault(7))
				f.run(t, algo, 0)
				f.verify(t, tc.kind, 0)
				return f.comm.Sim.Now(), f.comm.FaultPlan().Stats(), recvSnapshot(f, tc.kind)
			}
			now1, st1, pay1 := run()
			now2, st2, pay2 := run()
			if now1 != now2 {
				t.Fatalf("virtual finish time drifted: %g vs %g", now1, now2)
			}
			if st1 != st2 {
				t.Fatalf("injection stats drifted:\n  %+v\n  %+v", st1, st2)
			}
			for r := range pay1 {
				if !bytes.Equal(pay1[r], pay2[r]) {
					t.Fatalf("rank %d: payload drifted between identical runs", r)
				}
			}
		})
	}
}

func TestTracedFaultyRunMatchesUntraced(t *testing.T) {
	a := arch.Broadwell()
	count := 2*int64(a.PageSize) + 13
	for _, tc := range metamorphicCases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			algo := metamorphicAlgo(t, tc.kind, tc.algo)
			run := func(traced bool) (float64, fault.Stats, [][]byte, int) {
				f := newFaultFixture(t, a, tc.p, tc.kind, count, metamorphicFault(23))
				var rec *trace.Recorder
				if traced {
					rec = trace.NewUnbound()
					f.comm.AttachTrace(rec)
				}
				f.run(t, algo, 0)
				f.verify(t, tc.kind, 0)
				events := 0
				if rec != nil {
					events = rec.Len()
				}
				return f.comm.Sim.Now(), f.comm.FaultPlan().Stats(), recvSnapshot(f, tc.kind), events
			}
			nowU, stU, payU, _ := run(false)
			nowT, stT, payT, events := run(true)
			if events == 0 {
				t.Fatal("traced run recorded no events")
			}
			if nowU != nowT {
				t.Fatalf("tracing perturbed the faulty run: %g vs %g us", nowU, nowT)
			}
			if stU != stT {
				t.Fatalf("tracing changed injection decisions:\n  untraced %+v\n  traced   %+v", stU, stT)
			}
			for r := range payU {
				if !bytes.Equal(payU[r], payT[r]) {
					t.Fatalf("rank %d: tracing changed the payload", r)
				}
			}
		})
	}
}
