package core

import (
	"strings"
	"testing"
)

func TestReplanClampsThrottle(t *testing.T) {
	for _, kind := range []Kind{KindScatter, KindGather} {
		algo, err := Replan(kind, "throttled:8", 5)
		if err != nil {
			t.Fatal(err)
		}
		if algo.Name != "throttled:4" {
			t.Fatalf("%s throttled:8 at p=5 -> %q, want throttled:4", kind, algo.Name)
		}
		// p=2 leaves one non-root: the floor is k=1.
		algo, err = Replan(kind, "throttled:8", 2)
		if err != nil {
			t.Fatal(err)
		}
		if algo.Name != "throttled:1" {
			t.Fatalf("%s throttled:8 at p=2 -> %q, want throttled:1", kind, algo.Name)
		}
		// A factor that still fits is kept.
		algo, err = Replan(kind, "throttled:2", 16)
		if err != nil {
			t.Fatal(err)
		}
		if algo.Name != "throttled:2" {
			t.Fatalf("%s throttled:2 at p=16 -> %q, want unchanged", kind, algo.Name)
		}
	}
}

func TestReplanClampsRadix(t *testing.T) {
	for _, name := range []string{"knomial-read", "knomial-write"} {
		algo, err := Replan(KindBcast, name+":8", 3)
		if err != nil {
			t.Fatal(err)
		}
		if algo.Name != name+":3" {
			t.Fatalf("%s:8 at p=3 -> %q, want %s:3", name, algo.Name, name)
		}
		// The radix floor is 2 even for p=2.
		algo, err = Replan(KindBcast, name+":8", 2)
		if err != nil {
			t.Fatal(err)
		}
		if algo.Name != name+":2" {
			t.Fatalf("%s:8 at p=2 -> %q, want %s:2", name, algo.Name, name)
		}
	}
}

func TestReplanRepairsRingStride(t *testing.T) {
	// Stride 5 is fine for p=8 (gcd 1) but invalid for p=5 (gcd 5);
	// the nearest valid stride below is 4.
	algo, err := Replan(KindAllgather, "ring-neighbor:5", 5)
	if err != nil {
		t.Fatal(err)
	}
	if algo.Name != "ring-neighbor:4" {
		t.Fatalf("ring-neighbor:5 at p=5 -> %q, want ring-neighbor:4", algo.Name)
	}
	// Stride 4 at p=6: gcd(6,4)=2, gcd(6,3)=3, gcd(6,2)=2 -> 1.
	algo, err = Replan(KindAllgather, "ring-neighbor:4", 6)
	if err != nil {
		t.Fatal(err)
	}
	if algo.Name != "ring-neighbor:1" {
		t.Fatalf("ring-neighbor:4 at p=6 -> %q, want ring-neighbor:1", algo.Name)
	}
	if _, err := Replan(KindAllgather, "ring-neighbor:3", 1); err != nil {
		t.Fatalf("replan at p=1: %v", err)
	}
}

func TestReplanDefaultsAreClamped(t *testing.T) {
	// A bare "throttled" means k=4; at p=3 that must shrink to 2.
	algo, err := Replan(KindScatter, "throttled", 3)
	if err != nil {
		t.Fatal(err)
	}
	if algo.Name != "throttled:2" {
		t.Fatalf("bare throttled at p=3 -> %q, want throttled:2", algo.Name)
	}
	algo, err = Replan(KindBcast, "knomial-read", 3)
	if err != nil {
		t.Fatal(err)
	}
	if algo.Name != "knomial-read:3" {
		t.Fatalf("bare knomial-read at p=3 -> %q, want knomial-read:3", algo.Name)
	}
}

func TestReplanPassesThroughUnparameterized(t *testing.T) {
	for _, c := range []struct {
		kind Kind
		spec string
	}{
		{KindScatter, "parallel-read"},
		{KindGather, "sequential-read"},
		{KindBcast, "scatter-allgather"},
		{KindAllgather, "ring-source-read"},
		{KindAllgather, "recursive-doubling"},
		{KindAlltoall, "pairwise-cma-coll"},
		{KindAlltoall, "bruck"},
		{KindScatter, "tuned"},
	} {
		algo, err := Replan(c.kind, c.spec, 5)
		if err != nil {
			t.Fatalf("%s/%s: %v", c.kind, c.spec, err)
		}
		if algo.Name != c.spec {
			t.Fatalf("%s/%s renamed to %q", c.kind, c.spec, algo.Name)
		}
	}
}

func TestReplanRejectsGarbage(t *testing.T) {
	if _, err := Replan(KindScatter, "throttled:x", 4); err == nil {
		t.Fatal("bad parameter accepted")
	}
	if _, err := Replan(KindScatter, "no-such-algo", 4); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if _, err := Replan(KindScatter, "throttled:4", 0); err == nil {
		t.Fatal("p=0 accepted")
	}
	if _, err := Replan(KindScatter, "throttled:4", 2); err != nil {
		t.Fatal(err)
	}
	if _, err := Replan(KindBcast, "knomial-read:0", 4); err == nil {
		t.Fatal("zero radix accepted")
	}
}

func TestReplanMatchesLookupWhenNothingClamps(t *testing.T) {
	// At a size where every parameter fits, Replan and LookupAlgorithm
	// agree on the resolved name.
	for _, c := range []struct {
		kind Kind
		spec string
		want string
	}{
		{KindScatter, "throttled:4", "throttled:4"},
		{KindBcast, "knomial-read:4", "knomial-read:4"},
		{KindAllgather, "ring-neighbor:5", "ring-neighbor:5"},
	} {
		algo, err := Replan(c.kind, c.spec, 16)
		if err != nil {
			t.Fatal(err)
		}
		if algo.Name != c.want {
			t.Fatalf("%s/%s at p=16 -> %q", c.kind, c.spec, algo.Name)
		}
		if !strings.Contains(algo.Name, ":") {
			t.Fatalf("parameterized name lost its parameter: %q", algo.Name)
		}
	}
}
