package core

import (
	"fmt"
	"strconv"
	"strings"

	"camc/internal/mpi"
)

// This file is the single source of truth for the algorithm-spec
// grammar. A spec is "name" or "name:param"; the table below registers
// every family once with its aliases, its default parameter (0 for a
// parameter-free family) and the clamp rule Replan applies when the
// communicator shrinks. LookupAlgorithm and Replan both resolve specs
// through this table, so the two can never disagree on a spelling —
// any spec that survives tuning is guaranteed to replan.

// SpecInfo describes one registered algorithm family of the shared
// spec grammar.
type SpecInfo struct {
	// Name is the canonical family name.
	Name string
	// Aliases are accepted alternative spellings (e.g. "throttle" for
	// "throttled", "pairwise" for "pairwise-cma-coll").
	Aliases []string
	// Default is the parameter used when the spec omits ":k"; 0 means
	// the family takes no parameter and a ":k" suffix is rejected.
	Default int
}

// specEntry is the full registration: the public description plus the
// constructor and the Replan clamp rule.
type specEntry struct {
	SpecInfo
	// clamp bounds the parameter for a p-rank communicator; nil means
	// the family replans unchanged (parameter-free, or parameter valid
	// at any p).
	clamp func(k, p int) int
	// build constructs the implementation; param is ignored by
	// parameter-free families.
	build func(param int) func(*mpi.Rank, Args)
}

// fixed adapts a parameter-free implementation to the build signature.
func fixed(run func(*mpi.Rank, Args)) func(int) func(*mpi.Rank, Args) {
	return func(int) func(*mpi.Rank, Args) { return run }
}

// specKindOrder fixes the kind iteration order for SpecKinds.
var specKindOrder = []Kind{KindScatter, KindGather, KindAlltoall, KindAllgather, KindBcast, KindReduce}

var specTable = map[Kind][]specEntry{
	KindScatter: {
		{SpecInfo{Name: "parallel-read"}, nil, fixed(ScatterParallelRead)},
		{SpecInfo{Name: "sequential-write"}, nil, fixed(ScatterSeqWrite)},
		{SpecInfo{Name: "throttled", Aliases: []string{"throttle"}, Default: 4}, clampThrottle,
			func(k int) func(*mpi.Rank, Args) { return ScatterThrottled(k) }},
		{SpecInfo{Name: "binomial-shm"}, nil, fixed(ScatterBinomial(TransportShm))},
		{SpecInfo{Name: "binomial-pt2pt"}, nil, fixed(ScatterBinomial(TransportPt2pt))},
		{SpecInfo{Name: "tuned"}, nil, fixed(TunedScatter)},
	},
	KindGather: {
		{SpecInfo{Name: "parallel-write"}, nil, fixed(GatherParallelWrite)},
		{SpecInfo{Name: "sequential-read"}, nil, fixed(GatherSeqRead)},
		{SpecInfo{Name: "throttled", Aliases: []string{"throttle"}, Default: 4}, clampThrottle,
			func(k int) func(*mpi.Rank, Args) { return GatherThrottled(k) }},
		{SpecInfo{Name: "binomial-shm"}, nil, fixed(GatherBinomial(TransportShm))},
		{SpecInfo{Name: "binomial-pt2pt"}, nil, fixed(GatherBinomial(TransportPt2pt))},
		{SpecInfo{Name: "tuned"}, nil, fixed(TunedGather)},
	},
	KindBcast: {
		{SpecInfo{Name: "direct-read"}, nil, fixed(BcastDirectRead)},
		{SpecInfo{Name: "direct-write"}, nil, fixed(BcastDirectWrite)},
		{SpecInfo{Name: "scatter-allgather"}, nil, fixed(BcastScatterAllgather)},
		{SpecInfo{Name: "knomial-read", Default: 4}, clampRadix,
			func(k int) func(*mpi.Rank, Args) { return BcastKnomialRead(k) }},
		{SpecInfo{Name: "knomial-write", Default: 4}, clampRadix,
			func(k int) func(*mpi.Rank, Args) { return BcastKnomialWrite(k) }},
		{SpecInfo{Name: "binomial-shm"}, nil, fixed(BcastBinomial(TransportShm))},
		{SpecInfo{Name: "vandegeijn-pt2pt"}, nil, fixed(BcastVanDeGeijn(TransportPt2pt))},
		{SpecInfo{Name: "tuned"}, nil, fixed(TunedBcast)},
	},
	KindAllgather: {
		{SpecInfo{Name: "ring-source-read"}, nil, fixed(AllgatherRingSourceRead)},
		{SpecInfo{Name: "ring-source-write"}, nil, fixed(AllgatherRingSourceWrite)},
		{SpecInfo{Name: "ring-neighbor", Default: 1}, clampStride,
			func(j int) func(*mpi.Rank, Args) { return AllgatherRingNeighbor(j) }},
		{SpecInfo{Name: "recursive-doubling"}, nil, fixed(AllgatherRecursiveDoubling)},
		{SpecInfo{Name: "bruck"}, nil, fixed(AllgatherBruck)},
		{SpecInfo{Name: "ring-pt2pt"}, nil, fixed(AllgatherRing(TransportPt2pt))},
		{SpecInfo{Name: "ring-shm"}, nil, fixed(AllgatherRing(TransportShm))},
		{SpecInfo{Name: "tuned"}, nil, fixed(TunedAllgather)},
	},
	KindAlltoall: {
		{SpecInfo{Name: "pairwise-cma-coll", Aliases: []string{"pairwise"}}, nil, fixed(AlltoallPairwiseColl)},
		{SpecInfo{Name: "pairwise-cma-pt2pt"}, nil, fixed(AlltoallPairwisePt2pt)},
		{SpecInfo{Name: "pairwise-shmem"}, nil, fixed(AlltoallPairwiseShm)},
		{SpecInfo{Name: "bruck"}, nil, fixed(AlltoallBruck)},
		{SpecInfo{Name: "tuned"}, nil, fixed(TunedAlltoall)},
	},
	KindReduce: {
		{SpecInfo{Name: "flat-sequential"}, nil, fixed(ReduceFlat)},
		{SpecInfo{Name: "parallel-write"}, nil, fixed(ReduceParallelWrite)},
		{SpecInfo{Name: "knomial", Default: 2}, clampRadix,
			func(k int) func(*mpi.Rank, Args) { return ReduceKnomial(k) }},
		{SpecInfo{Name: "binomial-shm"}, nil, fixed(ReduceBinomialPt2pt(TransportShm))},
		{SpecInfo{Name: "binomial-pt2pt"}, nil, fixed(ReduceBinomialPt2pt(TransportPt2pt))},
		{SpecInfo{Name: "tuned"}, nil, fixed(TunedReduce)},
	},
}

// SpecKinds returns the collective kinds with registered spec grammars,
// in a fixed order.
func SpecKinds() []Kind {
	return append([]Kind(nil), specKindOrder...)
}

// Specs returns the registered algorithm families for a kind in
// registration order (nil for a kind without a grammar).
func Specs(kind Kind) []SpecInfo {
	entries := specTable[kind]
	out := make([]SpecInfo, len(entries))
	for i, e := range entries {
		out[i] = e.SpecInfo
	}
	return out
}

// parseSpec splits "name[:param]" and validates the parameter syntax.
// has reports whether an explicit parameter was given.
func parseSpec(spec string) (name string, param int, has bool, err error) {
	name = spec
	if i := strings.IndexByte(spec, ':'); i >= 0 {
		name = spec[:i]
		v, aerr := strconv.Atoi(spec[i+1:])
		if aerr != nil || v < 1 {
			return "", 0, false, fmt.Errorf("core: bad parameter in algorithm spec %q", spec)
		}
		param, has = v, true
	}
	return name, param, has, nil
}

// findSpec resolves a family name (or alias) for a kind.
func findSpec(kind Kind, name string) (*specEntry, error) {
	entries := specTable[kind]
	for i := range entries {
		e := &entries[i]
		if e.Name == name {
			return e, nil
		}
		for _, a := range e.Aliases {
			if a == name {
				return e, nil
			}
		}
	}
	return nil, fmt.Errorf("core: unknown %s algorithm %q", kind, name)
}

// resolveSpec is the shared front half of LookupAlgorithm and Replan:
// parse, resolve the family, reject a parameter on a parameter-free
// family, and apply the default.
func resolveSpec(kind Kind, spec string) (*specEntry, int, error) {
	name, param, has, err := parseSpec(spec)
	if err != nil {
		return nil, 0, err
	}
	e, err := findSpec(kind, name)
	if err != nil {
		return nil, 0, err
	}
	if has && e.Default == 0 {
		return nil, 0, fmt.Errorf("core: %s algorithm %q takes no parameter (got %q)", kind, e.Name, spec)
	}
	k := e.Default
	if has {
		k = param
	}
	return e, k, nil
}
