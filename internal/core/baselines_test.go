package core

import (
	"testing"

	"camc/internal/arch"
)

func TestBaselineScatterCorrect(t *testing.T) {
	for _, tr := range []Transport{TransportPt2pt, TransportShm} {
		for _, p := range testProcCounts {
			for _, root := range rootsFor(p) {
				f := newFixture(t, arch.KNL(), p, KindScatter, 4500)
				f.run(t, ScatterBinomial(tr), root)
				f.verifyScatter(t, root)
			}
		}
	}
}

func TestBaselineGatherCorrect(t *testing.T) {
	for _, tr := range []Transport{TransportPt2pt, TransportShm} {
		for _, p := range testProcCounts {
			for _, root := range rootsFor(p) {
				f := newFixture(t, arch.KNL(), p, KindGather, 4500)
				f.run(t, GatherBinomial(tr), root)
				f.verifyGather(t, root)
			}
		}
	}
}

func TestBaselineBcastCorrect(t *testing.T) {
	for _, tr := range []Transport{TransportPt2pt, TransportShm} {
		for _, p := range testProcCounts {
			for _, root := range rootsFor(p) {
				f := newFixture(t, arch.KNL(), p, KindBcast, 9000)
				f.run(t, BcastBinomial(tr), root)
				f.verifyBcast(t, root)

				f2 := newFixture(t, arch.KNL(), p, KindBcast, 9000)
				f2.run(t, BcastVanDeGeijn(tr), root)
				f2.verifyBcast(t, root)
			}
		}
	}
}

func TestBaselineAllgatherCorrect(t *testing.T) {
	for _, tr := range []Transport{TransportPt2pt, TransportShm} {
		for _, p := range testProcCounts {
			f := newFixture(t, arch.KNL(), p, KindAllgather, 3000)
			f.run(t, AllgatherRing(tr), 0)
			f.verifyAllgather(t)
		}
	}
}

func TestBaselineTinyCountVanDeGeijn(t *testing.T) {
	// Count < p: most chunks are empty; correctness must hold.
	for _, p := range []int{5, 8, 13} {
		f := newFixture(t, arch.KNL(), p, KindBcast, 3)
		f.run(t, BcastVanDeGeijn(TransportPt2pt), 1)
		f.verifyBcast(t, 1)
	}
}

func TestTunedCorrectAcrossSizesAndArchs(t *testing.T) {
	// The tuned selector switches algorithms at thresholds; verify
	// correctness on both sides of every switch point.
	sizes := []int64{512, 5000, 20000, 70000}
	for _, a := range arch.All() {
		for _, size := range sizes {
			p := 8
			fs := newFixture(t, a, p, KindScatter, size)
			fs.run(t, TunedScatter, 0)
			fs.verifyScatter(t, 0)

			fg := newFixture(t, a, p, KindGather, size)
			fg.run(t, TunedGather, 0)
			fg.verifyGather(t, 0)

			fb := newFixture(t, a, p, KindBcast, size)
			fb.run(t, TunedBcast, 0)
			fb.verifyBcast(t, 0)

			fa := newFixture(t, a, p, KindAllgather, size)
			fa.run(t, TunedAllgather, 0)
			fa.verifyAllgather(t)

			f2 := newFixture(t, a, p, KindAlltoall, size)
			f2.run(t, TunedAlltoall, 0)
			f2.verifyAlltoall(t)
		}
	}
}

func TestTunedThrottleValues(t *testing.T) {
	if k := TunedThrottle(arch.KNL()); k != 8 {
		t.Errorf("KNL throttle = %d, want 8", k)
	}
	if k := TunedThrottle(arch.Broadwell()); k != 4 {
		t.Errorf("Broadwell throttle = %d, want 4", k)
	}
	if k := TunedThrottle(arch.Power8()); k != 10 {
		t.Errorf("Power8 throttle = %d, want 10", k)
	}
}
