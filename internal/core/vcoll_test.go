package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"camc/internal/arch"
	"camc/internal/kernel"
	"camc/internal/mpi"
)

// vFixture prepares a communicator with irregular counts: rank i's slice
// in the root buffer is filled with pattern(root, i, offset).
type vFixture struct {
	comm   *mpi.Comm
	counts []int64
	displs []int64
	send   []kernel.Addr
	recv   []kernel.Addr
}

func newVFixture(t *testing.T, p int, counts []int64) *vFixture {
	t.Helper()
	total := TotalCount(counts)
	mem := 8 * (total + 64<<10)
	c := mpi.New(mpi.Config{Arch: arch.KNL(), Procs: p, CopyData: true, MemPerProc: mem})
	f := &vFixture{comm: c, counts: counts, displs: PackedDispls(counts)}
	for i := 0; i < p; i++ {
		// Every rank allocates both a full-size root buffer and its own
		// slice buffer; only the relevant ones are used.
		full := c.Rank(i).Alloc(total + 1)
		mine := c.Rank(i).Alloc(counts[i] + 1)
		f.send = append(f.send, full)
		f.recv = append(f.recv, mine)
		_ = mine
	}
	return f
}

// fillRoot writes the scatterv pattern into root's full buffer.
func (f *vFixture) fillRoot(root int) {
	total := TotalCount(f.counts)
	buf := f.comm.Rank(root).OS.Bytes(f.send[root], total)
	for d := range f.counts {
		for j := int64(0); j < f.counts[d]; j++ {
			buf[f.displs[d]+j] = pattern(root, d, int(j))
		}
	}
}

func irregularCounts(p int, seed int64) []int64 {
	rng := rand.New(rand.NewSource(seed))
	counts := make([]int64, p)
	for i := range counts {
		switch rng.Intn(4) {
		case 0:
			counts[i] = 0 // zero-count ranks must not break the chain
		case 1:
			counts[i] = int64(rng.Intn(100)) + 1
		default:
			counts[i] = int64(rng.Intn(20000)) + 1
		}
	}
	return counts
}

func TestScattervCorrect(t *testing.T) {
	algos := map[string]func(r *mpi.Rank, a VArgs){
		"throttled-3": ScattervThrottled(3),
		"throttled-1": ScattervThrottled(1),
		"seq-write":   ScattervSeqWrite,
	}
	for name, algo := range algos {
		algo := algo
		t.Run(name, func(t *testing.T) {
			for _, p := range []int{1, 2, 5, 9, 16} {
				for _, root := range rootsFor(p) {
					counts := irregularCounts(p, int64(p*100+root))
					f := newVFixture(t, p, counts)
					f.fillRoot(root)
					f.comm.Start(func(r *mpi.Rank) {
						algo(r, VArgs{Send: f.send[r.ID], Recv: f.recv[r.ID], Counts: counts, Displs: f.displs, Root: root})
					})
					if err := f.comm.Sim.Run(); err != nil {
						t.Fatalf("p=%d root=%d: %v", p, root, err)
					}
					for i := 0; i < p; i++ {
						if counts[i] == 0 {
							continue
						}
						dst := f.recv[i]
						if i == root {
							dst = f.recv[root]
						}
						got := f.comm.Rank(i).OS.Bytes(dst, counts[i])
						for _, j := range []int64{0, counts[i] - 1} {
							if got[j] != pattern(root, i, int(j)) {
								t.Fatalf("p=%d root=%d rank %d offset %d wrong", p, root, i, j)
							}
						}
					}
				}
			}
		})
	}
}

func TestGathervCorrect(t *testing.T) {
	algos := map[string]func(r *mpi.Rank, a VArgs){
		"throttled-4":    GathervThrottled(4),
		"seq-read":       GathervSeqRead,
		"parallel-write": GathervParallelWrite,
	}
	for name, algo := range algos {
		algo := algo
		t.Run(name, func(t *testing.T) {
			for _, p := range []int{1, 3, 8, 13} {
				for _, root := range rootsFor(p) {
					counts := irregularCounts(p, int64(p*31+root))
					displs := PackedDispls(counts)
					total := TotalCount(counts)
					c := mpi.New(mpi.Config{Arch: arch.KNL(), Procs: p, CopyData: true, MemPerProc: 8 * (total + 64<<10)})
					send := make([]kernel.Addr, p)
					recv := make([]kernel.Addr, p)
					for i := 0; i < p; i++ {
						send[i] = c.Rank(i).Alloc(counts[i] + 1)
						recv[i] = c.Rank(i).Alloc(total + 1)
						buf := c.Rank(i).OS.Bytes(send[i], counts[i])
						for j := range buf {
							buf[j] = pattern(i, 0, j)
						}
					}
					c.Start(func(r *mpi.Rank) {
						algo(r, VArgs{Send: send[r.ID], Recv: recv[r.ID], Counts: counts, Displs: displs, Root: root})
					})
					if err := c.Sim.Run(); err != nil {
						t.Fatalf("p=%d root=%d: %v", p, root, err)
					}
					out := c.Rank(root).OS.Bytes(recv[root], total)
					for src := 0; src < p; src++ {
						if counts[src] == 0 {
							continue
						}
						for _, j := range []int64{0, counts[src] - 1} {
							if out[displs[src]+j] != pattern(src, 0, int(j)) {
								t.Fatalf("p=%d root=%d src %d offset %d wrong", p, root, src, j)
							}
						}
					}
				}
			}
		})
	}
}

func TestVArgsValidation(t *testing.T) {
	c := mpi.New(mpi.Config{Arch: arch.KNL(), Procs: 3, CopyData: false})
	c.Start(func(r *mpi.Rank) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for short counts")
			}
		}()
		ScattervSeqWrite(r, VArgs{Counts: []int64{1}, Displs: []int64{0}, Root: 0})
	})
	_ = c.Sim.Run()
}

func TestPackedDisplsProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		counts := make([]int64, len(raw))
		for i, v := range raw {
			counts[i] = int64(v)
		}
		d := PackedDispls(counts)
		var off int64
		for i := range counts {
			if d[i] != off {
				return false
			}
			off += counts[i]
		}
		return off == TotalCount(counts)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGathervThrottledBeatsParallelWhenSkewed(t *testing.T) {
	// Irregular counts widen the naive design's contention window; the
	// throttled design stays ahead at full subscription.
	a := arch.KNL()
	c1 := mpi.New(mpi.Config{Arch: a, CopyData: false})
	p := c1.Size()
	counts := make([]int64, p)
	for i := range counts {
		counts[i] = int64(64<<10 + (i%7)*4096)
	}
	displs := PackedDispls(counts)
	run := func(algo func(r *mpi.Rank, a VArgs)) float64 {
		c := mpi.New(mpi.Config{Arch: a, CopyData: false})
		send := make([]kernel.Addr, p)
		recv := make([]kernel.Addr, p)
		for i := 0; i < p; i++ {
			send[i] = c.Rank(i).Alloc(counts[i])
			recv[i] = c.Rank(i).Alloc(TotalCount(counts))
		}
		c.Start(func(r *mpi.Rank) {
			algo(r, VArgs{Send: send[r.ID], Recv: recv[r.ID], Counts: counts, Displs: displs, Root: 0})
		})
		if err := c.Sim.Run(); err != nil {
			panic(err)
		}
		return c.Sim.Now()
	}
	throttled := run(GathervThrottled(8))
	naive := run(GathervParallelWrite)
	if naive < 2*throttled {
		t.Fatalf("parallel gatherv %.0f not clearly above throttled %.0f", naive, throttled)
	}
}
