package core

import (
	"camc/internal/mpi"
	"camc/internal/trace"
)

// Trace hooks for the collective algorithms. Every helper is a no-op
// (no allocation, no virtual-time cost) when no recorder is attached
// to the rank's communicator, so traced and untraced runs take the
// same simulated time.

// beginColl opens the rank-local invocation span for one collective
// algorithm; close it with rec.End(span) (both are nil-safe).
func beginColl(r *mpi.Rank, name string, a Args) (*trace.Recorder, trace.SpanID) {
	rec := r.Tracer()
	if rec == nil {
		return nil, trace.NoSpan
	}
	return rec, rec.Begin(r.Lane(), trace.CatColl, name,
		trace.F("count", float64(a.Count)), trace.F("root", float64(a.Root)))
}

// collStep marks one algorithm step (round i against peer) on the
// rank's lane.
func collStep(r *mpi.Rank, i, peer int) {
	if rec := r.Tracer(); rec != nil {
		rec.Instant(r.Lane(), trace.CatColl, "step",
			trace.F("i", float64(i)), trace.F("peer", float64(peer)))
	}
}

// tokenAcquire marks a throttled rank obtaining its read/write slot
// (either released by the rank k positions ahead, or free because the
// rank is in the first wave).
func tokenAcquire(r *mpi.Rank, k int) {
	if rec := r.Tracer(); rec != nil {
		rec.Instant(r.Lane(), trace.CatThrottle, "token_acquire", trace.F("k", float64(k)))
	}
}

// tokenRelease marks a throttled rank handing its slot to rank `to`
// (or back to the root when the chain ends).
func tokenRelease(r *mpi.Rank, to, k int) {
	if rec := r.Tracer(); rec != nil {
		rec.Instant(r.Lane(), trace.CatThrottle, "token_release",
			trace.F("to", float64(to)), trace.F("k", float64(k)))
	}
}

// beginPhase opens a named sub-phase span of a composed algorithm
// (e.g. the scatter and ring halves of Van de Geijn broadcast).
func beginPhase(r *mpi.Rank, name string, args ...trace.Arg) trace.SpanID {
	if rec := r.Tracer(); rec != nil {
		return rec.Begin(r.Lane(), trace.CatColl, name, args...)
	}
	return trace.NoSpan
}

// endPhase closes a span opened with beginPhase.
func endPhase(r *mpi.Rank, span trace.SpanID) {
	r.Tracer().End(span)
}
