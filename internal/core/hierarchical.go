package core

// Socket-aware two-level intra-node collectives: the paper's §IX
// "efficient multi-level collectives" applied *within* the node. Each
// socket elects a leader (its lowest rank under block placement; the
// root leads its own socket); phase 1 runs the contention-aware design
// within each socket concurrently — every socket contends only on its
// own leader's mm, and all traffic stays intra-socket — and phase 2
// moves the per-socket aggregates between the few leaders.

import (
	"camc/internal/kernel"
	"camc/internal/mpi"
)

// socketOf mirrors arch.RankSocket's block placement for the
// communicator's size.
func socketOf(r *mpi.Rank, rank int) int {
	return r.Comm.Node.Arch.RankSocket(rank, r.Size())
}

// socketMembers returns the ranks on socket s in ascending order.
func socketMembers(r *mpi.Rank, s int) []int {
	var out []int
	for i := 0; i < r.Size(); i++ {
		if socketOf(r, i) == s {
			out = append(out, i)
		}
	}
	return out
}

// socketLeader returns socket s's leader: the root if it lives there,
// else the socket's lowest rank.
func socketLeader(r *mpi.Rank, s, root int) int {
	if socketOf(r, root) == s {
		return root
	}
	return socketMembers(r, s)[0]
}

// GatherSocketAware is the two-level gather: throttled writes to each
// socket leader in parallel (k bounded per leader, all intra-socket),
// then each non-root leader writes its socket's contiguous aggregate to
// the root with a single large transfer.
//
// Under block placement every socket's ranks are contiguous, so a
// socket's aggregate occupies one contiguous slice of the root's
// receive buffer.
func GatherSocketAware(k int) func(r *mpi.Rank, a Args) {
	if k < 1 {
		panic("core: throttle factor must be >= 1")
	}
	return func(r *mpi.Rank, a Args) {
		a.validate(r)
		sockets := r.Comm.Node.Arch.Sockets
		if sockets == 1 {
			GatherThrottled(k)(r, a)
			return
		}
		mySocket := socketOf(r, r.ID)
		myLeader := socketLeader(r, mySocket, a.Root)
		members := socketMembers(r, mySocket)

		// Leaders stage their socket's blocks; the root stages directly
		// into its receive buffer (offset by the socket's first rank).
		var stage kernel.Addr
		isLeader := r.ID == myLeader
		if isLeader {
			if r.ID == a.Root {
				stage = a.Recv
			} else {
				stage = r.Alloc(int64(len(members)) * a.Count)
			}
		}
		// Every rank learns every rank's stage address (non-leaders
		// publish 0; only leader addresses are consumed).
		addrs := r.Allgather64(int64(stage))

		// Phase 1: throttled writes into the socket leader. The chain is
		// socket-local: member index i waits for index i−k.
		idx := -1
		var nonLeaders []int
		for _, m := range members {
			if m != myLeader {
				nonLeaders = append(nonLeaders, m)
			}
		}
		for i, m := range nonLeaders {
			if m == r.ID {
				idx = i
			}
		}
		// Destination offset of rank m inside its leader's stage.
		offsetIn := func(m, leader int) kernel.Addr {
			if leader == a.Root {
				return kernel.Addr(int64(m) * a.Count)
			}
			return kernel.Addr(int64(m-members[0]) * a.Count)
		}
		if isLeader {
			if r.ID == a.Root && !a.InPlace {
				r.LocalCopy(a.Recv+kernel.Addr(int64(a.Root)*a.Count), a.Send, a.Count)
			} else if r.ID != a.Root {
				r.LocalCopy(stage+offsetIn(r.ID, r.ID), a.Send, a.Count)
			}
			first := len(nonLeaders) - k
			if first < 0 {
				first = 0
			}
			for i := first; i < len(nonLeaders); i++ {
				r.WaitNotify(nonLeaders[i])
			}
		} else {
			if idx-k >= 0 {
				r.WaitNotify(nonLeaders[idx-k])
			}
			r.VMWrite(a.Send, myLeader, kernel.Addr(addrs[myLeader])+offsetIn(r.ID, myLeader), a.Count)
			if idx+k < len(nonLeaders) {
				r.Notify(nonLeaders[idx+k])
			} else {
				r.Notify(myLeader)
			}
		}

		// Phase 2: non-root leaders ship their socket aggregate to the
		// root; contention is bounded by the handful of leaders.
		rootAddr := kernel.Addr(addrs[a.Root])
		if isLeader && r.ID != a.Root {
			// The socket's blocks are contiguous in rank order. If the
			// root lives inside this range (it does not: the root leads
			// its own socket), this would need splitting.
			r.VMWrite(stage, a.Root, rootAddr+kernel.Addr(int64(members[0])*a.Count),
				int64(len(members))*a.Count)
			r.Notify(a.Root)
		}
		if r.ID == a.Root {
			for s := 0; s < sockets; s++ {
				if lead := socketLeader(r, s, a.Root); lead != a.Root {
					r.WaitNotify(lead)
				}
			}
		}
		// Completion: everyone may return once the root has everything.
		r.Bcast64(a.Root, 0)
	}
}

// BcastSocketAware is the two-level broadcast: the root writes the
// message to each other socket's leader (a couple of large
// contention-free transfers), then each socket runs the k-nomial read
// tree internally and in parallel — every read intra-socket, concurrency
// bounded per socket.
func BcastSocketAware(k int) func(r *mpi.Rank, a Args) {
	if k < 2 {
		panic("core: k-nomial base must be >= 2")
	}
	return func(r *mpi.Rank, a Args) {
		a.validate(r)
		sockets := r.Comm.Node.Arch.Sockets
		if sockets == 1 {
			BcastKnomialRead(k)(r, a)
			return
		}
		mySocket := socketOf(r, r.ID)
		myLeader := socketLeader(r, mySocket, a.Root)
		buf := bcastBuf(r, a)
		addrs := r.Allgather64(int64(buf))

		// Phase 1: root pushes to the other socket leaders.
		if r.ID == a.Root {
			for s := 0; s < sockets; s++ {
				if lead := socketLeader(r, s, a.Root); lead != a.Root {
					r.VMWrite(a.Send, lead, kernel.Addr(addrs[lead]), a.Count)
					r.Notify(lead)
				}
			}
		} else if r.ID == myLeader {
			r.WaitNotify(a.Root)
		}

		// Phase 2: k-nomial read tree within the socket, leader as local
		// root. Build the tree over the socket's member list.
		members := socketMembers(r, mySocket)
		rel := -1
		leaderPos := 0
		for i, m := range members {
			if m == myLeader {
				leaderPos = i
			}
		}
		// Relative order: leader first, others in ascending rank order.
		order := append([]int{myLeader}, append(append([]int{}, members[:leaderPos]...), members[leaderPos+1:]...)...)
		for i, m := range order {
			if m == r.ID {
				rel = i
			}
		}
		parent, levels := knomialChildren(rel, len(order), k)
		if parent >= 0 {
			pr := order[parent]
			r.WaitNotify(pr)
			r.VMRead(a.Recv, pr, kernel.Addr(addrs[pr]), a.Count)
			r.Notify(pr)
		}
		for _, lvl := range levels {
			for _, c := range lvl {
				r.Notify(order[c])
			}
			for _, c := range lvl {
				r.WaitNotify(order[c])
			}
		}
	}
}
