package core

import (
	"fmt"
	"strconv"
	"strings"
)

// Replan re-resolves an algorithm spec for a new communicator size p,
// clamping any tuning parameter that no longer fits. It is the
// algorithm-selection half of permanent-failure recovery: after
// Comm.Shrink removes dead ranks, the surviving communicator may be
// smaller than the one the spec was tuned for — possibly no longer a
// power of two, and possibly smaller than the spec's throttle factor or
// tree radix. Replan keeps the algorithm family and adjusts only the
// parameter:
//
//   - throttled:k (scatter, gather): k is clamped to p−1, the number of
//     non-roots (and to at least 1). A throttle wider than the reader
//     set is equivalent to parallel access, which defeats the point of
//     having chosen a throttled family.
//   - knomial-read:k / knomial-write:k (bcast): the radix is clamped to
//     [2, p] — a base-k tree over p ranks never fans wider than p, and
//     the tree construction requires k >= 2.
//   - ring-neighbor:j (allgather): the stride must satisfy
//     gcd(p, j mod p) == 1 or the ring does not visit every block.
//     Replan decrements j until the ring is a single cycle again
//     (j = 1 always is).
//
// Parameter-free specs pass through unchanged, so Replan is safe to
// call unconditionally on any spec LookupAlgorithm accepts. The
// returned Algorithm's Name reflects the clamped parameter, so traces
// and result tables show what actually ran.
func Replan(kind Kind, spec string, p int) (Algorithm, error) {
	if p < 1 {
		return Algorithm{}, fmt.Errorf("core: replan for %d ranks", p)
	}
	name, param := spec, 0
	if i := strings.IndexByte(spec, ':'); i >= 0 {
		name = spec[:i]
		v, err := strconv.Atoi(spec[i+1:])
		if err != nil || v < 1 {
			return Algorithm{}, fmt.Errorf("core: bad parameter in algorithm spec %q", spec)
		}
		param = v
	}
	pick := func(def int) int {
		if param == 0 {
			return def
		}
		return param
	}
	clamped := 0
	switch {
	case (kind == KindScatter || kind == KindGather) && (name == "throttle" || name == "throttled"):
		clamped = clampThrottle(pick(4), p)
	case kind == KindBcast && (name == "knomial-read" || name == "knomial-write"):
		clamped = clampRadix(pick(4), p)
	case kind == KindAllgather && name == "ring-neighbor":
		clamped = clampStride(pick(1), p)
	default:
		return LookupAlgorithm(kind, spec)
	}
	return LookupAlgorithm(kind, name+":"+strconv.Itoa(clamped))
}

// clampThrottle bounds a throttle factor to the non-root count of a
// p-rank communicator.
func clampThrottle(k, p int) int {
	if k > p-1 {
		k = p - 1
	}
	if k < 1 {
		k = 1
	}
	return k
}

// clampRadix bounds a k-nomial tree radix to [2, p].
func clampRadix(k, p int) int {
	if k > p {
		k = p
	}
	if k < 2 {
		k = 2
	}
	return k
}

// clampStride reduces a ring-neighbor stride until it is coprime with
// p, so the generalized ring remains a single p-cycle.
func clampStride(j, p int) int {
	if p == 1 {
		return 1
	}
	if j >= p {
		j = p - 1
	}
	for j > 1 && gcd(p, j%p) != 1 {
		j--
	}
	if j < 1 {
		j = 1
	}
	return j
}
