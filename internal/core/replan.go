package core

import (
	"fmt"
	"strconv"
	"strings"
)

// Replan re-resolves an algorithm spec for a new communicator size p,
// clamping any tuning parameter that no longer fits. It is the
// algorithm-selection half of permanent-failure recovery: after
// Comm.Shrink removes dead ranks, the surviving communicator may be
// smaller than the one the spec was tuned for — possibly no longer a
// power of two, and possibly smaller than the spec's throttle factor or
// tree radix. Replan keeps the algorithm family and adjusts only the
// parameter:
//
//   - throttled:k (scatter, gather): k is clamped to p−1, the number of
//     non-roots (and to at least 1). A throttle wider than the reader
//     set is equivalent to parallel access, which defeats the point of
//     having chosen a throttled family.
//   - knomial-read:k / knomial-write:k (bcast) and knomial:k (reduce):
//     the radix is clamped to [2, p] — a base-k tree over p ranks never
//     fans wider than p, and the tree construction requires k >= 2.
//   - ring-neighbor:j (allgather): the stride must satisfy
//     gcd(p, j mod p) == 1 or the ring does not visit every block.
//     Replan decrements j until the ring is a single cycle again
//     (j = 1 always is).
//
// Parameter-free specs pass through unchanged, so Replan is safe to
// call unconditionally on any spec LookupAlgorithm accepts — the two
// share one grammar table (spec.go), each family registering its clamp
// rule once. The returned Algorithm's Name reflects the clamped
// parameter, so traces and result tables show what actually ran.
func Replan(kind Kind, spec string, p int) (Algorithm, error) {
	if p < 1 {
		return Algorithm{}, fmt.Errorf("core: replan for %d ranks", p)
	}
	e, k, err := resolveSpec(kind, spec)
	if err != nil {
		return Algorithm{}, err
	}
	if e.clamp == nil {
		return LookupAlgorithm(kind, spec)
	}
	name := spec
	if i := strings.IndexByte(spec, ':'); i >= 0 {
		name = spec[:i]
	}
	return LookupAlgorithm(kind, name+":"+strconv.Itoa(e.clamp(k, p)))
}

// clampThrottle bounds a throttle factor to the non-root count of a
// p-rank communicator.
func clampThrottle(k, p int) int {
	if k > p-1 {
		k = p - 1
	}
	if k < 1 {
		k = 1
	}
	return k
}

// clampRadix bounds a k-nomial tree radix to [2, p].
func clampRadix(k, p int) int {
	if k > p {
		k = p
	}
	if k < 2 {
		k = 2
	}
	return k
}

// clampStride reduces a ring-neighbor stride until it is coprime with
// p, so the generalized ring remains a single p-cycle.
func clampStride(j, p int) int {
	if p == 1 {
		return 1
	}
	if j >= p {
		j = p - 1
	}
	for j > 1 && gcd(p, j%p) != 1 {
		j--
	}
	if j < 1 {
		j = 1
	}
	return j
}
