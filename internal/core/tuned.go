package core

import (
	"camc/internal/arch"
	"camc/internal/mpi"
)

// Tuning (§VII): the proposed design selects the best CMA algorithm — or
// falls back to shared memory where kernel assistance does not pay — per
// architecture, collective, and message size, mirroring the MVAPICH2
// collective tuning framework the paper plugs into.
//
// The selection table below encodes the paper's published winners:
//
//   - Scatter/Gather: throttled with k=8 (KNL), k=4 (Broadwell), k=10
//     (Power8, avoiding inter-socket lock contention); shared-memory
//     binomial below the kernel-assist threshold.
//   - Bcast: k-nomial reads at medium sizes (fan-out matching the
//     throttle sweet spot), scatter-allgather at large; on Broadwell the
//     shared-memory Van de Geijn design keeps winning until ~2 MB
//     because shm bcast needs p copies vs p−1 for CMA, and CMA adds
//     contention (§VII-F).
//   - Allgather: Bruck for small messages (log p steps), ring-source
//     reads for medium and large (socket-friendly neighbor traffic).
//   - Alltoall: native pairwise CMA above the threshold, two-copy
//     pairwise below.

// TunedThrottle returns the contention sweet-spot fan-out for an
// architecture (the k in throttled reads/writes and k-nomial trees).
func TunedThrottle(a *arch.Profile) int {
	switch a.Name {
	case "knl":
		return 8
	case "broadwell":
		return 4
	case "power8":
		return 10
	}
	// Generic fallback: stay within one socket.
	k := a.CoresPerSocket / 2
	if k < 2 {
		k = 2
	}
	return k
}

// cmaThreshold is the message size where kernel-assisted transfers start
// paying off for rooted collectives (the paper's ≥16 KiB guidance, with
// Gather benefiting from 1 KiB per §VII-C).
func cmaThreshold(kind Kind) int64 {
	switch kind {
	case KindGather, KindScatter:
		return 4 << 10
	default:
		return 16 << 10
	}
}

// TunedScatter picks the proposed Scatter design for the architecture
// and size.
func TunedScatter(r *mpi.Rank, a Args) {
	rec, span := beginColl(r, "scatter:tuned", a)
	defer rec.End(span)
	prof := r.Comm.Node.Arch
	if a.Count < cmaThreshold(KindScatter) {
		ScatterBinomial(TransportShm)(r, a)
		return
	}
	ScatterThrottled(TunedThrottle(prof))(r, a)
}

// TunedGather picks the proposed Gather design.
func TunedGather(r *mpi.Rank, a Args) {
	rec, span := beginColl(r, "gather:tuned", a)
	defer rec.End(span)
	prof := r.Comm.Node.Arch
	if a.Count < cmaThreshold(KindGather) {
		GatherBinomial(TransportShm)(r, a)
		return
	}
	GatherThrottled(TunedThrottle(prof))(r, a)
}

// TunedBcast picks the proposed Bcast design.
func TunedBcast(r *mpi.Rank, a Args) {
	rec, span := beginColl(r, "bcast:tuned", a)
	defer rec.End(span)
	prof := r.Comm.Node.Arch
	k := TunedThrottle(prof)
	switch prof.Name {
	case "broadwell":
		// Shared memory keeps winning until ~2 MB on Broadwell (§VII-F):
		// binomial for small messages, Van de Geijn shm for medium,
		// native CMA scatter-allgather only at the top.
		switch {
		case a.Count < 32<<10:
			BcastBinomial(TransportShm)(r, a)
		case a.Count < 2<<20:
			BcastVanDeGeijn(TransportPt2pt)(r, a)
		default:
			BcastScatterAllgather(r, a)
		}
	case "power8":
		// High aggregate throughput: k-nomial reads win from 32 KiB up.
		if a.Count < 32<<10 {
			BcastBinomial(TransportShm)(r, a)
			return
		}
		BcastKnomialRead(k+1)(r, a)
	default: // knl
		if a.Count < cmaThreshold(KindBcast) {
			BcastBinomial(TransportShm)(r, a)
			return
		}
		if a.Count < 1<<20 {
			BcastKnomialRead(k+1)(r, a)
			return
		}
		BcastScatterAllgather(r, a)
	}
}

// TunedAllgather picks the proposed Allgather design: Bruck's log-step
// algorithm for small messages, then the socket-aware ring — direct
// source reads on single-socket machines (no per-step synchronization),
// the neighbor ring on multi-socket machines, where most of its traffic
// stays intra-socket while source reads cross the interconnect for half
// of theirs (the paper's "intra- and inter-socket awareness", §VII-E).
func TunedAllgather(r *mpi.Rank, a Args) {
	rec, span := beginColl(r, "allgather:tuned", a)
	defer rec.End(span)
	if a.Count < cmaThreshold(KindAllgather) {
		AllgatherBruck(r, a)
		return
	}
	if r.Comm.Node.Arch.Sockets > 1 {
		AllgatherRingNeighbor(1)(r, a)
		return
	}
	AllgatherRingSourceRead(r, a)
}

// TunedAlltoall picks the proposed Alltoall design.
func TunedAlltoall(r *mpi.Rank, a Args) {
	rec, span := beginColl(r, "alltoall:tuned", a)
	defer rec.End(span)
	if a.Count < 1<<10 {
		AlltoallPairwiseShm(r, a)
		return
	}
	AlltoallPairwiseColl(r, a)
}

// Tuned returns the proposed ("CMA-coll tuned") implementation of a
// collective kind.
func Tuned(kind Kind) func(r *mpi.Rank, a Args) {
	switch kind {
	case KindScatter:
		return TunedScatter
	case KindGather:
		return TunedGather
	case KindBcast:
		return TunedBcast
	case KindAllgather:
		return TunedAllgather
	case KindAlltoall:
		return TunedAlltoall
	case KindReduce:
		return TunedReduce
	}
	panic("core: unknown collective kind " + string(kind))
}
