package check

import (
	"fmt"

	"camc/internal/core"
)

// This file is the differential oracle: a deliberately naive,
// obviously-correct implementation of each collective's data semantics,
// computed sequentially on plain byte slices with two copies and no
// algorithmic cleverness whatsoever. Whatever schedule, tree, ring or
// degraded path the real algorithm took, its receive buffers must match
// these.

// BufSizes returns the send/receive buffer lengths for one rank of a
// p-rank communicator running kind with per-rank block size count.
func BufSizes(kind core.Kind, p int, count int64) (sendLen, recvLen int64, err error) {
	blocks := int64(p)
	switch kind {
	case core.KindScatter:
		return blocks * count, count, nil
	case core.KindGather:
		return count, blocks * count, nil
	case core.KindAlltoall, core.KindAllgather:
		return blocks * count, blocks * count, nil
	case core.KindBcast, core.KindReduce:
		return count, count, nil
	}
	return 0, 0, fmt.Errorf("check: unsupported kind %q", kind)
}

// Reference computes the expected receive buffer of every rank from a
// snapshot of the send buffers. sends[r] is rank r's send buffer (laid
// out per BufSizes). The returned slice has one entry per rank; a nil
// entry means MPI leaves that rank's receive buffer unspecified (e.g.
// non-roots in gather and reduce, the root in bcast), so the
// differential comparison must skip it.
func Reference(kind core.Kind, p int, count int64, root int, sends [][]byte) ([][]byte, error) {
	if len(sends) != p {
		return nil, fmt.Errorf("check: %d send snapshots for %d ranks", len(sends), p)
	}
	sendLen, recvLen, err := BufSizes(kind, p, count)
	if err != nil {
		return nil, err
	}
	for r, s := range sends {
		if int64(len(s)) != sendLen {
			return nil, fmt.Errorf("check: rank %d send snapshot is %d bytes, want %d", r, len(s), sendLen)
		}
	}
	exp := make([][]byte, p)
	fill := func(r int) []byte {
		exp[r] = make([]byte, recvLen)
		return exp[r]
	}
	switch kind {
	case core.KindScatter:
		// Block d of the root's send buffer lands in rank d's recv.
		for d := 0; d < p; d++ {
			copy(fill(d), sends[root][int64(d)*count:int64(d+1)*count])
		}
	case core.KindGather:
		// Rank s's send vector lands in block s of the root's recv.
		dst := fill(root)
		for s := 0; s < p; s++ {
			copy(dst[int64(s)*count:], sends[s][:count])
		}
	case core.KindAllgather:
		// Every rank ends with every rank's send vector, in rank order.
		for r := 0; r < p; r++ {
			dst := fill(r)
			for s := 0; s < p; s++ {
				copy(dst[int64(s)*count:], sends[s][:count])
			}
		}
	case core.KindAlltoall:
		// Block r of rank s's send buffer lands in block s of rank r's
		// recv buffer.
		for r := 0; r < p; r++ {
			dst := fill(r)
			for s := 0; s < p; s++ {
				copy(dst[int64(s)*count:], sends[s][int64(r)*count:int64(r+1)*count])
			}
		}
	case core.KindBcast:
		// The root's send vector lands in every non-root's recv; the
		// root's own recv buffer is untouched.
		for r := 0; r < p; r++ {
			if r == root {
				continue
			}
			copy(fill(r), sends[root][:count])
		}
	case core.KindReduce:
		// Byte-wise modular sum of every rank's send vector at the root
		// (the simulated kernel's Combine is a byte add).
		dst := fill(root)
		for s := 0; s < p; s++ {
			for i := int64(0); i < count; i++ {
				dst[i] += sends[s][i]
			}
		}
	default:
		return nil, fmt.Errorf("check: unsupported kind %q", kind)
	}
	return exp, nil
}

// DiffPayload compares a rank's observed receive buffer against the
// reference and returns a description of the first mismatch ("" on
// match). exp == nil (unspecified buffer) always matches.
func DiffPayload(rank int, got, exp []byte) string {
	if exp == nil {
		return ""
	}
	if len(got) != len(exp) {
		return fmt.Sprintf("rank %d: recv length %d, reference %d", rank, len(got), len(exp))
	}
	for i := range got {
		if got[i] != exp[i] {
			return fmt.Sprintf("rank %d offset %d: got %#02x, reference %#02x", rank, i, got[i], exp[i])
		}
	}
	return ""
}
