package check

import (
	"math/rand"
	"strconv"

	"camc/internal/cluster"
	"camc/internal/core"
)

// GenOptions bounds what the generator draws.
type GenOptions struct {
	// Archs are the profile names to draw from (default all three).
	Archs []string
	// Kinds are the collective kinds to draw from (default all six).
	Kinds []core.Kind
	// MaxProcs caps the communicator size (default 12 — large enough
	// for every tree/ring shape, small enough to keep a 200-spec corpus
	// in seconds).
	MaxProcs int
	// Faults enables drawing fault-injection plans.
	Faults bool
	// Kills enables drawing kill plans (implies the recovery harness).
	Kills bool
	// Cluster makes every spec a multi-node one: 2..MaxNodes nodes with
	// 2..5 ranks per node, a random topology and design, and a world
	// root. Cluster specs draw skew, detector deadlines, kernel-level
	// fault classes, and (with Kills) kill plans that route through the
	// world-level recovery harness.
	Cluster bool
	// MaxNodes caps the node count in Cluster mode (default 6).
	MaxNodes int
}

func (o GenOptions) withDefaults() GenOptions {
	if len(o.Archs) == 0 {
		o.Archs = []string{"knl", "broadwell", "power8"}
	}
	if len(o.Kinds) == 0 {
		o.Kinds = core.SpecKinds()
	}
	if o.MaxProcs < 2 {
		o.MaxProcs = 12
	}
	if o.MaxNodes < 2 {
		o.MaxNodes = 6
	}
	return o
}

// genSizes is the size ladder the generator draws from; small sizes
// dominate (they exercise eager/shm paths and run fast), with enough
// kernel-assisted sizes to keep the model-conformance and contention
// machinery honest.
var genSizes = []int64{64, 512, 4096, 16384, 65536, 65536, 262144}

// genClusterSizes is the smaller ladder cluster specs draw from: world
// sizes reach 30 ranks and alltoall buffers scale with world², so the
// materialized-payload oracle stays fast and small.
var genClusterSizes = []int64{64, 512, 2048, 8192, 16384}

// Gen derives the i-th spec of a seeded corpus. It is a pure function
// of (seed, i, o): the same arguments always yield the same spec, so a
// corpus is re-enumerable from its seed alone.
func Gen(seed int64, i int, o GenOptions) Spec {
	o = o.withDefaults()
	rng := rand.New(rand.NewSource(seed*1000003 + int64(i)))
	sp := Spec{
		Arch:  o.Archs[rng.Intn(len(o.Archs))],
		Kind:  o.Kinds[rng.Intn(len(o.Kinds))],
		Count: genSizes[rng.Intn(len(genSizes))],
		Procs: 2 + rng.Intn(o.MaxProcs-1),
		Seed:  rng.Int63n(1 << 31),
	}
	sp.Root = rng.Intn(sp.Procs)
	if o.Cluster {
		sp.Count = genClusterSizes[rng.Intn(len(genClusterSizes))]
		sp.Nodes = 2 + rng.Intn(o.MaxNodes-1)
		sp.Procs = 2 + rng.Intn(4) // PPN 2..5
		sp.Root = rng.Intn(sp.Nodes * sp.Procs)
		names := cluster.TopoNames()
		sp.Topo = names[rng.Intn(len(names))]
		designs := cluster.Designs()
		sp.Design = string(designs[rng.Intn(len(designs))])
	}

	// Draw a family, optionally with an explicit parameter, then clamp
	// it through Replan so the spec is valid for the drawn communicator
	// size (a non-coprime ring stride or an over-wide throttle would be
	// a generator bug, not a finding).
	infos := core.Specs(sp.Kind)
	info := infos[rng.Intn(len(infos))]
	spec := info.Name
	if info.Default > 0 && rng.Intn(2) == 0 {
		spec += ":" + strconv.Itoa(1+rng.Intn(8))
	}
	al, err := core.Replan(sp.Kind, spec, sp.Procs)
	if err != nil {
		panic("check: generator drew an invalid spec " + spec + ": " + err.Error())
	}
	sp.Algo = al.Name

	if o.Cluster {
		if rng.Intn(10) < 3 {
			sp.Skew = float64(1+rng.Intn(40)) / 2 // 0.5 .. 20 us
		}
		switch rng.Intn(10) {
		case 0, 1, 2:
			if o.Kills {
				sp.Faults = "kill=0.4,killop=3,seed=" + strconv.Itoa(1+rng.Intn(1000))
				sp.Deadline = 2000
			}
		case 3:
			if o.Faults {
				sp.Faults = "partial=0.4,eagain=0.5,seed=" + strconv.Itoa(1+rng.Intn(1000))
			}
		case 4:
			sp.Deadline = 5000 // healthy run with the detector armed
		}
		return sp
	}
	if rng.Intn(10) < 3 {
		sp.Skew = float64(1+rng.Intn(40)) / 2 // 0.5 .. 20 us
	}
	if o.Faults {
		switch rng.Intn(10) {
		case 0, 1:
			sp.Faults = []string{"light", "moderate", "heavy"}[rng.Intn(3)] +
				",seed=" + strconv.Itoa(1+rng.Intn(1000))
		case 2:
			sp.Faults = "partial=0.4,eagain=0.5,seed=" + strconv.Itoa(1+rng.Intn(1000))
		case 3:
			if o.Kills {
				sp.Faults = "kill=0.4,killop=3,seed=" + strconv.Itoa(1+rng.Intn(1000))
				sp.Deadline = 2000
			}
		}
	}
	// Co-tenant ambient pressure, drawn LAST: appending to the RNG
	// stream keeps every earlier field of every existing (seed, i) spec
	// byte-identical, so the long-standing seeded corpora (and their CI
	// summary counts) survive the grammar extension.
	if rng.Intn(10) < 2 {
		sp.Ambient = []int{2, 8, 32}[rng.Intn(3)]
	}
	return sp
}

// Shrink greedily minimizes a failing spec: each step proposes a
// strictly simpler candidate (smaller payload, fewer ranks, root 0, no
// skew, no ambient, no faults) and keeps it only if the failure
// reproduces, looping
// to a fixpoint. failing must be a deterministic predicate — RunOne
// wrapped in an error check is the intended one.
func Shrink(sp Spec, failing func(Spec) bool) Spec {
	try := func(cand Spec) bool {
		if cand.Validate() != nil {
			return false
		}
		return failing(cand)
	}
	for changed := true; changed; {
		changed = false
		// Halve the payload.
		for sp.Count > 1 {
			cand := sp
			cand.Count /= 2
			if !try(cand) {
				break
			}
			sp = cand
			changed = true
		}
		// Shrink the communicator, re-clamping the algorithm parameter
		// for the smaller size.
		for sp.Procs > 2 {
			cand := sp
			cand.Procs--
			if cand.Root >= cand.Procs && cand.Nodes == 0 {
				cand.Root = 0
			}
			if cand.Nodes > 0 && cand.Root >= cand.Nodes*cand.Procs {
				cand.Root = 0
			}
			if al, err := core.Replan(cand.Kind, cand.Algo, cand.Procs); err == nil {
				cand.Algo = al.Name
			}
			if !try(cand) {
				break
			}
			sp = cand
			changed = true
		}
		// Shrink the node count of a cluster spec.
		for sp.Nodes > 2 {
			cand := sp
			cand.Nodes--
			if cand.Root >= cand.Nodes*cand.Procs {
				cand.Root = 0
			}
			if !try(cand) {
				break
			}
			sp = cand
			changed = true
		}
		for _, mutate := range []func(*Spec){
			func(c *Spec) { c.Root = 0 },
			func(c *Spec) { c.Skew = 0 },
			func(c *Spec) { c.Ambient = 0 },
			func(c *Spec) { c.Faults = "" },
			func(c *Spec) { c.Faults, c.Deadline = "", 0 },
			func(c *Spec) { c.Seed = 0 },
			// Cluster simplifications: the canonical design and topology
			// first, then the single-node version of the same collective.
			func(c *Spec) {
				if c.Nodes > 0 {
					c.Design = string(cluster.DesignLeader)
				}
			},
			func(c *Spec) {
				if c.Nodes > 0 {
					c.Topo = "fattree"
				}
			},
			func(c *Spec) {
				if c.Nodes > 0 {
					c.Nodes, c.Topo, c.Design = 0, "", ""
					if c.Root >= c.Procs {
						c.Root = 0
					}
				}
			},
		} {
			cand := sp
			mutate(&cand)
			if cand != sp && try(cand) {
				sp = cand
				changed = true
			}
		}
	}
	return sp
}
