package check

import (
	"testing"

	"camc/internal/arch"
)

// TestSparseCrossCheckCorpus replays a slice of the fuzzer's seeded
// corpus (faults on, kills off) through the sparse cross-check: every
// spec must produce bit-identical latencies, event counts and per-rank
// digests between the materialized and checksum-summary arms.
func TestSparseCrossCheckCorpus(t *testing.T) {
	gopts := GenOptions{Faults: true}
	n := 40
	if testing.Short() {
		n = 10
	}
	for i := 0; i < n; i++ {
		sp := Gen(42, i, gopts)
		if _, err := SparseCrossCheck(sp); err != nil {
			t.Fatalf("corpus[%d]: %v", i, err)
		}
	}
}

// TestSparseCrossCheckRejectsKills pins the kill-plan guard: recovery
// runs shrink the communicator, so their layouts are not comparable.
func TestSparseCrossCheckRejectsKills(t *testing.T) {
	sp := Spec{Arch: "knl", Kind: "bcast", Algo: "knomial-read:4", Count: 4096,
		Procs: 6, Seed: 7, Faults: "kill=0.4,killop=3,seed=5", Deadline: 2000}
	if err := sp.Validate(); err != nil {
		t.Fatalf("spec invalid: %v", err)
	}
	if _, err := SparseCrossCheck(sp); err == nil {
		t.Fatal("kill spec accepted by SparseCrossCheck")
	}
}

// TestSparseDigestsDetectChanges guards against a vacuous cross-check:
// the digests must actually depend on the payload seed, the schedule,
// and the payload size — otherwise "equal digests" would prove nothing.
func TestSparseDigestsDetectChanges(t *testing.T) {
	prof, err := arch.ByName("knl")
	if err != nil {
		t.Fatal(err)
	}
	base := Spec{Arch: "knl", Kind: "allgather", Algo: "bruck", Count: 2048, Procs: 6, Seed: 11}
	ref, err := runPayload(base, prof, nil, false, true)
	if err != nil {
		t.Fatalf("base run: %v", err)
	}
	if len(ref.Digests) != base.Procs {
		t.Fatalf("got %d digests, want %d", len(ref.Digests), base.Procs)
	}
	for name, mutate := range map[string]func(*Spec){
		"seed":  func(s *Spec) { s.Seed = 12 },
		"count": func(s *Spec) { s.Count = 4096 },
		"algo":  func(s *Spec) { s.Algo = "ring-source-read" },
	} {
		sp := base
		mutate(&sp)
		if err := sp.Validate(); err != nil {
			t.Fatalf("%s variant invalid: %v", name, err)
		}
		got, err := runPayload(sp, prof, nil, false, true)
		if err != nil {
			t.Fatalf("%s variant: %v", name, err)
		}
		same := len(got.Digests) == len(ref.Digests)
		if same {
			for r := range got.Digests {
				if got.Digests[r] != ref.Digests[r] {
					same = false
					break
				}
			}
		}
		if same {
			t.Errorf("%s variant left every rank digest unchanged", name)
		}
	}
}
