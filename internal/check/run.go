package check

import (
	"fmt"
	"math/rand"
	"strings"

	"camc/internal/arch"
	"camc/internal/cluster"
	"camc/internal/core"
	"camc/internal/fault"
	"camc/internal/kernel"
	"camc/internal/liveness"
	"camc/internal/measure"
	"camc/internal/mpi"
	"camc/internal/trace"
)

// RunResult is everything one checked execution produced: the inputs,
// the virtual latency, the fault accounting, the full trace, and the
// closed-form prediction when one applies. Invariants consume it.
type RunResult struct {
	Spec    Spec
	Latency float64 // us; the first attempt's latency on the recovery path
	Stats   fault.Stats
	Rec     *trace.Recorder
	Procs   int
	Killed  bool    // the plan had the kill class armed
	Pred    float64 // closed-form latency; 0 = no applicable form
	Events  uint64  // simulator events processed by the run

	// Digests is the per-rank payload MemDigest, populated only when the
	// run tracked per-page digests (the sparse cross-check arms).
	Digests []uint64

	// Recovery is set when the kill path ran (see
	// measure.CollectiveRecovered); its payload verification already
	// happened inside the harness.
	Recovery *measure.RecoveryResult

	// Links, NetBeta and NetChunk are set on cluster runs (Spec.Nodes >
	// 0): the fabric's per-link accounting plus the per-byte time and
	// chunk size the link invariants need to bound utilization.
	Links    []cluster.LinkStat
	NetBeta  float64
	NetChunk int64

	// Residue is what a cluster kill run left in the fabric's flow
	// queues after the survivors drained theirs; the shrink-residue
	// invariant requires every entry to be addressed to a failed rank.
	Residue []cluster.Residue

	// Elect is the leader re-election latency of a cluster kill run.
	Elect float64
}

// RunOne executes one spec with real data movement and full tracing,
// compares every receive buffer against the reference executor, and
// evaluates the invariant registry. The returned error is non-nil for
// any differential mismatch or invariant violation (the RunResult is
// still returned for diagnostics); it is nil only for a fully green
// run. RunOne is deterministic: the same Spec produces byte-identical
// results, which is what makes shrunk reproducers trustworthy.
func RunOne(sp Spec) (*RunResult, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	prof, err := arch.ByName(sp.Arch)
	if err != nil {
		return nil, err
	}
	if sp.Nodes > 0 {
		if sp.Kills() {
			return runClusterRecovered(sp, prof, sp.faultConfig())
		}
		return runCluster(sp, prof)
	}
	fcfg := sp.faultConfig()
	if fcfg != nil && fcfg.KillProb > 0 {
		return runRecovered(sp, prof, fcfg)
	}
	return runDifferential(sp, prof, fcfg)
}

// runCluster is the multi-node oracle path: the spec's collective runs
// on a simulated fabric with materialized payload, every world rank's
// receive buffer is compared against the sequential reference executor
// at world size, and the invariant registry — including the
// network-specific invariants — is evaluated over the traced run.
func runCluster(sp Spec, prof *arch.Profile) (*RunResult, error) {
	world := sp.Nodes * sp.Procs
	sendLen, recvLen, err := BufSizes(sp.Kind, world, sp.Count)
	if err != nil {
		return nil, err
	}
	fcfg := sp.faultConfig() // non-kill classes only (kills dispatch earlier)
	var lcfg *liveness.Config
	if sp.Deadline > 0 {
		l := liveness.Defaults()
		l.Deadline = sp.Deadline
		lcfg = &l
	}
	cl := cluster.New(cluster.Config{
		Arch: prof, NumNodes: sp.Nodes, PPN: sp.Procs,
		Topo: sp.Topo, CopyData: true, Fault: fcfg, Liveness: lcfg,
	})
	coll, err := cluster.Lookup(cl, sp.Kind, cluster.Design(sp.Design), sp.Algo)
	if err != nil {
		return nil, err
	}
	rec := trace.NewUnbound()
	cl.AttachTrace(rec)

	rng := rand.New(rand.NewSource(sp.Seed))
	send := make([]kernel.Addr, world)
	recv := make([]kernel.Addr, world)
	seed := make([]byte, sendLen)
	snap := make([][]byte, world)
	for w := 0; w < world; w++ {
		p := cl.WorldRank(w).OS
		send[w] = p.Alloc(sendLen)
		recv[w] = p.Alloc(recvLen)
		rng.Read(seed)
		p.WriteAt(send[w], seed)
		snap[w] = append([]byte(nil), seed...)
		p.FillAt(recv[w], recvLen, 0xEE)
	}
	var skew []float64
	if sp.Skew > 0 {
		skew = make([]float64, world)
		for i := range skew {
			skew[i] = rng.Float64() * sp.Skew
		}
	}

	res := &RunResult{Spec: sp, Rec: rec, Procs: world}
	done, err := cl.Run(func(r *cluster.Rank) {
		if skew != nil {
			r.SP.Sleep(skew[r.World])
		}
		coll.Run(r, cluster.Args{Send: send[r.World], Recv: recv[r.World], Count: sp.Count, Root: sp.Root})
	})
	if err != nil {
		return res, fmt.Errorf("check: %s: simulation failed: %v", sp, err)
	}
	res.Latency = done
	res.Events = cl.Sim.EventsProcessed()
	res.Links = cl.Fabric.LinkStats()
	res.NetBeta = cl.Fabric.Beta
	res.NetChunk = cl.Fabric.ChunkBytes
	for _, comm := range cl.Nodes {
		if plan := comm.FaultPlan(); plan != nil {
			s := plan.Stats()
			res.Stats.Transients += s.Transients
			res.Stats.Partials += s.Partials
			res.Stats.LockSpikes += s.LockSpikes
			res.Stats.ShmStalls += s.ShmStalls
			res.Stats.Retries += s.Retries
			res.Stats.BackoffTime += s.BackoffTime
			res.Stats.Fallbacks += s.Fallbacks
			res.Stats.BounceOps += s.BounceOps
			res.Stats.BounceBytes += s.BounceBytes
		}
	}

	exp, err := Reference(sp.Kind, world, sp.Count, sp.Root, snap)
	if err != nil {
		return res, err
	}
	var diffs []string
	for w := 0; w < world; w++ {
		got := cl.WorldRank(w).OS.Bytes(recv[w], recvLen)
		if d := DiffPayload(w, got, exp[w]); d != "" {
			diffs = append(diffs, d)
		}
	}
	if len(diffs) > 0 {
		return res, fmt.Errorf("check: %s: differential mismatch vs reference executor: %s", sp, strings.Join(diffs, "; "))
	}
	for w := 0; w < world; w++ {
		got := cl.WorldRank(w).OS.Bytes(send[w], sendLen)
		for i := range got {
			if got[i] != snap[w][i] {
				return res, fmt.Errorf("check: %s: rank %d send buffer mutated at offset %d", sp, w, i)
			}
		}
	}
	err = violationsErr(res)
	if err == nil {
		cluster.Release(cl)
	}
	return res, err
}

// runClusterRecovered is the cluster kill path: the spec's plan
// permanently kills ranks mid-collective across the fabric, so the run
// goes through the world-level recovery harness (fabric-crossing
// detection, world agreement, two-tier shrink, leader re-election,
// re-run). The harness verifies the re-run closed-form; this wrapper
// additionally replays the survivors' snapshots through the independent
// sequential reference executor at the survivor world size, then runs
// the invariant registry — including the three recovery invariants —
// over the traced cycle.
func runClusterRecovered(sp Spec, prof *arch.Profile, fcfg *fault.Config) (*RunResult, error) {
	lcfg := liveness.Defaults()
	if sp.Deadline > 0 {
		lcfg.Deadline = sp.Deadline
	}
	cres, rec, err := measure.ClusterRecoveredTraced(prof, sp.Kind, cluster.Design(sp.Design), sp.Algo, sp.Count,
		measure.ClusterOptions{Nodes: sp.Nodes, PPN: sp.Procs, Topo: sp.Topo, Root: sp.Root,
			Fault: fcfg, Liveness: &lcfg, SkewSeed: sp.Seed, MaxSkew: sp.Skew, CopyData: true})
	res := &RunResult{Spec: sp, Rec: rec, Procs: sp.Nodes * sp.Procs, Killed: true,
		Links: cres.Links, NetBeta: cres.NetBeta, NetChunk: cres.NetChunk,
		Residue: cres.Residue, Elect: cres.ElectLatency, Events: cres.Events}
	res.Recovery = &cres.RecoveryResult
	res.Stats = cres.Stats
	if err != nil {
		return res, fmt.Errorf("check: %s: cluster recovery harness: %v", sp, err)
	}
	res.Latency = cres.FirstLatency
	if cres.Err != nil && cres.RecvSnap != nil {
		// Independent oracle: every survivor's re-run receive buffer vs
		// the reference executor at the survivor world size.
		exp, rerr := Reference(sp.Kind, cres.Survivors, sp.Count, cres.NewRoot, cres.SendSnap)
		if rerr != nil {
			return res, rerr
		}
		var diffs []string
		for id := 0; id < cres.Survivors; id++ {
			if d := DiffPayload(id, cres.RecvSnap[id], exp[id]); d != "" {
				diffs = append(diffs, d)
			}
		}
		if len(diffs) > 0 {
			return res, fmt.Errorf("check: %s: re-run differential mismatch vs reference executor: %s", sp, strings.Join(diffs, "; "))
		}
	}
	return res, violationsErr(res)
}

// runDifferential is the oracle path: seeded payloads in, algorithm
// runs traced, receive buffers compared byte-for-byte against
// Reference, then the invariant registry.
func runDifferential(sp Spec, prof *arch.Profile, fcfg *fault.Config) (*RunResult, error) {
	return runPayload(sp, prof, fcfg, true, false)
}

// runPayload is one arm of a payload-carrying execution. materialize
// selects real bytes (CopyData) and with them the byte-level oracle
// comparison against the reference executor; track selects per-page
// digest folding (mpi.Config.Sparse). The two knobs are independent:
// (true, false) is the classic differential path, (true, true) and
// (false, true) are the two arms SparseCrossCheck compares. Seeding
// goes through the kernel's WriteAt/FillAt payload layer — never a raw
// Bytes slice — so both arms fold identical content digests from an
// identical rng stream.
func runPayload(sp Spec, prof *arch.Profile, fcfg *fault.Config, materialize, track bool) (*RunResult, error) {
	algo, err := core.LookupAlgorithm(sp.Kind, sp.Algo)
	if err != nil {
		return nil, err
	}
	p := sp.Procs
	sendLen, recvLen, err := BufSizes(sp.Kind, p, sp.Count)
	if err != nil {
		return nil, err
	}
	mem := (8*int64(p) + 16) * (sp.Count + int64(prof.PageSize))
	if mem < 1<<20 {
		mem = 1 << 20
	}
	c := mpi.New(mpi.Config{Arch: prof, Procs: p, CopyData: materialize, Sparse: track, MemPerProc: mem, Ambient: sp.Ambient, Fault: fcfg})
	rec := trace.NewUnbound()
	c.AttachTrace(rec)
	plan := c.FaultPlan()

	rng := rand.New(rand.NewSource(sp.Seed))
	send := make([]kernel.Addr, p)
	recv := make([]kernel.Addr, p)
	seed := make([]byte, sendLen)
	snap := make([][]byte, p)
	for r := 0; r < p; r++ {
		rank := c.Rank(r)
		send[r] = rank.Alloc(sendLen)
		recv[r] = rank.Alloc(recvLen)
		rng.Read(seed)
		rank.OS.WriteAt(send[r], seed)
		snap[r] = append([]byte(nil), seed...)
		rank.OS.FillAt(recv[r], recvLen, 0xEE)
	}
	var skew []float64
	if sp.Skew > 0 {
		skew = make([]float64, p)
		for i := range skew {
			skew[i] = rng.Float64() * sp.Skew
		}
	}

	starts := make([]float64, p)
	ends := make([]float64, p)
	c.Start(func(r *mpi.Rank) {
		r.Barrier()
		if skew != nil {
			r.SP.Sleep(skew[r.ID])
		}
		starts[r.ID] = r.SP.Now()
		if d := plan.StragglerDelay(r.ID, 0); d > 0 {
			rec.Instant(r.ID, trace.CatFault, "straggle", trace.F("delay", d))
			r.SP.Sleep(d)
		}
		algo.Run(r, core.Args{Send: send[r.ID], Recv: recv[r.ID], Count: sp.Count, Root: sp.Root})
		ends[r.ID] = r.SP.Now()
		r.Barrier()
	})
	res := &RunResult{Spec: sp, Rec: rec, Procs: p}
	if err := c.Sim.Run(); err != nil {
		return res, fmt.Errorf("check: %s: simulation failed: %v", sp, err)
	}
	res.Latency = maxOf(ends) - maxOf(starts)
	res.Stats = plan.Stats()
	res.Events = c.Sim.EventsProcessed()
	if track {
		res.Digests = make([]uint64, p)
		for r := range res.Digests {
			res.Digests[r] = c.Rank(r).OS.MemDigest()
		}
	}

	if materialize {
		// Differential comparison against the reference executor.
		exp, err := Reference(sp.Kind, p, sp.Count, sp.Root, snap)
		if err != nil {
			return res, err
		}
		var diffs []string
		for r := 0; r < p; r++ {
			got := c.Rank(r).OS.Bytes(recv[r], recvLen)
			if d := DiffPayload(r, got, exp[r]); d != "" {
				diffs = append(diffs, d)
			}
		}
		if len(diffs) > 0 {
			return res, fmt.Errorf("check: %s: differential mismatch vs reference executor: %s", sp, strings.Join(diffs, "; "))
		}

		// Sends must be untouched: the collective owns only Recv.
		for r := 0; r < p; r++ {
			got := c.Rank(r).OS.Bytes(send[r], sendLen)
			for i := range got {
				if got[i] != snap[r][i] {
					return res, fmt.Errorf("check: %s: rank %d send buffer mutated at offset %d", sp, r, i)
				}
			}
		}
	}

	// The closed forms model a dedicated machine; ambient pressure bends
	// γ(c) away from them, so no prediction is attached on ambient specs.
	if fcfg == nil && sp.Skew == 0 && sp.Ambient == 0 {
		if pred, ok := predictFor(prof, p, sp.Kind, sp.Algo, sp.Count); ok {
			res.Pred = pred
		}
	}
	return res, violationsErr(res)
}

// runRecovered is the kill path: the spec's plan permanently kills
// ranks mid-operation, so the run goes through the full recovery
// harness (detect, agree, shrink, replan, verified re-run — the payload
// check happens inside measure.CollectiveRecoveredTraced against a
// fresh pattern on the survivor communicator). The trace and fault
// invariants then run over the whole recovery cycle.
func runRecovered(sp Spec, prof *arch.Profile, fcfg *fault.Config) (*RunResult, error) {
	lcfg := liveness.Defaults()
	if sp.Deadline > 0 {
		lcfg.Deadline = sp.Deadline
	}
	rres, rec, err := measure.CollectiveRecoveredTraced(prof, sp.Kind, sp.Algo, sp.Count,
		measure.Options{Procs: sp.Procs, Root: sp.Root, Ambient: sp.Ambient, Fault: fcfg, Liveness: &lcfg,
			SkewSeed: sp.Seed, MaxSkew: sp.Skew})
	res := &RunResult{Spec: sp, Rec: rec, Procs: sp.Procs, Killed: true}
	if err != nil {
		return res, fmt.Errorf("check: %s: recovery harness: %v", sp, err)
	}
	res.Latency = rres.FirstLatency
	res.Stats = rres.Stats
	res.Recovery = &rres
	return res, violationsErr(res)
}

// violationsErr folds the invariant registry's findings into one error.
func violationsErr(res *RunResult) error {
	vs := CheckInvariants(res)
	if len(vs) == 0 {
		return nil
	}
	msgs := make([]string, len(vs))
	for i, v := range vs {
		msgs[i] = v.Error()
	}
	return fmt.Errorf("check: %s: %d invariant violation(s): %s", res.Spec, len(vs), strings.Join(msgs, "; "))
}

func maxOf(v []float64) float64 {
	var m float64
	for _, x := range v {
		if x > m {
			m = x
		}
	}
	return m
}
