package check

import (
	"strconv"
	"strings"
	"sync"

	"camc/internal/arch"
	"camc/internal/core"
	"camc/internal/model"
)

// predictors caches one fitted Predictor per (arch, procs): Estimate
// and MeasureSm run small calibration simulations, which would dominate
// the fuzzer's runtime if repeated per spec.
var (
	predMu     sync.Mutex
	predictors = map[string]*model.Predictor{}
)

func predictorFor(a *arch.Profile, procs int) *model.Predictor {
	key := a.Name + "/" + strconv.Itoa(procs)
	predMu.Lock()
	defer predMu.Unlock()
	if pr, ok := predictors[key]; ok {
		return pr
	}
	pr := model.NewPredictor(model.Estimate(a), procs)
	predictors[key] = pr
	return pr
}

// predictMinCount is the smallest per-rank size the closed forms are
// held to: the models target the kernel-assisted regime, and below a
// few pages the constant terms the forms fold away dominate.
const predictMinCount = 16 << 10

// predictFor evaluates the closed-form latency for an algorithm spec,
// returning ok=false when no form applies (tuned and pt2pt/shm baseline
// families have none, and recursive doubling's form assumes a power-of-
// two communicator).
func predictFor(a *arch.Profile, procs int, kind core.Kind, spec string, count int64) (float64, bool) {
	if count < predictMinCount {
		return 0, false
	}
	name, param := spec, 0
	if i := strings.IndexByte(spec, ':'); i >= 0 {
		name = spec[:i]
		v, err := strconv.Atoi(spec[i+1:])
		if err != nil {
			return 0, false
		}
		param = v
	}
	k := func(def int) int {
		if param == 0 {
			return def
		}
		return param
	}
	pr := func() *model.Predictor { return predictorFor(a, procs) }
	switch kind {
	case core.KindScatter:
		switch name {
		case "parallel-read":
			return pr().ScatterParallelRead(count), true
		case "sequential-write":
			return pr().ScatterSeqWrite(count), true
		case "throttled", "throttle":
			return pr().ScatterThrottled(count, k(4)), true
		}
	case core.KindGather:
		switch name {
		case "parallel-write":
			return pr().GatherParallelWrite(count), true
		case "sequential-read":
			return pr().GatherSeqRead(count), true
		case "throttled", "throttle":
			return pr().GatherThrottled(count, k(4)), true
		}
	case core.KindAlltoall:
		if name == "pairwise-cma-coll" || name == "pairwise" {
			return pr().AlltoallPairwise(count), true
		}
	case core.KindAllgather:
		switch name {
		case "ring-source-read", "ring-source-write":
			return pr().AllgatherRing(count), true
		case "recursive-doubling":
			if procs&(procs-1) == 0 {
				return pr().AllgatherRecursiveDoubling(count), true
			}
		case "bruck":
			return pr().AllgatherBruck(count), true
		}
	case core.KindBcast:
		switch name {
		case "direct-read":
			return pr().BcastDirectRead(count), true
		case "direct-write":
			return pr().BcastDirectWrite(count), true
		case "knomial-read", "knomial-write":
			return pr().BcastKnomial(count, k(4)), true
		case "scatter-allgather":
			return pr().BcastScatterAllgather(count), true
		}
	case core.KindReduce:
		switch name {
		case "flat-sequential":
			return pr().ReduceFlat(count), true
		case "parallel-write":
			return pr().ReduceParallelWrite(count), true
		case "knomial":
			return pr().ReduceKnomial(count, k(2)), true
		}
	}
	return 0, false
}
