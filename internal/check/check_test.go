package check

import (
	"strings"
	"testing"

	"camc/internal/core"
	"camc/internal/fault"
	"camc/internal/trace"
)

func TestBufSizes(t *testing.T) {
	cases := []struct {
		kind       core.Kind
		send, recv int64
	}{
		{core.KindScatter, 40, 10},
		{core.KindGather, 10, 40},
		{core.KindAlltoall, 40, 40},
		{core.KindAllgather, 40, 40},
		{core.KindBcast, 10, 10},
		{core.KindReduce, 10, 10},
	}
	for _, c := range cases {
		s, r, err := BufSizes(c.kind, 4, 10)
		if err != nil {
			t.Fatalf("%s: %v", c.kind, err)
		}
		if s != c.send || r != c.recv {
			t.Errorf("%s: got send %d recv %d, want %d/%d", c.kind, s, r, c.send, c.recv)
		}
	}
	if _, _, err := BufSizes(core.Kind("allreduce"), 4, 10); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestReferenceScatter(t *testing.T) {
	sends := [][]byte{make([]byte, 6), {1, 2, 3, 4, 5, 6}, make([]byte, 6)}
	exp, err := Reference(core.KindScatter, 3, 2, 1, sends)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]byte{{1, 2}, {3, 4}, {5, 6}}
	for r := range want {
		if DiffPayload(r, exp[r], want[r]) != "" {
			t.Errorf("rank %d: got %v, want %v", r, exp[r], want[r])
		}
	}
}

func TestReferenceGather(t *testing.T) {
	sends := [][]byte{{10, 11}, {20, 21}, {30, 31}}
	exp, err := Reference(core.KindGather, 3, 2, 1, sends)
	if err != nil {
		t.Fatal(err)
	}
	if exp[0] != nil || exp[2] != nil {
		t.Error("non-root gather buffers must be unspecified")
	}
	want := []byte{10, 11, 20, 21, 30, 31}
	if DiffPayload(1, exp[1], want) != "" {
		t.Errorf("root: got %v, want %v", exp[1], want)
	}
}

func TestReferenceAlltoall(t *testing.T) {
	sends := [][]byte{{1, 2, 3, 4}, {5, 6, 7, 8}}
	exp, err := Reference(core.KindAlltoall, 2, 2, 0, sends)
	if err != nil {
		t.Fatal(err)
	}
	// exp[r][s*c+i] = sends[s][r*c+i]
	want := [][]byte{{1, 2, 5, 6}, {3, 4, 7, 8}}
	for r := range want {
		if DiffPayload(r, exp[r], want[r]) != "" {
			t.Errorf("rank %d: got %v, want %v", r, exp[r], want[r])
		}
	}
}

func TestReferenceAllgather(t *testing.T) {
	// Allgather buffers are p*count long; each rank's contribution is
	// its leading count bytes (the rest is working space).
	sends := [][]byte{{1, 2, 0, 0, 0, 0}, {3, 4, 0, 0, 0, 0}, {5, 6, 0, 0, 0, 0}}
	exp, err := Reference(core.KindAllgather, 3, 2, 0, sends)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{1, 2, 3, 4, 5, 6}
	for r := 0; r < 3; r++ {
		if DiffPayload(r, exp[r], want) != "" {
			t.Errorf("rank %d: got %v, want %v", r, exp[r], want)
		}
	}
}

func TestReferenceBcast(t *testing.T) {
	sends := [][]byte{{0, 0}, {0, 0}, {9, 8}}
	exp, err := Reference(core.KindBcast, 3, 2, 2, sends)
	if err != nil {
		t.Fatal(err)
	}
	if exp[2] != nil {
		t.Error("bcast root's receive buffer must be unspecified")
	}
	for r := 0; r < 2; r++ {
		if DiffPayload(r, exp[r], []byte{9, 8}) != "" {
			t.Errorf("rank %d: got %v", r, exp[r])
		}
	}
}

func TestReferenceReduce(t *testing.T) {
	// Byte-wise modular sum, matching kernel.Process.Combine.
	sends := [][]byte{{200, 1}, {100, 2}, {7, 3}}
	exp, err := Reference(core.KindReduce, 3, 2, 0, sends)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{byte((200 + 100 + 7) % 256), 6} // wraps to 51
	if DiffPayload(0, exp[0], want) != "" {
		t.Errorf("root: got %v, want %v", exp[0], want)
	}
	if exp[1] != nil || exp[2] != nil {
		t.Error("non-root reduce buffers must be unspecified")
	}
}

func TestReferenceRejectsBadSnapshots(t *testing.T) {
	if _, err := Reference(core.KindScatter, 3, 2, 0, [][]byte{{1, 2}, nil, nil}); err == nil {
		t.Error("short root snapshot accepted")
	}
	if _, err := Reference(core.KindScatter, 3, 2, 0, [][]byte{nil, nil, nil}); err == nil {
		t.Error("missing root snapshot accepted")
	}
	if _, err := Reference(core.KindAlltoall, 2, 2, 0, [][]byte{{1, 2, 3, 4}}); err == nil {
		t.Error("wrong snapshot count accepted")
	}
}

func TestDiffPayload(t *testing.T) {
	if d := DiffPayload(0, []byte{1, 2}, []byte{1, 2}); d != "" {
		t.Errorf("equal buffers diff: %q", d)
	}
	if d := DiffPayload(0, []byte{1, 2}, nil); d != "" {
		t.Errorf("unspecified expectation diff: %q", d)
	}
	if d := DiffPayload(3, []byte{1, 9, 3}, []byte{1, 2, 3}); !strings.Contains(d, "rank 3") {
		t.Errorf("mismatch not attributed: %q", d)
	}
	if d := DiffPayload(0, []byte{1}, []byte{1, 2}); d == "" {
		t.Error("length mismatch not reported")
	}
}

func TestSpecStringParseRoundTrip(t *testing.T) {
	specs := []Spec{
		{Arch: "knl", Kind: core.KindScatter, Algo: "throttled:4", Count: 65536, Procs: 8, Root: 3, Seed: 17},
		{Arch: "power8", Kind: core.KindReduce, Algo: "knomial:2", Count: 512, Procs: 5, Seed: 1, Skew: 2.5},
		{Arch: "knl", Kind: core.KindGather, Algo: "throttled:4", Count: 32768, Procs: 8, Seed: 7, Ambient: 32},
		{Arch: "broadwell", Kind: core.KindBcast, Algo: "direct-read", Count: 64, Procs: 6, Root: 1, Seed: 0,
			Faults: "kill=0.4,killop=3,seed=620", Deadline: 2000},
	}
	for _, sp := range specs {
		got, err := ParseSpec(sp.String())
		if err != nil {
			t.Fatalf("%s: %v", sp, err)
		}
		if got != sp {
			t.Errorf("round trip: got %s, want %s", got, sp)
		}
	}
}

func TestParseSpecErrors(t *testing.T) {
	base := "arch=knl kind=scatter algo=parallel-read size=64 procs=4 root=0 seed=1"
	bad := []string{
		"",
		base + " size=128",      // duplicate key
		base + " color=blue",    // unknown key
		"arch=knl kind=scatter", // missing fields
		strings.Replace(base, "arch=knl", "arch=epyc", 1),
		strings.Replace(base, "size=64", "size=0", 1),
		strings.Replace(base, "procs=4", "procs=1", 1),
		strings.Replace(base, "root=0", "root=4", 1),
		strings.Replace(base, "algo=parallel-read", "algo=nope", 1),
		strings.Replace(base, "algo=parallel-read", "algo=parallel-read:3", 1), // takes no parameter
		base + " faults=bogus=1",
		base + " skew=-1",
		base + " ambient=-3",
		base + " ambient=two",
		"arch=knl kind=bcast algo=binomial size=64 procs=2 root=0 seed=1 ambient=8 nodes=2", // ambient is single-node machinery
	}
	for _, line := range bad {
		if _, err := ParseSpec(line); err == nil {
			t.Errorf("accepted %q", line)
		}
	}
}

func TestParseSizeSuffixes(t *testing.T) {
	for line, want := range map[string]int64{
		"arch=knl kind=bcast algo=direct-read size=64K procs=4 root=0 seed=1": 64 << 10,
		"arch=knl kind=bcast algo=direct-read size=2M procs=4 root=0 seed=1":  2 << 20,
	} {
		sp, err := ParseSpec(line)
		if err != nil {
			t.Fatal(err)
		}
		if sp.Count != want {
			t.Errorf("%q: size %d, want %d", line, sp.Count, want)
		}
	}
}

// fakeClock drives a recorder for hand-built violation traces.
type fakeClock struct{ t float64 }

func (c *fakeClock) Now() float64 { return c.t }

// seededResult builds a RunResult around a scripted recorder.
func seededResult(procs int, build func(clk *fakeClock, rec *trace.Recorder)) *RunResult {
	clk := &fakeClock{}
	rec := trace.New(clk)
	for i := 0; i < procs; i++ {
		rec.RegisterLane(i, "rank", 100+i)
	}
	build(clk, rec)
	return &RunResult{
		Spec: Spec{Arch: "knl", Kind: core.KindScatter, Algo: "parallel-read", Count: 64, Procs: procs, Seed: 1},
		Rec:  rec, Procs: procs,
	}
}

// violationsOf runs the registry and returns the names that fired.
func violationsOf(r *RunResult) map[string]int {
	out := map[string]int{}
	for _, v := range CheckInvariants(r) {
		out[v.Invariant]++
	}
	return out
}

func TestInvariantClockMonotone(t *testing.T) {
	r := seededResult(2, func(clk *fakeClock, rec *trace.Recorder) {
		clk.t = 5
		rec.Instant(0, trace.CatColl, "step")
		clk.t = 3
		rec.Instant(1, trace.CatColl, "step")
	})
	if v := violationsOf(r); v["clock-monotone"] == 0 {
		t.Errorf("backwards clock not caught: %v", v)
	}
}

func TestInvariantEdgeOrdering(t *testing.T) {
	r := seededResult(2, func(clk *fakeClock, rec *trace.Recorder) {
		clk.t = 10
		// SendTs after ReadyTs: impossible hand-off.
		rec.Edge(0, 1, trace.CatShm, "eager", 9, 7, 6, 10)
	})
	if v := violationsOf(r); v["clock-monotone"] == 0 {
		t.Errorf("edge SendTs > ReadyTs not caught: %v", v)
	}
}

func TestInvariantSpanNesting(t *testing.T) {
	overlap := seededResult(1, func(clk *fakeClock, rec *trace.Recorder) {
		a := rec.Begin(0, trace.CatColl, "outer")
		clk.t = 5
		rec.Begin(0, trace.CatCMA, "inner")
		clk.t = 10
		rec.End(a)
		// inner left open: reuse its id via a second Begin is not possible,
		// so close it late through a fresh span end — instead just leave it
		// open; openness is the violation on a non-kill run.
	})
	if v := violationsOf(overlap); v["span-nesting"] == 0 {
		t.Errorf("open span not caught: %v", v)
	}

	killed := seededResult(1, func(clk *fakeClock, rec *trace.Recorder) {
		rec.Begin(0, trace.CatColl, "outer") // dies holding the span
	})
	killed.Killed = true
	if v := violationsOf(killed); v["span-nesting"] != 0 {
		t.Errorf("kill-run open span flagged: %v", v)
	}

	crossing := seededResult(1, func(clk *fakeClock, rec *trace.Recorder) {
		a := rec.Begin(0, trace.CatColl, "outer")
		clk.t = 5
		b := rec.Begin(0, trace.CatCMA, "inner")
		clk.t = 10
		rec.End(a)
		clk.t = 15
		rec.End(b) // closes after its enclosing span
	})
	if v := violationsOf(crossing); v["span-nesting"] == 0 {
		t.Errorf("crossing spans not caught: %v", v)
	}
}

func TestInvariantLockBalance(t *testing.T) {
	holder := trace.F("holder", 1)
	over := seededResult(2, func(clk *fakeClock, rec *trace.Recorder) {
		rec.Instant(0, trace.CatLock, "mm_lock_release", holder)
	})
	if v := violationsOf(over); v["lock-balance"] == 0 {
		t.Errorf("over-release not caught: %v", v)
	}

	leak := seededResult(2, func(clk *fakeClock, rec *trace.Recorder) {
		rec.Instant(0, trace.CatLock, "mm_lock_acquire", holder, trace.F("c", 1))
	})
	if v := violationsOf(leak); v["lock-balance"] == 0 {
		t.Errorf("leaked acquire not caught: %v", v)
	}
	leak.Killed = true
	if v := violationsOf(leak); v["lock-balance"] != 0 {
		t.Errorf("kill-run held lock flagged: %v", v)
	}

	reacquire := seededResult(2, func(clk *fakeClock, rec *trace.Recorder) {
		rec.Instant(0, trace.CatLock, "mm_lock_acquire", holder, trace.F("c", 1))
		rec.Instant(0, trace.CatLock, "mm_lock_acquire", holder, trace.F("c", 1))
	})
	if v := violationsOf(reacquire); v["lock-balance"] == 0 {
		t.Errorf("double acquire not caught: %v", v)
	}
}

func TestInvariantGammaSanity(t *testing.T) {
	r := seededResult(2, func(clk *fakeClock, rec *trace.Recorder) {
		rec.Instant(0, trace.CatCMA, "gamma", trace.F("gamma", 0.5), trace.F("c", 1))
		rec.Instant(0, trace.CatCMA, "gamma", trace.F("gamma", 1.5), trace.F("c", 7))
		rec.Counter(0, trace.CatLock, trace.CounterInFlight, 2) // first sample must be 1
		rec.Counter(0, trace.CatLock, trace.CounterInFlight, 0)
		rec.Counter(1, trace.CatLock, trace.CounterInFlight, 1)
		rec.Counter(1, trace.CatLock, trace.CounterInFlight, 3) // step +2
	})
	// gamma<1; c=7>procs; lane-0 first sample 2; lane-0 step -2;
	// lane-1 value 3>procs; lane-1 step +2.
	v := violationsOf(r)
	if v["gamma-sanity"] != 6 {
		t.Errorf("want 6 gamma-sanity violations, got %v", v)
	}
}

func TestInvariantFaultConservation(t *testing.T) {
	r := seededResult(2, func(clk *fakeClock, rec *trace.Recorder) {})
	r.Stats = fault.Stats{Transients: 3, Retries: 1, Fallbacks: 1, BackoffTime: 0.5}
	if v := violationsOf(r); v["fault-conservation"] == 0 {
		t.Errorf("leaked transient not caught: %v", v)
	}
	r.Stats = fault.Stats{Transients: 2, Retries: 2, BackoffTime: 0} // retries need backoff
	if v := violationsOf(r); v["fault-conservation"] == 0 {
		t.Errorf("zero-backoff retries not caught: %v", v)
	}
	r.Stats = fault.Stats{Kills: 1}
	if v := violationsOf(r); v["fault-conservation"] == 0 {
		t.Errorf("kill without kill class not caught: %v", v)
	}
	r.Killed = true
	if v := violationsOf(r); v["fault-conservation"] != 0 {
		t.Errorf("legitimate kill flagged: %v", v)
	}
}

func TestInvariantModelConformance(t *testing.T) {
	r := seededResult(2, func(clk *fakeClock, rec *trace.Recorder) {})
	r.Pred, r.Latency = 10, 100
	if v := violationsOf(r); v["model-conformance"] == 0 {
		t.Errorf("10x over the closed form not caught: %v", v)
	}
	r.Latency = 20
	if v := violationsOf(r); v["model-conformance"] != 0 {
		t.Errorf("2x flagged inside the envelope: %v", v)
	}
	r.Pred = 0 // no applicable form
	r.Latency = 1e9
	if v := violationsOf(r); v["model-conformance"] != 0 {
		t.Errorf("formless run flagged: %v", v)
	}
}

// TestRunOneGreenMatrix runs one fast spec per collective kind through
// the full differential + invariant harness, plus one faulty run and
// one kill-recovery run.
func TestRunOneGreenMatrix(t *testing.T) {
	specs := []string{
		"arch=knl kind=scatter algo=throttled:2 size=4096 procs=5 root=2 seed=11",
		"arch=knl kind=gather algo=parallel-write size=4096 procs=5 root=1 seed=12",
		"arch=broadwell kind=alltoall algo=pairwise size=2048 procs=4 root=0 seed=13",
		"arch=broadwell kind=allgather algo=ring-neighbor:3 size=2048 procs=7 root=0 seed=14",
		"arch=power8 kind=bcast algo=knomial-read:3 size=4096 procs=6 root=5 seed=15",
		"arch=power8 kind=reduce algo=knomial:2 size=2048 procs=5 root=3 seed=16",
		"arch=knl kind=scatter algo=parallel-read size=2048 procs=4 root=0 seed=17 skew=4 faults=moderate,seed=9",
		"arch=knl kind=gather algo=sequential-read size=1024 procs=4 root=0 seed=18 faults=kill=0.5,killop=2,seed=33 deadline=2000",
		"arch=knl kind=scatter algo=throttled:2 size=65536 procs=5 root=0 seed=19 ambient=32",
		"arch=power8 kind=bcast algo=knomial-read:3 size=65536 procs=6 root=0 seed=20 ambient=8 skew=2",
	}
	for _, line := range specs {
		sp, err := ParseSpec(line)
		if err != nil {
			t.Fatalf("%q: %v", line, err)
		}
		if _, err := RunOne(sp); err != nil {
			t.Errorf("%v", err)
		}
	}
}

// TestRunOneCatchesWrongRoot seeds a deliberate mismatch: running
// bcast's reference against a different root's payload must fail the
// differential check — proof the oracle actually bites.
func TestRunOneCatchesWrongRoot(t *testing.T) {
	sends := [][]byte{{1, 2}, {3, 4}, {5, 6}}
	exp, err := Reference(core.KindBcast, 3, 2, 0, sends)
	if err != nil {
		t.Fatal(err)
	}
	if d := DiffPayload(1, []byte{3, 4}, exp[1]); d == "" {
		t.Error("wrong-root payload passed the oracle")
	}
}

// TestRunOneAmbientSlowsAndDropsPrediction: an ambient spec must stay
// oracle-green (payloads are exact under any contention), run slower
// than its dedicated-machine twin, and carry no closed-form prediction
// (the forms model an idle machine).
func TestRunOneAmbientSlowsAndDropsPrediction(t *testing.T) {
	base, err := ParseSpec("arch=knl kind=scatter algo=throttled:4 size=65536 procs=8 root=0 seed=3")
	if err != nil {
		t.Fatal(err)
	}
	quiet, err := RunOne(base)
	if err != nil {
		t.Fatal(err)
	}
	busy := base
	busy.Ambient = 32
	res, err := RunOne(busy)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pred != 0 {
		t.Errorf("ambient run carries closed-form prediction %v, want none", res.Pred)
	}
	if quiet.Pred == 0 {
		t.Error("dedicated-machine twin lost its prediction")
	}
	if res.Latency <= quiet.Latency {
		t.Errorf("ambient 32 latency %v not above dedicated %v", res.Latency, quiet.Latency)
	}
}

// TestGenDrawsAmbient: the generator produces ambient specs on the
// single-node path only, and every draw stays valid.
func TestGenDrawsAmbient(t *testing.T) {
	n := 0
	for i := 0; i < 200; i++ {
		sp := Gen(11, i, GenOptions{Faults: true})
		if err := sp.Validate(); err != nil {
			t.Fatalf("index %d: %s: %v", i, sp, err)
		}
		if sp.Ambient > 0 {
			n++
		}
	}
	if n == 0 {
		t.Fatal("no ambient spec in 200 draws")
	}
	for i := 0; i < 50; i++ {
		if sp := Gen(11, i, GenOptions{Cluster: true}); sp.Ambient != 0 {
			t.Fatalf("cluster spec drew ambient: %s", sp)
		}
	}
}

func TestShrinkDropsAmbient(t *testing.T) {
	start := Spec{Arch: "knl", Kind: core.KindScatter, Algo: "throttled:4", Count: 4096,
		Procs: 8, Seed: 5, Ambient: 32}
	if err := start.Validate(); err != nil {
		t.Fatal(err)
	}
	min := Shrink(start, func(sp Spec) bool { return sp.Kind == core.KindScatter })
	if min.Ambient != 0 {
		t.Errorf("shrinker kept ambient: %s", min)
	}
}

func TestGenDeterministicAndValid(t *testing.T) {
	for i := 0; i < 200; i++ {
		a := Gen(7, i, GenOptions{Faults: true, Kills: true})
		b := Gen(7, i, GenOptions{Faults: true, Kills: true})
		if a != b {
			t.Fatalf("index %d: %s != %s", i, a, b)
		}
		if err := a.Validate(); err != nil {
			t.Fatalf("index %d: generated invalid spec %s: %v", i, a, err)
		}
	}
	// A different seed must move the corpus.
	same := 0
	for i := 0; i < 50; i++ {
		if Gen(1, i, GenOptions{}) == Gen(2, i, GenOptions{}) {
			same++
		}
	}
	if same == 50 {
		t.Error("seed does not affect the corpus")
	}
}

func TestShrinkMinimizes(t *testing.T) {
	start := Spec{Arch: "knl", Kind: core.KindScatter, Algo: "throttled:4", Count: 4096,
		Procs: 9, Root: 5, Seed: 77, Skew: 3, Faults: "light,seed=2"}
	if err := start.Validate(); err != nil {
		t.Fatal(err)
	}
	// Artificial failure: anything with Count >= 8 and Procs >= 3 fails.
	min := Shrink(start, func(sp Spec) bool { return sp.Count >= 8 && sp.Procs >= 3 })
	if min.Count != 8 || min.Procs != 3 {
		t.Errorf("not minimal: %s", min)
	}
	if min.Root != 0 || min.Skew != 0 || min.Faults != "" || min.Seed != 0 {
		t.Errorf("irrelevant dimensions kept: %s", min)
	}
	if err := min.Validate(); err != nil {
		t.Errorf("shrunk spec invalid: %v", err)
	}
}

// FuzzParseSpec: any line the parser accepts must round-trip through
// String and describe a runnable spec.
func FuzzParseSpec(f *testing.F) {
	f.Add("arch=knl kind=scatter algo=throttled:4 size=65536 procs=8 root=3 seed=17")
	f.Add("arch=power8 kind=reduce algo=knomial:2 size=64 procs=3 root=0 seed=0 skew=1.5 faults=light deadline=500")
	f.Add("arch=broadwell kind=alltoall algo=pairwise size=4K procs=4 root=0 seed=9")
	f.Fuzz(func(t *testing.T, line string) {
		sp, err := ParseSpec(line)
		if err != nil {
			return
		}
		back, err := ParseSpec(sp.String())
		if err != nil {
			t.Fatalf("String() of accepted spec rejected: %q -> %q: %v", line, sp.String(), err)
		}
		if back != sp {
			t.Fatalf("round trip drift: %s != %s", back, sp)
		}
	})
}

// FuzzDifferential: every generated spec must run green. This is the
// native-toolchain twin of cmd/camc-fuzz, so `go test -fuzz` can drive
// the same generator indefinitely.
func FuzzDifferential(f *testing.F) {
	for i := 0; i < 8; i++ {
		f.Add(int64(1), i)
	}
	f.Fuzz(func(t *testing.T, seed int64, i int) {
		sp := Gen(seed, i&0xffff, GenOptions{Faults: true, Kills: true})
		// Bound fuzz iterations to the fast sizes; the seeded corpus and
		// cmd/camc-fuzz cover the large ones.
		if sp.Count > 65536 {
			sp.Count = 65536
		}
		if _, err := RunOne(sp); err != nil {
			t.Fatal(err)
		}
	})
}

func TestClusterSpecRoundTrip(t *testing.T) {
	specs := []Spec{
		{Arch: "knl", Kind: core.KindGather, Algo: "throttled:4", Count: 4096, Procs: 4, Root: 9,
			Seed: 3, Nodes: 3, Topo: "fattree", Design: "leader"},
		{Arch: "broadwell", Kind: core.KindAlltoall, Algo: "pairwise", Count: 512, Procs: 2, Root: 0,
			Seed: 0, Nodes: 5, Topo: "dragonfly", Design: "shared"},
		{Arch: "power8", Kind: core.KindBcast, Algo: "direct-read", Count: 64, Procs: 3, Root: 5,
			Seed: 1, Nodes: 2, Topo: "dragonfly", Design: "flat"},
		// skew=, deadline= and kernel-level fault plans (including kill
		// plans) are supported on cluster specs and must round-trip.
		{Arch: "knl", Kind: core.KindGather, Algo: "throttled:2", Count: 2048, Procs: 3, Root: 4,
			Seed: 7, Skew: 9.5, Nodes: 3, Topo: "fattree", Design: "leader"},
		{Arch: "broadwell", Kind: core.KindReduce, Algo: "tuned", Count: 512, Procs: 2, Root: 0,
			Seed: 5, Faults: "kill=0.4,killop=3,seed=11", Deadline: 2000, Nodes: 4, Topo: "dragonfly", Design: "flat"},
		{Arch: "power8", Kind: core.KindAllgather, Algo: "ring-pt2pt", Count: 64, Procs: 2, Root: 0,
			Seed: 2, Faults: "light", Deadline: 5000, Nodes: 2, Topo: "fattree", Design: "shared"},
	}
	for _, sp := range specs {
		got, err := ParseSpec(sp.String())
		if err != nil {
			t.Fatalf("%s: %v", sp, err)
		}
		if got != sp {
			t.Errorf("round trip: got %s, want %s", got, sp)
		}
	}
	// Omitted topo/design default at parse time.
	sp, err := ParseSpec("arch=knl kind=bcast algo=direct-read size=64 procs=2 root=0 seed=1 nodes=2")
	if err != nil {
		t.Fatal(err)
	}
	if sp.Topo != "fattree" || sp.Design != "leader" {
		t.Errorf("defaults not applied: topo=%q design=%q", sp.Topo, sp.Design)
	}
}

func TestClusterSpecErrors(t *testing.T) {
	base := "arch=knl kind=gather algo=parallel-write size=64 procs=2 root=0 seed=1"
	bad := []string{
		base + " nodes=1",                                         // needs >= 2 nodes
		base + " nodes=2 topo=torus",                              // unknown topology
		base + " nodes=2 design=ring",                             // unknown design
		base + " nodes=2 root=4",                                  // duplicate root key
		base + " topo=fattree",                                    // topo without nodes
		base + " design=leader",                                   // design without nodes
		base + " nodes=2 faults=straggler=0.5",                    // stragglers stay single-node
		base + " nodes=2 faults=moderate",                         // preset with a straggler class
		strings.Replace(base, "root=0", "root=4", 1) + " nodes=2", // world root out of range
	}
	for _, line := range bad {
		if _, err := ParseSpec(line); err == nil {
			t.Errorf("accepted %q", line)
		}
	}
	// The straggler rejection must name the offending key, not hide
	// behind a blanket "no faults on clusters" message.
	_, err := ParseSpec(base + " nodes=2 faults=straggler=0.5")
	if err == nil || !strings.Contains(err.Error(), "straggler=") {
		t.Errorf("straggler rejection does not name the key: %v", err)
	}
}

// TestRunOneClusterGreen: the multi-node oracle path end to end — every
// design on a non-power-of-two world with a non-zero world root, both
// topologies, byte-checked against the reference executor with the
// full invariant registry (including the network invariants).
func TestRunOneClusterGreen(t *testing.T) {
	specs := []string{
		"arch=knl kind=gather algo=throttled:2 size=2048 procs=3 root=4 seed=11 nodes=3 topo=fattree design=leader",
		"arch=knl kind=bcast algo=direct-read size=2048 procs=2 root=1 seed=12 nodes=4 topo=dragonfly design=flat",
		"arch=broadwell kind=alltoall algo=pairwise size=512 procs=2 root=0 seed=13 nodes=3 topo=fattree design=shared",
		"arch=broadwell kind=allgather algo=ring-neighbor:2 size=512 procs=3 root=0 seed=14 nodes=2 topo=dragonfly design=leader",
		"arch=power8 kind=reduce algo=knomial:2 size=1024 procs=3 root=7 seed=15 nodes=3 topo=fattree design=shared",
		"arch=power8 kind=scatter algo=parallel-read size=1024 procs=2 root=3 seed=16 nodes=5 topo=dragonfly design=leader",
	}
	for _, line := range specs {
		sp, err := ParseSpec(line)
		if err != nil {
			t.Fatalf("%q: %v", line, err)
		}
		res, err := RunOne(sp)
		if err != nil {
			t.Errorf("%v", err)
			continue
		}
		if len(res.Links) == 0 {
			t.Errorf("%s: no link accounting on a cluster run", sp)
		}
		if res.Latency <= 0 {
			t.Errorf("%s: no time elapsed", sp)
		}
	}
}

func TestGenClusterDeterministicAndValid(t *testing.T) {
	opts := GenOptions{Cluster: true, Faults: true, Kills: true}
	designs := map[string]bool{}
	topos := map[string]bool{}
	skews, kills := 0, 0
	for i := 0; i < 100; i++ {
		a := Gen(5, i, opts)
		b := Gen(5, i, opts)
		if a != b {
			t.Fatalf("index %d: %s != %s", i, a, b)
		}
		if a.Nodes < 2 || a.Nodes > 6 || a.Procs < 2 || a.Procs > 5 {
			t.Fatalf("index %d: shape out of bounds: %s", i, a)
		}
		if err := a.Validate(); err != nil {
			t.Fatalf("index %d: generated invalid spec %s: %v", i, a, err)
		}
		designs[a.Design] = true
		topos[a.Topo] = true
		if a.Skew > 0 {
			skews++
		}
		if strings.HasPrefix(a.Faults, "kill=") {
			kills++
		}
	}
	if len(designs) != 3 || len(topos) != 2 {
		t.Errorf("corpus not diverse: designs %v topos %v", designs, topos)
	}
	// The cluster corpus must actually exercise the robustness
	// dimensions: start skew and kill plans both appear.
	if skews == 0 || kills == 0 {
		t.Errorf("corpus not diverse: %d skewed specs, %d kill plans in 100", skews, kills)
	}
}

func TestShrinkClusterMinimizes(t *testing.T) {
	start := Spec{Arch: "knl", Kind: core.KindGather, Algo: "throttled:4", Count: 4096,
		Procs: 5, Root: 13, Seed: 77, Nodes: 6, Topo: "dragonfly", Design: "shared"}
	if err := start.Validate(); err != nil {
		t.Fatal(err)
	}
	// Artificial failure that needs the fabric: anything multi-node fails.
	min := Shrink(start, func(sp Spec) bool { return sp.Nodes >= 2 })
	if min.Nodes != 2 || min.Procs != 2 || min.Count != 1 {
		t.Errorf("not minimal: %s", min)
	}
	if min.Design != "leader" || min.Topo != "fattree" || min.Root != 0 || min.Seed != 0 {
		t.Errorf("irrelevant dimensions kept: %s", min)
	}
	if err := min.Validate(); err != nil {
		t.Errorf("shrunk spec invalid: %v", err)
	}
	// A failure independent of the fabric must drop the cluster entirely.
	min = Shrink(start, func(sp Spec) bool { return sp.Count >= 8 })
	if min.Nodes != 0 || min.Topo != "" || min.Design != "" {
		t.Errorf("cluster dimension kept on a fabric-independent failure: %s", min)
	}
}
