package check

import (
	"fmt"

	"camc/internal/store"
)

// Store bridging: render checked executions as persistent verdict
// records, so fuzz outcomes live next to bench latencies in the
// results store and camc-report can query both.

// StoreRecord renders a green checked run as a store verdict record
// under the given run id: the spec's cell identity, its measured
// latency, and a pass verdict carrying the canonical reproducer line.
func (r *RunResult) StoreRecord(runID string) store.Record {
	return store.Record{
		Type:       store.TypeVerdict,
		RunID:      runID,
		Experiment: "fuzz",
		Arch:       r.Spec.Arch,
		Collective: string(r.Spec.Kind),
		Series:     r.Spec.Algo,
		X:          fmt.Sprintf("%d", r.Spec.Count),
		Size:       r.Spec.Count,
		Value:      r.Latency,
		Unit:       "us",
		Verdict:    "pass",
		Detail:     r.Spec.String(),
	}
}

// FailRecord renders a failed spec (after shrinking) as a store
// verdict record: the minimal reproducer and the failure text, so the
// store keeps a durable trail of every red fuzz finding.
func FailRecord(runID string, minimal Spec, failure error) store.Record {
	return store.Record{
		Type:       store.TypeVerdict,
		RunID:      runID,
		Experiment: "fuzz",
		Arch:       minimal.Arch,
		Collective: string(minimal.Kind),
		Series:     minimal.Algo,
		X:          fmt.Sprintf("%d", minimal.Count),
		Size:       minimal.Count,
		Verdict:    "fail",
		Detail:     fmt.Sprintf("repro: %s | %v", minimal, failure),
	}
}

// CorpusRecord summarizes one fuzz corpus sweep (camc-fuzz -seed/-n)
// as a single verdict record: arch scope, pass count, and the draw's
// fault/kill plan tallies in Detail.
func CorpusRecord(runID, archScope string, passed, corpus, faultPlans, killPlans int) store.Record {
	verdict := "pass"
	if passed < corpus {
		verdict = "fail"
	}
	if archScope == "" {
		archScope = "all"
	}
	return store.Record{
		Type:       store.TypeVerdict,
		RunID:      runID,
		Experiment: "fuzz",
		Arch:       archScope,
		Series:     "corpus",
		Value:      float64(passed),
		Verdict:    verdict,
		Detail:     fmt.Sprintf("corpus=%d fault_plans=%d kill_plans=%d", corpus, faultPlans, killPlans),
	}
}
