package check

import (
	"fmt"
	"math"

	"camc/internal/arch"
)

// SparseCrossCheck runs one spec twice — once with materialized payload
// bytes (the byte-oracle arm: CopyData on, every receive buffer
// verified against the reference executor) and once in the dataless
// checksum-summary mode (per-page digests only, no bytes ever held) —
// and verifies the two runs are observationally identical:
//
//   - bit-identical latency (math.Float64bits equality, not an epsilon),
//   - the same simulator event count (the schedules are the same), and
//   - equal per-rank payload digests (the identical operation stream
//     touched the identical pages from identical sources).
//
// Digest tracking is enabled in both arms, so the materialized arm's
// byte-exactness — proven against the oracle — transfers to the sparse
// arm through digest equality: a dataless 64k-rank sweep is backed by
// the same correctness argument as a 8-rank byte-verified run.
//
// Kill plans are rejected: the recovery path re-runs on a shrunk
// communicator whose allocation layout legitimately differs.
// The returned RunResult is the sparse arm's (the materialized arm's on
// its own failure).
func SparseCrossCheck(sp Spec) (*RunResult, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	if sp.Kills() {
		return nil, fmt.Errorf("check: %s: sparse cross-check does not support kill plans", sp)
	}
	prof, err := arch.ByName(sp.Arch)
	if err != nil {
		return nil, err
	}
	fcfg := sp.faultConfig()
	mat, err := runPayload(sp, prof, fcfg, true, true)
	if err != nil {
		return mat, err
	}
	spr, err := runPayload(sp, prof, fcfg, false, true)
	if err != nil {
		return spr, err
	}
	if math.Float64bits(mat.Latency) != math.Float64bits(spr.Latency) {
		return spr, fmt.Errorf("check: %s: sparse cross-check latency mismatch: materialized %v vs sparse %v",
			sp, mat.Latency, spr.Latency)
	}
	if mat.Events != spr.Events {
		return spr, fmt.Errorf("check: %s: sparse cross-check event-count mismatch: materialized %d vs sparse %d",
			sp, mat.Events, spr.Events)
	}
	if len(mat.Digests) != len(spr.Digests) {
		return spr, fmt.Errorf("check: %s: sparse cross-check digest arity mismatch: %d vs %d",
			sp, len(mat.Digests), len(spr.Digests))
	}
	for r := range mat.Digests {
		if mat.Digests[r] != spr.Digests[r] {
			return spr, fmt.Errorf("check: %s: sparse cross-check digest mismatch at rank %d: materialized %#x vs sparse %#x",
				sp, r, mat.Digests[r], spr.Digests[r])
		}
	}
	return spr, nil
}
