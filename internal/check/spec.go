// Package check is the correctness-tooling layer of the repo: a
// deliberately naive reference executor used as a differential oracle
// for every collective kind, an invariant registry run over traced
// executions (clock monotonicity, span nesting, mm-lock balance, γ(c)
// sanity, fault-accounting conservation, model-conformance bounds), and
// a deterministic seeded fuzzer with a shrinker that reduces any
// failure to a minimal one-line reproducer spec.
//
// The reproducer grammar is a space-separated key=value line, e.g.
//
//	arch=knl kind=scatter algo=throttled:4 size=65536 procs=8 root=3 seed=17
//
// accepted by ParseSpec and by the -repro flag of camc-fuzz, camc-bench
// and camc-trace, so any failure the fuzzer finds replays byte-for-byte
// in the tracing and benchmarking tools.
package check

import (
	"fmt"
	"strconv"
	"strings"

	"camc/internal/arch"
	"camc/internal/cluster"
	"camc/internal/core"
	"camc/internal/fault"
)

// Spec is one fully-determined check case: everything RunOne needs to
// reproduce a run bit-for-bit.
type Spec struct {
	Arch  string    // architecture profile name (arch.ByName)
	Kind  core.Kind // collective kind
	Algo  string    // algorithm spec (core.LookupAlgorithm grammar)
	Count int64     // bytes per rank block (the "size=" field)
	Procs int       // communicator size
	Root  int       // root rank for rooted collectives
	Seed  int64     // payload/skew RNG seed
	Skew  float64   // max per-rank start skew in simulated us (0 = none)

	// Ambient is the static co-tenant lock pressure (phantom page-lock
	// holders added to every γ(c) sample, mpi.Config.Ambient). It is
	// single-node machinery — rejected on cluster specs.
	Ambient int

	// Faults is a fault-plan spec for fault.Parse ("" = fault-free).
	// A plan with the kill class routes the run through the recovery
	// harness (detect, agree, shrink, replan, verified re-run).
	Faults string

	// Deadline is the liveness detector deadline in simulated us used
	// by the recovery path; 0 picks liveness.Defaults().
	Deadline float64

	// Nodes > 0 selects the multi-node fabric path: Procs becomes the
	// per-node rank count (PPN), Root a world rank, and the run executes
	// a cluster collective instead of a single-node one. Fault plans,
	// skew and deadlines are single-node machinery and are rejected on
	// cluster specs.
	Nodes int
	// Topo is the fabric topology name (cluster.TopoNames); only valid
	// with Nodes > 0, where "" defaults to fattree at parse time.
	Topo string
	// Design is the cluster collective design (cluster.Designs); only
	// valid with Nodes > 0, where "" defaults to leader at parse time.
	Design string
}

// String renders the spec as the canonical one-line reproducer.
func (s Spec) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "arch=%s kind=%s algo=%s size=%d procs=%d root=%d seed=%d",
		s.Arch, s.Kind, s.Algo, s.Count, s.Procs, s.Root, s.Seed)
	if s.Skew != 0 {
		fmt.Fprintf(&b, " skew=%s", strconv.FormatFloat(s.Skew, 'g', -1, 64))
	}
	if s.Ambient != 0 {
		fmt.Fprintf(&b, " ambient=%d", s.Ambient)
	}
	if s.Faults != "" {
		fmt.Fprintf(&b, " faults=%s", s.Faults)
	}
	if s.Deadline != 0 {
		fmt.Fprintf(&b, " deadline=%s", strconv.FormatFloat(s.Deadline, 'g', -1, 64))
	}
	if s.Nodes > 0 {
		fmt.Fprintf(&b, " nodes=%d topo=%s design=%s", s.Nodes, s.Topo, s.Design)
	}
	return b.String()
}

// ParseSpec parses a reproducer line (see String) and validates every
// field, so a pasted repro fails loudly rather than running something
// other than what the fuzzer reported.
func ParseSpec(line string) (Spec, error) {
	sp := Spec{}
	seen := map[string]bool{}
	for _, tok := range strings.Fields(line) {
		i := strings.IndexByte(tok, '=')
		if i <= 0 {
			return Spec{}, fmt.Errorf("check: bad token %q (want key=value)", tok)
		}
		key, val := tok[:i], tok[i+1:]
		if seen[key] {
			return Spec{}, fmt.Errorf("check: duplicate key %q", key)
		}
		seen[key] = true
		var err error
		switch key {
		case "arch":
			sp.Arch = val
		case "kind":
			sp.Kind = core.Kind(val)
		case "algo":
			sp.Algo = val
		case "size":
			sp.Count, err = parseSize(val)
		case "procs":
			sp.Procs, err = strconv.Atoi(val)
		case "root":
			sp.Root, err = strconv.Atoi(val)
		case "seed":
			sp.Seed, err = strconv.ParseInt(val, 10, 64)
		case "skew":
			sp.Skew, err = strconv.ParseFloat(val, 64)
		case "ambient":
			sp.Ambient, err = strconv.Atoi(val)
		case "faults":
			sp.Faults = val
		case "deadline":
			sp.Deadline, err = strconv.ParseFloat(val, 64)
		case "nodes":
			sp.Nodes, err = strconv.Atoi(val)
		case "topo":
			sp.Topo = val
		case "design":
			sp.Design = val
		default:
			return Spec{}, fmt.Errorf("check: unknown key %q", key)
		}
		if err != nil {
			return Spec{}, fmt.Errorf("check: bad %s value %q: %v", key, val, err)
		}
	}
	if sp.Nodes > 0 {
		if sp.Topo == "" {
			sp.Topo = "fattree"
		}
		if sp.Design == "" {
			sp.Design = string(cluster.DesignLeader)
		}
	}
	if err := sp.Validate(); err != nil {
		return Spec{}, err
	}
	return sp, nil
}

// parseSize parses a byte count with an optional K/M suffix
// (1024-based), matching the camc-trace -size flag.
func parseSize(s string) (int64, error) {
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "K"), strings.HasSuffix(s, "k"):
		mult, s = 1<<10, s[:len(s)-1]
	case strings.HasSuffix(s, "M"), strings.HasSuffix(s, "m"):
		mult, s = 1<<20, s[:len(s)-1]
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, err
	}
	return v * mult, nil
}

// Validate checks cross-field consistency: the arch exists, the algo
// resolves for the kind, the root is in range, and any fault spec
// parses. A cluster spec (nodes > 0) additionally needs a known
// topology and design, a world-rank root, and no single-node-only
// machinery (faults, skew, deadline).
func (s Spec) Validate() error {
	if _, err := arch.ByName(s.Arch); err != nil {
		return fmt.Errorf("check: %v", err)
	}
	if s.Count < 1 {
		return fmt.Errorf("check: size %d < 1", s.Count)
	}
	if s.Procs < 2 {
		return fmt.Errorf("check: procs %d < 2", s.Procs)
	}
	if s.Nodes > 0 {
		if err := s.validateCluster(); err != nil {
			return err
		}
	} else {
		if s.Topo != "" || s.Design != "" {
			return fmt.Errorf("check: topo/design need nodes>0")
		}
		if s.Root < 0 || s.Root >= s.Procs {
			return fmt.Errorf("check: root %d out of range [0, %d)", s.Root, s.Procs)
		}
	}
	if s.Skew < 0 {
		return fmt.Errorf("check: negative skew %v", s.Skew)
	}
	if s.Ambient < 0 {
		return fmt.Errorf("check: negative ambient %d", s.Ambient)
	}
	if s.Ambient > 0 && s.Nodes > 0 {
		return fmt.Errorf("check: ambient= is single-node machinery, invalid with nodes>0")
	}
	if s.Deadline < 0 {
		return fmt.Errorf("check: negative deadline %v", s.Deadline)
	}
	if _, err := core.LookupAlgorithm(s.Kind, s.Algo); err != nil {
		return err
	}
	if s.Faults != "" {
		if _, err := fault.Parse(s.Faults); err != nil {
			return err
		}
	}
	return nil
}

// validateCluster checks the cluster-only fields of a nodes>0 spec.
func (s Spec) validateCluster() error {
	if s.Nodes < 2 {
		return fmt.Errorf("check: nodes %d < 2 (a cluster spec needs the fabric)", s.Nodes)
	}
	if _, err := cluster.TopoByName(s.Topo, s.Nodes, 16); err != nil {
		return err
	}
	known := false
	for _, d := range cluster.Designs() {
		if string(d) == s.Design {
			known = true
		}
	}
	if !known {
		return fmt.Errorf("check: unknown design %q (want one of %v)", s.Design, cluster.Designs())
	}
	if world := s.Nodes * s.Procs; s.Root < 0 || s.Root >= world {
		return fmt.Errorf("check: root %d out of world range [0, %d)", s.Root, world)
	}
	// skew=, deadline= and the kernel-level fault classes (including
	// kill=, which routes through the world-level recovery harness) are
	// all supported on cluster specs. The one genuinely single-node
	// class left is straggler=: its delay hook lives in the single-node
	// harness loop, so it is rejected by name rather than silently
	// ignored.
	if s.Faults != "" {
		fc, err := fault.Parse(s.Faults)
		if err != nil {
			return err
		}
		if fc.StragglerProb > 0 {
			return fmt.Errorf("check: fault key straggler= is single-node machinery, invalid with nodes>0 (use skew= for staggered cluster starts)")
		}
	}
	return nil
}

// Kills reports whether the spec's fault plan arms the kill class —
// such specs route through the recovery harness and are excluded from
// the sparse cross-check (a killed rank's re-run happens on a shrunk
// communicator whose page layout is legitimately different).
func (s Spec) Kills() bool {
	fc := s.faultConfig()
	return fc != nil && fc.KillProb > 0
}

// faultConfig parses the spec's fault plan (nil when fault-free).
func (s Spec) faultConfig() *fault.Config {
	if s.Faults == "" {
		return nil
	}
	cfg, err := fault.Parse(s.Faults)
	if err != nil {
		panic(fmt.Sprintf("check: validated spec failed to re-parse: %v", err))
	}
	return &cfg
}
