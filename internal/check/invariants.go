package check

import (
	"fmt"
	"math"

	"camc/internal/core"
	"camc/internal/trace"
)

// Violation is one invariant failure with enough context to debug it.
type Violation struct {
	Invariant string // registry name
	Detail    string
}

func (v Violation) Error() string { return v.Invariant + ": " + v.Detail }

// Invariant is one machine-checked property of a traced execution.
type Invariant struct {
	Name string
	// Doc is a one-line statement of the property, surfaced by
	// camc-fuzz -list-invariants and the docs.
	Doc   string
	Check func(r *RunResult) []Violation
}

// Invariants returns the registry, in evaluation order.
func Invariants() []Invariant {
	return []Invariant{
		{"clock-monotone", "virtual time never runs backwards: non-edge events are recorded in non-decreasing Start order, spans close at End >= Start", checkClockMonotone},
		{"span-nesting", "per-lane spans are well-formed: every span closes and spans on one lane strictly nest", checkSpanNesting},
		{"lock-balance", "per (mm-owner, holder) pair, mm-lock chunk acquires and releases balance and never go negative", checkLockBalance},
		{"gamma-sanity", "every sampled contention factor has 1 <= c <= procs and gamma >= 1, and the in-flight counter steps by exactly +-1 staying in [0, procs]", checkGammaSanity},
		{"fault-conservation", "every injected transient is accounted for: Transients == Retries + Fallbacks, and all counters are non-negative", checkFaultConservation},
		{"model-conformance", "for fault-free, skew-free runs of algorithms with closed forms, the simulated latency stays within the model envelope", checkModelConformance},
		{"net-span-nesting", "on cluster runs, every net_send/net_recv span nests inside an enclosing collective span on its lane", checkNetSpanNesting},
		{"link-accounting", "on cluster runs, every link conserves flow (injected == delivered) and never delivers faster than its line rate over its activity window", checkLinkAccounting},
		{"leader-phase-order", "on leader-design gathering kinds, a leader's intra-node phase completes before its first network send", checkLeaderPhaseOrder},
	}
}

// CheckInvariants evaluates the registry over one run. For a kill-plan
// run (r.Killed) the structural trace invariants that a legitimately
// dying rank breaks — span closure, lock balance — are relaxed as
// documented on the individual checks.
func CheckInvariants(r *RunResult) []Violation {
	var out []Violation
	for _, inv := range Invariants() {
		out = append(out, inv.Check(r)...)
	}
	return out
}

// checkClockMonotone: the recorder appends at begin time and the
// simulator's clock is globally monotone, so Start must be
// non-decreasing in recording order for all events recorded at their
// Start (spans, instants, counters). Edges are recorded at receive end
// with Start = the earlier wait start, so they are exempt from the
// recording-order rule but must satisfy their own ordering fields:
// SendTs <= ReadyTs and Start <= End.
func checkClockMonotone(r *RunResult) []Violation {
	var out []Violation
	bad := func(format string, args ...any) {
		out = append(out, Violation{"clock-monotone", fmt.Sprintf(format, args...)})
	}
	last := math.Inf(-1)
	for i, e := range r.Rec.Events() {
		if e.Kind == trace.KindEdge {
			if e.SendTs > e.ReadyTs {
				bad("event %d (%s): edge SendTs %.4f > ReadyTs %.4f", i, e.Name, e.SendTs, e.ReadyTs)
			}
			if e.Start > e.End {
				bad("event %d (%s): edge wait start %.4f > recv end %.4f", i, e.Name, e.Start, e.End)
			}
			continue
		}
		if e.Start < last {
			bad("event %d (%s): Start %.4f < previous %.4f", i, e.Name, e.Start, last)
		}
		last = e.Start
	}
	return out
}

// checkSpanNesting: spans on one lane must nest (collective step > MPI
// op > shm/CMA op > chunk) and every span must be closed by the end of
// the run. A lane whose rank was killed mid-operation legitimately
// leaves its innermost spans open, so on a kill run lanes with open
// spans are skipped entirely.
func checkSpanNesting(r *RunResult) []Violation {
	var out []Violation
	type span struct {
		name       string
		start, end float64
	}
	perLane := map[int][]span{}
	openLane := map[int]bool{}
	for _, e := range r.Rec.Events() {
		if e.Kind != trace.KindSpan {
			continue
		}
		if e.End < e.Start { // never closed
			openLane[e.Lane] = true
			continue
		}
		perLane[e.Lane] = append(perLane[e.Lane], span{e.Name, e.Start, e.End})
	}
	for lane := range openLane {
		if !r.Killed {
			out = append(out, Violation{"span-nesting",
				fmt.Sprintf("lane %d: span left open at end of run", lane)})
		}
		delete(perLane, lane) // a dying rank's remaining spans are partial
	}
	for lane, spans := range perLane {
		// Spans arrive in begin order (recording order). A stack check:
		// pop finished siblings, then the new span must fit inside the
		// enclosing one.
		var stack []span
		for _, s := range spans {
			for len(stack) > 0 && stack[len(stack)-1].end <= s.start {
				stack = stack[:len(stack)-1]
			}
			if len(stack) > 0 && s.end > stack[len(stack)-1].end {
				top := stack[len(stack)-1]
				out = append(out, Violation{"span-nesting",
					fmt.Sprintf("lane %d: span %s [%.4f, %.4f] overlaps enclosing %s [%.4f, %.4f]",
						lane, s.name, s.start, s.end, top.name, top.start, top.end)})
				continue
			}
			stack = append(stack, s)
		}
	}
	return out
}

// lockKey identifies one (mm owner lane, holder lane) pair.
type lockKey struct{ owner, holder int }

// checkLockBalance: the kernel emits mm_lock_acquire / mm_lock_release
// instants per contention chunk on the mm owner's lane with the
// caller's lane as the "holder" arg. Each caller is a single simulated
// process, so per (owner, holder) the balance must alternate 0 -> 1 ->
// 0 and end at zero. A killed rank can die holding a chunk, so on a
// kill run a non-zero final balance is tolerated (but over-release
// never is).
func checkLockBalance(r *RunResult) []Violation {
	var out []Violation
	balance := map[lockKey]int{}
	for i, e := range r.Rec.Events() {
		if e.Kind != trace.KindInstant || (e.Name != "mm_lock_acquire" && e.Name != "mm_lock_release") {
			continue
		}
		h, ok := e.Arg("holder")
		if !ok {
			out = append(out, Violation{"lock-balance",
				fmt.Sprintf("event %d: %s without holder arg", i, e.Name)})
			continue
		}
		k := lockKey{owner: e.Lane, holder: int(h)}
		if e.Name == "mm_lock_acquire" {
			balance[k]++
			if balance[k] > 1 {
				out = append(out, Violation{"lock-balance",
					fmt.Sprintf("event %d: holder %d re-acquired owner %d's mm lock (balance %d)", i, k.holder, k.owner, balance[k])})
			}
		} else {
			balance[k]--
			if balance[k] < 0 {
				out = append(out, Violation{"lock-balance",
					fmt.Sprintf("event %d: holder %d released owner %d's mm lock it never acquired", i, k.holder, k.owner)})
			}
		}
	}
	if !r.Killed {
		for k, b := range balance {
			if b != 0 {
				out = append(out, Violation{"lock-balance",
					fmt.Sprintf("holder %d ends with balance %d on owner %d's mm lock", k.holder, b, k.owner)})
			}
		}
	}
	return out
}

// checkGammaSanity: every γ(c) sample must carry a concurrency count in
// [1, procs] and a factor >= 1 (contention never accelerates a copy),
// and the mm in-flight counter must step by exactly ±1 per sample,
// staying within [0, procs].
func checkGammaSanity(r *RunResult) []Violation {
	var out []Violation
	bad := func(format string, args ...any) {
		out = append(out, Violation{"gamma-sanity", fmt.Sprintf(format, args...)})
	}
	p := float64(r.Procs)
	lastInFlight := map[int]float64{}
	for i, e := range r.Rec.Events() {
		switch {
		case e.Kind == trace.KindInstant && e.Name == "gamma":
			g, _ := e.Arg("gamma")
			c, ok := e.Arg("c")
			if !ok {
				bad("event %d: gamma sample without c arg", i)
				continue
			}
			if c < 1 || c > p {
				bad("event %d: gamma concurrency c=%v outside [1, %d]", i, c, r.Procs)
			}
			if g < 1 {
				bad("event %d: gamma %v < 1", i, g)
			}
		case e.Kind == trace.KindInstant && e.Name == "mm_lock_acquire":
			if c, ok := e.Arg("c"); ok && (c < 1 || c > p) {
				bad("event %d: mm_lock_acquire concurrency c=%v outside [1, %d]", i, c, r.Procs)
			}
		case e.Kind == trace.KindCounter && e.Name == trace.CounterInFlight:
			if e.Value < 0 || e.Value > p {
				bad("event %d: %s = %v outside [0, %d]", i, e.Name, e.Value, r.Procs)
			}
			if prev, ok := lastInFlight[e.Lane]; ok {
				if d := e.Value - prev; d != 1 && d != -1 {
					bad("event %d: %s on lane %d stepped %v -> %v (want ±1)", i, e.Name, e.Lane, prev, e.Value)
				}
			} else if e.Value != 1 {
				bad("event %d: first %s sample on lane %d is %v, want 1", i, e.Name, e.Lane, e.Value)
			}
			lastInFlight[e.Lane] = e.Value
		case e.Kind == trace.KindCounter && e.Name == trace.CounterQueue:
			if e.Value < 0 {
				bad("event %d: %s = %v < 0", i, e.Name, e.Value)
			}
		}
	}
	return out
}

// checkFaultConservation: the retry machinery must account for every
// injected transient — each one either burned a backoff retry or
// terminated a budget into a per-peer fallback, so Transients ==
// Retries + Fallbacks. Injected partials are always resumed in place at
// no budget cost, so they appear only in Partials. All counters and
// accumulated times must be non-negative.
func checkFaultConservation(r *RunResult) []Violation {
	var out []Violation
	s := r.Stats
	bad := func(format string, args ...any) {
		out = append(out, Violation{"fault-conservation", fmt.Sprintf(format, args...)})
	}
	if s.Transients != s.Retries+s.Fallbacks {
		bad("Transients (%d) != Retries (%d) + Fallbacks (%d)", s.Transients, s.Retries, s.Fallbacks)
	}
	for _, c := range []struct {
		name string
		v    int64
	}{
		{"Transients", s.Transients}, {"Partials", s.Partials},
		{"LockSpikes", s.LockSpikes}, {"ShmStalls", s.ShmStalls},
		{"Stragglers", s.Stragglers}, {"Retries", s.Retries},
		{"Fallbacks", s.Fallbacks}, {"BounceOps", s.BounceOps},
		{"BounceBytes", s.BounceBytes}, {"Kills", s.Kills},
	} {
		if c.v < 0 {
			bad("%s = %d < 0", c.name, c.v)
		}
	}
	if s.BackoffTime < 0 {
		bad("BackoffTime = %v < 0", s.BackoffTime)
	}
	if s.Retries > 0 && s.BackoffTime <= 0 {
		bad("%d retries but zero backoff time", s.Retries)
	}
	if s.BounceBytes > 0 && s.BounceOps == 0 {
		bad("%d bounce bytes moved in zero bounce ops", s.BounceBytes)
	}
	if s.Kills > 0 && !r.Killed {
		bad("%d kills recorded by a plan without the kill class", s.Kills)
	}
	return out
}

// checkNetSpanNesting: fabric activity only ever happens on behalf of a
// cluster collective, so on a cluster run every CatNet span must start
// inside an open CatColl span on the same lane (the "hcoll:*" wrapper
// or one of its phase spans).
func checkNetSpanNesting(r *RunResult) []Violation {
	if r.Spec.Nodes == 0 {
		return nil
	}
	var out []Violation
	type window struct{ start, end float64 }
	collOpen := map[int][]window{}
	for _, e := range r.Rec.Events() {
		if e.Kind == trace.KindSpan && e.Cat == trace.CatColl && e.End >= e.Start {
			collOpen[e.Lane] = append(collOpen[e.Lane], window{e.Start, e.End})
		}
	}
	for _, e := range r.Rec.Events() {
		if e.Kind != trace.KindSpan || e.Cat != trace.CatNet {
			continue
		}
		inside := false
		for _, w := range collOpen[e.Lane] {
			if w.start <= e.Start && e.End <= w.end {
				inside = true
				break
			}
		}
		if !inside {
			out = append(out, Violation{"net-span-nesting",
				fmt.Sprintf("lane %d: %s [%.4f, %.4f] outside any collective span", e.Lane, e.Name, e.Start, e.End)})
		}
	}
	return out
}

// checkLinkAccounting: the fabric's per-link counters must conserve
// flow, and because GammaNet(c) >= c a link's aggregate delivery can
// never beat its line rate — delivered bytes times the per-byte time
// must fit the link's activity window, with slack for the chunks in
// flight at the window edges.
func checkLinkAccounting(r *RunResult) []Violation {
	if r.Spec.Nodes == 0 {
		return nil
	}
	var out []Violation
	chunkTime := float64(r.NetChunk) * r.NetBeta
	for _, ls := range r.Links {
		if ls.Injected != ls.Delivered {
			out = append(out, Violation{"link-accounting",
				fmt.Sprintf("link %s: injected %d bytes != delivered %d", ls.Name, ls.Injected, ls.Delivered)})
		}
		window := ls.Last - ls.First
		if need := float64(ls.Delivered) * r.NetBeta; need > window+float64(ls.MaxActive)*chunkTime+1e-6 {
			out = append(out, Violation{"link-accounting",
				fmt.Sprintf("link %s: %d bytes need %.2fus of line rate but the activity window is %.2fus (max %d flows)",
					ls.Name, ls.Delivered, need, window, ls.MaxActive)})
		}
	}
	return out
}

// leaderGatheringKinds are the leader-design kinds whose on-node phase
// runs strictly before the leaders' network exchange.
var leaderGatheringKinds = map[core.Kind]bool{
	core.KindGather: true, core.KindReduce: true,
	core.KindAllgather: true, core.KindAlltoall: true,
}

// checkLeaderPhaseOrder: in a leader design of a gathering kind, a
// leader cannot ship its node's contribution before the intra-node
// phase has produced it — on every lane with network sends, the first
// h_intra span must end at or before the first net_send starts.
func checkLeaderPhaseOrder(r *RunResult) []Violation {
	if r.Spec.Nodes == 0 || r.Spec.Design != "leader" || !leaderGatheringKinds[r.Spec.Kind] {
		return nil
	}
	var out []Violation
	firstIntraEnd := map[int]float64{}
	for _, e := range r.Rec.Events() {
		if e.Kind == trace.KindSpan && e.Name == "h_intra" && e.End >= e.Start {
			if _, ok := firstIntraEnd[e.Lane]; !ok {
				firstIntraEnd[e.Lane] = e.End
			}
		}
	}
	reported := map[int]bool{}
	firstSend := map[int]float64{}
	for _, e := range r.Rec.Events() {
		if e.Kind != trace.KindSpan || e.Name != "net_send" {
			continue
		}
		if _, ok := firstSend[e.Lane]; ok {
			continue
		}
		firstSend[e.Lane] = e.Start
		end, ok := firstIntraEnd[e.Lane]
		if !ok {
			out = append(out, Violation{"leader-phase-order",
				fmt.Sprintf("lane %d: net_send at %.4f with no intra-node phase on the lane", e.Lane, e.Start)})
			continue
		}
		if e.Start < end && !reported[e.Lane] {
			reported[e.Lane] = true
			out = append(out, Violation{"leader-phase-order",
				fmt.Sprintf("lane %d: net_send at %.4f before the intra phase ends at %.4f", e.Lane, e.Start, end)})
		}
	}
	return out
}

// modelEnvelope is the accepted simulated/predicted latency ratio band
// for the closed forms. The forms are first-order (they ignore
// barrier/skew interleaving and socket placement of the root), so the
// band is deliberately generous: it catches order-of-magnitude breaks —
// a mis-costed path, a serialization bug, a dropped contention term —
// not fitting error.
const (
	modelEnvelopeLo = 1.0 / 4
	modelEnvelopeHi = 4.0
)

// checkModelConformance: when RunOne computed a closed-form prediction
// (fault-free, skew-free, kernel-assisted sizes only — see predictFor),
// the simulated latency must stay within the envelope of it.
func checkModelConformance(r *RunResult) []Violation {
	if r.Pred <= 0 || r.Latency <= 0 {
		return nil
	}
	ratio := r.Latency / r.Pred
	if ratio < modelEnvelopeLo || ratio > modelEnvelopeHi {
		return []Violation{{"model-conformance",
			fmt.Sprintf("%s/%s size %d procs %d: simulated %.2fus vs closed form %.2fus (ratio %.3f outside [%.2f, %.2f])",
				r.Spec.Kind, r.Spec.Algo, r.Spec.Count, r.Procs, r.Latency, r.Pred, ratio, modelEnvelopeLo, modelEnvelopeHi)}}
	}
	return nil
}
