package check

import (
	"fmt"
	"math"

	"camc/internal/core"
	"camc/internal/trace"
)

// Violation is one invariant failure with enough context to debug it.
type Violation struct {
	Invariant string // registry name
	Detail    string
}

func (v Violation) Error() string { return v.Invariant + ": " + v.Detail }

// Invariant is one machine-checked property of a traced execution.
type Invariant struct {
	Name string
	// Doc is a one-line statement of the property, surfaced by
	// camc-fuzz -list-invariants and the docs.
	Doc   string
	Check func(r *RunResult) []Violation
}

// Invariants returns the registry, in evaluation order.
func Invariants() []Invariant {
	return []Invariant{
		{"clock-monotone", "virtual time never runs backwards: non-edge events are recorded in non-decreasing Start order, spans close at End >= Start", checkClockMonotone},
		{"span-nesting", "per-lane spans are well-formed: every span closes and spans on one lane strictly nest", checkSpanNesting},
		{"lock-balance", "per (mm-owner, holder) pair, mm-lock chunk acquires and releases balance and never go negative", checkLockBalance},
		{"gamma-sanity", "every sampled contention factor has 1 <= c <= procs+ambient and gamma >= 1, and the in-flight counter steps by exactly +-1 staying in [0, procs]", checkGammaSanity},
		{"fault-conservation", "every injected transient is accounted for: Transients == Retries + Fallbacks, and all counters are non-negative", checkFaultConservation},
		{"model-conformance", "for fault-free, skew-free runs of algorithms with closed forms, the simulated latency stays within the model envelope", checkModelConformance},
		{"net-span-nesting", "on cluster runs, every net_send/net_recv span nests inside an enclosing collective span on its lane", checkNetSpanNesting},
		{"link-accounting", "on cluster runs, every link conserves flow (injected == delivered) and never delivers faster than its line rate over its activity window", checkLinkAccounting},
		{"leader-phase-order", "on leader-design gathering kinds, a leader's intra-node phase completes before its first network send", checkLeaderPhaseOrder},
		{"no-dead-traffic", "after a rank is killed, its lane records no further spans, instants, or message sends", checkNoDeadTraffic},
		{"reelect-order", "leader re-election happens after world agreement and before the re-run, and the re-run preserves leader-phase ordering", checkReelectOrder},
		{"shrink-residue", "after a world shrink, every undrained fabric flow targets a rank the survivors agreed dead", checkShrinkResidue},
	}
}

// CheckInvariants evaluates the registry over one run. For a kill-plan
// run (r.Killed) the structural trace invariants that a legitimately
// dying rank breaks — span closure, lock balance — are relaxed as
// documented on the individual checks.
func CheckInvariants(r *RunResult) []Violation {
	var out []Violation
	for _, inv := range Invariants() {
		out = append(out, inv.Check(r)...)
	}
	return out
}

// checkClockMonotone: the recorder appends at begin time and the
// simulator's clock is globally monotone, so Start must be
// non-decreasing in recording order for all events recorded at their
// Start (spans, instants, counters). Edges are recorded at receive end
// with Start = the earlier wait start, so they are exempt from the
// recording-order rule but must satisfy their own ordering fields:
// SendTs <= ReadyTs and Start <= End.
func checkClockMonotone(r *RunResult) []Violation {
	var out []Violation
	bad := func(format string, args ...any) {
		out = append(out, Violation{"clock-monotone", fmt.Sprintf(format, args...)})
	}
	last := math.Inf(-1)
	for i, e := range r.Rec.Events() {
		if e.Kind == trace.KindEdge {
			if e.SendTs > e.ReadyTs {
				bad("event %d (%s): edge SendTs %.4f > ReadyTs %.4f", i, e.Name, e.SendTs, e.ReadyTs)
			}
			if e.Start > e.End {
				bad("event %d (%s): edge wait start %.4f > recv end %.4f", i, e.Name, e.Start, e.End)
			}
			continue
		}
		if e.Start < last {
			bad("event %d (%s): Start %.4f < previous %.4f", i, e.Name, e.Start, last)
		}
		last = e.Start
	}
	return out
}

// checkSpanNesting: spans on one lane must nest (collective step > MPI
// op > shm/CMA op > chunk) and every span must be closed by the end of
// the run. A lane whose rank was killed mid-operation legitimately
// leaves its innermost spans open, so on a kill run lanes with open
// spans are skipped entirely.
func checkSpanNesting(r *RunResult) []Violation {
	var out []Violation
	type span struct {
		name       string
		start, end float64
	}
	perLane := map[int][]span{}
	openLane := map[int]bool{}
	for _, e := range r.Rec.Events() {
		if e.Kind != trace.KindSpan {
			continue
		}
		if e.End < e.Start { // never closed
			openLane[e.Lane] = true
			continue
		}
		perLane[e.Lane] = append(perLane[e.Lane], span{e.Name, e.Start, e.End})
	}
	for lane := range openLane {
		if !r.Killed {
			out = append(out, Violation{"span-nesting",
				fmt.Sprintf("lane %d: span left open at end of run", lane)})
		}
		delete(perLane, lane) // a dying rank's remaining spans are partial
	}
	for lane, spans := range perLane {
		// Spans arrive in begin order (recording order). A stack check:
		// pop finished siblings, then the new span must fit inside the
		// enclosing one.
		var stack []span
		for _, s := range spans {
			for len(stack) > 0 && stack[len(stack)-1].end <= s.start {
				stack = stack[:len(stack)-1]
			}
			if len(stack) > 0 && s.end > stack[len(stack)-1].end {
				top := stack[len(stack)-1]
				out = append(out, Violation{"span-nesting",
					fmt.Sprintf("lane %d: span %s [%.4f, %.4f] overlaps enclosing %s [%.4f, %.4f]",
						lane, s.name, s.start, s.end, top.name, top.start, top.end)})
				continue
			}
			stack = append(stack, s)
		}
	}
	return out
}

// lockKey identifies one (mm owner lane, holder lane) pair.
type lockKey struct{ owner, holder int }

// checkLockBalance: the kernel emits mm_lock_acquire / mm_lock_release
// instants per contention chunk on the mm owner's lane with the
// caller's lane as the "holder" arg. Each caller is a single simulated
// process, so per (owner, holder) the balance must alternate 0 -> 1 ->
// 0 and end at zero. A killed rank can die holding a chunk, so on a
// kill run a non-zero final balance is tolerated (but over-release
// never is).
func checkLockBalance(r *RunResult) []Violation {
	var out []Violation
	balance := map[lockKey]int{}
	for i, e := range r.Rec.Events() {
		if e.Kind != trace.KindInstant || (e.Name != "mm_lock_acquire" && e.Name != "mm_lock_release") {
			continue
		}
		h, ok := e.Arg("holder")
		if !ok {
			out = append(out, Violation{"lock-balance",
				fmt.Sprintf("event %d: %s without holder arg", i, e.Name)})
			continue
		}
		k := lockKey{owner: e.Lane, holder: int(h)}
		if e.Name == "mm_lock_acquire" {
			balance[k]++
			if balance[k] > 1 {
				out = append(out, Violation{"lock-balance",
					fmt.Sprintf("event %d: holder %d re-acquired owner %d's mm lock (balance %d)", i, k.holder, k.owner, balance[k])})
			}
		} else {
			balance[k]--
			if balance[k] < 0 {
				out = append(out, Violation{"lock-balance",
					fmt.Sprintf("event %d: holder %d released owner %d's mm lock it never acquired", i, k.holder, k.owner)})
			}
		}
	}
	if !r.Killed {
		for k, b := range balance {
			if b != 0 {
				out = append(out, Violation{"lock-balance",
					fmt.Sprintf("holder %d ends with balance %d on owner %d's mm lock", k.holder, b, k.owner)})
			}
		}
	}
	return out
}

// checkGammaSanity: every γ(c) sample must carry a concurrency count in
// [1, procs + ambient] (the γ curve sees the spec's phantom co-tenant
// holders on top of the local fan-in) and a factor >= 1 (contention
// never accelerates a copy), and the mm in-flight counter must step by
// exactly ±1 per sample, staying within [0, procs] — ambient holders
// are phantom and never enter the real in-flight count.
func checkGammaSanity(r *RunResult) []Violation {
	var out []Violation
	bad := func(format string, args ...any) {
		out = append(out, Violation{"gamma-sanity", fmt.Sprintf(format, args...)})
	}
	p := float64(r.Procs)
	cMax := p + float64(r.Spec.Ambient)
	lastInFlight := map[int]float64{}
	for i, e := range r.Rec.Events() {
		switch {
		case e.Kind == trace.KindInstant && e.Name == "gamma":
			g, _ := e.Arg("gamma")
			c, ok := e.Arg("c")
			if !ok {
				bad("event %d: gamma sample without c arg", i)
				continue
			}
			if c < 1 || c > cMax {
				bad("event %d: gamma concurrency c=%v outside [1, %v]", i, c, cMax)
			}
			if g < 1 {
				bad("event %d: gamma %v < 1", i, g)
			}
		case e.Kind == trace.KindInstant && e.Name == "mm_lock_acquire":
			if c, ok := e.Arg("c"); ok && (c < 1 || c > cMax) {
				bad("event %d: mm_lock_acquire concurrency c=%v outside [1, %v]", i, c, cMax)
			}
		case e.Kind == trace.KindCounter && e.Name == trace.CounterInFlight:
			if e.Value < 0 || e.Value > p {
				bad("event %d: %s = %v outside [0, %d]", i, e.Name, e.Value, r.Procs)
			}
			if prev, ok := lastInFlight[e.Lane]; ok {
				if d := e.Value - prev; d != 1 && d != -1 {
					bad("event %d: %s on lane %d stepped %v -> %v (want ±1)", i, e.Name, e.Lane, prev, e.Value)
				}
			} else if e.Value != 1 {
				bad("event %d: first %s sample on lane %d is %v, want 1", i, e.Name, e.Lane, e.Value)
			}
			lastInFlight[e.Lane] = e.Value
		case e.Kind == trace.KindCounter && e.Name == trace.CounterQueue:
			if e.Value < 0 {
				bad("event %d: %s = %v < 0", i, e.Name, e.Value)
			}
		}
	}
	return out
}

// checkFaultConservation: the retry machinery must account for every
// injected transient — each one either burned a backoff retry or
// terminated a budget into a per-peer fallback, so Transients ==
// Retries + Fallbacks. Injected partials are always resumed in place at
// no budget cost, so they appear only in Partials. All counters and
// accumulated times must be non-negative.
func checkFaultConservation(r *RunResult) []Violation {
	var out []Violation
	s := r.Stats
	bad := func(format string, args ...any) {
		out = append(out, Violation{"fault-conservation", fmt.Sprintf(format, args...)})
	}
	if s.Transients != s.Retries+s.Fallbacks {
		bad("Transients (%d) != Retries (%d) + Fallbacks (%d)", s.Transients, s.Retries, s.Fallbacks)
	}
	for _, c := range []struct {
		name string
		v    int64
	}{
		{"Transients", s.Transients}, {"Partials", s.Partials},
		{"LockSpikes", s.LockSpikes}, {"ShmStalls", s.ShmStalls},
		{"Stragglers", s.Stragglers}, {"Retries", s.Retries},
		{"Fallbacks", s.Fallbacks}, {"BounceOps", s.BounceOps},
		{"BounceBytes", s.BounceBytes}, {"Kills", s.Kills},
	} {
		if c.v < 0 {
			bad("%s = %d < 0", c.name, c.v)
		}
	}
	if s.BackoffTime < 0 {
		bad("BackoffTime = %v < 0", s.BackoffTime)
	}
	if s.Retries > 0 && s.BackoffTime <= 0 {
		bad("%d retries but zero backoff time", s.Retries)
	}
	if s.BounceBytes > 0 && s.BounceOps == 0 {
		bad("%d bounce bytes moved in zero bounce ops", s.BounceBytes)
	}
	if s.Kills > 0 && !r.Killed {
		bad("%d kills recorded by a plan without the kill class", s.Kills)
	}
	return out
}

// checkNetSpanNesting: fabric activity only ever happens on behalf of a
// cluster collective or the world liveness layer, so on a cluster run
// every CatNet span must fit inside a CatColl span (the "hcoll:*"
// wrapper or one of its phase spans) or a CatLiveness span (agreement
// rounds and re-election gossip cross the fabric too) on the same
// lane. On a kill run a dying or aborting rank legitimately leaves its
// wrapper span open, so an unclosed wrapper counts as a window that
// extends to the end of the run, and an unclosed CatNet span (the
// in-flight fabric op the abort interrupted) is skipped.
func checkNetSpanNesting(r *RunResult) []Violation {
	if r.Spec.Nodes == 0 {
		return nil
	}
	var out []Violation
	type window struct{ start, end float64 }
	collOpen := map[int][]window{}
	for _, e := range r.Rec.Events() {
		if e.Kind == trace.KindSpan && (e.Cat == trace.CatColl || e.Cat == trace.CatLiveness) {
			switch {
			case e.End >= e.Start:
				collOpen[e.Lane] = append(collOpen[e.Lane], window{e.Start, e.End})
			case r.Killed: // aborted wrapper: open from Start onwards
				collOpen[e.Lane] = append(collOpen[e.Lane], window{e.Start, math.Inf(1)})
			}
		}
	}
	for _, e := range r.Rec.Events() {
		if e.Kind != trace.KindSpan || e.Cat != trace.CatNet {
			continue
		}
		if e.End < e.Start && r.Killed {
			continue // a dying or aborting rank's in-flight fabric op
		}
		inside := false
		for _, w := range collOpen[e.Lane] {
			if w.start <= e.Start && e.End <= w.end {
				inside = true
				break
			}
		}
		if !inside {
			out = append(out, Violation{"net-span-nesting",
				fmt.Sprintf("lane %d: %s [%.4f, %.4f] outside any collective span", e.Lane, e.Name, e.Start, e.End)})
		}
	}
	return out
}

// checkLinkAccounting: the fabric's per-link counters must conserve
// flow, and because GammaNet(c) >= c a link's aggregate delivery can
// never beat its line rate — delivered bytes times the per-byte time
// must fit the link's activity window, with slack for the chunks in
// flight at the window edges.
func checkLinkAccounting(r *RunResult) []Violation {
	if r.Spec.Nodes == 0 {
		return nil
	}
	var out []Violation
	chunkTime := float64(r.NetChunk) * r.NetBeta
	for _, ls := range r.Links {
		if ls.Injected != ls.Delivered {
			out = append(out, Violation{"link-accounting",
				fmt.Sprintf("link %s: injected %d bytes != delivered %d", ls.Name, ls.Injected, ls.Delivered)})
		}
		window := ls.Last - ls.First
		if need := float64(ls.Delivered) * r.NetBeta; need > window+float64(ls.MaxActive)*chunkTime+1e-6 {
			out = append(out, Violation{"link-accounting",
				fmt.Sprintf("link %s: %d bytes need %.2fus of line rate but the activity window is %.2fus (max %d flows)",
					ls.Name, ls.Delivered, need, window, ls.MaxActive)})
		}
	}
	return out
}

// leaderGatheringKinds are the leader-design kinds whose on-node phase
// runs strictly before the leaders' network exchange.
var leaderGatheringKinds = map[core.Kind]bool{
	core.KindGather: true, core.KindReduce: true,
	core.KindAllgather: true, core.KindAlltoall: true,
}

// checkLeaderPhaseOrder: in a leader design of a gathering kind, a
// leader cannot ship its node's contribution before the intra-node
// phase has produced it — on every lane with network sends, the first
// h_intra span must end at or before the first net_send starts. Kill
// runs are excluded: an aborted attempt, liveness gossip and the
// re-run interleave on one lane, so the whole-lane first-span logic
// does not apply — checkReelectOrder enforces the same ordering
// scoped to the re-run window instead.
func checkLeaderPhaseOrder(r *RunResult) []Violation {
	if r.Spec.Nodes == 0 || r.Spec.Design != "leader" || !leaderGatheringKinds[r.Spec.Kind] || r.Killed {
		return nil
	}
	var out []Violation
	firstIntraEnd := map[int]float64{}
	for _, e := range r.Rec.Events() {
		if e.Kind == trace.KindSpan && e.Name == "h_intra" && e.End >= e.Start {
			if _, ok := firstIntraEnd[e.Lane]; !ok {
				firstIntraEnd[e.Lane] = e.End
			}
		}
	}
	reported := map[int]bool{}
	firstSend := map[int]float64{}
	for _, e := range r.Rec.Events() {
		if e.Kind != trace.KindSpan || e.Name != "net_send" {
			continue
		}
		if _, ok := firstSend[e.Lane]; ok {
			continue
		}
		firstSend[e.Lane] = e.Start
		end, ok := firstIntraEnd[e.Lane]
		if !ok {
			out = append(out, Violation{"leader-phase-order",
				fmt.Sprintf("lane %d: net_send at %.4f with no intra-node phase on the lane", e.Lane, e.Start)})
			continue
		}
		if e.Start < end && !reported[e.Lane] {
			reported[e.Lane] = true
			out = append(out, Violation{"leader-phase-order",
				fmt.Sprintf("lane %d: net_send at %.4f before the intra phase ends at %.4f", e.Lane, e.Start, end)})
		}
	}
	return out
}

// modelEnvelope is the accepted simulated/predicted latency ratio band
// for the closed forms. The forms are first-order (they ignore
// barrier/skew interleaving and socket placement of the root), so the
// band is deliberately generous: it catches order-of-magnitude breaks —
// a mis-costed path, a serialization bug, a dropped contention term —
// not fitting error.
const (
	modelEnvelopeLo = 1.0 / 4
	modelEnvelopeHi = 4.0
)

// checkModelConformance: when RunOne computed a closed-form prediction
// (fault-free, skew-free, kernel-assisted sizes only — see predictFor),
// the simulated latency must stay within the envelope of it.
func checkModelConformance(r *RunResult) []Violation {
	if r.Pred <= 0 || r.Latency <= 0 {
		return nil
	}
	ratio := r.Latency / r.Pred
	if ratio < modelEnvelopeLo || ratio > modelEnvelopeHi {
		return []Violation{{"model-conformance",
			fmt.Sprintf("%s/%s size %d procs %d: simulated %.2fus vs closed form %.2fus (ratio %.3f outside [%.2f, %.2f])",
				r.Spec.Kind, r.Spec.Algo, r.Spec.Count, r.Procs, r.Latency, r.Pred, ratio, modelEnvelopeLo, modelEnvelopeHi)}}
	}
	return nil
}

// orderEps absorbs float64 timestamp identity: events emitted in the
// same simulation step share a timestamp, so all the recovery-ordering
// checks use strict inequality with this slack.
const orderEps = 1e-9

// checkNoDeadTraffic: a kill is a panic out of the rank body, so death
// must be the last thing a rank's lane ever records. For every lane
// carrying a "rank_killed" instant at time T: no span or instant may
// start after T, and no message edge may leave the lane with a send
// timestamp after T. Counters and CatLock events are exempt — both
// attribute to the lane that owns the underlying resource (an mm-lock
// instant lands on the mm-owner's lane), and a survivor draining a
// dead rank's pages legitimately touches them after the death.
func checkNoDeadTraffic(r *RunResult) []Violation {
	if !r.Killed {
		return nil
	}
	deadAt := map[int]float64{}
	for _, e := range r.Rec.Events() {
		if e.Kind == trace.KindInstant && e.Name == "rank_killed" {
			if t, ok := deadAt[e.Lane]; !ok || e.Start < t {
				deadAt[e.Lane] = e.Start
			}
		}
	}
	if len(deadAt) == 0 {
		return nil
	}
	var out []Violation
	for _, e := range r.Rec.Events() {
		switch e.Kind {
		case trace.KindSpan, trace.KindInstant:
			if e.Cat == trace.CatLock {
				continue
			}
			if t, ok := deadAt[e.Lane]; ok && e.Start > t+orderEps {
				out = append(out, Violation{"no-dead-traffic",
					fmt.Sprintf("lane %d: %s at %.4f after the rank died at %.4f", e.Lane, e.Name, e.Start, t)})
			}
		case trace.KindEdge:
			if t, ok := deadAt[e.From]; ok && e.SendTs > t+orderEps {
				out = append(out, Violation{"no-dead-traffic",
					fmt.Sprintf("edge %s from dead lane %d to %d: sent at %.4f after the sender died at %.4f",
						e.Name, e.From, e.Lane, e.SendTs, t)})
			}
		}
	}
	return out
}

// checkReelectOrder: the recovery pipeline is detect -> agree ->
// shrink -> elect -> re-run, and the trace must show it in that order
// on every surviving lane. Per lane with a closed "elect" span: every
// closed "agree" span and every "shrink" instant precede the election,
// and every re-run collective ("hcoll:*:rerun") starts only after the
// election ends. The re-run itself always uses the two-level leader
// decomposition, so for gathering kinds the leader-phase ordering
// (first intra phase completes before the first network send inside
// the re-run window) must hold regardless of the attempt's design.
func checkReelectOrder(r *RunResult) []Violation {
	if !r.Killed || r.Spec.Nodes == 0 {
		return nil
	}
	type window struct{ start, end float64 }
	elect := map[int]window{}
	for _, e := range r.Rec.Events() {
		if e.Kind == trace.KindSpan && e.Cat == trace.CatLiveness && e.Name == "elect" && e.End >= e.Start {
			elect[e.Lane] = window{e.Start, e.End}
		}
	}
	if len(elect) == 0 {
		return nil
	}
	var out []Violation
	rerun := map[int]window{}
	for _, e := range r.Rec.Events() {
		w, ok := elect[e.Lane]
		if !ok {
			continue
		}
		switch {
		case e.Kind == trace.KindSpan && e.Name == "agree" && e.End >= e.Start:
			if e.End > w.start+orderEps {
				out = append(out, Violation{"reelect-order",
					fmt.Sprintf("lane %d: agreement ends at %.4f after the election started at %.4f", e.Lane, e.End, w.start)})
			}
		case e.Kind == trace.KindInstant && e.Name == "shrink":
			if e.Start > w.start+orderEps {
				out = append(out, Violation{"reelect-order",
					fmt.Sprintf("lane %d: shrink at %.4f after the election started at %.4f", e.Lane, e.Start, w.start)})
			}
		case e.Kind == trace.KindSpan && isRerunName(e.Name) && e.End >= e.Start:
			if e.Start < w.end-orderEps {
				out = append(out, Violation{"reelect-order",
					fmt.Sprintf("lane %d: re-run %s starts at %.4f before the election ended at %.4f", e.Lane, e.Name, e.Start, w.end)})
			}
			rerun[e.Lane] = window{e.Start, e.End}
		}
	}
	if !leaderGatheringKinds[r.Spec.Kind] {
		return out
	}
	// Leader-phase ordering inside each lane's re-run window, over
	// closed spans only (survivor lanes never abort inside the re-run,
	// but attempt-phase spans on the same lane must not leak in).
	firstIntraEnd := map[int]float64{}
	for _, e := range r.Rec.Events() {
		w, ok := rerun[e.Lane]
		if !ok || e.Kind != trace.KindSpan || e.End < e.Start || e.Start < w.start || e.End > w.end {
			continue
		}
		if e.Name == "h_intra" {
			if _, seen := firstIntraEnd[e.Lane]; !seen {
				firstIntraEnd[e.Lane] = e.End
			}
		}
	}
	firstSend := map[int]bool{}
	for _, e := range r.Rec.Events() {
		w, ok := rerun[e.Lane]
		if !ok || e.Kind != trace.KindSpan || e.Name != "net_send" || e.End < e.Start ||
			e.Start < w.start || e.End > w.end || firstSend[e.Lane] {
			continue
		}
		firstSend[e.Lane] = true
		if end, seen := firstIntraEnd[e.Lane]; seen && e.Start < end-orderEps {
			out = append(out, Violation{"reelect-order",
				fmt.Sprintf("lane %d: re-run net_send at %.4f before the re-run intra phase ends at %.4f", e.Lane, e.Start, end)})
		}
	}
	return out
}

// isRerunName matches the "hcoll:<kind>:rerun" wrapper span names.
func isRerunName(name string) bool {
	const prefix, suffix = "hcoll:", ":rerun"
	return len(name) > len(prefix)+len(suffix) &&
		name[:len(prefix)] == prefix && name[len(name)-len(suffix):] == suffix
}

// checkShrinkResidue: after a shrink the survivors drain the fabric, so
// anything still sitting in a flow queue must have been addressed to a
// rank the survivors agreed dead — residue targeting a live rank means
// a message the re-run should have consumed but didn't.
func checkShrinkResidue(r *RunResult) []Violation {
	if len(r.Residue) == 0 {
		return nil
	}
	dead := map[int]bool{}
	if r.Recovery != nil {
		for _, f := range r.Recovery.Failed {
			dead[f] = true
		}
	}
	var out []Violation
	for _, res := range r.Residue {
		if !dead[res.To] {
			out = append(out, Violation{"shrink-residue",
				fmt.Sprintf("flow %d->%d: %d msgs (%d bytes) undrained but rank %d was never agreed dead",
					res.From, res.To, res.Msgs, res.Bytes, res.To)})
		}
	}
	return out
}
