// Package arch defines the architecture profiles the paper evaluates on:
// Intel Xeon Broadwell, Intel Knights Landing (KNL), and IBM Power8.
//
// A Profile carries both the hardware description (Table V of the paper)
// and the kernel-assisted-copy cost-model parameters (Table IV): the
// per-message startup cost α, the per-byte transfer time β, the per-page
// lock+pin time l, the page size s, and the contention factor γ(c) that
// inflates per-page locking when c processes concurrently access the same
// source process's address space.
//
// The α/β/l/s values are the paper's measured constants. The γ(c) curve
// coefficients and the aggregate-bandwidth ceilings are calibrated: the
// available text of the paper garbles those digits, so they were chosen
// to reproduce the published *shapes* — the Fig 5 γ curves (smooth
// super-linear growth on the single-socket KNL, a visible jump past the
// socket boundary on Broadwell c>14 and Power8 c>10), the Fig 6
// relative-throughput sweet spots (k≈4–8 on KNL, k≈4 on Broadwell,
// k≈10 on Power8), and the ~2x maximum relative throughput on Broadwell.
package arch

import "fmt"

// Profile describes one node architecture: topology, memory system, and
// CMA cost-model parameters.
type Profile struct {
	Name    string // short id: "knl", "broadwell", "power8"
	Display string // human-readable, e.g. "Intel Xeon Phi 7250 (KNL)"

	// Topology (Table V).
	Sockets        int
	CoresPerSocket int
	ThreadsPerCore int
	DefaultProcs   int     // full-subscription process count used in the paper
	ClockGHz       float64 // informational
	RAMGB          int     // informational
	Interconnect   string  // informational (multi-node experiments)

	// CMA cost model (Table IV). Times in microseconds.
	Alpha        float64 // startup: syscall entry + permission check
	SyscallFrac  float64 // fraction of Alpha that is raw syscall entry (rest: permission check)
	BandwidthBps float64 // single-stream copy bandwidth, bytes/second (β = 1/bandwidth)
	LockPin      float64 // l: lock + pin one page, no contention (us)
	LockFrac     float64 // fraction of l spent in the contended mm-lock acquire (rest: pin)
	PageSize     int     // s: bytes per page

	// Contention factor γ(c) = 1 for c <= 1, and for c >= 2:
	//   γ(c) = GammaBase + GammaLin·c + GammaQuad·c²
	//          + GammaJump·max(0, c − CoresPerSocket·ThreadsPerCore_used)
	// where the jump models cross-socket mm-lock cache-line bouncing once
	// the concurrent lockers necessarily span sockets.
	GammaBase float64
	GammaLin  float64
	GammaQuad float64
	GammaJump float64

	// SocketBoundary is the concurrency past which lockers necessarily
	// span sockets (= hardware threads per socket available to ranks).
	SocketBoundary int

	// InterSocketBW multiplies the per-byte copy time for cross-socket
	// transfers (>1 means slower). 1.0 on single-socket machines.
	InterSocketBW float64

	// AggBandwidthBps caps the node's aggregate concurrent-copy
	// bandwidth (bytes/second); concurrent copies share it
	// processor-sharing style.
	AggBandwidthBps float64

	// Shared-memory (two-copy) transport parameters.
	ShmCellSize     int     // bytes per pipelined copy cell
	ShmCellOverhead float64 // per-cell bookkeeping cost (us)
	ShmLatency      float64 // one-way small-message latency (us)
	MemCopyBps      float64 // plain user-space memcpy bandwidth, bytes/second
	// ShmCopyBps is the per-side copy rate through the shared bounce
	// buffers (cache-cold, so below MemCopyBps); each byte is copied
	// twice at this rate, which is why kernel-assisted single copies win
	// for large messages.
	ShmCopyBps float64
}

// Beta returns the per-byte transfer time in microseconds.
func (p *Profile) Beta() float64 { return 1.0 / (p.BandwidthBps / 1e6) }

// MemCopyBeta returns the per-byte user-space memcpy time in microseconds.
func (p *Profile) MemCopyBeta() float64 { return 1.0 / (p.MemCopyBps / 1e6) }

// ShmCopyBeta returns the per-byte bounce-buffer copy time in
// microseconds (paid once per side of a shared-memory transfer).
func (p *Profile) ShmCopyBeta() float64 { return 1.0 / (p.ShmCopyBps / 1e6) }

// AggBandwidth returns the aggregate copy ceiling in bytes per microsecond.
func (p *Profile) AggBandwidth() float64 { return p.AggBandwidthBps / 1e6 }

// Gamma returns the contention factor for c concurrent readers/writers on
// one source process. Gamma(1) == 1 by definition (l is the uncontended
// per-page cost).
func (p *Profile) Gamma(c int) float64 {
	if c <= 1 {
		return 1
	}
	g := p.GammaBase + p.GammaLin*float64(c) + p.GammaQuad*float64(c)*float64(c)
	if c > p.SocketBoundary {
		g += p.GammaJump * float64(c-p.SocketBoundary)
	}
	if g < 1 {
		g = 1
	}
	return g
}

// Pages returns the number of s-sized pages spanned by n bytes.
func (p *Profile) Pages(n int) int {
	if n <= 0 {
		return 0
	}
	return (n + p.PageSize - 1) / p.PageSize
}

// HWThreads returns the total hardware threads on the node.
func (p *Profile) HWThreads() int { return p.Sockets * p.CoresPerSocket * p.ThreadsPerCore }

// RankSocket maps rank r of an nprocs-rank job to its socket under block
// placement (ranks fill socket 0 first), matching how the paper pins
// processes (Ring-Neighbor-1 stays mostly intra-socket; Neighbor-5 on a
// 2x14 Broadwell crosses sockets for most pairs).
func (p *Profile) RankSocket(rank, nprocs int) int {
	if p.Sockets == 1 || nprocs <= 0 {
		return 0
	}
	perSocket := (nprocs + p.Sockets - 1) / p.Sockets
	s := rank / perSocket
	if s >= p.Sockets {
		s = p.Sockets - 1
	}
	return s
}

// KNL returns the Intel Xeon Phi 7250 (Knights Landing) profile:
// 68 cores, single socket, MCDRAM, 64 ranks used, 4 KiB pages.
func KNL() *Profile {
	return &Profile{
		Name:           "knl",
		Display:        "Intel Xeon Phi 7250 (Knights Landing)",
		Sockets:        1,
		CoresPerSocket: 68,
		ThreadsPerCore: 4,
		DefaultProcs:   64,
		ClockGHz:       1.4,
		RAMGB:          96,
		Interconnect:   "Omni-Path (100G)",

		Alpha:        1.43,
		SyscallFrac:  0.35,
		BandwidthBps: 3.29e9,
		LockPin:      0.25,
		LockFrac:     0.6,
		PageSize:     4096,

		// γ(c) ≈ 0.15c² + 0.6c (Table IV's KNL entry reads ~"0.1c²+1.6c"
		// through the OCR noise; coefficients are calibrated so that 64
		// concurrent readers fall *below* single-reader aggregate
		// throughput at 4 MiB — the Fig 6a/7a behaviour that makes
		// fully-parallel reads lose to sequential writes — while the
		// per-size relative-throughput maximum lands at 8 readers).
		GammaBase:      0,
		GammaLin:       0.6,
		GammaQuad:      0.15,
		GammaJump:      0,
		SocketBoundary: 68 * 4,
		InterSocketBW:  1,

		// MCDRAM-cached DDR: ~18 concurrent CMA streams before the node
		// ceiling binds. The Fig 6a relative-throughput peak (~3.5x at 8
		// readers, above Broadwell's ~2.6x) comes from γ, not the
		// ceiling.
		AggBandwidthBps: 60e9,

		ShmCellSize:     8192,
		ShmCellOverhead: 0.25,
		ShmLatency:      0.45,
		MemCopyBps:      4.2e9,
		ShmCopyBps:      1.8e9,
	}
}

// Broadwell returns the 2-socket Intel Xeon E5-2680 v4 profile:
// 2 x 14 cores, DDR4, 28 ranks used, 4 KiB pages.
func Broadwell() *Profile {
	return &Profile{
		Name:           "broadwell",
		Display:        "Intel Xeon E5-2680 v4 (Broadwell)",
		Sockets:        2,
		CoresPerSocket: 14,
		ThreadsPerCore: 1,
		DefaultProcs:   28,
		ClockGHz:       2.4,
		RAMGB:          128,
		Interconnect:   "InfiniBand EDR (100G)",

		Alpha:        0.98,
		SyscallFrac:  0.35,
		BandwidthBps: 3.2e9,
		LockPin:      0.10,
		LockFrac:     0.6,
		PageSize:     4096,

		// γ(c) ≈ c² with an extra jump past c=14 (Fig 5b): cross-socket
		// mm-lock bouncing on the 2-socket node. The strong quadratic is
		// what keeps Broadwell's reader-count throughput spread to "only
		// about 2x" (Fig 6b) with the sweet spot at 4 concurrent readers
		// — the published Broadwell throttle factor.
		GammaBase:      0,
		GammaLin:       0,
		GammaQuad:      1.0,
		GammaJump:      12,
		SocketBoundary: 14,
		InterSocketBW:  1.45,

		// DDR4, two sockets: ~12 concurrent CMA streams at full rate.
		AggBandwidthBps: 40e9,

		ShmCellSize:     8192,
		ShmCellOverhead: 0.12,
		ShmLatency:      0.25,
		MemCopyBps:      5.5e9,
		ShmCopyBps:      2.6e9,
	}
}

// Power8 returns the IBM Power8 PPC64LE profile: 2 x 10 cores, SMT8
// (160 hardware threads, all subscribed), 64 KiB pages.
func Power8() *Profile {
	return &Profile{
		Name:           "power8",
		Display:        "IBM Power8 (PPC64LE)",
		Sockets:        2,
		CoresPerSocket: 10,
		ThreadsPerCore: 8,
		DefaultProcs:   160,
		ClockGHz:       3.4,
		RAMGB:          256,
		Interconnect:   "InfiniBand EDR (100G)",

		Alpha:        0.75,
		SyscallFrac:  0.35,
		BandwidthBps: 3.7e9,
		LockPin:      0.53,
		LockFrac:     0.6,
		PageSize:     65536,

		// γ(c) ≈ 0.04c², near-flat at low concurrency (64 KiB pages mean
		// few locks anyway) with a jump past c=10 when the lockers span
		// the two sockets (Fig 5c) — which is why throttle factor 10 is
		// the Power8 sweet spot.
		GammaBase:      0.5,
		GammaLin:       0,
		GammaQuad:      0.04,
		GammaJump:      6,
		SocketBoundary: 10,
		InterSocketBW:  1.3,

		// Power8's large system bandwidth (the paper's explanation for
		// why high-concurrency algorithms keep winning, Fig 6c): ~32
		// concurrent CMA streams before the ceiling binds.
		AggBandwidthBps: 120e9,

		ShmCellSize:     16384,
		ShmCellOverhead: 0.15,
		ShmLatency:      0.30,
		MemCopyBps:      6.0e9,
		ShmCopyBps:      3.0e9,
	}
}

// All returns the three paper architectures in presentation order.
func All() []*Profile {
	return []*Profile{KNL(), Broadwell(), Power8()}
}

// ByName returns the profile with the given short name.
func ByName(name string) (*Profile, error) {
	for _, p := range All() {
		if p.Name == name {
			return p, nil
		}
	}
	return nil, fmt.Errorf("arch: unknown architecture %q (want knl, broadwell, or power8)", name)
}
