package arch

import (
	"math"
	"testing"
	"testing/quick"
)

func TestByName(t *testing.T) {
	for _, name := range []string{"knl", "broadwell", "power8"} {
		p, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if p.Name != name {
			t.Fatalf("ByName(%q).Name = %q", name, p.Name)
		}
	}
	if _, err := ByName("skylake"); err == nil {
		t.Fatal("ByName(skylake) should fail")
	}
}

func TestTableIVConstants(t *testing.T) {
	// The paper's Table IV measured values must be encoded exactly.
	tests := []struct {
		p        *Profile
		alpha, l float64
		page     int
	}{
		{KNL(), 1.43, 0.25, 4096},
		{Broadwell(), 0.98, 0.10, 4096},
		{Power8(), 0.75, 0.53, 65536},
	}
	for _, tt := range tests {
		if tt.p.Alpha != tt.alpha {
			t.Errorf("%s alpha = %g, want %g", tt.p.Name, tt.p.Alpha, tt.alpha)
		}
		if tt.p.LockPin != tt.l {
			t.Errorf("%s l = %g, want %g", tt.p.Name, tt.p.LockPin, tt.l)
		}
		if tt.p.PageSize != tt.page {
			t.Errorf("%s page = %d, want %d", tt.p.Name, tt.p.PageSize, tt.page)
		}
	}
}

func TestGammaBaseline(t *testing.T) {
	for _, p := range All() {
		if g := p.Gamma(0); g != 1 {
			t.Errorf("%s Gamma(0) = %g, want 1", p.Name, g)
		}
		if g := p.Gamma(1); g != 1 {
			t.Errorf("%s Gamma(1) = %g, want 1", p.Name, g)
		}
	}
}

func TestGammaMonotone(t *testing.T) {
	for _, p := range All() {
		prev := p.Gamma(1)
		for c := 2; c <= p.DefaultProcs; c++ {
			g := p.Gamma(c)
			if g < prev {
				t.Fatalf("%s Gamma not monotone at c=%d: %g < %g", p.Name, c, g, prev)
			}
			prev = g
		}
	}
}

func TestGammaSuperlinearOnKNL(t *testing.T) {
	// Fig 7a: fully parallel reads lose to p-1 sequential steps at large
	// sizes, which requires Gamma(63) > 63 by a wide margin.
	p := KNL()
	if g := p.Gamma(63); g < 4*63 {
		t.Fatalf("KNL Gamma(63) = %g, want > %d for parallel reads to lose", g, 4*63)
	}
}

func TestGammaSocketJump(t *testing.T) {
	// Fig 5b/5c: a visible slope increase past the socket boundary on the
	// two-socket machines, none on the single-socket KNL.
	for _, tt := range []struct {
		p        *Profile
		boundary int
	}{{Broadwell(), 14}, {Power8(), 10}} {
		b := tt.boundary
		inside := tt.p.Gamma(b) - tt.p.Gamma(b-1)
		outside := tt.p.Gamma(b+2) - tt.p.Gamma(b+1)
		if outside <= inside*1.5 {
			t.Errorf("%s: slope after boundary %g not clearly above slope before %g", tt.p.Name, outside, inside)
		}
	}
	// KNL's curve grows smoothly (quadratic): the slope increment per
	// step stays constant at 2·GammaQuad with no discontinuity.
	knl := KNL()
	for c := 3; c < 64; c++ {
		d1 := knl.Gamma(c+1) - knl.Gamma(c)
		d0 := knl.Gamma(c) - knl.Gamma(c-1)
		if d1-d0 > 2*knl.GammaQuad+1e-9 {
			t.Errorf("KNL slope discontinuity at c=%d: %g -> %g", c, d0, d1)
		}
	}
}

func TestPages(t *testing.T) {
	p := KNL()
	tests := []struct{ n, want int }{
		{0, 0}, {-5, 0}, {1, 1}, {4095, 1}, {4096, 1}, {4097, 2}, {1 << 20, 256},
	}
	for _, tt := range tests {
		if got := p.Pages(tt.n); got != tt.want {
			t.Errorf("Pages(%d) = %d, want %d", tt.n, got, tt.want)
		}
	}
	p8 := Power8()
	if got := p8.Pages(1 << 20); got != 16 {
		t.Errorf("Power8 Pages(1M) = %d, want 16", got)
	}
}

func TestBetaConsistency(t *testing.T) {
	p := KNL()
	// 3.29 GB/s -> per-byte time in us
	want := 1e6 / 3.29e9
	if math.Abs(p.Beta()-want) > 1e-12 {
		t.Fatalf("Beta = %g, want %g", p.Beta(), want)
	}
}

func TestRankSocketBlockPlacement(t *testing.T) {
	bdw := Broadwell()
	for r := 0; r < 14; r++ {
		if s := bdw.RankSocket(r, 28); s != 0 {
			t.Fatalf("rank %d socket = %d, want 0", r, s)
		}
	}
	for r := 14; r < 28; r++ {
		if s := bdw.RankSocket(r, 28); s != 1 {
			t.Fatalf("rank %d socket = %d, want 1", r, s)
		}
	}
	knl := KNL()
	if s := knl.RankSocket(63, 64); s != 0 {
		t.Fatalf("KNL socket = %d, want 0", s)
	}
}

func TestRankSocketInRange(t *testing.T) {
	f := func(rank uint8, nprocs uint8) bool {
		if nprocs == 0 {
			return true
		}
		r := int(rank) % int(nprocs)
		for _, p := range All() {
			s := p.RankSocket(r, int(nprocs))
			if s < 0 || s >= p.Sockets {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestProfileSanity(t *testing.T) {
	for _, p := range All() {
		if p.DefaultProcs > p.HWThreads() {
			t.Errorf("%s: DefaultProcs %d > hardware threads %d", p.Name, p.DefaultProcs, p.HWThreads())
		}
		if p.AggBandwidthBps < p.BandwidthBps {
			t.Errorf("%s: aggregate bandwidth below single-stream", p.Name)
		}
		if p.LockFrac <= 0 || p.LockFrac >= 1 {
			t.Errorf("%s: LockFrac %g out of (0,1)", p.Name, p.LockFrac)
		}
		if p.SyscallFrac <= 0 || p.SyscallFrac >= 1 {
			t.Errorf("%s: SyscallFrac %g out of (0,1)", p.Name, p.SyscallFrac)
		}
		if p.InterSocketBW < 1 {
			t.Errorf("%s: InterSocketBW %g < 1", p.Name, p.InterSocketBW)
		}
		if p.Sockets == 1 && p.InterSocketBW != 1 {
			t.Errorf("%s: single socket but InterSocketBW %g", p.Name, p.InterSocketBW)
		}
	}
}
