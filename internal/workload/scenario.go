// Package workload generates multi-tenant scenarios: several MPI jobs
// of different character co-located on one simulated machine,
// interfering through the shared kernel mm-lock model (internal/tenant)
// and the shared memory system rather than through explicit messages.
// This is the workload side of the paper's contention story — the γ(c)
// curve was calibrated on one job, and these scenarios show what it
// costs when the "c" is partly somebody else's.
package workload

import (
	"fmt"
	"sort"

	"camc/internal/arch"
	"camc/internal/core"
	"camc/internal/kernel"
	"camc/internal/mpi"
	"camc/internal/sim"
	"camc/internal/tenant"
	"camc/internal/trace"
)

// Class names a job's communication character.
type Class string

const (
	// ClassTrain is an allreduce-heavy training loop: per iteration one
	// large tuned reduce to rank 0 followed by a tuned bcast of the
	// updated model (the classic parameter-server allreduce split).
	ClassTrain Class = "train"
	// ClassStencil is a halo-exchange stencil: per iteration every rank
	// exchanges medium-sized boundary slabs with its ring neighbours
	// (rendezvous point-to-point, so the halos ride the kernel-assisted
	// CMA path and feel the lock).
	ClassStencil Class = "stencil"
	// ClassRPC is a bursty service: streams of many small collectives
	// (tiny bcast fan-outs and gathers) that mostly ride the eager
	// shared-memory path but keep the copy engines busy.
	ClassRPC Class = "rpc"
)

// defaultSize is the class's characteristic message size.
func (c Class) defaultSize() int64 {
	switch c {
	case ClassTrain:
		return 256 << 10
	case ClassStencil:
		return 32 << 10
	case ClassRPC:
		return 2 << 10
	}
	panic(fmt.Sprintf("workload: unknown class %q", c))
}

// opsPerIter is how many timed collective windows one iteration runs.
func (c Class) opsPerIter() int {
	switch c {
	case ClassTrain:
		return 2 // reduce + bcast
	case ClassStencil:
		return 1 // one halo exchange
	case ClassRPC:
		return 2 // bcast + gather
	}
	panic(fmt.Sprintf("workload: unknown class %q", c))
}

// JobSpec describes one co-located job.
type JobSpec struct {
	Name  string
	Class Class
	Ranks int
	Iters int
	Size  int64 // characteristic message size; 0 = class default
}

func (j JobSpec) withDefaults(a *arch.Profile) JobSpec {
	if j.Ranks == 0 {
		j.Ranks = a.DefaultProcs / 2
		if j.Ranks < 2 {
			j.Ranks = 2
		}
	}
	if j.Iters == 0 {
		j.Iters = 4
	}
	if j.Size == 0 {
		j.Size = j.Class.defaultSize()
	}
	return j
}

// Options configures a scenario run.
type Options struct {
	Arch *arch.Profile
	// Ambient is additional static background pressure (tenant.Host
	// Static holders) on top of whatever the co-located jobs generate.
	Ambient int
	// Trace, when non-nil, records every job onto one recorder; lanes
	// are world-unique (job index × laneStride + rank).
	Trace *trace.Recorder
	// MemPerProc overrides the per-rank address-space size.
	MemPerProc int64
}

// laneStride separates jobs' trace-lane id ranges.
const laneStride = 1 << 12

// JobResult is one job's outcome.
type JobResult struct {
	Name  string
	Class Class
	Ranks int
	Ops   int     // timed collective windows completed
	End   float64 // virtual time the job's last rank finished, us
	// MeanLat is the mean per-operation latency (us), measured exactly
	// like the benchmarks: last-in to last-out per barrier-fenced window.
	MeanLat float64
	// PeakAmbient is the largest co-tenant lock pressure any of the
	// job's transfers observed (other jobs' holders + static).
	PeakAmbient int
}

// Result is one scenario's outcome.
type Result struct {
	Makespan float64 // virtual time the whole mix drained, us
	Jobs     []JobResult
}

// DefaultMix is the canonical three-tenant scenario: a training loop, a
// halo-exchange stencil and a bursty RPC stream sharing one machine.
func DefaultMix(ranksPerJob, iters int) []JobSpec {
	return []JobSpec{
		{Name: "train", Class: ClassTrain, Ranks: ranksPerJob, Iters: iters},
		{Name: "stencil", Class: ClassStencil, Ranks: ranksPerJob, Iters: iters * 2},
		{Name: "rpc", Class: ClassRPC, Ranks: ranksPerJob, Iters: iters * 4},
	}
}

// Run executes the jobs concurrently on one simulated machine. Every
// job gets its own kernel node (own page tables, own shm segment — the
// jobs are separate MPI worlds) registered with one shared tenant
// host, so their kernel-assisted transfers contend for the same
// mm-lock model and memory system. Deterministic: same specs + options
// produce bit-identical results and traces.
func Run(specs []JobSpec, opts Options) (Result, error) {
	if opts.Arch == nil {
		opts.Arch = arch.KNL()
	}
	if len(specs) == 0 {
		return Result{}, fmt.Errorf("workload: empty scenario")
	}
	mem := opts.MemPerProc
	if mem == 0 {
		mem = 1 << 30
	}
	names := map[string]bool{}
	s := sim.New()
	host := tenant.NewHost()
	host.Static = opts.Ambient

	type runningJob struct {
		spec   JobSpec
		comm   *mpi.Comm
		job    *tenant.Job
		starts []float64
		ends   []float64
		res    *JobResult
	}
	var jobs []*runningJob
	for i, spec := range specs {
		spec = spec.withDefaults(opts.Arch)
		if spec.Name == "" {
			spec.Name = fmt.Sprintf("%s%d", spec.Class, i)
		}
		if names[spec.Name] {
			return Result{}, fmt.Errorf("workload: duplicate job name %q", spec.Name)
		}
		names[spec.Name] = true
		spec.Class.defaultSize() // validates the class
		node := kernel.NewNode(s, opts.Arch)
		node.CopyData = false
		// Distinct pid ranges per job keep kernel trace events on
		// distinct lanes when all jobs share one recorder.
		node.PidBase = (i + 1) << 20
		node.SetTenant(host.Join(spec.Name))
		comm := mpi.NewOnNode(node, spec.Ranks, mem)
		if opts.Trace != nil {
			node.SetRecorder(opts.Trace)
			lanes := make([]int, spec.Ranks)
			for r := 0; r < spec.Ranks; r++ {
				lane := i*laneStride + r
				opts.Trace.RegisterLane(lane, fmt.Sprintf("%s.r%d", spec.Name, r), comm.Rank(r).OS.PID())
				lanes[r] = lane
			}
			comm.Shm.SetLanes(lanes)
		}
		jobs = append(jobs, &runningJob{
			spec:   spec,
			comm:   comm,
			job:    node.Tenant(),
			starts: make([]float64, spec.Ranks),
			ends:   make([]float64, spec.Ranks),
			res:    &JobResult{Name: spec.Name, Class: spec.Class, Ranks: spec.Ranks},
		})
	}

	for _, j := range jobs {
		j := j
		spec := j.spec
		blocks := int64(spec.Ranks)
		send := make([]kernel.Addr, spec.Ranks)
		recv := make([]kernel.Addr, spec.Ranks)
		for r := 0; r < spec.Ranks; r++ {
			// Generous virtual sizing covers every class's largest shape
			// (gather/allgather need p blocks); pages never materialize.
			send[r] = j.comm.Rank(r).Alloc(blocks * spec.Size)
			recv[r] = j.comm.Rank(r).Alloc(blocks * spec.Size)
		}
		var totalLat float64
		// window runs one barrier-fenced collective window and, on rank
		// 0, accumulates the last-in to last-out latency — the same
		// timing discipline internal/measure uses.
		window := func(r *mpi.Rank, op func()) {
			r.Barrier()
			j.starts[r.ID] = r.SP.Now()
			op()
			j.ends[r.ID] = r.SP.Now()
			r.Barrier()
			if r.ID == 0 {
				totalLat += maxOf(j.ends) - maxOf(j.starts)
				j.res.Ops++
			}
		}
		j.comm.Start(func(r *mpi.Rank) {
			args := core.Args{Send: send[r.ID], Recv: recv[r.ID], Count: spec.Size, Root: 0}
			for it := 0; it < spec.Iters; it++ {
				switch spec.Class {
				case ClassTrain:
					window(r, func() { core.TunedReduce(r, args) })
					window(r, func() { core.TunedBcast(r, args) })
				case ClassStencil:
					next := (r.ID + 1) % spec.Ranks
					prev := (r.ID + spec.Ranks - 1) % spec.Ranks
					window(r, func() {
						r.Sendrecv(next, send[r.ID], spec.Size, prev, recv[r.ID], spec.Size)
					})
				case ClassRPC:
					window(r, func() { core.TunedBcast(r, args) })
					small := args
					small.Count = spec.Size / 2
					if small.Count == 0 {
						small.Count = 1
					}
					window(r, func() { core.TunedGather(r, small) })
				}
			}
			if r.ID == 0 {
				j.res.MeanLat = totalLat / float64(j.res.Ops)
			}
			end := r.SP.Now()
			if end > j.res.End {
				j.res.End = end
			}
		})
	}
	if err := s.Run(); err != nil {
		return Result{}, err
	}
	res := Result{Makespan: s.Now()}
	for _, j := range jobs {
		j.res.PeakAmbient = j.job.PeakAmbient()
		res.Jobs = append(res.Jobs, *j.res)
	}
	return res, nil
}

// Solo runs one spec alone on an otherwise idle machine (same static
// ambient), for interference comparisons against the co-located run.
func Solo(spec JobSpec, opts Options) (JobResult, error) {
	res, err := Run([]JobSpec{spec}, opts)
	if err != nil {
		return JobResult{}, err
	}
	return res.Jobs[0], nil
}

// Fprint renders a scenario result as a fixed-width table, jobs in
// name order.
func (res Result) Fprint(w interface{ Write([]byte) (int, error) }) {
	jobs := append([]JobResult(nil), res.Jobs...)
	sort.Slice(jobs, func(i, k int) bool { return jobs[i].Name < jobs[k].Name })
	fmt.Fprintf(w, "%-10s %-8s %6s %6s %12s %12s %8s\n",
		"job", "class", "ranks", "ops", "mean-op(us)", "end(us)", "peak-amb")
	for _, j := range jobs {
		fmt.Fprintf(w, "%-10s %-8s %6d %6d %12.2f %12.2f %8d\n",
			j.Name, j.Class, j.Ranks, j.Ops, j.MeanLat, j.End, j.PeakAmbient)
	}
	fmt.Fprintf(w, "makespan %.2f us\n", res.Makespan)
}

func maxOf(v []float64) float64 {
	m := v[0]
	for _, x := range v[1:] {
		if x > m {
			m = x
		}
	}
	return m
}
