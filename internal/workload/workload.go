// Package workload generates the synthetic XSEDE-style job trace behind
// the paper's motivation (Fig 1): across three years of cluster usage,
// jobs using one or a few nodes dominate both the submission count and
// the total CPU hours consumed — which is why intra-node collective
// performance matters.
//
// The generator draws job node-counts from a discretized log-normal
// (small jobs overwhelmingly common, a long thin tail of capability
// runs), walltimes from a size-correlated log-normal, and buckets the
// results the way the XDMoD plots the paper cites do.
package workload

import (
	"math"
	"math/rand"
)

// Job is one submitted batch job.
type Job struct {
	Nodes        int
	CoresPerNode int
	Hours        float64
}

// CPUHours returns nodes × cores × walltime.
func (j Job) CPUHours() float64 { return float64(j.Nodes*j.CoresPerNode) * j.Hours }

// Config tunes the synthetic trace.
type Config struct {
	Jobs         int     // number of jobs; 0 = 1e6
	Seed         int64   // RNG seed
	CoresPerNode int     // 0 = 28
	MaxNodes     int     // 0 = 4096
	Mu           float64 // log-normal location of node count; 0 = 0.35
	Sigma        float64 // log-normal scale of node count; 0 = 1.1
}

func (c Config) withDefaults() Config {
	if c.Jobs == 0 {
		c.Jobs = 1_000_000
	}
	if c.CoresPerNode == 0 {
		c.CoresPerNode = 28
	}
	if c.MaxNodes == 0 {
		c.MaxNodes = 4096
	}
	if c.Mu == 0 {
		c.Mu = 0.35
	}
	if c.Sigma == 0 {
		c.Sigma = 1.1
	}
	return c
}

// Generate produces the synthetic trace.
func Generate(cfg Config) []Job {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	jobs := make([]Job, cfg.Jobs)
	for i := range jobs {
		n := int(math.Exp(cfg.Mu + cfg.Sigma*rng.NormFloat64()))
		if n < 1 {
			n = 1
		}
		if n > cfg.MaxNodes {
			n = cfg.MaxNodes
		}
		// Bigger jobs run somewhat longer, with heavy dispersion.
		hours := math.Exp(0.5+0.25*math.Log(float64(n))+0.9*rng.NormFloat64()) / 2
		if hours > 48 {
			hours = 48
		}
		jobs[i] = Job{Nodes: n, CoresPerNode: cfg.CoresPerNode, Hours: hours}
	}
	return jobs
}

// Buckets are the node-count bins the XDMoD plots use.
var Buckets = []struct {
	Label    string
	Min, Max int
}{
	{"1", 1, 1},
	{"2", 2, 2},
	{"3-4", 3, 4},
	{"5-8", 5, 8},
	{"9-16", 9, 16},
	{"17-32", 17, 32},
	{"33-64", 33, 64},
	{"65-128", 65, 128},
	{"129+", 129, 1 << 30},
}

// Histogram summarizes a trace into the Fig 1 series: job counts and CPU
// hours per node-count bucket.
type Histogram struct {
	Labels   []string
	JobCount []int
	CPUHours []float64
}

// Summarize buckets the jobs.
func Summarize(jobs []Job) Histogram {
	h := Histogram{}
	counts := make([]int, len(Buckets))
	hours := make([]float64, len(Buckets))
	for _, j := range jobs {
		for bi, b := range Buckets {
			if j.Nodes >= b.Min && j.Nodes <= b.Max {
				counts[bi]++
				hours[bi] += j.CPUHours()
				break
			}
		}
	}
	for bi, b := range Buckets {
		h.Labels = append(h.Labels, b.Label)
		h.JobCount = append(h.JobCount, counts[bi])
		h.CPUHours = append(h.CPUHours, hours[bi])
	}
	return h
}

// SmallJobShare returns the fraction of jobs and of CPU hours consumed
// by jobs of at most maxNodes nodes (the paper's "jobs with one or a few
// nodes (≤9) account for the lion's share" claim).
func SmallJobShare(jobs []Job, maxNodes int) (jobFrac, hourFrac float64) {
	var nSmall int
	var hSmall, hTotal float64
	for _, j := range jobs {
		h := j.CPUHours()
		hTotal += h
		if j.Nodes <= maxNodes {
			nSmall++
			hSmall += h
		}
	}
	if len(jobs) == 0 || hTotal == 0 {
		return 0, 0
	}
	return float64(nSmall) / float64(len(jobs)), hSmall / hTotal
}
