package workload

import (
	"testing"
	"testing/quick"
)

func TestGenerateCount(t *testing.T) {
	jobs := Generate(Config{Jobs: 10_000, Seed: 1})
	if len(jobs) != 10_000 {
		t.Fatalf("generated %d jobs", len(jobs))
	}
	for _, j := range jobs {
		if j.Nodes < 1 || j.Hours <= 0 || j.CoresPerNode != 28 {
			t.Fatalf("bad job %+v", j)
		}
	}
}

func TestSmallJobsDominate(t *testing.T) {
	// The Fig 1 claim: jobs of <= 9 nodes dominate submissions AND total
	// CPU hours on XSEDE-like traces.
	jobs := Generate(Config{Jobs: 200_000, Seed: 42})
	jobFrac, hourFrac := SmallJobShare(jobs, 9)
	if jobFrac < 0.85 {
		t.Fatalf("small-job submission share %.2f, want > 0.85", jobFrac)
	}
	if hourFrac < 0.5 {
		t.Fatalf("small-job CPU-hour share %.2f, want > 0.5", hourFrac)
	}
}

func TestHistogramConserves(t *testing.T) {
	jobs := Generate(Config{Jobs: 50_000, Seed: 7})
	h := Summarize(jobs)
	var n int
	var hours, total float64
	for i := range h.Labels {
		n += h.JobCount[i]
		hours += h.CPUHours[i]
	}
	for _, j := range jobs {
		total += j.CPUHours()
	}
	if n != len(jobs) {
		t.Fatalf("histogram drops jobs: %d vs %d", n, len(jobs))
	}
	if diff := hours - total; diff > 1e-6*total || diff < -1e-6*total {
		t.Fatalf("histogram CPU hours %.0f vs trace %.0f", hours, total)
	}
}

func TestHistogramMonotoneDecline(t *testing.T) {
	// Job counts decline across the first few buckets (the published
	// shape).
	h := Summarize(Generate(Config{Jobs: 300_000, Seed: 3}))
	for i := 0; i+1 < 4; i++ {
		if h.JobCount[i] < h.JobCount[i+1] {
			t.Fatalf("bucket %s (%d) below bucket %s (%d)", h.Labels[i], h.JobCount[i], h.Labels[i+1], h.JobCount[i+1])
		}
	}
}

func TestDeterministicBySeed(t *testing.T) {
	f := func(seed int64) bool {
		a := Generate(Config{Jobs: 500, Seed: seed})
		b := Generate(Config{Jobs: 500, Seed: seed})
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestSmallJobShareEdgeCases(t *testing.T) {
	if j, h := SmallJobShare(nil, 9); j != 0 || h != 0 {
		t.Fatal("empty trace should return zeros")
	}
}

func TestMaxNodesClamp(t *testing.T) {
	jobs := Generate(Config{Jobs: 100_000, Seed: 9, MaxNodes: 64})
	for _, j := range jobs {
		if j.Nodes > 64 {
			t.Fatalf("node count %d above clamp", j.Nodes)
		}
	}
}
