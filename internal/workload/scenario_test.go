package workload

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"camc/internal/arch"
	"camc/internal/trace"
)

func TestColocationInterferes(t *testing.T) {
	a := arch.KNL()
	mix := DefaultMix(16, 2)
	co, err := Run(mix, Options{Arch: a})
	if err != nil {
		t.Fatal(err)
	}
	if len(co.Jobs) != 3 {
		t.Fatalf("jobs %d, want 3", len(co.Jobs))
	}
	for _, spec := range mix {
		solo, err := Solo(spec, Options{Arch: a})
		if err != nil {
			t.Fatal(err)
		}
		var coJob JobResult
		for _, j := range co.Jobs {
			if j.Name == spec.Name {
				coJob = j
			}
		}
		if coJob.Ops != solo.Ops || coJob.Ops == 0 {
			t.Fatalf("%s: ops co %d solo %d", spec.Name, coJob.Ops, solo.Ops)
		}
		if solo.PeakAmbient != 0 {
			t.Errorf("%s solo saw ambient %d, want 0 (machine idle)", spec.Name, solo.PeakAmbient)
		}
		// Ambient is sampled at chunk starts, so a job whose transfers
		// are single-chunk point samples (stencil halos, rpc eager
		// traffic) can legitimately miss the others' bursty holds — but
		// co-location must never make anyone faster.
		if coJob.MeanLat < solo.MeanLat {
			t.Errorf("%s: co-located mean %g faster than solo %g", spec.Name, coJob.MeanLat, solo.MeanLat)
		}
	}
	// The kernel-assisted heavyweight must measurably feel the mix: the
	// train job's big CMA transfers sample often enough to observe the
	// stencil halos' lock holders and slow down for it.
	var train, soloTrain JobResult
	for _, j := range co.Jobs {
		if j.Class == ClassTrain {
			train = j
		}
	}
	soloTrain, err = Solo(mix[0], Options{Arch: a})
	if err != nil {
		t.Fatal(err)
	}
	if train.PeakAmbient == 0 {
		t.Error("train job saw no co-tenant lock pressure at all")
	}
	if train.MeanLat <= soloTrain.MeanLat {
		t.Errorf("train job unaffected by co-tenants: co %g vs solo %g", train.MeanLat, soloTrain.MeanLat)
	}
}

func TestStaticAmbientSlowsScenario(t *testing.T) {
	a := arch.KNL()
	spec := JobSpec{Name: "train", Class: ClassTrain, Ranks: 16, Iters: 2}
	idle, err := Solo(spec, Options{Arch: a})
	if err != nil {
		t.Fatal(err)
	}
	busy, err := Solo(spec, Options{Arch: a, Ambient: 32})
	if err != nil {
		t.Fatal(err)
	}
	if busy.PeakAmbient != 32 {
		t.Fatalf("peak ambient %d, want the static 32", busy.PeakAmbient)
	}
	if busy.MeanLat <= idle.MeanLat {
		t.Fatalf("static ambient 32 did not slow the job: %g vs %g", busy.MeanLat, idle.MeanLat)
	}
}

func TestScenarioValidation(t *testing.T) {
	if _, err := Run(nil, Options{}); err == nil {
		t.Error("empty scenario accepted")
	}
	dup := []JobSpec{
		{Name: "x", Class: ClassRPC, Ranks: 4, Iters: 1},
		{Name: "x", Class: ClassTrain, Ranks: 4, Iters: 1},
	}
	if _, err := Run(dup, Options{}); err == nil {
		t.Error("duplicate job names accepted")
	}
}

// TestScenarioDeterminism: the same mixed scenario run twice — with
// tracing on — produces byte-identical traces and identical results.
// This is the -j invariance story for multi-tenant runs: the mix runs
// in ONE simulation, so there is nothing parallel about it; the test
// pins that nothing (map iteration, pooling) sneaks nondeterminism in.
func TestScenarioDeterminism(t *testing.T) {
	run := func() (Result, string) {
		rec := trace.NewUnbound()
		res, err := Run(DefaultMix(8, 2), Options{Arch: arch.KNL(), Ambient: 4, Trace: rec})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := trace.WriteChrome(&buf, rec); err != nil {
			t.Fatal(err)
		}
		return res, buf.String()
	}
	r1, t1 := run()
	r2, t2 := run()
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("results differ:\n%+v\n%+v", r1, r2)
	}
	if t1 != t2 {
		t.Fatal("traces differ between identical runs")
	}
	if !strings.Contains(t1, "train.r0") || !strings.Contains(t1, "stencil.r0") || !strings.Contains(t1, "rpc.r0") {
		t.Fatalf("trace missing per-job lanes")
	}
}

func TestFprint(t *testing.T) {
	res, err := Run(DefaultMix(8, 1), Options{Arch: arch.Broadwell()})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	res.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"train", "stencil", "rpc", "makespan"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}
