package mpi

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"camc/internal/arch"
	"camc/internal/kernel"
	"camc/internal/liveness"
	"camc/internal/sim"
)

func simNew() *sim.Simulation { return sim.New() }

func smallCfg(procs int) Config {
	return Config{Arch: arch.KNL(), Procs: procs, CopyData: true, MemPerProc: 32 << 20}
}

func TestRunSpawnsAllRanks(t *testing.T) {
	seen := make([]bool, 5)
	res, err := Run(smallCfg(5), func(r *Rank) {
		seen[r.ID] = true
		if r.Size() != 5 {
			t.Errorf("Size = %d", r.Size())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("rank %d never ran", i)
		}
	}
	if res.Events == 0 {
		t.Fatal("no events processed")
	}
}

func TestDefaultProcsFromArch(t *testing.T) {
	c := New(Config{Arch: arch.Broadwell()})
	if c.Size() != 28 {
		t.Fatalf("default procs = %d, want 28", c.Size())
	}
	// Block placement across the two sockets.
	if c.Rank(0).OS.Socket() != 0 || c.Rank(27).OS.Socket() != 1 {
		t.Fatal("socket placement wrong")
	}
}

// transferTest verifies Send/Recv moves bytes correctly for a size.
func transferTest(t *testing.T, size int64) {
	t.Helper()
	cfg := smallCfg(2)
	var sa, da kernel.Addr
	c := New(cfg)
	sa = c.Rank(0).Alloc(size)
	da = c.Rank(1).Alloc(size)
	src := c.Rank(0).OS.Bytes(sa, size)
	for i := range src {
		src[i] = byte(i*13 + 1)
	}
	c.Start(func(r *Rank) {
		if r.ID == 0 {
			r.Send(1, sa, size)
		} else {
			r.Recv(0, da, size)
		}
	})
	if err := c.Sim.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(c.Rank(0).OS.Bytes(sa, size), c.Rank(1).OS.Bytes(da, size)) {
		t.Fatalf("size %d: payload mismatch", size)
	}
}

func TestEagerTransfer(t *testing.T)      { transferTest(t, 1024) }
func TestRendezvousTransfer(t *testing.T) { transferTest(t, 256<<10) }
func TestThresholdBoundary(t *testing.T) {
	transferTest(t, DefaultRendezvousThreshold-1)
	transferTest(t, DefaultRendezvousThreshold)
	transferTest(t, DefaultRendezvousThreshold+1)
}

func TestRendezvousCheaperThanEagerLarge(t *testing.T) {
	// A 1 MiB rendezvous (single copy) must beat the same message forced
	// through the two-copy shared-memory path.
	lat := func(forceShm bool) float64 {
		cfg := Config{Arch: arch.KNL(), Procs: 2, CopyData: false}
		c := New(cfg)
		const size = 1 << 20
		sa := c.Rank(0).Alloc(size)
		da := c.Rank(1).Alloc(size)
		c.Start(func(r *Rank) {
			if r.ID == 0 {
				if forceShm {
					r.SendShm(1, sa, size)
				} else {
					r.Send(1, sa, size)
				}
			} else {
				if forceShm {
					r.RecvShm(0, da, size)
				} else {
					r.Recv(0, da, size)
				}
			}
		})
		if err := c.Sim.Run(); err != nil {
			t.Fatal(err)
		}
		return c.Sim.Now()
	}
	cma := lat(false)
	shm := lat(true)
	if cma >= shm {
		t.Fatalf("rendezvous %.1fus not below shm two-copy %.1fus at 1M", cma, shm)
	}
}

func TestSendrecvSymmetricNoDeadlock(t *testing.T) {
	const size = 512 << 10
	cfg := Config{Arch: arch.KNL(), Procs: 2, CopyData: false}
	c := New(cfg)
	addrs := make([]kernel.Addr, 2)
	raddrs := make([]kernel.Addr, 2)
	for i := 0; i < 2; i++ {
		addrs[i] = c.Rank(i).Alloc(size)
		raddrs[i] = c.Rank(i).Alloc(size)
	}
	c.Start(func(r *Rank) {
		peer := 1 - r.ID
		r.Sendrecv(peer, addrs[r.ID], size, peer, raddrs[r.ID], size)
	})
	if err := c.Sim.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSendrecvMovesData(t *testing.T) {
	const size = 64 << 10
	c := New(smallCfg(2))
	var sa, ra [2]kernel.Addr
	for i := 0; i < 2; i++ {
		sa[i] = c.Rank(i).Alloc(size)
		ra[i] = c.Rank(i).Alloc(size)
		buf := c.Rank(i).OS.Bytes(sa[i], size)
		for j := range buf {
			buf[j] = byte(i*100 + j%50)
		}
	}
	c.Start(func(r *Rank) {
		peer := 1 - r.ID
		r.Sendrecv(peer, sa[r.ID], size, peer, ra[r.ID], size)
	})
	if err := c.Sim.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if !bytes.Equal(c.Rank(i).OS.Bytes(ra[i], size), c.Rank(1-i).OS.Bytes(sa[1-i], size)) {
			t.Fatalf("rank %d received wrong payload", i)
		}
	}
}

func TestSendrecvShmLargeSymmetric(t *testing.T) {
	const size = 2 << 20
	cfg := Config{Arch: arch.Broadwell(), Procs: 2, CopyData: false}
	c := New(cfg)
	var sa, ra [2]kernel.Addr
	for i := 0; i < 2; i++ {
		sa[i] = c.Rank(i).Alloc(size)
		ra[i] = c.Rank(i).Alloc(size)
	}
	c.Start(func(r *Rank) {
		peer := 1 - r.ID
		r.SendrecvShm(peer, sa[r.ID], size, peer, ra[r.ID], size)
	})
	if err := c.Sim.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestBarrierAllRanks(t *testing.T) {
	var maxArrive, minExit float64
	minExit = 1e18
	_, err := Run(Config{Arch: arch.KNL(), Procs: 16, CopyData: false}, func(r *Rank) {
		r.SP.Sleep(float64(r.ID))
		if r.SP.Now() > maxArrive {
			maxArrive = r.SP.Now()
		}
		r.Barrier()
		if r.SP.Now() < minExit {
			minExit = r.SP.Now()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if minExit < maxArrive {
		t.Fatalf("barrier leaked: exit %.2f before last arrival %.2f", minExit, maxArrive)
	}
}

func TestCtlCollectivesOnComm(t *testing.T) {
	vals := make([][]int64, 8)
	_, err := Run(Config{Arch: arch.KNL(), Procs: 8, CopyData: false}, func(r *Rank) {
		b := r.Bcast64(3, int64(900+r.ID))
		if b != 903 {
			t.Errorf("rank %d bcast got %d", r.ID, b)
		}
		vals[r.ID] = r.Allgather64(int64(r.ID * 2))
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		for j := range v {
			if v[j] != int64(j*2) {
				t.Fatalf("rank %d allgather[%d] = %d", i, j, v[j])
			}
		}
	}
}

func TestVMReadWriteHelpers(t *testing.T) {
	const size = 32 << 10
	c := New(smallCfg(3))
	a0 := c.Rank(0).Alloc(size)
	a1 := c.Rank(1).Alloc(size)
	a2 := c.Rank(2).Alloc(size)
	buf := c.Rank(0).OS.Bytes(a0, size)
	for i := range buf {
		buf[i] = byte(i % 251)
	}
	c.Start(func(r *Rank) {
		switch r.ID {
		case 1: // pull from rank 0
			r.VMRead(a1, 0, a0, size)
			r.Notify(2)
		case 2: // wait, then push into rank 0's upper half via write from own copy
			r.WaitNotify(1)
			r.VMRead(a2, 1, a1, size)
		}
	})
	if err := c.Sim.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(c.Rank(2).OS.Bytes(a2, size), buf) {
		t.Fatal("chained VMRead payload mismatch")
	}
}

func TestDeterministicRuns(t *testing.T) {
	f := func(procs8 uint8, sizeKB uint8) bool {
		procs := int(procs8%6) + 2
		size := (int64(sizeKB%32) + 1) << 10
		run := func() float64 {
			cfg := Config{Arch: arch.Broadwell(), Procs: procs, CopyData: false}
			c := New(cfg)
			addrs := make([]kernel.Addr, procs)
			for i := 0; i < procs; i++ {
				addrs[i] = c.Rank(i).Alloc(size)
			}
			c.Start(func(r *Rank) {
				next := (r.ID + 1) % procs
				prev := (r.ID - 1 + procs) % procs
				r.Sendrecv(next, addrs[r.ID], size, prev, addrs[r.ID], size)
			})
			if err := c.Sim.Run(); err != nil {
				panic(err)
			}
			return c.Sim.Now()
		}
		return run() == run()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestManyRanksFullSubscription(t *testing.T) {
	// Power8 full subscription: 160 ranks barrier + ctl allgather.
	res, err := Run(Config{Arch: arch.Power8(), CopyData: false}, func(r *Rank) {
		r.Barrier()
		v := r.Allgather64(int64(r.ID))
		if v[159] != 159 {
			t.Errorf("rank %d bad allgather tail", r.ID)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Time <= 0 {
		t.Fatal("no time elapsed")
	}
	_ = fmt.Sprint(res)
}

// TestBlockingPrimitivesHonorDeadline drives every blocking transport
// primitive against a rank that fails silently (returns without ever
// participating) and asserts the liveness property end to end: each
// survivor that blocks on the dead rank — directly or transitively —
// gets *liveness.PeerDeadError naming it, no survivor blocks past the
// configured deadline (plus revocation slack), and survivors whose part
// of the primitive never blocks finish clean. VMRead/VMWrite are absent
// by design: CMA reads a peer's memory without its cooperation, so they
// cannot block on a dead rank (their dead-peer marking is covered by
// the kill-plan tests in internal/measure).
func TestBlockingPrimitivesHonorDeadline(t *testing.T) {
	const (
		procs    = 4
		dead     = 2
		deadline = 200.0
		poll     = 5.0
	)
	all := []int{0, 1, 3} // every survivor blocks
	cases := []struct {
		name     string
		errRanks []int // survivors whose Protected must return ErrPeerDead
		body     func(r *Rank, addrs []kernel.Addr)
	}{
		{"recv", all, func(r *Rank, addrs []kernel.Addr) {
			r.Recv(dead, addrs[r.ID], 4<<10)
		}},
		{"send_rendezvous", all, func(r *Rank, addrs []kernel.Addr) {
			r.Send(dead, addrs[r.ID], 256<<10)
		}},
		{"sendrecv", all, func(r *Rank, addrs []kernel.Addr) {
			r.Sendrecv(dead, addrs[r.ID], 4<<10, dead, addrs[r.ID], 4<<10)
		}},
		{"barrier", all, func(r *Rank, addrs []kernel.Addr) {
			r.Barrier()
		}},
		{"wait_notify", all, func(r *Rank, addrs []kernel.Addr) {
			r.WaitNotify(dead)
		}},
		{"bcast64_dead_root", all, func(r *Rank, addrs []kernel.Addr) {
			r.Bcast64(dead, int64(r.ID))
		}},
		// Gather64 is flat: non-roots post their ctl message and return,
		// so only the root blocks on the dead contributor.
		{"gather64_dead_child", []int{0}, func(r *Rank, addrs []kernel.Addr) {
			r.Gather64(0, int64(r.ID))
		}},
		{"allgather64", all, func(r *Rank, addrs []kernel.Addr) {
			r.Allgather64(int64(r.ID))
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			cfg := smallCfg(procs)
			cfg.Liveness = &liveness.Config{Deadline: deadline, Poll: poll}
			c := New(cfg)
			addrs := make([]kernel.Addr, procs)
			for i := 0; i < procs; i++ {
				addrs[i] = c.Rank(i).Alloc(256 << 10)
			}
			errs := make([]error, procs)
			ran := make([]bool, procs)
			c.Start(func(r *Rank) {
				if r.ID == dead {
					return // silent permanent failure: never participates
				}
				errs[r.ID] = r.Protected(func() { tc.body(r, addrs) })
				ran[r.ID] = true
			})
			if err := c.Sim.Run(); err != nil {
				t.Fatal(err)
			}
			// The detection bound: the first blocked survivor waits out
			// one full deadline, everyone else is revoked within polls.
			if now := c.Sim.Now(); now > deadline+deadline/2 {
				t.Fatalf("survivors still blocked at %.1fus (deadline %gus)", now, deadline)
			}
			mustErr := map[int]bool{}
			for _, i := range tc.errRanks {
				mustErr[i] = true
			}
			for i := 0; i < procs; i++ {
				if i == dead {
					continue
				}
				if !ran[i] {
					t.Fatalf("rank %d never returned from Protected", i)
				}
				if !mustErr[i] {
					if errs[i] != nil {
						t.Fatalf("rank %d should finish clean, got %v", i, errs[i])
					}
					continue
				}
				if !errors.Is(errs[i], liveness.ErrPeerDead) {
					t.Fatalf("rank %d: err = %v, want ErrPeerDead", i, errs[i])
				}
				var pd *liveness.PeerDeadError
				if !errors.As(errs[i], &pd) {
					t.Fatalf("rank %d: err %T is not *PeerDeadError", i, errs[i])
				}
				found := false
				for _, d := range pd.Ranks {
					if d == dead {
						found = true
					}
				}
				if !found {
					t.Fatalf("rank %d: dead set %v misses rank %d", i, pd.Ranks, dead)
				}
			}
		})
	}
}

func TestNewOnNodeSharesSimulation(t *testing.T) {
	// Two communicators on one simulation (the multi-node layout): both
	// make progress under the shared clock and their node state is
	// independent.
	s := simNew()
	nodeA := kernel.NewNode(s, arch.KNL())
	nodeA.CopyData = false
	nodeB := kernel.NewNode(s, arch.KNL())
	nodeB.CopyData = false
	ca := NewOnNode(nodeA, 4, 1<<22)
	cb := NewOnNode(nodeB, 4, 1<<22)
	if ca.Size() != 4 || cb.Size() != 4 {
		t.Fatal("sizes wrong")
	}
	var doneA, doneB float64
	ca.Start(func(r *Rank) {
		r.Barrier()
		doneA = r.SP.Now()
	})
	cb.Start(func(r *Rank) {
		r.SP.Sleep(5)
		r.Barrier()
		doneB = r.SP.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if doneA <= 0 || doneB < 5 {
		t.Fatalf("barriers did not run: %g %g", doneA, doneB)
	}
	if doneB <= doneA {
		t.Fatalf("staggered communicator should finish later: %g vs %g", doneB, doneA)
	}
}
