// Package mpi provides the miniature MPI runtime the collectives run on:
// a communicator of simulated processes (one per core, block-placed
// across sockets), point-to-point messaging with the standard two
// protocols — eager through shared memory for small messages, and
// rendezvous (RTS/CTS control packets plus a CMA read) for large ones —
// and the measurement harness used by every experiment.
//
// As in the paper's design (§III), every rank learns its peers' PIDs at
// initialization, so native CMA collectives built on this runtime only
// exchange buffer addresses (through shared memory) per operation.
package mpi

import (
	"fmt"

	"camc/internal/arch"
	"camc/internal/fault"
	"camc/internal/kernel"
	"camc/internal/liveness"
	"camc/internal/shm"
	"camc/internal/sim"
	"camc/internal/tenant"
	"camc/internal/trace"
)

// DefaultRendezvousThreshold is the eager/rendezvous switch point in
// bytes: the paper places the kernel-assisted advantage at >= 16 KiB.
const DefaultRendezvousThreshold = 16 << 10

// Config describes one intra-node MPI job.
type Config struct {
	Arch  *arch.Profile
	Procs int // ranks; defaults to Arch.DefaultProcs

	// CopyData enables real data movement (tests); disable for large
	// cost-only sweeps (benchmarks).
	CopyData bool

	// Sparse enables the checksum-summary payload mode: every
	// payload-mutating operation folds into per-page FNV digests
	// (kernel.Process.MemDigest), whether or not CopyData is on. A
	// dataless Sparse run stays digest-comparable against a materialized
	// run of the same schedule — see internal/check's sparse cross-check.
	Sparse bool

	// Sim, when non-nil, is an existing simulation to build on instead
	// of allocating a fresh one. The caller must pass a freshly created
	// or Reset simulation; measure's sweep loop uses this to recycle the
	// simulator (and its event-heap backing and Proc free list) across
	// iterations.
	Sim *sim.Simulation

	// MemPerProc is each rank's simulated address-space size in bytes.
	// Defaults to 1 GiB (dataless) — set small when CopyData is on.
	MemPerProc int64

	// RendezvousThreshold overrides the eager/rendezvous switch point.
	RendezvousThreshold int64

	// ChunkPages overrides the kernel contention-sampling granularity.
	ChunkPages int

	// Mechanism selects the kernel-assist facility (CMA by default; see
	// kernel.Mechanism for KNEM/LiMIC/XPMEM).
	Mechanism kernel.Mechanism

	// Ambient is the static co-tenant lock pressure: phantom page-lock
	// holders that co-located jobs hold on the machine's shared kernel
	// path, added to every γ(c) sample (kernel.Node.SetAmbient). 0
	// keeps the single-tenant model.
	Ambient int

	// Tenant, when non-nil, registers the communicator's node with a
	// machine-wide tenant registry (internal/tenant): co-located
	// communicators sharing one simulation then interfere through the
	// shared mm-lock pressure and memory system. The workload scenario
	// generator is the main client.
	Tenant *tenant.Job

	// Fault, when non-nil and active, attaches a deterministic
	// fault-injection plan to the node: CMA ops can fail transiently or
	// complete short (absorbed by bounded retries with backoff, then a
	// per-peer fallback to the two-copy path), shm cells can stall, and
	// ranks can straggle. Payloads are never corrupted.
	Fault *fault.Config

	// Liveness, when non-nil, attaches a failure-detection board: every
	// blocking primitive becomes deadline-guarded (a dead peer yields a
	// *liveness.PeerDeadError instead of a hang), heartbeats are
	// published in the shm segment, and Protected/Agree/Shrink become
	// usable for ULFM-style recovery. Required for the `kill` fault
	// class to fail cleanly — without it, a killed rank turns into a
	// simulator deadlock report at drain time.
	Liveness *liveness.Config
}

func (c Config) withDefaults() Config {
	if c.Procs == 0 {
		c.Procs = c.Arch.DefaultProcs
	}
	if c.MemPerProc == 0 {
		c.MemPerProc = 1 << 30
	}
	if c.RendezvousThreshold == 0 {
		c.RendezvousThreshold = DefaultRendezvousThreshold
	}
	return c
}

// Comm is an intra-node communicator.
type Comm struct {
	Node  *kernel.Node
	Shm   *shm.Transport
	Sim   *sim.Simulation
	cfg   Config
	ranks []*Rank

	// parentIDs maps this communicator's rank IDs to the pre-shrink
	// communicator's (identity for a communicator built by New).
	parentIDs []int

	// boardIDs maps this communicator's rank IDs to liveness-board
	// slots (nil = identity). A cluster sets every node's board to a
	// world-sized view indexed by world rank, so local ranks beat and
	// mark by world ID and remote deaths revoke local waits.
	boardIDs []int

	// armedKills holds explicitly targeted kills (rank -> operation
	// index), applied in Start on top of the fault plan's seeded kill
	// points. Unlike the plan, an armed kill may target local rank 0 —
	// the cluster chaos experiments need to kill node leaders.
	armedKills map[int]int

	// shrunk/shrunkFailed implement the single-builder Shrink protocol:
	// the first survivor constructs the new communicator, later
	// survivors adopt it after checking they agreed on the same failures.
	shrunk       *Comm
	shrunkFailed []int
}

// Size returns the number of ranks.
func (c *Comm) Size() int { return len(c.ranks) }

// AttachTrace attaches a structured-event recorder to the communicator:
// it binds the recorder to the node (so kernel-level CMA events are
// captured too) and registers one trace lane per rank, keyed by the
// rank's simulated OS pid. Attach before Start; a nil recorder is a
// no-op (tracing stays disabled).
func (c *Comm) AttachTrace(rec *trace.Recorder) {
	if rec == nil {
		return
	}
	c.Node.SetRecorder(rec)
	for _, r := range c.ranks {
		rec.RegisterLane(r.ID, fmt.Sprintf("rank %d", r.ID), r.OS.PID())
	}
}

// Tracer returns the attached recorder (nil when tracing is disabled;
// all recorder methods are nil-safe).
func (c *Comm) Tracer() *trace.Recorder { return c.Node.Recorder() }

// FaultPlan returns the node's fault-injection plan (nil when fault
// injection is disabled; all plan methods are nil-safe).
func (c *Comm) FaultPlan() *fault.Plan { return c.Node.FaultPlan() }

// Liveness returns the node's liveness board (nil when failure
// detection is disabled).
func (c *Comm) Liveness() *liveness.Board { return c.Node.Liveness() }

// ParentID maps rank i of this communicator to its rank in the
// pre-shrink communicator (identity for a communicator built by New).
func (c *Comm) ParentID(i int) int {
	if c.parentIDs == nil {
		return i
	}
	return c.parentIDs[i]
}

// SetBoardIDs maps this communicator's rank IDs to liveness-board
// slots (and propagates the mapping to the shm transport, whose waits
// drive the board). Call before Start; nil restores the identity
// mapping used by plain single-node communicators.
func (c *Comm) SetBoardIDs(ids []int) {
	if ids != nil && len(ids) != len(c.ranks) {
		panic(fmt.Sprintf("mpi: SetBoardIDs with %d ids for %d ranks", len(ids), len(c.ranks)))
	}
	c.boardIDs = ids
	c.Shm.SetBoardIDs(ids)
}

// BoardID maps rank i to its liveness-board slot (identity when no
// mapping is set).
func (c *Comm) BoardID(i int) int {
	if c.boardIDs == nil {
		return i
	}
	return c.boardIDs[i]
}

// ArmKill schedules an explicit seeded death: rank dies at its op-th
// checkpointed operation, exactly like a fault-plan kill point but
// targeted (and allowed to hit local rank 0, which probabilistic plans
// exempt so a run always has survivors). Call before Start.
func (c *Comm) ArmKill(rank, op int) {
	if c.armedKills == nil {
		c.armedKills = make(map[int]int)
	}
	c.armedKills[rank] = op
}

// RankFromParent returns the rank that was parentID before the shrink,
// or -1 if that rank is not part of this communicator (it died).
func (c *Comm) RankFromParent(parentID int) int {
	for i := range c.ranks {
		if c.ParentID(i) == parentID {
			return i
		}
	}
	return -1
}

// Rank returns rank i's handle.
func (c *Comm) Rank(i int) *Rank { return c.ranks[i] }

// Rank is one MPI process: its simulated OS process plus its simulation
// coroutine.
type Rank struct {
	Comm *Comm
	ID   int
	SP   *sim.Proc
	OS   *kernel.Process

	// cmaDead marks peers against which the kernel assist exhausted its
	// retry budget; further transfers to them take the degraded two-copy
	// path. Allocated lazily on the first fallback.
	cmaDead []bool

	// killPoint is the operation index at which this rank dies under the
	// fault plan's kill class (-1 = never); ops counts checkpointed
	// operations toward it.
	killPoint int
	ops       int

	// agreeRound numbers this rank's agreement rounds; rounds stay in
	// lockstep because every survivor runs the same protected sequence.
	agreeRound int
}

// Size returns the communicator size.
func (r *Rank) Size() int { return r.Comm.Size() }

// Tracer returns the recorder attached to this rank's communicator
// (nil when tracing is disabled).
func (r *Rank) Tracer() *trace.Recorder { return r.Comm.Tracer() }

// Lane returns this rank's trace lane. Lanes are registered by OS pid
// at AttachTrace time, so a rank keeps its lane across a communicator
// Shrink even though its rank ID is renumbered — all events of one
// simulated process (MPI, collective, and kernel CMA alike) land on one
// lane. Without a recorder the rank ID is returned (nothing records).
func (r *Rank) Lane() int {
	if rec := r.Tracer(); rec != nil {
		return rec.LaneForPid(r.OS.PID())
	}
	return r.ID
}

// Peer returns the OS process behind rank i (the PID table every rank
// builds at init).
func (r *Rank) Peer(i int) *kernel.Process { return r.Comm.ranks[i].OS }

// Alloc reserves size bytes in this rank's address space.
func (r *Rank) Alloc(size int64) kernel.Addr { return r.OS.Alloc(size) }

// Result reports a completed run.
type Result struct {
	Time   float64 // virtual time at which the last rank finished, us
	Events uint64  // simulator dispatches (diagnostics)
}

// New builds a communicator without running anything; used by harnesses
// that need to allocate buffers before spawning rank bodies. Most callers
// want Run.
func New(cfg Config) *Comm {
	cfg = cfg.withDefaults()
	s := cfg.Sim
	if s == nil {
		s = sim.New()
	}
	node := kernel.NewNode(s, cfg.Arch)
	node.CopyData = cfg.CopyData
	node.DigestPayload = cfg.Sparse
	node.SetMechanism(cfg.Mechanism)
	node.SetAmbient(cfg.Ambient)
	node.SetTenant(cfg.Tenant)
	if cfg.ChunkPages != 0 {
		node.ChunkPages = cfg.ChunkPages
	}
	if cfg.Fault != nil && cfg.Fault.Active() {
		node.SetFaultPlan(fault.New(*cfg.Fault))
	}
	if cfg.Liveness != nil {
		node.SetLiveness(liveness.NewBoard(s, cfg.Procs, *cfg.Liveness))
	}
	c := &Comm{Node: node, Sim: s, cfg: cfg}
	c.Shm = shm.New(node, cfg.Procs)
	for i := 0; i < cfg.Procs; i++ {
		os := node.NewProcess(cfg.MemPerProc)
		os.SetSocket(cfg.Arch.RankSocket(i, cfg.Procs))
		c.ranks = append(c.ranks, &Rank{Comm: c, ID: i, OS: os})
	}
	return c
}

// NewOnNode builds a communicator over an existing simulated node (the
// multi-node cluster creates several nodes on one shared simulation and
// needs a communicator per node). Runs inherit the node's CopyData
// setting; MemPerProc applies to the ranks' address spaces.
func NewOnNode(node *kernel.Node, procs int, memPerProc int64) *Comm {
	cfg := Config{
		Arch:       node.Arch,
		Procs:      procs,
		CopyData:   node.CopyData,
		MemPerProc: memPerProc,
	}.withDefaults()
	c := &Comm{Node: node, Sim: node.Sim, cfg: cfg}
	c.Shm = shm.New(node, cfg.Procs)
	for i := 0; i < cfg.Procs; i++ {
		os := node.NewProcess(cfg.MemPerProc)
		os.SetSocket(cfg.Arch.RankSocket(i, cfg.Procs))
		c.ranks = append(c.ranks, &Rank{Comm: c, ID: i, OS: os})
	}
	return c
}

// Start spawns one simulation process per rank running body. Each rank
// learns its kill point from the fault plan here; a rank that reaches it
// mid-collective announces its death on the liveness board and exits —
// the liveness.Killed panic is recovered at this boundary so the
// simulated process dies cleanly instead of crashing the simulation.
func (c *Comm) Start(body func(r *Rank)) {
	for _, r := range c.ranks {
		r := r
		r.killPoint = c.FaultPlan().KillPoint(r.ID)
		if op, ok := c.armedKills[r.ID]; ok {
			r.killPoint = op
		}
		c.Sim.Spawn(fmt.Sprintf("rank%d", r.ID), func(p *sim.Proc) {
			r.SP = p
			defer func() {
				if v := recover(); v != nil {
					if _, ok := v.(liveness.Killed); ok {
						return // permanent death: the process just exits
					}
					panic(v)
				}
			}()
			body(r)
		})
	}
}

// Run builds a communicator, runs body on every rank, and returns the
// completion time.
func Run(cfg Config, body func(r *Rank)) (Result, error) {
	c := New(cfg)
	c.Start(body)
	if err := c.Sim.Run(); err != nil {
		return Result{}, err
	}
	return Result{Time: c.Sim.Now(), Events: c.Sim.EventsProcessed()}, nil
}

// killCheck is the seeded-death checkpoint at the top of every blocking
// primitive: when this rank's operation counter reaches its kill point,
// the rank publishes its death on the liveness board and exits via a
// liveness.Killed panic (recovered in Start). Unarmed ranks pay one
// predicted-not-taken branch.
// KillCheck exposes the seeded-death checkpoint to transports layered
// above the node communicator: the cluster fabric counts NetSend and
// NetRecv as checkpointed operations too, so a rank whose schedule is
// all network traffic (a flat-design leaf, a two-level leader) can
// still be killed at its operation index. The checkpoint sits at
// operation entry — a death never interrupts an in-flight transfer.
func (r *Rank) KillCheck() { r.killCheck() }

func (r *Rank) killCheck() {
	if r.killPoint <= 0 {
		return
	}
	r.ops++
	if r.ops >= r.killPoint {
		r.killPoint = -1 // fire once
		r.Comm.FaultPlan().CountKill()
		if rec := r.Tracer(); rec != nil {
			rec.Instant(r.Lane(), trace.CatLiveness, "rank_killed",
				trace.F("op", float64(r.ops)))
		}
		if b := r.Comm.Liveness(); b != nil {
			b.MarkDead(r.Comm.BoardID(r.ID))
		}
		panic(liveness.Killed{Rank: r.ID})
	}
}

// Protected runs one collective (or any block of communicator calls)
// and converts a dead-peer abort into an ordinary error: the transport
// layers signal a dead peer by panicking with *liveness.PeerDeadError,
// and this boundary recovers exactly that type. The error is this
// rank's *local* view; call Agree to turn it into the communicator-wide
// coherent verdict. Kill panics and genuine bugs pass through.
func (r *Rank) Protected(f func()) (err error) {
	defer func() {
		if v := recover(); v != nil {
			if pd, ok := v.(*liveness.PeerDeadError); ok {
				err = pd
				return
			}
			panic(v)
		}
	}()
	f()
	return nil
}

// Agree runs the coherent-error agreement round over the liveness
// board: every survivor contributes its local verdict (nil or a
// *liveness.PeerDeadError) and every survivor returns the same answer —
// nil only if no rank observed or suffered a failure, otherwise a
// *liveness.PeerDeadError with the identical agreed failed-rank set.
// Survivors must agree on that set before shrinking, or they would
// build incompatible successor communicators. Without a liveness board
// the local error is returned unchanged.
func (r *Rank) Agree(localErr error) error {
	b := r.Comm.Liveness()
	if b == nil {
		return localErr
	}
	var local []int
	if pd, ok := localErr.(*liveness.PeerDeadError); ok {
		local = pd.Ranks
	} else if localErr != nil {
		return localErr // not a liveness failure: nothing to agree about
	}
	round := r.agreeRound
	r.agreeRound++
	rec := r.Tracer()
	span := trace.NoSpan
	if rec != nil {
		span = rec.Begin(r.Lane(), trace.CatLiveness, "agree",
			trace.F("round", float64(round)))
	}
	set := b.Agree(r.SP, r.ID, round, local)
	if rec != nil {
		rec.End(span, trace.F("failed", float64(len(set))))
	}
	if len(set) == 0 {
		return nil
	}
	return liveness.NewPeerDeadError(set)
}

// Shrink builds the survivor communicator after an agreed failure and
// returns this rank's handle in it. Every survivor must call Shrink
// with the *agreed* failed set (from Agree); the first caller
// constructs the new communicator — fresh shared-memory transport,
// fresh right-sized liveness board, contiguous re-numbered ranks that
// keep their OS processes, sockets and degraded-pair state — and the
// rest adopt it. Before returning, the survivors re-run the one-time
// address (PID) exchange over the new transport, so the new
// communicator is proven end-to-end exactly like a fresh one.
//
// Shrink does not disarm the fault plan's kill class: call
// FaultPlan().Revive() first if the survivors' re-run must not suffer
// fresh seeded deaths.
func (r *Rank) Shrink(failed []int) *Rank {
	c := r.Comm
	if c.shrunk == nil {
		c.buildShrunk(failed)
	} else if !equalRankSet(c.shrunkFailed, failed) {
		panic(fmt.Sprintf("mpi: Shrink disagreement: rank %d shrinks on %v, communicator shrunk on %v (agreement missing?)",
			r.ID, failed, c.shrunkFailed))
	}
	nc := c.shrunk
	nr := nc.ranks[nc.RankFromParent(r.ID)]
	nr.SP = r.SP
	if rec := r.Tracer(); rec != nil {
		rec.Instant(r.Lane(), trace.CatLiveness, "shrink",
			trace.F("survivors", float64(nc.Size())), trace.F("new_rank", float64(nr.ID)))
	}
	// One-time address exchange on the surviving set: every rank
	// publishes its PID and checks the gathered table against the new
	// rank table, driving the first traffic through the new transport.
	pids := nr.Allgather64(int64(nr.OS.PID()))
	for i, pid := range pids {
		if int(pid) != nc.ranks[i].OS.PID() {
			panic(fmt.Sprintf("mpi: post-shrink address exchange mismatch at rank %d: got pid %d, want %d",
				i, pid, nc.ranks[i].OS.PID()))
		}
	}
	return nr
}

// buildShrunk constructs the survivor communicator (first Shrink caller
// only). The node-level liveness board is replaced by a fresh one sized
// to the survivor count — the old board's rank numbering dies with the
// old communicator.
func (c *Comm) buildShrunk(failed []int) {
	dead := make(map[int]bool, len(failed))
	for _, f := range failed {
		dead[f] = true
	}
	var alive []int
	for i := range c.ranks {
		if !dead[i] {
			alive = append(alive, i)
		}
	}
	if len(alive) == 0 {
		panic("mpi: Shrink with no survivors")
	}
	nc := &Comm{Node: c.Node, Sim: c.Sim, cfg: c.cfg}
	nc.cfg.Procs = len(alive)
	nc.Shm = shm.New(c.Node, len(alive))
	if rec := c.Tracer(); rec != nil {
		// The new transport numbers ranks from 0, but each survivor keeps
		// the trace lane its pid was registered under.
		lanes := make([]int, len(alive))
		for newID, oldID := range alive {
			lanes[newID] = rec.LaneForPid(c.ranks[oldID].OS.PID())
		}
		nc.Shm.SetLanes(lanes)
	}
	if b := c.Node.Liveness(); b != nil && c.boardIDs == nil {
		// Single-node: the board's rank numbering dies with the old
		// communicator, so replace it with a right-sized fresh one. In a
		// cluster (boardIDs set) the board is the node's world-sized view
		// and slots are original world ranks, which survive the shrink —
		// the cluster layer installs the fresh view itself, once per node.
		c.Node.SetLiveness(liveness.NewBoard(c.Sim, len(alive), b.Config()))
	}
	if c.boardIDs != nil {
		nc.boardIDs = make([]int, len(alive))
		for newID, oldID := range alive {
			nc.boardIDs[newID] = c.boardIDs[oldID]
		}
		nc.Shm.SetBoardIDs(nc.boardIDs)
	}
	plan := c.FaultPlan()
	for newID, oldID := range alive {
		old := c.ranks[oldID]
		nr := &Rank{Comm: nc, ID: newID, OS: old.OS, killPoint: plan.KillPoint(newID)}
		if c.boardIDs != nil {
			// Cluster re-runs happen after Revive; armed kills fired once.
			nr.killPoint = -1
		}
		if old.cmaDead != nil {
			// Degraded pairs stay degraded: the mm didn't heal because the
			// communicator was renumbered.
			nr.cmaDead = make([]bool, len(alive))
			for newP, oldP := range alive {
				nr.cmaDead[newP] = old.cmaDead[oldP]
			}
		}
		nc.ranks = append(nc.ranks, nr)
		nc.parentIDs = append(nc.parentIDs, oldID)
	}
	c.shrunk = nc
	c.shrunkFailed = append([]int(nil), failed...)
}

func equalRankSet(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Barrier synchronizes all ranks (dissemination barrier over shared
// memory).
func (r *Rank) Barrier() {
	r.killCheck()
	span := trace.NoSpan
	if rec := r.Tracer(); rec != nil {
		span = rec.Begin(r.Lane(), trace.CatMPI, "barrier")
	}
	r.Comm.Shm.Barrier(r.SP, r.ID)
	r.Tracer().End(span)
}

// pt2pt tags: the two protocols share the per-pair FIFO, so fixed tags
// keep the handshakes self-describing.
const (
	tagEager = 100
	tagRTS   = 101
	tagFIN   = 102
)

// matchCost is the per-message MPI point-to-point envelope overhead:
// posting/matching against the receive and unexpected-message queues.
// The native CMA collectives skip the point-to-point stack entirely
// (addresses ride raw shared-memory slots), which is part of the
// advantage the paper's Fig 9 isolates.
const matchCost = 0.3

// Send transmits size bytes at addr to rank dst. Messages below the
// rendezvous threshold go eagerly through shared memory (two copies);
// larger ones use the rendezvous protocol: the sender posts an RTS
// carrying its buffer address, the receiver pulls the payload with a
// single CMA read, then posts a FIN.
func (r *Rank) Send(dst int, addr kernel.Addr, size int64) {
	r.killCheck()
	c := r.Comm
	span := trace.NoSpan
	rec := r.Tracer()
	rndv := size >= c.cfg.RendezvousThreshold
	if rec != nil {
		name := "send_eager"
		if rndv {
			name = "send_rndv"
		}
		span = rec.Begin(r.Lane(), trace.CatMPI, name,
			trace.F("peer", float64(dst)), trace.F("bytes", float64(size)))
	}
	r.SP.Sleep(matchCost)
	if !rndv {
		c.Shm.Send(r.SP, r.ID, dst, tagEager, r.OS, addr, size)
		rec.End(span)
		return
	}
	c.Shm.SendCtl(r.SP, r.ID, dst, tagRTS, int64(addr))
	c.Shm.RecvCtl(r.SP, dst, r.ID, tagFIN)
	rec.End(span)
}

// Recv receives size bytes from rank src into addr. The protocol is
// chosen by size exactly as in Send; both sides must agree.
func (r *Rank) Recv(src int, addr kernel.Addr, size int64) {
	r.killCheck()
	c := r.Comm
	span := trace.NoSpan
	rec := r.Tracer()
	rndv := size >= c.cfg.RendezvousThreshold
	if rec != nil {
		name := "recv_eager"
		if rndv {
			name = "recv_rndv"
		}
		span = rec.Begin(r.Lane(), trace.CatMPI, name,
			trace.F("peer", float64(src)), trace.F("bytes", float64(size)))
	}
	r.SP.Sleep(matchCost)
	if !rndv {
		c.Shm.Recv(r.SP, src, r.ID, tagEager, r.OS, addr, size)
		rec.End(span)
		return
	}
	remote := c.Shm.RecvCtl(r.SP, src, r.ID, tagRTS)
	// The pull inherits the full retry/fallback machinery: the RTS
	// already carries the sender's address, so even a failing kernel
	// assist can finish the payload over the degraded path without any
	// extra protocol round (the sender just waits for the FIN).
	r.VMRead(addr, src, kernel.Addr(remote), size)
	c.Shm.SendCtl(r.SP, r.ID, src, tagFIN, 0)
	rec.End(span)
}

// Sendrecv performs a simultaneous exchange with two (possibly equal)
// peers without deadlocking: the outgoing rendezvous RTS is posted before
// serving the incoming message, and the FIN is collected last. Both
// directions choose eager vs rendezvous independently by size.
func (r *Rank) Sendrecv(dst int, sAddr kernel.Addr, sSize int64, src int, rAddr kernel.Addr, rSize int64) {
	r.killCheck()
	c := r.Comm
	r.SP.Sleep(matchCost) // send-side envelope; Recv below charges its own
	sRndv := sSize >= c.cfg.RendezvousThreshold
	if sRndv {
		c.Shm.SendCtl(r.SP, r.ID, dst, tagRTS, int64(sAddr))
	} else {
		// Eager messages are bounded by the rendezvous threshold, which
		// fits the per-pair queue, so staging cannot deadlock.
		c.Shm.Send(r.SP, r.ID, dst, tagEager, r.OS, sAddr, sSize)
	}
	r.Recv(src, rAddr, rSize)
	if sRndv {
		c.Shm.RecvCtl(r.SP, dst, r.ID, tagFIN)
	}
}

// SendShm forces the eager/shared-memory path regardless of size (used
// by the pure shared-memory baseline designs).
func (r *Rank) SendShm(dst int, addr kernel.Addr, size int64) {
	r.killCheck()
	r.SP.Sleep(matchCost)
	r.Comm.Shm.Send(r.SP, r.ID, dst, tagEager, r.OS, addr, size)
}

// RecvShm forces the shared-memory path regardless of size.
func (r *Rank) RecvShm(src int, addr kernel.Addr, size int64) {
	r.killCheck()
	r.SP.Sleep(matchCost)
	r.Comm.Shm.Recv(r.SP, src, r.ID, tagEager, r.OS, addr, size)
}

// SendrecvShm forces a simultaneous shared-memory exchange regardless of
// size (pure shared-memory baseline for pairwise and ring patterns). The
// send and receive peers may differ; all ranks of the pattern must call
// it together.
func (r *Rank) SendrecvShm(sendPeer int, sAddr kernel.Addr, sSize int64, recvPeer int, rAddr kernel.Addr, rSize int64) {
	r.killCheck()
	r.SP.Sleep(2 * matchCost) // one send-side + one recv-side envelope
	r.Comm.Shm.Exchange(r.SP, r.ID, sendPeer, recvPeer, tagEager, r.OS, sAddr, sSize, rAddr, rSize)
}

// Bcast64 broadcasts an 8-byte value from root (shared-memory control
// collective).
func (r *Rank) Bcast64(root int, val int64) int64 {
	r.killCheck()
	return r.Comm.Shm.Bcast64(r.SP, r.ID, root, val)
}

// Gather64 gathers one 8-byte value per rank at root.
func (r *Rank) Gather64(root int, val int64) []int64 {
	r.killCheck()
	return r.Comm.Shm.Gather64(r.SP, r.ID, root, val)
}

// Allgather64 gathers one 8-byte value per rank everywhere.
func (r *Rank) Allgather64(val int64) []int64 {
	r.killCheck()
	return r.Comm.Shm.Allgather64(r.SP, r.ID, val)
}

// Notify posts a 0-byte completion message to dst.
func (r *Rank) Notify(dst int) {
	r.killCheck()
	r.Comm.Shm.Notify(r.SP, r.ID, dst)
}

// WaitNotify consumes a 0-byte completion message from src.
func (r *Rank) WaitNotify(src int) {
	r.killCheck()
	r.Comm.Shm.WaitNotify(r.SP, src, r.ID)
}

// VMRead pulls size bytes from rank src's address space (native CMA
// collective building block; the address came from a control exchange).
// Under an active fault plan, transient failures and short completions
// are absorbed by bounded retries; once the retry budget against a peer
// is exhausted, that (rank, peer) pair degrades permanently to the
// two-copy path, so the payload always lands exactly.
func (r *Rank) VMRead(dst kernel.Addr, src int, srcAddr kernel.Addr, size int64) {
	r.killCheck()
	r.vmOp(dst, src, srcAddr, size, true)
}

// VMWrite pushes size bytes into rank dst's address space, with the
// same retry/fallback behaviour as VMRead.
func (r *Rank) VMWrite(src kernel.Addr, dst int, dstAddr kernel.Addr, size int64) {
	r.killCheck()
	r.vmOp(src, dst, dstAddr, size, false)
}

// vmOp runs one kernel-assisted transfer with graceful degradation.
// local is the caller-side address, remote the address inside peer.
func (r *Rank) vmOp(local kernel.Addr, peer int, remote kernel.Addr, size int64, read bool) {
	dir := func() string {
		if read {
			return "VMRead"
		}
		return "VMWrite"
	}
	if r.Comm.FaultPlan() == nil {
		// Fault-free fast path: any error is a protocol bug.
		var err error
		if read {
			err = r.OS.VMRead(r.SP, local, r.Peer(peer), remote, size)
		} else {
			err = r.OS.VMWrite(r.SP, local, r.Peer(peer), remote, size)
		}
		if err != nil {
			panic(fmt.Sprintf("mpi: %s rank %d <-> %d: %v", dir(), r.ID, peer, err))
		}
		return
	}
	if r.cmaDead != nil && r.cmaDead[peer] {
		r.bounce(local, peer, remote, size, read)
		return
	}
	var done int64
	var err error
	if read {
		done, err = r.OS.VMReadRetry(r.SP, local, r.Peer(peer), remote, size)
	} else {
		done, err = r.OS.VMWriteRetry(r.SP, local, r.Peer(peer), remote, size)
	}
	if err == nil {
		return
	}
	if _, ok := err.(*kernel.ExhaustedError); !ok {
		panic(fmt.Sprintf("mpi: %s rank %d <-> %d: %v", dir(), r.ID, peer, err))
	}
	// The kernel assist against this peer is declared failed: degrade
	// the pair to the two-copy path for the rest of the run and finish
	// the remainder of this transfer over it.
	r.markCMADead(peer)
	r.Comm.FaultPlan().CountFallback()
	if rec := r.Tracer(); rec != nil {
		rec.Instant(r.Lane(), trace.CatFault, "cma_fallback",
			trace.F("peer", float64(peer)), trace.F("completed", float64(done)))
	}
	r.bounce(local+kernel.Addr(done), peer, remote+kernel.Addr(done), size-done, read)
}

// markCMADead degrades the (r, peer) pair to the two-copy path — in
// both directions on both rank objects. Read and write against a pair
// hit the same mm state, so once one side's retry budget is exhausted
// the reverse transfer (e.g. Sendrecv's pull path) would only burn a
// second full budget against a pair already known bad.
func (r *Rank) markCMADead(peer int) {
	if r.cmaDead == nil {
		r.cmaDead = make([]bool, r.Size())
	}
	r.cmaDead[peer] = true
	pr := r.Comm.ranks[peer]
	if pr.cmaDead == nil {
		pr.cmaDead = make([]bool, pr.Size())
	}
	pr.cmaDead[r.ID] = true
}

// bounce moves size bytes over the degraded two-copy path.
func (r *Rank) bounce(local kernel.Addr, peer int, remote kernel.Addr, size int64, read bool) {
	var err error
	if read {
		err = r.OS.BounceRead(r.SP, local, r.Peer(peer), remote, size)
	} else {
		err = r.OS.BounceWrite(r.SP, local, r.Peer(peer), remote, size)
	}
	if err != nil {
		panic(fmt.Sprintf("mpi: bounce rank %d <-> %d: %v", r.ID, peer, err))
	}
	r.Comm.FaultPlan().CountBounce(size)
}

// LocalCopy is an in-process memcpy.
func (r *Rank) LocalCopy(dst, src kernel.Addr, size int64) {
	r.OS.LocalCopy(r.SP, dst, src, size)
}
