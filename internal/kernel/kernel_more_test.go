package kernel

import (
	"fmt"
	"testing"

	"camc/internal/arch"
	"camc/internal/sim"
)

func TestAllocOOMPanics(t *testing.T) {
	s := sim.New()
	n := NewNode(s, arch.KNL())
	n.CopyData = false
	p := n.NewProcess(8192)
	p.Alloc(4096)
	defer func() {
		if recover() == nil {
			t.Fatal("expected OOM panic")
		}
	}()
	p.Alloc(8192)
}

func TestSetSocketOutOfRangePanics(t *testing.T) {
	s := sim.New()
	n := NewNode(s, arch.KNL()) // single socket
	p := n.NewProcess(4096)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.SetSocket(1)
}

func TestBytesOnDatalessPanics(t *testing.T) {
	s := sim.New()
	n := NewNode(s, arch.KNL())
	n.CopyData = false
	p := n.NewProcess(4096)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.Bytes(0, 16)
}

func TestEndCopyUnderflowPanics(t *testing.T) {
	s := sim.New()
	n := NewNode(s, arch.KNL())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	n.EndCopy()
}

func TestTraceMaxConcurrency(t *testing.T) {
	s := sim.New()
	n := NewNode(s, arch.KNL())
	n.CopyData = false
	tr := n.EnableTrace()
	size := int64(64 * 4096)
	src := n.NewProcess(1 << 26)
	sa := src.Alloc(size * 8)
	for i := 0; i < 8; i++ {
		i := i
		dst := n.NewProcess(1 << 22)
		da := dst.Alloc(size)
		s.Spawn(fmt.Sprintf("r%d", i), func(p *sim.Proc) {
			if err := dst.VMRead(p, da, src, sa+Addr(int64(i)*size), size); err != nil {
				panic(err)
			}
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if tr.MaxC != 8 {
		t.Fatalf("trace MaxC = %d, want 8", tr.MaxC)
	}
	if tr.Ops != 8 {
		t.Fatalf("trace Ops = %d", tr.Ops)
	}
}

func TestCombine(t *testing.T) {
	s := sim.New()
	n := NewNode(s, arch.KNL())
	p := n.NewProcess(1 << 16)
	a := p.Alloc(256)
	b := p.Alloc(256)
	ab := p.Bytes(a, 256)
	bb := p.Bytes(b, 256)
	for i := range ab {
		ab[i] = byte(i)
		bb[i] = byte(200) // forces wraparound for i > 55
	}
	var elapsed float64
	s.Spawn("c", func(sp *sim.Proc) {
		start := sp.Now()
		p.Combine(sp, a, b, 256)
		elapsed = sp.Now() - start
		p.Combine(sp, a, b, 0) // no-op
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range p.Bytes(a, 256) {
		if v != byte(i)+200 {
			t.Fatalf("combine[%d] = %d, want %d", i, v, byte(i)+200)
		}
	}
	if want := 256 * n.Arch.MemCopyBeta(); elapsed != want {
		t.Fatalf("combine time %g, want %g", elapsed, want)
	}
}

func TestVMWriteContendsOnDestination(t *testing.T) {
	// For writes, the *destination* mm is the contended one (all-to-one).
	a := arch.KNL()
	lat := func(writers int) float64 {
		s := sim.New()
		n := NewNode(s, a)
		n.CopyData = false
		dst := n.NewProcess(1 << 30)
		size := int64(256 << 10)
		da := dst.Alloc(size * int64(writers))
		for i := 0; i < writers; i++ {
			i := i
			src := n.NewProcess(1 << 22)
			sa := src.Alloc(size)
			s.Spawn(fmt.Sprintf("w%d", i), func(p *sim.Proc) {
				if err := src.VMWrite(p, sa, dst, da+Addr(int64(i)*size), size); err != nil {
					panic(err)
				}
			})
		}
		if err := s.Run(); err != nil {
			panic(err)
		}
		return s.Now()
	}
	if one, many := lat(1), lat(16); many < 4*one {
		t.Fatalf("16 writers %.1f not clearly above 1 writer %.1f", many, one)
	}
}

func TestPidsAreStable(t *testing.T) {
	s := sim.New()
	n := NewNode(s, arch.KNL())
	n.CopyData = false
	p1 := n.NewProcess(4096)
	p2 := n.NewProcess(4096)
	if p1.PID() == p2.PID() {
		t.Fatal("duplicate pids")
	}
	if len(n.Procs()) != 2 {
		t.Fatalf("procs = %d", len(n.Procs()))
	}
	if p1.UID() != 0 {
		t.Fatal("default uid non-zero")
	}
}

func TestInFlightVisible(t *testing.T) {
	s := sim.New()
	n := NewNode(s, arch.KNL())
	n.CopyData = false
	src := n.NewProcess(1 << 24)
	size := int64(512 * 4096)
	sa := src.Alloc(size)
	dst := n.NewProcess(1 << 24)
	da := dst.Alloc(size)
	var seen int
	s.Spawn("reader", func(p *sim.Proc) {
		if err := dst.VMRead(p, da, src, sa, size); err != nil {
			panic(err)
		}
	})
	s.Spawn("observer", func(p *sim.Proc) {
		p.Sleep(20) // mid-transfer
		seen = src.InFlight()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if seen != 1 {
		t.Fatalf("observer saw inflight = %d, want 1", seen)
	}
}
