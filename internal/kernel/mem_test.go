package kernel

import (
	"bytes"
	"testing"

	"camc/internal/arch"
	"camc/internal/sim"
)

// TestSparseViewZeroFill checks that untouched pages read as zero and
// that writes through one view are visible through later overlapping
// views — the make([]byte, memLimit) semantics the extent table replaces.
func TestSparseViewZeroFill(t *testing.T) {
	s := sim.New()
	n := NewNode(s, arch.KNL())
	p := n.NewProcess(1 << 30)

	ps := int64(n.Arch.PageSize)
	// Touch two distant ranges, then a range spanning the gap.
	copy(p.Bytes(0, 16), []byte("abcdefghijklmnop"))
	copy(p.Bytes(Addr(10*ps), 4), []byte("WXYZ"))
	if len(p.mem.exts) != 2 {
		t.Fatalf("expected 2 extents, got %d", len(p.mem.exts))
	}
	span := p.Bytes(0, 10*ps+4)
	if !bytes.Equal(span[:16], []byte("abcdefghijklmnop")) {
		t.Errorf("first write lost after merge: %q", span[:16])
	}
	if !bytes.Equal(span[10*ps:10*ps+4], []byte("WXYZ")) {
		t.Errorf("second write lost after merge: %q", span[10*ps:10*ps+4])
	}
	for i := int64(16); i < 10*ps; i++ {
		if span[i] != 0 {
			t.Fatalf("untouched byte %d reads %d, want 0", i, span[i])
		}
	}
	if len(p.mem.exts) != 1 {
		t.Errorf("expected 1 extent after merging view, got %d", len(p.mem.exts))
	}
	// A very large memLimit must not materialize anything by itself.
	p2 := n.NewProcess(1 << 45)
	if got := len(p2.mem.exts); got != 0 {
		t.Errorf("fresh process materialized %d extents", got)
	}
}

// TestDigestMatchesAcrossModes runs the same operation chain on a
// materialized node and on a dataless digest-tracking node and requires
// identical per-page digests: the property the sparse cross-check arm
// of the fuzzer is built on.
func TestDigestMatchesAcrossModes(t *testing.T) {
	run := func(copyData bool) (uint64, uint64) {
		s := sim.New()
		n := NewNode(s, arch.KNL())
		n.CopyData = copyData
		n.DigestPayload = true
		a := n.NewProcess(1 << 24)
		b := n.NewProcess(1 << 24)

		seed := make([]byte, 9000)
		for i := range seed {
			seed[i] = byte(i * 7)
		}
		a.WriteAt(64, seed)
		b.FillAt(0, 4096, 0xEE)

		s.Spawn("xfer", func(sp *sim.Proc) {
			// Cross-process CMA both directions, then local ops.
			if err := b.VMRead(sp, 128, a, 64, 5000); err != nil {
				t.Error(err)
			}
			if err := a.VMWrite(sp, 70, b, 9000, 3000); err != nil {
				t.Error(err)
			}
			a.Combine(sp, 200, 80, 1000)
			b.LocalCopy(sp, 20000, 100, 2500)
		})
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return a.MemDigest(), b.MemDigest()
	}

	aBytes, bBytes := run(true)
	aDigest, bDigest := run(false)
	if aBytes != aDigest || bBytes != bDigest {
		t.Errorf("digest mismatch across modes: bytes=(%x,%x) dataless=(%x,%x)",
			aBytes, bBytes, aDigest, bDigest)
	}
	if aBytes == 0 || bBytes == 0 {
		t.Errorf("tracked processes returned zero MemDigest: (%x,%x)", aBytes, bBytes)
	}
}

// TestDigestDistinguishesStreams checks the fold actually separates
// different operation streams (different source, different offset,
// different op kind).
func TestDigestDistinguishesStreams(t *testing.T) {
	mk := func(f func(p *Process)) uint64 {
		s := sim.New()
		n := NewNode(s, arch.KNL())
		n.CopyData = false
		n.DigestPayload = true
		p := n.NewProcess(1 << 20)
		f(p)
		return p.MemDigest()
	}
	base := mk(func(p *Process) { p.WriteAt(0, []byte("hello")) })
	if d := mk(func(p *Process) { p.WriteAt(0, []byte("hellp")) }); d == base {
		t.Error("different content produced equal digest")
	}
	if d := mk(func(p *Process) { p.WriteAt(1, []byte("hello")) }); d == base {
		t.Error("different offset produced equal digest")
	}
	if d := mk(func(p *Process) { p.FillAt(0, 5, 'h') }); d == base {
		t.Error("different op kind produced equal digest")
	}
}

// TestLocalCopyOverlap pins the memmove semantics of LocalCopy through
// the sparse backing: an overlapping forward copy must not corrupt.
func TestLocalCopyOverlap(t *testing.T) {
	s := sim.New()
	n := NewNode(s, arch.KNL())
	p := n.NewProcess(1 << 20)
	copy(p.Bytes(0, 8), []byte("12345678"))
	s.Spawn("cp", func(sp *sim.Proc) {
		p.LocalCopy(sp, 4, 0, 8) // dst overlaps src tail
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got := string(p.Bytes(0, 12)); got != "123412345678" {
		t.Errorf("overlapping LocalCopy produced %q, want %q", got, "123412345678")
	}
}
