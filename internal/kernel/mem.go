package kernel

import (
	"fmt"
	"sort"
)

// Sparse payload memory. A simulated address space used to be one
// eagerly allocated []byte of memLimit bytes per process — fine for
// correctness tests at tens of ranks, fatal for cluster-scale sweeps
// where the address space is purely virtual (a 64k-rank allgather would
// materialize terabytes before the first simulated copy). The backing
// is now a sorted list of page-aligned extents materialized only for
// the byte ranges actually touched, so resident memory is
// O(pages-touched) instead of O(memLimit), and the contiguous
// Bytes(a, n) API survives unchanged.
//
// Independently of the bytes, a process can track per-page FNV-1a
// digests summarizing the *operation stream* applied to each page:
// every payload-mutating operation (seeding via WriteAt/FillAt, CMA
// transfers, shm cell delivery, Combine, LocalCopy) folds its kind,
// offsets, and a summary of its source range into the destination
// pages' digests. The fold is maintained identically whether or not
// bytes are materialized, so a materialized run (whose bytes the
// reference executor verifies exactly) and a dataless checksum-summary
// run can be compared digest-for-digest: equal digests mean the two
// runs applied the identical operation stream to identical sources —
// the byte oracle transfers to runs that never held the bytes.

// fnv-1a parameters (64-bit).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// digest-fold operation tags: each payload-mutating operation folds its
// tag first, so streams that differ in operation kind can never
// collide by offset coincidence.
const (
	opSeed    = 0x5eed // WriteAt: content hash of host-provided bytes
	opFill    = 0xf111 // FillAt: repeated fill byte
	opWrite   = 0x3317 // transfer landing: source-range summary
	opCombine = 0xc0b1 // elementwise += : source-range summary
)

// extent is one materialized page-aligned span of an address space.
type extent struct {
	base int64
	buf  []byte
}

// payloadMem is a process's payload state: sparse byte extents (bytes
// mode) and per-page op-fold digests (tracking mode). Both may be off —
// the cost-only sweep configuration — in which case every payload
// operation is a no-op exactly as the old dataless mode was.
type payloadMem struct {
	pageSize int64
	bytes    bool // materialize real bytes on demand
	track    bool // maintain per-page digests
	exts     []extent
	digests  map[int64]uint64
}

func (m *payloadMem) init(pageSize int64, bytes, track bool) {
	m.pageSize = pageSize
	m.bytes = bytes
	m.track = track
	if track {
		m.digests = make(map[int64]uint64)
	}
}

// view returns a contiguous writable slice over [a, a+n), materializing
// (and merging) whatever page-aligned extents are needed. Bounds are
// the caller's responsibility.
func (m *payloadMem) view(a, n int64) []byte {
	if n == 0 {
		return nil
	}
	lo := a / m.pageSize * m.pageSize
	hi := (a + n + m.pageSize - 1) / m.pageSize * m.pageSize
	// First extent that ends beyond lo.
	i := sort.Search(len(m.exts), func(i int) bool {
		return m.exts[i].base+int64(len(m.exts[i].buf)) > lo
	})
	if i < len(m.exts) && m.exts[i].base <= lo && m.exts[i].base+int64(len(m.exts[i].buf)) >= hi {
		e := m.exts[i]
		return e.buf[a-e.base : a-e.base+n]
	}
	// Merge every extent overlapping [lo, hi) into one fresh span that
	// covers the union; untouched gaps materialize as zero pages, which
	// matches the old make([]byte, memLimit) semantics.
	newLo, newHi := lo, hi
	j := i
	for j < len(m.exts) && m.exts[j].base < hi {
		if m.exts[j].base < newLo {
			newLo = m.exts[j].base
		}
		if end := m.exts[j].base + int64(len(m.exts[j].buf)); end > newHi {
			newHi = end
		}
		j++
	}
	buf := make([]byte, newHi-newLo)
	for k := i; k < j; k++ {
		copy(buf[m.exts[k].base-newLo:], m.exts[k].buf)
	}
	merged := extent{base: newLo, buf: buf}
	m.exts = append(m.exts, extent{})
	copy(m.exts[i+1:], m.exts[j:])
	m.exts[i] = merged
	m.exts = m.exts[:len(m.exts)-(j-i)]
	return buf[a-newLo : a-newLo+n]
}

// fnvNum folds a 64-bit number into an FNV-1a state byte by byte.
func fnvNum(h, x uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= x & 0xff
		h *= fnvPrime64
		x >>= 8
	}
	return h
}

// fnvBytes folds raw bytes into an FNV-1a state.
func fnvBytes(h uint64, b []byte) uint64 {
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime64
	}
	return h
}

// rangeSum summarizes the source range [a, a+n): the digest of every
// overlapped page folded together with the intra-page sub-range it
// contributes. Two processes whose pages carry equal digests produce
// equal summaries for equal ranges — which is what lets a transfer's
// destination fold stay identical across bytes and digest-only runs.
func (m *payloadMem) rangeSum(a, n int64) uint64 {
	h := uint64(fnvOffset64)
	if n <= 0 {
		return h
	}
	for pg := a / m.pageSize; pg*m.pageSize < a+n; pg++ {
		lo := pg * m.pageSize
		hi := lo + m.pageSize
		if a > lo {
			lo = a
		}
		if a+n < hi {
			hi = a + n
		}
		h = fnvNum(h, m.digests[pg])
		h = fnvNum(h, uint64(lo-pg*m.pageSize))
		h = fnvNum(h, uint64(hi-pg*m.pageSize))
	}
	return h
}

// applyOp folds one payload-mutating operation over the destination
// pages of [a, a+n): the op tag, the operation's source summary, and
// the intra-page sub-range each page received.
func (m *payloadMem) applyOp(a, n int64, op uint64, sum uint64) {
	if n <= 0 {
		return
	}
	for pg := a / m.pageSize; pg*m.pageSize < a+n; pg++ {
		lo := pg * m.pageSize
		hi := lo + m.pageSize
		if a > lo {
			lo = a
		}
		if a+n < hi {
			hi = a + n
		}
		d := m.digests[pg]
		d = fnvNum(d, op)
		d = fnvNum(d, sum)
		d = fnvNum(d, uint64(lo-pg*m.pageSize))
		d = fnvNum(d, uint64(hi-pg*m.pageSize))
		m.digests[pg] = d
	}
}

// movePayload applies one completed transfer of n bytes from (src, sa)
// to (dst, da): the real bytes when the node materializes them, and the
// digest fold when tracking is on. Call it only after the virtual-time
// cost has been charged — it never sleeps, so it cannot perturb
// latencies or dispatch counts. src and dst may be the same process
// with overlapping ranges (LocalCopy): the source summary is taken
// before the bytes move, matching the copy's memmove semantics in the
// fold order.
func movePayload(dst *Process, da Addr, src *Process, sa Addr, n int64) {
	if n <= 0 {
		return
	}
	if !dst.mem.bytes && !dst.mem.track {
		return
	}
	var sum uint64
	if dst.mem.track {
		sum = src.mem.rangeSum(int64(sa), n)
	}
	if dst.mem.bytes {
		// Take the source view first: if the two ranges live in one
		// payloadMem, the later view call may merge extents, and a merge
		// leaves a stale slice's old buffer readable but abandons writes
		// through it — so the destination view must be the last taken.
		s := src.mem.view(int64(sa), n)
		copy(dst.mem.view(int64(da), n), s)
	}
	if dst.mem.track {
		dst.mem.applyOp(int64(da), n, opWrite, sum)
	}
}

// PageDigest is one page's op-fold digest.
type PageDigest struct {
	Page   int64
	Digest uint64
}

// PageDigests returns every touched page's digest in page order. Empty
// when digest tracking is off.
func (p *Process) PageDigests() []PageDigest {
	out := make([]PageDigest, 0, len(p.mem.digests))
	for pg, d := range p.mem.digests {
		out = append(out, PageDigest{Page: pg, Digest: d})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Page < out[j].Page })
	return out
}

// MemDigest folds the whole address space's page digests into one
// value: equal MemDigests mean the identical operation stream touched
// the identical pages. Zero when digest tracking is off.
func (p *Process) MemDigest() uint64 {
	if !p.mem.track {
		return 0
	}
	h := uint64(fnvOffset64)
	for _, pd := range p.PageDigests() {
		h = fnvNum(h, uint64(pd.Page))
		h = fnvNum(h, pd.Digest)
	}
	return h
}

// WriteAt stores host-provided payload bytes at a through the payload
// layer: bytes mode copies them into the sparse backing, and tracking
// mode folds their content hash — so a materialized run and a
// checksum-summary run seeded with the same bytes stay
// digest-comparable. Harnesses must seed through WriteAt/FillAt (not a
// Bytes slice) when they intend to compare digests across runs.
func (p *Process) WriteAt(a Addr, data []byte) {
	n := int64(len(data))
	if n == 0 {
		return
	}
	p.checkAccess(a, n)
	if !p.mem.bytes && !p.mem.track {
		panic(fmt.Sprintf("kernel: WriteAt on pid %d without payload bytes or digest tracking", p.pid))
	}
	if p.mem.bytes {
		copy(p.mem.view(int64(a), n), data)
	}
	if p.mem.track {
		p.mem.applyOp(int64(a), n, opSeed, fnvBytes(fnvOffset64, data))
	}
}

// FillAt stores n copies of v at a through the payload layer, with the
// same digest discipline as WriteAt.
func (p *Process) FillAt(a Addr, n int64, v byte) {
	if n <= 0 {
		return
	}
	p.checkAccess(a, n)
	if !p.mem.bytes && !p.mem.track {
		panic(fmt.Sprintf("kernel: FillAt on pid %d without payload bytes or digest tracking", p.pid))
	}
	if p.mem.bytes {
		b := p.mem.view(int64(a), n)
		for i := range b {
			b[i] = v
		}
	}
	if p.mem.track {
		h := fnvNum(fnvOffset64, uint64(v))
		h = fnvNum(h, uint64(n))
		p.mem.applyOp(int64(a), n, opFill, h)
	}
}

// RangeDigest summarizes the payload range [a, a+n) for transport-level
// digest threading (the shm staging path). Panics unless digest
// tracking is on.
func (p *Process) RangeDigest(a Addr, n int64) uint64 {
	if !p.mem.track {
		panic(fmt.Sprintf("kernel: RangeDigest on pid %d without digest tracking", p.pid))
	}
	p.checkAccess(a, n)
	return p.mem.rangeSum(int64(a), n)
}

// ApplyPayload folds a transfer summarized by sum (from RangeDigest on
// the source) into [a, a+n)'s page digests — the digest-mode
// counterpart of a transport delivering bytes. No-op unless digest
// tracking is on.
func (p *Process) ApplyPayload(a Addr, n int64, sum uint64) {
	if !p.mem.track {
		return
	}
	p.checkAccess(a, n)
	p.mem.applyOp(int64(a), n, opWrite, sum)
}

func (p *Process) checkAccess(a Addr, n int64) {
	if a < 0 || n < 0 || a+Addr(n) > p.memLimit {
		panic(fmt.Sprintf("kernel: access [%d,%d) out of range", a, a+Addr(n)))
	}
}
