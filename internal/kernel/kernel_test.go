package kernel

import (
	"bytes"
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"camc/internal/arch"
	"camc/internal/sim"
)

func newKNLNode(s *sim.Simulation) *Node { return NewNode(s, arch.KNL()) }

func fillPattern(b []byte, seed byte) {
	for i := range b {
		b[i] = seed + byte(i*7)
	}
}

func TestVMReadMovesData(t *testing.T) {
	s := sim.New()
	n := newKNLNode(s)
	src := n.NewProcess(1 << 20)
	dst := n.NewProcess(1 << 20)
	const size = 10000
	sa := src.Alloc(size)
	da := dst.Alloc(size)
	fillPattern(src.Bytes(sa, size), 3)
	s.Spawn("reader", func(p *sim.Proc) {
		if err := dst.VMRead(p, da, src, sa, size); err != nil {
			t.Errorf("VMRead: %v", err)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(src.Bytes(sa, size), dst.Bytes(da, size)) {
		t.Fatal("data mismatch after VMRead")
	}
}

func TestVMWriteMovesData(t *testing.T) {
	s := sim.New()
	n := newKNLNode(s)
	a := n.NewProcess(1 << 20)
	b := n.NewProcess(1 << 20)
	const size = 8192
	aa := a.Alloc(size)
	ba := b.Alloc(size)
	fillPattern(a.Bytes(aa, size), 9)
	s.Spawn("writer", func(p *sim.Proc) {
		if err := a.VMWrite(p, aa, b, ba, size); err != nil {
			t.Errorf("VMWrite: %v", err)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(aa, size), b.Bytes(ba, size)) {
		t.Fatal("data mismatch after VMWrite")
	}
}

// singleReadLatency runs one uncontended VMRead of size bytes and returns
// the virtual latency.
func singleReadLatency(t *testing.T, a *arch.Profile, size int64) float64 {
	t.Helper()
	s := sim.New()
	n := NewNode(s, a)
	n.CopyData = false
	src := n.NewProcess(1 << 30)
	dst := n.NewProcess(1 << 30)
	sa := src.Alloc(size)
	da := dst.Alloc(size)
	var lat float64
	s.Spawn("r", func(p *sim.Proc) {
		start := p.Now()
		if err := dst.VMRead(p, da, src, sa, size); err != nil {
			t.Errorf("VMRead: %v", err)
		}
		lat = p.Now() - start
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	return lat
}

func TestSingleReadMatchesClosedForm(t *testing.T) {
	// With no contention the latency must be exactly α + nβ + ⌈n/s⌉·l.
	for _, a := range arch.All() {
		for _, size := range []int64{1, 4096, 65536, 1 << 20} {
			got := singleReadLatency(t, a, size)
			pages := float64(a.Pages(int(size)))
			want := a.Alpha + float64(size)*a.Beta() + pages*a.LockPin
			if math.Abs(got-want) > 1e-6*want {
				t.Errorf("%s size %d: latency %g, want %g", a.Name, size, got, want)
			}
		}
	}
}

// concurrentReadLatency has `readers` processes read size bytes each from
// the same source concurrently; returns the time until all complete.
func concurrentReadLatency(a *arch.Profile, readers int, size int64, sameBuffer bool) float64 {
	s := sim.New()
	n := NewNode(s, a)
	n.CopyData = false
	src := n.NewProcess(1 << 32)
	sa := src.Alloc(size * int64(readers))
	for i := 0; i < readers; i++ {
		i := i
		dst := n.NewProcess(1 << 30)
		da := dst.Alloc(size)
		off := Addr(int64(i) * size)
		if sameBuffer {
			off = 0
		}
		s.Spawn(fmt.Sprintf("r%d", i), func(p *sim.Proc) {
			if err := dst.VMRead(p, da, src, sa+off, size); err != nil {
				panic(err)
			}
		})
	}
	if err := s.Run(); err != nil {
		panic(err)
	}
	return s.Now()
}

func TestOneToAllContentionGrows(t *testing.T) {
	// Fig 2(b)/(c): latency inflates super-linearly with concurrent
	// readers of the same source process.
	a := arch.KNL()
	size := int64(256 << 10)
	t1 := concurrentReadLatency(a, 1, size, false)
	t16 := concurrentReadLatency(a, 16, size, false)
	t64 := concurrentReadLatency(a, 64, size, false)
	if t16 < 3*t1 {
		t.Errorf("16 readers %.1fus not clearly above 1 reader %.1fus", t16, t1)
	}
	if t64 < 2*t16 {
		t.Errorf("64 readers %.1fus not clearly above 16 readers %.1fus", t64, t16)
	}
}

func TestSameVsDifferentBufferIrrelevant(t *testing.T) {
	// Fig 2(b) vs 2(c): the bottleneck is the source *process* (its mm
	// lock), not the buffer, so same-buffer and distinct-buffer
	// one-to-all latencies match.
	a := arch.KNL()
	same := concurrentReadLatency(a, 32, 64<<10, true)
	diff := concurrentReadLatency(a, 32, 64<<10, false)
	if math.Abs(same-diff) > 1e-9*same {
		t.Errorf("same-buffer %.3f vs different-buffer %.3f should be equal", same, diff)
	}
}

func TestAllToAllPairsScale(t *testing.T) {
	// Fig 2(a): disjoint pairs do not contend; latency stays near the
	// single-pair latency regardless of pair count (up to the bandwidth
	// ceiling).
	a := arch.KNL()
	size := int64(64 << 10)
	lat := func(pairs int) float64 {
		s := sim.New()
		n := NewNode(s, a)
		n.CopyData = false
		srcs := make([]*Process, pairs)
		sas := make([]Addr, pairs)
		for i := range srcs {
			srcs[i] = n.NewProcess(1 << 30)
			sas[i] = srcs[i].Alloc(size)
		}
		for i := 0; i < pairs; i++ {
			i := i
			dst := n.NewProcess(1 << 30)
			da := dst.Alloc(size)
			s.Spawn(fmt.Sprintf("r%d", i), func(p *sim.Proc) {
				if err := dst.VMRead(p, da, srcs[i], sas[i], size); err != nil {
					panic(err)
				}
			})
		}
		if err := s.Run(); err != nil {
			panic(err)
		}
		return s.Now()
	}
	t1 := lat(1)
	t4 := lat(4)
	t32 := lat(32)
	if t4 > 1.5*t1 {
		t.Errorf("4 disjoint pairs %.2f vs 1 pair %.2f: should scale", t4, t1)
	}
	// 32 pairs share the aggregate bandwidth ceiling but must stay far
	// below the one-to-all case.
	oneToAll := concurrentReadLatency(a, 32, size, false)
	if t32 > oneToAll/2 {
		t.Errorf("32 disjoint pairs %.2f not clearly below one-to-all %.2f", t32, oneToAll)
	}
}

func TestBreakdownPhases(t *testing.T) {
	// Fig 4: uncontended split has copy+pin+lock+syscall+permcheck; the
	// phases must sum to the total and match the profile's split.
	s := sim.New()
	a := arch.Broadwell()
	n := NewNode(s, a)
	n.CopyData = false
	src := n.NewProcess(1 << 24)
	dst := n.NewProcess(1 << 24)
	size := int64(100 * a.PageSize)
	sa := src.Alloc(size)
	da := dst.Alloc(size)
	var bd Breakdown
	s.Spawn("r", func(p *sim.Proc) {
		var err error
		start := p.Now()
		bd, err = dst.VMReadPartial(p, da, src, sa, size, size)
		if err != nil {
			t.Errorf("read: %v", err)
		}
		if math.Abs((p.Now()-start)-bd.Total()) > 1e-9 {
			t.Errorf("breakdown total %g != elapsed %g", bd.Total(), p.Now()-start)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(bd.Syscall-a.Alpha*a.SyscallFrac) > 1e-12 {
		t.Errorf("syscall = %g", bd.Syscall)
	}
	if math.Abs(bd.Lock-100*a.LockPin*a.LockFrac) > 1e-9 {
		t.Errorf("lock = %g, want %g", bd.Lock, 100*a.LockPin*a.LockFrac)
	}
	if math.Abs(bd.Pin-100*a.LockPin*(1-a.LockFrac)) > 1e-9 {
		t.Errorf("pin = %g", bd.Pin)
	}
}

func TestBreakdownLockGrowsWithContention(t *testing.T) {
	// Fig 4: same page count, more contenders => only Lock inflates.
	a := arch.Broadwell()
	run := func(readers int) Breakdown {
		s := sim.New()
		n := NewNode(s, a)
		n.CopyData = false
		src := n.NewProcess(1 << 28)
		size := int64(64 * a.PageSize)
		sa := src.Alloc(size * int64(readers))
		bds := make([]Breakdown, readers)
		for i := 0; i < readers; i++ {
			i := i
			dst := n.NewProcess(1 << 24)
			da := dst.Alloc(size)
			s.Spawn(fmt.Sprintf("r%d", i), func(p *sim.Proc) {
				bd, err := dst.VMReadPartial(p, da, src, sa+Addr(int64(i)*size), size, size)
				if err != nil {
					panic(err)
				}
				bds[i] = bd
			})
		}
		if err := s.Run(); err != nil {
			panic(err)
		}
		return bds[0]
	}
	solo := run(1)
	crowd := run(8)
	if crowd.Lock < 3*solo.Lock {
		t.Errorf("lock with 8 readers %.2f not clearly above solo %.2f", crowd.Lock, solo.Lock)
	}
	if math.Abs(crowd.Pin-solo.Pin) > 1e-9 {
		t.Errorf("pin changed with contention: %g vs %g", crowd.Pin, solo.Pin)
	}
	if math.Abs(crowd.Syscall-solo.Syscall) > 1e-9 {
		t.Errorf("syscall changed with contention")
	}
}

func TestPartialIOVecSemantics(t *testing.T) {
	// Table III: the four step-isolation experiments.
	s := sim.New()
	a := arch.KNL()
	n := NewNode(s, a)
	n.CopyData = false
	src := n.NewProcess(1 << 24)
	dst := n.NewProcess(1 << 24)
	const pages = 50
	size := int64(pages * 4096)
	sa := src.Alloc(size)
	da := dst.Alloc(size)
	var t1, t2, t3, t4 float64
	s.Spawn("r", func(p *sim.Proc) {
		bd, _ := dst.VMReadPartial(p, da, src, sa, 0, 0)
		t1 = bd.Total()
		bd, _ = dst.VMReadPartial(p, da, src, sa, 0, 1)
		t2 = bd.Total()
		bd, _ = dst.VMReadPartial(p, da, src, sa, 0, size)
		t3 = bd.Total()
		bd, _ = dst.VMReadPartial(p, da, src, sa, size, size)
		t4 = bd.Total()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !(t1 < t2 && t2 < t3 && t3 < t4) {
		t.Fatalf("want T1 < T2 < T3 < T4, got %g %g %g %g", t1, t2, t3, t4)
	}
	if math.Abs(t1-a.Alpha*a.SyscallFrac) > 1e-12 {
		t.Errorf("T1 = %g, want syscall-only %g", t1, a.Alpha*a.SyscallFrac)
	}
	// l estimated as (T3-T2)/(pages-1), β as (T4-T3)/size.
	lHat := (t3 - t2) / (pages - 1)
	if math.Abs(lHat-a.LockPin) > 1e-9 {
		t.Errorf("l-hat = %g, want %g", lHat, a.LockPin)
	}
	betaHat := (t4 - t3) / float64(size)
	if math.Abs(betaHat-a.Beta()) > 1e-12 {
		t.Errorf("beta-hat = %g, want %g", betaHat, a.Beta())
	}
}

func TestPermissionDenied(t *testing.T) {
	s := sim.New()
	n := newKNLNode(s)
	src := n.NewProcess(1 << 16)
	dst := n.NewProcess(1 << 16)
	src.SetUID(42)
	sa := src.Alloc(4096)
	da := dst.Alloc(4096)
	s.Spawn("r", func(p *sim.Proc) {
		err := dst.VMRead(p, da, src, sa, 4096)
		if _, ok := err.(*PermissionError); !ok {
			t.Errorf("err = %v, want PermissionError", err)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestOutOfRangeRejected(t *testing.T) {
	s := sim.New()
	n := newKNLNode(s)
	src := n.NewProcess(1 << 16)
	dst := n.NewProcess(1 << 16)
	s.Spawn("r", func(p *sim.Proc) {
		if err := dst.VMRead(p, 0, src, 0, 1<<20); err == nil {
			t.Error("oversized read should fail")
		}
		if err := dst.VMRead(p, -4, src, 0, 16); err == nil {
			t.Error("negative local address should fail")
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestInterSocketCopySlower(t *testing.T) {
	a := arch.Broadwell()
	lat := func(sameSocket bool) float64 {
		s := sim.New()
		n := NewNode(s, a)
		n.CopyData = false
		src := n.NewProcess(1 << 24)
		dst := n.NewProcess(1 << 24)
		if !sameSocket {
			dst.SetSocket(1)
		}
		size := int64(1 << 20)
		sa := src.Alloc(size)
		da := dst.Alloc(size)
		s.Spawn("r", func(p *sim.Proc) {
			if err := dst.VMRead(p, da, src, sa, size); err != nil {
				panic(err)
			}
		})
		if err := s.Run(); err != nil {
			panic(err)
		}
		return s.Now()
	}
	intra := lat(true)
	inter := lat(false)
	if inter <= intra {
		t.Fatalf("inter-socket %.1f should exceed intra-socket %.1f", inter, intra)
	}
}

func TestAllocPageAlignedAndDisjoint(t *testing.T) {
	f := func(sizes []uint16) bool {
		s := sim.New()
		n := NewNode(s, arch.KNL())
		n.CopyData = false
		p := n.NewProcess(1 << 30)
		var prevEnd Addr
		for _, sz := range sizes {
			a := p.Alloc(int64(sz))
			if a%4096 != 0 {
				return false
			}
			if a < prevEnd {
				return false
			}
			prevEnd = a + Addr(sz)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestLocalCopy(t *testing.T) {
	s := sim.New()
	n := newKNLNode(s)
	p := n.NewProcess(1 << 20)
	src := p.Alloc(5000)
	dst := p.Alloc(5000)
	fillPattern(p.Bytes(src, 5000), 17)
	var elapsed float64
	s.Spawn("c", func(sp *sim.Proc) {
		start := sp.Now()
		p.LocalCopy(sp, dst, src, 5000)
		elapsed = sp.Now() - start
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(p.Bytes(src, 5000), p.Bytes(dst, 5000)) {
		t.Fatal("local copy mismatch")
	}
	want := 5000 * n.Arch.MemCopyBeta()
	if math.Abs(elapsed-want) > 1e-9 {
		t.Fatalf("local copy time %g, want %g", elapsed, want)
	}
}

func TestTraceAccumulates(t *testing.T) {
	s := sim.New()
	n := newKNLNode(s)
	n.CopyData = false
	tr := n.EnableTrace()
	src := n.NewProcess(1 << 24)
	dst := n.NewProcess(1 << 24)
	sa := src.Alloc(1 << 20)
	da := dst.Alloc(1 << 20)
	s.Spawn("r", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			if err := dst.VMRead(p, da, src, sa, 1<<20); err != nil {
				panic(err)
			}
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if tr.Ops != 3 {
		t.Fatalf("trace ops = %d, want 3", tr.Ops)
	}
	if tr.Sum.Copy <= 0 || tr.Sum.Lock <= 0 {
		t.Fatalf("trace sums not populated: %+v", tr.Sum)
	}
	if tr.MaxC != 1 {
		t.Fatalf("maxC = %d, want 1", tr.MaxC)
	}
}

func TestDeterministicLatency(t *testing.T) {
	f := func(readers8 uint8, sizeKB uint8) bool {
		readers := int(readers8%16) + 1
		size := (int64(sizeKB%64) + 1) * 4096
		l1 := concurrentReadLatency(arch.KNL(), readers, size, false)
		l2 := concurrentReadLatency(arch.KNL(), readers, size, false)
		return l1 == l2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestDatalessMatchesDataTiming(t *testing.T) {
	run := func(copyData bool) float64 {
		s := sim.New()
		n := newKNLNode(s)
		n.CopyData = copyData
		src := n.NewProcess(1 << 22)
		dst := n.NewProcess(1 << 22)
		sa := src.Alloc(1 << 20)
		da := dst.Alloc(1 << 20)
		s.Spawn("r", func(p *sim.Proc) {
			if err := dst.VMRead(p, da, src, sa, 1<<20); err != nil {
				panic(err)
			}
		})
		if err := s.Run(); err != nil {
			panic(err)
		}
		return s.Now()
	}
	if a, b := run(true), run(false); a != b {
		t.Fatalf("dataless timing %g differs from data timing %g", b, a)
	}
}
