package kernel

import (
	"fmt"

	"camc/internal/sim"
	"camc/internal/trace"
)

// TransientError is an EAGAIN-style syscall failure injected by the
// node's fault plan: the CMA syscall bailed at entry (get_user_pages
// under mm pressure), consuming the entry cost but moving no bytes.
// Callers retry with backoff; see VMReadRetry.
type TransientError struct {
	CallerPID, TargetPID int
}

func (e *TransientError) Error() string {
	return fmt.Sprintf("kernel: transient failure (EAGAIN) pid %d -> pid %d", e.CallerPID, e.TargetPID)
}

// ExhaustedError reports that a retried transfer ran out of its
// zero-progress retry budget. Completed is how many payload bytes made
// it before the kernel assist was abandoned; the caller is expected to
// finish the remainder over a degraded path (BounceRead / BounceWrite).
type ExhaustedError struct {
	CallerPID, TargetPID int
	Attempts             int
	Completed            int64
}

func (e *ExhaustedError) Error() string {
	return fmt.Sprintf("kernel: CMA pid %d -> pid %d gave up after %d zero-progress attempts (%d bytes completed)",
		e.CallerPID, e.TargetPID, e.Attempts, e.Completed)
}

// vmRetry drives vmTransfer to full completion: short completions
// resume from the completed offset at no budget cost (progress was
// made), while transient failures sleep an exponential virtual-time
// backoff and consume the plan's per-transfer retry budget. When the
// budget is exhausted it returns ExhaustedError with the progress so
// far; any other error is returned as-is.
func (caller *Process) vmRetry(sp *sim.Proc, callerAddr Addr, remote *Process, remoteAddr Addr, size int64, read bool) (int64, error) {
	n := caller.node
	completed := int64(0)
	attempts := 0
	for completed < size {
		_, got, err := n.vmTransfer(sp, caller,
			callerAddr+Addr(completed), remote, remoteAddr+Addr(completed),
			size-completed, size-completed, read)
		completed += got
		if err == nil {
			continue // complete, or short with progress: resume for free
		}
		if _, ok := err.(*TransientError); !ok {
			return completed, err
		}
		attempts++
		if attempts >= n.fault.MaxRetries() {
			return completed, &ExhaustedError{
				CallerPID: caller.pid, TargetPID: remote.pid,
				Attempts: attempts, Completed: completed,
			}
		}
		d := n.fault.Backoff(attempts - 1)
		if n.rec != nil {
			n.rec.Instant(n.rec.LaneForPid(caller.pid), trace.CatFault, "fault_backoff",
				trace.F("peer", float64(n.rec.LaneForPid(remote.pid))),
				trace.F("attempt", float64(attempts)), trace.F("sleep", d))
		}
		sp.Sleep(d)
	}
	return completed, nil
}

// VMReadRetry is VMRead driven to full completion under an active fault
// plan: short completions resume from the completed offset, transient
// failures retry with exponential backoff in virtual time. It returns
// the bytes completed, which is size unless the retry budget is
// exhausted (ExhaustedError) or a hard error occurs.
func (caller *Process) VMReadRetry(sp *sim.Proc, dst Addr, src *Process, srcAddr Addr, size int64) (int64, error) {
	return caller.vmRetry(sp, dst, src, srcAddr, size, true)
}

// VMWriteRetry is the write-direction counterpart of VMReadRetry.
func (caller *Process) VMWriteRetry(sp *sim.Proc, src Addr, dst *Process, dstAddr Addr, size int64) (int64, error) {
	return caller.vmRetry(sp, src, dst, dstAddr, size, false)
}

// bounce is the degraded data path a rank falls back to when the kernel
// assist against one peer keeps failing: a pre-mapped POSIX shm bounce
// buffer, costed as the classic two-copy protocol (copy-in plus
// copy-out per cell) with no syscall, no permission check and no mm
// locking — which is exactly why it survives the injected CMA faults.
// The caller performs both copies itself, so no peer cooperation is
// needed (the peer mapped the segment at startup); both copy streams
// are charged against the node's aggregate bandwidth and pay the
// cross-socket penalty.
func (caller *Process) bounce(sp *sim.Proc, callerAddr Addr, remote *Process, remoteAddr Addr, size int64, read bool) error {
	n := caller.node
	a := n.Arch
	if err := n.checkRange(remote, remoteAddr, size); err != nil {
		return err
	}
	if err := n.checkRange(caller, callerAddr, size); err != nil {
		return err
	}

	span := trace.NoSpan
	if n.rec != nil {
		name := "bounce_read"
		if !read {
			name = "bounce_write"
		}
		span = n.rec.Begin(n.rec.LaneForPid(caller.pid), trace.CatFault, name,
			trace.F("peer", float64(n.rec.LaneForPid(remote.pid))),
			trace.F("bytes", float64(size)))
	}

	cell := int64(a.ShmCellSize)
	beta := a.ShmCopyBeta()
	socketMult := 1.0
	if caller.socket != remote.socket {
		socketMult = a.InterSocketBW
	}
	for off := int64(0); off < size; off += cell {
		m := cell
		if size-off < m {
			m = size - off
		}
		// Two copies through the bounce cell, both executed by the
		// caller: in and out each pay the per-cell overhead plus the
		// bandwidth-shared per-byte cost.
		n.BeginCopy()
		ct := 2 * (a.ShmCellOverhead + float64(m)*n.EffPerByte(beta)*socketMult)
		sp.Sleep(ct)
		n.EndCopy()
		if read {
			movePayload(caller, callerAddr+Addr(off), remote, remoteAddr+Addr(off), m)
		} else {
			movePayload(remote, remoteAddr+Addr(off), caller, callerAddr+Addr(off), m)
		}
	}
	if n.rec != nil {
		n.rec.End(span)
	}
	return nil
}

// BounceRead copies size bytes from src's address space into the
// caller's over the degraded two-copy path (see bounce).
func (caller *Process) BounceRead(sp *sim.Proc, dst Addr, src *Process, srcAddr Addr, size int64) error {
	return caller.bounce(sp, dst, src, srcAddr, size, true)
}

// BounceWrite copies size bytes from the caller's address space into
// dst's over the degraded two-copy path (see bounce).
func (caller *Process) BounceWrite(sp *sim.Proc, src Addr, dst *Process, dstAddr Addr, size int64) error {
	return caller.bounce(sp, src, dst, dstAddr, size, false)
}
