package kernel

import (
	"testing"

	"camc/internal/sim"
	"camc/internal/trace"
)

// TestTraceDelegation checks the single-code-path property of record():
// the aggregate ftrace-style accumulator (EnableTrace) and the
// structured timeline (SetRecorder) are fed by the same call, so their
// totals must match exactly — including under concurrency, where the
// lock phase inflates with γ(c).
func TestTraceDelegation(t *testing.T) {
	s := sim.New()
	n := newKNLNode(s)
	agg := n.EnableTrace()
	rec := trace.NewUnbound()
	n.SetRecorder(rec)

	target := n.NewProcess(1 << 20)
	const size = 64 << 10
	ta := target.Alloc(size)
	// Three concurrent readers of one target mm: lock contention drives
	// maxC above 1.
	for i := 0; i < 3; i++ {
		caller := n.NewProcess(1 << 20)
		da := caller.Alloc(size)
		s.Spawn("reader", func(p *sim.Proc) {
			for op := 0; op < 2; op++ {
				if err := caller.VMRead(p, da, target, ta, size); err != nil {
					t.Errorf("VMRead: %v", err)
				}
			}
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}

	sum := trace.SummarizeCMA(rec)
	if sum.Ops != agg.Ops || sum.Ops != 6 {
		t.Fatalf("ops: timeline %d, aggregate %d, want 6", sum.Ops, agg.Ops)
	}
	if sum.MaxC != agg.MaxC {
		t.Fatalf("maxC: timeline %d, aggregate %d", sum.MaxC, agg.MaxC)
	}
	if agg.MaxC < 2 {
		t.Fatalf("maxC = %d, want >= 2 (no contention observed)", agg.MaxC)
	}
	// Phase totals must agree bit-for-bit: both views receive the same
	// Breakdown values from the same record() call.
	pairs := []struct {
		name     string
		tl, aggv float64
	}{
		{"syscall", sum.Syscall, agg.Sum.Syscall},
		{"perm", sum.Perm, agg.Sum.PermCheck},
		{"lock", sum.Lock, agg.Sum.Lock},
		{"pin", sum.Pin, agg.Sum.Pin},
		{"copy", sum.Copy, agg.Sum.Copy},
	}
	for _, p := range pairs {
		if p.tl != p.aggv {
			t.Errorf("%s: timeline %v != aggregate %v", p.name, p.tl, p.aggv)
		}
	}
	if sum.Total() != agg.Sum.Total() {
		t.Errorf("total: timeline %v != aggregate %v", sum.Total(), agg.Sum.Total())
	}
}

// TestTraceDelegationSkipsAborted: an address-range violation closes the
// op's span as aborted; neither accounting view counts it as an op.
func TestTraceDelegationSkipsAborted(t *testing.T) {
	s := sim.New()
	n := newKNLNode(s)
	agg := n.EnableTrace()
	rec := trace.NewUnbound()
	n.SetRecorder(rec)

	target := n.NewProcess(1 << 20)
	caller := n.NewProcess(1 << 20)
	da := caller.Alloc(4096)
	s.Spawn("bad-reader", func(p *sim.Proc) {
		// Source range beyond the target's address space: EFAULT.
		if err := caller.VMRead(p, da, target, Addr(1<<20), 4096); err == nil {
			t.Error("out-of-range VMRead succeeded")
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	sum := trace.SummarizeCMA(rec)
	if agg.Ops != 0 || sum.Ops != 0 {
		t.Fatalf("aborted op counted: aggregate %d, timeline %d", agg.Ops, sum.Ops)
	}
}
