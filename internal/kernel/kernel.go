// Package kernel simulates the operating-system substrate the paper's
// collectives run on: a multi-core node with per-process address spaces
// and CMA-style kernel-assisted copy syscalls (process_vm_readv /
// process_vm_writev).
//
// The simulated syscalls follow the phase structure the paper extracted
// with ftrace (Fig 4): syscall entry, permission check, per-page lock
// acquisition on the remote process's mm (the contended step), per-page
// pinning, and the data copy. Lock acquisition cost is inflated by the
// architecture's contention factor γ(c), sampled per chunk of pages from
// the remote mm's in-flight operation count, so overlapping transfers
// contend exactly as the paper's model describes. Concurrent copies share
// the node's aggregate memory bandwidth, and cross-socket copies pay the
// profile's inter-socket penalty.
//
// Transfers move real bytes between simulated address spaces so that the
// collectives built on top can be tested for MPI correctness, not just
// cost. For large benchmark sweeps a Node can be configured dataless
// (CopyData=false), which preserves all timing behaviour but skips
// backing allocations and memcpy.
package kernel

import (
	"fmt"

	"camc/internal/arch"
	"camc/internal/fault"
	"camc/internal/liveness"
	"camc/internal/sim"
	"camc/internal/tenant"
	"camc/internal/trace"
)

// Addr is an offset into a simulated process's address space.
type Addr int64

// DefaultChunkPages is the contention-sampling granularity: γ(c) is
// re-sampled every chunk of this many pages.
const DefaultChunkPages = 16

// Node is a simulated shared-memory node.
type Node struct {
	Sim  *sim.Simulation
	Arch *arch.Profile

	// CopyData controls whether transfers move real bytes. Disable for
	// large cost-only sweeps.
	CopyData bool

	// DigestPayload enables the checksum-summary payload mode: every
	// payload-mutating operation folds into per-page FNV digests (see
	// mem.go) whether or not bytes are materialized. With CopyData off
	// this lets a dataless run remain comparable, digest-for-digest,
	// against a materialized run of the same schedule. Set before any
	// NewProcess call.
	DigestPayload bool

	// ChunkPages is the per-chunk page count for contention sampling.
	ChunkPages int

	// PidBase offsets the pids this node assigns to new processes.
	// Multi-node clusters share one simulation and one trace recorder;
	// without distinct bases every node's rank i would get the same pid
	// and their kernel events would interleave on one trace lane.
	PidBase int

	// EmergentLock switches the mm-lock model from the calibrated γ(c)
	// curve to an explicit FIFO mutex held for the lock portion of l per
	// page. Queueing then produces contention *emergently* — but only
	// linearly (γ≈c): the super-linear growth the paper measures comes
	// from spinlock cache-line bouncing, which fair queueing cannot
	// reproduce. Used by the x7 ablation to justify the explicit curve.
	EmergentLock bool

	procs         []*Process
	activeCopiers int // transfers currently in their copy phase

	// ambient is the static co-tenant lock pressure: phantom page-lock
	// holders that co-located jobs outside this communicator hold on
	// the machine's shared kernel path. γ(c) is evaluated over the
	// *sum* of the local mm fan-in and this ambient count, so a node
	// tuned at ambient 0 measurably loses its crossovers under load.
	// Only the calibrated γ curve sees it — the EmergentLock FIFO model
	// queues real lockers and has no phantom to queue.
	ambient int

	// job, when non-nil, registers this node's live lock holders and
	// copy streams with a machine-wide tenant registry, and adds the
	// *other* jobs' live pressure to every γ sample — this is how
	// co-located communicators sharing one simulation interfere.
	job *tenant.Job

	mechanism     Mechanism
	xpmemAttached map[xpmemKey]bool

	trace *Trace          // optional breakdown accounting, nil when disabled
	rec   *trace.Recorder // optional structured event recorder, nil when disabled
	fault *fault.Plan     // optional fault-injection plan, nil when disabled
	live  *liveness.Board // optional liveness board, nil when detection is off
}

// NewNode creates a node on the given simulation for the given
// architecture. Transfers copy real data until CopyData is cleared.
func NewNode(s *sim.Simulation, a *arch.Profile) *Node {
	return &Node{Sim: s, Arch: a, CopyData: true, ChunkPages: DefaultChunkPages}
}

// SetAmbient sets the static co-tenant lock pressure: n phantom
// page-lock holders added to every γ(c) sample on this node. 0 (the
// default) restores the single-tenant model.
func (n *Node) SetAmbient(holders int) {
	if holders < 0 {
		panic("kernel: negative ambient pressure")
	}
	n.ambient = holders
}

// Ambient returns the static co-tenant lock pressure.
func (n *Node) Ambient() int { return n.ambient }

// SetTenant attaches the node to a machine-wide tenant registry: its
// transfers then count themselves into the job's live-holder and
// copy-stream sets and see the other jobs' pressure as ambient. A nil
// job (the default) keeps the node single-tenant.
func (n *Node) SetTenant(j *tenant.Job) { n.job = j }

// Tenant returns the attached tenant job (nil when single-tenant).
func (n *Node) Tenant() *tenant.Job { return n.job }

// ambientPressure is the lock pressure this node's transfers see on
// top of their own mm fan-in: the static knob plus whatever the other
// co-located jobs hold live right now.
func (n *Node) ambientPressure() int { return n.ambient + n.job.Ambient() }

// BeginCopy registers a memory-copy stream (CMA transfer phase or a
// shared-memory bounce-buffer cell copy) against the node's aggregate
// bandwidth; EndCopy unregisters it. The shared-memory transport uses
// these so that two-copy traffic and kernel-assisted traffic share one
// memory system.
func (n *Node) BeginCopy() {
	n.activeCopiers++
	n.job.BeginCopy()
}

// EndCopy unregisters a copy stream started with BeginCopy.
func (n *Node) EndCopy() {
	n.activeCopiers--
	if n.activeCopiers < 0 {
		panic("kernel: EndCopy without BeginCopy")
	}
	n.job.EndCopy()
}

// EffPerByte returns the effective per-byte copy time for a stream whose
// uncongested rate is base (us/byte), given the currently registered
// concurrent copy streams: max(base, active/aggregate-bandwidth).
// Co-located jobs' streams (tenant registry) share the same memory
// system and count toward the divisor.
func (n *Node) EffPerByte(base float64) float64 {
	active := n.activeCopiers + n.job.OtherCopiers()
	if agg := n.Arch.AggBandwidth(); agg > 0 && active > 1 {
		if shared := float64(active) / agg; shared > base {
			return shared
		}
	}
	return base
}

// EnableTrace starts ftrace-style breakdown accounting and returns the
// accumulator. When a structured Recorder is also attached, both views
// are fed from the same record call in vmTransfer, so the aggregate
// totals and the timeline cannot drift.
func (n *Node) EnableTrace() *Trace {
	n.trace = &Trace{}
	return n.trace
}

// SetRecorder attaches a structured event recorder to the node and
// binds it to the node's simulation clock. A nil recorder disables
// structured tracing (the default); every emission site is nil-guarded,
// so disabled runs are cost-identical and allocation-free.
func (n *Node) SetRecorder(rec *trace.Recorder) {
	rec.Bind(n.Sim)
	n.rec = rec
}

// Recorder returns the attached structured recorder (nil when tracing
// is disabled).
func (n *Node) Recorder() *trace.Recorder { return n.rec }

// SetFaultPlan attaches a fault-injection plan to the node. A nil plan
// (the default) disables injection entirely; every injection site is
// nil-guarded, so fault-free runs are cost-identical to builds that
// predate the fault layer.
func (n *Node) SetFaultPlan(p *fault.Plan) { n.fault = p }

// FaultPlan returns the attached fault plan (nil when injection is
// disabled).
func (n *Node) FaultPlan() *fault.Plan { return n.fault }

// SetLiveness attaches a liveness board to the node: blocking waits in
// the transports become deadline-guarded and heartbeat-publishing. A nil
// board (the default) keeps every wait unbounded and cost-identical to
// builds that predate the liveness layer.
func (n *Node) SetLiveness(b *liveness.Board) { n.live = b }

// Liveness returns the attached liveness board (nil when failure
// detection is disabled).
func (n *Node) Liveness() *liveness.Board { return n.live }

// Procs returns the processes spawned on this node, in pid order.
func (n *Node) Procs() []*Process { return n.procs }

// Process is a simulated OS process: an address space plus the mm state
// CMA contends on.
type Process struct {
	node   *Node
	pid    int
	uid    int
	socket int

	memLimit Addr
	brk      Addr
	mem      payloadMem // sparse payload backing + per-page digests

	mmInFlight int        // CMA ops currently inside the locked page loop
	mmLock     *sim.Mutex // explicit lock, allocated in EmergentLock mode
}

// NewProcess creates a process with the given address-space capacity,
// placed on the socket that block placement assigns to rank
// len(procs) out of expected total procs. uid 0 is used; see SetUID.
func (n *Node) NewProcess(memLimit int64) *Process {
	p := &Process{node: n, pid: n.PidBase + 1000 + len(n.procs), memLimit: Addr(memLimit)}
	// The address space is sparse: pages materialize on first touch, so
	// memLimit is purely a virtual bound — a 64k-rank sweep holds only
	// the pages its collective actually writes.
	p.mem.init(int64(n.Arch.PageSize), n.CopyData, n.DigestPayload)
	n.procs = append(n.procs, p)
	return p
}

// PID returns the simulated process id.
func (p *Process) PID() int { return p.pid }

// UID returns the owner uid used for the CMA permission check.
func (p *Process) UID() int { return p.uid }

// SetUID changes the owner uid (used to exercise permission failures).
func (p *Process) SetUID(uid int) { p.uid = uid }

// Socket returns the socket this process is pinned to.
func (p *Process) Socket() int { return p.socket }

// SetSocket pins the process to a socket.
func (p *Process) SetSocket(s int) {
	if s < 0 || s >= p.node.Arch.Sockets {
		panic(fmt.Sprintf("kernel: socket %d out of range", s))
	}
	p.socket = s
}

// Alloc reserves size bytes, page-aligned, and returns the base address.
func (p *Process) Alloc(size int64) Addr {
	if size < 0 {
		panic("kernel: negative allocation")
	}
	ps := Addr(p.node.Arch.PageSize)
	base := (p.brk + ps - 1) / ps * ps
	if base+Addr(size) > p.memLimit {
		panic(fmt.Sprintf("kernel: pid %d out of memory: brk %d + %d > limit %d", p.pid, base, size, p.memLimit))
	}
	p.brk = base + Addr(size)
	return base
}

// Bytes returns a contiguous writable slice over [a, a+n),
// materializing sparse pages as needed. It panics on a dataless node or
// on an out-of-range access. Writes through the returned slice bypass
// the digest layer — harnesses comparing digests across runs must seed
// via WriteAt/FillAt instead.
func (p *Process) Bytes(a Addr, n int64) []byte {
	if !p.mem.bytes {
		panic("kernel: Bytes on dataless node")
	}
	p.checkAccess(a, n)
	return p.mem.view(int64(a), n)
}

// PayloadTracked reports whether this process maintains per-page op-fold
// digests (the node's DigestPayload mode at creation time).
func (p *Process) PayloadTracked() bool { return p.mem.track }

// InFlight returns the number of CMA operations currently inside this
// process's locked page loop (the concurrency the contention factor sees).
func (p *Process) InFlight() int { return p.mmInFlight }

// Breakdown is the per-phase time decomposition of one CMA transfer,
// mirroring the paper's ftrace categories (Fig 4). Times in microseconds.
type Breakdown struct {
	Syscall   float64
	PermCheck float64
	Lock      float64
	Pin       float64
	Copy      float64
}

// Total returns the sum of all phases.
func (b Breakdown) Total() float64 {
	return b.Syscall + b.PermCheck + b.Lock + b.Pin + b.Copy
}

func (b *Breakdown) add(o Breakdown) {
	b.Syscall += o.Syscall
	b.PermCheck += o.PermCheck
	b.Lock += o.Lock
	b.Pin += o.Pin
	b.Copy += o.Copy
}

// Trace accumulates breakdowns across operations.
type Trace struct {
	Ops  int
	Sum  Breakdown
	MaxC int // highest concurrency observed during lock phases
}

// PermissionError reports a CMA access denied by the uid check.
type PermissionError struct{ CallerPID, TargetPID int }

func (e *PermissionError) Error() string {
	return fmt.Sprintf("kernel: pid %d may not access pid %d (EPERM)", e.CallerPID, e.TargetPID)
}

// vmTransfer runs one CMA transfer in virtual time.
//
// caller is the process issuing the syscall; remote is the process whose
// mm is locked and whose pages are pinned. For a read, data flows
// remote→caller; for a write, caller→remote. localBytes / remoteBytes
// mirror the iovec-length trick the paper uses for parameter estimation
// (Table III): permission is checked only when remoteBytes > 0, pages
// are locked+pinned for Pages(remoteBytes), and min(localBytes,
// remoteBytes) bytes are copied.
//
// The second return value is the number of payload bytes completed.
// Like the real syscalls, a transfer can return short of the requested
// count with a nil error when the attached fault plan injects a partial
// completion; callers that need the full count resume from the
// completed offset (see VMReadRetry / VMWriteRetry).
func (n *Node) vmTransfer(sp *sim.Proc, caller *Process, callerAddr Addr, remote *Process, remoteAddr Addr, localBytes, remoteBytes int64, read bool) (Breakdown, int64, error) {
	if n.mechanism == MechXPMEM {
		size := localBytes
		if remoteBytes < size {
			size = remoteBytes
		}
		bd, err := n.xpmemTransfer(sp, caller, callerAddr, remote, remoteAddr, size, read)
		if err != nil {
			return bd, 0, err
		}
		return bd, size, nil
	}
	var bd Breakdown
	a := n.Arch

	// Structured tracing: one span per CMA op on the caller's lane,
	// closed by record() with the phase breakdown as args.
	span := trace.NoSpan
	callerLane, remoteLane := 0, 0
	if n.rec != nil {
		callerLane = n.rec.LaneForPid(caller.pid)
		remoteLane = n.rec.LaneForPid(remote.pid)
		name := "vm_read"
		if !read {
			name = "vm_write"
		}
		span = n.rec.Begin(callerLane, trace.CatCMA, name,
			trace.F("peer", float64(remoteLane)),
			trace.F("bytes", float64(min64(localBytes, remoteBytes))))
	}

	// Phase 1: syscall entry, plus the descriptor management the
	// module-based mechanisms (KNEM/LiMIC) add on the control path.
	bd.Syscall = a.Alpha*a.SyscallFrac + n.mechanism.extraCost()
	sp.Sleep(bd.Syscall)
	if remoteBytes <= 0 {
		n.record(span, bd, 0)
		return bd, 0, nil
	}

	// Injected transient failure: the syscall bails right after entry
	// (get_user_pages hitting mm pressure), consuming the entry cost but
	// moving nothing. Callers treat it like EAGAIN and retry.
	if n.fault.Transient(caller.pid, remote.pid) {
		if n.rec != nil {
			n.rec.Instant(callerLane, trace.CatFault, "fault_eagain",
				trace.F("peer", float64(remoteLane)))
		}
		n.abortSpan(span, bd)
		return bd, 0, &TransientError{CallerPID: caller.pid, TargetPID: remote.pid}
	}

	// Phase 2: permission check (CMA uses the ptrace access model; the
	// simulation reduces it to a uid match).
	bd.PermCheck = a.Alpha * (1 - a.SyscallFrac)
	sp.Sleep(bd.PermCheck)
	if caller.uid != remote.uid {
		n.record(span, bd, 0)
		return bd, 0, &PermissionError{CallerPID: caller.pid, TargetPID: remote.pid}
	}

	copyBytes := localBytes
	if remoteBytes < copyBytes {
		copyBytes = remoteBytes
	}
	if err := n.checkRange(remote, remoteAddr, remoteBytes); err != nil {
		n.abortSpan(span, bd)
		return bd, 0, err
	}
	if copyBytes > 0 {
		if err := n.checkRange(caller, callerAddr, copyBytes); err != nil {
			n.abortSpan(span, bd)
			return bd, 0, err
		}
	}

	pages := int64(a.Pages(int(remoteBytes)))
	chunk := int64(n.ChunkPages)
	if chunk <= 0 {
		chunk = DefaultChunkPages
	}
	pageSize := int64(a.PageSize)
	lockCost := a.LockPin * a.LockFrac
	pinCost := a.LockPin * (1 - a.LockFrac)
	// Cross-socket copies pay the interconnect penalty on top of
	// whatever rate the shared memory system grants: the QPI/X-bus hop
	// costs extra even when the node is bandwidth-bound.
	socketMult := 1.0
	if caller.socket != remote.socket {
		socketMult = a.InterSocketBW
	}

	// Phase 3-5: per-chunk lock, pin, copy. The op counts itself in the
	// remote mm's in-flight set (and the machine-wide tenant set) for
	// the whole loop; γ is re-sampled per chunk so overlapping
	// transfers — same-job and co-tenant alike — see each other.
	remote.mmInFlight++
	n.job.EnterLock()
	if n.rec != nil {
		n.rec.Counter(remoteLane, trace.CatLock, trace.CounterInFlight, float64(remote.mmInFlight))
	}
	// Let transfers arriving at this same instant register before γ is
	// first sampled: without this, simultaneous arrivals would see a
	// staggered ramp that exists only as a scheduling-order artifact.
	sp.Yield()
	maxC := remote.mmInFlight + n.ambientPressure()
	copied := int64(0)
	for page := int64(0); page < pages; page += chunk {
		cp := chunk
		if pages-page < cp {
			cp = pages - page
		}
		// The contention the lock sees is the local mm fan-in plus the
		// ambient pressure of the machine's other tenants at this
		// instant (re-sampled per chunk, like the fan-in itself).
		c := remote.mmInFlight + n.ambientPressure()
		if c > maxC {
			maxC = c
		}
		// mm-lock acquire/release instants are emitted at the chunk
		// granularity — the same granularity γ is sampled at.
		if n.rec != nil {
			n.rec.Instant(remoteLane, trace.CatLock, "mm_lock_acquire",
				trace.F("holder", float64(callerLane)), trace.F("pages", float64(cp)), trace.F("c", float64(c)))
		}
		// Injected mm-lock stall spike: the holder hits a page-table walk
		// or direct-reclaim stall, inflating this chunk's lock cost.
		spike := n.fault.LockSpike(caller.pid, remote.pid)
		if spike > 1 && n.rec != nil {
			n.rec.Instant(remoteLane, trace.CatFault, "fault_lock_spike",
				trace.F("holder", float64(callerLane)), trace.F("factor", spike))
		}
		if n.EmergentLock {
			// Explicit FIFO mm lock: acquire once per page, hold for the
			// lock portion of l. Wait time is emergent queueing delay.
			if remote.mmLock == nil {
				remote.mmLock = sim.NewMutex(n.Sim)
			}
			if n.rec != nil {
				depth := remote.mmLock.Waiters()
				if remote.mmLock.Locked() {
					depth++
				}
				n.rec.Counter(remoteLane, trace.CatLock, trace.CounterQueue, float64(depth))
			}
			lockStart := n.Sim.Now()
			for pg := int64(0); pg < cp; pg++ {
				remote.mmLock.Lock(sp)
				sp.Sleep(lockCost * spike)
				remote.mmLock.Unlock()
			}
			bd.Lock += n.Sim.Now() - lockStart
			pt := float64(cp) * pinCost
			bd.Pin += pt
			sp.Sleep(pt)
		} else {
			gamma := a.Gamma(c)
			if n.rec != nil {
				n.rec.Instant(callerLane, trace.CatCMA, "gamma",
					trace.F("gamma", gamma), trace.F("c", float64(c)), trace.F("page", float64(page)))
			}
			lt := float64(cp) * lockCost * gamma * spike
			pt := float64(cp) * pinCost
			bd.Lock += lt
			bd.Pin += pt
			sp.Sleep(lt + pt)
		}
		if n.rec != nil {
			n.rec.Instant(remoteLane, trace.CatLock, "mm_lock_release",
				trace.F("holder", float64(callerLane)))
		}

		// Copy the bytes that fall inside this chunk of remote pages.
		chunkBytes := cp * pageSize
		if page*pageSize+chunkBytes > remoteBytes {
			chunkBytes = remoteBytes - page*pageSize
		}
		todo := chunkBytes
		if copied+todo > copyBytes {
			todo = copyBytes - copied
		}
		if todo > 0 {
			n.BeginCopy()
			ct := float64(todo) * n.EffPerByte(a.Beta()) * socketMult
			bd.Copy += ct
			sp.Sleep(ct)
			n.EndCopy()
			if read {
				movePayload(caller, callerAddr+Addr(copied), remote, remoteAddr+Addr(copied), todo)
			} else {
				movePayload(remote, remoteAddr+Addr(copied), caller, callerAddr+Addr(copied), todo)
			}
			copied += todo
		}

		// Injected short completion: the syscall returns after this chunk
		// (memory pressure truncating the iovec walk). It only fires while
		// chunks remain, so injection never turns an already-complete
		// transfer into a short one.
		if page+chunk < pages && n.fault.PartialCut(caller.pid, remote.pid) {
			if n.rec != nil {
				n.rec.Instant(callerLane, trace.CatFault, "fault_partial",
					trace.F("peer", float64(remoteLane)), trace.F("completed", float64(copied)))
			}
			break
		}
	}
	remote.mmInFlight--
	n.job.ExitLock()
	if n.rec != nil {
		n.rec.Counter(remoteLane, trace.CatLock, trace.CounterInFlight, float64(remote.mmInFlight))
	}
	n.record(span, bd, maxC)
	return bd, copied, nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func (n *Node) checkRange(p *Process, a Addr, size int64) error {
	if a < 0 || size < 0 || a+Addr(size) > p.memLimit {
		return fmt.Errorf("kernel: pid %d range [%d,%d) out of address space", p.pid, a, a+Addr(size))
	}
	return nil
}

// record finalizes one kernel-assisted op: it closes the op's recorder
// span with the phase breakdown and folds the same Breakdown into the
// aggregate Trace accumulator. Both accounting views are fed from this
// single call, so the ftrace-style totals (Fig 4) and the structured
// timeline cannot drift.
func (n *Node) record(span trace.SpanID, bd Breakdown, maxC int) {
	if n.rec != nil {
		n.rec.End(span,
			trace.F("syscall", bd.Syscall), trace.F("perm", bd.PermCheck),
			trace.F("lock", bd.Lock), trace.F("pin", bd.Pin),
			trace.F("copy", bd.Copy), trace.F("maxc", float64(maxC)))
	}
	if n.trace == nil {
		return
	}
	n.trace.Ops++
	n.trace.Sum.add(bd)
	if maxC > n.trace.MaxC {
		n.trace.MaxC = maxC
	}
}

// abortSpan closes an op span on an error path that the aggregate
// accounting has never counted (address-range violations).
func (n *Node) abortSpan(span trace.SpanID, bd Breakdown) {
	if n.rec != nil {
		n.rec.End(span,
			trace.F("syscall", bd.Syscall), trace.F("perm", bd.PermCheck),
			trace.F("lock", bd.Lock), trace.F("pin", bd.Pin),
			trace.F("copy", bd.Copy), trace.F("aborted", 1))
	}
}

// VMRead is process_vm_readv: the caller copies size bytes from src's
// address space into its own. src's mm is the contended one. Under an
// active fault plan the transfer can complete short or fail
// transiently; callers that need the full count use VMReadRetry.
func (caller *Process) VMRead(sp *sim.Proc, dst Addr, src *Process, srcAddr Addr, size int64) error {
	_, _, err := caller.node.vmTransfer(sp, caller, dst, src, srcAddr, size, size, true)
	return err
}

// VMWrite is process_vm_writev: the caller copies size bytes from its own
// address space into dst's. dst's mm is the contended one. Like VMRead,
// fault-plan short completions are surfaced only via VMWriteRetry.
func (caller *Process) VMWrite(sp *sim.Proc, src Addr, dst *Process, dstAddr Addr, size int64) error {
	_, _, err := caller.node.vmTransfer(sp, caller, src, dst, dstAddr, size, size, false)
	return err
}

// VMReadPartial exposes the iovec-length trick of Table III: localBytes
// and remoteBytes select which syscall phases execute (see vmTransfer).
// It returns the per-phase breakdown.
func (caller *Process) VMReadPartial(sp *sim.Proc, dst Addr, src *Process, srcAddr Addr, localBytes, remoteBytes int64) (Breakdown, error) {
	bd, _, err := caller.node.vmTransfer(sp, caller, dst, src, srcAddr, localBytes, remoteBytes, true)
	return bd, err
}

// Combine models an elementwise reduction combine dst[i] += src[i]
// within one address space (the local-compute step of Reduce trees).
// The cost is charged at the memcpy rate: a streaming read-read-write
// over size bytes.
func (p *Process) Combine(sp *sim.Proc, dst, src Addr, size int64) {
	if size <= 0 {
		return
	}
	if err := p.node.checkRange(p, dst, size); err != nil {
		panic(err)
	}
	if err := p.node.checkRange(p, src, size); err != nil {
		panic(err)
	}
	sp.Sleep(float64(size) * p.node.Arch.MemCopyBeta())
	if p.mem.bytes || p.mem.track {
		// The combine folds before the bytes mutate so the digest sees
		// the pre-combine source, matching the fold a dataless run makes.
		var sum uint64
		if p.mem.track {
			sum = p.mem.rangeSum(int64(src), size)
		}
		if p.mem.bytes {
			// Source view first: the destination view call may merge
			// extents, which would strand writes through an older slice.
			s := p.mem.view(int64(src), size)
			d := p.mem.view(int64(dst), size)
			for i := range d {
				d[i] += s[i]
			}
		}
		if p.mem.track {
			p.mem.applyOp(int64(dst), size, opCombine, sum)
		}
	}
}

// LocalCopy models an in-process memcpy of size bytes (used for the
// root's own block in Scatter/Gather when MPI_IN_PLACE is not used).
func (p *Process) LocalCopy(sp *sim.Proc, dst, src Addr, size int64) {
	if size <= 0 {
		return
	}
	if err := p.node.checkRange(p, dst, size); err != nil {
		panic(err)
	}
	if err := p.node.checkRange(p, src, size); err != nil {
		panic(err)
	}
	sp.Sleep(float64(size) * p.node.Arch.MemCopyBeta())
	movePayload(p, dst, p, src, size)
}
