package kernel

import (
	"bytes"
	"fmt"
	"math"
	"testing"

	"camc/internal/arch"
	"camc/internal/sim"
)

func TestMechanismString(t *testing.T) {
	for m, want := range map[Mechanism]string{
		MechCMA: "cma", MechKNEM: "knem", MechLiMIC: "limic", MechXPMEM: "xpmem",
	} {
		if got := m.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", int(m), got, want)
		}
	}
}

// mechReadLatency times `ops` sequential reads of size bytes between one
// pair under the given mechanism.
func mechReadLatency(m Mechanism, ops int, size int64) float64 {
	s := sim.New()
	n := NewNode(s, arch.KNL())
	n.CopyData = false
	n.SetMechanism(m)
	src := n.NewProcess(1 << 24)
	dst := n.NewProcess(1 << 24)
	sa := src.Alloc(size)
	da := dst.Alloc(size)
	s.Spawn("r", func(p *sim.Proc) {
		for i := 0; i < ops; i++ {
			if err := dst.VMRead(p, da, src, sa, size); err != nil {
				panic(err)
			}
		}
	})
	if err := s.Run(); err != nil {
		panic(err)
	}
	return s.Now()
}

func TestCookieCostsOrdering(t *testing.T) {
	// Single transfer: CMA < LiMIC < KNEM (descriptor overheads), all
	// sharing the same data path.
	size := int64(64 << 10)
	cma := mechReadLatency(MechCMA, 1, size)
	limic := mechReadLatency(MechLiMIC, 1, size)
	knem := mechReadLatency(MechKNEM, 1, size)
	if !(cma < limic && limic < knem) {
		t.Fatalf("want cma < limic < knem, got %g %g %g", cma, limic, knem)
	}
	if math.Abs((limic-cma)-limicCookieCost) > 1e-9 {
		t.Fatalf("limic delta %g, want %g", limic-cma, limicCookieCost)
	}
	if math.Abs((knem-cma)-knemCookieCost) > 1e-9 {
		t.Fatalf("knem delta %g, want %g", knem-cma, knemCookieCost)
	}
}

func TestXPMEMAttachAmortizes(t *testing.T) {
	// First transfer pays the attach; ten transfers pay it once.
	size := int64(256 << 10)
	one := mechReadLatency(MechXPMEM, 1, size)
	ten := mechReadLatency(MechXPMEM, 10, size)
	perOpAfter := (ten - one) / 9
	if one < xpmemAttachCost {
		t.Fatalf("first transfer %g did not include the attach cost", one)
	}
	if perOpAfter > one-xpmemAttachCost+1e-6 {
		t.Fatalf("later transfers (%g) not cheaper than the first (%g)", perOpAfter, one)
	}
	// Steady state beats CMA (no syscall, no page locking).
	cma := mechReadLatency(MechCMA, 1, size)
	if perOpAfter >= cma {
		t.Fatalf("attached XPMEM transfer %g not below CMA %g", perOpAfter, cma)
	}
}

func TestXPMEMImmuneToContention(t *testing.T) {
	// The headline property: one-to-all over XPMEM sees no mm-lock
	// contention; CMA blows up.
	oneToAll := func(m Mechanism, readers int) float64 {
		s := sim.New()
		n := NewNode(s, arch.KNL())
		n.CopyData = false
		n.SetMechanism(m)
		size := int64(256 << 10)
		src := n.NewProcess(1 << 30)
		sa := src.Alloc(size * int64(readers))
		for i := 0; i < readers; i++ {
			i := i
			dst := n.NewProcess(1 << 22)
			da := dst.Alloc(size)
			s.Spawn(fmt.Sprintf("r%d", i), func(p *sim.Proc) {
				if err := dst.VMRead(p, da, src, sa+Addr(int64(i)*size), size); err != nil {
					panic(err)
				}
			})
		}
		if err := s.Run(); err != nil {
			panic(err)
		}
		return s.Now()
	}
	cmaBlowup := oneToAll(MechCMA, 32) / oneToAll(MechCMA, 1)
	xpmemBlowup := oneToAll(MechXPMEM, 32) / oneToAll(MechXPMEM, 1)
	if cmaBlowup < 5 {
		t.Fatalf("CMA one-to-all blowup %g, expected heavy contention", cmaBlowup)
	}
	// XPMEM scales with bandwidth sharing only (32 streams over the
	// ceiling ≈ 5x), far below the lock blowup.
	if xpmemBlowup > cmaBlowup/2 {
		t.Fatalf("XPMEM blowup %g not clearly below CMA's %g", xpmemBlowup, cmaBlowup)
	}
}

func TestXPMEMDataAndPermissions(t *testing.T) {
	s := sim.New()
	n := NewNode(s, arch.KNL())
	n.SetMechanism(MechXPMEM)
	src := n.NewProcess(1 << 20)
	dst := n.NewProcess(1 << 20)
	intruder := n.NewProcess(1 << 20)
	intruder.SetUID(5)
	const size = 30000
	sa := src.Alloc(size)
	da := dst.Alloc(size)
	ia := intruder.Alloc(size)
	buf := src.Bytes(sa, size)
	for i := range buf {
		buf[i] = byte(i * 11)
	}
	s.Spawn("r", func(p *sim.Proc) {
		if err := dst.VMRead(p, da, src, sa, size); err != nil {
			t.Errorf("xpmem read: %v", err)
		}
		err := intruder.VMRead(p, ia, src, sa, size)
		if _, ok := err.(*PermissionError); !ok {
			t.Errorf("intruder attach: err = %v, want PermissionError", err)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(src.Bytes(sa, size), dst.Bytes(da, size)) {
		t.Fatal("xpmem payload mismatch")
	}
}

func TestXPMEMWriteDirection(t *testing.T) {
	s := sim.New()
	n := NewNode(s, arch.KNL())
	n.SetMechanism(MechXPMEM)
	a := n.NewProcess(1 << 20)
	b := n.NewProcess(1 << 20)
	const size = 9000
	aa := a.Alloc(size)
	ba := b.Alloc(size)
	buf := a.Bytes(aa, size)
	for i := range buf {
		buf[i] = byte(i * 3)
	}
	s.Spawn("w", func(p *sim.Proc) {
		if err := a.VMWrite(p, aa, b, ba, size); err != nil {
			t.Errorf("xpmem write: %v", err)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(aa, size), b.Bytes(ba, size)) {
		t.Fatal("xpmem write payload mismatch")
	}
}

func TestEmergentLockLinearGamma(t *testing.T) {
	// With the explicit FIFO mutex, c concurrent readers inflate the
	// lock phase roughly linearly (gamma ~ c); the calibrated curve is
	// super-linear. This is the justification for modeling gamma
	// explicitly rather than relying on emergent queueing.
	a := arch.KNL()
	lockTime := func(c int) float64 {
		s := sim.New()
		n := NewNode(s, a)
		n.CopyData = false
		n.EmergentLock = true
		size := int64(128 * 4096)
		src := n.NewProcess(1 << 30)
		sa := src.Alloc(size * int64(c))
		locks := make([]float64, c)
		for i := 0; i < c; i++ {
			i := i
			dst := n.NewProcess(1 << 22)
			da := dst.Alloc(size)
			s.Spawn(fmt.Sprintf("r%d", i), func(p *sim.Proc) {
				bd, err := dst.VMReadPartial(p, da, src, sa+Addr(int64(i)*size), size, size)
				if err != nil {
					panic(err)
				}
				locks[i] = bd.Lock
			})
		}
		if err := s.Run(); err != nil {
			panic(err)
		}
		var sum float64
		for _, v := range locks {
			sum += v
		}
		return sum / float64(c)
	}
	g1 := lockTime(1)
	g16 := lockTime(16) / g1
	if g16 < 8 || g16 > 24 {
		t.Fatalf("emergent gamma(16) = %.1f, want roughly linear (8..24)", g16)
	}
	// The calibrated curve is far above linear at 16.
	if a.Gamma(16) < 2*g16 {
		t.Fatalf("calibrated gamma(16)=%.0f not clearly above emergent %.1f", a.Gamma(16), g16)
	}
}
