package kernel

import (
	"fmt"

	"camc/internal/sim"
	"camc/internal/trace"
)

// Mechanism selects which kernel-assisted copy facility the node
// provides. The paper (Table I, §VIII) surveys four: CMA is the default
// it studies, LiMIC and KNEM are kernel modules with per-transfer
// descriptor ("cookie") management, and XPMEM (SGI/Cray) maps the remote
// region into the caller's address space so that, once attached,
// transfers are plain loads/stores with *no* per-page kernel locking —
// the one mechanism the mm-lock contention story does not apply to.
//
// All of CMA, LiMIC and KNEM go through get_user_pages on the data path
// and are "equally affected" by the lock contention (§I); they differ in
// the control-path overhead.
type Mechanism int

// The supported kernel-assist mechanisms.
const (
	// MechCMA: process_vm_readv/writev. Permission check per call, no
	// descriptor management. The paper's choice.
	MechCMA Mechanism = iota
	// MechKNEM: the sender declares a region and passes a cookie; the
	// receiver's copy still pins pages. Extra per-transfer declare cost.
	MechKNEM
	// MechLiMIC: like KNEM with a lighter descriptor.
	MechLiMIC
	// MechXPMEM: the remote region is attached into the caller's address
	// space once; subsequent transfers are userspace memcpy with no
	// kernel page locking (contention-free, but a large first-attach
	// cost and no permission-check portability).
	MechXPMEM
)

// String returns the mechanism's conventional name.
func (m Mechanism) String() string {
	switch m {
	case MechCMA:
		return "cma"
	case MechKNEM:
		return "knem"
	case MechLiMIC:
		return "limic"
	case MechXPMEM:
		return "xpmem"
	}
	return fmt.Sprintf("mechanism(%d)", int(m))
}

// Control-path constants (us), calibrated from the published
// comparisons: KNEM cookie creation is the heaviest, LiMIC's descriptor
// is lighter, XPMEM's one-time attach is expensive but amortized.
const (
	knemCookieCost  = 1.2
	limicCookieCost = 0.5
	xpmemAttachCost = 40.0
	xpmemOpCost     = 0.2 // per-transfer userspace bookkeeping after attach
)

// SetMechanism switches the node's kernel-assist facility.
func (n *Node) SetMechanism(m Mechanism) { n.mechanism = m }

// MechanismInUse returns the node's current facility.
func (n *Node) MechanismInUse() Mechanism { return n.mechanism }

// xpmemKey identifies an attach between two processes.
type xpmemKey struct{ caller, remote int }

// xpmemTransfer runs one transfer over an attached XPMEM segment: an
// expensive one-time attach per (caller, remote) pair, then pure
// userspace copies — no syscall, no permission check, and crucially no
// per-page mm locking, so γ never applies. The copy still shares the
// node memory system and pays the cross-socket penalty.
func (n *Node) xpmemTransfer(sp *sim.Proc, caller *Process, callerAddr Addr, remote *Process, remoteAddr Addr, size int64, read bool) (Breakdown, error) {
	var bd Breakdown
	span := trace.NoSpan
	if n.rec != nil {
		name := "xpmem_read"
		if !read {
			name = "xpmem_write"
		}
		span = n.rec.Begin(n.rec.LaneForPid(caller.pid), trace.CatCMA, name,
			trace.F("peer", float64(n.rec.LaneForPid(remote.pid))),
			trace.F("bytes", float64(size)))
	}
	key := xpmemKey{caller: caller.pid, remote: remote.pid}
	if !n.xpmemAttached[key] {
		// Attach: establish the mapping (this is where XPMEM pays its
		// page-table work, once). Permission is checked here.
		bd.Syscall = xpmemAttachCost
		sp.Sleep(xpmemAttachCost)
		if caller.uid != remote.uid {
			n.record(span, bd, 0)
			return bd, &PermissionError{CallerPID: caller.pid, TargetPID: remote.pid}
		}
		if n.xpmemAttached == nil {
			n.xpmemAttached = map[xpmemKey]bool{}
		}
		n.xpmemAttached[key] = true
	}
	if err := n.checkRange(remote, remoteAddr, size); err != nil {
		n.abortSpan(span, bd)
		return bd, err
	}
	if err := n.checkRange(caller, callerAddr, size); err != nil {
		n.abortSpan(span, bd)
		return bd, err
	}
	sp.Sleep(xpmemOpCost)
	bd.Syscall += xpmemOpCost

	socketMult := 1.0
	if caller.socket != remote.socket {
		socketMult = n.Arch.InterSocketBW
	}
	// Chunked like the CMA path so the bandwidth sharing stays
	// comparable; the per-chunk "lock" is zero.
	chunk := int64(n.ChunkPages) * int64(n.Arch.PageSize)
	if chunk <= 0 {
		chunk = int64(DefaultChunkPages) * int64(n.Arch.PageSize)
	}
	for off := int64(0); off < size; off += chunk {
		todo := chunk
		if size-off < todo {
			todo = size - off
		}
		n.BeginCopy()
		ct := float64(todo) * n.EffPerByte(n.Arch.Beta()) * socketMult
		bd.Copy += ct
		sp.Sleep(ct)
		n.EndCopy()
		if read {
			movePayload(caller, callerAddr+Addr(off), remote, remoteAddr+Addr(off), todo)
		} else {
			movePayload(remote, remoteAddr+Addr(off), caller, callerAddr+Addr(off), todo)
		}
	}
	n.record(span, bd, 0)
	return bd, nil
}

// extraCost returns the control-path cost the mechanism adds on top of
// the CMA-style data path (cookie creation/lookup for the module-based
// facilities).
func (m Mechanism) extraCost() float64 {
	switch m {
	case MechKNEM:
		return knemCookieCost
	case MechLiMIC:
		return limicCookieCost
	}
	return 0
}
