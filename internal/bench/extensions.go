package bench

import (
	"fmt"

	"camc/internal/arch"
	"camc/internal/cluster"
	"camc/internal/core"
	"camc/internal/kernel"
	"camc/internal/measure"
	"camc/internal/tuner"
)

// Extension experiments (ids x1–x5): studies beyond the paper's
// evaluation that its text motivates — the kernel-assist mechanism
// spectrum of Table I/§VIII, the process-skew sensitivity §V-A mentions,
// and the §IX future-work designs (contention-aware Reduce, pipelined
// two-level gather).

func init() {
	register(&Experiment{
		ID:    "x1",
		Title: "[extension] Kernel-assist mechanisms: CMA vs KNEM vs LiMIC vs XPMEM",
		Tables: func(o Options) []Table {
			a := arch.KNL()
			if o.Arch != "" {
				a = o.archs(arch.KNL())[0]
			}
			sizes := sweepSizes(o.Quick, 1<<20)
			mechs := []kernel.Mechanism{kernel.MechCMA, kernel.MechKNEM, kernel.MechLiMIC, kernel.MechXPMEM}
			t := Table{
				Title:   "Gather (throttled k=8) latency by kernel-assist mechanism, " + a.Display,
				XHeader: "size",
				XLabels: sizeLabels(sizes),
				Notes: []string{
					"CMA/KNEM/LiMIC share the contended get_user_pages path (Table I);",
					"XPMEM attaches once and then copies without kernel page locking,",
					"so it dodges the contention the paper's designs throttle around",
				},
			}
			naive := Table{
				Title:   "Gather (naive parallel writes) latency by mechanism, " + a.Display,
				XHeader: "size",
				XLabels: sizeLabels(sizes),
				Notes:   []string{"the contention-unaware design: mechanism choice matters far more here"},
			}
			type pair struct{ throttled, naive float64 }
			cells := parMap(o, len(mechs)*len(sizes), func(i int) pair {
				m, sz := mechs[i/len(sizes)], sizes[i%len(sizes)]
				return pair{
					throttled: measure.Collective(a, core.KindGather,
						core.GatherThrottled(8), sz, measure.Options{Mechanism: m}),
					naive: measure.Collective(a, core.KindGather,
						core.GatherParallelWrite, sz, measure.Options{Mechanism: m}),
				}
			})
			for mi, m := range mechs {
				s := Series{Name: m.String()}
				ns := Series{Name: m.String()}
				for si := range sizes {
					c := cells[mi*len(sizes)+si]
					s.Values = append(s.Values, c.throttled)
					ns.Values = append(ns.Values, c.naive)
				}
				t.Series = append(t.Series, s)
				naive.Series = append(naive.Series, ns)
			}
			return []Table{t, naive}
		},
	})

	register(&Experiment{
		ID:    "x2",
		Title: "[extension] Process-skew and the contention dynamics",
		Tables: func(o Options) []Table {
			a := arch.KNL()
			if o.Arch != "" {
				a = o.archs(arch.KNL())[0]
			}
			const size = 256 << 10
			skews := []float64{0, 100, 1000, 10000}
			if o.Quick {
				skews = []float64{0, 10000}
			}
			labels := make([]string, len(skews))
			for i, sk := range skews {
				labels[i] = fmt.Sprintf("%.0f", sk)
			}
			specs := []struct {
				kind core.Kind
				algo namedAlgo
			}{
				{core.KindBcast, namedAlgo{"direct-read", core.BcastDirectRead}},
				{core.KindScatter, namedAlgo{"scatter-throttle-8", core.ScatterThrottled(8)}},
				{core.KindAllgather, namedAlgo{"ring-source-read", core.AllgatherRingSourceRead}},
				{core.KindAllgather, namedAlgo{"ring-neighbor-1", core.AllgatherRingNeighbor(1)}},
			}
			vals := parMap(o, len(specs)*len(skews), func(i int) float64 {
				sp, sk := specs[i/len(skews)], skews[i%len(skews)]
				opts := measure.Options{}
				if sk > 0 {
					opts.SkewSeed = 42
					opts.MaxSkew = sk
				}
				return measure.Collective(a, sp.kind, sp.algo.run, size, opts)
			})
			rowOf := func(idx int) Series {
				return Series{Name: specs[idx].algo.name, Values: vals[idx*len(skews) : (idx+1)*len(skews)]}
			}
			relief := Table{
				Title:   fmt.Sprintf("One-to-all designs (256K) under per-rank start skew, %s", a.Display),
				XHeader: "max-skew(us)",
				XLabels: labels,
				Notes: []string{
					"latency measured from the last rank's start;",
					"spreading arrivals thins the concurrent-reader set, so the naive",
					"direct-read bcast speeds up dramatically — contention, not copy",
					"bandwidth, was its bottleneck. The throttled design barely moves:",
					"it already bounds concurrency by construction",
				},
			}
			relief.Series = append(relief.Series, rowOf(0), rowOf(1))
			robust := Table{
				Title:   fmt.Sprintf("Allgather rings (256K) under per-rank start skew, %s", a.Display),
				XHeader: "max-skew(us)",
				XLabels: labels,
				Notes: []string{
					"§V-A warns skew can pile ring-source readers onto one source;",
					"in practice the transient double-reads are brief and both ring",
					"schedules tolerate even milliseconds of skew",
				},
			}
			robust.Series = append(robust.Series, rowOf(2), rowOf(3))
			return []Table{relief, robust}
		},
	})

	register(&Experiment{
		ID:    "x3",
		Title: "[extension] Contention-aware Reduce (the paper's future work)",
		Tables: func(o Options) []Table {
			a := arch.KNL()
			if o.Arch != "" {
				a = o.archs(arch.KNL())[0]
			}
			sizes := sweepSizes(o.Quick, 1<<20)
			t := Table{
				Title:   "Reduce algorithm latency, " + a.Display,
				XHeader: "size",
				XLabels: sizeLabels(sizes),
				Notes: []string{
					"parallel-write is the γ_{p−1} contention-prone design; the binary",
					"CMA tree wins at large sizes (deep beats wide for reductions: a",
					"parent serializes its children's read+combine work)",
				},
			}
			algos := []namedAlgo{
				{"knomial-2", core.ReduceKnomial(2)},
				{"knomial-9", core.ReduceKnomial(9)},
				{"binomial-pt2pt", core.ReduceBinomialPt2pt(core.TransportPt2pt)},
				{"binomial-shm", core.ReduceBinomialPt2pt(core.TransportShm)},
				{"parallel-write", core.ReduceParallelWrite},
				{"flat-sequential", core.ReduceFlat},
			}
			vals := parMap(o, len(algos)*len(sizes), func(i int) float64 {
				return measure.Collective(a, core.KindGather,
					algos[i/len(sizes)].run, sizes[i%len(sizes)], measure.Options{})
			})
			for ai, al := range algos {
				t.Series = append(t.Series, Series{
					Name:   al.name,
					Values: vals[ai*len(sizes) : (ai+1)*len(sizes)],
				})
			}
			return []Table{t}
		},
	})

	register(&Experiment{
		ID:    "x4",
		Title: "[extension] Pipelined two-level gather (the paper's future work)",
		Tables: func(o Options) []Table {
			a := arch.KNL()
			ppn := 64
			nodes := 4
			sizes := sweepSizes(o.Quick, 1<<20)
			t := Table{
				Title:   fmt.Sprintf("Two-level gather on %d KNL nodes: plain vs pipelined", nodes),
				XHeader: "size",
				XLabels: sizeLabels(sizes),
				Notes:   []string{"segmentation overlaps inter-node drains with the next segment's intra-node gather"},
			}
			designs := []struct {
				name string
				run  func(r *cluster.Rank, eta int64)
			}{
				{"two-level", cluster.GatherTwoLevel(core.TunedGather)},
				{"pipelined-2", cluster.GatherTwoLevelPipelined(core.TunedGather, 2)},
				{"pipelined-4", cluster.GatherTwoLevelPipelined(core.TunedGather, 4)},
				{"pipelined-8", cluster.GatherTwoLevelPipelined(core.TunedGather, 8)},
			}
			vals := parMap(o, len(designs)*len(sizes), func(i int) float64 {
				return multinodeGather(a, nodes, ppn, sizes[i%len(sizes)], designs[i/len(sizes)].run)
			})
			for di, d := range designs {
				t.Series = append(t.Series, Series{
					Name:   d.name,
					Values: vals[di*len(sizes) : (di+1)*len(sizes)],
				})
			}
			return []Table{t}
		},
	})
}

func init() {
	register(&Experiment{
		ID:    "x5",
		Title: "[extension] Autotuned dispatch tables (the MVAPICH2 tuning framework analogue)",
		Tables: func(o Options) []Table {
			archs := o.archs(arch.All()...)
			cfg := tuner.Config{Jobs: o.Jobs}
			if o.Quick {
				cfg.ProbeSizes = []int64{16 << 10, 1 << 20}
			}
			var tables []Table
			for _, a := range archs {
				tab := tuner.Autotune(a, cfg)
				t := Table{
					Title:   "Measured dispatch table, " + a.Display,
					XHeader: "collective/bucket",
					Notes: []string{
						"winner per message-size bucket, derived from probe measurements",
						"reproduces the hand-tuned selections: throttle sweet spots, shm",
						"thresholds, scatter-allgather at the top sizes",
					},
				}
				probes := Series{Name: "probe-lat(us)"}
				for _, kind := range tuner.Kinds() {
					for _, e := range tab.Entries[kind] {
						bound := "inf"
						if e.MaxSize != int64(^uint64(0)>>1) {
							bound = sizeLabel(e.MaxSize)
						}
						t.XLabels = append(t.XLabels, fmt.Sprintf("%s <=%s: %s", kind, bound, e.Name))
						probes.Values = append(probes.Values, e.Latency)
					}
				}
				t.Series = []Series{probes}
				tables = append(tables, t)
			}
			return tables
		},
	})
}
