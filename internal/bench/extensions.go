package bench

import (
	"fmt"

	"camc/internal/arch"
	"camc/internal/cluster"
	"camc/internal/core"
	"camc/internal/kernel"
	"camc/internal/measure"
	"camc/internal/tuner"
)

// Extension experiments (ids x1–x5): studies beyond the paper's
// evaluation that its text motivates — the kernel-assist mechanism
// spectrum of Table I/§VIII, the process-skew sensitivity §V-A mentions,
// and the §IX future-work designs (contention-aware Reduce, pipelined
// two-level gather).

func init() {
	register(&Experiment{
		ID:    "x1",
		Title: "[extension] Kernel-assist mechanisms: CMA vs KNEM vs LiMIC vs XPMEM",
		Tables: func(o Options) []Table {
			a := arch.KNL()
			if o.Arch != "" {
				a = o.archs(arch.KNL())[0]
			}
			sizes := sweepSizes(o.Quick, 1<<20)
			mechs := []kernel.Mechanism{kernel.MechCMA, kernel.MechKNEM, kernel.MechLiMIC, kernel.MechXPMEM}
			t := Table{
				Title:   "Gather (throttled k=8) latency by kernel-assist mechanism, " + a.Display,
				XHeader: "size",
				XLabels: sizeLabels(sizes),
				Notes: []string{
					"CMA/KNEM/LiMIC share the contended get_user_pages path (Table I);",
					"XPMEM attaches once and then copies without kernel page locking,",
					"so it dodges the contention the paper's designs throttle around",
				},
			}
			naive := Table{
				Title:   "Gather (naive parallel writes) latency by mechanism, " + a.Display,
				XHeader: "size",
				XLabels: sizeLabels(sizes),
				Notes:   []string{"the contention-unaware design: mechanism choice matters far more here"},
			}
			for _, m := range mechs {
				s := Series{Name: m.String()}
				ns := Series{Name: m.String()}
				for _, sz := range sizes {
					s.Values = append(s.Values, measure.Collective(a, core.KindGather,
						core.GatherThrottled(8), sz, measure.Options{Mechanism: m}))
					ns.Values = append(ns.Values, measure.Collective(a, core.KindGather,
						core.GatherParallelWrite, sz, measure.Options{Mechanism: m}))
				}
				t.Series = append(t.Series, s)
				naive.Series = append(naive.Series, ns)
			}
			return []Table{t, naive}
		},
	})

	register(&Experiment{
		ID:    "x2",
		Title: "[extension] Process-skew and the contention dynamics",
		Tables: func(o Options) []Table {
			a := arch.KNL()
			if o.Arch != "" {
				a = o.archs(arch.KNL())[0]
			}
			const size = 256 << 10
			skews := []float64{0, 100, 1000, 10000}
			if o.Quick {
				skews = []float64{0, 10000}
			}
			labels := make([]string, len(skews))
			for i, sk := range skews {
				labels[i] = fmt.Sprintf("%.0f", sk)
			}
			runAt := func(kind core.Kind, algo namedAlgo) Series {
				s := Series{Name: algo.name}
				for _, sk := range skews {
					opts := measure.Options{}
					if sk > 0 {
						opts.SkewSeed = 42
						opts.MaxSkew = sk
					}
					s.Values = append(s.Values, measure.Collective(a, kind, algo.run, size, opts))
				}
				return s
			}
			relief := Table{
				Title:   fmt.Sprintf("One-to-all designs (256K) under per-rank start skew, %s", a.Display),
				XHeader: "max-skew(us)",
				XLabels: labels,
				Notes: []string{
					"latency measured from the last rank's start;",
					"spreading arrivals thins the concurrent-reader set, so the naive",
					"direct-read bcast speeds up dramatically — contention, not copy",
					"bandwidth, was its bottleneck. The throttled design barely moves:",
					"it already bounds concurrency by construction",
				},
			}
			relief.Series = append(relief.Series,
				runAt(core.KindBcast, namedAlgo{"direct-read", core.BcastDirectRead}),
				runAt(core.KindScatter, namedAlgo{"scatter-throttle-8", core.ScatterThrottled(8)}),
			)
			robust := Table{
				Title:   fmt.Sprintf("Allgather rings (256K) under per-rank start skew, %s", a.Display),
				XHeader: "max-skew(us)",
				XLabels: labels,
				Notes: []string{
					"§V-A warns skew can pile ring-source readers onto one source;",
					"in practice the transient double-reads are brief and both ring",
					"schedules tolerate even milliseconds of skew",
				},
			}
			robust.Series = append(robust.Series,
				runAt(core.KindAllgather, namedAlgo{"ring-source-read", core.AllgatherRingSourceRead}),
				runAt(core.KindAllgather, namedAlgo{"ring-neighbor-1", core.AllgatherRingNeighbor(1)}),
			)
			return []Table{relief, robust}
		},
	})

	register(&Experiment{
		ID:    "x3",
		Title: "[extension] Contention-aware Reduce (the paper's future work)",
		Tables: func(o Options) []Table {
			a := arch.KNL()
			if o.Arch != "" {
				a = o.archs(arch.KNL())[0]
			}
			sizes := sweepSizes(o.Quick, 1<<20)
			t := Table{
				Title:   "Reduce algorithm latency, " + a.Display,
				XHeader: "size",
				XLabels: sizeLabels(sizes),
				Notes: []string{
					"parallel-write is the γ_{p−1} contention-prone design; the binary",
					"CMA tree wins at large sizes (deep beats wide for reductions: a",
					"parent serializes its children's read+combine work)",
				},
			}
			algos := []namedAlgo{
				{"knomial-2", core.ReduceKnomial(2)},
				{"knomial-9", core.ReduceKnomial(9)},
				{"binomial-pt2pt", core.ReduceBinomialPt2pt(core.TransportPt2pt)},
				{"binomial-shm", core.ReduceBinomialPt2pt(core.TransportShm)},
				{"parallel-write", core.ReduceParallelWrite},
				{"flat-sequential", core.ReduceFlat},
			}
			for _, al := range algos {
				s := Series{Name: al.name}
				for _, sz := range sizes {
					s.Values = append(s.Values, measure.Collective(a, core.KindGather, al.run, sz, measure.Options{}))
				}
				t.Series = append(t.Series, s)
			}
			return []Table{t}
		},
	})

	register(&Experiment{
		ID:    "x4",
		Title: "[extension] Pipelined two-level gather (the paper's future work)",
		Tables: func(o Options) []Table {
			a := arch.KNL()
			ppn := 64
			nodes := 4
			sizes := sweepSizes(o.Quick, 1<<20)
			t := Table{
				Title:   fmt.Sprintf("Two-level gather on %d KNL nodes: plain vs pipelined", nodes),
				XHeader: "size",
				XLabels: sizeLabels(sizes),
				Notes:   []string{"segmentation overlaps inter-node drains with the next segment's intra-node gather"},
			}
			designs := []struct {
				name string
				run  func(r *cluster.Rank, eta int64)
			}{
				{"two-level", cluster.GatherTwoLevel(core.TunedGather)},
				{"pipelined-2", cluster.GatherTwoLevelPipelined(core.TunedGather, 2)},
				{"pipelined-4", cluster.GatherTwoLevelPipelined(core.TunedGather, 4)},
				{"pipelined-8", cluster.GatherTwoLevelPipelined(core.TunedGather, 8)},
			}
			for _, d := range designs {
				s := Series{Name: d.name}
				for _, sz := range sizes {
					s.Values = append(s.Values, multinodeGather(a, nodes, ppn, sz, d.run))
				}
				t.Series = append(t.Series, s)
			}
			return []Table{t}
		},
	})
}

func init() {
	register(&Experiment{
		ID:    "x5",
		Title: "[extension] Autotuned dispatch tables (the MVAPICH2 tuning framework analogue)",
		Tables: func(o Options) []Table {
			archs := o.archs(arch.All()...)
			cfg := tuner.Config{}
			if o.Quick {
				cfg.ProbeSizes = []int64{16 << 10, 1 << 20}
			}
			var tables []Table
			for _, a := range archs {
				tab := tuner.Autotune(a, cfg)
				t := Table{
					Title:   "Measured dispatch table, " + a.Display,
					XHeader: "collective/bucket",
					Notes: []string{
						"winner per message-size bucket, derived from probe measurements",
						"reproduces the hand-tuned selections: throttle sweet spots, shm",
						"thresholds, scatter-allgather at the top sizes",
					},
				}
				probes := Series{Name: "probe-lat(us)"}
				for _, kind := range tuner.Kinds() {
					for _, e := range tab.Entries[kind] {
						bound := "inf"
						if e.MaxSize != int64(^uint64(0)>>1) {
							bound = sizeLabel(e.MaxSize)
						}
						t.XLabels = append(t.XLabels, fmt.Sprintf("%s <=%s: %s", kind, bound, e.Name))
						probes.Values = append(probes.Values, e.Latency)
					}
				}
				t.Series = []Series{probes}
				tables = append(tables, t)
			}
			return tables
		},
	})
}
