package bench

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// ASCII rendering of a Table as a log-y line chart, for eyeballing the
// paper's figure shapes straight in a terminal, plus a CSV emitter for
// external plotting.

// plotGlyphs mark the series in drawing order.
var plotGlyphs = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&', '$', '~'}

// FprintPlot renders the table as a height×width ASCII chart with a
// logarithmic y axis (and the x values taken as equally spaced, matching
// the power-of-two sweeps). Non-positive values are skipped.
func (t *Table) FprintPlot(w io.Writer, width, height int) {
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range t.Series {
		for _, v := range s.Values {
			if v <= 0 {
				continue
			}
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	fmt.Fprintf(w, "## %s (log-y plot)\n\n", t.Title)
	if math.IsInf(lo, 1) || len(t.XLabels) == 0 {
		fmt.Fprintln(w, "(no positive data)")
		return
	}
	if hi <= lo {
		hi = lo * 1.0001
	}
	logLo, logHi := math.Log(lo), math.Log(hi)
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	n := len(t.XLabels)
	colOf := func(xi int) int {
		if n == 1 {
			return 0
		}
		return xi * (width - 1) / (n - 1)
	}
	rowOf := func(v float64) int {
		frac := (math.Log(v) - logLo) / (logHi - logLo)
		r := int(math.Round(float64(height-1) * (1 - frac)))
		if r < 0 {
			r = 0
		}
		if r >= height {
			r = height - 1
		}
		return r
	}
	for si, s := range t.Series {
		g := plotGlyphs[si%len(plotGlyphs)]
		for xi, v := range s.Values {
			if xi >= n || v <= 0 {
				continue
			}
			grid[rowOf(v)][colOf(xi)] = g
		}
	}
	// Y-axis labels on the first, middle and last rows.
	yLabel := func(r int) string {
		frac := 1 - float64(r)/float64(height-1)
		return formatVal(math.Exp(logLo + frac*(logHi-logLo)))
	}
	labelW := 0
	for _, r := range []int{0, height / 2, height - 1} {
		if n := len(yLabel(r)); n > labelW {
			labelW = n
		}
	}
	for r := 0; r < height; r++ {
		lab := ""
		switch r {
		case 0, height / 2, height - 1:
			lab = yLabel(r)
		}
		fmt.Fprintf(w, "%*s |%s\n", labelW, lab, string(grid[r]))
	}
	fmt.Fprintf(w, "%*s +%s\n", labelW, "", strings.Repeat("-", width))
	fmt.Fprintf(w, "%*s  %-*s%s\n", labelW, "", width-len(t.XLabels[n-1]), t.XLabels[0], t.XLabels[n-1])
	var legend []string
	for si, s := range t.Series {
		legend = append(legend, fmt.Sprintf("%c=%s", plotGlyphs[si%len(plotGlyphs)], s.Name))
	}
	fmt.Fprintf(w, "legend: %s\n\n", strings.Join(legend, "  "))
}

// FprintCSV emits the table as CSV: header row of x plus series names,
// one row per x label.
func (t *Table) FprintCSV(w io.Writer) {
	cols := []string{csvEscape(t.XHeader)}
	for _, s := range t.Series {
		cols = append(cols, csvEscape(s.Name))
	}
	fmt.Fprintf(w, "# %s\n", t.Title)
	fmt.Fprintln(w, strings.Join(cols, ","))
	for xi, xl := range t.XLabels {
		row := []string{csvEscape(xl)}
		for _, s := range t.Series {
			if xi < len(s.Values) {
				row = append(row, fmt.Sprintf("%g", s.Values[xi]))
			} else {
				row = append(row, "")
			}
		}
		fmt.Fprintln(w, strings.Join(row, ","))
	}
	fmt.Fprintln(w)
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// Format selects how Experiment.RunFormat renders tables.
type Format int

// Output formats.
const (
	FormatTable Format = iota
	FormatPlot
	FormatCSV
)

// RunFormat generates the experiment's tables and renders them in the
// requested format (plots also print the numeric table beneath).
func (e *Experiment) RunFormat(w io.Writer, o Options, f Format) error {
	return e.RunFormatSink(w, o, f, nil)
}

// RunFormatSink runs the experiment like RunFormat and additionally
// hands every generated table to sink before rendering (nil sink
// allowed). The sink sees tables in output order, so store appends are
// deterministic, and recording never changes the printed output.
func (e *Experiment) RunFormatSink(w io.Writer, o Options, f Format, sink func(Table)) error {
	fmt.Fprintf(w, "=== %s: %s ===\n\n", e.ID, e.Title)
	for _, t := range e.Tables(o) {
		if sink != nil {
			sink(t)
		}
		switch f {
		case FormatPlot:
			t.FprintPlot(w, 64, 16)
			t.Fprint(w)
		case FormatCSV:
			t.FprintCSV(w)
		default:
			t.Fprint(w)
		}
	}
	return nil
}
