package bench

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"camc/internal/arch"
	"camc/internal/cluster"
	"camc/internal/core"
)

// TestHierQuickShape runs the quick x11 matrix and checks the table
// layout the store hook depends on: one table per (arch, collective),
// arch display and collective word in the title, node counts down the
// side, one series per cluster design.
func TestHierQuickShape(t *testing.T) {
	skipIfRaceExpensive(t, "x11")
	tables := tablesOf(t, "x11", quick)
	lads := hierLadders()
	archs := arch.All()
	designs := cluster.Designs()
	if want := len(archs) * len(lads); len(tables) != want {
		t.Fatalf("x11 quick: %d tables, want %d", len(tables), want)
	}
	ti := 0
	for _, a := range archs {
		for _, l := range lads {
			tb := tables[ti]
			ti++
			if !containsAll(tb.Title, fmt.Sprint(l.kind), a.Display) {
				t.Errorf("table %d title %q missing %q or %q", ti-1, tb.Title, l.kind, a.Display)
			}
			if tb.XHeader != "nodes" {
				t.Errorf("table %d XHeader %q, want nodes", ti-1, tb.XHeader)
			}
			if len(tb.XLabels) != len(l.quick) {
				t.Fatalf("table %d: %d rows, want %d", ti-1, len(tb.XLabels), len(l.quick))
			}
			if len(tb.Series) != len(designs) {
				t.Fatalf("table %d: %d series, want %d", ti-1, len(tb.Series), len(designs))
			}
			for si, s := range tb.Series {
				if s.Name != string(designs[si]) {
					t.Errorf("table %d series %d named %q, want %q", ti-1, si, s.Name, designs[si])
				}
				for i, v := range s.Values {
					if v <= 0 {
						t.Errorf("table %d %s row %s: non-positive latency %v", ti-1, s.Name, tb.XLabels[i], v)
					}
				}
				// More nodes never makes the collective faster: the ladders
				// hold the per-rank block fixed while the fabric widens.
				for i := 1; i < len(s.Values); i++ {
					if s.Values[i] <= s.Values[i-1] {
						t.Errorf("table %d (%s, %s): latency not increasing with nodes: %v",
							ti-1, tb.Title, s.Name, s.Values)
					}
				}
			}
		}
	}
}

// TestHierLeaderWinsQuick pins the headline of the extension on the
// cheapest cells: for the incast-shaped kinds, the two-level leader
// design must beat the flat world-spanning algorithm already at 256
// nodes, on every architecture. (Reduce is deliberately absent: the
// node-major flat binomial is implicitly hierarchical and legitimately
// competitive — see the x11 ladder note.)
func TestHierLeaderWinsQuick(t *testing.T) {
	skipIfRaceExpensive(t, "x11")
	for _, kind := range []core.Kind{core.KindGather, core.KindScatter, core.KindAllgather} {
		flat := hierCell(arch.KNL(), kind, cluster.DesignFlat, 256, 4, 1024)
		leader := hierCell(arch.KNL(), kind, cluster.DesignLeader, 256, 4, 1024)
		if leader >= flat {
			t.Errorf("%s at 256 nodes: leader %.1f us, flat %.1f us; two-level should win", kind, leader, flat)
		}
	}
}

// TestScale4096Nodes is the ISSUE's acceptance cell: a 4096-node,
// 32768-rank leader bcast over the contention-aware fabric must
// complete on one host within bounded wall time and under the default
// Go heap. The bounds mirror TestScale64kBcast: the fabric keeps its
// per-flow queues lazily allocated and world-rank-keyed, so a 4096-node
// run must not materialize O(world²) channel buffers.
func TestScale4096Nodes(t *testing.T) {
	if testing.Short() {
		t.Skip("4096-node cell takes tens of seconds; run without -short")
	}
	skipIfRaceExpensive(t, "x11")
	start := time.Now()
	lat := hierCell(arch.KNL(), core.KindBcast, cluster.DesignLeader, 4096, 8, 16<<10)
	wall := time.Since(start)
	if lat <= 0 {
		t.Fatalf("4096-node bcast latency %v, want > 0", lat)
	}
	if wall > 2*time.Minute {
		t.Errorf("4096-node bcast took %v wall; the fabric hot path regressed", wall)
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > 4<<30 {
		t.Errorf("4096-node bcast left %d bytes live on the heap; lazy queue allocation regressed", ms.HeapAlloc)
	}
	t.Logf("4096-node leader bcast: %.1f us simulated, %v wall, %d MiB live heap",
		lat, wall.Round(time.Millisecond), ms.HeapAlloc>>20)
}
