package bench

import (
	"testing"

	"camc/internal/core"
)

// TestX13WinnerShiftsUnderAmbient pins the experiment's headline claim
// (and the PR's acceptance criterion): at least one (kind, arch) cell
// has a probed size whose winning algorithm differs between an idle
// machine (ambient=0) and heavy co-tenant pressure — and every such
// flip moves in the physical direction, away from the lock-taking
// kernel-assisted designs, never toward them.
func TestX13WinnerShiftsUnderAmbient(t *testing.T) {
	skipIfRaceExpensive(t, "x13")
	g := tenantProbeGrid(quick)
	heavy := len(g.ambients) - 1
	shifts := 0
	for ai := range g.archs {
		for ki := range g.kinds {
			base := g.cells[tenantKey{ai, ki, 0}]
			press := g.cells[tenantKey{ai, ki, heavy}]
			for si := range base {
				if base[si].Name == press[si].Name {
					continue
				}
				shifts++
				if twoCopy(base[si].Name) && !twoCopy(press[si].Name) {
					t.Errorf("%s %s at %s: ambient pressure flipped the winner TOWARD kernel-assist (%s -> %s)",
						g.archs[ai].Name, g.kinds[ki], sizeLabel(g.sizes[si]), base[si].Name, press[si].Name)
				}
			}
		}
	}
	if shifts == 0 {
		t.Fatal("no (arch, kind, size) cell changed winners between ambient=0 and heavy ambient")
	}
}

// TestX13CrossoverMonotone checks the summary panel's semantics: under
// heavy ambient pressure the kernel-assist crossover never moves toward
// smaller messages (0 = never wins counts as the largest crossover).
func TestX13CrossoverMonotone(t *testing.T) {
	skipIfRaceExpensive(t, "x13")
	g := tenantProbeGrid(quick)
	heavy := len(g.ambients) - 1
	rank := func(v float64) float64 {
		if v == 0 { // two-copy wins everywhere: treat as +inf crossover
			return float64(g.sizes[len(g.sizes)-1]) * 2
		}
		return v
	}
	for ai := range g.archs {
		for ki := range g.kinds {
			base := crossoverSize(g.cells[tenantKey{ai, ki, 0}])
			press := crossoverSize(g.cells[tenantKey{ai, ki, heavy}])
			if rank(press) < rank(base) {
				t.Errorf("%s %s: crossover moved down under pressure (%g -> %g)",
					g.archs[ai].Name, g.kinds[ki], base, press)
			}
		}
	}
}

// TestX13TableShapes runs the full experiment in quick mode and checks
// the panel structure: per arch, one winner grid per kind, a crossover
// summary with one series per ambient, and an interference table whose
// co-located train latency is at least its solo latency.
func TestX13TableShapes(t *testing.T) {
	tabs := tablesOf(t, "x13", Options{Quick: true, Arch: "knl"})
	kinds := []core.Kind{core.KindScatter, core.KindBcast}
	wantTables := len(kinds) + 2
	if len(tabs) != wantTables {
		t.Fatalf("got %d tables for one arch, want %d", len(tabs), wantTables)
	}
	cross := tabs[len(kinds)]
	if len(cross.Series) != 2 || cross.Series[0].Name != "amb=0" || cross.Series[1].Name != "amb=32" {
		t.Fatalf("crossover table series = %v", seriesNames(cross))
	}
	interf := tabs[len(kinds)+1]
	for _, want := range []string{"solo", "co-located", "peak-amb"} {
		found := false
		for _, s := range interf.Series {
			if s.Name == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("interference table missing series %q (have %v)", want, seriesNames(interf))
		}
	}
	for xi, job := range interf.XLabels {
		solo, _ := interf.Get("solo", xi)
		co, _ := interf.Get("co-located", xi)
		if co < solo {
			t.Errorf("job %s: co-located mean %g below solo %g", job, co, solo)
		}
	}
	// The train job is the heavy lock taker; it must both feel the
	// others (peak-amb > 0) and measurably slow down.
	for xi, job := range interf.XLabels {
		if job != "train" {
			continue
		}
		solo, _ := interf.Get("solo", xi)
		co, _ := interf.Get("co-located", xi)
		peak, _ := interf.Get("peak-amb", xi)
		if peak <= 0 {
			t.Errorf("train saw no co-tenant pressure (peak-amb %g)", peak)
		}
		if co <= solo {
			t.Errorf("train not slowed by co-location: solo %g, co %g", solo, co)
		}
	}
}
