package bench

import "camc/internal/par"

// The parallel sweep engine. Every experiment is a grid of independent
// cells — one deterministic simulation per (algorithm, size) or
// (readers, size) point — so the harness evaluates cells on a worker
// pool and assembles series from index-owned slots. Tables come out
// byte-identical to a sequential run for any Jobs value; only
// wall-clock time changes. Side effects that must stay ordered
// (TraceSink delivery) happen during assembly, after the parallel fill.

// parMap evaluates f over n cells on the options' worker budget and
// returns the results in index order. A panicking cell re-raises
// deterministically (lowest index wins) after all cells ran.
func parMap[T any](o Options, n int, f func(i int) T) []T {
	return par.Map(par.Workers(o.Jobs), n, f)
}
