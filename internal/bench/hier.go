package bench

import (
	"fmt"

	"camc/internal/arch"
	"camc/internal/cluster"
	"camc/internal/core"
)

// x11: the hierarchical-collective node sweep over the contention-aware
// network fabric. Where fig17 reproduces the paper's 2-8 node gather,
// this extension pushes the same question through the switched-fabric
// model — per-link alpha/beta plus the switch-contention term
// GammaNet(c), the network analogue of the mm-lock gamma(c) — for all
// six collective kinds and all three cluster designs: flat
// (world-spanning algorithm, O(world) network flows), leader (two-level
// with the contention-aware intra-node phase, O(nodes) flows), and
// shared (MPI+MPI-style leader buffers). The ladders hold the per-rank
// block size fixed while nodes grow 64 -> 4096, which is where the
// flat designs' incast meets the super-linear GammaNet and the
// two-level gap opens the way Fig 17 promises.

// hierLadder is one collective's node ladder.
type hierLadder struct {
	kind  core.Kind
	ppn   int
	count int64 // bytes per rank block, fixed across the ladder
	nodes []int
	quick []int
	note  string
}

// hierLadders returns the x11 matrix. The all-to-all-shaped kinds run
// at a lower PPN and smaller blocks: their per-rank volume grows with
// the world size, so the 4096-node cells stay tractable without losing
// the design comparison.
func hierLadders() []hierLadder {
	full := []int{64, 256, 1024, 4096}
	quick := []int{64, 256}
	return []hierLadder{
		{core.KindBcast, 8, 16 << 10, full, quick,
			"one root block fans out; leader turns O(world) down-link flows into O(nodes)"},
		{core.KindGather, 8, 4 << 10, full, quick,
			"flat gather is the fabric's worst incast: every rank targets the root's down-link"},
		{core.KindScatter, 8, 4 << 10, full, quick,
			"the root-to-all direction of the same story"},
		{core.KindReduce, 8, 16 << 10, full, quick,
			"node-major flat binomial is already implicitly hierarchical; the designs stay close"},
		{core.KindAllgather, 4, 256, full, quick,
			"per-rank volume is O(world): smaller blocks and PPN keep 4096 nodes tractable"},
		{core.KindAlltoall, 4, 16, full, quick,
			"O(world) per-rank volume again; bundle-bruck among leaders vs world-wide bruck"},
	}
}

// hierBufSizes returns per-rank (send, recv) buffer sizes for a cluster
// collective at world size w.
func hierBufSizes(kind core.Kind, w int, count int64) (int64, int64) {
	switch kind {
	case core.KindScatter:
		return int64(w) * count, count
	case core.KindGather:
		return count, int64(w) * count
	case core.KindAllgather:
		return count, int64(w) * count
	case core.KindAlltoall:
		return int64(w) * count, int64(w) * count
	default: // bcast, reduce
		return count, count
	}
}

// hierCell measures one (arch, kind, design, nodes) point: a dataless
// cluster run with the tuned intra-node algorithm, released back to the
// fabric pool afterwards.
func hierCell(a *arch.Profile, kind core.Kind, design cluster.Design, nodes, ppn int, count int64) float64 {
	cl := cluster.New(cluster.Config{Arch: a, NumNodes: nodes, PPN: ppn})
	coll, err := cluster.Lookup(cl, kind, design, "")
	if err != nil {
		panic(err)
	}
	sendLen, recvLen := hierBufSizes(kind, cl.WorldSize(), count)
	done, err := cl.Run(func(r *cluster.Rank) {
		send := r.Alloc(sendLen)
		recv := r.Alloc(recvLen)
		coll.Run(r, cluster.Args{Send: send, Recv: recv, Count: count})
	})
	if err != nil {
		panic(err)
	}
	cluster.Release(cl)
	return done
}

func init() {
	register(&Experiment{
		ID:    "x11",
		Title: "[extension] Two-level collectives on the contention-aware fabric: 64-4096 nodes",
		Tables: func(o Options) []Table {
			archs := o.archs(arch.All()...)
			lads := hierLadders()
			designs := cluster.Designs()
			type cellKey struct{ ai, li, ni, di int }
			var cells []cellKey
			for ai := range archs {
				for li, l := range lads {
					nodes := l.nodes
					if o.Quick {
						nodes = l.quick
					}
					for ni := range nodes {
						for di := range designs {
							cells = append(cells, cellKey{ai, li, ni, di})
						}
					}
				}
			}
			vals := parMap(o, len(cells), func(i int) float64 {
				c := cells[i]
				a, l := archs[c.ai], lads[c.li]
				nodes := l.nodes
				if o.Quick {
					nodes = l.quick
				}
				return hierCell(a, l.kind, designs[c.di], nodes[c.ni], l.ppn, l.count)
			})
			byKey := make(map[cellKey]float64, len(cells))
			for i, c := range cells {
				byKey[c] = vals[i]
			}
			var out []Table
			for ai, a := range archs {
				for li, l := range lads {
					nodes := l.nodes
					if o.Quick {
						nodes = l.quick
					}
					t := Table{
						Title:   fmt.Sprintf("Fabric ladder: %s designs vs nodes (ppn %d), %s", l.kind, l.ppn, a.Display),
						XHeader: "nodes",
						Notes: []string{
							fmt.Sprintf("%d bytes per rank block; fat-tree fabric with GammaNet switch contention; dataless run", l.count),
							l.note,
						},
					}
					for di, d := range designs {
						s := Series{Name: string(d)}
						for ni := range nodes {
							s.Values = append(s.Values, byKey[cellKey{ai, li, ni, di}])
						}
						t.Series = append(t.Series, s)
					}
					for _, n := range nodes {
						t.XLabels = append(t.XLabels, fmt.Sprintf("%d", n))
					}
					out = append(out, t)
				}
			}
			return out
		},
	})
}
