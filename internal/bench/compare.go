package bench

import (
	"fmt"

	"camc/internal/arch"
	"camc/internal/core"
	"camc/internal/libs"
	"camc/internal/measure"
)

// Library comparison experiments (§VII): the proposed tuned design vs
// MVAPICH2, Intel MPI and Open MPI (Figs 13–16, 18; Tables VI and VII).

// libsFor returns the comparator set for an architecture: the paper had
// no Intel MPI on the OpenPOWER system.
func libsFor(a *arch.Profile) []libs.Library {
	all := libs.All()
	if a.Name != "power8" {
		return all
	}
	var out []libs.Library
	for _, l := range all {
		if l.Name != "intelmpi" {
			out = append(out, l)
		}
	}
	return out
}

// compareLibraries builds one proposed-vs-libraries panel.
func compareLibraries(o Options, a *arch.Profile, kind core.Kind, sizes []int64) Table {
	t := Table{
		XHeader: "size",
		XLabels: sizeLabels(sizes),
		Notes:   []string{fmt.Sprintf("latency (us), %d processes", a.DefaultProcs)},
	}
	ls := libsFor(a)
	vals := parMap(o, len(ls)*len(sizes), func(i int) float64 {
		l, sz := ls[i/len(sizes)], sizes[i%len(sizes)]
		return measure.Collective(a, kind, l.Collective(kind), sz, measure.Options{})
	})
	for li, l := range ls {
		t.Series = append(t.Series, Series{Name: l.Name, Values: vals[li*len(sizes) : (li+1)*len(sizes)]})
	}
	return t
}

// libraryFigure registers a Figs 13–16/18 style experiment.
func libraryFigure(id, figTitle string, kind core.Kind, archs func() []*arch.Profile, maxSize func(*arch.Profile) int64) {
	register(&Experiment{
		ID:    id,
		Title: figTitle,
		Tables: func(o Options) []Table {
			var tables []Table
			for _, a := range o.archs(archs()...) {
				t := compareLibraries(o, a, kind, sweepSizes(o.Quick, maxSize(a)))
				t.Title = fmt.Sprintf("%s, %s", figTitle, a.Display)
				tables = append(tables, t)
			}
			return tables
		},
	})
}

func init() {
	allArchs := func() []*arch.Profile { return arch.All() }
	xeonArchs := func() []*arch.Profile { return []*arch.Profile{arch.KNL(), arch.Broadwell()} }
	bdwP8 := func() []*arch.Profile { return []*arch.Profile{arch.Broadwell(), arch.Power8()} }

	libraryFigure("fig13", "Fig 13: MPI_Scatter vs state-of-the-art libraries", core.KindScatter, allArchs, largestSize)
	libraryFigure("fig14", "Fig 14: MPI_Gather vs state-of-the-art libraries", core.KindGather, allArchs, largestSize)
	libraryFigure("fig15", "Fig 15: MPI_Alltoall vs state-of-the-art libraries", core.KindAlltoall,
		xeonArchs, func(*arch.Profile) int64 { return 1 << 20 })
	libraryFigure("fig16", "Fig 16: MPI_Allgather vs state-of-the-art libraries", core.KindAllgather,
		xeonArchs, func(*arch.Profile) int64 { return 1 << 20 })
	libraryFigure("fig18", "Fig 18: MPI_Bcast vs state-of-the-art libraries", core.KindBcast, bdwP8, largestSize)

	register(&Experiment{
		ID:    "tab6",
		Title: "Maximum speedup of the proposed designs vs each library (Table VI)",
		Tables: func(o Options) []Table {
			return speedupTables(o, false)
		},
	})
	register(&Experiment{
		ID:    "tab7",
		Title: "Speedup at the largest message size (Table VII)",
		Tables: func(o Options) []Table {
			return speedupTables(o, true)
		},
	})
}

// collectiveMax caps the sweep per collective kind (all-to-all patterns
// move p×η per rank, so the paper sweeps them to smaller per-rank sizes).
func collectiveMax(kind core.Kind, a *arch.Profile) int64 {
	switch kind {
	case core.KindAlltoall, core.KindAllgather:
		max := int64(1 << 20)
		if a.Name == "power8" {
			max = 512 << 10
		}
		return max
	default:
		return largestSize(a)
	}
}

// speedupTables computes Table VI (max over sizes) or Table VII (largest
// size only).
func speedupTables(o Options, largestOnly bool) []Table {
	kinds := []core.Kind{core.KindBcast, core.KindScatter, core.KindGather, core.KindAllgather, core.KindAlltoall}
	var tables []Table
	for _, a := range o.archs(arch.All()...) {
		t := Table{
			Title:   "Speedup vs libraries on " + a.Display,
			XHeader: "collective",
			Notes:   []string{"speedup = library latency / proposed latency"},
		}
		if largestOnly {
			t.Title = "Table VII (largest size): " + t.Title
		} else {
			t.Title = "Table VI (max over sizes): " + t.Title
		}
		comparators := libsFor(a)[1:] // drop "proposed"
		series := make([]Series, len(comparators))
		for i, l := range comparators {
			series[i] = Series{Name: l.Name}
		}
		// Flatten the (kind, library, size) grid into one cell list: per
		// kind, the proposed row first, then one row per comparator.
		type measureCell struct {
			kind core.Kind
			lib  libs.Library
			size int64
		}
		var cells []measureCell
		type kindSpec struct {
			sizes  []int64
			propAt int   // cell index of the proposed row
			compAt []int // cell index of each comparator's row
		}
		specs := make([]kindSpec, len(kinds))
		proposed := libs.Proposed()
		for ki, kind := range kinds {
			sizes := sweepSizes(o.Quick, collectiveMax(kind, a))
			if largestOnly {
				sizes = sizes[len(sizes)-1:]
			}
			specs[ki].sizes = sizes
			specs[ki].propAt = len(cells)
			for _, sz := range sizes {
				cells = append(cells, measureCell{kind, proposed, sz})
			}
			for _, l := range comparators {
				specs[ki].compAt = append(specs[ki].compAt, len(cells))
				for _, sz := range sizes {
					cells = append(cells, measureCell{kind, l, sz})
				}
			}
		}
		lats := parMap(o, len(cells), func(i int) float64 {
			c := cells[i]
			return measure.Collective(a, c.kind, c.lib.Collective(c.kind), c.size, measure.Options{})
		})
		for ki, kind := range kinds {
			t.XLabels = append(t.XLabels, string(kind))
			sp := specs[ki]
			prop := lats[sp.propAt : sp.propAt+len(sp.sizes)]
			for i := range comparators {
				best := 0.0
				for si := range sp.sizes {
					if s := lats[sp.compAt[i]+si] / prop[si]; s > best {
						best = s
					}
				}
				series[i].Values = append(series[i].Values, best)
			}
		}
		t.Series = series
		tables = append(tables, t)
	}
	return tables
}
