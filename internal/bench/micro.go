package bench

import (
	"fmt"

	"camc/internal/arch"
	"camc/internal/kernel"
	"camc/internal/sim"
)

// Raw CMA microbenchmarks (Figs 2, 3, 4, 6): concurrent process_vm_readv
// latency under the paper's three access patterns, the ftrace-style
// phase breakdown, and the relative-throughput sweet-spot study.

// oneToAllLatency times `readers` concurrent CMA reads of size bytes
// from a single source process. With sameBuffer, every reader targets
// the same region; otherwise disjoint regions of the same source (the
// Fig 2b vs 2c distinction — both bottleneck on the source's mm lock).
func oneToAllLatency(a *arch.Profile, readers int, size int64, sameBuffer bool) float64 {
	s := sim.New()
	node := kernel.NewNode(s, a)
	node.CopyData = false
	src := node.NewProcess(size*int64(readers) + 1<<20)
	sa := src.Alloc(size * int64(readers))
	for i := 0; i < readers; i++ {
		i := i
		dst := node.NewProcess(size + 1<<20)
		dst.SetSocket(a.RankSocket(i, readers))
		da := dst.Alloc(size)
		off := kernel.Addr(int64(i) * size)
		if sameBuffer {
			off = 0
		}
		s.Spawn(fmt.Sprintf("r%d", i), func(p *sim.Proc) {
			if err := dst.VMRead(p, da, src, sa+off, size); err != nil {
				panic(err)
			}
		})
	}
	if err := s.Run(); err != nil {
		panic(err)
	}
	return s.Now()
}

// allToAllPairsLatency times `pairs` disjoint concurrent reads (each
// reader pulls from its own private source — the paper's carefully
// paired Fig 2a pattern).
func allToAllPairsLatency(a *arch.Profile, pairs int, size int64) float64 {
	s := sim.New()
	node := kernel.NewNode(s, a)
	node.CopyData = false
	for i := 0; i < pairs; i++ {
		src := node.NewProcess(size + 1<<20)
		src.SetSocket(a.RankSocket(i, pairs))
		sa := src.Alloc(size)
		dst := node.NewProcess(size + 1<<20)
		dst.SetSocket(a.RankSocket(i, pairs))
		da := dst.Alloc(size)
		s.Spawn(fmt.Sprintf("r%d", i), func(p *sim.Proc) {
			if err := dst.VMRead(p, da, src, sa, size); err != nil {
				panic(err)
			}
		})
	}
	if err := s.Run(); err != nil {
		panic(err)
	}
	return s.Now()
}

// breakdownOf returns the mean per-phase breakdown of a pages-page CMA
// read while `extra` other readers hammer the same source.
func breakdownOf(a *arch.Profile, pages, extra int) kernel.Breakdown {
	s := sim.New()
	node := kernel.NewNode(s, a)
	node.CopyData = false
	size := int64(pages) * int64(a.PageSize)
	src := node.NewProcess(size*int64(extra+1) + 1<<20)
	sa := src.Alloc(size * int64(extra+1))
	var main kernel.Breakdown
	for i := 0; i <= extra; i++ {
		i := i
		dst := node.NewProcess(size + 1<<20)
		da := dst.Alloc(size)
		s.Spawn(fmt.Sprintf("r%d", i), func(p *sim.Proc) {
			bd, err := dst.VMReadPartial(p, da, src, sa+kernel.Addr(int64(i)*size), size, size)
			if err != nil {
				panic(err)
			}
			if i == 0 {
				main = bd
			}
		})
	}
	if err := s.Run(); err != nil {
		panic(err)
	}
	return main
}

func init() {
	register(&Experiment{
		ID:    "fig2",
		Title: "Impact of communication patterns on CMA read latency (KNL)",
		Tables: func(o Options) []Table {
			a := arch.KNL()
			sizes := sweepSizes(o.Quick, 4<<20)
			readers := readerLadder(64, o.Quick)
			panels := []struct {
				title string
				f     func(readers int, size int64) float64
			}{
				{"(a) Different source processes (all-to-all pairs)", func(r int, s int64) float64 {
					return allToAllPairsLatency(a, r, s)
				}},
				{"(b) Same process, same buffer (one-to-all)", func(r int, s int64) float64 {
					return oneToAllLatency(a, r, s, true)
				}},
				{"(c) Same process, different buffers (one-to-all)", func(r int, s int64) float64 {
					return oneToAllLatency(a, r, s, false)
				}},
			}
			vals := parMap(o, len(panels)*len(readers)*len(sizes), func(i int) float64 {
				p := panels[i/(len(readers)*len(sizes))]
				r := readers[(i/len(sizes))%len(readers)]
				return p.f(r, sizes[i%len(sizes)])
			})
			var tables []Table
			for pi, p := range panels {
				t := Table{
					Title:   "Fig 2" + p.title,
					XHeader: "size",
					XLabels: sizeLabels(sizes),
					Notes:   []string{"CMA read latency (us) on Knights Landing"},
				}
				for ri, r := range readers {
					at := (pi*len(readers) + ri) * len(sizes)
					t.Series = append(t.Series, Series{
						Name:   fmt.Sprintf("%d readers", r),
						Values: vals[at : at+len(sizes)],
					})
				}
				tables = append(tables, t)
			}
			return tables
		},
	})

	register(&Experiment{
		ID:    "fig3",
		Title: "One-to-all CMA read latency across architectures",
		Tables: func(o Options) []Table {
			var tables []Table
			for _, a := range o.archs(arch.All()...) {
				sizes := sweepSizes(o.Quick, 4<<20)
				t := Table{
					Title:   fmt.Sprintf("Fig 3: one-to-all CMA read, %s (%d hardware contexts used)", a.Display, a.DefaultProcs),
					XHeader: "size",
					XLabels: sizeLabels(sizes),
					Notes:   []string{"latency (us) for N concurrent readers of one source process"},
				}
				readers := readerLadder(a.DefaultProcs, o.Quick)
				vals := parMap(o, len(readers)*len(sizes), func(i int) float64 {
					return oneToAllLatency(a, readers[i/len(sizes)], sizes[i%len(sizes)], false)
				})
				for ri, r := range readers {
					t.Series = append(t.Series, Series{
						Name:   fmt.Sprintf("%d readers", r),
						Values: vals[ri*len(sizes) : (ri+1)*len(sizes)],
					})
				}
				tables = append(tables, t)
			}
			return tables
		},
	})

	register(&Experiment{
		ID:    "fig4",
		Title: "Breakdown of one-to-all CMA read (ftrace-style), Broadwell",
		Tables: func(o Options) []Table {
			a := arch.Broadwell()
			pages := []int{1, 4, 16, 64, 128, 256, 512}
			if o.Quick {
				pages = []int{16, 256}
			}
			extras := []int{0, 4, 27}
			bds := parMap(o, len(extras)*len(pages), func(i int) kernel.Breakdown {
				return breakdownOf(a, pages[i%len(pages)], extras[i/len(pages)])
			})
			var tables []Table
			for ei, extra := range extras {
				label := "no contention"
				if extra > 0 {
					label = fmt.Sprintf("%d concurrent readers", extra+1)
				}
				t := Table{
					Title:   "Fig 4: CMA read phase breakdown, " + label,
					XHeader: "pages",
					XLabels: nil,
					Notes:   []string{"per-phase time (us); the mm-lock acquire is the only phase inflating with contention"},
				}
				syscall := Series{Name: "syscall"}
				perm := Series{Name: "perm-check"}
				lock := Series{Name: "acquire-locks"}
				pin := Series{Name: "pin-pages"}
				cp := Series{Name: "copy-data"}
				for pi, pg := range pages {
					bd := bds[ei*len(pages)+pi]
					t.XLabels = append(t.XLabels, fmt.Sprintf("%d", pg))
					syscall.Values = append(syscall.Values, bd.Syscall)
					perm.Values = append(perm.Values, bd.PermCheck)
					lock.Values = append(lock.Values, bd.Lock)
					pin.Values = append(pin.Values, bd.Pin)
					cp.Values = append(cp.Values, bd.Copy)
				}
				t.Series = []Series{syscall, perm, lock, pin, cp}
				tables = append(tables, t)
			}
			return tables
		},
	})

	register(&Experiment{
		ID:    "fig6",
		Title: "Relative CMA read throughput vs concurrency (one-to-all)",
		Tables: func(o Options) []Table {
			var tables []Table
			for _, a := range o.archs(arch.All()...) {
				sizes := sweepSizes(o.Quick, 4<<20)
				t := Table{
					Title:   "Fig 6: relative throughput, " + a.Display,
					XHeader: "size",
					XLabels: sizeLabels(sizes),
					Notes: []string{
						"aggregate throughput of N concurrent readers relative to one reader",
						"values > 1 mean added concurrency still pays; the per-size maximum is the throttle sweet spot",
					},
				}
				// Cell block 0 is the single-reader baseline; blocks 1.. are
				// the ladder rows (the ladder's own r=1 row measures the
				// identical deterministic cell, as the sequential code did).
				ladder := readerLadder(a.DefaultProcs, o.Quick)
				rows := append([]int{1}, ladder...)
				lats := parMap(o, len(rows)*len(sizes), func(i int) float64 {
					return oneToAllLatency(a, rows[i/len(sizes)], sizes[i%len(sizes)], false)
				})
				base := lats[:len(sizes)]
				for ri, r := range ladder {
					s := Series{Name: fmt.Sprintf("%d readers", r)}
					for i := range sizes {
						lat := lats[(ri+1)*len(sizes)+i]
						s.Values = append(s.Values, float64(r)*base[i]/lat)
					}
					t.Series = append(t.Series, s)
				}
				tables = append(tables, t)
			}
			return tables
		},
	})
}
