package bench

import (
	"runtime"
	"strings"
	"testing"

	"camc/internal/arch"
	"camc/internal/core"
	"camc/internal/measure"
)

// TestScaleQuickShape runs the quick x10 matrix and checks the table
// layout the store hook depends on: one table per (arch, collective),
// arch display and collective word in the title, ranks down the side.
func TestScaleQuickShape(t *testing.T) {
	skipIfRaceExpensive(t, "x10")
	tables := tablesOf(t, "x10", quick)
	lads := scaleLadders()
	archs := arch.All()
	if want := len(archs) * len(lads); len(tables) != want {
		t.Fatalf("x10 quick: %d tables, want %d", len(tables), want)
	}
	ti := 0
	for _, a := range archs {
		for _, l := range lads {
			tb := tables[ti]
			ti++
			if !containsAll(tb.Title, l.word, a.Display) {
				t.Errorf("table %d title %q missing %q or %q", ti-1, tb.Title, l.word, a.Display)
			}
			if tb.XHeader != "ranks" {
				t.Errorf("table %d XHeader %q, want ranks", ti-1, tb.XHeader)
			}
			if len(tb.XLabels) != len(l.quick) {
				t.Fatalf("table %d: %d rows, want %d", ti-1, len(tb.XLabels), len(l.quick))
			}
			for i, v := range tb.Series[0].Values {
				if v <= 0 {
					t.Errorf("table %d row %s: non-positive latency %v", ti-1, tb.XLabels[i], v)
				}
			}
			// More ranks never makes the collective faster: every ladder
			// holds the per-rank block size fixed while the tree deepens.
			vals := tb.Series[0].Values
			for i := 1; i < len(vals); i++ {
				if vals[i] <= vals[i-1] {
					t.Errorf("table %d (%s): latency not increasing with ranks: %v", ti-1, tb.Title, vals)
				}
			}
		}
	}
}

func containsAll(s string, subs ...string) bool {
	for _, sub := range subs {
		if !strings.Contains(s, sub) {
			return false
		}
	}
	return true
}

// TestScale64kBcast is the ISSUE's acceptance cell: a 65536-rank bcast
// must complete on one host under the default Go heap. Before the
// sparse page-table backing this cell alone would have asked for 64Ki
// eager address spaces, and before the bulk address-exchange path its
// O(p²) control events made it hours of wall time.
func TestScale64kBcast(t *testing.T) {
	if testing.Short() {
		t.Skip("64k-rank cell takes tens of seconds; run without -short")
	}
	skipIfRaceExpensive(t, "x10")
	const ranks = 65536
	lat := measure.Collective(arch.KNL(), core.KindBcast, core.BcastKnomialRead(8), 4096,
		measure.Options{Procs: ranks})
	if lat <= 0 {
		t.Fatalf("64k bcast latency %v, want > 0", lat)
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	// The whole point of the sparse backing: 64Ki ranks must not cost
	// 64Ki materialized address spaces. 4 GiB of live heap would mean
	// eager allocation crept back in.
	if ms.HeapAlloc > 4<<30 {
		t.Errorf("64k bcast left %d bytes live on the heap; sparse backing regressed", ms.HeapAlloc)
	}
	t.Logf("64k-rank bcast: %.1f us simulated, %d MiB live heap", lat, ms.HeapAlloc>>20)
}
