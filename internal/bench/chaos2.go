package bench

import (
	"fmt"

	"camc/internal/arch"
	"camc/internal/cluster"
	"camc/internal/core"
	"camc/internal/liveness"
	"camc/internal/measure"
)

// x12: chaos at scale. Where x9 kills ranks inside one shared-memory
// node, this experiment kills them across the contention-aware fabric:
// 1-4 ranks die mid-collective (a node member, a node leader, or a
// whole node) on 64-1024 node clusters, and every cell drives the full
// world-level recovery pipeline — fabric-crossing detection (leaders
// gossip remote-node liveness over γ_net-costed links), a world
// agreement round, the two-tier shrink rebuilding the cluster rank
// table at both PPN and node granularity, deterministic leader
// re-election (successor = the node's lowest-world-rank survivor;
// orphaned nodes re-run the leader-phase address exchange), and a
// re-planned re-run over the survivor world. The cells report what each
// recovery stage costs in virtual time and how those costs scale with
// the fabric; killing a leader must cost measurably more than killing a
// member (the orphan republication plus the coordinator's
// challenge-response), which the assembly asserts cell by cell.

// x12Scenario is one death pattern on node 1 of a PPN-4 cluster:
// world ranks 4..7. Rank 0 (the coordinator side) is never killed.
type x12Scenario struct {
	name  string
	kills []cluster.Kill
}

func x12Scenarios() []x12Scenario {
	return []x12Scenario{
		{"kill-member", []cluster.Kill{{World: 5, Op: 1}}},
		{"kill-leader", []cluster.Kill{{World: 4, Op: 1}}},
		{"kill-node", []cluster.Kill{{World: 4, Op: 1}, {World: 5, Op: 1}, {World: 6, Op: 1}, {World: 7, Op: 1}}},
	}
}

const (
	x12PPN   = 4
	x12Count = int64(64)
)

// x12Cell runs one (topo, design, nodes, scenario) recovery cycle,
// dataless (payload verification at these shapes is the measure and
// check suites' job; the experiment measures virtual-time costs).
func x12Cell(a *arch.Profile, topo string, design cluster.Design, nodes int, sc x12Scenario, lcfg liveness.Config) measure.ClusterRecoveryResult {
	res, err := measure.ClusterRecovered(a, core.KindGather, design, "tuned", x12Count,
		measure.ClusterOptions{Nodes: nodes, PPN: x12PPN, Topo: topo, Root: 0,
			Liveness: &lcfg, Kills: sc.kills})
	if err != nil {
		panic(fmt.Sprintf("bench: x12 %s/%s/%d under %s: %v", topo, design, nodes, sc.name, err))
	}
	if res.Survivors != nodes*x12PPN-len(sc.kills) {
		panic(fmt.Sprintf("bench: x12 %s/%s/%d under %s: %d survivors after %d kills",
			topo, design, nodes, sc.name, res.Survivors, len(sc.kills)))
	}
	return res
}

func init() {
	register(&Experiment{
		ID:    "x12",
		Title: "[extension] Chaos at scale: cross-fabric death, re-election and two-tier shrink, 64-1024 nodes",
		Tables: func(o Options) []Table {
			a := arch.KNL()
			if o.Arch != "" {
				a = o.archs(arch.KNL())[0]
			}
			nodes := []int{64, 256, 1024}
			if o.Quick {
				nodes = []int{64, 256}
			}
			lcfg := liveness.Config{Deadline: DefaultDeadline, Poll: 10}
			if o.Deadline > 0 {
				lcfg.Deadline = o.Deadline
			}
			topos := []string{"fattree", "dragonfly"}
			designs := cluster.Designs()
			scens := x12Scenarios()

			type cellKey struct{ ti, di, ni, si int }
			var keys []cellKey
			for ti := range topos {
				for di := range designs {
					for ni := range nodes {
						for si := range scens {
							keys = append(keys, cellKey{ti, di, ni, si})
						}
					}
				}
			}
			cells := parMap(o, len(keys), func(i int) measure.ClusterRecoveryResult {
				k := keys[i]
				return x12Cell(a, topos[k.ti], designs[k.di], nodes[k.ni], scens[k.si], lcfg)
			})
			at := func(ti, di, ni, si int) measure.ClusterRecoveryResult {
				return cells[((ti*len(designs)+di)*len(nodes)+ni)*len(scens)+si]
			}

			// Leader death must cost strictly more election time than a
			// member death on the same shape: the orphaned node re-runs
			// the leader-phase address exchange and its successor answers
			// the coordinator's challenge.
			for ti := range topos {
				for di := range designs {
					for ni := range nodes {
						le := at(ti, di, ni, 1).ElectLatency
						me := at(ti, di, ni, 0).ElectLatency
						if le <= me {
							panic(fmt.Sprintf("bench: x12 %s/%s/%d: leader-death election (%.2fus) not costlier than member-death (%.2fus)",
								topos[ti], designs[di], nodes[ni], le, me))
						}
					}
				}
			}

			metrics := []struct {
				name  string
				get   func(measure.ClusterRecoveryResult) float64
				notes []string
			}{
				{"Detection latency: first death to world agreement (us)",
					func(c measure.ClusterRecoveryResult) float64 { return c.DetectLatency },
					[]string{
						"intra-node deaths revoke blocked waits within a poll quantum; deaths only",
						fmt.Sprintf("visible across the fabric ride probes bounded by the %gus deadline", float64(lcfg.Deadline)),
					}},
				{"Shrink latency: agreement to rebuilt two-tier rank table (us)",
					func(c measure.ClusterRecoveryResult) float64 { return c.ShrinkLatency },
					[]string{
						"drain, survivor barrier, fresh liveness views, node-local shrink at every",
						"PPN count including whole-node loss",
					}},
				{"Re-election latency: survivor table to verified leader table (us)",
					func(c measure.ClusterRecoveryResult) float64 { return c.ElectLatency },
					[]string{
						"successor = lowest-world-rank survivor per node (deterministic, no votes);",
						"orphaned nodes republish intra-node and answer the coordinator challenge",
					}},
				{"Re-run latency over the survivor world (us)",
					func(c measure.ClusterRecoveryResult) float64 { return c.RerunLatency },
					[]string{
						"two-level leader decomposition re-planned per node; dead roots re-rooted",
						"to new id 0",
					}},
			}
			var out []Table
			for ti, topo := range topos {
				for _, m := range metrics {
					t := Table{
						Title:   fmt.Sprintf("%s — %s fabric, gather, ppn %d, %s", m.name, topo, x12PPN, a.Display),
						XHeader: "nodes",
						Notes:   m.notes,
					}
					for di, d := range designs {
						for si, sc := range scens {
							s := Series{Name: fmt.Sprintf("%s/%s", d, sc.name)}
							for ni := range nodes {
								s.Values = append(s.Values, m.get(at(ti, di, ni, si)))
							}
							t.Series = append(t.Series, s)
						}
					}
					for _, n := range nodes {
						t.XLabels = append(t.XLabels, fmt.Sprintf("%d", n))
					}
					out = append(out, t)
				}
			}
			return out
		},
	})
}
