package bench

import (
	"fmt"

	"camc/internal/arch"
	"camc/internal/core"
	"camc/internal/kernel"
	"camc/internal/measure"
	"camc/internal/model"
	"camc/internal/mpi"
	"camc/internal/sim"
	"camc/internal/stats"
)

// x6: a model-accuracy audit — every closed-form predictor against the
// simulated execution, as relative error percentages. x7: the
// emergent-lock ablation — what the contention factor looks like when
// the mm lock is modeled as a fair FIFO mutex instead of the calibrated
// γ(c) curve.

func init() {
	register(&Experiment{
		ID:    "x6",
		Title: "[extension] Model-accuracy audit: every closed form vs the simulator",
		Tables: func(o Options) []Table {
			a := arch.KNL()
			if o.Arch != "" {
				a = o.archs(arch.KNL())[0]
			}
			sizes := []int64{64 << 10, 256 << 10, 1 << 20, 4 << 20}
			if o.Quick {
				sizes = []int64{256 << 10, 1 << 20}
			}
			p := model.Estimate(a)
			if _, err := p.FitGamma(model.MeasureGammaCurve(a, []int{50}, gammaConcurrencies(a, true))); err != nil {
				panic(err)
			}
			pr := model.NewPredictor(p, a.DefaultProcs)
			rows := []struct {
				name    string
				kind    core.Kind
				run     func(*mpi.Rank, core.Args)
				predict func(int64) float64
			}{
				{"scatter/parallel-read", core.KindScatter, core.ScatterParallelRead, pr.ScatterParallelRead},
				{"scatter/sequential-write", core.KindScatter, core.ScatterSeqWrite, pr.ScatterSeqWrite},
				{"scatter/throttled-8", core.KindScatter, core.ScatterThrottled(8), func(n int64) float64 { return pr.ScatterThrottled(n, 8) }},
				{"gather/parallel-write", core.KindGather, core.GatherParallelWrite, pr.GatherParallelWrite},
				{"gather/throttled-8", core.KindGather, core.GatherThrottled(8), func(n int64) float64 { return pr.GatherThrottled(n, 8) }},
				{"bcast/direct-read", core.KindBcast, core.BcastDirectRead, pr.BcastDirectRead},
				{"bcast/direct-write", core.KindBcast, core.BcastDirectWrite, pr.BcastDirectWrite},
				{"bcast/knomial-9", core.KindBcast, core.BcastKnomialRead(9), func(n int64) float64 { return pr.BcastKnomial(n, 9) }},
				{"bcast/scatter-allgather", core.KindBcast, core.BcastScatterAllgather, pr.BcastScatterAllgather},
				{"allgather/ring-source", core.KindAllgather, core.AllgatherRingSourceRead, pr.AllgatherRing},
				{"allgather/bruck", core.KindAllgather, core.AllgatherBruck, pr.AllgatherBruck},
				{"alltoall/pairwise-coll", core.KindAlltoall, core.AlltoallPairwiseColl, pr.AlltoallPairwise},
				{"reduce/flat", core.KindGather, core.ReduceFlat, pr.ReduceFlat},
				{"reduce/knomial-2", core.KindGather, core.ReduceKnomial(2), func(n int64) float64 { return pr.ReduceKnomial(n, 2) }},
				{"reduce/parallel-write", core.KindGather, core.ReduceParallelWrite, pr.ReduceParallelWrite},
			}
			t := Table{
				Title:   "Closed-form prediction error (%) vs simulated latency, " + a.Display,
				XHeader: "algorithm",
				Notes: []string{
					"parameters estimated via the Table III procedure, gamma NLLS-fitted",
					"scatter-allgather and reduce formulas are this repo's extensions;",
					"the rest are the paper's Section IV-V equations",
				},
			}
			cols := make([]Series, len(sizes))
			for i, sz := range sizes {
				cols[i] = Series{Name: sizeLabel(sz)}
			}
			measured := parMap(o, len(rows)*len(sizes), func(i int) float64 {
				row, sz := rows[i/len(sizes)], sizes[i%len(sizes)]
				return measure.Collective(a, row.kind, row.run, sz, measure.Options{})
			})
			for ri, row := range rows {
				t.XLabels = append(t.XLabels, row.name)
				for i, sz := range sizes {
					m := measured[ri*len(sizes)+i]
					cols[i].Values = append(cols[i].Values, 100*stats.RelErr(row.predict(sz), m))
				}
			}
			t.Series = cols
			return []Table{t}
		},
	})

	register(&Experiment{
		ID:    "x7",
		Title: "[extension] Emergent FIFO-lock contention vs the calibrated gamma curve",
		Tables: func(o Options) []Table {
			a := arch.KNL()
			if o.Arch != "" {
				a = o.archs(arch.KNL())[0]
			}
			concs := []int{1, 2, 4, 8, 16, 32, 63}
			if o.Quick {
				concs = []int{1, 4, 16, 63}
			}
			t := Table{
				Title:   "Per-reader lock-phase inflation (gamma-equivalent), " + a.Display,
				XHeader: "readers",
				Notes: []string{
					"emergent = mm lock as an explicit fair FIFO mutex: queueing alone",
					"yields only linear inflation (gamma ~ c). The measured curves the",
					"paper fits are super-linear — spinlock cache-line bouncing — which",
					"is why the simulator (and the paper's model) carry gamma explicitly",
				},
			}
			emergent := Series{Name: "emergent-fifo"}
			curve := Series{Name: "calibrated-gamma"}
			linear := Series{Name: "linear-reference"}
			lockTimes := parMap(o, len(concs), func(i int) float64 {
				return emergentLockTime(a, concs[i])
			})
			base := 0.0
			for ci, c := range concs {
				t.XLabels = append(t.XLabels, fmt.Sprintf("%d", c))
				lt := lockTimes[ci]
				if c == 1 {
					base = lt
				}
				emergent.Values = append(emergent.Values, lt/base)
				curve.Values = append(curve.Values, a.Gamma(c))
				linear.Values = append(linear.Values, float64(c))
			}
			t.Series = []Series{emergent, curve, linear}
			return []Table{t}
		},
	})
}

// emergentLockTime measures the mean per-reader lock phase of c
// concurrent 128-page reads under the explicit-mutex kernel mode.
func emergentLockTime(a *arch.Profile, c int) float64 {
	s := sim.New()
	n := kernel.NewNode(s, a)
	n.CopyData = false
	n.EmergentLock = true
	size := int64(128) * int64(a.PageSize)
	src := n.NewProcess(size*int64(c) + 1<<20)
	sa := src.Alloc(size * int64(c))
	locks := make([]float64, c)
	for i := 0; i < c; i++ {
		i := i
		dst := n.NewProcess(size + 1<<20)
		da := dst.Alloc(size)
		s.Spawn(fmt.Sprintf("r%d", i), func(p *sim.Proc) {
			bd, err := dst.VMReadPartial(p, da, src, sa+kernel.Addr(int64(i)*size), size, size)
			if err != nil {
				panic(err)
			}
			locks[i] = bd.Lock
		})
	}
	if err := s.Run(); err != nil {
		panic(err)
	}
	return stats.Mean(locks)
}
