package bench

import (
	"bytes"
	"strings"
	"testing"

	"camc/internal/arch"
	"camc/internal/store"
)

func TestArchAndKindFromTitle(t *testing.T) {
	cases := []struct {
		title string
		arch  string
		kind  string
	}{
		{"Fig 7: Scatter algorithms, " + arch.KNL().Display, "knl", "scatter"},
		{"Fig 8: Gather algorithms, " + arch.Broadwell().Display, "broadwell", "gather"},
		{"Fig 10: Allgather algorithms, " + arch.Power8().Display, "power8", "allgather"},
		{"Fig 11: Broadcast algorithms, " + arch.KNL().Display, "knl", "bcast"},
		{"Gather (throttled k=8) latency by kernel-assist mechanism, IBM Power8 (PPC64LE)", "power8", "gather"},
		{"[extension] Contention-aware Reduce", "", "reduce"},
		{"Detection latency: first death to coherent agreement (us)", "", ""},
		{"Alltoall pairwise on knl", "knl", "alltoall"},
	}
	for _, c := range cases {
		if got := archFromTitle(c.title); got != c.arch {
			t.Errorf("archFromTitle(%q) = %q, want %q", c.title, got, c.arch)
		}
		if got := kindFromTitle(c.title); got != c.kind {
			t.Errorf("kindFromTitle(%q) = %q, want %q", c.title, got, c.kind)
		}
	}
}

func TestCellRecordsFlattening(t *testing.T) {
	tab := Table{
		Title:   "Fig 7: Scatter algorithms, " + arch.KNL().Display,
		XHeader: "size",
		XLabels: []string{"4K", "64K", "1M"},
		Series: []Series{
			{Name: "throttle=4", Values: []float64{10, 20, 30}},
			{Name: "parallel-read", Values: []float64{15, 25}}, // ragged: short series
		},
		Notes: []string{"latency (us), 64 processes, full subscription"},
	}
	recs := CellRecords("run-1", "fig7", tab)
	if len(recs) != 5 {
		t.Fatalf("%d records, want 5 (ragged series truncates)", len(recs))
	}
	first := recs[0]
	if first.Type != store.TypeCell || first.RunID != "run-1" || first.Experiment != "fig7" {
		t.Fatalf("record identity wrong: %+v", first)
	}
	if first.Arch != "knl" || first.Collective != "scatter" {
		t.Fatalf("title extraction wrong: arch=%q kind=%q", first.Arch, first.Collective)
	}
	if first.Series != "throttle=4" || first.X != "4K" || first.Size != 4096 || first.Value != 10 {
		t.Fatalf("cell payload wrong: %+v", first)
	}
	if first.Unit != "us" {
		t.Fatalf("unit %q, want us", first.Unit)
	}
	// Non-size x labels keep Size 0.
	tab2 := Table{
		Title:   "Speedup vs libraries on " + arch.KNL().Display,
		XLabels: []string{"mvapich2"},
		Series:  []Series{{Name: "max", Values: []float64{3.2}}},
	}
	recs2 := CellRecords("run-1", "tab6", tab2)
	if recs2[0].Size != 0 || recs2[0].Unit != "x" {
		t.Fatalf("speedup table: %+v", recs2[0])
	}
}

// RunFormatSink must not change the rendered output, and must hand the
// sink every table in output order.
func TestRunFormatSinkTransparent(t *testing.T) {
	e, ok := ByID("tab5")
	if !ok {
		t.Fatal("tab5 not registered")
	}
	var plain, sunk bytes.Buffer
	if err := e.RunFormat(&plain, Options{Quick: true}, FormatTable); err != nil {
		t.Fatal(err)
	}
	var tables []Table
	if err := e.RunFormatSink(&sunk, Options{Quick: true}, FormatTable, func(t Table) {
		tables = append(tables, t)
	}); err != nil {
		t.Fatal(err)
	}
	if plain.String() != sunk.String() {
		t.Fatal("sink changed the rendered output")
	}
	if len(tables) == 0 {
		t.Fatal("sink saw no tables")
	}
	for _, tab := range tables {
		if !strings.Contains(plain.String(), "## "+tab.Title) {
			t.Fatalf("sunk table %q not in output", tab.Title)
		}
	}
}
