package bench

import (
	"fmt"

	"camc/internal/arch"
	"camc/internal/core"
	"camc/internal/measure"
	"camc/internal/mpi"
)

// x10: the cluster-scale rank sweep. The zero-alloc dispatcher, the
// sparse page-table payload backing (pages materialize only when
// written — the per-rank address space is purely virtual), the lazy
// per-pair shm queues and the bulk address-exchange path let rank
// ladders run on one host at sizes the eager implementation could not
// reach: a 64k-rank bcast cell completes in tens of seconds under the
// default Go heap. This is the regime the paper's contention model
// gamma(c) is built for — Task & Chauhan's cluster-of-multicores
// communication model — and the prerequisite the ROADMAP names for
// hierarchical collectives and multi-tenant scenarios.

// scaleLadder is one collective's rank ladder: an algorithm held fixed
// while the communicator grows by powers of four.
type scaleLadder struct {
	word  string // collective word for the table title (store kind tagging)
	kind  core.Kind
	algo  func(*mpi.Rank, core.Args)
	name  string // algorithm spec name for the series label
	count int64  // bytes per rank block, held fixed across the ladder
	ranks []int
	quick []int
	note  string
}

// scaleLadders returns the x10 matrix. Per-collective rank caps bound
// the sweep's wall time, not its correctness: bcast moves O(n) bytes
// per rank so the knomial ladder reaches 65536 ranks, while bruck
// allgather and pairwise alltoall move O(p·n) per rank — their
// simulated events grow quadratically with the communicator, so their
// ladders stop at 4096 and 2048 ranks respectively.
func scaleLadders() []scaleLadder {
	return []scaleLadder{
		{
			word: "bcast", kind: core.KindBcast,
			algo: core.BcastKnomialRead(8), name: "knomial-read:8",
			count: 4096,
			ranks: []int{1024, 4096, 16384, 65536},
			quick: []int{1024, 4096},
			note:  "bcast ladder reaches 65536 ranks: per-rank volume is flat in p",
		},
		{
			word: "allgather", kind: core.KindAllgather,
			algo: core.AllgatherBruck, name: "bruck",
			count: 64,
			ranks: []int{1024, 2048, 4096},
			quick: []int{1024},
			note:  "bruck allgather moves O(p*n) per rank; the ladder caps at 4096 ranks",
		},
		{
			word: "alltoall", kind: core.KindAlltoall,
			algo: core.AlltoallPairwiseColl, name: "pairwise-cma-coll",
			count: 256,
			ranks: []int{512, 1024, 2048},
			quick: []int{256, 512},
			note:  "pairwise alltoall is p rounds of p exchanges; the ladder caps at 2048 ranks",
		},
	}
}

func init() {
	register(&Experiment{
		ID:    "x10",
		Title: "[extension] Cluster-scale rank sweep: dataless collectives at 1k-64k ranks",
		Tables: func(o Options) []Table {
			archs := o.archs(arch.All()...)
			lads := scaleLadders()
			// Flatten the (arch, ladder, rank) matrix into one parMap so
			// cells fill every worker regardless of ladder lengths.
			type cellKey struct {
				ai, li, ri int
			}
			var cells []cellKey
			for ai := range archs {
				for li, l := range lads {
					ranks := l.ranks
					if o.Quick {
						ranks = l.quick
					}
					for ri := range ranks {
						cells = append(cells, cellKey{ai, li, ri})
					}
				}
			}
			vals := parMap(o, len(cells), func(i int) float64 {
				c := cells[i]
				a, l := archs[c.ai], lads[c.li]
				ranks := l.ranks
				if o.Quick {
					ranks = l.quick
				}
				return measure.Collective(a, l.kind, l.algo, l.count, measure.Options{Procs: ranks[c.ri]})
			})
			byKey := make(map[cellKey]float64, len(cells))
			for i, c := range cells {
				byKey[c] = vals[i]
			}
			var out []Table
			for ai, a := range archs {
				for li, l := range lads {
					ranks := l.ranks
					if o.Quick {
						ranks = l.quick
					}
					t := Table{
						Title:   fmt.Sprintf("Scale ladder: %s %s latency vs ranks, %s", l.word, l.name, a.Display),
						XHeader: "ranks",
						Notes: []string{
							fmt.Sprintf("%d bytes per rank block; dataless sparse run (pages back only written ranges)", l.count),
							l.note,
							"address exchange above 512 ranks rides one bulk vector per tree edge",
						},
					}
					s := Series{Name: l.name}
					for ri, r := range ranks {
						t.XLabels = append(t.XLabels, fmt.Sprintf("%d", r))
						s.Values = append(s.Values, byKey[cellKey{ai, li, ri}])
					}
					t.Series = []Series{s}
					out = append(out, t)
				}
			}
			return out
		},
	})
}
