package bench

import (
	"fmt"
	"strings"

	"camc/internal/arch"
	"camc/internal/core"
	"camc/internal/tuner"
	"camc/internal/workload"
)

// x13: the multi-tenant contention sweep. The paper calibrates γ(c) with
// one job on the machine; this extension asks what the tuner should do
// when part of the "c" belongs to somebody else. Three panels per
// architecture:
//
//  1. per-kind tuned-winner grids at probe granularity, one series per
//     ambient co-tenant pressure level — the raw view of where the
//     winning algorithm flips from kernel-assisted to two-copy as the
//     phantom lock holders pile up;
//  2. a crossover summary: the smallest probed size where a
//     kernel-assisted design still wins, per (kind, ambient) — the
//     number a contention-aware tuning service keys its cache on;
//  3. a co-location interference table: the canonical three-tenant mix
//     (train / stencil / rpc) run solo vs together, showing the same
//     lock model degrading real job mixes, not just microbenchmarks.

// twoCopy classifies an algorithm name: the -shm / -pt2pt suffixed
// designs copy through shared or bounce buffers and never take the
// remote mm lock; everything else in the tuner's candidate pools is
// kernel-assisted (CMA-class) and feels ambient pressure.
func twoCopy(name string) bool {
	return strings.HasSuffix(name, "-shm") || strings.HasSuffix(name, "-pt2pt")
}

// tenantKey indexes one ProbeWinners sweep.
type tenantKey struct{ ai, ki, mi int }

// tenantGrid is the x13 probe matrix plus its measured winner grids.
type tenantGrid struct {
	archs    []*arch.Profile
	kinds    []core.Kind
	ambients []int
	sizes    []int64
	cells    map[tenantKey][]tuner.ProbeCell
}

// tenantProbeGrid measures the (arch, kind, ambient) matrix. Only the
// four kinds whose candidate pools contain both kernel-assisted and
// two-copy designs are swept: a crossover needs both classes on the
// ballot.
func tenantProbeGrid(o Options) tenantGrid {
	g := tenantGrid{
		archs:    o.archs(arch.All()...),
		kinds:    []core.Kind{core.KindScatter, core.KindGather, core.KindBcast, core.KindAllgather},
		ambients: []int{0, 2, 8, 32},
		sizes:    []int64{1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20},
	}
	if o.Quick {
		g.kinds = []core.Kind{core.KindScatter, core.KindBcast}
		g.ambients = []int{0, 32}
		g.sizes = []int64{4 << 10, 64 << 10, 1 << 20}
	}
	var keys []tenantKey
	for ai := range g.archs {
		for ki := range g.kinds {
			for mi := range g.ambients {
				keys = append(keys, tenantKey{ai, ki, mi})
			}
		}
	}
	// Each cell is a full candidate×size probe sweep; parallelism lives
	// at this level, so the inner tuner runs sequentially.
	vals := parMap(o, len(keys), func(i int) []tuner.ProbeCell {
		k := keys[i]
		return tuner.ProbeWinners(g.archs[k.ai], g.kinds[k.ki], tuner.Config{
			ProbeSizes: g.sizes,
			Ambient:    g.ambients[k.mi],
			Jobs:       1,
		})
	})
	g.cells = make(map[tenantKey][]tuner.ProbeCell, len(keys))
	for i, k := range keys {
		g.cells[k] = vals[i]
	}
	return g
}

// crossoverSize returns the smallest probed size where a
// kernel-assisted algorithm wins (0 when two-copy wins everywhere).
func crossoverSize(cells []tuner.ProbeCell) float64 {
	for _, c := range cells {
		if !twoCopy(c.Name) {
			return float64(c.Size)
		}
	}
	return 0
}

// tenantMix is the interference scenario: the canonical three-tenant
// mix at a fixed small world. Two training iterations are the floor —
// with one, the stencil and rpc streams drain before the train job's
// big transfers start sampling, and nothing overlaps.
func tenantMix(quick bool) []workload.JobSpec {
	if quick {
		return workload.DefaultMix(8, 2)
	}
	return workload.DefaultMix(16, 4)
}

func init() {
	register(&Experiment{
		ID:    "x13",
		Title: "[extension] Multi-tenant ambient pressure: tuned crossovers shift, co-located mixes interfere",
		Tables: func(o Options) []Table {
			g := tenantProbeGrid(o)

			// Interference cells: per arch, the co-located mix plus each
			// job solo. Cell 0 is the co-located run, 1..len(specs) the
			// solo runs.
			specs := tenantMix(o.Quick)
			perArch := 1 + len(specs)
			mixVals := parMap(o, len(g.archs)*perArch, func(i int) []workload.JobResult {
				a, ci := g.archs[i/perArch], i%perArch
				wopts := workload.Options{Arch: a}
				if ci == 0 {
					res, err := workload.Run(specs, wopts)
					if err != nil {
						panic(err)
					}
					return res.Jobs
				}
				jr, err := workload.Solo(specs[ci-1], wopts)
				if err != nil {
					panic(err)
				}
				return []workload.JobResult{jr}
			})

			var out []Table
			for ai, a := range g.archs {
				// Panel 1: per-kind winner grids.
				for ki, kind := range g.kinds {
					t := Table{
						Title:   fmt.Sprintf("Tuned winner vs size under ambient lock pressure: %s, %s", kind, a.Display),
						XHeader: "size",
						XLabels: sizeLabels(g.sizes),
						Notes: []string{
							"latency (us) of the per-size winning candidate; ambient = phantom co-tenant mm-lock holders added to every gamma(c) sample",
						},
					}
					for mi, amb := range g.ambients {
						cells := g.cells[tenantKey{ai, ki, mi}]
						s := Series{Name: fmt.Sprintf("amb=%d", amb)}
						var winners []string
						for _, c := range cells {
							s.Values = append(s.Values, c.Latency)
							winners = append(winners, fmt.Sprintf("%s@%s", c.Name, sizeLabel(c.Size)))
						}
						t.Series = append(t.Series, s)
						t.Notes = append(t.Notes, fmt.Sprintf("amb=%d winners: %s", amb, strings.Join(winners, " ")))
					}
					out = append(out, t)
				}

				// Panel 2: crossover summary.
				ct := Table{
					Title:   fmt.Sprintf("Kernel-assist crossover size vs ambient pressure, %s", a.Display),
					XHeader: "kind",
					Notes: []string{
						"value = smallest probed size (bytes) where a kernel-assisted (CMA-class) design wins; 0 = two-copy wins at every probe",
						"ambient pressure inflates gamma(c) for the lock-taking designs only, pushing the crossover toward larger messages",
					},
				}
				for _, kind := range g.kinds {
					ct.XLabels = append(ct.XLabels, string(kind))
				}
				for mi, amb := range g.ambients {
					s := Series{Name: fmt.Sprintf("amb=%d", amb)}
					for ki := range g.kinds {
						s.Values = append(s.Values, crossoverSize(g.cells[tenantKey{ai, ki, mi}]))
					}
					ct.Series = append(ct.Series, s)
				}
				out = append(out, ct)

				// Panel 3: co-location interference.
				co := mixVals[ai*perArch]
				it := Table{
					Title:   fmt.Sprintf("Co-location interference: train/stencil/rpc mix solo vs co-located, %s", a.Display),
					XHeader: "job",
					Notes: []string{
						fmt.Sprintf("%d ranks per job; mean per-op latency (us), last-in to last-out; peak-amb = largest co-tenant lock pressure the job's transfers observed", specs[0].Ranks),
					},
				}
				solo := Series{Name: "solo"}
				coloc := Series{Name: "co-located"}
				peak := Series{Name: "peak-amb"}
				for si, spec := range specs {
					it.XLabels = append(it.XLabels, spec.Name)
					jr := mixVals[ai*perArch+1+si][0]
					solo.Values = append(solo.Values, jr.MeanLat)
					var cj workload.JobResult
					for _, j := range co {
						if j.Name == spec.Name {
							cj = j
						}
					}
					coloc.Values = append(coloc.Values, cj.MeanLat)
					peak.Values = append(peak.Values, float64(cj.PeakAmbient))
				}
				it.Series = append(it.Series, solo, coloc, peak)
				out = append(out, it)
			}
			return out
		},
	})
}
