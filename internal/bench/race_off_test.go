//go:build !race

package bench

// raceDetectorOn reports whether this test binary was built with the
// race detector (see race_on_test.go). The bench suite subsamples the
// most expensive experiments under race: the detector costs ~10x on the
// single-CPU CI hosts, and the concurrency machinery it checks (the
// par worker pool, trace-sink serialization, per-cell fault plans) is
// identical across experiments, so the cheap ones cover it.
const raceDetectorOn = false
