package bench

import (
	"strings"

	"camc/internal/arch"
	"camc/internal/store"
)

// Store hook: flattening experiment tables into per-cell records for
// the persistent results store, so every harness run leaves a durable,
// queryable trail instead of a transient text table.

// CellRecords flattens one experiment table into store cell records,
// one per (series, x) value, tagged with the run id and experiment id.
// Architecture and collective kind are recovered from the table title
// (experiments bake them into titles like "Fig 7: Scatter algorithms,
// Intel Xeon Phi 7250 (Knights Landing)"); cells whose title carries
// neither stay untagged and still match by full key.
func CellRecords(runID, expID string, t Table) []store.Record {
	archName := archFromTitle(t.Title)
	kind := kindFromTitle(t.Title)
	var out []store.Record
	for _, s := range t.Series {
		for xi, v := range s.Values {
			if xi >= len(t.XLabels) {
				break
			}
			x := t.XLabels[xi]
			size, _ := store.ParseSizeLabel(x)
			out = append(out, store.Record{
				Type:       store.TypeCell,
				RunID:      runID,
				Experiment: expID,
				Table:      t.Title,
				Arch:       archName,
				Collective: kind,
				Series:     s.Name,
				X:          x,
				Size:       size,
				Value:      v,
				Unit:       cellUnit(t),
			})
		}
	}
	return out
}

// archFromTitle maps a table title to a profile name by matching the
// display string ("... , IBM Power8 (PPC64LE)") or the short name.
func archFromTitle(title string) string {
	lower := strings.ToLower(title)
	for _, p := range arch.All() {
		if strings.Contains(title, p.Display) || strings.Contains(lower, p.Name) {
			return p.Name
		}
	}
	switch {
	case strings.Contains(lower, "knights landing"):
		return "knl"
	case strings.Contains(lower, "broadwell"):
		return "broadwell"
	case strings.Contains(lower, "power8"):
		return "power8"
	}
	return ""
}

// kindTitleWords orders longer kind names first so "allgather" is not
// misread as "gather".
var kindTitleWords = []struct{ word, kind string }{
	{"allgather", "allgather"},
	{"alltoall", "alltoall"},
	{"allreduce", "allreduce"},
	{"scatterv", "scatterv"},
	{"gatherv", "gatherv"},
	{"scatter", "scatter"},
	{"gather", "gather"},
	{"broadcast", "bcast"},
	{"bcast", "bcast"},
	{"reduce", "reduce"},
	{"barrier", "barrier"},
}

func kindFromTitle(title string) string {
	lower := strings.ToLower(title)
	for _, kw := range kindTitleWords {
		if strings.Contains(lower, kw.word) {
			return kw.kind
		}
	}
	return ""
}

// cellUnit guesses the unit from the table's notes/title; the harness
// reports latencies in simulated microseconds unless a table says
// otherwise, and units only label reports (comparisons are per-key).
func cellUnit(t Table) string {
	probe := strings.ToLower(t.Title)
	for _, n := range t.Notes {
		probe += " " + strings.ToLower(n)
	}
	switch {
	case strings.Contains(probe, "speedup") || strings.Contains(probe, "ratio"):
		return "x"
	case strings.Contains(probe, "deaths") || strings.Contains(probe, "count"):
		return ""
	default:
		return "us"
	}
}
