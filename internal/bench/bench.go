// Package bench is the reproduction harness: one experiment per figure
// and table of the paper's evaluation, each regenerating the same
// rows/series the paper plots, as aligned text tables.
//
// Experiments return structured Tables so tests can assert the published
// *shapes* (who wins, by what factor, where crossovers fall), and print
// them for the camc-bench / camc-micro / camc-model command-line tools
// and for EXPERIMENTS.md.
package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"camc/internal/arch"
	"camc/internal/fault"
	"camc/internal/trace"
)

// Options tunes an experiment run.
type Options struct {
	// Arch restricts multi-architecture experiments to one profile
	// ("knl", "broadwell", "power8"). Empty = the experiment's default
	// set.
	Arch string
	// Quick trims sweeps (fewer sizes, smaller concurrency ladders) for
	// test and benchmark use; shapes remain intact.
	Quick bool
	// Jobs caps the worker goroutines evaluating independent experiment
	// cells (0 = GOMAXPROCS, 1 = sequential). Cells are deterministic
	// simulations assembled by index, so emitted tables are identical
	// for any value; only wall-clock time changes.
	Jobs int
	// TraceSink, when non-nil, runs every measurement of the
	// algorithm-comparison experiments (figs 7-11) with a trace recorder
	// attached and hands each cell's recorder to the sink, labelled by
	// architecture, algorithm and message size. Latencies are unchanged
	// (recording never perturbs virtual time).
	TraceSink func(archName, algo string, size int64, rec *trace.Recorder)

	// Fault, when non-nil and active, adds a "custom" scenario with this
	// configuration to the x8 robustness experiment (the camc-bench
	// -faults flag). A config with a kill probability also adds a custom
	// scenario to the x9 chaos experiment.
	Fault *fault.Config

	// Deadline, when > 0, overrides the liveness failure detector's
	// blocking-wait deadline (simulated microseconds) for the x9 chaos
	// experiment (the camc-bench -deadline flag). 0 keeps the x9 default.
	Deadline float64
}

func (o Options) archs(defaults ...*arch.Profile) []*arch.Profile {
	if o.Arch == "" {
		return defaults
	}
	p, err := arch.ByName(o.Arch)
	if err != nil {
		panic(err)
	}
	for _, d := range defaults {
		if d.Name == p.Name {
			return []*arch.Profile{p}
		}
	}
	// The experiment does not cover this architecture in the paper;
	// honour the request anyway (useful for exploration).
	return []*arch.Profile{p}
}

// Series is one named line of a figure (or column of a table).
type Series struct {
	Name   string
	Values []float64
}

// Table is one panel of an experiment: x labels down the side, one
// column per series.
type Table struct {
	Title   string
	XHeader string
	XLabels []string
	Series  []Series
	// Notes are printed under the table (units, caveats).
	Notes []string
}

// Get returns the value at (series name, x index).
func (t *Table) Get(series string, xi int) (float64, bool) {
	for _, s := range t.Series {
		if s.Name == series {
			if xi < 0 || xi >= len(s.Values) {
				return 0, false
			}
			return s.Values[xi], true
		}
	}
	return 0, false
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "## %s\n\n", t.Title)
	width := len(t.XHeader)
	for _, l := range t.XLabels {
		if len(l) > width {
			width = len(l)
		}
	}
	cols := make([]int, len(t.Series))
	for i, s := range t.Series {
		cols[i] = len(s.Name)
		for _, v := range s.Values {
			if n := len(formatVal(v)); n > cols[i] {
				cols[i] = n
			}
		}
	}
	fmt.Fprintf(w, "%-*s", width, t.XHeader)
	for i, s := range t.Series {
		fmt.Fprintf(w, "  %*s", cols[i], s.Name)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%s\n", strings.Repeat("-", width+sum(cols)+2*len(cols)))
	for xi, xl := range t.XLabels {
		fmt.Fprintf(w, "%-*s", width, xl)
		for i, s := range t.Series {
			v := ""
			if xi < len(s.Values) {
				v = formatVal(s.Values[xi])
			}
			fmt.Fprintf(w, "  %*s", cols[i], v)
		}
		fmt.Fprintln(w)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func formatVal(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1e6:
		return fmt.Sprintf("%.3g", v)
	case v >= 100:
		return fmt.Sprintf("%.0f", v)
	case v >= 1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

func sum(v []int) int {
	s := 0
	for _, x := range v {
		s += x
	}
	return s
}

// Experiment reproduces one figure or table of the paper.
type Experiment struct {
	ID    string // "fig7", "tab6", ...
	Title string
	// Traceable marks experiments whose measurements feed
	// Options.TraceSink (the algorithm-comparison figures); selecting
	// -trace with none of these in the run set is a usage error.
	Traceable bool
	Tables    func(o Options) []Table
}

// Run generates and prints the experiment's tables.
func (e *Experiment) Run(w io.Writer, o Options) error {
	fmt.Fprintf(w, "=== %s: %s ===\n\n", e.ID, e.Title)
	for _, t := range e.Tables(o) {
		t.Fprint(w)
	}
	return nil
}

var registry = map[string]*Experiment{}

func register(e *Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("bench: duplicate experiment " + e.ID)
	}
	registry[e.ID] = e
}

// Registry returns all experiments sorted by ID (figures first, then
// tables).
func Registry() []*Experiment {
	var out []*Experiment
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return idKey(out[i].ID) < idKey(out[j].ID) })
	return out
}

// idKey makes fig2 < fig10 and figs sort before tables.
func idKey(id string) string {
	prefix := strings.TrimRight(id, "0123456789")
	num := strings.TrimPrefix(id, prefix)
	return fmt.Sprintf("%s%04s", prefix, num)
}

// ByID returns one experiment.
func ByID(id string) (*Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// sweepSizes is the standard message-size ladder (bytes per rank).
func sweepSizes(quick bool, max int64) []int64 {
	if quick {
		return []int64{4 << 10, 64 << 10, max}
	}
	var out []int64
	for s := int64(1 << 10); s <= max; s <<= 1 {
		out = append(out, s)
	}
	return out
}

// sizeLabels renders sizes as 1K / 4M style labels.
func sizeLabels(sizes []int64) []string {
	out := make([]string, len(sizes))
	for i, s := range sizes {
		out[i] = sizeLabel(s)
	}
	return out
}

func sizeLabel(s int64) string {
	switch {
	case s >= 1<<20 && s%(1<<20) == 0:
		return fmt.Sprintf("%dM", s>>20)
	case s >= 1<<10 && s%(1<<10) == 0:
		return fmt.Sprintf("%dK", s>>10)
	default:
		return fmt.Sprintf("%d", s)
	}
}

// largestSize is the Table VII "largest message evaluated" per
// architecture: 4 MiB on KNL and Broadwell, 2 MiB on Power8.
func largestSize(a *arch.Profile) int64 {
	if a.Name == "power8" {
		return 2 << 20
	}
	return 4 << 20
}

// readerLadder returns 1,2,4,... up to max.
func readerLadder(max int, quick bool) []int {
	var out []int
	for c := 1; c <= max; c <<= 1 {
		out = append(out, c)
	}
	if out[len(out)-1] != max {
		out = append(out, max)
	}
	if quick && len(out) > 4 {
		out = []int{1, out[len(out)/2], out[len(out)-1]}
	}
	return out
}
