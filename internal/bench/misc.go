package bench

import (
	"fmt"

	"camc/internal/arch"
	"camc/internal/workload"
)

// Fig 1 (motivation: XSEDE job-size distribution) and Table V (hardware
// specification of the three evaluation systems).

func init() {
	register(&Experiment{
		ID:    "fig1",
		Title: "Jobs submitted and CPU hours by node count (XSEDE-style trace)",
		Tables: func(o Options) []Table {
			jobs := 1_000_000
			if o.Quick {
				jobs = 50_000
			}
			trace := workload.Generate(workload.Config{Jobs: jobs, Seed: 2014})
			h := workload.Summarize(trace)
			jf, hf := workload.SmallJobShare(trace, 9)
			counts := Series{Name: "jobs (x1000)"}
			hours := Series{Name: "CPU-hours (M)"}
			for i := range h.Labels {
				counts.Values = append(counts.Values, float64(h.JobCount[i])/1e3)
				hours.Values = append(hours.Values, h.CPUHours[i]/1e6)
			}
			return []Table{{
				Title:   "Fig 1: job-size distribution over a synthetic 3-year XSEDE-style trace",
				XHeader: "nodes",
				XLabels: h.Labels,
				Series:  []Series{counts, hours},
				Notes: []string{
					fmt.Sprintf("jobs of <= 9 nodes: %.0f%% of submissions, %.0f%% of CPU hours", jf*100, hf*100),
					"small-scale jobs dominate both axes — the paper's motivation for intra-node collectives",
				},
			}}
		},
	})

	register(&Experiment{
		ID:    "tab5",
		Title: "Hardware specification of the evaluated systems (Table V)",
		Tables: func(o Options) []Table {
			t := Table{
				Title:   "Table V: simulated hardware profiles",
				XHeader: "spec",
				XLabels: []string{
					"sockets", "cores/socket", "threads/core", "procs used",
					"clock (GHz)", "RAM (GB)", "page (B)", "CMA BW (GB/s)", "agg BW (GB/s)",
				},
			}
			for _, a := range o.archs(arch.All()...) {
				t.Series = append(t.Series, Series{
					Name: a.Name,
					Values: []float64{
						float64(a.Sockets), float64(a.CoresPerSocket), float64(a.ThreadsPerCore),
						float64(a.DefaultProcs), a.ClockGHz, float64(a.RAMGB), float64(a.PageSize),
						a.BandwidthBps / 1e9, a.AggBandwidthBps / 1e9,
					},
				})
			}
			return []Table{t}
		},
	})
}
