package bench

import (
	"fmt"

	"camc/internal/arch"
	"camc/internal/core"
	"camc/internal/measure"
	"camc/internal/mpi"
	"camc/internal/trace"
)

// Algorithm-comparison experiments (Figs 7–11): the paper's §IV–§V
// studies of the native CMA algorithm design spaces, per architecture at
// full subscription.

// namedAlgo is one line of an algorithm-comparison figure.
type namedAlgo struct {
	name string
	run  func(*mpi.Rank, core.Args)
}

// throttlesFor returns the throttle ladder the paper sweeps per
// architecture (Fig 7/8 legends: 2,4,8,16 on KNL; 2,4,7,14 on Broadwell;
// 2,4,10,20 on Power8).
func throttlesFor(a *arch.Profile) []int {
	switch a.Name {
	case "broadwell":
		return []int{2, 4, 7, 14}
	case "power8":
		return []int{2, 4, 10, 20}
	default:
		return []int{2, 4, 8, 16}
	}
}

// sweepAlgos measures each algorithm across the size ladder, tracing
// each cell when the options carry a TraceSink. Cells run on the
// parallel engine; recorders are handed to the sink serially in cell
// order during assembly, so tracing stays deterministic.
func sweepAlgos(o Options, a *arch.Profile, kind core.Kind, algos []namedAlgo, sizes []int64) Table {
	t := Table{
		XHeader: "size",
		XLabels: sizeLabels(sizes),
		Notes:   []string{fmt.Sprintf("latency (us), %d processes, full subscription", a.DefaultProcs)},
	}
	type cell struct {
		lat float64
		rec *trace.Recorder
	}
	cells := parMap(o, len(algos)*len(sizes), func(i int) cell {
		al, sz := algos[i/len(sizes)], sizes[i%len(sizes)]
		if o.TraceSink == nil {
			return cell{lat: measure.Collective(a, kind, al.run, sz, measure.Options{})}
		}
		lat, rec := measure.CollectiveTraced(a, kind, al.run, sz, measure.Options{})
		return cell{lat, rec}
	})
	for ai, al := range algos {
		s := Series{Name: al.name}
		for si, sz := range sizes {
			c := cells[ai*len(sizes)+si]
			if o.TraceSink != nil {
				o.TraceSink(a.Name, al.name, sz, c.rec)
			}
			s.Values = append(s.Values, c.lat)
		}
		t.Series = append(t.Series, s)
	}
	return t
}

func init() {
	register(&Experiment{
		ID:        "fig7",
		Traceable: true,
		Title:     "Scatter algorithm comparison",
		Tables: func(o Options) []Table {
			var tables []Table
			for _, a := range o.archs(arch.All()...) {
				algos := []namedAlgo{}
				for _, k := range throttlesFor(a) {
					algos = append(algos, namedAlgo{fmt.Sprintf("throttle=%d", k), core.ScatterThrottled(k)})
				}
				algos = append(algos,
					namedAlgo{"parallel-read", core.ScatterParallelRead},
					namedAlgo{"sequential-write", core.ScatterSeqWrite},
				)
				t := sweepAlgos(o, a, core.KindScatter, algos, sweepSizes(o.Quick, largestSize(a)))
				t.Title = "Fig 7: Scatter algorithms, " + a.Display
				tables = append(tables, t)
			}
			return tables
		},
	})

	register(&Experiment{
		ID:        "fig8",
		Traceable: true,
		Title:     "Gather algorithm comparison",
		Tables: func(o Options) []Table {
			var tables []Table
			for _, a := range o.archs(arch.All()...) {
				algos := []namedAlgo{}
				for _, k := range throttlesFor(a) {
					algos = append(algos, namedAlgo{fmt.Sprintf("throttle=%d", k), core.GatherThrottled(k)})
				}
				algos = append(algos,
					namedAlgo{"parallel-write", core.GatherParallelWrite},
					namedAlgo{"sequential-read", core.GatherSeqRead},
				)
				t := sweepAlgos(o, a, core.KindGather, algos, sweepSizes(o.Quick, largestSize(a)))
				t.Title = "Fig 8: Gather algorithms, " + a.Display
				tables = append(tables, t)
			}
			return tables
		},
	})

	register(&Experiment{
		ID:        "fig9",
		Traceable: true,
		Title:     "Alltoall pairwise exchange: SHMEM vs CMA-pt2pt vs CMA-coll",
		Tables: func(o Options) []Table {
			var tables []Table
			for _, a := range o.archs(arch.KNL(), arch.Broadwell()) {
				algos := []namedAlgo{
					{"SHMEM", core.AlltoallPairwiseShm},
					{"CMA-pt2pt", core.AlltoallPairwisePt2pt},
					{"CMA-coll", core.AlltoallPairwiseColl},
				}
				t := sweepAlgos(o, a, core.KindAlltoall, algos, sweepSizes(o.Quick, 1<<20))
				t.Title = "Fig 9: Pairwise Alltoall implementations, " + a.Display
				t.Notes = append(t.Notes, "CMA-coll avoids the per-message RTS/CTS of CMA-pt2pt")
				tables = append(tables, t)
			}
			return tables
		},
	})

	register(&Experiment{
		ID:        "fig10",
		Traceable: true,
		Title:     "Allgather algorithm comparison",
		Tables: func(o Options) []Table {
			var tables []Table
			for _, a := range o.archs(arch.All()...) {
				algos := []namedAlgo{
					{"ring-source-read", core.AllgatherRingSourceRead},
					{"ring-source-write", core.AllgatherRingSourceWrite},
					{"ring-neighbor-1", core.AllgatherRingNeighbor(1)},
					{"recursive-doubling", core.AllgatherRecursiveDoubling},
					{"bruck", core.AllgatherBruck},
				}
				// The socket-awareness study: a stride that forces
				// inter-socket neighbor traffic (gcd(stride, p) must be 1).
				if a.Sockets > 1 {
					stride := a.DefaultProcs/2 + 1
					for gcd(stride, a.DefaultProcs) != 1 {
						stride++
					}
					algos = append(algos, namedAlgo{
						fmt.Sprintf("ring-neighbor-%d", stride),
						core.AllgatherRingNeighbor(stride),
					})
				}
				t := sweepAlgos(o, a, core.KindAllgather, algos, sweepSizes(o.Quick, 1<<20))
				t.Title = "Fig 10: Allgather algorithms, " + a.Display
				tables = append(tables, t)
			}
			return tables
		},
	})

	register(&Experiment{
		ID:        "fig11",
		Traceable: true,
		Title:     "Broadcast algorithm comparison",
		Tables: func(o Options) []Table {
			var tables []Table
			for _, a := range o.archs(arch.All()...) {
				k := core.TunedThrottle(a) + 1
				algos := []namedAlgo{
					{"parallel-read", core.BcastDirectRead},
					{"sequential-write", core.BcastDirectWrite},
					{"scatter-allgather", core.BcastScatterAllgather},
					{fmt.Sprintf("knomial-read-%d", k), core.BcastKnomialRead(k)},
					{fmt.Sprintf("knomial-write-%d", k), core.BcastKnomialWrite(k)},
				}
				t := sweepAlgos(o, a, core.KindBcast, algos, sweepSizes(o.Quick, largestSize(a)))
				t.Title = "Fig 11: Broadcast algorithms, " + a.Display
				tables = append(tables, t)
			}
			return tables
		},
	})
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}
