package bench

import (
	"fmt"

	"camc/internal/arch"
	"camc/internal/fault"
	"camc/internal/liveness"
	"camc/internal/measure"
)

// x9: the chaos experiment. Every cell runs one collective with real
// data movement under a fault plan that permanently kills 1..k ranks
// mid-operation, then drives the full recovery cycle: deadline-bounded
// detection (no survivor blocks past the configured deadline), a
// coherent-error agreement round (every survivor returns the identical
// failed-rank set), communicator shrink with a fresh transport and a
// re-run of the one-time address exchange, algorithm re-planning for
// the (possibly non-power-of-two, re-rooted) survivor count, and a
// verified re-run: every byte of the survivors' payload is checked
// against what a fresh communicator of that size would produce. A
// failed verification or an incoherent verdict panics the sweep.

// DefaultDeadline is the liveness detector deadline x9 runs with when
// Options.Deadline is zero (simulated microseconds). The camc-bench
// -deadline flag documents 0 as "experiment default"; this constant is
// that default, and the CLI resolves a kill plan without an explicit
// -deadline to it rather than leaving the field 0.
const DefaultDeadline = 2_000

// chaosScenario is one column of the x9 tables: a kill plan seeded to
// arm a known number of ranks for mid-collective death. A nil cfg is
// the no-failure baseline.
type chaosScenario struct {
	name string
	cfg  *fault.Config
}

// findKillSeed searches seeds until the kill pick (a pure function of
// seed and rank — see fault.Plan.KillPoint) arms exactly want of the
// procs ranks at probability prob. Rank 0 is never picked, so want
// must be < procs. An armed rank dies when its operation counter
// reaches its kill point — unless the collective aborts under another
// rank's death first (see the survivor-accounting table).
func findKillSeed(procs, want, maxOp int, prob float64) fault.Config {
	for seed := int64(1); seed < 10_000; seed++ {
		cfg := fault.Config{Seed: seed, KillProb: prob, KillMaxOp: maxOp}
		p := fault.New(cfg)
		picked := 0
		for r := 0; r < procs; r++ {
			if p.KillPoint(r) != -1 {
				picked++
			}
		}
		if picked == want {
			return cfg
		}
	}
	panic(fmt.Sprintf("bench: no seed kills exactly %d of %d ranks at prob %g", want, procs, prob))
}

func chaosScenarios(o Options, procs int) []chaosScenario {
	scens := []chaosScenario{{name: "no-failure"}}
	kills := []int{1}
	if !o.Quick {
		kills = []int{1, 2, 3}
	}
	for _, k := range kills {
		// The single-kill scenario lets the victim die up to 8 ops deep —
		// mid-algorithm, after the address exchange. The multi-kill
		// scenarios pin every kill point to the first op: a death aborts
		// every blocked survivor within one poll quantum, so deaths that
		// should land together must fire before the first one propagates.
		maxOp := 8
		if k > 1 {
			maxOp = 1
		}
		cfg := findKillSeed(procs, k, maxOp, 0.35)
		scens = append(scens, chaosScenario{name: fmt.Sprintf("kill-%d", k), cfg: &cfg})
	}
	if o.Fault != nil && o.Fault.KillProb > 0 {
		scens = append(scens, chaosScenario{name: "custom", cfg: o.Fault})
	}
	return scens
}

func init() {
	register(&Experiment{
		ID:    "x9",
		Title: "[extension] Chaos: permanent rank death, agreement, shrink and verified re-run",
		Tables: func(o Options) []Table {
			a := arch.Broadwell()
			if o.Arch != "" {
				a = o.archs(arch.Broadwell())[0]
			}
			const procs = 8
			count := int64(64 << 10)
			if o.Quick {
				count = 8 << 10
			}
			lcfg := liveness.Config{Deadline: DefaultDeadline, Poll: 5}
			if o.Deadline > 0 {
				lcfg.Deadline = o.Deadline
			}
			scens := chaosScenarios(o, procs)
			colls := robustCollectives(o)

			cells := parMap(o, len(colls)*len(scens), func(i int) measure.RecoveryResult {
				cl, sc := colls[i/len(scens)], scens[i%len(scens)]
				res, err := measure.CollectiveRecovered(a, cl.kind, cl.spec, count,
					measure.Options{Procs: procs, Fault: sc.cfg, Liveness: &lcfg})
				if err != nil {
					panic(fmt.Sprintf("bench: x9 %s under %s: %v", cl.name, sc.name, err))
				}
				if sc.cfg != nil && res.Err == nil {
					panic(fmt.Sprintf("bench: x9 %s under %s: kill plan produced no failure", cl.name, sc.name))
				}
				return res
			})
			cellAt := func(ci, si int) measure.RecoveryResult { return cells[ci*len(scens)+si] }

			first := Table{
				Title:   fmt.Sprintf("First-attempt latency, %s, %d ranks, %s per rank (us)", a.Display, procs, sizeLabel(count)),
				XHeader: "collective",
				Notes: []string{
					"time until the last survivor exits the protected collective with its",
					fmt.Sprintf("local verdict; deadline-bounded (detector deadline %gus, poll %gus)", float64(lcfg.Deadline), float64(lcfg.Poll)),
				},
			}
			detect := Table{
				Title:   "Detection latency: first death to coherent agreement (us)",
				XHeader: "collective",
				Notes: []string{
					"every survivor returns the identical *PeerDeadError and failed set;",
					"agreement runs before shrink so survivors rebuild compatible communicators",
				},
			}
			shrink := Table{
				Title:   "Shrink latency: agreement to rebuilt, address-exchanged communicator (us)",
				XHeader: "collective",
			}
			rerun := Table{
				Title:   "Re-run latency on the shrunken communicator (us)",
				XHeader: "collective",
				Notes: []string{
					"algorithms re-planned for the survivor count (throttle/radix/stride",
					"clamped, dead roots re-rooted); every payload byte verified",
				},
			}
			for si, sc := range scens {
				fs := Series{Name: sc.name}
				for ci := range colls {
					fs.Values = append(fs.Values, cellAt(ci, si).FirstLatency)
				}
				first.Series = append(first.Series, fs)
				if sc.cfg == nil {
					continue
				}
				ds := Series{Name: sc.name}
				ss := Series{Name: sc.name}
				rs := Series{Name: sc.name}
				for ci := range colls {
					c := cellAt(ci, si)
					ds.Values = append(ds.Values, c.DetectLatency)
					ss.Values = append(ss.Values, c.ShrinkLatency)
					rs.Values = append(rs.Values, c.RerunLatency)
				}
				detect.Series = append(detect.Series, ds)
				shrink.Series = append(shrink.Series, ss)
				rerun.Series = append(rerun.Series, rs)
			}
			for _, cl := range colls {
				first.XLabels = append(first.XLabels, cl.name)
				detect.XLabels = append(detect.XLabels, cl.name)
				shrink.XLabels = append(shrink.XLabels, cl.name)
				rerun.XLabels = append(rerun.XLabels, cl.name)
			}

			// Survivor accounting. The seed *arms* a fixed set of ranks, but
			// an armed rank races its own kill point against the collective's
			// abort: once another rank dies, a survivor's next blocked wait
			// aborts with a peer-death error, and a rank that aborts before
			// reaching its kill op never dies. So the agreed death count is
			// per-cell, bounded above by the armed count — exactly the
			// non-determinism-under-a-deterministic-seed a chaos experiment
			// is after (each cell is still exactly reproducible). The cell
			// assembly asserts the invariants that must hold: every agreed
			// death was a fired kill, and survivors = procs − agreed.
			acct := Table{
				Title:   "Agreed deaths per cell (seed arms N ranks; aborting early saves you)",
				XHeader: "collective",
				Notes: []string{
					fmt.Sprintf("%d ranks; survivors = ranks − agreed deaths; every survivor of a", procs),
					"cell returned the identical failed-rank set (asserted in-harness)",
				},
			}
			for si, sc := range scens {
				if sc.cfg == nil {
					continue
				}
				s := Series{Name: sc.name}
				for ci := range colls {
					c := cellAt(ci, si)
					if int64(len(c.Failed)) != c.Stats.Kills {
						panic(fmt.Sprintf("bench: x9 %s under %s: %d agreed deaths but %d fired kills",
							colls[ci].name, sc.name, len(c.Failed), c.Stats.Kills))
					}
					if c.Survivors != procs-len(c.Failed) {
						panic(fmt.Sprintf("bench: x9 %s under %s: %d survivors with %d deaths",
							colls[ci].name, sc.name, c.Survivors, len(c.Failed)))
					}
					s.Values = append(s.Values, float64(len(c.Failed)))
				}
				acct.Series = append(acct.Series, s)
			}
			for _, cl := range colls {
				acct.XLabels = append(acct.XLabels, cl.name)
			}

			return []Table{first, detect, shrink, rerun, acct}
		},
	})
}
