package bench

import (
	"fmt"
	"sort"

	"camc/internal/arch"
	"camc/internal/core"
	"camc/internal/measure"
	"camc/internal/model"
)

// Model experiments: Table III (step isolation), Table IV (estimated
// parameters), Fig 5 (contention factor + NLLS fit), Fig 12 (predicted
// vs observed broadcast cost).

func init() {
	register(&Experiment{
		ID:    "tab3",
		Title: "Step isolation via truncated iovecs (Table III)",
		Tables: func(o Options) []Table {
			archs := o.archs(arch.All()...)
			return parMap(o, len(archs), func(i int) Table {
				a := archs[i]
				st := model.MeasureSteps(a, 100)
				return Table{
					Title:   "Table III: isolated CMA phases, " + a.Display + " (N=100 pages)",
					XHeader: "operation",
					XLabels: []string{"T1 syscall", "T2 +access-check", "T3 +lock+pin", "T4 +copy"},
					Series: []Series{{
						Name:   "time (us)",
						Values: []float64{st.T1, st.T2, st.T3, st.T4},
					}},
					Notes: []string{"each step includes the previous ones: T1 <= T2 <= T3 <= T4"},
				}
			})
		},
	})

	register(&Experiment{
		ID:    "tab4",
		Title: "Estimated model parameters per architecture (Table IV)",
		Tables: func(o Options) []Table {
			t := Table{
				Title:   "Table IV: model parameters (estimated via the Table III procedure)",
				XHeader: "parameter",
				XLabels: []string{"alpha (us)", "beta (GB/s)", "l (us/page)", "s (bytes)", "gamma(4)", "gamma(16)", "gamma(max)"},
				Notes: []string{
					"alpha/beta/l estimated from the simulated kernel; gamma from the NLLS fit",
					"paper's measured values: alpha 1.43/0.98/0.75, l 0.25/0.10/0.53, s 4096/4096/65536 (KNL/BDW/P8)",
				},
			}
			archs := o.archs(arch.All()...)
			t.Series = parMap(o, len(archs), func(i int) Series {
				a := archs[i]
				p := model.Estimate(a)
				concs := gammaConcurrencies(a, o.Quick)
				if _, err := p.FitGamma(model.MeasureGammaCurve(a, []int{50}, concs)); err != nil {
					panic(err)
				}
				return Series{
					Name: a.Name,
					Values: []float64{
						p.Alpha,
						1e-3 / p.Beta, // us/B -> GB/s
						p.L,
						float64(p.PageSize),
						p.Gamma(4),
						p.Gamma(16),
						p.Gamma(a.DefaultProcs - 1),
					},
				}
			})
			return []Table{t}
		},
	})

	register(&Experiment{
		ID:    "fig5",
		Title: "Contention factor determination and NLLS best fit",
		Tables: func(o Options) []Table {
			var tables []Table
			for _, a := range o.archs(arch.All()...) {
				concs := gammaConcurrencies(a, o.Quick)
				t := Table{
					Title:   "Fig 5: contention factor gamma(c), " + a.Display,
					XHeader: "readers",
					Notes: []string{
						"gamma is independent of the page count and grows with concurrency",
						"two-socket machines show a jump past the socket boundary",
					},
				}
				for _, c := range concs {
					t.XLabels = append(t.XLabels, fmt.Sprintf("%d", c))
				}
				pageCounts := []int{10, 50, 100}
				// The cell grid is exactly MeasureGammaCurve's sample set in
				// its (pages, concurrency) order, so it feeds both the
				// series and the NLLS fit — each deterministic cell measured
				// once instead of twice.
				samples := parMap(o, len(pageCounts)*len(concs), func(i int) model.GammaSample {
					return model.MeasureGamma(a, pageCounts[i/len(concs)], concs[i%len(concs)])
				})
				for pi, pg := range pageCounts {
					s := Series{Name: fmt.Sprintf("%d pages", pg)}
					for ci := range concs {
						s.Values = append(s.Values, samples[pi*len(concs)+ci].Gamma)
					}
					t.Series = append(t.Series, s)
				}
				// Best fit over all samples.
				p := model.Estimate(a)
				if _, err := p.FitGamma(samples); err != nil {
					panic(err)
				}
				fit := Series{Name: "best-fit"}
				for _, c := range concs {
					fit.Values = append(fit.Values, p.Gamma(c))
				}
				t.Series = append(t.Series, fit)
				tables = append(tables, t)
			}
			return tables
		},
	})

	register(&Experiment{
		ID:    "fig12",
		Title: "Model validation: predicted vs observed MPI_Bcast",
		Tables: func(o Options) []Table {
			var tables []Table
			for _, a := range o.archs(arch.KNL(), arch.Broadwell()) {
				sizes := sweepSizes(o.Quick, 4<<20)
				if !o.Quick {
					// The closed forms target the kernel-assisted regime.
					sizes = sizes[4:] // from 16K up
				}
				p := model.Estimate(a)
				if _, err := p.FitGamma(model.MeasureGammaCurve(a, []int{50}, gammaConcurrencies(a, true))); err != nil {
					panic(err)
				}
				pr := model.NewPredictor(p, a.DefaultProcs)
				t := Table{
					Title:   "Fig 12: predicted vs observed Bcast, " + a.Display,
					XHeader: "size",
					XLabels: sizeLabels(sizes),
					Notes:   []string{"1 = Direct Read, 2 = Direct Write, 3 = Scatter-Allgather; latency (us)"},
				}
				algos := []struct {
					name string
					f    func(sz int64) float64
				}{
					{"actual-1", func(sz int64) float64 {
						return measure.Collective(a, core.KindBcast, core.BcastDirectRead, sz, measure.Options{})
					}},
					{"model-1", pr.BcastDirectRead},
					{"actual-2", func(sz int64) float64 {
						return measure.Collective(a, core.KindBcast, core.BcastDirectWrite, sz, measure.Options{})
					}},
					{"model-2", pr.BcastDirectWrite},
					{"actual-3", func(sz int64) float64 {
						return measure.Collective(a, core.KindBcast, core.BcastScatterAllgather, sz, measure.Options{})
					}},
					{"model-3", pr.BcastScatterAllgather},
				}
				vals := parMap(o, len(algos)*len(sizes), func(i int) float64 {
					return algos[i/len(sizes)].f(sizes[i%len(sizes)])
				})
				for ai, al := range algos {
					t.Series = append(t.Series, Series{
						Name:   al.name,
						Values: vals[ai*len(sizes) : (ai+1)*len(sizes)],
					})
				}
				tables = append(tables, t)
			}
			return tables
		},
	})
}

// gammaConcurrencies picks the Fig 5 x-axis per architecture.
func gammaConcurrencies(a *arch.Profile, quick bool) []int {
	max := a.DefaultProcs - 1
	var out []int
	for c := 2; c < max; c *= 2 {
		out = append(out, c)
	}
	out = append(out, max)
	if b := a.SocketBoundary; b > 2 && b < max {
		// Sample around the socket boundary to expose the jump.
		out = append(out, b-1, b, b+1, b+2)
	}
	if quick {
		// Keep enough distinct samples for the (up to 4-parameter) fit:
		// the low end, the boundary neighbourhood, and the top.
		out = []int{2, 4, 8, max / 2, max}
		if b := a.SocketBoundary; b > 2 && b < max {
			out = append(out, b, b+2)
		}
	}
	dedup := map[int]bool{}
	var res []int
	for _, c := range out {
		if !dedup[c] && c >= 2 && c <= max {
			dedup[c] = true
			res = append(res, c)
		}
	}
	sort.Ints(res)
	return res
}
