package bench

import (
	"bytes"
	"fmt"
	"testing"

	"camc/internal/trace"
)

// TestParallelMatchesSequential is the parallel engine's core contract:
// for every registered experiment, the rendered tables under -j 8 are
// byte-identical to a sequential -j 1 run.
func TestParallelMatchesSequential(t *testing.T) {
	for _, e := range Registry() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			skipIfRaceExpensive(t, e.ID)
			var seq, par8 bytes.Buffer
			if err := e.Run(&seq, Options{Quick: true, Jobs: 1}); err != nil {
				t.Fatal(err)
			}
			if err := e.Run(&par8, Options{Quick: true, Jobs: 8}); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(seq.Bytes(), par8.Bytes()) {
				t.Errorf("%s: output differs between -j1 and -j8\n--- j1 ---\n%s\n--- j8 ---\n%s",
					e.ID, seq.String(), par8.String())
			}
		})
	}
}

// TestTraceSinkOrderDeterministic pins the serialized TraceSink
// contract: delivery order and labels are identical for any Jobs value,
// and every recorder is non-nil.
func TestTraceSinkOrderDeterministic(t *testing.T) {
	// The sink contract is a concurrency property, so it must stay
	// covered under the race detector — use the cheaper fig7 sweep there.
	id := "fig9"
	if raceDetectorOn {
		id = "fig7"
	}
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("%s not registered", id)
	}
	order := func(jobs int) []string {
		var got []string
		o := Options{Quick: true, Arch: "knl", Jobs: jobs,
			TraceSink: func(archName, algo string, size int64, rec *trace.Recorder) {
				if rec == nil {
					t.Fatalf("nil recorder for %s/%s/%d", archName, algo, size)
				}
				got = append(got, fmt.Sprintf("%s/%s/%d", archName, algo, size))
			}}
		var buf bytes.Buffer
		if err := e.Run(&buf, o); err != nil {
			t.Fatal(err)
		}
		return got
	}
	seq := order(1)
	if len(seq) == 0 {
		t.Fatal("sink never called")
	}
	par := order(8)
	if len(par) != len(seq) {
		t.Fatalf("sink call count: j8=%d j1=%d", len(par), len(seq))
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("sink order diverged at %d: j1=%s j8=%s", i, seq[i], par[i])
		}
	}
}
