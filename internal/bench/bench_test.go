package bench

import (
	"io"
	"strings"
	"testing"
)

var quick = Options{Quick: true}

// raceExpensive marks the experiments whose quick-mode sweeps are too
// slow to re-run under the race detector on the single-CPU CI hosts
// (each >=1s natively, ~10x that raced). They are skipped only in the
// -race pass; the plain test run keeps full coverage.
var raceExpensive = map[string]bool{
	"fig9": true, "fig10": true, "fig15": true, "fig16": true,
	"tab6": true, "tab7": true, "x5": true, "x10": true, "x11": true,
	"x12": true, "x13": true,
}

func skipIfRaceExpensive(t *testing.T, id string) {
	t.Helper()
	if raceDetectorOn && raceExpensive[id] {
		t.Skipf("%s is too expensive under the race detector; covered by the non-race pass", id)
	}
}

func tablesOf(t *testing.T, id string, o Options) []Table {
	t.Helper()
	skipIfRaceExpensive(t, id)
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("experiment %s not registered", id)
	}
	return e.Tables(o)
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
		"fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "fig18",
		"tab3", "tab4", "tab5", "tab6", "tab7",
		"x1", "x2", "x3", "x4", "x5", "x6", "x7", "x8", "x9", "x10", "x11", "x12", "x13", // extensions
	}
	for _, id := range want {
		if _, ok := ByID(id); !ok {
			t.Errorf("missing experiment %s", id)
		}
	}
	if got := len(Registry()); got != len(want) {
		t.Errorf("registry has %d experiments, want %d", got, len(want))
	}
}

func TestRegistryOrdering(t *testing.T) {
	reg := Registry()
	var ids []string
	for _, e := range reg {
		ids = append(ids, e.ID)
	}
	joined := strings.Join(ids, " ")
	if !strings.HasPrefix(joined, "fig1 fig2") || !strings.Contains(joined, "fig9 fig10") {
		t.Fatalf("bad ordering: %s", joined)
	}
}

func TestTablePrinting(t *testing.T) {
	tb := Table{
		Title:   "demo",
		XHeader: "size",
		XLabels: []string{"1K", "2K"},
		Series:  []Series{{Name: "a", Values: []float64{1.5, 2000000}}},
		Notes:   []string{"hello"},
	}
	var sb strings.Builder
	tb.Fprint(&sb)
	out := sb.String()
	for _, want := range []string{"demo", "1K", "2K", "1.50", "2e+06", "note: hello"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestTableGet(t *testing.T) {
	tb := Table{Series: []Series{{Name: "a", Values: []float64{7}}}}
	if v, ok := tb.Get("a", 0); !ok || v != 7 {
		t.Fatal("Get failed")
	}
	if _, ok := tb.Get("a", 5); ok {
		t.Fatal("out-of-range index resolved")
	}
	if _, ok := tb.Get("zzz", 0); ok {
		t.Fatal("unknown series resolved")
	}
}

func lastVal(t *testing.T, tb Table, series string) float64 {
	t.Helper()
	v, ok := tb.Get(series, len(tb.XLabels)-1)
	if !ok {
		t.Fatalf("series %q missing in %q (have %v)", series, tb.Title, seriesNames(tb))
	}
	return v
}

func firstVal(t *testing.T, tb Table, series string) float64 {
	t.Helper()
	v, ok := tb.Get(series, 0)
	if !ok {
		t.Fatalf("series %q missing in %q (have %v)", series, tb.Title, seriesNames(tb))
	}
	return v
}

func seriesNames(tb Table) []string {
	var out []string
	for _, s := range tb.Series {
		out = append(out, s.Name)
	}
	return out
}

func TestFig1SmallJobsDominate(t *testing.T) {
	tb := tablesOf(t, "fig1", quick)[0]
	if len(tb.Series) != 2 {
		t.Fatalf("want 2 series, got %v", seriesNames(tb))
	}
	if firstVal(t, tb, "jobs (x1000)") <= lastVal(t, tb, "jobs (x1000)") {
		t.Fatal("single-node jobs do not dominate the tail")
	}
}

func TestFig2SourceProcessIsTheBottleneck(t *testing.T) {
	tabs := tablesOf(t, "fig2", quick)
	if len(tabs) != 3 {
		t.Fatalf("want 3 panels, got %d", len(tabs))
	}
	pairs, same, diff := tabs[0], tabs[1], tabs[2]
	reader := pairs.Series[len(pairs.Series)-1].Name // max concurrency
	// One-to-all inflates far beyond disjoint pairs at max concurrency.
	if lastVal(t, same, reader) < 3*lastVal(t, pairs, reader) {
		t.Errorf("one-to-all %s not clearly above disjoint pairs", reader)
	}
	// Same vs different buffers: identical (the mm lock is per process).
	for xi := range same.XLabels {
		a, _ := same.Get(reader, xi)
		b, _ := diff.Get(reader, xi)
		if relDiff(a, b) > 0.01 {
			t.Errorf("same/diff buffer mismatch at %s: %g vs %g", same.XLabels[xi], a, b)
		}
	}
}

func relDiff(a, b float64) float64 {
	if a == b {
		return 0
	}
	m := a
	if b > m {
		m = b
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	return d / m
}

func TestFig3ContentionOnAllArchitectures(t *testing.T) {
	for _, tb := range tablesOf(t, "fig3", quick) {
		one := lastVal(t, tb, "1 readers")
		crowd := lastVal(t, tb, tb.Series[len(tb.Series)-1].Name)
		if crowd < 3*one {
			t.Errorf("%s: full concurrency %g not clearly above single reader %g", tb.Title, crowd, one)
		}
	}
}

func TestFig4LockGrowsPinDoesNot(t *testing.T) {
	tabs := tablesOf(t, "fig4", quick)
	noCont, highCont := tabs[0], tabs[2]
	li := len(noCont.XLabels) - 1
	l0, _ := noCont.Get("acquire-locks", li)
	l1, _ := highCont.Get("acquire-locks", li)
	if l1 < 5*l0 {
		t.Errorf("lock time did not inflate: %g -> %g", l0, l1)
	}
	p0, _ := noCont.Get("pin-pages", li)
	p1, _ := highCont.Get("pin-pages", li)
	if relDiff(p0, p1) > 0.01 {
		t.Errorf("pin time changed with contention: %g -> %g", p0, p1)
	}
}

func TestFig5GammaShapes(t *testing.T) {
	for _, tb := range tablesOf(t, "fig5", quick) {
		// Page-count independence: the three page series agree.
		for xi := range tb.XLabels {
			a, _ := tb.Get("10 pages", xi)
			b, _ := tb.Get("100 pages", xi)
			if relDiff(a, b) > 0.05 {
				t.Errorf("%s: gamma varies with pages at c=%s: %g vs %g", tb.Title, tb.XLabels[xi], a, b)
			}
		}
		// Fit tracks the measurements at the top of the range.
		fit := lastVal(t, tb, "best-fit")
		meas := lastVal(t, tb, "50 pages")
		if relDiff(fit, meas) > 0.2 {
			t.Errorf("%s: fit %g far from measured %g", tb.Title, fit, meas)
		}
	}
}

func TestFig6SweetSpots(t *testing.T) {
	tabs := tablesOf(t, "fig6", Options{Arch: "knl"})
	tb := tabs[0]
	li := len(tb.XLabels) - 1 // 4M
	r8, _ := tb.Get("8 readers", li)
	r64, _ := tb.Get("64 readers", li)
	if r8 < 2.5 {
		t.Errorf("KNL 8-reader relative throughput %g at 4M, want > 2.5", r8)
	}
	if r64 >= 1 {
		t.Errorf("KNL 64-reader relative throughput %g at 4M, want < 1 (parallel reads must lose)", r64)
	}
}

func TestFig7ThrottleSweetSpotKNL(t *testing.T) {
	tb := tablesOf(t, "fig7", Options{Arch: "knl", Quick: true})[0]
	li := len(tb.XLabels) - 1 // 4M
	t8 := lastVal(t, tb, "throttle=8")
	par := lastVal(t, tb, "parallel-read")
	seq := lastVal(t, tb, "sequential-write")
	if !(t8 < par && t8 < seq) {
		t.Fatalf("throttle=8 (%g) not best at 4M: parallel %g sequential %g", t8, par, seq)
	}
	if par <= seq {
		t.Fatalf("parallel read (%g) must be worst at 4M (sequential %g)", par, seq)
	}
	// Small sizes: parallel read beats sequential write.
	p0, _ := tb.Get("parallel-read", 0)
	s0, _ := tb.Get("sequential-write", 0)
	if p0 >= s0 {
		t.Fatalf("at 4K parallel read (%g) should beat sequential write (%g)", p0, s0)
	}
	_ = li
}

func TestFig8GatherMirrorsScatter(t *testing.T) {
	tb := tablesOf(t, "fig8", Options{Arch: "power8", Quick: true})[0]
	t10 := lastVal(t, tb, "throttle=10")
	t2 := lastVal(t, tb, "throttle=2")
	par := lastVal(t, tb, "parallel-write")
	if !(t10 < t2 && t10 < par) {
		t.Fatalf("Power8 throttle=10 (%g) not best: throttle=2 %g, parallel %g", t10, t2, par)
	}
}

func TestFig9NativeCollectiveWins(t *testing.T) {
	for _, tb := range tablesOf(t, "fig9", quick) {
		// Small/medium (4K): the native collective beats the pt2pt
		// design (no per-message RTS/CTS or matching) and clearly beats
		// the two-copy SHMEM design.
		coll0, _ := tb.Get("CMA-coll", 0)
		pt2pt0, _ := tb.Get("CMA-pt2pt", 0)
		shmem0, _ := tb.Get("SHMEM", 0)
		if coll0 >= pt2pt0 {
			t.Errorf("%s at 4K: CMA-coll %g not below pt2pt %g", tb.Title, coll0, pt2pt0)
		}
		if coll0 >= 0.8*shmem0 {
			t.Errorf("%s at 4K: CMA-coll %g not clearly below shmem %g", tb.Title, coll0, shmem0)
		}
		// Large (1M): coll and pt2pt converge (<= 15% apart), both beat SHMEM.
		collL := lastVal(t, tb, "CMA-coll")
		pt2ptL := lastVal(t, tb, "CMA-pt2pt")
		shmemL := lastVal(t, tb, "SHMEM")
		if relDiff(collL, pt2ptL) > 0.15 {
			t.Errorf("%s at 1M: coll %g and pt2pt %g should converge", tb.Title, collL, pt2ptL)
		}
		if collL >= shmemL {
			t.Errorf("%s at 1M: coll %g not below shmem %g", tb.Title, collL, shmemL)
		}
	}
}

func TestFig10SocketAwareRings(t *testing.T) {
	tb := tablesOf(t, "fig10", Options{Arch: "broadwell", Quick: true})[0]
	n1 := lastVal(t, tb, "ring-neighbor-1")
	far := 0.0
	for _, s := range tb.Series {
		if strings.HasPrefix(s.Name, "ring-neighbor-") && s.Name != "ring-neighbor-1" {
			far = s.Values[len(s.Values)-1]
		}
	}
	if far == 0 {
		t.Fatal("no far-stride neighbor series on Broadwell")
	}
	if n1 >= far {
		t.Fatalf("neighbor-1 (%g) should beat the inter-socket stride (%g)", n1, far)
	}
	// Bruck loses at 1M (extra copies).
	bruck := lastVal(t, tb, "bruck")
	ring := lastVal(t, tb, "ring-source-read")
	if bruck <= ring {
		t.Fatalf("bruck (%g) should lose to ring-source (%g) at 1M", bruck, ring)
	}
}

func TestFig11BcastShapes(t *testing.T) {
	tb := tablesOf(t, "fig11", Options{Arch: "knl", Quick: true})[0]
	li := len(tb.XLabels) - 1
	sa, _ := tb.Get("scatter-allgather", li)
	kn := lastVal(t, tb, "knomial-read-9")
	dr := lastVal(t, tb, "parallel-read")
	dw := lastVal(t, tb, "sequential-write")
	if sa >= kn {
		t.Fatalf("scatter-allgather (%g) should win at 4M over knomial (%g)", sa, kn)
	}
	if kn >= dr || kn >= dw {
		t.Fatalf("knomial (%g) should beat direct read (%g) and write (%g)", kn, dr, dw)
	}
}

func TestFig12ModelTracksSim(t *testing.T) {
	for _, tb := range tablesOf(t, "fig12", Options{Arch: "knl", Quick: true}) {
		for _, pair := range [][2]string{{"actual-1", "model-1"}, {"actual-2", "model-2"}, {"actual-3", "model-3"}} {
			// Validate at the largest size (the kernel-assisted regime).
			a := lastVal(t, tb, pair[0])
			m := lastVal(t, tb, pair[1])
			if relDiff(a, m) > 0.3 {
				t.Errorf("%s: %s=%g vs %s=%g (>30%%)", tb.Title, pair[0], a, pair[1], m)
			}
		}
	}
}

func TestFig13ProposedWinsScatter(t *testing.T) {
	for _, archName := range []string{"knl", "power8"} {
		tb := tablesOf(t, "fig13", Options{Arch: archName, Quick: true})[0]
		prop := lastVal(t, tb, "proposed")
		for _, s := range tb.Series {
			if s.Name == "proposed" {
				continue
			}
			if v := s.Values[len(s.Values)-1]; v < prop {
				t.Errorf("%s: %s (%g) beats proposed (%g) at the largest size", archName, s.Name, v, prop)
			}
		}
	}
}

func TestFig15AlltoallLargeConverges(t *testing.T) {
	tb := tablesOf(t, "fig15", Options{Arch: "knl", Quick: true})[0]
	prop := lastVal(t, tb, "proposed")
	mv := lastVal(t, tb, "mvapich2")
	// Large alltoall: data movement dominates; improvement is modest
	// (5-15% per the paper) but never negative.
	if prop > 1.01*mv {
		t.Fatalf("proposed (%g) worse than mvapich2 (%g) at 1M", prop, mv)
	}
	if mv > 1.6*prop {
		t.Fatalf("large-message alltoall gap suspiciously large: %g vs %g", mv, prop)
	}
}

func TestFig17TwoLevelGatherScaling(t *testing.T) {
	tabs := tablesOf(t, "fig17", quick)
	if len(tabs) < 2 {
		t.Fatalf("want >= 2 node counts, got %d", len(tabs))
	}
	// The hierarchical advantage peaks at small/medium sizes (the flat
	// design pays a per-message network cost scaling with total procs);
	// compare the best gap across the sweep, as Table VII-style maxima do.
	gap := func(tb Table) float64 {
		best := 0.0
		for xi := range tb.XLabels {
			prop, _ := tb.Get("proposed-two-level", xi)
			flat, _ := tb.Get("flat-pt2pt (mvapich2-like)", xi)
			if g := flat / prop; g > best {
				best = g
			}
		}
		return best
	}
	g2 := gap(tabs[0])
	g4 := gap(tabs[1])
	if g2 <= 1 {
		t.Fatalf("two-level not winning at 2 nodes: gap %g", g2)
	}
	if g4 <= g2 {
		t.Fatalf("gap should grow with node count: 2 nodes %g, 4 nodes %g", g2, g4)
	}
}

func TestTab3Ordering(t *testing.T) {
	for _, tb := range tablesOf(t, "tab3", quick) {
		v := tb.Series[0].Values
		for i := 1; i < len(v); i++ {
			if v[i] <= v[i-1] {
				t.Errorf("%s: T%d (%g) <= T%d (%g)", tb.Title, i+1, v[i], i, v[i-1])
			}
		}
	}
}

func TestTab4MatchesPaper(t *testing.T) {
	tb := tablesOf(t, "tab4", quick)[0]
	wantAlpha := map[string]float64{"knl": 1.43, "broadwell": 0.98, "power8": 0.75}
	for _, s := range tb.Series {
		if got := s.Values[0]; relDiff(got, wantAlpha[s.Name]) > 0.02 {
			t.Errorf("%s alpha = %g, want %g", s.Name, got, wantAlpha[s.Name])
		}
	}
}

func TestTab6SpeedupThresholds(t *testing.T) {
	tabs := speedupTables(Options{Quick: true, Arch: "knl"}, false)
	tb := tabs[0]
	// Scatter/Gather: multi-x improvements; Allgather/Alltoall >= ~1.4x;
	// Bcast: the contention-unaware openmpi design loses by a lot.
	for xi, coll := range tb.XLabels {
		for _, s := range tb.Series {
			v := s.Values[xi]
			switch coll {
			case "scatter", "gather":
				if v < 2.5 {
					t.Errorf("%s %s speedup %g, want >= 2.5", coll, s.Name, v)
				}
			case "allgather", "alltoall":
				if v < 1.3 {
					t.Errorf("%s %s speedup %g, want >= 1.3", coll, s.Name, v)
				}
			}
		}
	}
	if v, _ := tb.Get("openmpi", 0); v < 5 { // bcast row
		t.Errorf("openmpi bcast speedup %g, want >= 5 (contention-unaware prior art)", v)
	}
}

func TestTab7LargestSizeStillWins(t *testing.T) {
	tabs := speedupTables(Options{Quick: true, Arch: "broadwell"}, true)
	for _, s := range tabs[0].Series {
		for xi, v := range s.Values {
			if v < 0.95 {
				t.Errorf("largest-size speedup vs %s for %s = %g (< ~1)", s.Name, tabs[0].XLabels[xi], v)
			}
		}
	}
}

func TestX1MechanismSpectrum(t *testing.T) {
	tabs := tablesOf(t, "x1", quick)
	throttled, naive := tabs[0], tabs[1]
	li := len(throttled.XLabels) - 1
	// CMA/KNEM/LiMIC within a few percent of each other (same data path).
	cma, _ := throttled.Get("cma", li)
	knem, _ := throttled.Get("knem", li)
	if relDiff(cma, knem) > 0.05 {
		t.Errorf("cma %g vs knem %g should be close under throttling", cma, knem)
	}
	// XPMEM rescues the naive design (no page locking).
	nCMA, _ := naive.Get("cma", li)
	nXP, _ := naive.Get("xpmem", li)
	if nXP > nCMA/5 {
		t.Errorf("naive gather: xpmem %g not clearly below cma %g", nXP, nCMA)
	}
}

func TestX2SkewDynamics(t *testing.T) {
	tabs := tablesOf(t, "x2", quick)
	relief, robust := tabs[0], tabs[1]
	// Direct read collapses with spread arrivals.
	dr0 := firstVal(t, relief, "direct-read")
	drSkew := lastVal(t, relief, "direct-read")
	if drSkew > dr0/5 {
		t.Errorf("direct-read under 10ms skew %g not far below %g", drSkew, dr0)
	}
	// Rings are robust: within 1%.
	r0 := firstVal(t, robust, "ring-source-read")
	rS := lastVal(t, robust, "ring-source-read")
	if relDiff(r0, rS) > 0.01 {
		t.Errorf("ring-source moved under skew: %g vs %g", r0, rS)
	}
}

func TestX3ReduceDesigns(t *testing.T) {
	tb := tablesOf(t, "x3", quick)[0]
	deep := lastVal(t, tb, "knomial-2")
	wide := lastVal(t, tb, "knomial-9")
	naive := lastVal(t, tb, "parallel-write")
	if deep >= wide {
		t.Errorf("deep tree (%g) should beat wide tree (%g) for reduce", deep, wide)
	}
	if naive < 3*deep {
		t.Errorf("parallel-write (%g) should lose badly to the tree (%g)", naive, deep)
	}
}

func TestX4PipeliningHelpsAtScale(t *testing.T) {
	tb := tablesOf(t, "x4", quick)[0]
	plain := lastVal(t, tb, "two-level")
	piped := lastVal(t, tb, "pipelined-4")
	if piped >= plain {
		t.Errorf("pipelined-4 (%g) not below plain two-level (%g) at 1M", piped, plain)
	}
}

func TestX6ModelAudit(t *testing.T) {
	tb := tablesOf(t, "x6", quick)[0]
	// Every closed form stays within 20% of the simulator at 1M (the
	// paper's formulas are within ~5%; the extension formulas are looser).
	li := len(tb.XLabels) - 1
	_ = li
	for _, s := range tb.Series {
		for xi, v := range s.Values {
			if v > 20 {
				t.Errorf("%s at %s: model error %.1f%% > 20%%", tb.XLabels[xi], s.Name, v)
			}
		}
	}
}

func TestX7EmergentVsCalibrated(t *testing.T) {
	tb := tablesOf(t, "x7", quick)[0]
	li := len(tb.XLabels) - 1 // 63 readers
	em, _ := tb.Get("emergent-fifo", li)
	cal, _ := tb.Get("calibrated-gamma", li)
	lin, _ := tb.Get("linear-reference", li)
	if em > 1.5*lin {
		t.Errorf("emergent inflation %.1f should stay near-linear (<= 1.5x %g)", em, lin)
	}
	if cal < 3*em {
		t.Errorf("calibrated gamma %.0f should dwarf emergent %.1f", cal, em)
	}
}

func TestEveryExperimentRunsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("quick full-registry pass still takes tens of seconds")
	}
	for _, e := range Registry() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			skipIfRaceExpensive(t, e.ID)
			if err := e.Run(io.Discard, quick); err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
		})
	}
}

func TestFprintPlot(t *testing.T) {
	tb := Table{
		Title:   "plot-demo",
		XHeader: "size",
		XLabels: []string{"1K", "4K", "16K"},
		Series: []Series{
			{Name: "fast", Values: []float64{10, 40, 160}},
			{Name: "slow", Values: []float64{100, 400, 1600}},
		},
	}
	var sb strings.Builder
	tb.FprintPlot(&sb, 40, 10)
	out := sb.String()
	for _, want := range []string{"plot-demo", "legend:", "*=fast", "o=slow", "1K", "16K", "+---"} {
		if !strings.Contains(out, want) {
			t.Errorf("plot missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Errorf("plot has no data glyphs:\n%s", out)
	}
}

func TestFprintPlotEmptyAndDegenerate(t *testing.T) {
	var sb strings.Builder
	(&Table{Title: "empty"}).FprintPlot(&sb, 20, 5)
	if !strings.Contains(sb.String(), "no positive data") {
		t.Fatal("empty plot not handled")
	}
	sb.Reset()
	tb := Table{Title: "flat", XLabels: []string{"a"}, Series: []Series{{Name: "s", Values: []float64{5}}}}
	tb.FprintPlot(&sb, 20, 5) // single point, hi==lo
	if !strings.Contains(sb.String(), "legend:") {
		t.Fatal("degenerate plot failed")
	}
}

func TestFprintCSV(t *testing.T) {
	tb := Table{
		Title:   "csv-demo",
		XHeader: "size,comma",
		XLabels: []string{"1K"},
		Series:  []Series{{Name: `quo"te`, Values: []float64{2.5}}},
	}
	var sb strings.Builder
	tb.FprintCSV(&sb)
	out := sb.String()
	for _, want := range []string{`"size,comma"`, `"quo""te"`, "1K,2.5"} {
		if !strings.Contains(out, want) {
			t.Errorf("csv missing %q:\n%s", want, out)
		}
	}
}

func TestRunFormatVariants(t *testing.T) {
	e, _ := ByID("tab5")
	for _, f := range []Format{FormatTable, FormatPlot, FormatCSV} {
		var sb strings.Builder
		if err := e.RunFormat(&sb, quick, f); err != nil {
			t.Fatalf("format %d: %v", f, err)
		}
		if !strings.Contains(sb.String(), "tab5") {
			t.Fatalf("format %d output missing header", f)
		}
	}
}
