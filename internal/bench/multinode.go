package bench

import (
	"fmt"

	"camc/internal/arch"
	"camc/internal/cluster"
	"camc/internal/core"
)

// Fig 17: multi-node MPI_Gather scalability on 2/4/8 KNL nodes (128/256/
// 512 processes). The proposed design is the two-level gather whose
// intra-node step uses the contention-aware throttled writes; the
// comparators run the flat single-level gathers large messages get in
// stock libraries.

// multinodeGather measures one (design, nodes, size) point.
func multinodeGather(a *arch.Profile, nodes, ppn int, eta int64, run func(r *cluster.Rank, eta int64)) float64 {
	cl := cluster.New(cluster.Config{Arch: a, NumNodes: nodes, PPN: ppn})
	done, err := cl.Run(func(r *cluster.Rank) { run(r, eta) })
	if err != nil {
		panic(err)
	}
	return done
}

func init() {
	register(&Experiment{
		ID:    "fig17",
		Title: "Multi-node MPI_Gather latency on KNL nodes",
		Tables: func(o Options) []Table {
			a := arch.KNL()
			ppn := 64
			sizes := sweepSizes(o.Quick, 1<<20)
			nodeCounts := []int{2, 4, 8}
			if o.Quick {
				nodeCounts = []int{2, 4}
			}
			designs := []struct {
				name string
				run  func(r *cluster.Rank, eta int64)
			}{
				{"proposed-two-level", cluster.GatherTwoLevel(core.TunedGather)},
				{"flat-pt2pt (mvapich2-like)", cluster.GatherFlat(core.TransportPt2pt)},
				{"flat-shm (intelmpi-like)", cluster.GatherFlat(core.TransportShm)},
				{"two-level-shm (openmpi-like)", cluster.GatherTwoLevel(core.GatherBinomial(core.TransportShm))},
			}
			scatterDesigns := []struct {
				name string
				run  func(r *cluster.Rank, eta int64)
			}{
				{"proposed-two-level", cluster.ScatterTwoLevel(core.TunedScatter)},
				{"flat-pt2pt (mvapich2-like)", cluster.ScatterFlat(core.TransportPt2pt)},
				{"flat-shm (intelmpi-like)", cluster.ScatterFlat(core.TransportShm)},
			}
			// One flat cell grid: the gather panels followed by the
			// companion scatter panel at the largest node count, so every
			// cluster simulation of the figure shares the worker pool.
			last := nodeCounts[len(nodeCounts)-1]
			gatherN := len(nodeCounts) * len(designs) * len(sizes)
			vals := parMap(o, gatherN+len(scatterDesigns)*len(sizes), func(i int) float64 {
				if i < gatherN {
					nodes := nodeCounts[i/(len(designs)*len(sizes))]
					d := designs[(i/len(sizes))%len(designs)]
					return multinodeGather(a, nodes, ppn, sizes[i%len(sizes)], d.run)
				}
				j := i - gatherN
				return multinodeGather(a, last, ppn, sizes[j%len(sizes)], scatterDesigns[j/len(sizes)].run)
			})
			var tables []Table
			for ni, nodes := range nodeCounts {
				t := Table{
					Title:   fmt.Sprintf("Fig 17: Gather on %d KNL nodes (%d processes)", nodes, nodes*ppn),
					XHeader: "size",
					XLabels: sizeLabels(sizes),
					Notes:   []string{"latency (us); per-rank message size on the x axis"},
				}
				for di, d := range designs {
					at := (ni*len(designs) + di) * len(sizes)
					t.Series = append(t.Series, Series{Name: d.name, Values: vals[at : at+len(sizes)]})
				}
				tables = append(tables, t)
			}
			// §VII-G: "Similar performance improvements were observed
			// with MPI_Scatter" — the root-to-all panel at the largest
			// node count.
			ts := Table{
				Title:   fmt.Sprintf("Fig 17 (companion): Scatter on %d KNL nodes (%d processes)", last, last*ppn),
				XHeader: "size",
				XLabels: sizeLabels(sizes),
				Notes:   []string{"the same two-level advantage in the root-to-all direction"},
			}
			for di, d := range scatterDesigns {
				at := gatherN + di*len(sizes)
				ts.Series = append(ts.Series, Series{Name: d.name, Values: vals[at : at+len(sizes)]})
			}
			tables = append(tables, ts)
			return tables
		},
	})
}
