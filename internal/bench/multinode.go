package bench

import (
	"fmt"

	"camc/internal/arch"
	"camc/internal/cluster"
	"camc/internal/core"
)

// Fig 17: multi-node MPI_Gather scalability on 2/4/8 KNL nodes (128/256/
// 512 processes). The proposed design is the two-level gather whose
// intra-node step uses the contention-aware throttled writes; the
// comparators run the flat single-level gathers large messages get in
// stock libraries.

// multinodeGather measures one (design, nodes, size) point.
func multinodeGather(a *arch.Profile, nodes, ppn int, eta int64, run func(r *cluster.Rank, eta int64)) float64 {
	cl := cluster.New(cluster.Config{Arch: a, NumNodes: nodes, PPN: ppn})
	done, err := cl.Run(func(r *cluster.Rank) { run(r, eta) })
	if err != nil {
		panic(err)
	}
	return done
}

func init() {
	register(&Experiment{
		ID:    "fig17",
		Title: "Multi-node MPI_Gather latency on KNL nodes",
		Tables: func(o Options) []Table {
			a := arch.KNL()
			ppn := 64
			sizes := sweepSizes(o.Quick, 1<<20)
			nodeCounts := []int{2, 4, 8}
			if o.Quick {
				nodeCounts = []int{2, 4}
			}
			designs := []struct {
				name string
				run  func(r *cluster.Rank, eta int64)
			}{
				{"proposed-two-level", cluster.GatherTwoLevel(core.TunedGather)},
				{"flat-pt2pt (mvapich2-like)", cluster.GatherFlat(core.TransportPt2pt)},
				{"flat-shm (intelmpi-like)", cluster.GatherFlat(core.TransportShm)},
				{"two-level-shm (openmpi-like)", cluster.GatherTwoLevel(core.GatherBinomial(core.TransportShm))},
			}
			scatterDesigns := []struct {
				name string
				run  func(r *cluster.Rank, eta int64)
			}{
				{"proposed-two-level", cluster.ScatterTwoLevel(core.TunedScatter)},
				{"flat-pt2pt (mvapich2-like)", cluster.ScatterFlat(core.TransportPt2pt)},
				{"flat-shm (intelmpi-like)", cluster.ScatterFlat(core.TransportShm)},
			}
			var tables []Table
			for _, nodes := range nodeCounts {
				t := Table{
					Title:   fmt.Sprintf("Fig 17: Gather on %d KNL nodes (%d processes)", nodes, nodes*ppn),
					XHeader: "size",
					XLabels: sizeLabels(sizes),
					Notes:   []string{"latency (us); per-rank message size on the x axis"},
				}
				for _, d := range designs {
					s := Series{Name: d.name}
					for _, sz := range sizes {
						s.Values = append(s.Values, multinodeGather(a, nodes, ppn, sz, d.run))
					}
					t.Series = append(t.Series, s)
				}
				tables = append(tables, t)
			}
			// §VII-G: "Similar performance improvements were observed
			// with MPI_Scatter" — the root-to-all panel at the largest
			// node count.
			last := nodeCounts[len(nodeCounts)-1]
			ts := Table{
				Title:   fmt.Sprintf("Fig 17 (companion): Scatter on %d KNL nodes (%d processes)", last, last*ppn),
				XHeader: "size",
				XLabels: sizeLabels(sizes),
				Notes:   []string{"the same two-level advantage in the root-to-all direction"},
			}
			for _, d := range scatterDesigns {
				s := Series{Name: d.name}
				for _, sz := range sizes {
					s.Values = append(s.Values, multinodeGather(a, last, ppn, sz, d.run))
				}
				ts.Series = append(ts.Series, s)
			}
			tables = append(tables, ts)
			return tables
		},
	})
}
