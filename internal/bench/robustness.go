package bench

import (
	"fmt"

	"camc/internal/arch"
	"camc/internal/core"
	"camc/internal/fault"
	"camc/internal/measure"
)

// x8: the robustness experiment. Every cell runs one collective with
// real data movement under a deterministic fault scenario, verifies the
// payload landed exactly (a failed verification panics the sweep — the
// whole point is that degradation must be graceful), and reports the
// latency cost of surviving: retries with backoff for transient
// syscall failures, resumed short completions, inflated lock phases,
// stalled shm cells, straggler skew, and — when the retry budget
// against a peer is exhausted — the per-peer fallback from the kernel
// assist to the two-copy path.

// robustScenario is one column of the x8 tables. A nil cfg is the
// fault-free baseline.
type robustScenario struct {
	name string
	cfg  *fault.Config
}

func robustScenarios(o Options) []robustScenario {
	mk := func(name, spec string) robustScenario {
		cfg, err := fault.Parse(spec)
		if err != nil {
			panic(fmt.Sprintf("bench: x8 scenario %s: %v", name, err))
		}
		return robustScenario{name: name, cfg: &cfg}
	}
	scens := []robustScenario{{name: "fault-free"}}
	if !o.Quick {
		// One scenario per fault class, isolating its latency signature.
		scens = append(scens,
			mk("partials", "partial=0.4"),
			mk("eagain", "eagain=0.5"),
			mk("lock-spikes", "lockspike=0.3"),
			mk("shm-stalls", "shmstall=0.3"),
			mk("stragglers", "straggler=0.3,skew=50"),
			mk("light", "light"),
			mk("moderate", "moderate"),
		)
	}
	scens = append(scens, mk("heavy", "heavy"))
	if o.Fault != nil && o.Fault.Active() {
		// x8 runs without a liveness board, so a kill plan would turn into
		// a simulator deadlock here; the kill class applies to x9 (as the
		// -faults flag documents). Strip it and keep whatever else the
		// custom scenario injects — a kill-only plan contributes no column.
		cfg := *o.Fault
		cfg.KillProb = 0
		if cfg.Active() {
			scens = append(scens, robustScenario{name: "custom", cfg: &cfg})
		}
	}
	return scens
}

// robustCollectives is the collective matrix: one representative
// contention-aware algorithm per kind, covering the CMA read path
// (scatter, bcast, allgather), the CMA write path (gather), the
// symmetric pairwise exchange (alltoall) and the pt2pt rendezvous
// machinery those exercise.
func robustCollectives(o Options) []struct {
	name string
	kind core.Kind
	spec string
} {
	all := []struct {
		name string
		kind core.Kind
		spec string
	}{
		{"scatter/throttled-4", core.KindScatter, "throttled:4"},
		{"gather/throttled-4", core.KindGather, "throttled:4"},
		{"bcast/knomial-read-4", core.KindBcast, "knomial-read:4"},
		{"allgather/ring-src-read", core.KindAllgather, "ring-source-read"},
		{"alltoall/pairwise", core.KindAlltoall, "pairwise"},
	}
	if o.Quick {
		return all[:3]
	}
	return all
}

func init() {
	register(&Experiment{
		ID:    "x8",
		Title: "[extension] Robustness: graceful degradation under injected kernel faults",
		Tables: func(o Options) []Table {
			a := arch.Broadwell()
			if o.Arch != "" {
				a = o.archs(arch.Broadwell())[0]
			}
			// 256 KiB per rank = 64 pages = 4 contention chunks per
			// transfer, so partial-completion injection (which fires
			// between chunks) has room to act; 16 KiB quick cells keep the
			// other fault classes exercised cheaply.
			const procs = 8
			count := int64(256 << 10)
			if o.Quick {
				count = 16 << 10
			}
			scens := robustScenarios(o)
			colls := robustCollectives(o)

			type cell struct {
				lat float64
				st  fault.Stats
			}
			cells := parMap(o, len(colls)*len(scens), func(i int) cell {
				cl, sc := colls[i/len(scens)], scens[i%len(scens)]
				al, err := core.LookupAlgorithm(cl.kind, cl.spec)
				if err != nil {
					panic(err)
				}
				// Each cell copies the scenario config into its own run,
				// so parallel cells hold independent plans and the table
				// is identical for any Jobs value.
				lat, st, err := measure.CollectiveChecked(a, cl.kind, al.Run, count,
					measure.Options{Procs: procs, Fault: sc.cfg})
				if err != nil {
					panic(fmt.Sprintf("bench: x8 %s under %s: %v", cl.name, sc.name, err))
				}
				return cell{lat, st}
			})

			lat := Table{
				Title:   fmt.Sprintf("Latency under injected faults, %s, %d ranks, %s per rank (us)", a.Display, procs, sizeLabel(count)),
				XHeader: "collective",
				Notes: []string{
					"every cell moves real payload and verifies every byte landed per MPI",
					"semantics: faults change when bytes arrive, never which bytes",
				},
			}
			slow := Table{
				Title:   "Slowdown vs the fault-free baseline (x)",
				XHeader: "collective",
				Notes: []string{
					"the price of surviving: retries + backoff, resumed short completions,",
					"inflated lock phases, stalled cells, straggler skew, two-copy fallback",
				},
			}
			for si, sc := range scens {
				ls := Series{Name: sc.name}
				ss := Series{Name: sc.name}
				for ci := range colls {
					c := cells[ci*len(scens)+si]
					base := cells[ci*len(scens)].lat // scenario 0 = fault-free
					ls.Values = append(ls.Values, c.lat)
					ss.Values = append(ss.Values, c.lat/base)
				}
				lat.Series = append(lat.Series, ls)
				if si > 0 {
					slow.Series = append(slow.Series, ss)
				}
			}
			for _, cl := range colls {
				lat.XLabels = append(lat.XLabels, cl.name)
				slow.XLabels = append(slow.XLabels, cl.name)
			}

			// Injection / reaction accounting, summed over the collective
			// matrix per scenario: how much was thrown at the stack and
			// what the stack did to survive it.
			stats := Table{
				Title:   "Injections and degraded-mode reactions (sum over collectives)",
				XHeader: "scenario",
				Notes: []string{
					"fallbacks = (rank, peer) pairs that abandoned the kernel assist;",
					"bounce-KiB = payload finished over the degraded two-copy path",
				},
			}
			cols := []struct {
				name string
				get  func(s fault.Stats) float64
			}{
				{"eagain", func(s fault.Stats) float64 { return float64(s.Transients) }},
				{"partial", func(s fault.Stats) float64 { return float64(s.Partials) }},
				{"lockspike", func(s fault.Stats) float64 { return float64(s.LockSpikes) }},
				{"shmstall", func(s fault.Stats) float64 { return float64(s.ShmStalls) }},
				{"straggle", func(s fault.Stats) float64 { return float64(s.Stragglers) }},
				{"retries", func(s fault.Stats) float64 { return float64(s.Retries) }},
				{"backoff-us", func(s fault.Stats) float64 { return s.BackoffTime }},
				{"fallbacks", func(s fault.Stats) float64 { return float64(s.Fallbacks) }},
				{"bounce-KiB", func(s fault.Stats) float64 { return float64(s.BounceBytes) / 1024 }},
			}
			for _, c := range cols {
				stats.Series = append(stats.Series, Series{Name: c.name})
			}
			for si, sc := range scens {
				stats.XLabels = append(stats.XLabels, sc.name)
				var sum fault.Stats
				for ci := range colls {
					st := cells[ci*len(scens)+si].st
					sum.Transients += st.Transients
					sum.Partials += st.Partials
					sum.LockSpikes += st.LockSpikes
					sum.ShmStalls += st.ShmStalls
					sum.Stragglers += st.Stragglers
					sum.Retries += st.Retries
					sum.BackoffTime += st.BackoffTime
					sum.Fallbacks += st.Fallbacks
					sum.BounceBytes += st.BounceBytes
				}
				for i, c := range cols {
					stats.Series[i].Values = append(stats.Series[i].Values, c.get(sum))
				}
			}

			return []Table{lat, slow, stats}
		},
	})
}
