//go:build race

package bench

// See race_off_test.go.
const raceDetectorOn = true
