package par

import (
	"sync/atomic"
	"testing"
)

func TestMapOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		got := Map(workers, 50, func(i int) int { return i * i })
		if len(got) != 50 {
			t.Fatalf("workers=%d: len=%d", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: got[%d]=%d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestDoRunsEveryCellOnce(t *testing.T) {
	var hits [257]atomic.Int32
	Do(8, len(hits), func(i int) { hits[i].Add(1) })
	for i := range hits {
		if n := hits[i].Load(); n != 1 {
			t.Fatalf("cell %d ran %d times", i, n)
		}
	}
}

func TestDoEmpty(t *testing.T) {
	Do(4, 0, func(int) { t.Fatal("cell ran") })
	if got := Map(4, 0, func(int) int { return 1 }); len(got) != 0 {
		t.Fatalf("len=%d", len(got))
	}
}

// TestDoPanicLowestIndex checks the deterministic panic contract: with
// several failing cells, the re-raised panic is the lowest-index one
// regardless of worker count, and non-panicking cells still complete.
func TestDoPanicLowestIndex(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		var ran [64]atomic.Int32
		got := func() (r any) {
			defer func() { r = recover() }()
			Do(workers, len(ran), func(i int) {
				ran[i].Add(1)
				if i == 7 || i == 9 || i == 63 {
					panic(i)
				}
			})
			return nil
		}()
		if got != 7 {
			t.Fatalf("workers=%d: recovered %v, want 7", workers, got)
		}
		// Sequential (workers<=1) stops at the first panic like a plain
		// loop; parallel runs everything.
		if workers > 1 {
			for i := range ran {
				if ran[i].Load() != 1 {
					t.Fatalf("workers=%d: cell %d did not run", workers, i)
				}
			}
		}
	}
}

func TestWorkers(t *testing.T) {
	if Workers(3) != 3 {
		t.Fatal("Workers(3)")
	}
	if Workers(0) < 1 || Workers(-1) < 1 {
		t.Fatal("Workers default")
	}
}
