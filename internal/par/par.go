// Package par is the worker-pool primitive behind the parallel sweep
// engine: run n independent experiment cells on up to w goroutines, each
// cell writing only index-owned storage, so the assembled output is
// byte-identical to a sequential run. Cells are deterministic
// simulations, which makes this safe: parallelism changes wall-clock
// time, never values.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a requested worker count: n if positive, otherwise
// GOMAXPROCS.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Do runs fn(i) for every i in [0,n) on up to workers goroutines. fn
// must only write state owned by its index. Every cell runs even if one
// panics; the panic with the lowest index is then re-raised in the
// caller, so the surfaced failure does not depend on goroutine
// scheduling and matches what a sequential loop would hit first.
func Do(workers, n int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		mu       sync.Mutex
		panicIdx = n
		panicVal any
	)
	next.Store(-1)
	cell := func(i int) {
		defer func() {
			if r := recover(); r != nil {
				mu.Lock()
				if i < panicIdx {
					panicIdx, panicVal = i, r
				}
				mu.Unlock()
			}
		}()
		fn(i)
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				cell(i)
			}
		}()
	}
	wg.Wait()
	if panicVal != nil {
		panic(panicVal)
	}
}

// Map evaluates f(i) for i in [0,n) on up to workers goroutines and
// returns the results in index order.
func Map[T any](workers, n int, f func(i int) T) []T {
	out := make([]T, n)
	Do(workers, n, func(i int) { out[i] = f(i) })
	return out
}
