package liveness

import (
	"reflect"
	"testing"

	"camc/internal/sim"
)

// TestAgreeAllButOneDead: the degenerate quorum — every rank but one is
// already dead when the round starts. The lone survivor must publish
// immediately (everyone else is posted-or-dead from its first look) and
// adopt the full dead set without waiting out a deadline.
func TestAgreeAllButOneDead(t *testing.T) {
	s := sim.New()
	const n = 5
	b := NewBoard(s, n, Config{Deadline: 1000, Poll: 5})
	for r := 1; r < n; r++ {
		b.MarkDead(r)
	}
	var got []int
	var at sim.Time
	s.Spawn("r0", func(p *sim.Proc) {
		got = b.Agree(p, 0, 0, []int{1})
		at = s.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if want := []int{1, 2, 3, 4}; !reflect.DeepEqual(got, want) {
		t.Fatalf("agreed = %v, want %v", got, want)
	}
	if at != 0 {
		t.Fatalf("lone survivor waited until %g to publish; want immediate", at)
	}
	if b.AgreedAt(0) != at {
		t.Fatalf("AgreedAt = %g, publish was at %g", b.AgreedAt(0), at)
	}
}

// TestAgreeSimultaneousDeaths: two ranks die at the same virtual
// instant within one round. All survivors must adopt the identical
// two-element set, and the board must keep one death instant for both.
func TestAgreeSimultaneousDeaths(t *testing.T) {
	s := sim.New()
	const n = 6
	b := NewBoard(s, n, Config{Deadline: 1000, Poll: 5})
	results := make([][]int, n)
	s.Spawn("killer", func(p *sim.Proc) {
		p.Sleep(17)
		b.MarkDead(2)
		b.MarkDead(4) // same instant, no intervening sleep
	})
	for rank := 0; rank < n; rank++ {
		if rank == 2 || rank == 4 {
			continue
		}
		rank := rank
		s.Spawn("r", func(p *sim.Proc) {
			p.Sleep(20) // enter the round after both deaths landed
			var local []int
			if rank == 0 {
				local = []int{2} // rank 0 only noticed one of the two
			}
			results[rank] = b.Agree(p, rank, 0, local)
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{2, 4}
	for rank, res := range results {
		if rank == 2 || rank == 4 {
			continue
		}
		if !reflect.DeepEqual(res, want) {
			t.Fatalf("rank %d agreed on %v, want %v", rank, res, want)
		}
	}
	if at, ok := b.FirstDeathAt(); !ok || at != 17 {
		t.Fatalf("FirstDeathAt = (%g,%v), want (17,true)", at, ok)
	}
}

// TestAgreeDeathDuringRound: a rank dies while the agreement round is
// already in progress — it never posts and stops beating after the
// survivors have started waiting. The survivors must ride the deadline,
// mark the silent rank dead, and still converge on one set.
func TestAgreeDeathDuringRound(t *testing.T) {
	s := sim.New()
	const n = 4
	cfg := Config{Deadline: 200, Poll: 5}
	b := NewBoard(s, n, cfg)
	results := make([][]int, n)
	for rank := 0; rank < n-1; rank++ {
		rank := rank
		s.Spawn("r", func(p *sim.Proc) {
			results[rank] = b.Agree(p, rank, 0, nil)
		})
	}
	// Rank 3 beats for a while — proving it was alive after the round
	// began — then goes permanently silent without posting or marking.
	s.Spawn("r3", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			b.Beat(3)
			p.Sleep(10)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{3}
	for rank := 0; rank < n-1; rank++ {
		if !reflect.DeepEqual(results[rank], want) {
			t.Fatalf("rank %d agreed on %v, want %v", rank, results[rank], want)
		}
	}
	if !b.Dead(3) {
		t.Fatal("silent rank never declared dead")
	}
	// Detection could not have happened before rank 3's last beat plus a
	// full deadline of silence.
	if at := b.AgreedAt(0); at < 40+cfg.Deadline {
		t.Fatalf("agreed at %g, before the silent rank's last beat (40) + deadline (%g)", at, cfg.Deadline)
	}
}

// TestAgreePostThenDie: a rank contributes its suspect set and dies
// right after. Its post still counts, its own death joins the union via
// the board, and the survivors do not wait a deadline for it.
func TestAgreePostThenDie(t *testing.T) {
	s := sim.New()
	const n = 4
	b := NewBoard(s, n, Config{Deadline: 1000, Poll: 5})
	results := make([][]int, n)
	s.Spawn("r2", func(p *sim.Proc) {
		// Post by running one Agree step's worth: mark the post directly
		// through the public API — the rank enters the round, then dies
		// before it can see the published set.
		r := b.round(0)
		r.posted[2] = true
		r.suspects[2] = []int{1}
		p.Sleep(3)
		b.MarkDead(2)
	})
	for _, rank := range []int{0, 1, 3} {
		rank := rank
		s.Spawn("r", func(p *sim.Proc) {
			p.Sleep(10)
			results[rank] = b.Agree(p, rank, 0, nil)
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2}
	for _, rank := range []int{0, 1, 3} {
		if !reflect.DeepEqual(results[rank], want) {
			t.Fatalf("rank %d agreed on %v, want %v", rank, results[rank], want)
		}
	}
	if at := b.AgreedAt(0); at != 10 {
		t.Fatalf("agreed at %g; posted-then-dead rank should not cost a deadline", at)
	}
}
