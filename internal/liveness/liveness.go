// Package liveness turns permanently dead ranks from hangs into bounded,
// coherent failures. It provides the three pieces the MPI layer composes
// into ULFM-style recovery:
//
//   - a Board: per-communicator heartbeat/death state published in the
//     simulated shm segment. A dying rank marks itself dead (the kernel
//     knows when a process exits); watchdogs on blocking primitives poll
//     the board and also mark a peer dead themselves when a wait exceeds
//     its deadline (a wedged-but-not-exited peer).
//   - a deadline discipline: every blocking primitive in the transport
//     polls in quanta of Config.Poll and gives up after Config.Deadline,
//     returning a typed *PeerDeadError instead of blocking forever.
//   - an agreement round (Board.Agree): survivors of a protected
//     collective exchange their locally observed failure sets through the
//     board and adopt a single published union, so every survivor returns
//     the same error with the same failed-rank set — no split-brain where
//     a leaf thinks the bcast succeeded while the root saw a death.
//
// Agreement runs before communicator shrink on purpose: shrink rebuilds
// the rank table from the failed set, so survivors must agree on that set
// first or they would build incompatible communicators (see DESIGN.md).
//
// Everything operates in virtual time on the deterministic simulator, so
// detection latencies are reproducible and a liveness-enabled run that
// experiences no failure is schedule-identical to a disabled one: timed
// waits that complete in time cancel their deadline events unprocessed.
package liveness

import (
	"errors"
	"fmt"
	"sort"

	"camc/internal/sim"
)

// ErrPeerDead is the sentinel matched by errors.Is for any failure caused
// by dead peers. The concrete error is always a *PeerDeadError carrying
// the failed-rank set.
var ErrPeerDead = errors.New("peer dead")

// PeerDeadError reports that one or more ranks died. Ranks is sorted.
// After agreement, every survivor holds an identical Ranks slice.
type PeerDeadError struct {
	Ranks []int
}

func (e *PeerDeadError) Error() string {
	return fmt.Sprintf("liveness: dead ranks %v", e.Ranks)
}

// Is makes errors.Is(err, ErrPeerDead) succeed for any *PeerDeadError.
func (e *PeerDeadError) Is(target error) bool { return target == ErrPeerDead }

// NewPeerDeadError returns a *PeerDeadError over a sorted copy of ranks.
func NewPeerDeadError(ranks []int) *PeerDeadError {
	rs := append([]int(nil), ranks...)
	sort.Ints(rs)
	return &PeerDeadError{Ranks: rs}
}

// Killed is the panic value a rank raises to enact its own permanent
// death at a seeded kill point. The MPI layer recovers it at the process
// boundary so the simulated process exits cleanly (the simulator treats
// any other panic as a bug and re-panics out of Run).
type Killed struct {
	Rank int
}

// Config tunes the failure detector. The zero value means "disabled";
// use Defaults (or fill the fields) to enable liveness tracking.
type Config struct {
	// Deadline bounds any single blocking wait. A peer that produces no
	// progress for this long is declared dead by the waiting rank. Timed
	// waits that complete in time are free, so Deadline can be generous.
	Deadline sim.Time
	// Poll is the watchdog quantum: how often a blocked rank re-checks
	// the board (and re-publishes its own heartbeat) while waiting. Board
	// deaths are therefore detected within one Poll, long before Deadline.
	Poll sim.Time
}

// Defaults returns the standard detector tuning: a 10 ms deadline with a
// 10 us poll quantum.
func Defaults() Config {
	return Config{Deadline: 10_000, Poll: 10}
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	d := Defaults()
	if c.Deadline <= 0 {
		c.Deadline = d.Deadline
	}
	if c.Poll <= 0 {
		c.Poll = d.Poll
	}
	return c
}

// roundState is one agreement epoch. Rounds stay in lockstep across
// ranks because every survivor executes the same sequence of protected
// collectives, each ending in exactly one Agree call.
type roundState struct {
	posted    []bool  // rank has contributed its local suspect set
	suspects  [][]int // per-rank local suspect sets
	agreed    []int   // published union (empty = clean round)
	published bool
	agreedAt  sim.Time
}

// Board is the shared liveness state of one communicator: heartbeats,
// death flags, and agreement slots, modelled as residing in the shm
// segment (every rank reads and writes it directly, like the PiP-style
// shared tables in the reproduced design). All access happens under the
// simulator's single scheduling token, so no host-level locking is
// needed and behaviour is deterministic.
type Board struct {
	sim *sim.Simulation
	cfg Config
	n   int

	beats   []sim.Time
	dead    []bool
	deadAt  []sim.Time
	nDead   int
	firstAt sim.Time // earliest death instant, for detection latency

	rounds []*roundState
}

// NewBoard creates the liveness board for an n-rank communicator.
func NewBoard(s *sim.Simulation, n int, cfg Config) *Board {
	return &Board{
		sim:    s,
		cfg:    cfg.withDefaults(),
		n:      n,
		beats:  make([]sim.Time, n),
		dead:   make([]bool, n),
		deadAt: make([]sim.Time, n),
	}
}

// Config returns the detector tuning (with defaults applied).
func (b *Board) Config() Config { return b.cfg }

// Ranks returns the communicator size the board was built for.
func (b *Board) Ranks() int { return b.n }

// Beat publishes rank's heartbeat at the current instant.
func (b *Board) Beat(rank int) { b.beats[rank] = b.sim.Now() }

// Lease publishes rank's heartbeat forward to a future instant: the
// rank is about to be provably busy until then (e.g. a sender pushing
// one contention-inflated chunk through a fabric link, whose duration
// is known the moment it starts) and cannot re-beat from inside the
// busy period. A leased rank is not Stale until the lease plus the
// staleness age has passed. Leases never move a heartbeat backwards,
// and Merge propagates them like any fresher beat.
func (b *Board) Lease(rank int, until sim.Time) {
	if until > b.beats[rank] {
		b.beats[rank] = until
	}
}

// Stale reports whether rank's heartbeat is at least age old. It is the
// watchdog's second opinion before declaring a deadline-expired peer
// dead: a live-but-blocked rank re-beats every Poll quantum, so only a
// rank that has genuinely stopped making progress ever looks stale.
// Without this gate two waits expiring at the same instant — one on a
// dead rank, one on a live rank that is itself blocked on the dead one —
// would each declare their peer dead, and the false positive would
// poison the agreed failed set.
func (b *Board) Stale(rank int, age sim.Time) bool {
	return b.sim.Now()-b.beats[rank] >= age
}

// MarkDead publishes rank's death. The first marking wins; repeats are
// no-ops, so a self-announced death and a watchdog expiry never disagree
// about the death instant.
func (b *Board) MarkDead(rank int) {
	if b.dead[rank] {
		return
	}
	b.dead[rank] = true
	b.deadAt[rank] = b.sim.Now()
	if b.nDead == 0 || b.sim.Now() < b.firstAt {
		b.firstAt = b.sim.Now()
	}
	b.nDead++
}

// Dead reports whether rank has been marked dead.
func (b *Board) Dead(rank int) bool { return b.dead[rank] }

// AnyDead reports whether any rank has been marked dead.
func (b *Board) AnyDead() bool { return b.nDead > 0 }

// DeadSet returns the sorted set of ranks marked dead so far.
func (b *Board) DeadSet() []int {
	if b.nDead == 0 {
		return nil
	}
	set := make([]int, 0, b.nDead)
	for r, d := range b.dead {
		if d {
			set = append(set, r)
		}
	}
	return set
}

// FirstDeathAt returns the earliest death instant and whether any death
// has been recorded. Detection latency = agreement instant − FirstDeathAt.
func (b *Board) FirstDeathAt() (sim.Time, bool) {
	return b.firstAt, b.nDead > 0
}

// Merge folds another board's view of the same rank space into this
// one: fresher heartbeats win, and deaths are adopted together with the
// other view's death instant (first marking still wins, so merged and
// locally observed deaths never disagree about when a rank died). This
// is the fabric-crossing gossip primitive — a liveness probe returns
// the remote node's view and the prober merges it into its own.
func (b *Board) Merge(o *Board) {
	if o == nil || o == b {
		return
	}
	if o.n != b.n {
		panic("liveness: Merge across boards of different rank spaces")
	}
	for r := 0; r < b.n; r++ {
		if o.beats[r] > b.beats[r] {
			b.beats[r] = o.beats[r]
		}
		if o.dead[r] && !b.dead[r] {
			b.dead[r] = true
			b.deadAt[r] = o.deadAt[r]
			if b.nDead == 0 || o.deadAt[r] < b.firstAt {
				b.firstAt = o.deadAt[r]
			}
			b.nDead++
		}
	}
}

func (b *Board) round(i int) *roundState {
	for len(b.rounds) <= i {
		b.rounds = append(b.rounds, &roundState{
			posted:   make([]bool, b.n),
			suspects: make([][]int, b.n),
		})
	}
	return b.rounds[i]
}

// AgreedAt returns the publish instant of agreement round i. It is only
// meaningful after Agree has returned for that round.
func (b *Board) AgreedAt(i int) sim.Time { return b.round(i).agreedAt }

// Agree runs one coherent-error agreement round: the calling rank posts
// its locally observed suspect set, then waits until every rank has
// either posted or died. The first rank to see that condition computes
// the union of all posted suspects plus all board deaths and publishes
// it; everyone else adopts the published set. The returned slice is the
// agreed failed-rank set, sorted, empty for a clean round; all survivors
// of the same round receive equal sets.
//
// A rank that dies mid-agreement is handled by the same discipline as
// any other wait: after Deadline with no progress, survivors mark the
// silent ranks dead, which re-satisfies the posted-or-dead condition.
func (b *Board) Agree(p *sim.Proc, self, round int, local []int) []int {
	r := b.round(round)
	if !r.posted[self] {
		r.posted[self] = true
		r.suspects[self] = append([]int(nil), local...)
	}
	start := b.sim.Now()
	for {
		b.Beat(self)
		if r.published {
			return append([]int(nil), r.agreed...)
		}
		if b.allPostedOrDead(r) {
			r.agreed = b.union(r)
			r.published = true
			r.agreedAt = b.sim.Now()
			return append([]int(nil), r.agreed...)
		}
		if b.sim.Now()-start >= b.cfg.Deadline {
			// Ranks whose heartbeat has also been silent for a full
			// deadline died before posting (e.g. killed between the
			// collective and the agreement). Fresh-but-unposted ranks are
			// alive and still on their way here — keep polling for them.
			for rank := 0; rank < b.n; rank++ {
				if !r.posted[rank] && !b.dead[rank] && b.Stale(rank, b.cfg.Deadline) {
					b.MarkDead(rank)
				}
			}
			if b.allPostedOrDead(r) {
				continue
			}
		}
		p.Sleep(b.cfg.Poll)
	}
}

func (b *Board) allPostedOrDead(r *roundState) bool {
	for rank := 0; rank < b.n; rank++ {
		if !r.posted[rank] && !b.dead[rank] {
			return false
		}
	}
	return true
}

// union folds every posted suspect set and every board death into one
// sorted failed-rank set.
func (b *Board) union(r *roundState) []int {
	in := make([]bool, b.n)
	for rank := 0; rank < b.n; rank++ {
		if b.dead[rank] {
			in[rank] = true
		}
		for _, s := range r.suspects[rank] {
			in[s] = true
		}
	}
	set := []int{}
	for rank, d := range in {
		if d {
			set = append(set, rank)
		}
	}
	return set
}
