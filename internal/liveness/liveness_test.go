package liveness

import (
	"errors"
	"reflect"
	"testing"

	"camc/internal/sim"
)

func TestPeerDeadErrorIs(t *testing.T) {
	err := NewPeerDeadError([]int{3, 1})
	if !errors.Is(err, ErrPeerDead) {
		t.Fatal("errors.Is(PeerDeadError, ErrPeerDead) = false")
	}
	if got := err.Ranks; !reflect.DeepEqual(got, []int{1, 3}) {
		t.Fatalf("Ranks = %v, want sorted [1 3]", got)
	}
	if errors.Is(errors.New("other"), ErrPeerDead) {
		t.Fatal("unrelated error matched ErrPeerDead")
	}
}

func TestBoardMarkDead(t *testing.T) {
	s := sim.New()
	b := NewBoard(s, 4, Config{})
	if b.AnyDead() {
		t.Fatal("fresh board has deaths")
	}
	s.Spawn("a", func(p *sim.Proc) {
		p.Sleep(7)
		b.MarkDead(2)
		p.Sleep(5)
		b.MarkDead(2) // repeat must not move the death instant
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !b.Dead(2) || b.Dead(1) {
		t.Fatalf("dead flags wrong: %v", b.DeadSet())
	}
	at, ok := b.FirstDeathAt()
	if !ok || at != 7 {
		t.Fatalf("FirstDeathAt = (%g,%v), want (7,true)", at, ok)
	}
	if got := b.DeadSet(); !reflect.DeepEqual(got, []int{2}) {
		t.Fatalf("DeadSet = %v", got)
	}
}

// TestAgreeCoherent: ranks observe different local suspect sets (one saw
// the death, others saw nothing) yet all adopt the identical union.
func TestAgreeCoherent(t *testing.T) {
	s := sim.New()
	const n = 4
	b := NewBoard(s, n, Config{Deadline: 1000, Poll: 5})
	results := make([][]int, n)
	b.MarkDead(3)
	for rank := 0; rank < n-1; rank++ {
		rank := rank
		var local []int
		if rank == 0 {
			local = []int{3} // only the root noticed
		}
		s.Spawn("r", func(p *sim.Proc) {
			p.Sleep(sim.Time(rank) * 3) // stagger arrival
			results[rank] = b.Agree(p, rank, 0, local)
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{3}
	for rank := 0; rank < n-1; rank++ {
		if !reflect.DeepEqual(results[rank], want) {
			t.Fatalf("rank %d agreed on %v, want %v", rank, results[rank], want)
		}
	}
}

// TestAgreeCleanRound: with no deaths and no suspects every rank gets an
// empty set, quickly.
func TestAgreeCleanRound(t *testing.T) {
	s := sim.New()
	const n = 3
	b := NewBoard(s, n, Config{Deadline: 1000, Poll: 5})
	results := make([][]int, n)
	for rank := 0; rank < n; rank++ {
		rank := rank
		s.Spawn("r", func(p *sim.Proc) {
			results[rank] = b.Agree(p, rank, 0, nil)
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for rank := 0; rank < n; rank++ {
		if len(results[rank]) != 0 {
			t.Fatalf("rank %d agreed on %v, want empty", rank, results[rank])
		}
	}
	if s.Now() > 100 {
		t.Fatalf("clean agreement took %g us", s.Now())
	}
}

// TestAgreeSilentRankDeclaredDead: a rank that never posts (killed
// between the collective and the agreement) is marked dead after the
// deadline and included in everyone's agreed set.
func TestAgreeSilentRankDeclaredDead(t *testing.T) {
	s := sim.New()
	const n = 3
	cfg := Config{Deadline: 200, Poll: 5}
	b := NewBoard(s, n, cfg)
	results := make([][]int, n)
	for rank := 0; rank < n-1; rank++ { // rank 2 never shows up
		rank := rank
		s.Spawn("r", func(p *sim.Proc) {
			results[rank] = b.Agree(p, rank, 0, nil)
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{2}
	for rank := 0; rank < n-1; rank++ {
		if !reflect.DeepEqual(results[rank], want) {
			t.Fatalf("rank %d agreed on %v, want %v", rank, results[rank], want)
		}
	}
	if s.Now() > cfg.Deadline+2*cfg.Poll {
		t.Fatalf("silent-rank agreement took %g us, deadline %g", s.Now(), cfg.Deadline)
	}
}

// TestAgreeSecondRound: agreement slots are per-round, so a second
// protected collective after a clean first round sees fresh state.
func TestAgreeSecondRound(t *testing.T) {
	s := sim.New()
	const n = 2
	b := NewBoard(s, n, Config{Deadline: 500, Poll: 5})
	var round1 [n][]int
	for rank := 0; rank < n; rank++ {
		rank := rank
		s.Spawn("r", func(p *sim.Proc) {
			if got := b.Agree(p, rank, 0, nil); len(got) != 0 {
				t.Errorf("round 0: rank %d got %v", rank, got)
			}
			var local []int
			if rank == 1 {
				b.MarkDead(0) // pretend rank 0 died... but it still posts
			}
			round1[rank] = b.Agree(p, rank, 1, local)
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// Board deaths fold into the round-1 union even with empty suspects.
	for rank := 0; rank < n; rank++ {
		if !reflect.DeepEqual(round1[rank], []int{0}) {
			t.Fatalf("round 1: rank %d agreed on %v, want [0]", rank, round1[rank])
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	b := NewBoard(sim.New(), 2, Config{})
	cfg := b.Config()
	if cfg.Deadline <= 0 || cfg.Poll <= 0 {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
	if cfg.Poll >= cfg.Deadline {
		t.Fatalf("poll %g >= deadline %g", cfg.Poll, cfg.Deadline)
	}
}
