package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestLinearFitExact(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := make([]float64, len(x))
	for i, v := range x {
		y[i] = 3.5 + 2.25*v
	}
	a, b, err := LinearFit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(a, 3.5, 1e-9) || !almost(b, 2.25, 1e-9) {
		t.Fatalf("fit = (%g, %g), want (3.5, 2.25)", a, b)
	}
}

func TestLinearFitErrors(t *testing.T) {
	if _, _, err := LinearFit([]float64{1}, []float64{2}); err == nil {
		t.Error("single sample should fail")
	}
	if _, _, err := LinearFit([]float64{2, 2, 2}, []float64{1, 2, 3}); err == nil {
		t.Error("constant x should fail")
	}
}

func TestPolyFitRecoversQuadratic(t *testing.T) {
	coef := []float64{1.5, -0.8, 0.35}
	var x, y []float64
	for v := 1.0; v <= 20; v++ {
		x = append(x, v)
		y = append(y, coef[0]+coef[1]*v+coef[2]*v*v)
	}
	got, err := PolyFit(x, y, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range coef {
		if !almost(got[i], coef[i], 1e-6) {
			t.Fatalf("coef[%d] = %g, want %g", i, got[i], coef[i])
		}
	}
}

func TestPolyFitNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	coef := []float64{2, 1.6, 0.1}
	var x, y []float64
	for v := 2.0; v <= 64; v += 2 {
		x = append(x, v)
		y = append(y, coef[0]+coef[1]*v+coef[2]*v*v+rng.NormFloat64()*0.5)
	}
	got, err := PolyFit(x, y, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(got[2], 0.1, 0.02) {
		t.Fatalf("quadratic term %g too far from 0.1", got[2])
	}
}

func TestLMRecoversExponential(t *testing.T) {
	// y = a·(1 − e^{−b·x}) — genuinely nonlinear in parameters.
	f := func(p []float64, x float64) float64 { return p[0] * (1 - math.Exp(-p[1]*x)) }
	truth := []float64{5.0, 0.7}
	var x, y []float64
	for v := 0.5; v <= 10; v += 0.5 {
		x = append(x, v)
		y = append(y, f(truth, v))
	}
	p, ssr, err := LevenbergMarquardt(f, x, y, []float64{1, 1}, LMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ssr > 1e-10 {
		t.Fatalf("ssr = %g", ssr)
	}
	if !almost(p[0], truth[0], 1e-4) || !almost(p[1], truth[1], 1e-4) {
		t.Fatalf("params = %v, want %v", p, truth)
	}
}

func TestLMGammaShapedFit(t *testing.T) {
	// The model package fits γ(c) = a + b·c + d·c² — verify LM recovers
	// it from noisy samples.
	f := func(p []float64, c float64) float64 { return p[0] + p[1]*c + p[2]*c*c }
	truth := []float64{0, 1.6, 0.1}
	rng := rand.New(rand.NewSource(3))
	var x, y []float64
	for c := 2.0; c <= 64; c *= 2 {
		x = append(x, c)
		y = append(y, f(truth, c)*(1+rng.NormFloat64()*0.01))
	}
	p, _, err := LevenbergMarquardt(f, x, y, []float64{1, 1, 1}, LMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(p[2], 0.1, 0.01) {
		t.Fatalf("quadratic term = %g, want ~0.1", p[2])
	}
}

func TestLMFewerSamplesThanParams(t *testing.T) {
	f := func(p []float64, x float64) float64 { return p[0] + p[1]*x + p[2]*x*x }
	if _, _, err := LevenbergMarquardt(f, []float64{1, 2}, []float64{1, 2}, []float64{0, 0, 0}, LMOptions{}); err == nil {
		t.Fatal("expected error")
	}
}

func TestRelErr(t *testing.T) {
	if RelErr(100, 110) > 0.1+1e-12 {
		t.Fatal("RelErr(100,110) should be ~0.0909")
	}
	if RelErr(0, 0) != 0 {
		t.Fatal("RelErr(0,0) should be 0")
	}
	f := func(a, b float64) bool {
		return RelErr(a, b) == RelErr(b, a) && RelErr(a, b) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{2, 8}); !almost(g, 4, 1e-12) {
		t.Fatalf("GeoMean(2,8) = %g", g)
	}
	if !math.IsNaN(GeoMean([]float64{1, -1})) {
		t.Fatal("negative input should NaN")
	}
	if GeoMean(nil) != 0 {
		t.Fatal("empty input should be 0")
	}
}

func TestSolveSingular(t *testing.T) {
	if _, err := solve([][]float64{{1, 2}, {2, 4}}, []float64{1, 2}); err == nil {
		t.Fatal("singular matrix should fail")
	}
}

func TestMeanAndSSR(t *testing.T) {
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("mean")
	}
	if Mean(nil) != 0 {
		t.Fatal("empty mean")
	}
	if s := SumSquaredResiduals([]float64{1, 2}, []float64{1, 4}); s != 4 {
		t.Fatalf("ssr = %g", s)
	}
}

// Non-finite samples must be rejected up front by every fitter: a
// single NaN would otherwise flow through the normal equations and
// come back as NaN coefficients with a nil error.
func TestFittersRejectNonFinite(t *testing.T) {
	bad := [][]float64{
		{1, math.NaN(), 3},
		{1, math.Inf(1), 3},
		{1, math.Inf(-1), 3},
	}
	good := []float64{1, 2, 3}
	lin := func(p []float64, x float64) float64 { return p[0] + p[1]*x }
	for _, b := range bad {
		if _, _, err := LinearFit(b, good); err == nil {
			t.Errorf("LinearFit(x=%v) accepted non-finite x", b)
		}
		if _, _, err := LinearFit(good, b); err == nil {
			t.Errorf("LinearFit(y=%v) accepted non-finite y", b)
		}
		if _, err := PolyFit(b, good, 1); err == nil {
			t.Errorf("PolyFit(x=%v) accepted non-finite x", b)
		}
		if _, err := PolyFit(good, b, 1); err == nil {
			t.Errorf("PolyFit(y=%v) accepted non-finite y", b)
		}
		if _, _, err := LevenbergMarquardt(lin, b, good, []float64{0, 1}, LMOptions{}); err == nil {
			t.Errorf("LM(x=%v) accepted non-finite x", b)
		}
		if _, _, err := LevenbergMarquardt(lin, good, b, []float64{0, 1}, LMOptions{}); err == nil {
			t.Errorf("LM(y=%v) accepted non-finite y", b)
		}
	}
	if _, _, err := LevenbergMarquardt(lin, good, good, []float64{math.NaN(), 1}, LMOptions{}); err == nil {
		t.Error("LM accepted a NaN start parameter")
	}
}

// A model that explodes at the start point must fail loudly, not
// return p0 with a NaN SSR and a nil error.
func TestLMNonFiniteModel(t *testing.T) {
	blowup := func(p []float64, x float64) float64 { return math.Log(p[0]) } // p0[0] = -1 -> NaN
	_, _, err := LevenbergMarquardt(blowup, []float64{1, 2}, []float64{1, 2}, []float64{-1}, LMOptions{})
	if err == nil {
		t.Fatal("LM returned nil error for a model that is NaN at p0")
	}
}
