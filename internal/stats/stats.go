// Package stats provides the small numerical toolbox the model package
// needs: ordinary linear least squares, polynomial fitting, and a
// Levenberg–Marquardt nonlinear least-squares solver (the paper fits its
// contention-factor curves with Marquardt's NLLS algorithm, Fig 5).
package stats

import (
	"errors"
	"fmt"
	"math"
)

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// SumSquaredResiduals returns Σ(y−ŷ)².
func SumSquaredResiduals(y, yhat []float64) float64 {
	var s float64
	for i := range y {
		d := y[i] - yhat[i]
		s += d * d
	}
	return s
}

// finite reports whether every value in every slice is a real number.
// The fitters reject NaN/Inf inputs up front: a single poisoned sample
// would otherwise propagate silently through the normal equations and
// come back as NaN coefficients with a nil error.
func finite(slices ...[]float64) bool {
	for _, s := range slices {
		for _, v := range s {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
		}
	}
	return true
}

var errNonFinite = errors.New("stats: non-finite (NaN/Inf) input sample")

// LinearFit fits y = a + b·x by ordinary least squares and returns
// (a, b).
func LinearFit(x, y []float64) (a, b float64, err error) {
	if len(x) != len(y) || len(x) < 2 {
		return 0, 0, errors.New("stats: need >= 2 paired samples")
	}
	if !finite(x, y) {
		return 0, 0, errNonFinite
	}
	n := float64(len(x))
	var sx, sy, sxx, sxy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, 0, errors.New("stats: degenerate x values")
	}
	b = (n*sxy - sx*sy) / den
	a = (sy - b*sx) / n
	return a, b, nil
}

// PolyFit fits y = c0 + c1·x + ... + c_deg·x^deg by least squares using
// normal equations solved with Gaussian elimination.
func PolyFit(x, y []float64, deg int) ([]float64, error) {
	if deg < 0 {
		return nil, errors.New("stats: negative degree")
	}
	n := deg + 1
	if len(x) != len(y) || len(x) < n {
		return nil, fmt.Errorf("stats: need >= %d samples for degree %d", n, deg)
	}
	if !finite(x, y) {
		return nil, errNonFinite
	}
	// Normal equations: (VᵀV)c = Vᵀy with Vandermonde V.
	ata := make([][]float64, n)
	aty := make([]float64, n)
	for i := range ata {
		ata[i] = make([]float64, n)
	}
	for k := range x {
		pow := make([]float64, 2*n-1)
		pow[0] = 1
		for j := 1; j < len(pow); j++ {
			pow[j] = pow[j-1] * x[k]
		}
		for i := 0; i < n; i++ {
			aty[i] += pow[i] * y[k]
			for j := 0; j < n; j++ {
				ata[i][j] += pow[i+j]
			}
		}
	}
	return solve(ata, aty)
}

// solve performs Gaussian elimination with partial pivoting on a copy of
// (A, b).
func solve(a [][]float64, b []float64) ([]float64, error) {
	n := len(b)
	m := make([][]float64, n)
	for i := range m {
		m[i] = append(append([]float64(nil), a[i]...), b[i])
	}
	for col := 0; col < n; col++ {
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[piv][col]) {
				piv = r
			}
		}
		if math.Abs(m[piv][col]) < 1e-12 {
			return nil, errors.New("stats: singular system")
		}
		m[col], m[piv] = m[piv], m[col]
		for r := col + 1; r < n; r++ {
			f := m[r][col] / m[col][col]
			for c := col; c <= n; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	out := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		s := m[r][n]
		for c := r + 1; c < n; c++ {
			s -= m[r][c] * out[c]
		}
		out[r] = s / m[r][r]
	}
	return out, nil
}

// Model is a parametric model y = f(params, x) for NLLS fitting.
type Model func(params []float64, x float64) float64

// LMOptions tunes the Levenberg–Marquardt solver.
type LMOptions struct {
	MaxIter int     // default 200
	Tol     float64 // relative SSR improvement to declare convergence; default 1e-10
	Lambda0 float64 // initial damping; default 1e-3
}

func (o LMOptions) withDefaults() LMOptions {
	if o.MaxIter == 0 {
		o.MaxIter = 200
	}
	if o.Tol == 0 {
		o.Tol = 1e-10
	}
	if o.Lambda0 == 0 {
		o.Lambda0 = 1e-3
	}
	return o
}

// LevenbergMarquardt minimizes Σ(y_i − f(p, x_i))² starting from p0 and
// returns the fitted parameters and the final sum of squared residuals.
// The Jacobian is computed by central finite differences.
func LevenbergMarquardt(f Model, x, y, p0 []float64, opts LMOptions) ([]float64, float64, error) {
	if len(x) != len(y) {
		return nil, 0, errors.New("stats: x/y length mismatch")
	}
	if len(x) < len(p0) {
		return nil, 0, errors.New("stats: fewer samples than parameters")
	}
	if !finite(x, y, p0) {
		return nil, 0, errNonFinite
	}
	opts = opts.withDefaults()
	p := append([]float64(nil), p0...)
	np := len(p)
	lambda := opts.Lambda0

	ssr := func(params []float64) float64 {
		var s float64
		for i := range x {
			d := y[i] - f(params, x[i])
			s += d * d
		}
		return s
	}
	cur := ssr(p)
	if math.IsNaN(cur) || math.IsInf(cur, 0) {
		// The model itself blew up at the start point; every trial step
		// would compare against NaN and "never improve", so fail loudly.
		return nil, 0, errors.New("stats: model produced non-finite residuals at p0")
	}

	for iter := 0; iter < opts.MaxIter; iter++ {
		// Jacobian (len(x) × np) and residuals.
		jac := make([][]float64, len(x))
		res := make([]float64, len(x))
		for i := range x {
			jac[i] = make([]float64, np)
			res[i] = y[i] - f(p, x[i])
			for j := 0; j < np; j++ {
				h := 1e-6 * (math.Abs(p[j]) + 1e-6)
				pj := p[j]
				p[j] = pj + h
				fp := f(p, x[i])
				p[j] = pj - h
				fm := f(p, x[i])
				p[j] = pj
				jac[i][j] = (fp - fm) / (2 * h)
			}
		}
		// Normal equations (JᵀJ + λ·diag(JᵀJ))δ = Jᵀr.
		jtj := make([][]float64, np)
		jtr := make([]float64, np)
		for j := range jtj {
			jtj[j] = make([]float64, np)
		}
		for i := range x {
			for j := 0; j < np; j++ {
				jtr[j] += jac[i][j] * res[i]
				for k := 0; k < np; k++ {
					jtj[j][k] += jac[i][j] * jac[i][k]
				}
			}
		}
		improved := false
		for attempt := 0; attempt < 25; attempt++ {
			damped := make([][]float64, np)
			for j := range damped {
				damped[j] = append([]float64(nil), jtj[j]...)
				damped[j][j] += lambda * (jtj[j][j] + 1e-12)
			}
			delta, err := solve(damped, jtr)
			if err != nil {
				lambda *= 10
				continue
			}
			trial := make([]float64, np)
			for j := range trial {
				trial[j] = p[j] + delta[j]
			}
			tssr := ssr(trial)
			if tssr < cur {
				rel := (cur - tssr) / (cur + 1e-30)
				p = trial
				cur = tssr
				lambda = math.Max(lambda/10, 1e-12)
				improved = true
				if rel < opts.Tol {
					return p, cur, nil
				}
				break
			}
			lambda *= 10
		}
		if !improved {
			break // stuck: damping exploded without progress
		}
	}
	return p, cur, nil
}

// RelErr returns |a−b| / max(|a|,|b|,eps): a symmetric relative error.
func RelErr(a, b float64) float64 {
	den := math.Max(math.Abs(a), math.Abs(b))
	if den < 1e-30 {
		return 0
	}
	return math.Abs(a-b) / den
}

// GeoMean returns the geometric mean of positive values.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}
