package tuner

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"camc/internal/arch"
	"camc/internal/core"
	"camc/internal/kernel"
	"camc/internal/measure"
	"camc/internal/mpi"
)

// fastCfg keeps autotune runs quick in tests.
var fastCfg = Config{ProbeSizes: []int64{4 << 10, 64 << 10, 1 << 20}}

func TestAutotuneKNLScatterPicksThrottled(t *testing.T) {
	tab := Autotune(arch.KNL(), fastCfg)
	e := tab.Lookup(core.KindScatter, 1<<20)
	if !strings.HasPrefix(e.Name, "throttle-") {
		t.Fatalf("KNL large scatter tuned to %q, want a throttled design", e.Name)
	}
	// The winning fan-out sits at the contention sweet spot (4..16).
	switch e.Name {
	case "throttle-4", "throttle-8", "throttle-16":
	default:
		t.Fatalf("KNL throttle pick %q outside the sweet-spot band", e.Name)
	}
}

func TestAutotuneSmallSizesAvoidNaiveCMA(t *testing.T) {
	tab := Autotune(arch.KNL(), fastCfg)
	for _, kind := range []core.Kind{core.KindScatter, core.KindGather, core.KindBcast} {
		e := tab.Lookup(kind, 1<<10)
		if e.Name == "parallel-read" || e.Name == "parallel-write" || e.Name == "direct-read" {
			t.Errorf("%s at 1K tuned to the contention-prone %q", kind, e.Name)
		}
	}
}

func TestAutotuneTableCoversAllSizes(t *testing.T) {
	tab := Autotune(arch.Broadwell(), fastCfg)
	for _, kind := range Kinds() {
		entries := tab.Entries[kind]
		if len(entries) == 0 {
			t.Fatalf("no entries for %s", kind)
		}
		if entries[len(entries)-1].MaxSize != math.MaxInt64 {
			t.Fatalf("%s: last bucket bounded at %d", kind, entries[len(entries)-1].MaxSize)
		}
		prev := int64(0)
		for _, e := range entries {
			if e.MaxSize <= prev {
				t.Fatalf("%s: buckets not ascending", kind)
			}
			prev = e.MaxSize
		}
	}
}

func TestMergeAdjacent(t *testing.T) {
	in := []Entry{
		{MaxSize: 10, Name: "a"},
		{MaxSize: 20, Name: "a"},
		{MaxSize: 30, Name: "b"},
		{MaxSize: 40, Name: "a"},
	}
	out := mergeAdjacent(in)
	if len(out) != 3 || out[0].MaxSize != 20 || out[1].Name != "b" || out[2].Name != "a" {
		t.Fatalf("merge wrong: %+v", out)
	}
}

// TestMergeAdjacentKeepsLastMeasurement pins the latency-attribution
// fix: a widened bucket must carry the measurement of the *last*
// bucket folded into it, so Fprint's "(x us at probe)" annotation
// names a probe that is actually inside the printed bucket.
func TestMergeAdjacentKeepsLastMeasurement(t *testing.T) {
	in := []Entry{
		{MaxSize: 4 << 10, Name: "a", Latency: 1.5, Probe: 1 << 10},
		{MaxSize: 64 << 10, Name: "a", Latency: 9.25, Probe: 64 << 10},
		{MaxSize: 1 << 20, Name: "b", Latency: 40, Probe: 1 << 20},
	}
	out := mergeAdjacent(in)
	if len(out) != 2 {
		t.Fatalf("merged to %d entries, want 2: %+v", len(out), out)
	}
	got := out[0]
	if got.MaxSize != 64<<10 || got.Latency != 9.25 || got.Probe != 64<<10 {
		t.Fatalf("widened bucket kept first measurement: %+v (want latency 9.25 at 64K)", got)
	}
}

// TestLookupEmptyKindPanics pins the hoisted guard: both Lookup and
// Collective on a kind the table has no entries for must fail with the
// descriptive tuner panic, not a raw index-out-of-range.
func TestLookupEmptyKindPanics(t *testing.T) {
	tab := &Table{Arch: "empty", Entries: map[core.Kind][]Entry{}}
	for name, call := range map[string]func(){
		"Lookup":     func() { tab.Lookup(core.KindScatter, 1) },
		"Collective": func() { tab.Collective(core.KindScatter) },
	} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("%s on empty kind did not panic", name)
				}
				msg, ok := r.(string)
				if !ok || !strings.Contains(msg, "tuner: no entries for scatter") {
					t.Fatalf("%s panic = %v, want tuner: no entries for scatter", name, r)
				}
			}()
			call()
		}()
	}
}

func TestLookupBoundarySizes(t *testing.T) {
	tab := &Table{Entries: map[core.Kind][]Entry{
		core.KindBcast: {
			{MaxSize: 4 << 10, Name: "small"},
			{MaxSize: math.MaxInt64, Name: "big"},
		},
	}}
	cases := []struct {
		size int64
		want string
	}{
		{0, "small"},
		{4 << 10, "small"},     // bucket upper bounds are inclusive
		{4<<10 + 1, "big"},     // first byte past the boundary
		{math.MaxInt64, "big"}, // last bucket is a catch-all
	}
	for _, c := range cases {
		if got := tab.Lookup(core.KindBcast, c.size); got.Name != c.want {
			t.Errorf("Lookup(%d) = %q, want %q", c.size, got.Name, c.want)
		}
	}
}

func TestTunedDispatchMatchesWinner(t *testing.T) {
	// The table-driven collective must perform exactly like the winning
	// algorithm it routes to.
	a := arch.KNL()
	tab := Autotune(a, fastCfg)
	const size = 64 << 10
	viaTable := measure.Collective(a, core.KindGather, tab.Collective(core.KindGather), size, measure.Options{})
	e := tab.Lookup(core.KindGather, size)
	direct := 0.0
	for _, c := range Candidates(core.KindGather, a) {
		if c.Name == e.Name {
			direct = measure.Collective(a, core.KindGather, c.Run, size, measure.Options{})
		}
	}
	if direct == 0 {
		t.Fatalf("winner %q not found among candidates", e.Name)
	}
	if viaTable != direct {
		t.Fatalf("table dispatch %g != direct %g", viaTable, direct)
	}
}

func TestAutotunedNeverWorseThanHandTuned(t *testing.T) {
	// The measured table must match or beat the hand-coded core.Tuned*
	// selections at the probe sizes (it searched a superset).
	a := arch.KNL()
	tab := Autotune(a, fastCfg)
	for _, kind := range []core.Kind{core.KindScatter, core.KindGather, core.KindBcast, core.KindAllgather, core.KindAlltoall} {
		for _, size := range fastCfg.ProbeSizes {
			auto := measure.Collective(a, kind, tab.Collective(kind), size, measure.Options{})
			hand := measure.Collective(a, kind, core.Tuned(kind), size, measure.Options{})
			if auto > 1.05*hand {
				t.Errorf("%s at %d: autotuned %g worse than hand-tuned %g", kind, size, auto, hand)
			}
		}
	}
}

func TestTableFprint(t *testing.T) {
	tab := Autotune(arch.KNL(), Config{ProbeSizes: []int64{64 << 10}})
	var sb strings.Builder
	tab.Fprint(&sb)
	out := sb.String()
	for _, want := range []string{"tuning table for knl", "scatter", "bcast", "->"} {
		if !strings.Contains(out, want) {
			t.Errorf("print missing %q:\n%s", want, out)
		}
	}
}

func TestTunedReduceCorrectViaTable(t *testing.T) {
	// End-to-end: the tuned Reduce routed through the table still
	// produces the right reduction.
	a := arch.KNL()
	tab := Autotune(a, Config{Procs: 8, ProbeSizes: []int64{32 << 10}})
	p := 8
	const count = 8192
	c := mpi.New(mpi.Config{Arch: a, Procs: p, CopyData: true, MemPerProc: 32 << 20})
	send := make([]kernel.Addr, p)
	recv := make([]kernel.Addr, p)
	for i := 0; i < p; i++ {
		send[i] = c.Rank(i).Alloc(count)
		recv[i] = c.Rank(i).Alloc(count)
		buf := c.Rank(i).OS.Bytes(send[i], count)
		for j := range buf {
			buf[j] = byte(i + j)
		}
	}
	c.Start(func(r *mpi.Rank) {
		tab.Collective(core.KindReduce)(r, core.Args{Send: send[r.ID], Recv: recv[r.ID], Count: count, Root: 0})
	})
	if err := c.Sim.Run(); err != nil {
		t.Fatal(err)
	}
	got := c.Rank(0).OS.Bytes(recv[0], count)
	for _, j := range []int64{0, count / 2, count - 1} {
		var want byte
		for i := 0; i < p; i++ {
			want += byte(i + int(j))
		}
		if got[j] != want {
			t.Fatalf("offset %d: got %d want %d", j, got[j], want)
		}
	}
}

// TestAutotuneParallelMatchesSequential checks that the probe worker
// pool never changes the tuned table: Jobs=8 renders byte-identical to
// Jobs=1.
func TestAutotuneParallelMatchesSequential(t *testing.T) {
	render := func(jobs int) string {
		cfg := fastCfg
		cfg.Jobs = jobs
		var buf bytes.Buffer
		Autotune(arch.KNL(), cfg).Fprint(&buf)
		return buf.String()
	}
	seq, par := render(1), render(8)
	if seq != par {
		t.Fatalf("tables differ:\n--- j1 ---\n%s--- j8 ---\n%s", seq, par)
	}
}
