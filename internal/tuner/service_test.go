package tuner

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"camc/internal/arch"
	"camc/internal/core"
)

func TestAmbientBucket(t *testing.T) {
	cases := map[int]int{0: 0, 1: 2, 4: 2, 5: 8, 16: 8, 17: 32, 100: 32}
	for in, want := range cases {
		if got := AmbientBucket(in); got != want {
			t.Errorf("AmbientBucket(%d) = %d, want %d", in, got, want)
		}
	}
}

// fakeTune builds an instant table whose entry name encodes the tuning
// inputs, so tests can see exactly what each cache entry was tuned for.
func fakeTune(calls *int64, ambients *[]int, mu *sync.Mutex) func(a *arch.Profile, cfg Config) *Table {
	return func(a *arch.Profile, cfg Config) *Table {
		atomic.AddInt64(calls, 1)
		if mu != nil {
			mu.Lock()
			*ambients = append(*ambients, cfg.Ambient)
			mu.Unlock()
		}
		t := &Table{Arch: a.Name, Procs: cfg.Procs, Entries: map[core.Kind][]Entry{}}
		for _, k := range cfg.Kinds {
			t.Entries[k] = []Entry{{MaxSize: math.MaxInt64, Name: "fake", Latency: float64(cfg.Ambient), Probe: 1}}
		}
		return t
	}
}

func TestPlanCacheHitMiss(t *testing.T) {
	var calls int64
	s := NewService(ServiceConfig{Tune: fakeTune(&calls, nil, nil)})
	req := PlanRequest{Arch: "knl", Kind: core.KindScatter, Size: 1 << 20}

	r1, err := s.Plan(req)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cached || calls != 1 {
		t.Fatalf("first plan: cached=%v calls=%d, want fresh single tune", r1.Cached, calls)
	}
	r2, err := s.Plan(req)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Cached || calls != 1 {
		t.Fatalf("second plan: cached=%v calls=%d, want cache hit", r2.Cached, calls)
	}
	// Same bucket, different raw ambient: still a hit.
	req.Ambient = 3 // bucket 2
	if _, err := s.Plan(req); err != nil {
		t.Fatal(err)
	}
	req.Ambient = 1 // same bucket 2
	r4, err := s.Plan(req)
	if err != nil {
		t.Fatal(err)
	}
	if !r4.Cached || calls != 2 {
		t.Fatalf("same-bucket plan: cached=%v calls=%d, want hit on 2 tables", r4.Cached, calls)
	}
	// Different kind: its own cache entry.
	if _, err := s.Plan(PlanRequest{Arch: "knl", Kind: core.KindBcast, Size: 1}); err != nil {
		t.Fatal(err)
	}
	if calls != 3 {
		t.Fatalf("kind miss: calls=%d, want 3", calls)
	}
	st := s.Stats()
	if st.Misses != 3 || st.Hits != 2 {
		t.Fatalf("stats %+v, want 3 misses / 2 hits", st)
	}
}

func TestPlanRejectsBadRequests(t *testing.T) {
	s := NewService(ServiceConfig{Tune: fakeTune(new(int64), nil, nil)})
	bad := []PlanRequest{
		{Arch: "nope", Kind: core.KindScatter, Size: 1},
		{Arch: "knl", Kind: "sort", Size: 1},
		{Arch: "knl", Kind: core.KindScatter, Size: -1},
		{Arch: "knl", Kind: core.KindScatter, Size: 1, Ambient: -2},
	}
	for _, req := range bad {
		if _, err := s.Plan(req); err == nil {
			t.Errorf("Plan(%+v) accepted, want error", req)
		}
	}
}

// TestSingleFlight pins the de-dup: many concurrent misses on one key
// run exactly one tune; everyone else waits and shares its table.
func TestSingleFlight(t *testing.T) {
	const waiters = 8
	var calls int64
	gate := make(chan struct{})
	entered := make(chan struct{})
	s := NewService(ServiceConfig{Tune: func(a *arch.Profile, cfg Config) *Table {
		atomic.AddInt64(&calls, 1)
		close(entered)
		<-gate
		return fakeTune(new(int64), nil, nil)(a, cfg)
	}})
	req := PlanRequest{Arch: "knl", Kind: core.KindGather, Size: 4 << 10}

	results := make(chan PlanResponse, waiters+1)
	errs := make(chan error, waiters+1)
	go func() {
		r, err := s.Plan(req)
		results <- r
		errs <- err
	}()
	<-entered // the leader is inside the tune
	for i := 0; i < waiters; i++ {
		go func() {
			r, err := s.Plan(req)
			results <- r
			errs <- err
		}()
	}
	// Wait until every follower has joined the in-flight tune.
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Shared != waiters {
		if time.Now().After(deadline) {
			t.Fatalf("stats %+v: followers never joined the flight", s.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	var algos []string
	for i := 0; i < waiters+1; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
		algos = append(algos, (<-results).Algorithm)
	}
	if calls != 1 {
		t.Fatalf("tune ran %d times for one key, want 1", calls)
	}
	for _, a := range algos {
		if a != "fake" {
			t.Fatalf("mixed answers %v", algos)
		}
	}
	st := s.Stats()
	if st.Misses != 1 || st.Shared != waiters {
		t.Fatalf("stats %+v, want 1 miss / %d shared", st, waiters)
	}
}

// TestRetuneOnDrift: a table tuned at its bucket representative goes
// dirty once observed ambient drifts past the threshold, and a batched
// Retune rebuilds it at the drifted value.
func TestRetuneOnDrift(t *testing.T) {
	var calls int64
	var ambients []int
	var mu sync.Mutex
	s := NewService(ServiceConfig{Tune: fakeTune(&calls, &ambients, &mu), DriftThreshold: 4})

	// Tune in bucket 8 at raw ambient 6, then hammer it with readings at
	// the top of the bucket (16): EWMA converges to 16, drift 8 >= 4.
	req := PlanRequest{Arch: "knl", Kind: core.KindScatter, Size: 1 << 10, Ambient: 6}
	if _, err := s.Plan(req); err != nil {
		t.Fatal(err)
	}
	if len(s.Dirty()) != 0 {
		t.Fatalf("fresh table already dirty: %v", s.Dirty())
	}
	req.Ambient = 16
	for i := 0; i < 20; i++ {
		if _, err := s.Plan(req); err != nil {
			t.Fatal(err)
		}
	}
	dirty := s.Dirty()
	if len(dirty) != 1 || dirty[0].Bucket != 8 {
		t.Fatalf("dirty = %v, want the bucket-8 scatter key", dirty)
	}
	if n := s.Retune(); n != 1 {
		t.Fatalf("Retune rebuilt %d tables, want 1", n)
	}
	mu.Lock()
	last := ambients[len(ambients)-1]
	mu.Unlock()
	if last < 15 || last > 16 {
		t.Fatalf("retuned at ambient %d, want ~16 (the drifted EWMA)", last)
	}
	if len(s.Dirty()) != 0 {
		t.Fatalf("still dirty after retune: %v", s.Dirty())
	}
	if st := s.Stats(); st.Retunes != 1 {
		t.Fatalf("stats %+v, want 1 retune", st)
	}
	// The fresh table serves from cache.
	if r, err := s.Plan(req); err != nil || !r.Cached || r.Latency != float64(last) {
		t.Fatalf("post-retune plan %+v err %v, want cached answer from the retuned table", r, err)
	}
}

// TestServiceMatchesFreshAutotune is the acceptance check: a cached
// plan is byte-identical to what a fresh Autotune at the same key
// produces.
func TestServiceMatchesFreshAutotune(t *testing.T) {
	probes := []int64{4 << 10, 256 << 10}
	s := NewService(ServiceConfig{ProbeSizes: probes})
	req := PlanRequest{Arch: "knl", Kind: core.KindScatter, Size: 256 << 10, Ambient: 8}
	first, err := s.Plan(req)
	if err != nil {
		t.Fatal(err)
	}
	cachedResp, err := s.Plan(req)
	if err != nil {
		t.Fatal(err)
	}
	prof, _ := arch.ByName("knl")
	fresh := Autotune(prof, Config{ProbeSizes: probes, Ambient: AmbientBucket(req.Ambient), Kinds: []core.Kind{req.Kind}})
	want := fresh.Lookup(req.Kind, req.Size)
	for name, got := range map[string]PlanResponse{"fresh": first, "cached": cachedResp} {
		if got.Algorithm != want.Name || got.Latency != want.Latency || got.Probe != want.Probe || got.MaxSize != want.MaxSize {
			t.Errorf("%s plan %+v != fresh Autotune entry %+v", name, got, want)
		}
	}
	a, _ := json.Marshal(first)
	b, _ := json.Marshal(cachedResp)
	// Cached and fresh responses differ only in the Cached flag.
	first.Cached = true
	c, _ := json.Marshal(first)
	if string(b) != string(c) {
		t.Fatalf("cached response %s != fresh response %s (modulo cached flag)", b, a)
	}
}

func TestServiceHTTP(t *testing.T) {
	var calls int64
	s := NewService(ServiceConfig{Tune: fakeTune(&calls, nil, nil)})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	get := func(path string) (int, []byte) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf [4096]byte
		n, _ := resp.Body.Read(buf[:])
		return resp.StatusCode, buf[:n]
	}

	code, body := get("/plan?arch=knl&kind=scatter&size=65536&ambient=3")
	if code != http.StatusOK {
		t.Fatalf("plan: %d %s", code, body)
	}
	var pr PlanResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Algorithm != "fake" || pr.Bucket != 2 {
		t.Fatalf("plan response %+v", pr)
	}

	code, body = get("/plan?arch=knl&kind=scatter") // size missing
	if code != http.StatusBadRequest {
		t.Fatalf("missing size: %d %s", code, body)
	}
	code, body = get("/plan?arch=knl&kind=scatter&size=zap")
	if code != http.StatusBadRequest {
		t.Fatalf("bad size: %d %s", code, body)
	}

	code, body = get("/stats")
	if code != http.StatusOK {
		t.Fatalf("stats: %d", code)
	}
	var st Stats
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st, s.Stats()) {
		t.Fatalf("stats endpoint %+v != %+v", st, s.Stats())
	}

	if code, _ = get("/healthz"); code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
}
