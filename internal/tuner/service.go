// Always-on tuning service: the autotuner wrapped behind a concurrent
// plan cache. A production MPI launcher asks "which algorithm for this
// (arch, ranks, kind, size) under the machine's current co-tenant
// pressure?" and the service answers from a tuned table it built once
// per cache key — re-tuning in batches when the observed ambient
// pressure drifts away from what a table was tuned for.
package tuner

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"

	"camc/internal/arch"
	"camc/internal/core"
)

// AmbientBucket maps a raw ambient lock-holder count to its bucket's
// representative value. Tables are tuned per bucket, not per raw count:
// γ(c) is smooth enough that tuning at the representative covers the
// band, and the cache stays small under jittery ambient readings.
//
//	0        -> 0   (dedicated machine)
//	1..4     -> 2   (light co-tenancy)
//	5..16    -> 8   (busy neighbours)
//	17..     -> 32  (saturated, CMA lock convoy territory)
func AmbientBucket(ambient int) int {
	switch {
	case ambient <= 0:
		return 0
	case ambient <= 4:
		return 2
	case ambient <= 16:
		return 8
	default:
		return 32
	}
}

// PlanKey identifies one tuned table in the service cache.
type PlanKey struct {
	Arch   string    `json:"arch"`
	Procs  int       `json:"procs"`
	Kind   core.Kind `json:"kind"`
	Bucket int       `json:"bucket"` // AmbientBucket representative
}

// PlanRequest asks for the tuned algorithm of one collective call.
type PlanRequest struct {
	Arch    string    `json:"arch"`
	Procs   int       `json:"procs"` // 0 = architecture default
	Kind    core.Kind `json:"kind"`
	Size    int64     `json:"size"`    // message size in bytes
	Ambient int       `json:"ambient"` // current co-tenant lock holders
}

// PlanResponse is the tuned answer.
type PlanResponse struct {
	Algorithm string  `json:"algorithm"`
	MaxSize   int64   `json:"max_size"` // bucket upper bound the plan covers
	Latency   float64 `json:"latency_us"`
	Probe     int64   `json:"probe"`  // size Latency was measured at
	Bucket    int     `json:"bucket"` // ambient bucket the table was tuned for
	Cached    bool    `json:"cached"` // true when served without tuning
}

// Stats counts cache traffic since the service started.
type Stats struct {
	Hits    int64 `json:"hits"`    // answered from a tuned table
	Misses  int64 `json:"misses"`  // triggered a fresh Autotune
	Shared  int64 `json:"shared"`  // waited on another request's in-flight tune
	Retunes int64 `json:"retunes"` // tables rebuilt by drift-triggered Retune
}

// ServiceConfig tunes the Service itself.
type ServiceConfig struct {
	// ProbeSizes and Jobs are forwarded into each Autotune Config.
	ProbeSizes []int64
	Jobs       int
	// DriftThreshold marks a table dirty once |EWMA(ambient) - tuned
	// ambient| reaches it (default 2 holders).
	DriftThreshold float64
	// Alpha is the ambient EWMA smoothing factor in (0, 1]; default 0.3.
	Alpha float64
	// Tune overrides the tuning function (tests instrument it to count
	// and serialize real tuning work). Default Autotune.
	Tune func(a *arch.Profile, cfg Config) *Table
}

type cacheEntry struct {
	tab *Table
	// tunedAmbient is the raw ambient value the table was built at
	// (starts as the bucket representative, tracks retunes after).
	tunedAmbient int
	ewma         float64
	seen         bool
}

type flight struct {
	done chan struct{}
	tab  *Table
	err  error
}

// Service is a concurrent, always-on tuning oracle: a tuned-plan cache
// keyed by (arch, ranks, kind, ambient bucket) with single-flight
// de-duplication of concurrent misses and batched re-tuning on ambient
// drift. Safe for concurrent use.
type Service struct {
	cfg ServiceConfig

	mu       sync.Mutex
	cache    map[PlanKey]*cacheEntry
	inflight map[PlanKey]*flight
	stats    Stats
}

// NewService builds a Service. cfg may be zero-valued.
func NewService(cfg ServiceConfig) *Service {
	if cfg.DriftThreshold <= 0 {
		cfg.DriftThreshold = 2
	}
	if cfg.Alpha <= 0 || cfg.Alpha > 1 {
		cfg.Alpha = 0.3
	}
	if cfg.Tune == nil {
		cfg.Tune = Autotune
	}
	return &Service{
		cfg:      cfg,
		cache:    map[PlanKey]*cacheEntry{},
		inflight: map[PlanKey]*flight{},
	}
}

func (s *Service) validate(req *PlanRequest) (*arch.Profile, error) {
	prof, err := arch.ByName(req.Arch)
	if err != nil {
		return nil, err
	}
	ok := false
	for _, k := range Kinds() {
		if k == req.Kind {
			ok = true
		}
	}
	if !ok {
		return nil, fmt.Errorf("tuner: unknown kind %q", req.Kind)
	}
	if req.Size < 0 {
		return nil, fmt.Errorf("tuner: negative size %d", req.Size)
	}
	if req.Ambient < 0 {
		return nil, fmt.Errorf("tuner: negative ambient %d", req.Ambient)
	}
	if req.Procs == 0 {
		req.Procs = prof.DefaultProcs
	}
	return prof, nil
}

// Plan answers one request, tuning at most once per cache key no matter
// how many requests race on it.
func (s *Service) Plan(req PlanRequest) (PlanResponse, error) {
	prof, err := s.validate(&req)
	if err != nil {
		return PlanResponse{}, err
	}
	key := PlanKey{Arch: prof.Name, Procs: req.Procs, Kind: req.Kind, Bucket: AmbientBucket(req.Ambient)}

	s.mu.Lock()
	if e, ok := s.cache[key]; ok {
		s.stats.Hits++
		s.observeLocked(e, req.Ambient)
		tab := e.tab
		s.mu.Unlock()
		return s.respond(tab, req, key, true), nil
	}
	if f, ok := s.inflight[key]; ok {
		s.stats.Shared++
		s.mu.Unlock()
		<-f.done
		if f.err != nil {
			return PlanResponse{}, f.err
		}
		s.mu.Lock()
		if e, ok := s.cache[key]; ok {
			s.observeLocked(e, req.Ambient)
		}
		s.mu.Unlock()
		return s.respond(f.tab, req, key, true), nil
	}
	s.stats.Misses++
	f := &flight{done: make(chan struct{})}
	s.inflight[key] = f
	s.mu.Unlock()

	f.tab, f.err = s.tune(key, key.Bucket)
	s.mu.Lock()
	delete(s.inflight, key)
	if f.err == nil {
		e := &cacheEntry{tab: f.tab, tunedAmbient: key.Bucket}
		s.observeLocked(e, req.Ambient)
		s.cache[key] = e
	}
	s.mu.Unlock()
	close(f.done)
	if f.err != nil {
		return PlanResponse{}, f.err
	}
	return s.respond(f.tab, req, key, false), nil
}

func (s *Service) tune(key PlanKey, ambient int) (tab *Table, err error) {
	prof, err := arch.ByName(key.Arch)
	if err != nil {
		return nil, err
	}
	defer func() {
		if r := recover(); r != nil {
			tab, err = nil, fmt.Errorf("tuner: tuning %v failed: %v", key, r)
		}
	}()
	return s.cfg.Tune(prof, Config{
		Procs:      key.Procs,
		ProbeSizes: s.cfg.ProbeSizes,
		Jobs:       s.cfg.Jobs,
		Ambient:    ambient,
		Kinds:      []core.Kind{key.Kind},
	}), nil
}

func (s *Service) respond(tab *Table, req PlanRequest, key PlanKey, cached bool) PlanResponse {
	e := tab.Lookup(req.Kind, req.Size)
	return PlanResponse{
		Algorithm: e.Name,
		MaxSize:   e.MaxSize,
		Latency:   e.Latency,
		Probe:     e.Probe,
		Bucket:    key.Bucket,
		Cached:    cached,
	}
}

// observeLocked folds one raw ambient reading into the entry's EWMA.
func (s *Service) observeLocked(e *cacheEntry, ambient int) {
	if !e.seen {
		e.ewma, e.seen = float64(ambient), true
		return
	}
	e.ewma = s.cfg.Alpha*float64(ambient) + (1-s.cfg.Alpha)*e.ewma
}

// dirtyLocked reports whether the entry's observed pressure has drifted
// past the retune threshold.
func dirtyLocked(s *Service, e *cacheEntry) bool {
	d := e.ewma - float64(e.tunedAmbient)
	if d < 0 {
		d = -d
	}
	return d >= s.cfg.DriftThreshold
}

// Dirty returns the keys whose observed ambient EWMA has drifted past
// the threshold since their table was tuned, in deterministic order.
func (s *Service) Dirty() []PlanKey {
	s.mu.Lock()
	defer s.mu.Unlock()
	var keys []PlanKey
	for k, e := range s.cache {
		if dirtyLocked(s, e) {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Arch != b.Arch {
			return a.Arch < b.Arch
		}
		if a.Procs != b.Procs {
			return a.Procs < b.Procs
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.Bucket < b.Bucket
	})
	return keys
}

// Retune rebuilds every dirty table in one batch at the rounded EWMA
// ambient and swaps the fresh tables in. It returns the number of
// tables rebuilt. Serving continues from the old tables while the
// batch runs; camc-tune -serve calls this on a background ticker.
func (s *Service) Retune() int {
	keys := s.Dirty()
	type rebuilt struct {
		key     PlanKey
		ambient int
		tab     *Table
	}
	var batch []rebuilt
	for _, key := range keys {
		s.mu.Lock()
		e, ok := s.cache[key]
		if !ok || !dirtyLocked(s, e) {
			s.mu.Unlock()
			continue
		}
		target := int(e.ewma + 0.5)
		s.mu.Unlock()
		tab, err := s.tune(key, target)
		if err != nil {
			continue
		}
		batch = append(batch, rebuilt{key, target, tab})
	}
	s.mu.Lock()
	for _, r := range batch {
		if e, ok := s.cache[r.key]; ok {
			e.tab = r.tab
			e.tunedAmbient = r.ambient
		}
		s.stats.Retunes++
	}
	s.mu.Unlock()
	return len(batch)
}

// Stats returns a snapshot of the cache counters.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Handler exposes the service over HTTP/JSON:
//
//	GET /plan?arch=knl&kind=scatter&size=65536[&procs=64][&ambient=8]
//	GET /stats
//	GET /healthz
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/plan", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		req := PlanRequest{Arch: q.Get("arch"), Kind: core.Kind(q.Get("kind"))}
		var err error
		if req.Size, err = parseInt64(q.Get("size")); err != nil {
			httpErr(w, http.StatusBadRequest, fmt.Errorf("size: %v", err))
			return
		}
		if req.Procs, err = parseIntDefault(q.Get("procs")); err != nil {
			httpErr(w, http.StatusBadRequest, fmt.Errorf("procs: %v", err))
			return
		}
		if req.Ambient, err = parseIntDefault(q.Get("ambient")); err != nil {
			httpErr(w, http.StatusBadRequest, fmt.Errorf("ambient: %v", err))
			return
		}
		resp, err := s.Plan(req)
		if err != nil {
			httpErr(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, resp)
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, s.Stats())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	return mux
}

func parseInt64(v string) (int64, error) {
	if v == "" {
		return 0, fmt.Errorf("missing")
	}
	return strconv.ParseInt(v, 10, 64)
}

func parseIntDefault(v string) (int, error) {
	if v == "" {
		return 0, nil
	}
	return strconv.Atoi(v)
}

func httpErr(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
