// Package tuner implements the collective tuning framework the paper
// plugs its designs into (§VII: "we use the collective tuning framework
// of MVAPICH2 to automatically select either CMA or shared memory based
// designs to provide the best performance for a given message size and
// process count").
//
// Autotune probes every candidate algorithm of a collective at a ladder
// of message sizes on the target architecture and emits a dispatch
// Table: contiguous size buckets, each mapped to the measured winner.
// The result reproduces the paper's hand-tuned selections (throttle 8 on
// KNL, 4 on Broadwell, 10 on Power8; shared memory below the
// kernel-assist threshold; scatter-allgather broadcasts at the top) —
// but derives them from measurements instead of hard-coding them.
package tuner

import (
	"fmt"
	"io"
	"math"
	"sort"

	"camc/internal/arch"
	"camc/internal/core"
	"camc/internal/measure"
	"camc/internal/mpi"
	"camc/internal/par"
)

// Entry maps one message-size bucket to its winning algorithm.
type Entry struct {
	// MaxSize is the bucket's inclusive upper bound in bytes;
	// math.MaxInt64 for the last bucket.
	MaxSize int64
	// Name is the winning algorithm's registry name.
	Name string
	// Latency is the measured latency at Probe (us). When adjacent
	// buckets merge, the widened bucket keeps the *last* merged
	// bucket's measurement, so Latency always belongs to the probe
	// size closest to the bucket's printed upper bound.
	Latency float64
	// Probe is the probe size (bytes) Latency was measured at.
	Probe int64

	run func(*mpi.Rank, core.Args)
}

// Table is a tuned dispatch table for one architecture.
type Table struct {
	Arch    string
	Procs   int
	Entries map[core.Kind][]Entry // per kind, ascending MaxSize
}

// entriesFor returns kind's bucket list, panicking with a clear named
// message for a kind the table does not cover. Both Collective and
// Lookup go through this guard, so an empty kind fails identically on
// either path instead of Lookup's former raw index-out-of-range.
func (t *Table) entriesFor(kind core.Kind) []Entry {
	entries := t.Entries[kind]
	if len(entries) == 0 {
		panic(fmt.Sprintf("tuner: no entries for %s", kind))
	}
	return entries
}

// Collective returns the table-driven implementation of kind: each call
// dispatches to the bucket covering Args.Count.
func (t *Table) Collective(kind core.Kind) func(r *mpi.Rank, a core.Args) {
	t.entriesFor(kind)
	return func(r *mpi.Rank, a core.Args) {
		t.Lookup(kind, a.Count).run(r, a)
	}
}

// Lookup returns the entry covering size.
func (t *Table) Lookup(kind core.Kind, size int64) Entry {
	entries := t.entriesFor(kind)
	for _, e := range entries {
		if size <= e.MaxSize {
			return e
		}
	}
	return entries[len(entries)-1]
}

// Fprint renders the table.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "tuning table for %s (%d ranks)\n", t.Arch, t.Procs)
	kinds := make([]string, 0, len(t.Entries))
	for k := range t.Entries {
		kinds = append(kinds, string(k))
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Fprintf(w, "  %s:\n", k)
		lo := int64(0)
		for _, e := range t.Entries[core.Kind(k)] {
			hi := "inf"
			if e.MaxSize != math.MaxInt64 {
				hi = sizeStr(e.MaxSize)
			}
			fmt.Fprintf(w, "    (%s, %s]  ->  %-22s (%.1f us at %s)\n", sizeStr(lo), hi, e.Name, e.Latency, sizeStr(e.Probe))
			lo = e.MaxSize
		}
	}
}

func sizeStr(s int64) string {
	switch {
	case s <= 0:
		return "0"
	case s >= 1<<20 && s%(1<<20) == 0:
		return fmt.Sprintf("%dM", s>>20)
	case s >= 1<<10 && s%(1<<10) == 0:
		return fmt.Sprintf("%dK", s>>10)
	default:
		return fmt.Sprintf("%dB", s)
	}
}

// Config tunes the autotuner itself.
type Config struct {
	// Procs overrides the architecture's default process count.
	Procs int
	// ProbeSizes are the bucket boundaries; defaults to 1K..4M powers of
	// four (1K, 4K, 16K, 64K, 256K, 1M, 4M).
	ProbeSizes []int64
	// Jobs caps the worker goroutines probing (candidate, size) cells
	// (0 = GOMAXPROCS, 1 = sequential). Each probe is an independent
	// deterministic simulation, so the resulting table is identical for
	// any value.
	Jobs int
	// Ambient is the static co-tenant lock pressure every probe runs
	// under (measure.Options.Ambient): the table is then tuned for a
	// machine with that many phantom page-lock holders, which shifts
	// the crossovers away from the contention-prone kernel-assisted
	// designs (x13).
	Ambient int
	// Kinds restricts the table to these collective kinds (default:
	// all six). The tuning service tunes one kind per cache entry, so
	// a plan miss pays for the kind it needs, not the whole matrix.
	Kinds []core.Kind
}

func (c Config) withDefaults(a *arch.Profile) Config {
	if c.Procs == 0 {
		c.Procs = a.DefaultProcs
	}
	if len(c.ProbeSizes) == 0 {
		for s := int64(1 << 10); s <= 4<<20; s <<= 2 {
			c.ProbeSizes = append(c.ProbeSizes, s)
		}
	}
	if len(c.Kinds) == 0 {
		c.Kinds = Kinds()
	}
	return c
}

// Candidates returns the algorithm pool the tuner searches for one
// collective kind on one architecture: the native contention-aware
// designs across a fan-out ladder plus the shared-memory and pt2pt
// classics.
func Candidates(kind core.Kind, a *arch.Profile) []core.Algorithm {
	// Fan-out ladder: powers of two up to half the ranks, plus the
	// architecture's socket size (the Power8 sweet spot k=10 is not a
	// power of two).
	var ks []int
	for k := 2; k <= a.DefaultProcs/2 && k <= 32; k <<= 1 {
		ks = append(ks, k)
	}
	perSocket := a.DefaultProcs / a.Sockets
	if perSocket > 1 && perSocket <= 32 {
		ks = append(ks, perSocket)
	}
	sort.Ints(ks)
	ks = dedupInts(ks)

	switch kind {
	case core.KindScatter:
		algos := core.ScatterAlgorithms(ks...)
		algos = append(algos,
			core.Algorithm{Name: "binomial-shm", Kind: kind, Run: core.ScatterBinomial(core.TransportShm)},
			core.Algorithm{Name: "binomial-pt2pt", Kind: kind, Run: core.ScatterBinomial(core.TransportPt2pt)},
		)
		return algos
	case core.KindGather:
		algos := core.GatherAlgorithms(ks...)
		algos = append(algos,
			core.Algorithm{Name: "binomial-shm", Kind: kind, Run: core.GatherBinomial(core.TransportShm)},
			core.Algorithm{Name: "binomial-pt2pt", Kind: kind, Run: core.GatherBinomial(core.TransportPt2pt)},
		)
		return algos
	case core.KindBcast:
		var kn []int
		for _, k := range ks {
			kn = append(kn, k+1) // fan-out k readers = base k+1
		}
		algos := core.BcastAlgorithms(kn...)
		algos = append(algos,
			core.Algorithm{Name: "binomial-shm", Kind: kind, Run: core.BcastBinomial(core.TransportShm)},
			core.Algorithm{Name: "vandegeijn-shm", Kind: kind, Run: core.BcastVanDeGeijn(core.TransportShm)},
			core.Algorithm{Name: "vandegeijn-pt2pt", Kind: kind, Run: core.BcastVanDeGeijn(core.TransportPt2pt)},
		)
		return algos
	case core.KindAllgather:
		algos := core.AllgatherAlgorithms(1)
		algos = append(algos,
			core.Algorithm{Name: "ring-shm", Kind: kind, Run: core.AllgatherRing(core.TransportShm)},
			core.Algorithm{Name: "ring-pt2pt", Kind: kind, Run: core.AllgatherRing(core.TransportPt2pt)},
		)
		return algos
	case core.KindAlltoall:
		return core.AlltoallAlgorithms()
	case core.KindReduce:
		var kn []int
		for _, k := range ks {
			kn = append(kn, k+1)
		}
		return core.ReduceAlgorithms(kn...)
	}
	panic("tuner: unknown kind " + string(kind))
}

func dedupInts(v []int) []int {
	out := v[:0]
	for i, x := range v {
		if i == 0 || x != v[i-1] {
			out = append(out, x)
		}
	}
	return out
}

// Kinds are the collectives the tuner covers.
func Kinds() []core.Kind {
	return []core.Kind{
		core.KindScatter, core.KindGather, core.KindBcast,
		core.KindAllgather, core.KindAlltoall, core.KindReduce,
	}
}

// Autotune probes every candidate at every probe size and builds the
// winning dispatch table. Probing is exact (the simulator is
// deterministic), so one invocation per (algorithm, size) suffices.
func Autotune(a *arch.Profile, cfg Config) *Table {
	cfg = cfg.withDefaults(a)
	t := &Table{Arch: a.Name, Procs: cfg.Procs, Entries: map[core.Kind][]Entry{}}
	for _, kind := range cfg.Kinds {
		cands := Candidates(kind, a)
		measured := measureKind(a, kind, cands, cfg)
		var entries []Entry
		for si, size := range cfg.ProbeSizes {
			best := 0
			for ci := range cands {
				if measured[ci][si] < measured[best][si] {
					best = ci
				}
			}
			entries = append(entries, Entry{
				MaxSize: size,
				Name:    cands[best].Name,
				Latency: measured[best][si],
				Probe:   size,
				run:     cands[best].Run,
			})
		}
		// The last bucket extends to infinity.
		entries[len(entries)-1].MaxSize = math.MaxInt64
		t.Entries[kind] = mergeAdjacent(entries)
	}
	return t
}

// ProbeCell is one (probe size, winner) pair of a pre-merge tuning
// sweep: the raw grid Autotune buckets from.
type ProbeCell struct {
	Size    int64
	Name    string  // winning algorithm at this probe size
	Latency float64 // the winner's latency (us)
}

// ProbeWinners measures every candidate of one kind at every probe
// size and returns the per-size winners — the same grid Autotune
// collapses into buckets, kept at probe granularity so experiments can
// show exactly where the winning algorithm flips (x13 sweeps this
// against Config.Ambient).
func ProbeWinners(a *arch.Profile, kind core.Kind, cfg Config) []ProbeCell {
	cfg = cfg.withDefaults(a)
	cands := Candidates(kind, a)
	measured := measureKind(a, kind, cands, cfg)
	out := make([]ProbeCell, len(cfg.ProbeSizes))
	for si, size := range cfg.ProbeSizes {
		best := 0
		for ci := range cands {
			if measured[ci][si] < measured[best][si] {
				best = ci
			}
		}
		out[si] = ProbeCell{Size: size, Name: cands[best].Name, Latency: measured[best][si]}
	}
	return out
}

// measureKind returns latencies[candidate][probeSize], probing the
// (candidate, size) grid on a worker pool.
func measureKind(a *arch.Profile, kind core.Kind, cands []core.Algorithm, cfg Config) [][]float64 {
	mKind := kind
	if kind == core.KindReduce {
		// Reduce shares the gather buffer shape in the harness.
		mKind = core.KindGather
	}
	out := make([][]float64, len(cands))
	for ci := range cands {
		out[ci] = make([]float64, len(cfg.ProbeSizes))
	}
	par.Do(par.Workers(cfg.Jobs), len(cands)*len(cfg.ProbeSizes), func(i int) {
		ci, si := i/len(cfg.ProbeSizes), i%len(cfg.ProbeSizes)
		out[ci][si] = measure.Collective(a, mKind, cands[ci].Run, cfg.ProbeSizes[si], measure.Options{Procs: cfg.Procs, Ambient: cfg.Ambient})
	})
	return out
}

// mergeAdjacent collapses neighbouring buckets won by the same
// algorithm. The widened bucket takes the *last* merged bucket's
// measurement (Latency and Probe): keeping the first one, as this
// function originally did, made Fprint label a merged (0, 4M] bucket
// with the 1K-probe latency — a number from the opposite end of the
// bucket it annotates.
func mergeAdjacent(entries []Entry) []Entry {
	var out []Entry
	for _, e := range entries {
		if n := len(out); n > 0 && out[n-1].Name == e.Name {
			out[n-1].MaxSize = e.MaxSize
			out[n-1].Latency = e.Latency
			out[n-1].Probe = e.Probe
			continue
		}
		out = append(out, e)
	}
	return out
}
