package shm

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"camc/internal/arch"
	"camc/internal/kernel"
	"camc/internal/sim"
)

// fixture builds a node with n processes and a transport.
func fixture(n int, copyData bool) (*sim.Simulation, *kernel.Node, *Transport, []*kernel.Process) {
	s := sim.New()
	node := kernel.NewNode(s, arch.KNL())
	node.CopyData = copyData
	procs := make([]*kernel.Process, n)
	for i := range procs {
		procs[i] = node.NewProcess(16 << 20)
	}
	return s, node, New(node, n), procs
}

func TestCtlRoundtrip(t *testing.T) {
	s, _, tr, _ := fixture(2, false)
	var got int64
	s.Spawn("sender", func(p *sim.Proc) { tr.SendCtl(p, 0, 1, 7, 12345) })
	s.Spawn("receiver", func(p *sim.Proc) { got = tr.RecvCtl(p, 0, 1, 7) })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 12345 {
		t.Fatalf("ctl value = %d", got)
	}
	if s.Now() < arch.KNL().ShmLatency {
		t.Fatalf("ctl message ignored shm latency: %g", s.Now())
	}
}

func TestCtlTagMismatchPanics(t *testing.T) {
	s, _, tr, _ := fixture(2, false)
	s.Spawn("sender", func(p *sim.Proc) { tr.SendCtl(p, 0, 1, 7, 1) })
	s.Spawn("receiver", func(p *sim.Proc) { tr.RecvCtl(p, 0, 1, 8) })
	defer func() {
		if recover() == nil {
			t.Fatal("expected tag-mismatch panic")
		}
	}()
	_ = s.Run()
}

func TestDataTransferMovesBytes(t *testing.T) {
	s, _, tr, procs := fixture(2, true)
	const size = 100000 // spans many cells
	sa := procs[0].Alloc(size)
	da := procs[1].Alloc(size)
	src := procs[0].Bytes(sa, size)
	for i := range src {
		src[i] = byte(i * 31)
	}
	s.Spawn("sender", func(p *sim.Proc) { tr.Send(p, 0, 1, 5, procs[0], sa, size) })
	s.Spawn("receiver", func(p *sim.Proc) { tr.Recv(p, 0, 1, 5, procs[1], da, size) })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(procs[0].Bytes(sa, size), procs[1].Bytes(da, size)) {
		t.Fatal("payload mismatch")
	}
}

func TestZeroByteMessage(t *testing.T) {
	s, _, tr, procs := fixture(2, true)
	s.Spawn("sender", func(p *sim.Proc) { tr.Send(p, 0, 1, 5, procs[0], 0, 0) })
	s.Spawn("receiver", func(p *sim.Proc) { tr.Recv(p, 0, 1, 5, procs[1], 0, 0) })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestTwoCopyCostDominatesCMA(t *testing.T) {
	// The two-copy transport must cost roughly 2x the single memcpy for
	// large messages (the core premise of kernel-assisted transfers).
	s, _, tr, procs := fixture(2, false)
	const size = 4 << 20
	var elapsed float64
	s.Spawn("sender", func(p *sim.Proc) { tr.Send(p, 0, 1, 5, procs[0], 0, size) })
	s.Spawn("receiver", func(p *sim.Proc) {
		start := p.Now()
		tr.Recv(p, 0, 1, 5, procs[1], 0, size)
		elapsed = p.Now() - start
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	a := arch.KNL()
	oneCopy := float64(size) * a.ShmCopyBeta()
	if elapsed < oneCopy || elapsed > 3*oneCopy {
		t.Fatalf("two-copy transfer of 4M = %.1fus, want within [1x,3x] of one copy %.1fus", elapsed, oneCopy)
	}
}

func TestPipelineOverlap(t *testing.T) {
	// Sender and receiver overlap cell copies, so the total time is well
	// below the serial sum of both copies.
	s, _, tr, procs := fixture(2, false)
	const size = 1 << 20
	s.Spawn("sender", func(p *sim.Proc) { tr.Send(p, 0, 1, 5, procs[0], 0, size) })
	s.Spawn("receiver", func(p *sim.Proc) { tr.Recv(p, 0, 1, 5, procs[1], 0, size) })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	a := arch.KNL()
	cells := float64((size + a.ShmCellSize - 1) / a.ShmCellSize)
	serial := 2 * (float64(size)*a.ShmCopyBeta() + cells*a.ShmCellOverhead)
	if s.Now() > 0.75*serial {
		t.Fatalf("no pipelining: %.1fus vs serial %.1fus", s.Now(), serial)
	}
}

func TestExchangeBidirectional(t *testing.T) {
	s, _, tr, procs := fixture(2, true)
	const sizeA, sizeB = 300000, 50000 // asymmetric, both above queue depth
	a0 := procs[0].Alloc(sizeA)
	r0 := procs[0].Alloc(sizeB)
	a1 := procs[1].Alloc(sizeB)
	r1 := procs[1].Alloc(sizeA)
	s0 := procs[0].Bytes(a0, sizeA)
	for i := range s0 {
		s0[i] = byte(i)
	}
	s1 := procs[1].Bytes(a1, sizeB)
	for i := range s1 {
		s1[i] = byte(i * 3)
	}
	s.Spawn("p0", func(p *sim.Proc) { tr.Exchange(p, 0, 1, 1, 9, procs[0], a0, sizeA, r0, sizeB) })
	s.Spawn("p1", func(p *sim.Proc) { tr.Exchange(p, 1, 0, 0, 9, procs[1], a1, sizeB, r1, sizeA) })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(procs[1].Bytes(r1, sizeA), procs[0].Bytes(a0, sizeA)) {
		t.Fatal("A->B payload mismatch")
	}
	if !bytes.Equal(procs[0].Bytes(r0, sizeB), procs[1].Bytes(a1, sizeB)) {
		t.Fatal("B->A payload mismatch")
	}
}

func TestExchangeNoDeadlockLargeSymmetric(t *testing.T) {
	// Symmetric exchange far above the queue depth must complete.
	s, _, tr, procs := fixture(2, false)
	const size = 8 << 20
	s.Spawn("p0", func(p *sim.Proc) { tr.Exchange(p, 0, 1, 1, 9, procs[0], 0, size, kernel.Addr(size), size) })
	s.Spawn("p1", func(p *sim.Proc) { tr.Exchange(p, 1, 0, 0, 9, procs[1], 0, size, kernel.Addr(size), size) })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestBcast64AllRoots(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8, 13} {
		for root := 0; root < n; root++ {
			s, _, tr, _ := fixture(n, false)
			got := make([]int64, n)
			for i := 0; i < n; i++ {
				i := i
				s.Spawn(fmt.Sprintf("r%d", i), func(p *sim.Proc) {
					v := int64(0)
					if i == root {
						v = 777
					}
					got[i] = tr.Bcast64(p, i, root, v)
				})
			}
			if err := s.Run(); err != nil {
				t.Fatalf("n=%d root=%d: %v", n, root, err)
			}
			for i, v := range got {
				if v != 777 {
					t.Fatalf("n=%d root=%d rank=%d got %d", n, root, i, v)
				}
			}
		}
	}
}

func TestGather64(t *testing.T) {
	for _, n := range []int{1, 2, 7, 16} {
		for _, root := range []int{0, n - 1} {
			s, _, tr, _ := fixture(n, false)
			var out []int64
			for i := 0; i < n; i++ {
				i := i
				s.Spawn(fmt.Sprintf("r%d", i), func(p *sim.Proc) {
					res := tr.Gather64(p, i, root, int64(100+i))
					if i == root {
						out = res
					} else if res != nil {
						t.Errorf("non-root got non-nil gather result")
					}
				})
			}
			if err := s.Run(); err != nil {
				t.Fatalf("n=%d: %v", n, err)
			}
			for i, v := range out {
				if v != int64(100+i) {
					t.Fatalf("n=%d root=%d out[%d] = %d", n, root, i, v)
				}
			}
		}
	}
}

func TestAllgather64(t *testing.T) {
	for _, n := range []int{1, 2, 6, 9} {
		s, _, tr, _ := fixture(n, false)
		outs := make([][]int64, n)
		for i := 0; i < n; i++ {
			i := i
			s.Spawn(fmt.Sprintf("r%d", i), func(p *sim.Proc) {
				outs[i] = tr.Allgather64(p, i, int64(i*i))
			})
		}
		if err := s.Run(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for i, out := range outs {
			for j, v := range out {
				if v != int64(j*j) {
					t.Fatalf("n=%d rank %d out[%d] = %d", n, i, j, v)
				}
			}
		}
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	for _, n := range []int{2, 3, 7, 32} {
		s, _, tr, _ := fixture(n, false)
		var minExit float64 = 1e18
		var maxArrive float64
		for i := 0; i < n; i++ {
			i := i
			s.Spawn(fmt.Sprintf("r%d", i), func(p *sim.Proc) {
				p.Sleep(float64(i * 10)) // stagger arrivals
				if p.Now() > maxArrive {
					maxArrive = p.Now()
				}
				tr.Barrier(p, i)
				if p.Now() < minExit {
					minExit = p.Now()
				}
			})
		}
		if err := s.Run(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if minExit < maxArrive {
			t.Fatalf("n=%d: a rank left the barrier at %.2f before the last arrival %.2f", n, minExit, maxArrive)
		}
	}
}

func TestNotify(t *testing.T) {
	s, _, tr, _ := fixture(2, false)
	var order []string
	s.Spawn("a", func(p *sim.Proc) {
		p.Sleep(5)
		order = append(order, "signal")
		tr.Notify(p, 0, 1)
	})
	s.Spawn("b", func(p *sim.Proc) {
		tr.WaitNotify(p, 0, 1)
		order = append(order, "woken")
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(order) != "[signal woken]" {
		t.Fatalf("order = %v", order)
	}
}

func TestCollectivesPropertyRandomSizes(t *testing.T) {
	f := func(n8 uint8, root8 uint8, val int64) bool {
		n := int(n8%20) + 1
		root := int(root8) % n
		s, _, tr, _ := fixture(n, false)
		ok := true
		for i := 0; i < n; i++ {
			i := i
			s.Spawn(fmt.Sprintf("r%d", i), func(p *sim.Proc) {
				v := int64(0)
				if i == root {
					v = val
				}
				if got := tr.Bcast64(p, i, root, v); got != val {
					ok = false
				}
			})
		}
		return s.Run() == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestExchangePropertyRandomSizes(t *testing.T) {
	// Random asymmetric exchanges around a 3-rank ring must terminate
	// and deliver exact payloads.
	f := func(sA, sB, sC uint16, seed int64) bool {
		sizes := []int64{int64(sA), int64(sB), int64(sC)}
		s, _, tr, procs := fixture(3, true)
		addrs := make([]kernel.Addr, 3)
		raddr := make([]kernel.Addr, 3)
		for i := range addrs {
			addrs[i] = procs[i].Alloc(sizes[i] + 1)
			raddr[i] = procs[i].Alloc(sizes[(i+2)%3] + 1)
			buf := procs[i].Bytes(addrs[i], sizes[i])
			for j := range buf {
				buf[j] = byte(int64(i)*31 + int64(j) + seed)
			}
		}
		for i := 0; i < 3; i++ {
			i := i
			s.Spawn(fmt.Sprintf("p%d", i), func(p *sim.Proc) {
				// send to (i+1), recv from (i-1)
				tr.Exchange(p, i, (i+1)%3, (i+2)%3, 4, procs[i],
					addrs[i], sizes[i], raddr[i], sizes[(i+2)%3])
			})
		}
		if err := s.Run(); err != nil {
			return false
		}
		for i := 0; i < 3; i++ {
			from := (i + 2) % 3
			if !bytes.Equal(procs[i].Bytes(raddr[i], sizes[from]), procs[from].Bytes(addrs[from], sizes[from])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
