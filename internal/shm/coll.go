package shm

// Control collectives over the shared-memory transport. These are the
// T^sm_<coll> building blocks of the paper's cost model: every native CMA
// collective starts by moving buffer addresses (8 bytes) or 0-byte
// completion notifications through shared memory.
//
// Bcast64 uses a binomial tree (⌈log2 p⌉ rounds); Gather64 is flat
// (non-roots post concurrently, the root drains); Allgather64 is a
// gather to rank 0 followed by a broadcast of the packed vector; Barrier
// is a dissemination barrier. All are correct for any process count and
// any root.

import "camc/internal/sim"

// Tag space: the control collectives use tags far above the range the
// point-to-point layer and the CMA collectives use, so one communicator
// can interleave them safely.
const (
	tagCollBase = 1 << 20
	tagBcast    = tagCollBase + iota
	tagGather
	tagAllgather
	tagBarrier
	tagNotify
)

// Bcast64 broadcasts an 8-byte value from root via a binomial tree and
// returns the value at every rank.
func (t *Transport) Bcast64(sp *sim.Proc, me, root int, val int64) int64 {
	p := t.nranks
	if p == 1 {
		return val
	}
	rel := (me - root + p) % p // relative rank: root is 0
	// Find this rank's parent: clear the highest set bit.
	if rel != 0 {
		mask := 1
		for mask <= rel {
			mask <<= 1
		}
		mask >>= 1
		parent := (rel - mask + root) % p
		val = t.RecvCtl(sp, parent, me, tagBcast)
	}
	// Forward to children: rel+2^k for 2^k > rel.
	mask := 1
	for mask <= rel {
		mask <<= 1
	}
	for ; rel+mask < p; mask <<= 1 {
		child := (rel + mask + root) % p
		t.SendCtl(sp, me, child, tagBcast, val)
	}
	return val
}

// Gather64 gathers one 8-byte value per rank to root. At root the result
// has one entry per rank (indexed by rank); other ranks get nil.
func (t *Transport) Gather64(sp *sim.Proc, me, root int, val int64) []int64 {
	p := t.nranks
	if me != root {
		t.SendCtl(sp, me, root, tagGather, val)
		return nil
	}
	out := make([]int64, p)
	out[root] = val
	for r := 0; r < p; r++ {
		if r == root {
			continue
		}
		out[r] = t.RecvCtl(sp, r, root, tagGather)
	}
	return out
}

// Allgather64 gathers one 8-byte value per rank and distributes the full
// vector to every rank: a gather to rank 0 followed by a binomial
// broadcast of the packed vector (p values ride one control message per
// tree edge, costed as p/8 cells' worth of copies via repeated ctl sends).
func (t *Transport) Allgather64(sp *sim.Proc, me int, val int64) []int64 {
	p := t.nranks
	out := t.Gather64(sp, me, 0, val)
	if p == 1 {
		return out
	}
	// Broadcast the vector down a binomial tree. Each edge carries the
	// p-entry vector; we model it as p chained control messages (the
	// vector is tiny compared to any data message, but the cost should
	// still scale with p).
	rel := me
	if rel != 0 {
		mask := 1
		for mask <= rel {
			mask <<= 1
		}
		mask >>= 1
		parent := rel - mask
		out = make([]int64, p)
		for i := 0; i < p; i++ {
			out[i] = t.RecvCtl(sp, parent, me, tagAllgather)
		}
	}
	mask := 1
	for mask <= rel {
		mask <<= 1
	}
	for ; rel+mask < p; mask <<= 1 {
		child := rel + mask
		for i := 0; i < p; i++ {
			t.SendCtl(sp, me, child, tagAllgather, out[i])
		}
	}
	return out
}

// Notify posts a 0-byte completion message to dst.
func (t *Transport) Notify(sp *sim.Proc, me, dst int) {
	t.SendCtl(sp, me, dst, tagNotify, 0)
}

// WaitNotify consumes one 0-byte completion message from src.
func (t *Transport) WaitNotify(sp *sim.Proc, src, me int) {
	t.RecvCtl(sp, src, me, tagNotify)
}

// Barrier is a dissemination barrier: ⌈log2 p⌉ rounds, in round k each
// rank signals (me+2^k) mod p and waits for (me−2^k) mod p.
func (t *Transport) Barrier(sp *sim.Proc, me int) {
	p := t.nranks
	for dist := 1; dist < p; dist <<= 1 {
		to := (me + dist) % p
		from := (me - dist + p) % p
		t.SendCtl(sp, me, to, tagBarrier, 0)
		t.RecvCtl(sp, from, me, tagBarrier)
	}
}
