package shm

// Control collectives over the shared-memory transport. These are the
// T^sm_<coll> building blocks of the paper's cost model: every native CMA
// collective starts by moving buffer addresses (8 bytes) or 0-byte
// completion notifications through shared memory.
//
// Bcast64 uses a binomial tree (⌈log2 p⌉ rounds); Gather64 is flat
// (non-roots post concurrently, the root drains); Allgather64 is a
// gather to rank 0 followed by a broadcast of the packed vector; Barrier
// is a dissemination barrier. All are correct for any process count and
// any root.

import (
	"fmt"

	"camc/internal/sim"
	"camc/internal/trace"
)

// Tag space: the control collectives use tags far above the range the
// point-to-point layer and the CMA collectives use, so one communicator
// can interleave them safely.
const (
	tagCollBase = 1 << 20
	tagBcast    = tagCollBase + iota
	tagGather
	tagAllgather
	tagBarrier
	tagNotify
)

// Bcast64 broadcasts an 8-byte value from root via a binomial tree and
// returns the value at every rank.
func (t *Transport) Bcast64(sp *sim.Proc, me, root int, val int64) int64 {
	p := t.nranks
	if p == 1 {
		return val
	}
	rel := (me - root + p) % p // relative rank: root is 0
	// Find this rank's parent: clear the highest set bit.
	if rel != 0 {
		mask := 1
		for mask <= rel {
			mask <<= 1
		}
		mask >>= 1
		parent := (rel - mask + root) % p
		val = t.RecvCtl(sp, parent, me, tagBcast)
	}
	// Forward to children: rel+2^k for 2^k > rel.
	mask := 1
	for mask <= rel {
		mask <<= 1
	}
	for ; rel+mask < p; mask <<= 1 {
		child := (rel + mask + root) % p
		t.SendCtl(sp, me, child, tagBcast, val)
	}
	return val
}

// Gather64 gathers one 8-byte value per rank to root. At root the result
// has one entry per rank (indexed by rank); other ranks get nil.
func (t *Transport) Gather64(sp *sim.Proc, me, root int, val int64) []int64 {
	p := t.nranks
	if me != root {
		t.SendCtl(sp, me, root, tagGather, val)
		return nil
	}
	out := make([]int64, p)
	out[root] = val
	for r := 0; r < p; r++ {
		if r == root {
			continue
		}
		out[r] = t.RecvCtl(sp, r, root, tagGather)
	}
	return out
}

// ctlVecThreshold is the rank count above which Allgather64 switches
// from p chained control messages per tree edge to one bulk vector
// message per edge. The chained form costs O(p) simulated events per
// edge — O(p²) for the whole tree — which is what capped runs at a few
// thousand ranks; the bulk form keeps the same serialized posting cost
// (p·ctlCost at the sender) in O(1) events per edge. Every experiment
// and golden file at or below this rank count sees the chained path,
// bit-identical to the pre-threshold behaviour.
const ctlVecThreshold = 512

// Allgather64 gathers one 8-byte value per rank and distributes the full
// vector to every rank: a gather to rank 0 followed by a binomial
// broadcast of the packed vector. At or below ctlVecThreshold ranks each
// tree edge carries p chained control messages (the vector is tiny
// compared to any data message, but the cost should still scale with p);
// above it each edge is one bulk message whose posting cost is the same
// serialized p·ctlCost.
//
// Above the threshold the returned slice is shared read-only between
// ranks (a 64k-rank exchange would otherwise materialize p² host
// entries); callers must not mutate it.
func (t *Transport) Allgather64(sp *sim.Proc, me int, val int64) []int64 {
	p := t.nranks
	out := t.Gather64(sp, me, 0, val)
	if p == 1 {
		return out
	}
	bulk := p > ctlVecThreshold
	// Broadcast the vector down a binomial tree.
	rel := me
	if rel != 0 {
		mask := 1
		for mask <= rel {
			mask <<= 1
		}
		mask >>= 1
		parent := rel - mask
		if bulk {
			out = t.recvCtlVec(sp, parent, me, tagAllgather, p)
		} else {
			out = make([]int64, p)
			for i := 0; i < p; i++ {
				out[i] = t.RecvCtl(sp, parent, me, tagAllgather)
			}
		}
	}
	mask := 1
	for mask <= rel {
		mask <<= 1
	}
	for ; rel+mask < p; mask <<= 1 {
		child := rel + mask
		if bulk {
			t.sendCtlVec(sp, me, child, tagAllgather, out)
		} else {
			for i := 0; i < p; i++ {
				t.SendCtl(sp, me, child, tagAllgather, out[i])
			}
		}
	}
	return out
}

// sendCtlVec posts an n-entry control vector as one message, costed as n
// chained control posts at the sender (the serialized cost the chained
// form charges) but consuming one simulator event instead of n.
func (t *Transport) sendCtlVec(sp *sim.Proc, src, dst, tag int, vals []int64) {
	sp.Sleep(float64(len(vals)) * ctlCost)
	t.sendMsg(sp, src, dst, message{
		tag:     tag,
		readyAt: sp.Now() + t.node.Arch.ShmLatency + t.stall(src, dst),
		vec:     vals,
	})
}

// recvCtlVec consumes one bulk control vector from src, asserting the
// expected tag and length.
func (t *Transport) recvCtlVec(sp *sim.Proc, src, dst, tag, n int) []int64 {
	waitStart := sp.Now()
	m := t.recvMsg(sp, src, dst)
	if m.tag != tag {
		panic(fmt.Sprintf("shm: tag mismatch on %d->%d: got %d, want %d", src, dst, m.tag, tag))
	}
	if len(m.vec) != n {
		panic(fmt.Sprintf("shm: expected %d-entry control vector on %d->%d, got %d", n, src, dst, len(m.vec)))
	}
	readyTs := sp.Now()
	if m.readyAt > readyTs {
		readyTs = m.readyAt
		sp.Sleep(m.readyAt - sp.Now())
	}
	sp.Sleep(ctlCost)
	if rec := t.node.Recorder(); rec != nil {
		rec.Edge(t.lane(src), t.lane(dst), trace.CatShm, tagName(tag),
			m.readyAt-t.node.Arch.ShmLatency, readyTs, waitStart, sp.Now())
	}
	return m.vec
}

// Notify posts a 0-byte completion message to dst.
func (t *Transport) Notify(sp *sim.Proc, me, dst int) {
	t.SendCtl(sp, me, dst, tagNotify, 0)
}

// WaitNotify consumes one 0-byte completion message from src.
func (t *Transport) WaitNotify(sp *sim.Proc, src, me int) {
	t.RecvCtl(sp, src, me, tagNotify)
}

// Barrier is a dissemination barrier: ⌈log2 p⌉ rounds, in round k each
// rank signals (me+2^k) mod p and waits for (me−2^k) mod p.
func (t *Transport) Barrier(sp *sim.Proc, me int) {
	p := t.nranks
	for dist := 1; dist < p; dist <<= 1 {
		to := (me + dist) % p
		from := (me - dist + p) % p
		t.SendCtl(sp, me, to, tagBarrier, 0)
		t.RecvCtl(sp, from, me, tagBarrier)
	}
}
